// Benchmarks: one testing.B benchmark per table/figure of the paper (each
// regenerates the artifact through its internal/experiments driver at test
// scale; run cmd/speakql-bench -scale default for the full-size numbers),
// plus micro-benchmarks of the pipeline stages.
package speakql_test

import (
	"runtime"
	"sync"
	"testing"

	"speakql"
	"speakql/internal/asr"
	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/experiments"
	"speakql/internal/literal"
	"speakql/internal/metrics"
	"speakql/internal/phonetic"
	"speakql/internal/speech"
	"speakql/internal/structure"
	"speakql/internal/trieindex"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
)

func env(b *testing.B) *experiments.Env {
	benchEnvOnce.Do(func() {
		e, err := experiments.NewEnv(experiments.ScaleTest)
		if err != nil {
			b.Fatalf("build env: %v", err)
		}
		benchEnv = e
	})
	return benchEnv
}

// --- one benchmark per paper artifact ---

func BenchmarkTable2(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(e)
	}
}

func BenchmarkFigure6(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure6(e)
	}
}

func BenchmarkFigure7UserStudy(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure7(e)
	}
}

func BenchmarkFigure8ComponentDrillDown(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure8(e)
	}
}

func BenchmarkFigure11MetricCDFs(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure11(e)
	}
}

func BenchmarkTable4ASREngines(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunTable4(e)
	}
}

func BenchmarkFigure14StructureLatency(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure14(e)
	}
}

func BenchmarkFigure15Ablation(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure15(e)
	}
}

func BenchmarkFigure16ValueTypes(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure16(e)
	}
}

func BenchmarkFigure17PhoneticDistance(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure17(e)
	}
}

func BenchmarkFigure18Nested(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunFigure18(e)
	}
}

func BenchmarkTable5NLIComparison(b *testing.B) {
	e := env(b)
	for i := 0; i < b.N; i++ {
		experiments.RunTable5(e)
	}
}

// --- pipeline micro-benchmarks ---

func BenchmarkCorrectEndToEnd(b *testing.B) {
	e := env(b)
	transcript := "select sales from employers wear first name equals Jon"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Engine.Correct(transcript)
	}
}

func BenchmarkStructureSearch(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Structure.Determine("select salary from employees where gender equals M and salary greater than 70000")
	}
}

// BenchmarkStructureSearchParallel is BenchmarkStructureSearch with the trie
// partitions searched on a GOMAXPROCS-wide worker pool (same index, shared).
// Results are bit-identical to the serial search; compare ns/op between the
// two to see the partition-parallel speedup on a multi-core machine.
func BenchmarkStructureSearchParallel(b *testing.B) {
	e := env(b)
	par := structure.NewFromIndex(e.Structure.Index(),
		trieindex.Options{Workers: runtime.GOMAXPROCS(0)}, e.GrammarCfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.Determine("select salary from employees where gender equals M and salary greater than 70000")
	}
}

// BenchmarkStructureSearchCached is BenchmarkStructureSearch behind the LRU
// memo cache at 100% hit rate — the steady-state cost of a repeated masked
// shape (a map lookup plus the literal stage's share of Determine).
func BenchmarkStructureSearchCached(b *testing.B) {
	e := env(b)
	cached := structure.NewFromIndex(e.Structure.Index(), trieindex.Options{}, e.GrammarCfg)
	cached.SetSearchCache(core.NewSearchLRU(64))
	const transcript = "select salary from employees where gender equals M and salary greater than 70000"
	cached.Determine(transcript) // fill
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cached.Determine(transcript)
	}
}

var benchAlternatives = []string{
	"select sales from employers wear first name equals Jon",
	"select salary from employees where gender equals M",
	"select first name from employees order by higher date",
	"select count of everything from titles",
	"select last name from employees where salary greater than 70000",
}

// BenchmarkCorrectAlternatives corrects a 5-alternative ASR n-best list
// strictly sequentially, the pre-refactor behavior.
func BenchmarkCorrectAlternatives(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range benchAlternatives {
			e.Engine.Correct(tr)
		}
	}
}

// BenchmarkCorrectAlternativesParallel runs the same n-best list through
// CorrectAlternatives, which fans the alternatives out over a
// GOMAXPROCS-bounded pool while preserving output order.
func BenchmarkCorrectAlternativesParallel(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Engine.CorrectAlternatives(benchAlternatives)
	}
}

func BenchmarkLiteralDetermination(b *testing.B) {
	e := env(b)
	cat := e.Engine.Catalog()
	trans := []string{"SELECT", "first", "name", "FROM", "employers", "WHERE", "salary", ">", "70000"}
	structToks := []string{"SELECT", "x1", "FROM", "x2", "WHERE", "x3", ">", "x4"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		literal.Determine(trans, structToks, cat, 5)
	}
}

// yelpScaleCatalog builds a catalog with thousands of distinct string
// values — the scale where the phonetic BK-tree index pays off. Shared by
// the YelpScale literal benchmarks; SetIndexed picks the voting path.
var (
	yelpScaleOnce sync.Once
	yelpScaleCat  *literal.Catalog
)

func yelpScaleCatalog(b *testing.B) *literal.Catalog {
	b.Helper()
	yelpScaleOnce.Do(func() {
		db := dataset.NewYelpDB(dataset.YelpConfig{Businesses: 12000, Users: 400, Reviews: 1500, Seed: 2})
		yelpScaleCat = literal.NewCatalog(db.TableNames(), db.AttributeNames(), db.StringValues(0))
	})
	return yelpScaleCat
}

var (
	yelpScaleTranscript = []string{"select", "business", "name", "from", "business", "where",
		"city", "equals", "fenix", "and", "stars", ">", "4"}
	yelpScaleStruct = []string{"SELECT", "x1", "FROM", "x2", "WHERE", "x3", "=", "x4", "AND", "x5", ">", "x6"}
)

// BenchmarkLiteralDeterminationYelpScale measures literal determination
// against the multi-thousand-value catalog on the BK-indexed path;
// …YelpScaleNaive is the same work on the retained full scan (the pre-index
// behavior). The ratio is the index's speedup; rankings are bit-identical.
func BenchmarkLiteralDeterminationYelpScale(b *testing.B) {
	cat := yelpScaleCatalog(b).SetIndexed(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		literal.Determine(yelpScaleTranscript, yelpScaleStruct, cat, 5)
	}
}

func BenchmarkLiteralDeterminationYelpScaleNaive(b *testing.B) {
	cat := yelpScaleCatalog(b).SetIndexed(false)
	defer cat.SetIndexed(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		literal.Determine(yelpScaleTranscript, yelpScaleStruct, cat, 5)
	}
}

func BenchmarkASRTranscription(b *testing.B) {
	eng := asr.NewEngine(asr.ACSProfile(), 1)
	spoken := speech.VerbalizeQuery(
		"SELECT FromDate , Salary FROM Employees NATURAL JOIN Salaries WHERE FirstName = 'Tomokazu'")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Transcribe(spoken)
	}
}

func BenchmarkVerbalizeQuery(b *testing.B) {
	const q = "SELECT SUM ( salary ) FROM Salaries WHERE FromDate = '1993-01-20' LIMIT 45310"
	for i := 0; i < b.N; i++ {
		speech.VerbalizeQuery(q)
	}
}

func BenchmarkMetaphone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		phonetic.Encode("DepartmentEmployee")
	}
}

func BenchmarkWeightedEditDistance(b *testing.B) {
	a := speakql.Tokenize("SELECT x FROM x WHERE x = x AND x < x ORDER BY x")
	c := speakql.Tokenize("SELECT x , x FROM x NATURAL JOIN x WHERE x = x LIMIT x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.WeightedTokenEditDistance(a, c)
	}
}

func BenchmarkEngineConstructionTestScale(b *testing.B) {
	db := dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 50, Departments: 4, Seed: 1})
	cat := speakql.CatalogOf(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := speakql.NewEngine(speakql.Config{
			Grammar: speakql.TestGrammar(),
			Catalog: cat,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
