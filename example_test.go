package speakql_test

import (
	"fmt"
	"log"

	"speakql"
)

// The paper's Figure 2 running example: an erroneous transcription of a
// dictated query is repaired into executable SQL.
func Example() {
	catalog := speakql.NewCatalog(
		[]string{"Employees", "Salaries"},
		[]string{"FirstName", "LastName", "Salary"},
		[]string{"John", "Jon"})
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: catalog,
	})
	if err != nil {
		log.Fatal(err)
	}
	out := engine.Correct("select sales from employers wear first name equals Jon")
	fmt.Println(out.Best().SQL)
	// Output: SELECT Salary FROM Employees WHERE FirstName = 'Jon'
}

// Top-k candidates populate the interactive display's alternatives menu.
func ExampleEngine_CorrectTopK() {
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: speakql.NewCatalog([]string{"Salaries"}, []string{"Salary"}, nil),
	})
	if err != nil {
		log.Fatal(err)
	}
	out := engine.CorrectTopK("select salary from salaries", 2)
	for _, c := range out.Candidates {
		fmt.Println(c.SQL)
	}
	// Output:
	// SELECT Salary FROM Salaries
	// SELECT * FROM Salaries
}
