package speakql_test

import (
	"context"
	"fmt"
	"log"

	"speakql"
)

// The paper's Figure 2 running example: an erroneous transcription of a
// dictated query is repaired into executable SQL.
func Example() {
	catalog := speakql.NewCatalog(
		[]string{"Employees", "Salaries"},
		[]string{"FirstName", "LastName", "Salary"},
		[]string{"John", "Jon"})
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: catalog,
	})
	if err != nil {
		log.Fatal(err)
	}
	out := engine.Correct("select sales from employers wear first name equals Jon")
	fmt.Println(out.Best().SQL)
	// Output: SELECT Salary FROM Employees WHERE FirstName = 'Jon'
}

// Clause-streaming dictation: fragments are corrected incrementally as
// they arrive (examples/clausedictation shows the full interface loop),
// and finalizing yields exactly what a one-shot correction of the whole
// transcript would.
func ExampleEngine_NewFragmentSession() {
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: speakql.NewCatalog(
			[]string{"Employees", "Salaries"},
			[]string{"FirstName", "LastName", "Salary"},
			[]string{"John", "Jon"}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fs := engine.NewFragmentSession()
	ctx := context.Background()
	for _, clause := range []string{"select sales from employers", "wear first name equals Jon"} {
		out := fs.CorrectFragment(ctx, clause)
		fmt.Printf("fragment %d: %s\n", out.Seq, out.Best().SQL)
	}
	fmt.Println("finalized :", fs.Finalize(ctx).Best().SQL)
	// Output:
	// fragment 1: SELECT Salary FROM Employees
	// fragment 2: SELECT Salary FROM Employees WHERE FirstName = 'Jon'
	// finalized : SELECT Salary FROM Employees WHERE FirstName = 'Jon'
}

// Top-k candidates populate the interactive display's alternatives menu.
func ExampleEngine_CorrectTopK() {
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: speakql.NewCatalog([]string{"Salaries"}, []string{"Salary"}, nil),
	})
	if err != nil {
		log.Fatal(err)
	}
	out := engine.CorrectTopK("select salary from salaries", 2)
	for _, c := range out.Candidates {
		fmt.Println(c.SQL)
	}
	// Output:
	// SELECT Salary FROM Salaries
	// SELECT * FROM Salaries
}
