package speakql_test

// docs_check_test.go keeps the documentation honest, locally and in CI:
//
//   - TestMarkdownLinks: every intra-repo link and GitHub-style heading
//     anchor in the top-level markdown files resolves — no dead file paths,
//     no anchors that drifted when a section was renamed.
//   - TestPackageComments: every package in the module carries a package
//     comment (the godoc index line).
//   - TestExportedDocs: every exported symbol of the API-bearing packages
//     (the public facade, core, session, stream, trieindex, httpapi,
//     structure, literal) has a doc comment. CI additionally runs revive's
//     exported rule; this test keeps the check runnable offline.

import (
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles are the documents whose links and anchors must resolve.
var markdownFiles = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md"}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// githubAnchor reproduces GitHub's heading-to-anchor slugging: lowercase,
// punctuation stripped, spaces to hyphens (backticks just vanish).
func githubAnchor(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_':
			b.WriteRune(r)
		default: // punctuation, backticks, emoji: dropped
		}
	}
	return b.String()
}

// anchorsOf collects the anchor set of one markdown file, numbering
// duplicate headings the way GitHub does (x, x-1, x-2, …).
func anchorsOf(t *testing.T, path string) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	anchors := map[string]bool{}
	seen := map[string]int{}
	inFence := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		a := githubAnchor(heading)
		if n := seen[a]; n > 0 {
			anchors[fmt.Sprintf("%s-%d", a, n)] = true
		} else {
			anchors[a] = true
		}
		seen[a]++
	}
	return anchors
}

func TestMarkdownLinks(t *testing.T) {
	anchorCache := map[string]map[string]bool{}
	anchors := func(path string) map[string]bool {
		if a, ok := anchorCache[path]; ok {
			return a
		}
		a := anchorsOf(t, path)
		anchorCache[path] = a
		return a
	}
	for _, md := range markdownFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatalf("read %s: %v", md, err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue // external links are not checked offline
			}
			file, frag, _ := strings.Cut(target, "#")
			if file == "" {
				file = md // same-document anchor
			}
			file = filepath.Clean(file)
			if _, err := os.Stat(file); err != nil {
				t.Errorf("%s: dead link %q (%v)", md, target, err)
				continue
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(file, ".md") {
				continue // line-number fragments into source files etc.
			}
			if !anchors(file)[frag] {
				t.Errorf("%s: link %q: no heading in %s slugs to %q", md, target, file, frag)
			}
		}
	}
}

// modulePackages walks the repo for Go package directories, skipping
// testdata and hidden directories.
func modulePackages(t *testing.T) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		if gofiles, _ := filepath.Glob(filepath.Join(path, "*.go")); len(gofiles) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

func TestPackageComments(t *testing.T) {
	for _, dir := range modulePackages(t) {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment", name, dir)
			}
		}
	}
}

// documentedPackages are the API-bearing packages whose exported symbols
// must each carry a doc comment.
var documentedPackages = []string{
	".",
	"internal/core",
	"internal/session",
	"internal/stream",
	"internal/trieindex",
	"internal/httpapi",
	"internal/structure",
	"internal/literal",
	"internal/router",
	"internal/loadgen",
	"internal/registry",
	"internal/sqlengine",
}

func TestExportedDocs(t *testing.T) {
	for _, dir := range documentedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			d := doc.New(pkg, dir, 0)
			// Same convention revive's exported rule enforces: present, and
			// opening with the symbol's name (articles allowed on types).
			check := func(kind, label, name, docText string) {
				docText = strings.TrimSpace(docText)
				if docText == "" {
					t.Errorf("%s: exported %s %s has no doc comment", dir, kind, label)
					return
				}
				for _, prefix := range []string{name + " ", name + "'", "A " + name + " ", "An " + name + " ", "The " + name + " "} {
					if strings.HasPrefix(docText, prefix) {
						return
					}
				}
				t.Errorf("%s: doc comment of %s %s should start with %q", dir, kind, label, name)
			}
			for _, f := range d.Funcs {
				check("func", f.Name, f.Name, f.Doc)
			}
			for _, typ := range d.Types {
				check("type", typ.Name, typ.Name, typ.Doc)
				for _, f := range typ.Funcs {
					check("func", f.Name, f.Name, f.Doc)
				}
				for _, m := range typ.Methods {
					if ast.IsExported(m.Name) {
						check("method", typ.Name+"."+m.Name, m.Name, m.Doc)
					}
				}
			}
			for _, v := range append(d.Consts, d.Vars...) {
				if v.Doc == "" && len(v.Names) > 0 && ast.IsExported(v.Names[0]) {
					t.Errorf("%s: exported %s group has no doc comment", dir, v.Names[0])
				}
			}
		}
	}
}
