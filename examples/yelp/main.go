// Yelp scenario: open-domain querying over a schema the system was never
// tuned for — the paper's desideratum 3 ("support any database schema in
// any application domain"). The same engine code corrects dictations over
// the Yelp schema just by swapping the catalog, and the top-k candidate
// list shows what the interactive display would offer.
//
//	go run ./examples/yelp
package main

import (
	"fmt"
	"log"
	"strings"

	"speakql"
	"speakql/internal/asr"
	"speakql/internal/dataset"
	"speakql/internal/speech"
	"speakql/internal/sqlengine"
)

func main() {
	db := dataset.NewYelpDB(dataset.DefaultYelpConfig())
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: speakql.CatalogOf(db),
	})
	if err != nil {
		log.Fatal(err)
	}
	// An untrained recognizer: Yelp literals are out-of-vocabulary, which
	// is exactly the generalization condition of Table 2's Yelp column.
	recognizer := asr.NewEngine(asr.ACSProfile(), 11)

	queries := []string{
		"SELECT BusinessName FROM Business WHERE Stars > 4",
		"SELECT City , COUNT ( * ) FROM Business GROUP BY City",
		"SELECT BusinessName FROM Business NATURAL JOIN Review WHERE ReviewStars = 5 LIMIT 5",
	}
	for _, sql := range queries {
		transcript := recognizer.Transcribe(speech.VerbalizeQuery(sql))
		out := engine.CorrectTopK(transcript, 3)
		fmt.Println("dictated  :", sql)
		fmt.Println("ASR heard :", transcript)
		for i, c := range out.Candidates {
			fmt.Printf("candidate %d (distance %.1f): %s\n", i+1, c.StructureDistance, c.SQL)
		}
		if res, err := sqlengine.Run(db, out.Best().SQL); err == nil {
			fmt.Printf("exec      : %d rows — %s\n", len(res.Rows), strings.Join(res.Cols, " | "))
		} else {
			fmt.Println("exec      : error:", err)
		}
		fmt.Println()
	}
}
