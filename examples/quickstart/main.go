// Quickstart: correct one erroneous ASR transcription of a dictated SQL
// query against a small schema — the paper's Figure 2 running example.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"speakql"
)

func main() {
	// The catalog is the phonetic representation of the queried database:
	// table names, attribute names, and string attribute values.
	catalog := speakql.NewCatalog(
		[]string{"Employees", "Salaries"},
		[]string{"FirstName", "LastName", "Salary", "Gender"},
		[]string{"John", "Jon", "Mary"},
	)

	// Building the engine generates and trie-indexes the SQL structure
	// corpus (the offline step). TestGrammar builds in milliseconds;
	// DefaultGrammar matches the experiment harness.
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: catalog,
	})
	if err != nil {
		log.Fatal(err)
	}

	// What the user said:   SELECT Salary FROM Employees WHERE FirstName = 'Jon'
	// What the ASR heard:
	transcript := "select sales from employers wear first name equals Jon"

	out := engine.Correct(transcript)
	best := out.Best()
	fmt.Println("transcript:", transcript)
	fmt.Println("structure :", join(best.Structure))
	fmt.Println("corrected :", best.SQL)

	// Each placeholder carries ranked alternatives for the interactive
	// display's correction menu.
	for _, b := range best.Bindings {
		fmt.Printf("  %s (%s): %v\n", b.Placeholder, b.Category, b.TopK)
	}
}

func join(toks []string) string {
	s := ""
	for i, t := range toks {
		if i > 0 {
			s += " "
		}
		s += t
	}
	return s
}
