// Hospital scenario: the nurse informaticist of the paper's introduction —
// a read-mostly data consumer who knows basic SQL and wants on-the-go
// answers. Dictated ward queries run against a healthcare schema whose
// literals (room codes "W3-12", ICD-style diagnosis codes "J45.1") exercise
// the unbounded-vocabulary path hardest.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"
	"strings"

	"speakql"
	"speakql/internal/asr"
	"speakql/internal/dataset"
	"speakql/internal/speech"
	"speakql/internal/sqlengine"
)

func main() {
	db := dataset.NewHospitalDB(dataset.DefaultHospitalConfig())
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: speakql.CatalogOf(db),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Train the recognizer the way the paper trains Azure Custom Speech
	// (Section 6.1): generate a spoken-SQL corpus over this schema and feed
	// it to the language model, which brings ward names, drug names, and
	// room codes into the vocabulary.
	recognizer := asr.NewEngine(asr.ACSProfile(), 17)
	train := dataset.GenerateQueries(db, dataset.GenConfig{
		Grammar: speakql.TestGrammar(), N: 150, Seed: 9,
	})
	var trainSQL []string
	for _, q := range train {
		trainSQL = append(trainSQL, q.SQL)
	}
	recognizer.TrainQueries(trainSQL)
	// Production custom-speech services also accept phrase lists; upload
	// the schema's value domain so rare ward and drug names are in
	// vocabulary even if the sampled corpus missed them.
	recognizer.TrainWords(db.StringValues(0))

	queries := []string{
		"SELECT COUNT ( * ) FROM Admissions WHERE WardName = 'Cardiology'",
		"SELECT LastName FROM Patients NATURAL JOIN Admissions WHERE WardName = 'Emergency'",
		"SELECT DiagnosisName , COUNT ( * ) FROM Diagnoses GROUP BY DiagnosisName",
		"SELECT MedicationName FROM Medications WHERE DoseMilligrams > 500",
		"SELECT HeartRate FROM Vitals WHERE HeartRate > 110 ORDER BY HeartRate",
	}
	for _, sql := range queries {
		transcript := recognizer.Transcribe(speech.VerbalizeQuery(sql))
		out := engine.Correct(transcript)
		best := out.Best()
		fmt.Println("dictated :", sql)
		fmt.Println("ASR heard:", transcript)
		fmt.Println("corrected:", best.SQL)
		if res, err := sqlengine.Run(db, best.SQL); err == nil {
			fmt.Printf("exec     : %d rows (%s)\n", len(res.Rows), strings.Join(res.Cols, " | "))
		} else {
			fmt.Println("exec     : error:", err)
		}
		fmt.Println()
	}
}
