// Clause-streaming dictation: the incremental interface loop of Section 5,
// driven through the real streaming pipeline instead of hand-sliced
// transcripts. Each spoken clause goes through Session.StreamFragment —
// which re-runs only the suffix of the trie search and replays memoized
// literal votes — while an event subscriber prints the corrected query
// exactly as the SSE feed would push it to the display. The dictation ends
// with a full-fidelity finalize and a SQL-keyboard touch edit, with the
// units-of-effort metric accounted throughout.
//
//	go run ./examples/clausedictation
package main

import (
	"context"
	"fmt"
	"log"

	"speakql"
	"speakql/internal/core"
	"speakql/internal/session"
	"speakql/internal/stream"
)

func main() {
	catalog := speakql.NewCatalog(
		[]string{"Employees", "Salaries", "Titles"},
		[]string{"FirstName", "LastName", "Salary", "Title", "HireDate"},
		[]string{"Engineer", "Staff", "Manager"},
	)
	engine, err := core.NewEngine(core.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: catalog,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The display's half of the SSE feed: a subscriber printing each pushed
	// snapshot. In the HTTP deployment this is GET /api/stream/events.
	events := stream.NewBroadcaster()
	sub := events.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.Events() {
			fmt.Printf("  event %-9s seq=%d  %s\n", ev.Kind, ev.Seq, ev.SQL)
		}
	}()

	sess := session.New(engine)
	sess.SetStreamConfig(stream.Config{Events: events, Session: "demo"})

	// The user dictates clause by clause; the ASR mangled the WHERE clause
	// ("title equals engineer" arrived as "title equals in here"). Every
	// fragment re-corrects the whole accumulated transcript incrementally.
	ctx := context.Background()
	clauses := []string{
		"select first name",
		"from employees natural join titles",
		"where title equals in here",
	}
	for _, clause := range clauses {
		out, err := sess.StreamFragment(ctx, clause)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dictated %-38q -> %s\n", clause, out.Best().SQL)
	}

	// Finalize closes the stream with a full-fidelity re-pass — by
	// construction bit-identical to a one-shot correction of the transcript.
	fin, err := sess.FinalizeStream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("finalized               :", fin.Best().SQL)

	// The phonetic vote heard "in here" as a title; the user repairs the
	// value with the SQL keyboard's autocomplete (Figure 5B), then appends a
	// LIMIT with two keyword-list taps.
	n := len(sess.Tokens())
	sess.ReplaceToken(n-1, "'Engineer'")
	sess.InsertToken(n, "LIMIT")
	sess.InsertToken(n+1, "10")
	fmt.Println("after keyboard edits    :", sess.SQL())

	events.Close()
	<-done
	fmt.Printf("effort: %d touches + %d dictations = %d units\n",
		sess.Touches(), sess.Dictations(), sess.Effort())
}
