// Clause-level dictation and SQL-keyboard correction: the multimodal
// interface loop of Section 5. A user dictates a whole query, re-dictates
// just the WHERE clause when the transcription went wrong, and finishes
// with a single touch edit — the session tracks the units-of-effort metric
// the user study reports.
//
//	go run ./examples/clausedictation
package main

import (
	"fmt"
	"log"

	"speakql"
	"speakql/internal/core"
	"speakql/internal/session"
)

func main() {
	catalog := speakql.NewCatalog(
		[]string{"Employees", "Salaries", "Titles"},
		[]string{"FirstName", "LastName", "Salary", "Title", "HireDate"},
		[]string{"Engineer", "Staff", "Manager"},
	)
	engine, err := core.NewEngine(core.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: catalog,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess := session.New(engine)

	// 1. Full dictation ("Record" button). The ASR mangled the WHERE
	//    clause: "title equals engineer" arrived as "title equals in here".
	sess.DictateFull("select first name from employees natural join titles where title equals in here")
	fmt.Println("after full dictation :", sess.SQL())

	// 2. Clause-level re-dictation (per-clause record button): only the
	//    WHERE clause is spoken again.
	sess.DictateClause("where title equals engineer")
	fmt.Println("after clause redictation:", sess.SQL())

	// 3. SQL-keyboard touch edit: append a LIMIT with two taps from the
	//    keyword list.
	n := len(sess.Tokens())
	sess.InsertToken(n, "LIMIT")
	sess.InsertToken(n+1, "10")
	fmt.Println("after keyboard edits :", sess.SQL())

	fmt.Printf("effort: %d touches + %d dictations = %d units\n",
		sess.Touches(), sess.Dictations(), sess.Effort())
}
