// Employees scenario: the full speech-to-result loop the paper's analysts
// motivate — dictate analysis queries over the Employees schema, push them
// through the simulated speech synthesizer and ASR channel, correct the
// transcription with SpeakQL, execute the result, and score the correction
// against the ground truth.
//
//	go run ./examples/employees
package main

import (
	"fmt"
	"log"
	"strings"

	"speakql"
	"speakql/internal/asr"
	"speakql/internal/dataset"
	"speakql/internal/metrics"
	"speakql/internal/speech"
	"speakql/internal/sqlengine"
)

func main() {
	db := dataset.NewEmployeesDB(dataset.DefaultEmployeesConfig())
	engine, err := speakql.NewEngine(speakql.Config{
		Grammar: speakql.TestGrammar(),
		Catalog: speakql.CatalogOf(db),
	})
	if err != nil {
		log.Fatal(err)
	}
	// A custom-trained recognizer, as the paper trains Azure Custom Speech
	// on the spoken-SQL corpus.
	recognizer := asr.NewEngine(asr.ACSProfile(), 7)
	recognizer.TrainQueries([]string{
		"SELECT Salary FROM Salaries WHERE FromDate = '1993-01-20'",
	})

	queries := []string{
		"SELECT AVG ( Salary ) FROM Salaries",
		"SELECT LastName FROM Employees NATURAL JOIN Salaries WHERE Salary > 70000",
		"SELECT Gender , COUNT ( * ) FROM Employees GROUP BY Gender",
		"SELECT FirstName FROM Employees WHERE HireDate > '1995-01-01' ORDER BY HireDate",
	}
	for _, sql := range queries {
		spoken := speech.VerbalizeQuery(sql)
		transcript := recognizer.Transcribe(spoken)
		out := engine.Correct(transcript)
		best := out.Best()

		rates := metrics.Compare(speakql.Tokenize(sql), best.Tokens)
		fmt.Println("dictated  :", sql)
		fmt.Println("spoken as :", strings.Join(spoken, " "))
		fmt.Println("ASR heard :", transcript)
		fmt.Println("corrected :", best.SQL)
		fmt.Printf("accuracy  : WRR %.2f, literal recall %.2f\n", rates.WRR, rates.LRR)

		res, err := sqlengine.Run(db, best.SQL)
		if err != nil {
			fmt.Println("exec      : error:", err)
		} else {
			fmt.Printf("exec      : %d rows, cols %v\n", len(res.Rows), res.Cols)
			for i, row := range res.Rows {
				if i == 3 {
					fmt.Printf("            … %d more rows\n", len(res.Rows)-3)
					break
				}
				cells := make([]string, len(row))
				for j, v := range row {
					cells[j] = v.String()
				}
				fmt.Println("           ", strings.Join(cells, " | "))
			}
		}
		fmt.Println()
	}
}
