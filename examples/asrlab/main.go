// ASR lab: a tour of the simulated speech channel — the error taxonomy of
// the paper's Table 1, the n-best alternatives, the trained (ACS) versus
// hint-based (GCS) engine profiles, and the effect of custom language-model
// training on schema identifiers.
//
//	go run ./examples/asrlab
package main

import (
	"fmt"
	"strings"

	"speakql/internal/asr"
	"speakql/internal/speech"
)

func main() {
	fmt.Println("== Table 1's error taxonomy, reproduced by the simulator ==")
	acs := asr.NewEngine(asr.ACSProfile(), 2024)

	cases := []struct {
		label string
		sql   string
	}{
		{"homophones (sum → some, where → wear)", "SELECT SUM ( Salary ) FROM Salaries WHERE Salary > 100"},
		{"out-of-vocabulary literal (CUSTID_1729A)", "SELECT * FROM Orders WHERE CustomerId = 'CUSTID_1729A'"},
		{"number re-segmentation (45412)", "SELECT * FROM Salaries WHERE Salary = 45412"},
		{"date mangling (1991-05-07)", "SELECT * FROM Salaries WHERE FromDate = '1991-05-07'"},
	}
	for _, c := range cases {
		spoken := speech.VerbalizeQuery(c.sql)
		fmt.Printf("\n%s\n  dictated: %s\n", c.label, c.sql)
		fmt.Printf("  spoken  : %s\n", strings.Join(spoken, " "))
		for alt, out := range acs.TranscribeN(spoken, 3) {
			fmt.Printf("  heard %d : %s\n", alt+1, out)
		}
	}

	fmt.Println("\n== Engine profiles: GCS symbol hints vs ACS words ==")
	gcs := asr.NewEngine(asr.GCSProfile(), 2024)
	q := "SELECT AVG ( Salary ) FROM Salaries WHERE Salary < 90000"
	spoken := speech.VerbalizeQuery(q)
	fmt.Printf("  GCS: %s\n", gcs.Transcribe(spoken))
	fmt.Printf("  ACS: %s\n", acs.Transcribe(spoken))

	fmt.Println("\n== Custom language-model training (Azure Custom Speech style) ==")
	id := "SELECT FromDate FROM Salaries WHERE FirstName = 'Tomokazu'"
	spoken = speech.VerbalizeQuery(id)
	fmt.Printf("  untrained: %s\n", acs.Transcribe(spoken))
	trained := asr.NewEngine(asr.ACSProfile(), 2024)
	trained.TrainQueries([]string{id})
	fmt.Printf("  trained  : %s\n", trained.Transcribe(spoken))
	fmt.Println("  (training adds schema identifiers to the vocabulary and lets the")
	fmt.Println("   language model join split identifiers back into single tokens —")
	fmt.Println("   the mechanism behind the paper's Employees/Yelp accuracy gap)")

	fmt.Println("\n== Eight voices, one query ==")
	for _, v := range speech.Voices {
		fmt.Printf("  %-9s %s\n", v.Name+":", strings.Join(
			v.VerbalizeQuery("SELECT * FROM Employees WHERE DepartmentNumber = 'd002'"), " "))
	}
}
