module speakql

go 1.22
