package grammar

import (
	"strings"

	"speakql/internal/sqltoken"
)

// Category types a literal placeholder (Section 4.1): each variable in a
// structure is a table name (T), an attribute name (A), or an attribute
// value (V). LIMIT counts get their own kind because they are always
// numeric, which literal determination exploits.
type Category int

const (
	// CatTable marks a table-name placeholder.
	CatTable Category = iota
	// CatAttr marks an attribute-name placeholder.
	CatAttr
	// CatValue marks an attribute-value placeholder.
	CatValue
	// CatLimit marks the numeric count after LIMIT.
	CatLimit
)

// String returns the single-letter code used in the paper (T/A/V), with "N"
// for LIMIT counts.
func (c Category) String() string {
	switch c {
	case CatTable:
		return "T"
	case CatAttr:
		return "A"
	case CatValue:
		return "V"
	default:
		return "N"
	}
}

func isLitToken(t string) bool {
	return sqltoken.Classify(t) == sqltoken.Literal
}

// AssignCategories walks a structure (a token sequence whose literals are
// placeholder variables) and returns the category of each literal in order
// of appearance. It mirrors the paper's rule set: FROM-clause literals are
// tables; SELECT/GROUP BY/ORDER BY targets are attributes; comparison
// left-hand sides are attributes and right-hand sides values; qualified
// references x.x type as table.attribute; BETWEEN/IN bind one attribute and
// value lists; LIMIT binds a count.
func AssignCategories(structure []string) []Category {
	var cats []Category
	section := "" // "", SELECT, FROM, WHERE
	i := 0
	n := len(structure)

	// operand consumes a bare or qualified reference starting at i and
	// appends its categories; bareCat is the category of an unqualified
	// reference in this position.
	operand := func(bareCat Category) {
		if i < n && isLitToken(structure[i]) {
			if i+2 < n && structure[i+1] == "." && isLitToken(structure[i+2]) {
				cats = append(cats, CatTable, CatAttr)
				i += 3
				return
			}
			cats = append(cats, bareCat)
			i++
		}
	}

	for i < n {
		t := strings.ToUpper(structure[i])
		switch t {
		case "SELECT":
			section = "SELECT"
			i++
		case "FROM":
			section = "FROM"
			i++
		case "WHERE":
			section = "WHERE"
			i++
		case "GROUP", "ORDER":
			i++ // BY follows
			if i < n && strings.ToUpper(structure[i]) == "BY" {
				i++
			}
			operand(CatAttr)
		case "LIMIT":
			i++
			if i < n && isLitToken(structure[i]) {
				cats = append(cats, CatLimit)
				i++
			}
		case "BETWEEN":
			// attribute BETWEEN value AND value — the attribute was already
			// consumed as the predicate's left side; here come the bounds.
			i++
			if i < n && isLitToken(structure[i]) {
				cats = append(cats, CatValue)
				i++
			}
			if i < n && strings.ToUpper(structure[i]) == "AND" {
				i++
			}
			if i < n && isLitToken(structure[i]) {
				cats = append(cats, CatValue)
				i++
			}
		case "IN":
			i++
			if i < n && structure[i] == "(" {
				i++
			}
			// One-level nesting (Appendix F.8): IN ( SELECT … ) types the
			// subquery's placeholders by its own clauses, not as values.
			if i < n && strings.ToUpper(structure[i]) == "SELECT" {
				continue
			}
			for i < n && structure[i] != ")" {
				if isLitToken(structure[i]) {
					cats = append(cats, CatValue)
				}
				i++
			}
		default:
			if !isLitToken(t) && t != "" {
				i++ // keyword, splchar, aggregate op, connective, paren, …
				continue
			}
			switch section {
			case "FROM":
				cats = append(cats, CatTable)
				i++
			case "WHERE":
				// Left side of a predicate (possibly qualified)…
				operand(CatAttr)
				// …then operator and right side, unless the operator is
				// BETWEEN/NOT BETWEEN/IN, handled by the outer loop.
				if i < n {
					switch structure[i] {
					case "=", "<", ">":
						i++
						operand(CatValue)
					}
				}
			default: // SELECT list (covers aggregate arguments too)
				operand(CatAttr)
			}
		}
	}
	return cats
}

// CountLiterals returns the number of literal tokens in a structure.
func CountLiterals(structure []string) int {
	n := 0
	for _, t := range structure {
		if isLitToken(t) {
			n++
		}
	}
	return n
}
