package grammar

import (
	"math/rand"
	"strings"
	"testing"

	"speakql/internal/sqltoken"
)

// Every structure the generator emits must derive from the declarative
// grammar — the Earley recognizer is the membership oracle validating the
// compositional generator.
func TestGeneratorSoundAgainstBNF(t *testing.T) {
	n := 0
	err := Generate(TestScale(), func(toks []string) bool {
		n++
		if n%37 != 0 { // sample to keep the test fast
			return true
		}
		if !Derives(toks) {
			t.Fatalf("generated structure does not derive: %v", toks)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing generated")
	}
}

func TestRandomStructuresDerive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		s := RandomStructure(rng, TestScale())
		if !Derives(s) {
			t.Fatalf("random structure does not derive: %v", s)
		}
	}
}

func TestDerivesExamples(t *testing.T) {
	good := []string{
		"SELECT x FROM x",
		"SELECT * FROM x",
		"SELECT x , x FROM x , x WHERE x = x AND x < x",
		"SELECT AVG ( x ) FROM x WHERE x BETWEEN x AND x",
		"SELECT COUNT ( * ) FROM x NATURAL JOIN x GROUP BY x",
		"SELECT x , COUNT ( * ) FROM x GROUP BY x",
		"SELECT x FROM x WHERE x . x = x . x ORDER BY x . x",
		"SELECT x FROM x WHERE x IN ( x , x , x ) ",
		"SELECT x FROM x WHERE x = x LIMIT x",
		"SELECT x FROM x LIMIT x",
		"select x from x where x = x", // case-insensitive keywords
	}
	for _, g := range good {
		if !Derives(strings.Fields(g)) {
			t.Errorf("Derives(%q) = false, want true", g)
		}
	}
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM x",
		"SELECT x",
		"SELECT x FROM",
		"FROM x SELECT x",
		"SELECT x FROM x WHERE",
		"SELECT x FROM x WHERE x",
		"SELECT x FROM x WHERE x =",
		"SELECT x FROM x WHERE x = x AND",
		"SELECT x FROM x x x = x", // the running example's masked transcript
		"SELECT x FROM x WHERE x BETWEEN x",
		"SELECT x x FROM x",
		"SELECT AVG ( x FROM x",
	}
	for _, b := range bad {
		if Derives(strings.Fields(b)) {
			t.Errorf("Derives(%q) = true, want false", b)
		}
	}
}

// The masked forms of the paper's Table 6 ground-truth queries (which our
// grammar extensions exist to cover) must derive — except Q7 and Q12, whose
// four-item select lists and triple predicates exceed every generation
// bound but still derive from the unbounded grammar, which is exactly the
// point of having the recognizer.
func TestTable6MaskedDerive(t *testing.T) {
	queries := []string{
		"SELECT AVG ( salary ) FROM Salaries",
		"SELECT Lastname FROM Employees NATURAL JOIN Salaries WHERE Salary > 70000",
		"SELECT FromDate FROM DepartmentEmployee WHERE DepartmentNumber = 'd002'",
		"SELECT FromDate FROM Employees NATURAL JOIN DepartmentManager WHERE FirstName = 'Karsten' ORDER BY HireDate",
		"SELECT SUM ( salary ) FROM Salaries WHERE FromDate = '1993-01-20'",
		"SELECT ToDate , COUNT ( salary ) FROM Salaries GROUP BY ToDate",
		"SELECT ToDate , MAX ( salary ) , COUNT ( salary ) , MIN ( salary ) FROM Salaries WHERE FromDate = '1990-03-20' GROUP BY ToDate",
		"SELECT FromDate , salary , ToDate FROM Employees NATURAL JOIN Salaries WHERE FirstName IN ( 'Tomokazu' , 'Goh' , 'Narain' , 'Perla' , 'Shimshon' )",
		"SELECT FirstName , AVG ( salary ) FROM Employees , Salaries , DepartmentManager WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = DepartmentManager . EmployeeNumber GROUP BY Employees . FirstName",
		"SELECT * FROM Employees NATURAL JOIN Titles WHERE ToDate = '2001-10-09' OR HireDate = '1996-05-10' OR title = 'Engineer' LIMIT 10",
		"SELECT Gender , AVG ( salary ) , MAX ( salary ) FROM Employees NATURAL JOIN Salaries GROUP BY Employees . Gender",
		"SELECT Gender , BirthDate , salary FROM Employees , Salaries , DepartmentManager WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = DepartmentManager . EmployeeNumber ORDER BY Employees . FirstName",
	}
	for i, q := range queries {
		masked := sqltoken.MaskGeneric(sqltoken.TokenizeSQL(q))
		if !Derives(masked) {
			t.Errorf("Table 6 Q%d masked form does not derive: %v", i+1, masked)
		}
	}
}

// Bounded-generation completeness: at test scale, everything that derives
// AND respects the bounds is generated. Spot-checked by verifying a few
// known in-bounds derivable strings appear in the corpus.
func TestGenerateCoversDerivableInBounds(t *testing.T) {
	corpus := map[string]bool{}
	if err := Generate(TestScale(), func(toks []string) bool {
		corpus[strings.Join(toks, " ")] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	inBounds := []string{
		"SELECT x , x FROM x , x WHERE x = x",
		"SELECT MIN ( x ) FROM x NATURAL JOIN x ORDER BY x . x",
		"SELECT COUNT ( * ) , COUNT ( * ) FROM x",
	}
	for _, s := range inBounds {
		if !Derives(strings.Fields(s)) {
			t.Fatalf("test string %q does not derive; fix the test", s)
		}
		if !corpus[s] {
			t.Errorf("derivable in-bounds structure missing from corpus: %q", s)
		}
	}
}
