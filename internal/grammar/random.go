package grammar

import "math/rand"

// RandomStructure derives one random structure from the grammar under cfg's
// limits (step 2 of the dataset-generation procedure, Section 6.1). The
// derivation draws uniformly over clause shapes rather than over the full
// enumerated set, matching a recursive random walk of the production rules.
// Repetition counts are geometric-ish: each extra item/predicate is added
// with probability extendP while under the limit, so short structures
// dominate as they do in real query workloads.
func RandomStructure(rng *rand.Rand, cfg GenConfig) []string {
	const extendP = 0.45
	var toks []string

	// SELECT clause.
	toks = append(toks, "SELECT")
	if rng.Intn(8) == 0 { // SELECT *
		toks = append(toks, "*")
	} else {
		items := 1
		for items < cfg.MaxSelectItems && rng.Float64() < extendP {
			items++
		}
		for i := 0; i < items; i++ {
			if i > 0 {
				toks = append(toks, ",")
			}
			toks = append(toks, randomSelectItem(rng, i == 0)...)
		}
	}

	// FROM clause.
	toks = append(toks, "FROM", Lit)
	if rng.Intn(2) == 0 { // join chain
		n := 1
		for n < cfg.MaxJoinTables && rng.Float64() < extendP {
			n++
			toks = append(toks, "NATURAL", "JOIN", Lit)
		}
	} else { // comma list
		n := 1
		for n < cfg.MaxTables && rng.Float64() < extendP {
			n++
			toks = append(toks, ",", Lit)
		}
	}

	// Optional WHERE / tail.
	switch rng.Intn(10) {
	case 0: // no WHERE, no tail
	case 1: // bare tail
		toks = append(toks, randomTail(rng)...)
	default:
		toks = append(toks, "WHERE")
		if rng.Intn(6) == 0 {
			toks = append(toks, randomSpecialWhere(rng, cfg)...)
		} else {
			preds := 1
			for preds < cfg.MaxPredicates && rng.Float64() < extendP {
				preds++
			}
			for i := 0; i < preds; i++ {
				if i > 0 {
					toks = append(toks, connectives[rng.Intn(len(connectives))])
				}
				toks = append(toks, randomExp(rng)...)
			}
			if rng.Intn(3) == 0 {
				toks = append(toks, randomTail(rng)...)
			}
		}
	}
	if len(toks) > cfg.MaxTokens {
		// Regenerate rather than truncate: truncation would leave an
		// ungrammatical structure. Bounded recursion: expected depth is tiny
		// because random structures rarely approach MaxTokens.
		return RandomStructure(rng, cfg)
	}
	return toks
}

func randomSelectItem(rng *rand.Rand, first bool) []string {
	if rng.Intn(2) == 0 {
		return []string{Lit}
	}
	if first && rng.Intn(6) == 0 {
		return []string{"COUNT", "(", "*", ")"}
	}
	op := aggOps[rng.Intn(len(aggOps))]
	return []string{op, "(", Lit, ")"}
}

func randomOperand(rng *rand.Rand) []string {
	if rng.Intn(4) == 0 {
		return []string{Lit, ".", Lit}
	}
	return []string{Lit}
}

func randomExp(rng *rand.Rand) []string {
	var toks []string
	toks = append(toks, randomOperand(rng)...)
	toks = append(toks, cmpOps[rng.Intn(len(cmpOps))])
	toks = append(toks, randomOperand(rng)...)
	return toks
}

func randomTail(rng *rand.Rand) []string {
	switch rng.Intn(5) {
	case 0:
		return []string{"LIMIT", Lit}
	case 1:
		return append([]string{"GROUP", "BY"}, randomOperand(rng)...)
	case 2:
		return append([]string{"ORDER", "BY"}, randomOperand(rng)...)
	case 3:
		return append([]string{"GROUP", "BY"}, randomOperand(rng)...)
	default:
		return append([]string{"ORDER", "BY"}, randomOperand(rng)...)
	}
}

func randomSpecialWhere(rng *rand.Rand, cfg GenConfig) []string {
	switch rng.Intn(3) {
	case 0:
		return []string{Lit, "BETWEEN", Lit, "AND", Lit}
	case 1:
		return []string{Lit, "NOT", "BETWEEN", Lit, "AND", Lit}
	default:
		n := 1 + rng.Intn(cfg.MaxInList)
		toks := []string{Lit, "IN", "(", Lit}
		for i := 1; i < n; i++ {
			toks = append(toks, ",", Lit)
		}
		return append(toks, ")")
	}
}
