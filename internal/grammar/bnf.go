package grammar

// This file gives the Box 1 grammar (Appendix C) a declarative form: the
// production rules as data, and an Earley recognizer over them. The paper
// deliberately inverts parsing — it generates all strings and searches —
// because "deterministic parsing will almost always fail" on ASR output.
// The recognizer here is therefore not on the query path: it is the
// grammar's ground truth, used to validate that everything the generator
// emits (and everything structure determination returns) actually derives
// from the productions, and by tests that need a membership oracle without
// enumerating the corpus.

// Symbol is a grammar symbol: terminals are literal token strings
// (uppercase keywords, special characters, or the literal symbol "x");
// nonterminals start with '$'.
type Symbol = string

// Production is one rule: Lhs → Rhs.
type Production struct {
	Lhs Symbol
	Rhs []Symbol
}

// Productions returns the grammar of Box 1 with this module's two
// documented extensions (NATURAL JOIN chains; bare CLS/LMT tails without
// WHERE; COUNT(*) in later select positions). Nonterminal names follow the
// paper's.
func Productions() []Production {
	p := func(lhs string, rhs ...string) Production {
		return Production{Lhs: lhs, Rhs: rhs}
	}
	var rules []Production
	add := func(ps ...Production) { rules = append(rules, ps...) }

	// Q → S F | S F W | S F TC            (TC: extension)
	add(
		p("$Q", "$S", "$F"),
		p("$Q", "$S", "$F", "$W"),
		p("$Q", "$S", "$F", "$TC"),
	)
	// S → SELECT (star | item list)
	add(
		p("$S", "SELECT", "*"),
		p("$S", "SELECT", "$ITEM1"),
		p("$S", "SELECT", "$ITEM1", "$C"),
	)
	// First item: L, aggregate, COUNT(*).
	add(
		p("$ITEM1", "x"),
		p("$ITEM1", "$AGGF"),
		p("$ITEM1", "COUNT", "(", "*", ")"),
	)
	for _, op := range aggOps {
		add(p("$AGGF", op, "(", "x", ")"))
	}
	// C → , item | C , item                (COUNT(*) extension included)
	add(
		p("$C", ",", "$ITEMR"),
		p("$C", "$C", ",", "$ITEMR"),
		p("$ITEMR", "x"),
		p("$ITEMR", "$AGGF"),
		p("$ITEMR", "COUNT", "(", "*", ")"),
	)
	// F → FROM table (, table)* | FROM table (NATURAL JOIN table)*
	add(
		p("$F", "FROM", "x"),
		p("$F", "FROM", "x", "$CF"),
		p("$F", "FROM", "x", "$NJ"),
		p("$CF", ",", "x"),
		p("$CF", "$CF", ",", "x"),
		p("$NJ", "NATURAL", "JOIN", "x"),
		p("$NJ", "$NJ", "NATURAL", "JOIN", "x"),
	)
	// W → WHERE WD | WHERE AGG
	add(
		p("$W", "WHERE", "$WD"),
		p("$W", "WHERE", "$AGG"),
	)
	// WD → EXP | EXP AND WD | EXP OR WD
	add(
		p("$WD", "$EXP"),
		p("$WD", "$EXP", "AND", "$WD"),
		p("$WD", "$EXP", "OR", "$WD"),
	)
	// EXP → operand OP operand; operands are L or WDD (x . x).
	for _, op := range cmpOps {
		add(
			p("$EXP", "$OPND", op, "$OPND"),
		)
	}
	add(
		p("$OPND", "x"),
		p("$OPND", "$WDD"),
		p("$WDD", "x", ".", "x"),
	)
	// AGG → WD CLS target | WD LMT L | BETWEEN and IN forms.
	add(
		p("$AGG", "$WD", "$CLS", "$OPND"),
		p("$AGG", "$WD", "LIMIT", "x"),
		p("$AGG", "x", "BETWEEN", "x", "AND", "x"),
		p("$AGG", "x", "NOT", "BETWEEN", "x", "AND", "x"),
		p("$AGG", "x", "IN", "(", "x", ")"),
		p("$AGG", "x", "IN", "(", "x", "$CS", ")"),
		p("$CS", ",", "x"),
		p("$CS", "$CS", ",", "x"),
	)
	// CLS → ORDER BY | GROUP BY
	add(
		p("$CLS", "ORDER", "BY"),
		p("$CLS", "GROUP", "BY"),
	)
	// TC → CLS target | LIMIT L          (extension: tails without WHERE)
	add(
		p("$TC", "$CLS", "$OPND"),
		p("$TC", "LIMIT", "x"),
	)
	return rules
}

// Derives reports whether the token sequence derives from $Q under
// Productions(), using an Earley recognizer. Placeholder tokens (x, x1,
// x2, …) all match the literal symbol.
func Derives(tokens []string) bool {
	return earley(Productions(), "$Q", normalizeForParse(tokens))
}

func normalizeForParse(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		if isLitToken(t) {
			out[i] = "x"
		} else {
			out[i] = canonUpper(t)
		}
	}
	return out
}

func canonUpper(t string) string {
	// Keywords are uppercased; splchars pass through.
	if len(t) == 1 {
		return t
	}
	b := []byte(t)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

// earley is a standard Earley recognizer (no parse-tree construction).
type earleyItem struct {
	prod   int // index into rules
	dot    int
	origin int
}

func earley(rules []Production, start Symbol, input []string) bool {
	byLhs := map[Symbol][]int{}
	for i, r := range rules {
		byLhs[r.Lhs] = append(byLhs[r.Lhs], i)
	}
	n := len(input)
	chart := make([][]earleyItem, n+1)
	seen := make([]map[earleyItem]bool, n+1)
	for i := range seen {
		seen[i] = map[earleyItem]bool{}
	}
	push := func(k int, it earleyItem) {
		if !seen[k][it] {
			seen[k][it] = true
			chart[k] = append(chart[k], it)
		}
	}
	for _, pi := range byLhs[start] {
		push(0, earleyItem{prod: pi})
	}
	for k := 0; k <= n; k++ {
		for idx := 0; idx < len(chart[k]); idx++ {
			it := chart[k][idx]
			rule := rules[it.prod]
			if it.dot < len(rule.Rhs) {
				sym := rule.Rhs[it.dot]
				if len(sym) > 0 && sym[0] == '$' {
					// Predict.
					for _, pi := range byLhs[sym] {
						push(k, earleyItem{prod: pi, origin: k})
					}
				} else if k < n && input[k] == sym {
					// Scan.
					push(k+1, earleyItem{prod: it.prod, dot: it.dot + 1, origin: it.origin})
				}
				continue
			}
			// Complete.
			lhs := rule.Lhs
			for _, parent := range chart[it.origin] {
				pr := rules[parent.prod]
				if parent.dot < len(pr.Rhs) && pr.Rhs[parent.dot] == lhs {
					push(k, earleyItem{prod: parent.prod, dot: parent.dot + 1, origin: parent.origin})
				}
			}
		}
	}
	for _, it := range chart[n] {
		rule := rules[it.prod]
		if rule.Lhs == start && it.dot == len(rule.Rhs) && it.origin == 0 {
			return true
		}
	}
	return false
}
