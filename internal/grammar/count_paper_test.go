package grammar

import "testing"

func TestPaperScaleCount(t *testing.T) {
	if testing.Short() {
		t.Skip("PaperScale count is slow; skipped in -short mode")
	}
	n, err := Count(PaperScale())
	if err != nil {
		t.Fatal(err)
	}
	if n < 500000 {
		t.Errorf("PaperScale count = %d, want order of 10^6 (paper: ≈1.6M)", n)
	}
	t.Logf("PaperScale=%d structures", n)
}
