package grammar

import (
	"math/rand"
	"strings"
	"testing"

	"speakql/internal/sqltoken"
)

func collect(t *testing.T, cfg GenConfig) [][]string {
	t.Helper()
	var out [][]string
	err := Generate(cfg, func(toks []string) bool {
		out = append(out, append([]string(nil), toks...))
		return true
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return out
}

func TestGenerateBasics(t *testing.T) {
	structs := collect(t, TestScale())
	if len(structs) == 0 {
		t.Fatal("no structures generated")
	}
	seen := make(map[string]bool, len(structs))
	for _, s := range structs {
		key := strings.Join(s, " ")
		if seen[key] {
			t.Fatalf("duplicate structure generated: %s", key)
		}
		seen[key] = true
	}
	// The minimal query must be present.
	if !seen["SELECT x FROM x"] {
		t.Error("missing minimal structure SELECT x FROM x")
	}
	if !seen["SELECT * FROM x"] {
		t.Error("missing SELECT * FROM x")
	}
	if !seen["SELECT x FROM x WHERE x = x"] {
		t.Error("missing SELECT x FROM x WHERE x = x")
	}
	if !seen["SELECT AVG ( x ) FROM x"] {
		t.Error("missing aggregate structure")
	}
	if !seen["SELECT COUNT ( * ) FROM x"] {
		t.Error("missing COUNT(*) structure")
	}
	if !seen["SELECT x FROM x NATURAL JOIN x WHERE x = x"] {
		t.Error("missing natural join structure")
	}
	if !seen["SELECT x FROM x WHERE x BETWEEN x AND x"] {
		t.Error("missing BETWEEN structure")
	}
	if !seen["SELECT x FROM x WHERE x IN ( x , x )"] {
		t.Error("missing IN structure")
	}
	if !seen["SELECT x FROM x WHERE x = x ORDER BY x"] {
		t.Error("missing ORDER BY tail")
	}
	if !seen["SELECT x FROM x GROUP BY x"] {
		t.Error("missing bare GROUP BY structure (Table 6 Q6 shape)")
	}
	if !seen["SELECT x FROM x LIMIT x"] {
		t.Error("missing bare LIMIT structure")
	}
}

func TestGenerateRespectsMaxTokens(t *testing.T) {
	cfg := TestScale()
	for _, s := range collect(t, cfg) {
		if len(s) > cfg.MaxTokens {
			t.Fatalf("structure exceeds MaxTokens: %v", s)
		}
	}
}

func TestGenerateLengthOrdered(t *testing.T) {
	prev := 0
	err := Generate(TestScale(), func(toks []string) bool {
		if len(toks) < prev {
			t.Fatalf("length order violated: %d after %d", len(toks), prev)
		}
		prev = len(toks)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGenerateOnlyGrammarTokens(t *testing.T) {
	for _, s := range collect(t, TestScale()) {
		for _, tok := range s {
			if tok == Lit {
				continue
			}
			if c := sqltoken.Classify(tok); c == sqltoken.Literal {
				t.Fatalf("non-grammar token %q in structure %v", tok, s)
			}
		}
	}
}

func TestGenerateMaxStructuresCap(t *testing.T) {
	cfg := TestScale()
	cfg.MaxStructures = 100
	if n, _ := Count(cfg); n != 100 {
		t.Fatalf("cap: got %d structures, want 100", n)
	}
}

func TestGenerateEmitStop(t *testing.T) {
	n := 0
	err := Generate(TestScale(), func([]string) bool {
		n++
		return n < 10
	})
	if err != nil || n != 10 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if err := Generate(GenConfig{}, func([]string) bool { return true }); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestScaleCounts(t *testing.T) {
	nTest, err := Count(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if nTest < 1000 || nTest > 100000 {
		t.Errorf("TestScale count = %d, want a few thousand", nTest)
	}
	if testing.Short() {
		t.Skip("skipping DefaultScale count in -short mode")
	}
	nDef, err := Count(DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if nDef < 50000 {
		t.Errorf("DefaultScale count = %d, want ≥ 50k", nDef)
	}
	t.Logf("TestScale=%d DefaultScale=%d structures", nTest, nDef)
}

func TestRandomStructureWithinConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := TestScale()
	for i := 0; i < 2000; i++ {
		s := RandomStructure(rng, cfg)
		if len(s) > cfg.MaxTokens {
			t.Fatalf("random structure too long: %v", s)
		}
		if s[0] != "SELECT" {
			t.Fatalf("random structure must start with SELECT: %v", s)
		}
		foundFrom := false
		for _, tok := range s {
			if tok == "FROM" {
				foundFrom = true
			}
		}
		if !foundFrom {
			t.Fatalf("random structure missing FROM: %v", s)
		}
	}
}

// Every random structure must be inside the enumerated corpus for the same
// config — the dataset generator and the index must agree on coverage.
func TestRandomStructureCoveredByGenerate(t *testing.T) {
	cfg := TestScale()
	corpus := make(map[string]bool)
	err := Generate(cfg, func(toks []string) bool {
		corpus[strings.Join(toks, " ")] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		s := RandomStructure(rng, cfg)
		if !corpus[strings.Join(s, " ")] {
			t.Fatalf("random structure not in enumerated corpus: %v", s)
		}
	}
}

func TestRandomStructureDeterministic(t *testing.T) {
	a := RandomStructure(rand.New(rand.NewSource(5)), TestScale())
	b := RandomStructure(rand.New(rand.NewSource(5)), TestScale())
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatalf("same seed produced different structures: %v vs %v", a, b)
	}
}

func TestAssignCategories(t *testing.T) {
	cases := []struct {
		structure string
		want      string // category letters in placeholder order
	}{
		{"SELECT x FROM x", "AT"},
		{"SELECT * FROM x", "T"},
		{"SELECT x FROM x WHERE x = x", "ATAV"},
		{"SELECT x , x FROM x , x", "AATT"},
		{"SELECT AVG ( x ) FROM x", "AT"},
		{"SELECT COUNT ( * ) FROM x WHERE x < x", "TAV"},
		{"SELECT x FROM x NATURAL JOIN x WHERE x = x AND x > x", "ATTAVAV"},
		{"SELECT x FROM x WHERE x . x = x . x", "ATTATA"},
		{"SELECT x FROM x WHERE x = x . x", "ATATA"},
		{"SELECT x FROM x WHERE x BETWEEN x AND x", "ATAVV"},
		{"SELECT x FROM x WHERE x NOT BETWEEN x AND x", "ATAVV"},
		{"SELECT x FROM x WHERE x IN ( x , x , x )", "ATAVVV"},
		{"SELECT x FROM x WHERE x = x ORDER BY x", "ATAVA"},
		{"SELECT x FROM x WHERE x = x GROUP BY x . x", "ATAVTA"},
		{"SELECT x FROM x WHERE x = x LIMIT x", "ATAVN"},
		{"SELECT x FROM x GROUP BY x", "ATA"},
		{"SELECT x FROM x LIMIT x", "ATN"},
		{"SELECT x FROM x WHERE x = x OR x = x LIMIT x", "ATAVAVN"},
	}
	for _, c := range cases {
		cats := AssignCategories(strings.Fields(c.structure))
		var got strings.Builder
		for _, cat := range cats {
			got.WriteString(cat.String())
		}
		if got.String() != c.want {
			t.Errorf("AssignCategories(%q) = %s, want %s", c.structure, got.String(), c.want)
		}
	}
}

// Property: for every generated structure, the number of assigned categories
// equals the number of literal tokens.
func TestAssignCategoriesCoversAllLiterals(t *testing.T) {
	for _, s := range collect(t, TestScale()) {
		cats := AssignCategories(s)
		if len(cats) != CountLiterals(s) {
			t.Fatalf("structure %v: %d categories for %d literals",
				s, len(cats), CountLiterals(s))
		}
	}
}

// Category assignment must also work on numbered placeholders, which is how
// the structure-determination output arrives (x1, x2, …).
func TestAssignCategoriesNumberedPlaceholders(t *testing.T) {
	cats := AssignCategories(strings.Fields("SELECT x1 FROM x2 WHERE x3 = x4"))
	want := []Category{CatAttr, CatTable, CatAttr, CatValue}
	if len(cats) != len(want) {
		t.Fatalf("got %v", cats)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("cats[%d] = %v, want %v", i, cats[i], want[i])
		}
	}
}

// The paper's running example: the structure of Figure 4.
func TestFigure4Categories(t *testing.T) {
	cats := AssignCategories(strings.Fields("SELECT x1 FROM x2"))
	if cats[0] != CatAttr || cats[1] != CatTable {
		t.Fatalf("Figure 4: got %v %v, want A T", cats[0], cats[1])
	}
}

func TestAssignCategoriesNestedSubquery(t *testing.T) {
	cats := AssignCategories(strings.Fields(
		"SELECT x1 FROM x2 WHERE x3 IN ( SELECT x4 FROM x5 WHERE x6 > x7 )"))
	var got strings.Builder
	for _, c := range cats {
		got.WriteString(c.String())
	}
	// Outer: attr, table, attr; inner: attr, table, attr, value.
	if got.String() != "ATAATAV" {
		t.Errorf("nested categories = %s, want ATAATAV", got.String())
	}
}
