// Package grammar implements the SQL subset grammar of the paper (Box 1,
// Appendix C): Select-Project-Join-Aggregation queries with LIMIT and
// ORDER BY / GROUP BY, natural joins and comma joins, conjunctive /
// disjunctive predicates, BETWEEN and IN. It provides
//
//   - bounded enumeration of ground-truth SQL structures (Section 3.2's
//     offline Structure Generator), emitted in increasing token length so a
//     structure cap keeps the shortest (most common) structures;
//   - random structure derivation, used by the dataset generation procedure
//     of Section 6.1 (step 2);
//   - category assignment (Section 4.1): typing every literal placeholder in
//     a structure as a table name, attribute name, attribute value, or
//     LIMIT count.
//
// Two deliberate extensions over the literally-printed Box 1, both required
// to derive the paper's own example queries (Table 6): NATURAL JOIN chains
// in the FROM clause, and ORDER BY / GROUP BY / LIMIT tails on queries
// without a WHERE clause (Table 6's Q6 and Q11 have no WHERE).
package grammar

import "fmt"

// Lit is the generic literal symbol of the grammar (production L → 'x').
const Lit = "x"

// GenConfig bounds structure enumeration. The full grammar is infinite; the
// paper caps strings at 50 tokens and reports ≈1.6M structures, which
// implies additional (unstated) limits on repetition; these knobs make those
// limits explicit.
type GenConfig struct {
	// MaxTokens is the hard cap on structure length (the paper uses 50).
	MaxTokens int
	// MaxSelectItems bounds the number of items in the SELECT list.
	MaxSelectItems int
	// MaxPredicates bounds AND/OR-chained comparison predicates in WHERE.
	MaxPredicates int
	// MaxTables bounds comma-separated tables in FROM.
	MaxTables int
	// MaxJoinTables bounds NATURAL JOIN chains in FROM.
	MaxJoinTables int
	// MaxInList bounds the number of values in an IN (…) list.
	MaxInList int
	// MaxStructures, when positive, caps the number of generated
	// structures; enumeration is length-ordered, so the cap keeps every
	// structure below some token length and a deterministic prefix of the
	// next length.
	MaxStructures int
}

// TestScale is a small configuration for unit tests: a few thousand
// structures, generated in milliseconds.
func TestScale() GenConfig {
	return GenConfig{
		MaxTokens:      30,
		MaxSelectItems: 2,
		MaxPredicates:  1,
		MaxTables:      2,
		MaxJoinTables:  2,
		MaxInList:      2,
	}
}

// DefaultScale is the configuration the experiment harness uses: a few
// hundred thousand structures (≈0.4M), enough to exhibit the paper's
// latency/accuracy behaviour while building in seconds.
func DefaultScale() GenConfig {
	return GenConfig{
		MaxTokens:      40,
		MaxSelectItems: 2,
		MaxPredicates:  2,
		MaxTables:      3,
		MaxJoinTables:  3,
		MaxInList:      5,
	}
}

// PaperScale approximates the paper's corpus: strings up to 50 tokens,
// on the order of 10^6 structures (≈3.6M; the paper reports ≈1.6M).
func PaperScale() GenConfig {
	return GenConfig{
		MaxTokens:      50,
		MaxSelectItems: 3,
		MaxPredicates:  2,
		MaxTables:      3,
		MaxJoinTables:  3,
		MaxInList:      5,
	}
}

// Validate reports whether the configuration is usable.
func (c GenConfig) Validate() error {
	switch {
	case c.MaxTokens < 4:
		return fmt.Errorf("grammar: MaxTokens %d too small for any query", c.MaxTokens)
	case c.MaxSelectItems < 1:
		return fmt.Errorf("grammar: MaxSelectItems must be ≥ 1")
	case c.MaxPredicates < 0, c.MaxTables < 1, c.MaxJoinTables < 1, c.MaxInList < 1:
		return fmt.Errorf("grammar: negative or zero repetition bound")
	}
	return nil
}

// aggOps are the aggregate functions of production SEL_OP.
var aggOps = []string{"AVG", "SUM", "MAX", "MIN", "COUNT"}

// cmpOps are the comparison operators of production OP.
var cmpOps = []string{"=", "<", ">"}

// connectives join predicates in WD.
var connectives = []string{"AND", "OR"}

// variant is one alternative expansion of a clause, as a token sequence.
type variant []string

func cat(parts ...[]string) variant {
	var v variant
	for _, p := range parts {
		v = append(v, p...)
	}
	return v
}

// selectItemsFirst returns the variants allowed as the first SELECT item
// (Box 1's S productions): a literal, an aggregate over a literal, or
// COUNT(*).
func selectItemsFirst() []variant {
	vs := []variant{{Lit}}
	for _, op := range aggOps {
		vs = append(vs, variant{op, "(", Lit, ")"})
	}
	vs = append(vs, variant{"COUNT", "(", "*", ")"})
	return vs
}

// selectItemsRest returns the variants allowed for subsequent SELECT items
// (production C): a literal or an aggregate over a literal. COUNT(*) is
// also allowed here — a deliberate extension over the printed Box 1 (whose
// C production omits it), because "SELECT g , COUNT ( * ) … GROUP BY g" is
// among the most common spoken analysis shapes.
func selectItemsRest() []variant {
	vs := []variant{{Lit}}
	for _, op := range aggOps {
		vs = append(vs, variant{op, "(", Lit, ")"})
	}
	vs = append(vs, variant{"COUNT", "(", "*", ")"})
	return vs
}

// selectVariants enumerates SELECT clauses: SELECT * plus item lists up to
// cfg.MaxSelectItems.
func selectVariants(cfg GenConfig) []variant {
	out := []variant{{"SELECT", "*"}}
	lists := [][]variant{nil} // lists[k] = all item lists of k items
	first := selectItemsFirst()
	rest := selectItemsRest()
	cur := make([]variant, 0, len(first))
	for _, f := range first {
		cur = append(cur, f)
	}
	for k := 1; k <= cfg.MaxSelectItems; k++ {
		lists = append(lists, cur)
		if k == cfg.MaxSelectItems {
			break
		}
		var next []variant
		for _, prefix := range cur {
			for _, r := range rest {
				next = append(next, cat(prefix, []string{","}, r))
			}
		}
		cur = next
	}
	for k := 1; k < len(lists); k++ {
		for _, l := range lists[k] {
			out = append(out, cat([]string{"SELECT"}, l))
		}
	}
	return out
}

// fromVariants enumerates FROM clauses: a single table, NATURAL JOIN chains
// up to MaxJoinTables, and comma lists up to MaxTables.
func fromVariants(cfg GenConfig) []variant {
	out := []variant{{"FROM", Lit}}
	join := variant{"FROM", Lit}
	for k := 2; k <= cfg.MaxJoinTables; k++ {
		join = cat(join, []string{"NATURAL", "JOIN", Lit})
		out = append(out, join)
	}
	comma := variant{"FROM", Lit}
	for k := 2; k <= cfg.MaxTables; k++ {
		comma = cat(comma, []string{",", Lit})
		out = append(out, comma)
	}
	return out
}

// operandVariants returns the two operand shapes of EXP: a bare literal and
// a qualified reference WDD (x . x).
func operandVariants() []variant {
	return []variant{{Lit}, {Lit, ".", Lit}}
}

// expVariants enumerates single comparison predicates (production EXP):
// operand OP operand, 2×3×2 = 12 shapes.
func expVariants() []variant {
	var out []variant
	for _, l := range operandVariants() {
		for _, op := range cmpOps {
			for _, r := range operandVariants() {
				out = append(out, cat(l, []string{op}, r))
			}
		}
	}
	return out
}

// wdVariants enumerates predicate chains (production WD) with up to
// cfg.MaxPredicates predicates joined by AND/OR.
func wdVariants(cfg GenConfig) []variant {
	exps := expVariants()
	var out []variant
	cur := exps
	for k := 1; k <= cfg.MaxPredicates; k++ {
		out = append(out, cur...)
		if k == cfg.MaxPredicates {
			break
		}
		var next []variant
		for _, prefix := range cur {
			for _, conn := range connectives {
				for _, e := range exps {
					next = append(next, cat(prefix, []string{conn}, e))
				}
			}
		}
		cur = next
	}
	return out
}

// tailVariants enumerates the trailing clause CLS/LMT of production AGG:
// ORDER BY / GROUP BY over a literal or a qualified reference, and LIMIT.
func tailVariants() []variant {
	var out []variant
	for _, cls := range [][]string{{"ORDER", "BY"}, {"GROUP", "BY"}} {
		for _, tgt := range operandVariants() {
			out = append(out, cat(cls, tgt))
		}
	}
	out = append(out, variant{"LIMIT", Lit})
	return out
}

// specialWhereVariants enumerates the BETWEEN and IN forms of production
// AGG that constitute a whole WHERE body on their own.
func specialWhereVariants(cfg GenConfig) []variant {
	out := []variant{
		{Lit, "BETWEEN", Lit, "AND", Lit},
		{Lit, "NOT", "BETWEEN", Lit, "AND", Lit},
	}
	in := variant{Lit, "IN", "(", Lit}
	for k := 1; k <= cfg.MaxInList; k++ {
		out = append(out, cat(in, []string{")"}))
		in = cat(in, []string{",", Lit})
	}
	return out
}

// whereVariants enumerates complete WHERE bodies: plain predicate chains,
// predicate chains with a CLS/LMT tail, and the BETWEEN/IN specials
// (optionally tailed as well, matching AGG → WD CLS L composition).
func whereVariants(cfg GenConfig) []variant {
	var out []variant
	wds := wdVariants(cfg)
	tails := tailVariants()
	specials := specialWhereVariants(cfg)
	for _, w := range wds {
		out = append(out, cat([]string{"WHERE"}, w))
		for _, t := range tails {
			out = append(out, cat([]string{"WHERE"}, w, t))
		}
	}
	out = append(out, prefixAll("WHERE", specials)...)
	return out
}

func prefixAll(kw string, vs []variant) []variant {
	out := make([]variant, len(vs))
	for i, v := range vs {
		out[i] = cat([]string{kw}, v)
	}
	return out
}

// endVariants enumerates everything after FROM: nothing, a WHERE body, or a
// bare CLS/LMT tail (the extension deriving Table 6's Q6/Q11).
func endVariants(cfg GenConfig) []variant {
	out := []variant{{}}
	out = append(out, whereVariants(cfg)...)
	out = append(out, tailVariants()...)
	return out
}

// Generate enumerates every structure permitted by cfg in increasing token
// length (ties resolved deterministically by clause enumeration order) and
// calls emit for each. Generation stops early if emit returns false or the
// MaxStructures cap is reached. The token slice passed to emit is reused;
// callers must copy it if retained.
func Generate(cfg GenConfig, emit func(tokens []string) bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	sel := groupByLen(selectVariants(cfg))
	from := groupByLen(fromVariants(cfg))
	end := groupByLen(endVariants(cfg))
	count := 0
	buf := make([]string, 0, cfg.MaxTokens)
	for total := 2; total <= cfg.MaxTokens; total++ {
		for ls, svs := range sel {
			if len(svs) == 0 || ls > total {
				continue
			}
			for lf, fvs := range from {
				if len(fvs) == 0 || ls+lf > total {
					continue
				}
				le := total - ls - lf
				if le < 0 || le >= len(end) {
					continue
				}
				evs := end[le]
				if len(evs) == 0 {
					continue
				}
				for _, s := range svs {
					for _, f := range fvs {
						for _, e := range evs {
							buf = buf[:0]
							buf = append(buf, s...)
							buf = append(buf, f...)
							buf = append(buf, e...)
							if !emit(buf) {
								return nil
							}
							count++
							if cfg.MaxStructures > 0 && count >= cfg.MaxStructures {
								return nil
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// groupByLen buckets variants by token length; index = length.
func groupByLen(vs []variant) [][]variant {
	maxLen := 0
	for _, v := range vs {
		if len(v) > maxLen {
			maxLen = len(v)
		}
	}
	out := make([][]variant, maxLen+1)
	for _, v := range vs {
		out[len(v)] = append(out[len(v)], v)
	}
	return out
}

// Count returns the number of structures cfg generates (subject to its own
// MaxStructures cap).
func Count(cfg GenConfig) (int, error) {
	n := 0
	err := Generate(cfg, func([]string) bool { n++; return true })
	return n, err
}
