package trieindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The structure corpus is generated offline (Section 3.2); a production
// deployment builds the index once and serves it. Save/ReadIndex persist
// the index in a compact binary format.
//
// Version 2 serializes the frozen arenas directly — per trie the num[]
// (child-count) array, the tok[] array, and a leaf bitmap. Because the
// arena layout is breadth-first, first[] is exactly the running prefix sum
// of num[] and is derived on load, so cold-start is a few bulk array reads
// per trie with no pointer-trie reconstruction and no re-insertion. Version
// 1 (each structure as a token-id path, re-inserted on load) is still read
// for compatibility. Either way ReadIndex returns a frozen index.

const (
	persistMagic     = "SPQLIX"
	persistVersionV1 = 1
	persistVersion   = 2

	// Hostile-input ceilings. A persisted header is untrusted until proven
	// otherwise: every count is bounded before it sizes an allocation, and
	// variable-length sections are read with append-grow slices so memory
	// consumed tracks bytes actually present in the input, not bytes a
	// forged header promises.
	maxPersistLen    = 1 << 16 // longest structure any sane corpus holds
	maxPersistTokens = 1 << 16 // tokenID is uint16; more would wrap intern
	maxPersistNodes  = 1 << 28 // per-trie arena nodes (int32 offsets)
	persistPrealloc  = 1 << 12 // cap on header-trusting preallocation
)

// Save serializes the index in the arena format, freezing it first if
// needed (Freeze is idempotent and result-preserving). The INV corpus flag
// is not persisted — the loader chooses whether to retain the flat corpus.
func (ix *Index) Save(w io.Writer) (err error) {
	ix.Freeze()
	bw := bufio.NewWriter(w)
	defer func() {
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
	}()
	if _, err = bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err = writeUvarint(bw, persistVersion); err != nil {
		return err
	}
	if err = writeUvarint(bw, uint64(ix.maxLen)); err != nil {
		return err
	}
	// Token dictionary.
	if err = writeUvarint(bw, uint64(len(ix.in.strs))); err != nil {
		return err
	}
	for _, s := range ix.in.strs {
		if err = writeString(bw, s); err != nil {
			return err
		}
	}
	if err = writeUvarint(bw, uint64(ix.total)); err != nil {
		return err
	}
	nTries := 0
	for _, tr := range ix.tries {
		if tr != nil {
			nTries++
		}
	}
	if err = writeUvarint(bw, uint64(nTries)); err != nil {
		return err
	}
	for length, tr := range ix.tries {
		if tr == nil {
			continue
		}
		if err = writeArena(bw, length, tr); err != nil {
			return err
		}
	}
	return nil
}

// writeArena emits one frozen trie: its length, structure count, node
// count, num[] and tok[] arrays, and the leaf bitmap. first[] is implied by
// the BFS layout and not stored.
func writeArena(w *bufio.Writer, length int, tr *trie) error {
	ft := tr.flat
	n := len(ft.tok) // includes the root at index 0
	if err := writeUvarint(w, uint64(length)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(tr.count)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(n)); err != nil {
		return err
	}
	for _, c := range ft.num {
		if err := writeUvarint(w, uint64(c)); err != nil {
			return err
		}
	}
	for _, id := range ft.tok[1:] { // root's tok is unused
		if err := writeUvarint(w, uint64(id)); err != nil {
			return err
		}
	}
	bitmap := make([]byte, (n+7)/8)
	for i, l := range ft.leaf {
		if l {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	_, err := w.Write(bitmap)
	return err
}

// ReadIndex loads an index persisted by Save (version 2 arena format or the
// legacy version 1 structure list). keepINV retains the flat corpus for the
// inverted-index search path. The returned index is frozen.
func ReadIndex(r io.Reader, keepINV bool) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trieindex: read magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("trieindex: not an index file")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != persistVersionV1 && version != persistVersion {
		return nil, fmt.Errorf("trieindex: unsupported version %d", version)
	}
	maxLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if maxLen == 0 || maxLen > maxPersistLen {
		return nil, fmt.Errorf("trieindex: max length %d out of range", maxLen)
	}
	nTokens, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nTokens > maxPersistTokens {
		return nil, fmt.Errorf("trieindex: token dictionary size %d out of range", nTokens)
	}
	// Append-grow: each dictionary entry costs at least one input byte (its
	// length varint), so growth is paid for by bytes actually read.
	dict := make([]string, 0, min(nTokens, persistPrealloc))
	for i := uint64(0); i < nTokens; i++ {
		s, err := readString(br)
		if err != nil {
			return nil, err
		}
		dict = append(dict, s)
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ix := NewIndex(int(maxLen), keepINV)
	if version == persistVersionV1 {
		if err := readStructuresV1(br, ix, dict, total); err != nil {
			return nil, err
		}
		ix.Freeze()
		return ix, nil
	}
	// Arena format: intern the dictionary up front so persisted token ids
	// stay valid, then bulk-read each trie.
	for _, s := range dict {
		ix.bindToken(ix.in.intern(s), s)
	}
	nTries, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for t := uint64(0); t < nTries; t++ {
		if err := readArena(br, ix, nTokens); err != nil {
			return nil, fmt.Errorf("trieindex: trie %d: %w", t, err)
		}
	}
	if uint64(ix.total) != total {
		return nil, fmt.Errorf("trieindex: structure count mismatch: header %d, tries %d", total, ix.total)
	}
	if keepINV {
		// Rebuild the flat corpus and inverted lists by walking the arenas
		// in trie order — the same enumeration a v1 load's re-insertion
		// produces, so INV tie-breaking is identical either way.
		path := make([]tokenID, 0, ix.maxLen)
		for _, tr := range ix.tries {
			if tr == nil {
				continue
			}
			tr.flat.walkLeaves(&path, func(p []tokenID) {
				ix.recordCorpus(append([]tokenID(nil), p...))
			})
		}
		ix.ensureInvSorted()
	}
	return ix, nil
}

// readArena loads one trie's arena, deriving first[] from the prefix sum of
// num[] and validating the structural invariants the BFS layout guarantees.
func readArena(br *bufio.Reader, ix *Index, nTokens uint64) error {
	length, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if length == 0 || length > uint64(ix.maxLen) {
		return fmt.Errorf("trie length %d out of range", length)
	}
	if ix.tries[length] != nil {
		return fmt.Errorf("duplicate trie for length %d", length)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if n == 0 || n > maxPersistNodes {
		return fmt.Errorf("node count %d out of range", n)
	}
	if count > n {
		return fmt.Errorf("structure count %d exceeds %d nodes", count, n)
	}
	// Read the child counts with append-grow slices before sizing anything
	// else by n: each count costs at least one input byte, so a header lying
	// about n cannot make us allocate more than the input's own size until
	// the input has actually delivered n varints.
	num := make([]int32, 0, min(n, persistPrealloc))
	first := make([]int32, 0, min(n, persistPrealloc))
	next := int32(1)
	for i := uint64(0); i < n; i++ {
		c, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if c > n {
			return fmt.Errorf("child count %d exceeds %d nodes", c, n)
		}
		first = append(first, next)
		num = append(num, int32(c))
		next += int32(c)
		if next < 0 || uint64(next) > n {
			return fmt.Errorf("child ranges overflow arena (%d > %d)", next, n)
		}
	}
	if uint64(next) != n {
		return fmt.Errorf("child ranges cover %d of %d nodes", next, n)
	}
	ft := &flatTrie{
		tok:   make([]tokenID, n),
		leaf:  make([]bool, n),
		first: first,
		num:   num,
	}
	for i := uint64(1); i < n; i++ {
		id, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if id >= nTokens {
			return fmt.Errorf("token id %d out of range", id)
		}
		ft.tok[i] = tokenID(id)
	}
	bitmap := make([]byte, (n+7)/8)
	if _, err := io.ReadFull(br, bitmap); err != nil {
		return err
	}
	leaves := uint64(0)
	for i := uint64(0); i < n; i++ {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			ft.leaf[i] = true
			leaves++
		}
	}
	if leaves != count {
		return fmt.Errorf("leaf bitmap has %d leaves, header says %d", leaves, count)
	}
	ix.tries[length] = &trie{flat: ft, count: int(count), nodes: int(n) - 1}
	ix.total += int(count)
	return nil
}

// readStructuresV1 replays a legacy structure list through Insert.
func readStructuresV1(br *bufio.Reader, ix *Index, dict []string, total uint64) error {
	toks := make([]string, 0, ix.maxLen)
	for s := uint64(0); s < total; s++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("trieindex: structure %d: %w", s, err)
		}
		if n == 0 || n > uint64(ix.maxLen) {
			return fmt.Errorf("trieindex: structure %d length %d out of range", s, n)
		}
		toks = toks[:0]
		for i := uint64(0); i < n; i++ {
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			if id >= uint64(len(dict)) {
				return fmt.Errorf("trieindex: token id %d out of range", id)
			}
			toks = append(toks, dict[id])
		}
		ix.Insert(toks)
	}
	return nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trieindex: token too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
