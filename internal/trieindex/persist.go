package trieindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The structure corpus is generated offline (Section 3.2); a production
// deployment builds the index once and serves it. Save/ReadIndex persist
// the index in a compact binary format: the token dictionary, then each
// structure as a delta-friendly token-id sequence. The trie is rebuilt on
// load (insertion is cheap relative to I/O and keeps the format independent
// of the in-memory node layout).

const (
	persistMagic   = "SPQLIX"
	persistVersion = 1
)

// Save serializes the index. The INV corpus flag is not persisted —
// the loader chooses whether to retain the flat corpus.
func (ix *Index) Save(w io.Writer) (err error) {
	bw := bufio.NewWriter(w)
	defer func() {
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
	}()
	if _, err = bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err = writeUvarint(bw, persistVersion); err != nil {
		return err
	}
	if err = writeUvarint(bw, uint64(ix.maxLen)); err != nil {
		return err
	}
	// Token dictionary.
	if err = writeUvarint(bw, uint64(len(ix.in.strs))); err != nil {
		return err
	}
	for _, s := range ix.in.strs {
		if err = writeString(bw, s); err != nil {
			return err
		}
	}
	// Structures: walk every trie, emitting each leaf's path.
	if err = writeUvarint(bw, uint64(ix.total)); err != nil {
		return err
	}
	path := make([]tokenID, 0, ix.maxLen)
	for _, tr := range ix.tries {
		if tr == nil {
			continue
		}
		if err = writeLeaves(bw, tr.root, &path); err != nil {
			return err
		}
	}
	return nil
}

func writeLeaves(w *bufio.Writer, n *node, path *[]tokenID) error {
	for _, c := range n.children {
		*path = append(*path, c.tok)
		if c.leaf {
			if err := writeUvarint(w, uint64(len(*path))); err != nil {
				return err
			}
			for _, id := range *path {
				if err := writeUvarint(w, uint64(id)); err != nil {
					return err
				}
			}
		}
		if err := writeLeaves(w, c, path); err != nil {
			return err
		}
		*path = (*path)[:len(*path)-1]
	}
	return nil
}

// ReadIndex loads an index persisted by Save. keepINV retains the flat
// corpus for the inverted-index search path.
func ReadIndex(r io.Reader, keepINV bool) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trieindex: read magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("trieindex: not an index file")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("trieindex: unsupported version %d", version)
	}
	maxLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	nTokens, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	dict := make([]string, nTokens)
	for i := range dict {
		if dict[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	total, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	ix := NewIndex(int(maxLen), keepINV)
	toks := make([]string, 0, maxLen)
	for s := uint64(0); s < total; s++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trieindex: structure %d: %w", s, err)
		}
		toks = toks[:0]
		for i := uint64(0); i < n; i++ {
			id, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if id >= nTokens {
				return nil, fmt.Errorf("trieindex: token id %d out of range", id)
			}
			toks = append(toks, dict[id])
		}
		ix.Insert(toks)
	}
	return ix, nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trieindex: token too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
