package trieindex

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"speakql/internal/grammar"
	"speakql/internal/metrics"
)

// buildIndex builds and freezes a test index — the production configuration
// (structure.New and ReadIndex both freeze), searched by the arena kernel.
func buildIndex(t testing.TB, cfg grammar.GenConfig, keepINV bool) *Index {
	t.Helper()
	ix := buildIndexUnfrozen(t, cfg, keepINV)
	ix.Freeze()
	return ix
}

// buildIndexUnfrozen leaves the index in pointer-trie form, keeping the
// pre-arena kernel under test and serving as the reference side of the
// pointer-vs-arena differential tests.
func buildIndexUnfrozen(t testing.TB, cfg grammar.GenConfig, keepINV bool) *Index {
	t.Helper()
	ix := NewIndex(cfg.MaxTokens, keepINV)
	err := grammar.Generate(cfg, func(toks []string) bool {
		ix.Insert(toks)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestInsertAndTotal(t *testing.T) {
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Insert(strings.Fields("SELECT * FROM x"))
	ix.Insert(strings.Fields("SELECT x FROM x WHERE x = x"))
	if ix.Total() != 3 {
		t.Fatalf("Total = %d, want 3 (duplicates ignored)", ix.Total())
	}
	if ix.NumTries() != 2 {
		t.Fatalf("NumTries = %d, want 2 (lengths 4 and 8)", ix.NumTries())
	}
	// Over-long insertions are silently ignored.
	ix.Insert(strings.Fields("SELECT x FROM x WHERE x = x AND x = x"))
	if ix.Total() != 3 {
		t.Fatalf("over-long structure was indexed")
	}
}

func TestSearchExactMatch(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	queries := []string{
		"SELECT x FROM x",
		"SELECT * FROM x",
		"SELECT AVG ( x ) FROM x WHERE x = x",
		"SELECT x FROM x NATURAL JOIN x WHERE x BETWEEN x AND x",
		"SELECT x FROM x WHERE x = x ORDER BY x",
	}
	for _, q := range queries {
		res, _ := ix.Search(strings.Fields(q), Options{})
		if res.Distance != 0 {
			t.Errorf("Search(%q) distance = %v, want 0", q, res.Distance)
		}
		if strings.Join(res.Tokens, " ") != q {
			t.Errorf("Search(%q) = %q", q, strings.Join(res.Tokens, " "))
		}
	}
}

func TestSearchRunningExample(t *testing.T) {
	// Section 3.1's running example: masked transcript of "select sales from
	// employers wear name equals Jon" is SELECT x FROM x x x = x; the
	// closest structure is SELECT x FROM x WHERE x = x.
	ix := buildIndex(t, grammar.TestScale(), false)
	res, _ := ix.Search(strings.Fields("SELECT x FROM x x x = x"), Options{})
	if got := strings.Join(res.Tokens, " "); got != "SELECT x FROM x WHERE x = x" {
		t.Errorf("running example: got %q (dist %v)", got, res.Distance)
	}
}

// The search must return exactly the minimum weighted edit distance over the
// whole corpus — verified against a brute-force scan.
func TestSearchMatchesBruteForce(t *testing.T) {
	cfg := grammar.TestScale()
	ix := buildIndex(t, cfg, false)
	var corpus [][]string
	err := grammar.Generate(cfg, func(toks []string) bool {
		corpus = append(corpus, append([]string(nil), toks...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	vocab := []string{"SELECT", "FROM", "WHERE", "x", "=", "<", ">", "(", ")",
		",", "AND", "OR", "AVG", "COUNT", "ORDER", "BY", "LIMIT", "*", "."}
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		m := 1 + rng.Intn(14)
		q := make([]string, m)
		for i := range q {
			q[i] = vocab[rng.Intn(len(vocab))]
		}
		want := math.Inf(1)
		for _, s := range corpus {
			if d := metrics.WeightedTokenEditDistance(q, s); d < want {
				want = d
			}
		}
		res, _ := ix.Search(q, Options{})
		if math.Abs(res.Distance-want) > 1e-9 {
			t.Fatalf("query %v: search dist %v, brute force %v (got %v)",
				q, res.Distance, want, res.Tokens)
		}
		// BDB off must give the same distance (it is accuracy-preserving).
		resNoBDB, _ := ix.Search(q, Options{DisableBDB: true})
		if math.Abs(resNoBDB.Distance-want) > 1e-9 {
			t.Fatalf("query %v: no-BDB dist %v, want %v", q, resNoBDB.Distance, want)
		}
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x x x = x")
	rs, _ := ix.SearchTopK(q, 5, Options{})
	if len(rs) != 5 {
		t.Fatalf("topk returned %d results", len(rs))
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Distance < rs[i-1].Distance {
			t.Fatalf("topk not sorted: %v", rs)
		}
	}
	// Distinct structures.
	seen := map[string]bool{}
	for _, r := range rs {
		key := strings.Join(r.Tokens, " ")
		if seen[key] {
			t.Fatalf("duplicate structure in topk: %s", key)
		}
		seen[key] = true
	}
	// k=1 must equal Search.
	one, _ := ix.Search(q, Options{})
	if one.Distance != rs[0].Distance {
		t.Fatalf("Search dist %v != topk[0] dist %v", one.Distance, rs[0].Distance)
	}
}

func TestSearchTopKLargerThanCorpus(t *testing.T) {
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Insert(strings.Fields("SELECT * FROM x"))
	rs, _ := ix.SearchTopK(strings.Fields("SELECT x FROM x"), 10, Options{})
	if len(rs) != 2 {
		t.Fatalf("got %d results, want 2", len(rs))
	}
}

func TestSearchEmptyIndexAndQuery(t *testing.T) {
	ix := NewIndex(10, false)
	if rs, _ := ix.SearchTopK(strings.Fields("SELECT x FROM x"), 3, Options{}); rs != nil {
		t.Fatalf("empty index returned %v", rs)
	}
	ix.Insert(strings.Fields("SELECT x FROM x"))
	res, _ := ix.Search(nil, Options{})
	if math.Abs(res.Distance-4.4) > 1e-9 {
		// inserting SELECT(1.2) x(1.0) FROM(1.2) x(1.0) from nothing
		t.Fatalf("empty query dist = %v, want 4.4", res.Distance)
	}
}

func TestBDBSkipsTries(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x")
	_, st := ix.Search(q, Options{})
	if st.TriesSkipped == 0 {
		t.Error("BDB skipped no tries for a short exact query")
	}
	_, stOff := ix.Search(q, Options{DisableBDB: true})
	if stOff.TriesSkipped != 0 {
		t.Error("BDB disabled but tries were skipped")
	}
	if stOff.NodesVisited < st.NodesVisited {
		t.Errorf("BDB visited more nodes (%d) than no-BDB (%d)",
			st.NodesVisited, stOff.NodesVisited)
	}
}

// Reproduces the bidirectional-bounds walk-through of Figure 10: query
// A B A against tries of lengths 1–5; after finding distance 1 at length 2,
// every other trie is skipped.
func TestFigure10Example(t *testing.T) {
	ix := NewIndex(50, false)
	ix.Insert([]string{"A"})
	ix.Insert([]string{"A", "B"})
	ix.Insert([]string{"A", "B", "C"})
	ix.Insert([]string{"A", "B", "C", "D"})
	ix.Insert([]string{"A", "B", "C", "D", "E"})
	res, st := ix.Search([]string{"A", "B", "A"}, Options{})
	if got := strings.Join(res.Tokens, " "); got != "A B" {
		t.Fatalf("Figure 10: got %q, want A B", got)
	}
	if math.Abs(res.Distance-1.0) > 1e-9 {
		t.Fatalf("Figure 10: dist %v, want 1.0 (one literal delete)", res.Distance)
	}
	// Searched: length 3 (finds A B C at 2), length 2 (finds A B at 1),
	// then lengths 1, 4, 5 are all skipped by the bounds.
	if st.TriesSearched != 2 || st.TriesSkipped != 3 {
		t.Fatalf("Figure 10: searched=%d skipped=%d, want 2/3",
			st.TriesSearched, st.TriesSkipped)
	}
}

func TestDAPApproximation(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	// A query whose closest structure differs only in a prime-superset
	// token still yields a valid (possibly different) structure under DAP.
	q := strings.Fields("SELECT SUM ( x ) FROM x WHERE x = x")
	exact, _ := ix.Search(q, Options{})
	dap, stD := ix.Search(q, Options{DAP: true})
	if exact.Distance != 0 {
		t.Fatalf("exact search should find the structure exactly")
	}
	if dap.Distance < exact.Distance {
		t.Fatalf("DAP distance below exact minimum")
	}
	_, stE := ix.Search(q, Options{})
	if stD.NodesVisited > stE.NodesVisited {
		t.Errorf("DAP visited more nodes (%d) than exact (%d)",
			stD.NodesVisited, stE.NodesVisited)
	}
}

func TestINVPath(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), true)
	// Query mentions BETWEEN, a non-universal keyword → INV path applies.
	q := strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x")
	res, st := ix.Search(q, Options{INV: true})
	if !st.UsedINV {
		t.Fatal("INV was not used despite BETWEEN in query")
	}
	if st.InvScanned == 0 || st.InvScanned >= ix.Total() {
		t.Fatalf("INV scanned %d of %d structures", st.InvScanned, ix.Total())
	}
	if res.Distance != 0 {
		t.Fatalf("INV missed the exact structure: dist %v, got %v",
			res.Distance, res.Tokens)
	}
	// Query without any indexed keyword falls back to trie search.
	q2 := strings.Fields("SELECT x FROM x WHERE x = x")
	_, st2 := ix.Search(q2, Options{INV: true})
	if st2.UsedINV {
		t.Fatal("INV used with no non-universal keyword")
	}
}

func TestINVRequiresCorpus(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false) // keepINV = false
	q := strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x")
	res, st := ix.Search(q, Options{INV: true})
	if st.UsedINV {
		t.Fatal("INV used without a retained corpus")
	}
	if res.Distance != 0 {
		t.Fatal("fallback trie search failed")
	}
}

// Property: search distance is never negative and never exceeds the
// Proposition 1 upper bound (m+n)·W_K for the returned structure.
func TestSearchDistanceBounds(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	rng := rand.New(rand.NewSource(3))
	vocab := []string{"SELECT", "FROM", "WHERE", "x", "=", ",", "AND", "sales", "wear"}
	for trial := 0; trial < 40; trial++ {
		q := make([]string, 1+rng.Intn(12))
		for i := range q {
			q[i] = vocab[rng.Intn(len(vocab))]
		}
		res, _ := ix.Search(q, Options{})
		if res.Distance < 0 {
			t.Fatalf("negative distance for %v", q)
		}
		ub := float64(len(q)+len(res.Tokens)) * 1.2
		if res.Distance > ub+1e-9 {
			t.Fatalf("distance %v above upper bound %v", res.Distance, ub)
		}
	}
}

func BenchmarkSearchTestScale(b *testing.B) {
	ix := buildIndex(b, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x x x = x AND x = x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, Options{})
	}
}

func BenchmarkSearchTestScaleNoBDB(b *testing.B) {
	ix := buildIndex(b, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x x x = x AND x = x")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, Options{DisableBDB: true})
	}
}

func TestMemoryStats(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	st := ix.Memory()
	if st.Structures != ix.Total() {
		t.Errorf("Structures = %d, want %d", st.Structures, ix.Total())
	}
	if st.Nodes <= st.Structures {
		t.Errorf("Nodes %d should exceed structure count %d", st.Nodes, st.Structures)
	}
	sumS, sumN := 0, 0
	for _, ls := range st.PerLength {
		sumS += ls.Structures
		sumN += ls.Nodes
	}
	if sumS != st.Structures || sumN != st.Nodes {
		t.Errorf("per-length totals disagree: %d/%d vs %d/%d",
			sumS, sumN, st.Structures, st.Nodes)
	}
	// Prefix sharing: nodes must be far fewer than total tokens inserted.
	totalTokens := 0
	_ = grammar.Generate(grammar.TestScale(), func(toks []string) bool {
		totalTokens += len(toks)
		return true
	})
	if st.Nodes >= totalTokens {
		t.Errorf("no prefix sharing: %d nodes for %d tokens", st.Nodes, totalTokens)
	}
}

func TestUniformWeightsAblation(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	// Under uniform weights the distance for a keyword substitution equals
	// a literal substitution; under class weights they differ.
	q := strings.Fields("SELECT x FROM x wear x = x") // "wear" garbage token
	def, _ := ix.Search(q, Options{})
	uni, _ := ix.Search(q, Options{UniformWeights: true})
	if def.Distance == uni.Distance {
		t.Logf("distances coincide for this query (%v) — acceptable", def.Distance)
	}
	if uni.Distance <= 0 || def.Distance <= 0 {
		t.Fatal("expected nonzero distances")
	}
	// Uniform distance of an insert+delete pair is exactly 2.
	ix2 := NewIndex(10, false)
	ix2.Insert(strings.Fields("SELECT x FROM x"))
	r, _ := ix2.Search(strings.Fields("SELECT x x FROM x"), Options{UniformWeights: true})
	if r.Distance != 1 {
		t.Errorf("uniform delete cost = %v, want 1", r.Distance)
	}
	r, _ = ix2.Search(strings.Fields("x FROM x"), Options{UniformWeights: true})
	if r.Distance != 1 { // SELECT inserted at cost 1 (not 1.2)
		t.Errorf("uniform keyword insert cost = %v, want 1", r.Distance)
	}
}
