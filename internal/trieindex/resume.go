package trieindex

// Resumable prefix search: the clause-streaming pipeline re-searches the
// structure index every time the dictated transcript grows by a clause. The
// DP these searches run is prefix-monotone — row i of the (query × structure)
// table depends only on rows ≤ i, i.e. on the first i query tokens — so the
// work done for a shorter prefix is a checkpoint the longer query can extend
// instead of discard. PrefixSearcher exploits that: it checkpoints the DP
// frontier row of each previous top-k candidate at every clause boundary,
// extends those rows by just the new suffix, and uses the resulting exact
// distances to pre-seed the search's pruning bound, so the re-search prunes
// as if it had already found last clause's winners.

import (
	"context"
	"math"

	"speakql/internal/sqltoken"
)

// PrefixSearcher is a resumable top-k searcher over a growing masked
// transcript. Extend appends the tokens a new clause contributed; Search
// re-runs the top-k search for the full current query, warm-started from the
// frontier checkpoints of the previous search. Results are bit-identical to
// a from-scratch SearchTopK on the same query (TestPrefixSearcherMatchesScratch):
//
//   - Each checkpointed candidate keeps its final DP row (the frontier after
//     all current query tokens). The edit-distance recurrence for query row i
//     reads only rows i−1 and i, never later ones, so appending Δ query
//     tokens advances a frontier in O(Δ·|structure|) and yields exactly the
//     distance a from-scratch DP would compute — the same cells, the same
//     float operations, the same bits.
//   - The k-th largest checkpointed distance B therefore upper-bounds the
//     global k-th-best distance for the extended query (the previous winners
//     are real candidates at exactly those distances). Seeding the search's
//     shared pruning bound with B is then sound: the bound mechanism prunes
//     with d <= bound precisely so equal-distance candidates survive, every
//     true top-k candidate has d ≤ B, and surviving candidates keep their
//     enumeration order, so the final (distance, rank, sequence) sort picks
//     the identical result list.
//
// Seeding applies only to the exact search modes. Under the approximate DAP
// and INV options, branch choices depend on intermediate scores that a
// tighter bound could perturb, so PrefixSearcher falls back to an unseeded
// search there — still resumable, just without the warm-start pruning.
//
// A PrefixSearcher is not safe for concurrent use; the index it was created
// from may be searched concurrently as usual.
type PrefixSearcher struct {
	ix    *Index
	k     int
	opts  Options
	exact bool // seeding is sound (no DAP/INV)

	q  []tokenID // the full masked query so far, interned
	qw []float64 // deletion weight per query token

	pool []prefixCandidate // previous top-k with checkpointed frontiers
}

// prefixCandidate is one checkpointed candidate: a structure from the
// previous search whose DP frontier row is kept current as the query grows.
type prefixCandidate struct {
	ids []tokenID // the structure's tokens, interned
	row []float64 // DP frontier: row |query| of the (query × structure) table
}

// dist is the candidate's exact distance to the current full query.
func (c *prefixCandidate) dist() float64 { return c.row[len(c.row)-1] }

// advance extends the frontier by one query token with deletion weight qw,
// in place. This is the flatDistance row recurrence verbatim (same operand
// order, so the floats agree bitwise with the search kernels).
func (c *prefixCandidate) advance(ix *Index, uniform bool, id tokenID, qw float64) {
	r := c.row
	prev := r[0] // the cell diagonally up-left of the one being written
	r[0] += qw
	for j := 1; j < len(r); j++ {
		old := r[j]
		if b := c.ids[j-1]; id == b {
			r[j] = prev
		} else {
			w := 1.0
			if !uniform {
				w = ix.weights[b]
			}
			del := old + qw   // delete the query token
			ins := r[j-1] + w // insert the structure token
			if del < ins {
				r[j] = del
			} else {
				r[j] = ins
			}
		}
		prev = old
	}
}

// NewPrefixSearcher creates a resumable top-k searcher over the index.
// k < 1 is clamped to 1. opts mean the same as in SearchTopK.
func (ix *Index) NewPrefixSearcher(k int, opts Options) *PrefixSearcher {
	if k < 1 {
		k = 1
	}
	return &PrefixSearcher{ix: ix, k: k, opts: opts, exact: !opts.DAP && !opts.INV}
}

// Extend appends the masked tokens a new fragment contributed to the query
// and advances every checkpointed frontier across them. Call Search (or
// SearchContext) afterwards for the updated top-k.
func (p *PrefixSearcher) Extend(maskOut []string) {
	for _, t := range maskOut {
		id := p.ix.in.lookup(t)
		w := sqltoken.Weight(t)
		if p.opts.UniformWeights {
			w = 1
		}
		p.q = append(p.q, id)
		p.qw = append(p.qw, w)
		for i := range p.pool {
			p.pool[i].advance(p.ix, p.opts.UniformWeights, id, w)
		}
	}
}

// Reset discards the accumulated query and all checkpoints (capacity is
// kept). Used when masking is not a pure extension of the previous query —
// e.g. a spoken-form substitution merged tokens across the clause boundary —
// and the searcher must start over.
func (p *PrefixSearcher) Reset() {
	p.q = p.q[:0]
	p.qw = p.qw[:0]
	p.pool = p.pool[:0]
}

// QueryLen returns the number of masked tokens accumulated so far.
func (p *PrefixSearcher) QueryLen() int { return len(p.q) }

// Search runs the top-k search for the full accumulated query, warm-started
// from the checkpoints, and re-checkpoints the winners. See SearchContext.
func (p *PrefixSearcher) Search() ([]Result, Stats) {
	return p.SearchContext(context.Background())
}

// SearchContext is Search with cancellation (checked at partition
// boundaries, like SearchTopKContext). A cancelled search returns partial
// results and leaves the previous checkpoints in place — they remain exact
// for the current query, so the next call still warm-starts correctly.
func (p *PrefixSearcher) SearchContext(ctx context.Context) ([]Result, Stats) {
	rs, st := p.ix.searchTopKSeeded(ctx, p.q, p.qw, p.k, p.opts, p.seedBound())
	if ctx.Err() == nil {
		p.checkpoint(rs)
	}
	return rs, st
}

// seedBound derives the warm-start pruning bound from the checkpoints: the
// largest checkpointed distance, valid only when the pool is known to hold
// as many candidates as the search can return (otherwise the true k-th best
// may exceed every pooled distance and +Inf must be used).
func (p *PrefixSearcher) seedBound() float64 {
	want := p.k
	if t := p.ix.total; t < want {
		want = t
	}
	if !p.exact || len(p.pool) < want || len(p.pool) == 0 {
		return math.Inf(1)
	}
	b := p.pool[0].dist()
	for _, c := range p.pool[1:] {
		if d := c.dist(); d > b {
			b = d
		}
	}
	return b
}

// checkpoint replaces the candidate pool with the latest results, computing
// each winner's frontier row from scratch (O(k·|q|·|structure|), negligible
// next to the search itself).
func (p *PrefixSearcher) checkpoint(rs []Result) {
	p.pool = p.pool[:0]
	for _, r := range rs {
		c := prefixCandidate{
			ids: make([]tokenID, len(r.Tokens)),
			row: make([]float64, len(r.Tokens)+1),
		}
		for j, t := range r.Tokens {
			c.ids[j] = p.ix.in.lookup(t)
		}
		for j := 1; j <= len(c.ids); j++ {
			w := 1.0
			if !p.opts.UniformWeights {
				w = p.ix.weights[c.ids[j-1]]
			}
			c.row[j] = c.row[j-1] + w
		}
		for i, id := range p.q {
			c.advance(p.ix, p.opts.UniformWeights, id, p.qw[i])
		}
		p.pool = append(p.pool, c)
	}
}
