package trieindex

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"speakql/internal/grammar"
)

// saveV1 writes the legacy version-1 format (structure list, re-inserted on
// load) so the compatibility path stays under test now that Save emits v2.
func (ix *Index) saveV1(w io.Writer) (err error) {
	bw := bufio.NewWriter(w)
	defer func() {
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
	}()
	if _, err = bw.WriteString(persistMagic); err != nil {
		return err
	}
	if err = writeUvarint(bw, persistVersionV1); err != nil {
		return err
	}
	if err = writeUvarint(bw, uint64(ix.maxLen)); err != nil {
		return err
	}
	if err = writeUvarint(bw, uint64(len(ix.in.strs))); err != nil {
		return err
	}
	for _, s := range ix.in.strs {
		if err = writeString(bw, s); err != nil {
			return err
		}
	}
	if err = writeUvarint(bw, uint64(ix.total)); err != nil {
		return err
	}
	ix.forEachStructure(func(path []tokenID) {
		if err != nil {
			return
		}
		if err = writeUvarint(bw, uint64(len(path))); err != nil {
			return
		}
		for _, id := range path {
			if err = writeUvarint(bw, uint64(id)); err != nil {
				return
			}
		}
	})
	return err
}

func TestPersistRoundTrip(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("serialized %d structures in %d bytes (%.1f B/structure)",
		ix.Total(), buf.Len(), float64(buf.Len())/float64(ix.Total()))

	back, err := ReadIndex(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != ix.Total() {
		t.Fatalf("round trip lost structures: %d vs %d", back.Total(), ix.Total())
	}
	if back.NumTries() != ix.NumTries() {
		t.Fatalf("tries differ: %d vs %d", back.NumTries(), ix.NumTries())
	}
	// Searches agree exactly.
	queries := [][]string{
		strings.Fields("SELECT x FROM x x x = x"),
		strings.Fields("SELECT AVG ( x ) FROM x"),
		strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x ORDER BY x"),
	}
	for _, q := range queries {
		a, _ := ix.Search(q, Options{})
		b, _ := back.Search(q, Options{})
		if a.Distance != b.Distance ||
			strings.Join(a.Tokens, " ") != strings.Join(b.Tokens, " ") {
			t.Fatalf("search disagrees after round trip for %v:\n  %v (%.2f)\n  %v (%.2f)",
				q, a.Tokens, a.Distance, b.Tokens, b.Distance)
		}
	}
}

func TestPersistKeepINV(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), true)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x")
	res, st := back.Search(q, Options{INV: true})
	if !st.UsedINV {
		t.Error("INV not usable on reloaded index")
	}
	if res.Distance != 0 {
		t.Errorf("reloaded INV search distance = %v", res.Distance)
	}
}

// The arena round trip must reproduce the arenas bit for bit — same node
// counts, tokens, child ranges, and leaf flags per trie — and the reloaded
// index must already be frozen (no pointer reconstruction on load).
func TestPersistArenaRoundTripExact(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Frozen() {
		t.Fatal("reloaded index is not frozen")
	}
	for length, tr := range ix.tries {
		var btr *trie
		if length < len(back.tries) {
			btr = back.tries[length]
		}
		if (tr == nil) != (btr == nil) {
			t.Fatalf("length %d: presence differs", length)
		}
		if tr == nil {
			continue
		}
		a, b := tr.flat, btr.flat
		if len(a.tok) != len(b.tok) {
			t.Fatalf("length %d: node count %d vs %d", length, len(a.tok), len(b.tok))
		}
		for i := range a.tok {
			if i > 0 && a.tok[i] != b.tok[i] || a.leaf[i] != b.leaf[i] ||
				a.first[i] != b.first[i] || a.num[i] != b.num[i] {
				t.Fatalf("length %d: node %d differs", length, i)
			}
		}
		if tr.count != btr.count || tr.nodes != btr.nodes {
			t.Fatalf("length %d: counts differ", length)
		}
	}
	// And a second save is byte-identical (deterministic format).
	var buf2 bytes.Buffer
	if err := back.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := ix.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("re-saving a reloaded index changed the bytes")
	}
}

// A legacy v1 file must still load, produce a frozen index, and search
// identically to the same corpus saved in the arena format.
func TestPersistV1Compat(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), true)
	var v1 bytes.Buffer
	if err := ix.saveV1(&v1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&v1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Frozen() {
		t.Fatal("v1 load did not freeze")
	}
	if back.Total() != ix.Total() {
		t.Fatalf("v1 load lost structures: %d vs %d", back.Total(), ix.Total())
	}
	for _, q := range [][]string{
		strings.Fields("SELECT x FROM x x x = x"),
		strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x"),
	} {
		for _, opts := range []Options{{}, {INV: true}} {
			a, ast := ix.Search(q, opts)
			b, bst := back.Search(q, opts)
			if a.Distance != b.Distance ||
				strings.Join(a.Tokens, " ") != strings.Join(b.Tokens, " ") || ast != bst {
				t.Fatalf("v1/v2 search disagrees for %v opts %+v", q, opts)
			}
		}
	}
}

// Save on an unfrozen index freezes it (and the bytes match a pre-frozen
// save), so callers never have to remember the Freeze step.
func TestPersistSaveFreezes(t *testing.T) {
	a := buildIndexUnfrozen(t, grammar.TestScale(), false)
	b := buildIndex(t, grammar.TestScale(), false)
	var bufA, bufB bytes.Buffer
	if err := a.Save(&bufA); err != nil {
		t.Fatal(err)
	}
	if !a.Frozen() {
		t.Fatal("Save did not freeze the index")
	}
	if err := b.Save(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("unfrozen-then-saved bytes differ from frozen-then-saved")
	}
}

func TestReadIndexErrors(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader(""), false); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadIndex(strings.NewReader("NOTANINDEXFILE"), false); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated payload.
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), false); err == nil {
		t.Error("truncated index accepted")
	}
}
