package trieindex

import (
	"bytes"
	"strings"
	"testing"

	"speakql/internal/grammar"
)

func TestPersistRoundTrip(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("serialized %d structures in %d bytes (%.1f B/structure)",
		ix.Total(), buf.Len(), float64(buf.Len())/float64(ix.Total()))

	back, err := ReadIndex(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != ix.Total() {
		t.Fatalf("round trip lost structures: %d vs %d", back.Total(), ix.Total())
	}
	if back.NumTries() != ix.NumTries() {
		t.Fatalf("tries differ: %d vs %d", back.NumTries(), ix.NumTries())
	}
	// Searches agree exactly.
	queries := [][]string{
		strings.Fields("SELECT x FROM x x x = x"),
		strings.Fields("SELECT AVG ( x ) FROM x"),
		strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x ORDER BY x"),
	}
	for _, q := range queries {
		a, _ := ix.Search(q, Options{})
		b, _ := back.Search(q, Options{})
		if a.Distance != b.Distance ||
			strings.Join(a.Tokens, " ") != strings.Join(b.Tokens, " ") {
			t.Fatalf("search disagrees after round trip for %v:\n  %v (%.2f)\n  %v (%.2f)",
				q, a.Tokens, a.Distance, b.Tokens, b.Distance)
		}
	}
}

func TestPersistKeepINV(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), true)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIndex(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	q := strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x")
	res, st := back.Search(q, Options{INV: true})
	if !st.UsedINV {
		t.Error("INV not usable on reloaded index")
	}
	if res.Distance != 0 {
		t.Errorf("reloaded INV search distance = %v", res.Distance)
	}
}

func TestReadIndexErrors(t *testing.T) {
	if _, err := ReadIndex(strings.NewReader(""), false); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadIndex(strings.NewReader("NOTANINDEXFILE"), false); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated payload.
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIndex(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), false); err == nil {
		t.Error("truncated index accepted")
	}
}
