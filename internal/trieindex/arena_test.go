package trieindex

import (
	"strings"
	"testing"

	"speakql/internal/grammar"
)

// TestArenaMatchesPointer is the pointer-vs-arena differential test: the
// frozen (arena-kernel) index must return byte-identical results AND
// identical work counters to the unfrozen (pointer-kernel) index for every
// query, k, and option combination — serial, parallel, DAP, INV, uniform
// weights, BDB off.
func TestArenaMatchesPointer(t *testing.T) {
	cfg := grammar.TestScale()
	ptr := buildIndexUnfrozen(t, cfg, true)
	arena := buildIndex(t, cfg, true)
	if ptr.Frozen() {
		t.Fatal("pointer index unexpectedly frozen")
	}
	if !arena.Frozen() {
		t.Fatal("arena index not frozen")
	}
	queries := maskedQueries(arena, 50, 19)
	optVariants := []Options{
		{},
		{DisableBDB: true},
		{DAP: true},
		{INV: true},
		{UniformWeights: true},
		{Workers: 4},
		{Workers: 4, DAP: true},
	}
	for _, opts := range optVariants {
		for _, k := range []int{1, 3, 10} {
			for qi, q := range queries {
				pRes, pSt := ptr.SearchTopK(q, k, opts)
				aRes, aSt := arena.SearchTopK(q, k, opts)
				if len(pRes) != len(aRes) {
					t.Fatalf("opts %+v k=%d q#%d %v: pointer %d results, arena %d",
						opts, k, qi, q, len(pRes), len(aRes))
				}
				for i := range pRes {
					if pRes[i].Distance != aRes[i].Distance ||
						strings.Join(pRes[i].Tokens, " ") != strings.Join(aRes[i].Tokens, " ") {
						t.Fatalf("opts %+v k=%d q#%d %v: result %d differs:\n pointer %v (%v)\n arena   %v (%v)",
							opts, k, qi, q, i,
							pRes[i].Tokens, pRes[i].Distance,
							aRes[i].Tokens, aRes[i].Distance)
					}
				}
				// Results must be bit-identical always. Work counters are
				// additionally deterministic for serial search; with
				// Workers>1 the shared bound tightens on a schedule-dependent
				// timeline, so visit counts legitimately vary run to run.
				if opts.Workers <= 1 && pSt != aSt {
					t.Fatalf("opts %+v k=%d q#%d %v: stats differ:\n pointer %+v\n arena   %+v",
						opts, k, qi, q, pSt, aSt)
				}
			}
		}
	}
}

// Freezing must be idempotent, and a post-freeze Insert must thaw, accept
// the structure, and re-freeze to an index that finds it.
func TestFreezeThawInsert(t *testing.T) {
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Freeze()
	ix.Freeze() // idempotent
	if !ix.Frozen() {
		t.Fatal("index not frozen after Freeze")
	}
	res, _ := ix.Search(strings.Fields("SELECT x FROM x"), Options{})
	if res.Distance != 0 {
		t.Fatalf("frozen search missed exact match: %v", res)
	}
	// Insert thaws the affected trie only.
	ix.Insert(strings.Fields("SELECT * FROM x"))
	if ix.Frozen() {
		t.Fatal("Insert did not thaw the trie")
	}
	res, _ = ix.Search(strings.Fields("SELECT * FROM x"), Options{})
	if res.Distance != 0 {
		t.Fatalf("thawed search missed new structure: %v", res)
	}
	ix.Freeze()
	if !ix.Frozen() {
		t.Fatal("re-freeze failed")
	}
	rs, _ := ix.SearchTopK(strings.Fields("SELECT x FROM x"), 2, Options{})
	if len(rs) != 2 || rs[0].Distance != 0 {
		t.Fatalf("re-frozen index lost structures: %v", rs)
	}
	// Duplicate insert into a frozen trie must thaw but not double-count.
	total := ix.Total()
	ix.Insert(strings.Fields("SELECT x FROM x"))
	if ix.Total() != total {
		t.Fatalf("duplicate insert changed Total: %d -> %d", total, ix.Total())
	}
}

// Memory() must report identical stats before and after freezing (the
// frozen path answers in O(1) from arena lengths).
func TestMemoryStatsFrozenMatchesUnfrozen(t *testing.T) {
	cfg := grammar.TestScale()
	ix := buildIndexUnfrozen(t, cfg, false)
	before := ix.Memory()
	ix.Freeze()
	after := ix.Memory()
	if before.Structures != after.Structures || before.Nodes != after.Nodes {
		t.Fatalf("Memory drifted across Freeze: %+v vs %+v", before, after)
	}
	for l, ls := range before.PerLength {
		if after.PerLength[l] != ls {
			t.Fatalf("length %d stats drifted: %+v vs %+v", l, ls, after.PerLength[l])
		}
	}
}

// flatten/thaw must round-trip exactly: thawing an arena and re-flattening
// it reproduces the identical arena.
func TestFlattenThawRoundTrip(t *testing.T) {
	ix := buildIndexUnfrozen(t, grammar.TestScale(), false)
	for length, tr := range ix.tries {
		if tr == nil {
			continue
		}
		ft := flatten(tr.root)
		ft2 := flatten(thaw(ft))
		if len(ft.tok) != len(ft2.tok) {
			t.Fatalf("length %d: node count drifted %d -> %d", length, len(ft.tok), len(ft2.tok))
		}
		for i := range ft.tok {
			if ft.tok[i] != ft2.tok[i] || ft.leaf[i] != ft2.leaf[i] ||
				ft.first[i] != ft2.first[i] || ft.num[i] != ft2.num[i] {
				t.Fatalf("length %d: node %d drifted", length, i)
			}
		}
	}
}

// TestSearchKernelSteadyStateAllocs pins the arena DP kernel at zero
// steady-state heap allocations. It drives a held searcher directly (the
// way SearchTopK does after the sync.Pool get) so the measurement covers
// the kernel — columns, heap maintenance, path tracking, pruning — without
// the per-call result materialization.
func TestSearchKernelSteadyStateAllocs(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x x x = x AND x = x")
	for _, opts := range []Options{{}, {DAP: true}, {UniformWeights: true}} {
		var st Stats
		s := ix.getSearcher(q, 3, opts, &st)
		order := append([]int(nil), s.partitionOrder(len(s.q))...)
		run := func() {
			for _, n := range order {
				s.searchLen(n)
			}
			s.recycle()
		}
		run() // warm the column pool and buffer freelist
		if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
			t.Errorf("opts %+v: steady-state kernel allocs/op = %v, want 0", opts, allocs)
		}
		ix.putSearcher(s)
	}
}

// The INV scan path must also be allocation-free at steady state.
func TestINVKernelSteadyStateAllocs(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), true)
	q := strings.Fields("SELECT x FROM x WHERE x BETWEEN x AND x")
	var st Stats
	s := ix.getSearcher(q, 3, Options{INV: true}, &st)
	run := func() {
		s.searchINV()
		s.recycle()
	}
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("steady-state INV allocs/op = %v, want 0", allocs)
	}
	ix.putSearcher(s)
}

// BenchmarkSearchTestScalePointer is the pre-arena kernel on the identical
// corpus and query as BenchmarkSearchTestScale — the in-binary before/after
// for the arena flattening.
func BenchmarkSearchTestScalePointer(b *testing.B) {
	ix := buildIndexUnfrozen(b, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x x x = x AND x = x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, Options{})
	}
}
