// Package trieindex implements the structure index and search engine of
// Sections 3.3–3.4 and Appendix D: ground-truth SQL structures are packed
// into 50 disjoint tries, one per token length, and searched with a
// SQL-specific weighted edit distance (insert/delete only; W_K=1.2,
// W_S=1.1, W_L=1.0) computed by a column-passing dynamic program over trie
// paths. Three optimizations are provided:
//
//   - BDB — bidirectional bounds (Proposition 1) prune whole tries whose
//     best possible distance already exceeds the current best; accuracy
//     preserving.
//   - DAP — diversity-aware pruning: among sibling children drawn from the
//     "prime superset" ({AVG,COUNT,SUM,MAX,MIN} ∪ {AND,OR} ∪ {=,<,>}), only
//     the locally-best branch is explored; trades accuracy for latency.
//   - INV — an inverted index from non-universal keywords to the structures
//     containing them; when the transcript mentions such a keyword, only
//     those structures are scanned; trades accuracy for latency.
package trieindex

import (
	"sort"
	"sync"
	"sync/atomic"

	"speakql/internal/sqltoken"
)

// tokenID is an interned token. The structure alphabet is tiny (keywords,
// splchars, and the literal symbol), so 16 bits is generous.
type tokenID uint16

// unknownID never matches any indexed token: transcripts can contain words
// outside the structure alphabet only if masking was skipped, and those must
// simply never align.
const unknownID = tokenID(0xFFFF)

// interner maps token strings to dense ids.
type interner struct {
	ids  map[string]tokenID
	strs []string
}

func newInterner() *interner {
	return &interner{ids: make(map[string]tokenID)}
}

func (in *interner) intern(tok string) tokenID {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	id := tokenID(len(in.strs))
	in.ids[tok] = id
	in.strs = append(in.strs, tok)
	return id
}

func (in *interner) lookup(tok string) tokenID {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	return unknownID
}

func (in *interner) str(id tokenID) string { return in.strs[id] }

// node is a trie node. Children are kept sorted by token id for binary
// search during insertion; traversal order is deterministic.
type node struct {
	tok      tokenID
	leaf     bool
	children []*node
}

func (n *node) child(tok tokenID) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].tok >= tok })
	if i < len(n.children) && n.children[i].tok == tok {
		return n.children[i]
	}
	return nil
}

func (n *node) insertChild(tok tokenID) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].tok >= tok })
	if i < len(n.children) && n.children[i].tok == tok {
		return n.children[i]
	}
	c := &node{tok: tok}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// trie holds all structures of one token length. Insert builds the pointer
// trie (root); Freeze compacts it into the arena (flat) and drops the
// pointer nodes. Exactly one of root/flat is non-nil.
type trie struct {
	root  *node
	flat  *flatTrie
	count int // number of structures
	nodes int // total node count (set at freeze; computed by walk before)
}

// Options configures index construction and search behaviour.
type Options struct {
	// DisableBDB turns off the bidirectional-bounds trie pruning
	// (Proposition 1). Used only by the Figure 15 ablation; BDB never
	// changes results.
	DisableBDB bool
	// DAP enables diversity-aware pruning (Appendix D.3); approximate.
	DAP bool
	// INV enables the inverted-index fast path (Appendix D.3); approximate.
	INV bool
	// UniformWeights replaces the SQL-specific weights (W_K=1.2, W_S=1.1,
	// W_L=1.0) with 1.0 for every token class — the ablation of the
	// Section 3.4 design choice that Keywords are the most trustworthy
	// anchors. Not part of the paper's own ablation set.
	UniformWeights bool
	// Workers > 1 searches the length partitions concurrently on a bounded
	// pool of that many goroutines, sharing one atomic best-distance bound
	// so BDB pruning composes across partitions. Results are bit-identical
	// to the serial search (0 or 1). The INV fast path, when it applies,
	// stays serial.
	Workers int
}

// Index is the structure index: one trie per structure length plus the
// optional inverted index. Build it once (offline, Section 3.2) and share it
// across goroutines; Search does not mutate the index.
type Index struct {
	in         *interner
	tries      []*trie // indexed by structure length
	maxLen     int
	total      int
	weights    []float64               // weight per interned token id
	prime      []int8                  // DAP prime-superset group per id (−1 none)
	invKey     []bool                  // id is a non-universal keyword (INV-indexed)
	inv        map[tokenID][][]tokenID // keyword → structures containing it
	corpus     [][]tokenID             // retained only when INV is on
	keepCorpus bool

	// invDirty marks inverted lists appended since the last length-sort;
	// ensureInvSorted (invMu) sorts them lazily before the first INV scan.
	invDirty atomic.Bool
	invMu    sync.Mutex

	// pool recycles searchers — and with them the DP column pool, the
	// interned-query scratch, and the heap-entry token buffers — across
	// SearchTopK calls, so steady-state searches allocate nothing.
	pool sync.Pool
}

// NewIndex creates an empty index. Set keepINV if INV search will be used
// (it needs the flat corpus retained).
func NewIndex(maxLen int, keepINV bool) *Index {
	return &Index{
		in:         newInterner(),
		tries:      make([]*trie, maxLen+1),
		maxLen:     maxLen,
		inv:        make(map[tokenID][][]tokenID),
		keepCorpus: keepINV,
	}
}

// invExcluded are the universal keywords excluded from the inverted index:
// they appear in (nearly) every structure and so discriminate nothing.
var invExcluded = map[string]bool{"SELECT": true, "FROM": true, "WHERE": true}

// Insert adds one structure (a token sequence over the grammar alphabet).
// Duplicate insertions are idempotent.
func (ix *Index) Insert(tokens []string) {
	if len(tokens) == 0 || len(tokens) > ix.maxLen {
		return
	}
	ids := make([]tokenID, len(tokens))
	for i, t := range tokens {
		id := ix.in.intern(t)
		ids[i] = id
		ix.bindToken(id, t)
	}
	tr := ix.tries[len(tokens)]
	if tr == nil {
		tr = &trie{root: &node{}}
		ix.tries[len(tokens)] = tr
	}
	if tr.flat != nil {
		// The trie was frozen; thaw it back into pointer form so insertion
		// can proceed. The next Freeze re-compacts it.
		tr.root = thaw(tr.flat)
		tr.flat = nil
	}
	n := tr.root
	for _, id := range ids {
		n = n.insertChild(id)
	}
	if n.leaf {
		return // duplicate
	}
	n.leaf = true
	tr.count++
	ix.total++
	if ix.keepCorpus {
		ix.recordCorpus(ids)
	}
}

// bindToken records the per-id metadata the search kernel reads instead of
// re-deriving it from strings on the hot path: edit weight, DAP prime
// group, and whether the token is INV-indexable.
func (ix *Index) bindToken(id tokenID, tok string) {
	for int(id) >= len(ix.weights) {
		ix.weights = append(ix.weights, 0)
		ix.prime = append(ix.prime, -1)
		ix.invKey = append(ix.invKey, false)
	}
	ix.weights[id] = sqltoken.Weight(tok)
	ix.prime[id] = int8(primeGroup(tok))
	ix.invKey[id] = sqltoken.IsKeyword(tok) && !invExcluded[tok]
}

// recordCorpus retains one structure for the INV fast path: the flat corpus
// slice plus an inverted-list entry per distinct non-universal keyword.
// Lists are appended in O(1) here and length-sorted once — in Freeze, or
// lazily before the first INV scan — so non-monotonic insertion orders no
// longer degrade the build to quadratic.
func (ix *Index) recordCorpus(ids []tokenID) {
	ix.corpus = append(ix.corpus, ids)
	seen := map[tokenID]bool{}
	for _, id := range ids {
		if ix.invKey[id] && !seen[id] {
			seen[id] = true
			ix.inv[id] = append(ix.inv[id], ids)
			ix.invDirty.Store(true)
		}
	}
}

// ensureInvSorted length-sorts the inverted lists if any were appended
// since the last sort. The INV scan expands outward from the query's
// length and stops on the Proposition 1 bound, which requires each list to
// be in non-decreasing length order; the sort is stable, so structures of
// equal length keep their insertion order (which is what ties resolve by).
// Safe under concurrent searches: the first one in sorts under invMu while
// the rest wait on the same lock.
func (ix *Index) ensureInvSorted() {
	if !ix.invDirty.Load() {
		return
	}
	ix.invMu.Lock()
	defer ix.invMu.Unlock()
	if !ix.invDirty.Load() {
		return
	}
	for _, list := range ix.inv {
		sort.SliceStable(list, func(a, b int) bool { return len(list[a]) < len(list[b]) })
	}
	ix.invDirty.Store(false)
}

// Freeze compacts every trie into its contiguous arena form (see arena.go)
// and finalizes the inverted lists. Call it once after the last Insert —
// structure construction and ReadIndex do — to switch searches onto the
// allocation-free cache-friendly kernel; searching an unfrozen index still
// works on the pointer tries. Freeze is idempotent, changes no search
// result, and must not run concurrently with searches. A later Insert
// thaws the affected trie; re-freezing re-compacts it.
func (ix *Index) Freeze() {
	for _, tr := range ix.tries {
		if tr == nil || tr.flat != nil {
			continue
		}
		tr.flat = flatten(tr.root)
		tr.nodes = len(tr.flat.tok) - 1
		tr.root = nil
	}
	ix.ensureInvSorted()
}

// Frozen reports whether every trie is in arena form.
func (ix *Index) Frozen() bool {
	for _, tr := range ix.tries {
		if tr != nil && tr.flat == nil {
			return false
		}
	}
	return true
}

// Total returns the number of distinct structures indexed.
func (ix *Index) Total() int { return ix.total }

// MaxLen returns the maximum indexed structure length.
func (ix *Index) MaxLen() int { return ix.maxLen }

// NumTries returns the number of non-empty tries.
func (ix *Index) NumTries() int {
	n := 0
	for _, t := range ix.tries {
		if t != nil {
			n++
		}
	}
	return n
}

// MemoryStats summarizes the index's size: structures, trie nodes, and the
// per-length breakdown (Section 3.3's memory-for-latency trade is visible
// in the node counts).
type MemoryStats struct {
	Structures int
	Nodes      int
	PerLength  map[int]LengthStats
}

// LengthStats is one trie's share.
type LengthStats struct {
	Structures int
	Nodes      int
}

// Memory returns the index's size stats. Frozen tries answer in O(1) from
// their arena lengths; unfrozen tries are walked.
func (ix *Index) Memory() MemoryStats {
	st := MemoryStats{Structures: ix.total, PerLength: map[int]LengthStats{}}
	for length, t := range ix.tries {
		if t == nil {
			continue
		}
		var n int
		if t.flat != nil {
			n = len(t.flat.tok) - 1
		} else {
			n = countNodes(t.root)
		}
		st.Nodes += n
		st.PerLength[length] = LengthStats{Structures: t.count, Nodes: n}
	}
	return st
}

func countNodes(n *node) int {
	total := 0
	for _, c := range n.children {
		total += 1 + countNodes(c)
	}
	return total
}
