// Package trieindex implements the structure index and search engine of
// Sections 3.3–3.4 and Appendix D: ground-truth SQL structures are packed
// into 50 disjoint tries, one per token length, and searched with a
// SQL-specific weighted edit distance (insert/delete only; W_K=1.2,
// W_S=1.1, W_L=1.0) computed by a column-passing dynamic program over trie
// paths. Three optimizations are provided:
//
//   - BDB — bidirectional bounds (Proposition 1) prune whole tries whose
//     best possible distance already exceeds the current best; accuracy
//     preserving.
//   - DAP — diversity-aware pruning: among sibling children drawn from the
//     "prime superset" ({AVG,COUNT,SUM,MAX,MIN} ∪ {AND,OR} ∪ {=,<,>}), only
//     the locally-best branch is explored; trades accuracy for latency.
//   - INV — an inverted index from non-universal keywords to the structures
//     containing them; when the transcript mentions such a keyword, only
//     those structures are scanned; trades accuracy for latency.
package trieindex

import (
	"sort"

	"speakql/internal/sqltoken"
)

// tokenID is an interned token. The structure alphabet is tiny (keywords,
// splchars, and the literal symbol), so 16 bits is generous.
type tokenID uint16

// unknownID never matches any indexed token: transcripts can contain words
// outside the structure alphabet only if masking was skipped, and those must
// simply never align.
const unknownID = tokenID(0xFFFF)

// interner maps token strings to dense ids.
type interner struct {
	ids  map[string]tokenID
	strs []string
}

func newInterner() *interner {
	return &interner{ids: make(map[string]tokenID)}
}

func (in *interner) intern(tok string) tokenID {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	id := tokenID(len(in.strs))
	in.ids[tok] = id
	in.strs = append(in.strs, tok)
	return id
}

func (in *interner) lookup(tok string) tokenID {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	return unknownID
}

func (in *interner) str(id tokenID) string { return in.strs[id] }

// node is a trie node. Children are kept sorted by token id for binary
// search during insertion; traversal order is deterministic.
type node struct {
	tok      tokenID
	leaf     bool
	children []*node
}

func (n *node) child(tok tokenID) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].tok >= tok })
	if i < len(n.children) && n.children[i].tok == tok {
		return n.children[i]
	}
	return nil
}

func (n *node) insertChild(tok tokenID) *node {
	i := sort.Search(len(n.children), func(i int) bool { return n.children[i].tok >= tok })
	if i < len(n.children) && n.children[i].tok == tok {
		return n.children[i]
	}
	c := &node{tok: tok}
	n.children = append(n.children, nil)
	copy(n.children[i+1:], n.children[i:])
	n.children[i] = c
	return c
}

// trie holds all structures of one token length.
type trie struct {
	root  *node
	count int // number of structures
	nodes int // total node count (for stats)
}

// Options configures index construction and search behaviour.
type Options struct {
	// DisableBDB turns off the bidirectional-bounds trie pruning
	// (Proposition 1). Used only by the Figure 15 ablation; BDB never
	// changes results.
	DisableBDB bool
	// DAP enables diversity-aware pruning (Appendix D.3); approximate.
	DAP bool
	// INV enables the inverted-index fast path (Appendix D.3); approximate.
	INV bool
	// UniformWeights replaces the SQL-specific weights (W_K=1.2, W_S=1.1,
	// W_L=1.0) with 1.0 for every token class — the ablation of the
	// Section 3.4 design choice that Keywords are the most trustworthy
	// anchors. Not part of the paper's own ablation set.
	UniformWeights bool
	// Workers > 1 searches the length partitions concurrently on a bounded
	// pool of that many goroutines, sharing one atomic best-distance bound
	// so BDB pruning composes across partitions. Results are bit-identical
	// to the serial search (0 or 1). The INV fast path, when it applies,
	// stays serial.
	Workers int
}

// Index is the structure index: one trie per structure length plus the
// optional inverted index. Build it once (offline, Section 3.2) and share it
// across goroutines; Search does not mutate the index.
type Index struct {
	in         *interner
	tries      []*trie // indexed by structure length
	maxLen     int
	total      int
	weights    []float64               // weight per interned token id
	prime      []int8                  // DAP prime-superset group per id (−1 none)
	inv        map[tokenID][][]tokenID // keyword → structures containing it
	corpus     [][]tokenID             // retained only when INV is on
	keepCorpus bool
}

// NewIndex creates an empty index. Set keepINV if INV search will be used
// (it needs the flat corpus retained).
func NewIndex(maxLen int, keepINV bool) *Index {
	return &Index{
		in:         newInterner(),
		tries:      make([]*trie, maxLen+1),
		maxLen:     maxLen,
		inv:        make(map[tokenID][][]tokenID),
		keepCorpus: keepINV,
	}
}

// invExcluded are the universal keywords excluded from the inverted index:
// they appear in (nearly) every structure and so discriminate nothing.
var invExcluded = map[string]bool{"SELECT": true, "FROM": true, "WHERE": true}

// Insert adds one structure (a token sequence over the grammar alphabet).
// Duplicate insertions are idempotent.
func (ix *Index) Insert(tokens []string) {
	if len(tokens) == 0 || len(tokens) > ix.maxLen {
		return
	}
	ids := make([]tokenID, len(tokens))
	for i, t := range tokens {
		id := ix.in.intern(t)
		ids[i] = id
		for int(id) >= len(ix.weights) {
			ix.weights = append(ix.weights, 0)
			ix.prime = append(ix.prime, -1)
		}
		ix.weights[id] = sqltoken.Weight(t)
		ix.prime[id] = int8(primeGroup(t))
	}
	tr := ix.tries[len(tokens)]
	if tr == nil {
		tr = &trie{root: &node{}}
		ix.tries[len(tokens)] = tr
	}
	n := tr.root
	for _, id := range ids {
		n = n.insertChild(id)
	}
	if n.leaf {
		return // duplicate
	}
	n.leaf = true
	tr.count++
	ix.total++
	if ix.keepCorpus {
		ix.corpus = append(ix.corpus, ids)
		seen := map[tokenID]bool{}
		for i, t := range tokens {
			if sqltoken.IsKeyword(t) && !invExcluded[t] && !seen[ids[i]] {
				seen[ids[i]] = true
				// Keep each inverted list length-sorted so the INV scan
				// can expand outward from the query's length and stop on
				// the Proposition 1 bound. The generator emits structures
				// in non-decreasing length, so this append is O(1) in
				// practice; the insertion sort below covers other callers.
				list := ix.inv[ids[i]]
				j := len(list)
				for j > 0 && len(list[j-1]) > len(ids) {
					j--
				}
				list = append(list, nil)
				copy(list[j+1:], list[j:])
				list[j] = ids
				ix.inv[ids[i]] = list
			}
		}
	}
}

// Total returns the number of distinct structures indexed.
func (ix *Index) Total() int { return ix.total }

// MaxLen returns the maximum indexed structure length.
func (ix *Index) MaxLen() int { return ix.maxLen }

// NumTries returns the number of non-empty tries.
func (ix *Index) NumTries() int {
	n := 0
	for _, t := range ix.tries {
		if t != nil {
			n++
		}
	}
	return n
}

// MemoryStats summarizes the index's size: structures, trie nodes, and the
// per-length breakdown (Section 3.3's memory-for-latency trade is visible
// in the node counts).
type MemoryStats struct {
	Structures int
	Nodes      int
	PerLength  map[int]LengthStats
}

// LengthStats is one trie's share.
type LengthStats struct {
	Structures int
	Nodes      int
}

// Memory walks the tries and returns their stats.
func (ix *Index) Memory() MemoryStats {
	st := MemoryStats{Structures: ix.total, PerLength: map[int]LengthStats{}}
	for length, t := range ix.tries {
		if t == nil {
			continue
		}
		n := countNodes(t.root)
		st.Nodes += n
		st.PerLength[length] = LengthStats{Structures: t.count, Nodes: n}
	}
	return st
}

func countNodes(n *node) int {
	total := 0
	for _, c := range n.children {
		total += 1 + countNodes(c)
	}
	return total
}

// tokensOf converts a transcript to interned ids (unknown tokens map to a
// never-matching id) and their deletion weights.
func (ix *Index) tokensOf(toks []string) ([]tokenID, []float64) {
	ids := make([]tokenID, len(toks))
	w := make([]float64, len(toks))
	for i, t := range toks {
		ids[i] = ix.in.lookup(t)
		w[i] = sqltoken.Weight(t)
	}
	return ids, w
}
