package trieindex

import (
	"context"
	"math"
	"sort"

	"speakql/internal/sqltoken"
)

// Result is one structure returned by search, with its weighted edit
// distance to the query.
type Result struct {
	Tokens   []string
	Distance float64
}

// Stats reports work done by one search, used by the ablation experiments
// (Figure 15) to show what each optimization saves.
type Stats struct {
	NodesVisited  int
	TriesSearched int
	TriesSkipped  int // skipped by BDB
	InvScanned    int // structures scanned via the inverted index
	UsedINV       bool
}

// add merges another partition's stats in (parallel search sums the
// per-worker counters).
func (st *Stats) add(o Stats) {
	st.NodesVisited += o.NodesVisited
	st.TriesSearched += o.TriesSearched
	st.TriesSkipped += o.TriesSkipped
	st.InvScanned += o.InvScanned
	st.UsedINV = st.UsedINV || o.UsedINV
}

// Search returns the closest structure to maskOut (ties broken by
// enumeration order). It is Box 2's algorithm with k=1.
func (ix *Index) Search(maskOut []string, opts Options) (Result, Stats) {
	return ix.SearchContext(context.Background(), maskOut, opts)
}

// SearchContext is Search with cancellation: ctx is checked at partition
// boundaries, and a cancelled search returns the best result found so far.
func (ix *Index) SearchContext(ctx context.Context, maskOut []string, opts Options) (Result, Stats) {
	rs, st := ix.SearchTopKContext(ctx, maskOut, 1, opts)
	if len(rs) == 0 {
		return Result{}, st
	}
	return rs[0], st
}

// SearchTopK returns the k closest structures in increasing distance order,
// ties broken by enumeration order. With opts zero-valued this is the exact
// algorithm (BDB on); DAP and INV trade accuracy for latency per Appendix
// D.3; Workers > 1 searches the length partitions concurrently with results
// bit-identical to the serial pass.
func (ix *Index) SearchTopK(maskOut []string, k int, opts Options) ([]Result, Stats) {
	return ix.SearchTopKContext(context.Background(), maskOut, k, opts)
}

// SearchTopKContext is SearchTopK with cancellation: ctx is checked at
// partition (per-length trie) boundaries — never mid-trie — so an expired
// deadline stops the search promptly and returns the best results found so
// far. An already-cancelled context returns nil without searching.
func (ix *Index) SearchTopKContext(ctx context.Context, maskOut []string, k int, opts Options) ([]Result, Stats) {
	var st Stats
	if k <= 0 || ix.total == 0 || ctx.Err() != nil {
		return nil, st
	}
	s := ix.getSearcher(maskOut, k, opts, &st)
	return ix.runSearcher(ctx, s, math.Inf(1))
}

// searchTopKSeeded is SearchTopKContext over an already-interned query, with
// the pruning bound pre-seeded to seed (+Inf means unseeded). The resumable
// prefix search (resume.go) uses it: seeding with any upper bound on the
// global k-th-best distance prunes more aggressively while provably keeping
// the results bit-identical — see PrefixSearcher for the argument. The query
// slices are borrowed, not owned; the caller must keep them alive for the
// duration of the call.
func (ix *Index) searchTopKSeeded(ctx context.Context, q []tokenID, qw []float64, k int, opts Options, seed float64) ([]Result, Stats) {
	var st Stats
	if k <= 0 || ix.total == 0 || ctx.Err() != nil {
		return nil, st
	}
	s := ix.newPooledSearcher(k, opts, &st)
	s.adoptQuery(q, qw)
	return ix.runSearcher(ctx, s, seed)
}

// runSearcher drives a prepared searcher through the INV fast path and the
// bidirectional partition sweep (serial or parallel), recycles it, and
// returns results plus stats. bound pre-seeds the shared best-distance bound
// used for pruning; math.Inf(1) reproduces the unseeded search exactly.
func (ix *Index) runSearcher(ctx context.Context, s *searcher, bound float64) ([]Result, Stats) {
	if s.opts.INV {
		if s.searchINV() {
			s.st.UsedINV = true
			st := *s.st
			out := s.results()
			ix.putSearcher(s)
			return out, st
		}
	}
	// Bidirectional order of Box 2: lengths m, m−1, …, 1 then m+1, …, max.
	// Trying the closest lengths first makes the BDB threshold tighten
	// quickly — serially and in parallel alike.
	order := s.partitionOrder(len(s.q))
	if s.opts.Workers > 1 && len(order) > 1 {
		out, pst := ix.searchParallel(ctx, s.q, s.qw, s.k, s.opts, order, bound)
		ix.putSearcher(s)
		return out, pst
	}
	if !math.IsInf(bound, 1) {
		// Serial searches normally run without a shared bound; a seeded one
		// borrows the cross-partition mechanism (and its tie-preserving
		// d <= bound prune) to carry the seed.
		sb := newSharedBound()
		sb.relax(bound)
		s.shared = sb
	}
	for _, n := range order {
		if ctx.Err() != nil {
			break
		}
		s.searchLen(n)
	}
	st := *s.st
	out := s.results()
	ix.putSearcher(s)
	return out, st
}

// getSearcher takes a searcher from the index's pool and prepares it for
// one query: the masked transcript is interned into the searcher's own
// scratch buffers and the weight vectors are bound.
func (ix *Index) getSearcher(maskOut []string, k int, opts Options, st *Stats) *searcher {
	s := ix.newPooledSearcher(k, opts, st)
	s.setQuery(maskOut)
	return s
}

// newPooledSearcher resets a pooled (or fresh) searcher's per-query state;
// the query itself is bound by setQuery or adoptQuery.
func (ix *Index) newPooledSearcher(k int, opts Options, st *Stats) *searcher {
	s, _ := ix.pool.Get().(*searcher)
	if s == nil {
		s = &searcher{}
	}
	s.ix = ix
	s.k = k
	s.opts = opts
	s.st = st
	s.rank = 0
	s.seq = 0
	s.shared = nil
	return s
}

// putSearcher recycles a searcher — its column pool, query scratch, and
// heap-entry token buffers — back into the index's pool. The caller must
// have materialized its results first.
func (ix *Index) putSearcher(s *searcher) {
	s.recycle()
	s.ix = nil
	s.st = nil
	s.shared = nil
	s.q, s.qw, s.w = nil, nil, nil
	ix.pool.Put(s)
}

// maxRecycledBuffers bounds the freelist of heap-entry token buffers a
// pooled searcher retains between queries.
const maxRecycledBuffers = 64

// recycle moves the heap entries' token buffers to the freelist and clears
// per-query state, keeping all scratch memory for reuse.
func (s *searcher) recycle() {
	for i := range s.heap {
		if c := s.heap[i].toks; cap(c) > 0 && len(s.free) < maxRecycledBuffers {
			s.free = append(s.free, c[:0])
		}
		s.heap[i].toks = nil
	}
	s.heap = s.heap[:0]
	s.path = s.path[:0]
}

// setQuery interns the masked transcript into the searcher's own buffers
// (unknown tokens map to a never-matching id) and binds the weights.
func (s *searcher) setQuery(maskOut []string) {
	s.qbuf = s.qbuf[:0]
	s.qwbuf = s.qwbuf[:0]
	for _, t := range maskOut {
		s.qbuf = append(s.qbuf, s.ix.in.lookup(t))
		if s.opts.UniformWeights {
			s.qwbuf = append(s.qwbuf, 1)
		} else {
			s.qwbuf = append(s.qwbuf, sqltoken.Weight(t))
		}
	}
	s.q, s.qw = s.qbuf, s.qwbuf
	s.bindWeights()
}

// adoptQuery points the searcher at query slices owned elsewhere: parallel
// workers share the coordinating searcher's interned query read-only.
func (s *searcher) adoptQuery(q []tokenID, qw []float64) {
	s.q, s.qw = q, qw
	s.bindWeights()
}

// bindWeights selects the insertion-weight vector: the index's SQL-specific
// weights, or (under the ablation) an all-ones vector kept per searcher so
// concurrent searchers never share mutable slices.
func (s *searcher) bindWeights() {
	if !s.opts.UniformWeights {
		s.w = s.ix.weights
		return
	}
	for len(s.uw) < len(s.ix.weights) {
		s.uw = append(s.uw, 1)
	}
	s.w = s.uw[:len(s.ix.weights)]
}

// searcher carries the per-query search state. Searchers are pooled per
// index: the buffers below the fold persist across queries, which is what
// makes the steady-state search kernel allocation-free.
type searcher struct {
	ix   *Index
	q    []tokenID // MaskOut, interned
	qw   []float64 // deletion weight of each MaskOut token
	w    []float64 // insertion weight per interned id (uniform under ablation)
	k    int
	opts Options
	st   *Stats

	heap resultHeap // current best k, worst first
	path []tokenID  // tokens on the current root→node path

	// rank is the current partition's position in the bidirectional search
	// order and seq counts offers; together they reconstruct the global
	// enumeration order so parallel merging breaks distance ties exactly
	// like a serial pass. Serial search leaves rank at 0 and lets seq run
	// across partitions — the same total order.
	rank int32
	seq  uint64

	// shared is the cross-partition best-distance bound (nil when serial).
	shared *sharedBound

	// Owned scratch, reused across queries via the searcher pool.
	qbuf   []tokenID   // interned query backing
	qwbuf  []float64   // query deletion-weight backing
	uw     []float64   // all-ones insertion weights (UniformWeights ablation)
	cols   [][]float64 // DP column pool, one buffer per trie depth
	dapCol []float64   // DAP pass-1 scratch column
	fPrev  []float64   // flatDistance row buffers (INV path)
	fCur   []float64
	free   [][]tokenID // recycled heap-entry token buffers
	order  []int       // partition-order scratch
}

// column returns the pooled DP column for one trie depth, sized for the
// current query. Buffers are created on first use at each depth and then
// live for the searcher's lifetime.
func (s *searcher) column(depth int) []float64 {
	for len(s.cols) <= depth {
		s.cols = append(s.cols, nil)
	}
	need := len(s.q) + 1
	if cap(s.cols[depth]) < need {
		s.cols[depth] = make([]float64, need)
	}
	s.cols[depth] = s.cols[depth][:need]
	return s.cols[depth]
}

// dapColumn returns the scratch column DAP's scoring pass writes through.
func (s *searcher) dapColumn() []float64 {
	need := len(s.q) + 1
	if cap(s.dapCol) < need {
		s.dapCol = make([]float64, need)
	}
	s.dapCol = s.dapCol[:need]
	return s.dapCol
}

// partitionOrder lists the non-empty trie lengths in Box 2's bidirectional
// search order for a query of qlen tokens, reusing the searcher's scratch.
func (s *searcher) partitionOrder(qlen int) []int {
	ix := s.ix
	m := qlen
	if m > ix.maxLen {
		m = ix.maxLen // queries longer than any structure start at the top
	}
	order := s.order[:0]
	for n := m; n >= 1; n-- {
		if ix.tries[n] != nil {
			order = append(order, n)
		}
	}
	for n := m + 1; n <= ix.maxLen; n++ {
		if ix.tries[n] != nil {
			order = append(order, n)
		}
	}
	s.order = order
	return order
}

// threshold is the local pruning bound: the k-th best distance this
// searcher has kept.
func (s *searcher) threshold() float64 {
	if len(s.heap) < s.k {
		return math.Inf(1)
	}
	return s.heap[0].dist
}

// viable reports whether a candidate (or subtree lower bound) at distance d
// can still reach the final top-k. Locally the test is d < threshold():
// within one enumeration order an equal-distance candidate always loses the
// tie to an already-kept one. Against the shared cross-partition bound the
// test is d <= bound: an equal-distance candidate in another partition may
// still win its tie at merge time (by enumeration rank), so it must survive
// the prune.
func (s *searcher) viable(d float64) bool {
	if d >= s.threshold() {
		return false
	}
	return s.shared == nil || d <= s.shared.load()
}

// offer records a candidate leaf. Token buffers are recycled: an evicted
// entry's buffer (or one from the freelist) carries the new candidate, so
// steady-state offers allocate nothing.
func (s *searcher) offer(dist float64, toks []tokenID) {
	var buf []tokenID
	if len(s.heap) == s.k {
		if dist >= s.heap[0].dist {
			return
		}
		buf = s.heap.popWorst().toks[:0]
	} else if n := len(s.free) - 1; n >= 0 {
		buf = s.free[n][:0]
		s.free = s.free[:n]
	}
	buf = append(buf, toks...)
	s.seq++
	s.heap.push(heapEntry{dist: dist, rank: s.rank, seq: s.seq, toks: buf})
	if s.shared != nil && len(s.heap) == s.k {
		// The worker's k-th best is an upper bound on the global k-th best
		// (more candidates only lower it), so publishing it can only
		// tighten — never over-tighten — everyone's pruning.
		s.shared.relax(s.heap[0].dist)
	}
}

func (s *searcher) results() []Result {
	entries := append([]heapEntry(nil), s.heap...)
	sort.Slice(entries, func(i, j int) bool { return entries[j].worse(entries[i]) })
	out := make([]Result, len(entries))
	for i, e := range entries {
		out[i] = Result{Tokens: s.ix.stringsOf(e.toks), Distance: e.dist}
	}
	return out
}

// stringsOf resolves interned ids back to tokens.
func (ix *Index) stringsOf(ids []tokenID) []string {
	toks := make([]string, len(ids))
	for i, id := range ids {
		toks[i] = ix.in.str(id)
	}
	return toks
}

// searchLen searches the trie holding structures of length n, unless BDB
// proves it cannot beat the current threshold (Proposition 1: the minimum
// achievable distance between strings of lengths m and n is |m−n|·W_L).
// Frozen tries run the arena kernel (arena.go); unfrozen ones the pointer
// kernel below. Both produce bit-identical results and stats.
func (s *searcher) searchLen(n int) {
	tr := s.ix.tries[n]
	if tr == nil {
		return
	}
	if !s.opts.DisableBDB {
		lower := math.Abs(float64(len(s.q)-n)) * sqltoken.WeightLiteral
		if !s.viable(lower) {
			s.st.TriesSkipped++
			return
		}
	}
	s.st.TriesSearched++
	// Root column: dp[i][0] = cost of deleting the first i MaskOut tokens.
	col := s.column(0)
	col[0] = 0
	for i := 1; i <= len(s.q); i++ {
		col[i] = col[i-1] + s.qw[i-1]
	}
	s.path = s.path[:0]
	if tr.flat != nil {
		s.descendFlat(tr.flat, 0, col, 0)
		return
	}
	s.descend(tr.root, col)
}

// --- pointer-trie DP kernel ---
//
// The pre-arena kernel, retained for unfrozen indexes and as the reference
// implementation the differential tests compare the arena kernel against.
// It allocates one column per node visit; the arena kernel reuses pooled
// columns instead.

// descend explores node's children, advancing the DP by one column per
// child token, with min-column pruning and (optionally) DAP.
func (s *searcher) descend(n *node, col []float64) {
	if !s.opts.DAP || len(n.children) < 2 {
		for _, c := range n.children {
			childCol := s.step(col, c.tok)
			s.visit(c, childCol)
		}
		return
	}
	// DAP: non-prime children are explored normally; within each prime-
	// superset group only the child whose DP column ends lowest is
	// explored further.
	var bestChild [3]*node
	var bestCol [3][]float64
	for _, c := range n.children {
		g := s.ix.prime[c.tok]
		if g < 0 {
			s.visit(c, s.step(col, c.tok))
			continue
		}
		cc := s.step(col, c.tok)
		if bestChild[g] == nil || last(cc) < last(bestCol[g]) {
			bestChild[g] = c
			bestCol[g] = cc
		}
	}
	for g := range bestChild {
		if bestChild[g] != nil {
			s.visit(bestChild[g], bestCol[g])
		}
	}
}

func (s *searcher) visit(c *node, col []float64) {
	s.st.NodesVisited++
	s.path = append(s.path, c.tok)
	if c.leaf {
		if d := col[len(col)-1]; s.viable(d) {
			s.offer(d, s.path)
		}
	}
	// Min-column pruning: every descendant's distance is ≥ min(col).
	if s.viable(minOf(col)) {
		s.descend(c, col)
	}
	s.path = s.path[:len(s.path)-1]
}

// step advances the DP one column for trie token tok (Algorithm 1): row 0
// inserts tok; row i matches q[i-1] diagonally or takes the cheaper of
// deleting q[i-1] (cost qw) or inserting tok (cost W(tok)).
func (s *searcher) step(prev []float64, tok tokenID) []float64 {
	cur := make([]float64, len(prev))
	s.stepInto(prev, cur, tok)
	return cur
}

// stepInto is step writing into a caller-provided column of the same
// length — the allocation-free form the arena kernel uses.
func (s *searcher) stepInto(prev, cur []float64, tok tokenID) {
	w := s.w[tok]
	cur[0] = prev[0] + w
	for i := 1; i < len(prev); i++ {
		if s.q[i-1] == tok {
			cur[i] = prev[i-1]
			continue
		}
		ins := prev[i] + w           // insert the trie token (advance column only)
		delQ := cur[i-1] + s.qw[i-1] // delete the query token (advance row only)
		if ins < delQ {
			cur[i] = ins
		} else {
			cur[i] = delQ
		}
	}
}

// primeGroup classifies a token into the prime superset groups of DAP:
// 0 = aggregate ops, 1 = connectives, 2 = comparison ops; −1 otherwise.
func primeGroup(tok string) int {
	switch tok {
	case "AVG", "COUNT", "SUM", "MAX", "MIN":
		return 0
	case "AND", "OR":
		return 1
	case "=", "<", ">":
		return 2
	}
	return -1
}

func minOf(col []float64) float64 {
	m := col[0]
	for _, v := range col[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func last(col []float64) float64 { return col[len(col)-1] }

// maxINVList bounds the inverted list size INV will scan flat; larger lists
// fall back to trie search.
const maxINVList = 25000

// searchINV runs the inverted-index fast path: if the query contains any
// indexed keyword, scan only the structures listed under the rarest such
// keyword. Returns false if no indexed keyword is present (caller falls
// back to trie search).
func (s *searcher) searchINV() bool {
	s.ix.ensureInvSorted()
	var bestList [][]tokenID
	found := false
	for _, id := range s.q {
		if id == unknownID || !s.ix.invKey[id] {
			continue
		}
		list, ok := s.ix.inv[id]
		if !ok {
			continue
		}
		if !found || len(list) < len(bestList) {
			bestList = list
			found = true
		}
	}
	if !found {
		return false
	}
	// A huge inverted list (AND/OR appear in most predicates) buys nothing
	// over the prefix-sharing trie; scanning it flat would be slower than
	// the search it is meant to shortcut. Fall back to trie search then —
	// INV only wins when the keyword is selective, which is the paper's
	// premise for it.
	if len(bestList) > maxINVList {
		return false
	}
	// Scan in order of increasing length difference from the query: the
	// Proposition 1 lower bound then lets the whole remaining scan stop as
	// soon as both frontiers are out of range — the flat-list analogue of
	// BDB. Lists are length-sorted by ensureInvSorted. The split search is
	// hand-rolled (not sort.Search) to keep the kernel closure-free and so
	// allocation-free.
	m := len(s.q)
	lo, hi := 0, len(bestList)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if len(bestList[mid]) < m {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	loIdx, hiIdx := lo-1, lo
	loAlive, hiAlive := loIdx >= 0, hiIdx < len(bestList)
	for loAlive || hiAlive {
		// Advance the frontier closer in length to the query first.
		useHi := hiAlive
		if loAlive && hiAlive {
			useHi = len(bestList[hiIdx])-m <= m-len(bestList[loIdx])
		}
		if useHi {
			if !s.invScan(bestList[hiIdx]) {
				hiAlive = false
			} else if hiIdx++; hiIdx >= len(bestList) {
				hiAlive = false
			}
		} else {
			if !s.invScan(bestList[loIdx]) {
				loAlive = false
			} else if loIdx--; loIdx < 0 {
				loAlive = false
			}
		}
	}
	return true
}

// invScan scores one inverted-list structure, reporting false once the
// Proposition 1 bound proves this scan direction exhausted.
func (s *searcher) invScan(structIDs []tokenID) bool {
	lower := float64(len(structIDs) - len(s.q))
	if lower < 0 {
		lower = -lower
	}
	if lower*sqltoken.WeightLiteral >= s.threshold() {
		return false
	}
	s.st.InvScanned++
	d := s.flatDistance(structIDs, s.threshold())
	if d < s.threshold() {
		s.offer(d, structIDs)
	}
	return true
}

// flatDistance computes the weighted edit distance between the query and one
// flat structure (the INV path), abandoning early once every cell of a row
// exceeds limit (the distance is then provably ≥ limit). Rows come from the
// searcher's scratch, not the heap.
func (s *searcher) flatDistance(b []tokenID, limit float64) float64 {
	need := len(b) + 1
	if cap(s.fPrev) < need {
		s.fPrev = make([]float64, need)
		s.fCur = make([]float64, need)
	}
	prev, cur := s.fPrev[:need], s.fCur[:need]
	prev[0] = 0
	for j := 1; j <= len(b); j++ {
		prev[j] = prev[j-1] + s.w[b[j-1]]
	}
	for i := 1; i <= len(s.q); i++ {
		cur[0] = prev[0] + s.qw[i-1]
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			if s.q[i-1] == b[j-1] {
				cur[j] = prev[j-1]
			} else {
				del := prev[j] + s.qw[i-1]
				ins := cur[j-1] + s.w[b[j-1]]
				if del < ins {
					cur[j] = del
				} else {
					cur[j] = ins
				}
			}
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin >= limit {
			return rowMin // can only grow from here
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// heapEntry and resultHeap implement a small worst-first binary heap for
// top-k maintenance. Entries are totally ordered by (distance, partition
// rank, offer sequence) — distance ties resolve to the earliest-enumerated
// candidate, which is what makes serial and parallel search agree exactly.
type heapEntry struct {
	dist float64
	rank int32
	seq  uint64
	toks []tokenID
}

// worse reports whether e loses to o: strictly greater distance, or an
// equal distance with a later enumeration position.
func (e heapEntry) worse(o heapEntry) bool {
	if e.dist != o.dist {
		return e.dist > o.dist
	}
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.seq > o.seq
}

type resultHeap []heapEntry

func (h *resultHeap) push(e heapEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].worse((*h)[p]) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *resultHeap) popWorst() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l].worse((*h)[big]) {
			big = l
		}
		if r < n && (*h)[r].worse((*h)[big]) {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}
