package trieindex

import (
	"context"
	"math"
	"sort"

	"speakql/internal/sqltoken"
)

// Result is one structure returned by search, with its weighted edit
// distance to the query.
type Result struct {
	Tokens   []string
	Distance float64
}

// Stats reports work done by one search, used by the ablation experiments
// (Figure 15) to show what each optimization saves.
type Stats struct {
	NodesVisited  int
	TriesSearched int
	TriesSkipped  int // skipped by BDB
	InvScanned    int // structures scanned via the inverted index
	UsedINV       bool
}

// add merges another partition's stats in (parallel search sums the
// per-worker counters).
func (st *Stats) add(o Stats) {
	st.NodesVisited += o.NodesVisited
	st.TriesSearched += o.TriesSearched
	st.TriesSkipped += o.TriesSkipped
	st.InvScanned += o.InvScanned
	st.UsedINV = st.UsedINV || o.UsedINV
}

// Search returns the closest structure to maskOut (ties broken by
// enumeration order). It is Box 2's algorithm with k=1.
func (ix *Index) Search(maskOut []string, opts Options) (Result, Stats) {
	return ix.SearchContext(context.Background(), maskOut, opts)
}

// SearchContext is Search with cancellation: ctx is checked at partition
// boundaries, and a cancelled search returns the best result found so far.
func (ix *Index) SearchContext(ctx context.Context, maskOut []string, opts Options) (Result, Stats) {
	rs, st := ix.SearchTopKContext(ctx, maskOut, 1, opts)
	if len(rs) == 0 {
		return Result{}, st
	}
	return rs[0], st
}

// SearchTopK returns the k closest structures in increasing distance order,
// ties broken by enumeration order. With opts zero-valued this is the exact
// algorithm (BDB on); DAP and INV trade accuracy for latency per Appendix
// D.3; Workers > 1 searches the length partitions concurrently with results
// bit-identical to the serial pass.
func (ix *Index) SearchTopK(maskOut []string, k int, opts Options) ([]Result, Stats) {
	return ix.SearchTopKContext(context.Background(), maskOut, k, opts)
}

// SearchTopKContext is SearchTopK with cancellation: ctx is checked at
// partition (per-length trie) boundaries — never mid-trie — so an expired
// deadline stops the search promptly and returns the best results found so
// far. An already-cancelled context returns nil without searching.
func (ix *Index) SearchTopKContext(ctx context.Context, maskOut []string, k int, opts Options) ([]Result, Stats) {
	var st Stats
	if k <= 0 || ix.total == 0 || ctx.Err() != nil {
		return nil, st
	}
	q, qw := ix.tokensOf(maskOut)
	if opts.INV {
		s := ix.newSearcher(q, qw, k, opts, &st)
		if s.searchINV() {
			st.UsedINV = true
			return s.results(), st
		}
	}
	// Bidirectional order of Box 2: lengths m, m−1, …, 1 then m+1, …, max.
	// Trying the closest lengths first makes the BDB threshold tighten
	// quickly — serially and in parallel alike.
	order := ix.partitionOrder(len(q))
	if opts.Workers > 1 && len(order) > 1 {
		return ix.searchParallel(ctx, q, qw, k, opts, order)
	}
	s := ix.newSearcher(q, qw, k, opts, &st)
	for _, n := range order {
		if ctx.Err() != nil {
			break
		}
		s.searchLen(n)
	}
	return s.results(), st
}

// partitionOrder lists the non-empty trie lengths in Box 2's bidirectional
// search order for a query of qlen tokens.
func (ix *Index) partitionOrder(qlen int) []int {
	m := qlen
	if m > ix.maxLen {
		m = ix.maxLen // queries longer than any structure start at the top
	}
	order := make([]int, 0, len(ix.tries))
	for n := m; n >= 1; n-- {
		if ix.tries[n] != nil {
			order = append(order, n)
		}
	}
	for n := m + 1; n <= ix.maxLen; n++ {
		if ix.tries[n] != nil {
			order = append(order, n)
		}
	}
	return order
}

// newSearcher builds the per-query (or, in parallel search, per-worker)
// search state. q is shared read-only across searchers; the uniform-weight
// ablation copies qw before overwriting so concurrent searchers never
// mutate shared slices.
func (ix *Index) newSearcher(q []tokenID, qw []float64, k int, opts Options, st *Stats) *searcher {
	s := &searcher{ix: ix, q: q, qw: qw, k: k, opts: opts, st: st}
	if opts.UniformWeights {
		s.w = make([]float64, len(ix.weights))
		for i := range s.w {
			s.w[i] = 1
		}
		s.qw = make([]float64, len(qw))
		for i := range s.qw {
			s.qw[i] = 1
		}
	} else {
		s.w = ix.weights
	}
	return s
}

// searcher carries the per-query search state.
type searcher struct {
	ix   *Index
	q    []tokenID // MaskOut, interned
	qw   []float64 // deletion weight of each MaskOut token
	w    []float64 // insertion weight per interned id (uniform under ablation)
	k    int
	opts Options
	st   *Stats

	heap resultHeap // current best k, worst first
	path []tokenID  // tokens on the current root→node path

	// rank is the current partition's position in the bidirectional search
	// order and seq counts offers; together they reconstruct the global
	// enumeration order so parallel merging breaks distance ties exactly
	// like a serial pass. Serial search leaves rank at 0 and lets seq run
	// across partitions — the same total order.
	rank int32
	seq  uint64

	// shared is the cross-partition best-distance bound (nil when serial).
	shared *sharedBound
}

// threshold is the local pruning bound: the k-th best distance this
// searcher has kept.
func (s *searcher) threshold() float64 {
	if len(s.heap) < s.k {
		return math.Inf(1)
	}
	return s.heap[0].dist
}

// viable reports whether a candidate (or subtree lower bound) at distance d
// can still reach the final top-k. Locally the test is d < threshold():
// within one enumeration order an equal-distance candidate always loses the
// tie to an already-kept one. Against the shared cross-partition bound the
// test is d <= bound: an equal-distance candidate in another partition may
// still win its tie at merge time (by enumeration rank), so it must survive
// the prune.
func (s *searcher) viable(d float64) bool {
	if d >= s.threshold() {
		return false
	}
	return s.shared == nil || d <= s.shared.load()
}

// offer records a candidate leaf.
func (s *searcher) offer(dist float64, toks []tokenID) {
	if len(s.heap) == s.k {
		if dist >= s.heap[0].dist {
			return
		}
		s.heap.popWorst()
	}
	cp := make([]tokenID, len(toks))
	copy(cp, toks)
	s.seq++
	s.heap.push(heapEntry{dist: dist, rank: s.rank, seq: s.seq, toks: cp})
	if s.shared != nil && len(s.heap) == s.k {
		// The worker's k-th best is an upper bound on the global k-th best
		// (more candidates only lower it), so publishing it can only
		// tighten — never over-tighten — everyone's pruning.
		s.shared.relax(s.heap[0].dist)
	}
}

func (s *searcher) results() []Result {
	entries := append([]heapEntry(nil), s.heap...)
	sort.Slice(entries, func(i, j int) bool { return entries[j].worse(entries[i]) })
	out := make([]Result, len(entries))
	for i, e := range entries {
		out[i] = Result{Tokens: s.ix.stringsOf(e.toks), Distance: e.dist}
	}
	return out
}

// stringsOf resolves interned ids back to tokens.
func (ix *Index) stringsOf(ids []tokenID) []string {
	toks := make([]string, len(ids))
	for i, id := range ids {
		toks[i] = ix.in.str(id)
	}
	return toks
}

// searchLen searches the trie holding structures of length n, unless BDB
// proves it cannot beat the current threshold (Proposition 1: the minimum
// achievable distance between strings of lengths m and n is |m−n|·W_L).
func (s *searcher) searchLen(n int) {
	tr := s.ix.tries[n]
	if tr == nil {
		return
	}
	if !s.opts.DisableBDB {
		lower := math.Abs(float64(len(s.q)-n)) * sqltoken.WeightLiteral
		if !s.viable(lower) {
			s.st.TriesSkipped++
			return
		}
	}
	s.st.TriesSearched++
	// Root column: dp[i][0] = cost of deleting the first i MaskOut tokens.
	col := make([]float64, len(s.q)+1)
	for i := 1; i <= len(s.q); i++ {
		col[i] = col[i-1] + s.qw[i-1]
	}
	s.path = s.path[:0]
	s.descend(tr.root, col)
}

// descend explores node's children, advancing the DP by one column per
// child token, with min-column pruning and (optionally) DAP.
func (s *searcher) descend(n *node, col []float64) {
	if !s.opts.DAP || len(n.children) < 2 {
		for _, c := range n.children {
			childCol := s.step(col, c.tok)
			s.visit(c, childCol)
		}
		return
	}
	// DAP: non-prime children are explored normally; within each prime-
	// superset group only the child whose DP column ends lowest is
	// explored further.
	var bestChild [3]*node
	var bestCol [3][]float64
	for _, c := range n.children {
		g := s.ix.prime[c.tok]
		if g < 0 {
			s.visit(c, s.step(col, c.tok))
			continue
		}
		cc := s.step(col, c.tok)
		if bestChild[g] == nil || last(cc) < last(bestCol[g]) {
			bestChild[g] = c
			bestCol[g] = cc
		}
	}
	for g := range bestChild {
		if bestChild[g] != nil {
			s.visit(bestChild[g], bestCol[g])
		}
	}
}

func (s *searcher) visit(c *node, col []float64) {
	s.st.NodesVisited++
	s.path = append(s.path, c.tok)
	if c.leaf {
		if d := col[len(col)-1]; s.viable(d) {
			s.offer(d, s.path)
		}
	}
	// Min-column pruning: every descendant's distance is ≥ min(col).
	if s.viable(minOf(col)) {
		s.descend(c, col)
	}
	s.path = s.path[:len(s.path)-1]
}

// step advances the DP one column for trie token tok (Algorithm 1): row 0
// inserts tok; row i matches q[i-1] diagonally or takes the cheaper of
// deleting q[i-1] (cost qw) or inserting tok (cost W(tok)).
func (s *searcher) step(prev []float64, tok tokenID) []float64 {
	w := s.w[tok]
	cur := make([]float64, len(prev))
	cur[0] = prev[0] + w
	for i := 1; i < len(prev); i++ {
		if s.q[i-1] == tok {
			cur[i] = prev[i-1]
			continue
		}
		ins := prev[i] + w           // insert the trie token (advance column only)
		delQ := cur[i-1] + s.qw[i-1] // delete the query token (advance row only)
		if ins < delQ {
			cur[i] = ins
		} else {
			cur[i] = delQ
		}
	}
	return cur
}

// primeGroup classifies a token into the prime superset groups of DAP:
// 0 = aggregate ops, 1 = connectives, 2 = comparison ops; −1 otherwise.
func primeGroup(tok string) int {
	switch tok {
	case "AVG", "COUNT", "SUM", "MAX", "MIN":
		return 0
	case "AND", "OR":
		return 1
	case "=", "<", ">":
		return 2
	}
	return -1
}

func minOf(col []float64) float64 {
	m := col[0]
	for _, v := range col[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func last(col []float64) float64 { return col[len(col)-1] }

// maxINVList bounds the inverted list size INV will scan flat; larger lists
// fall back to trie search.
const maxINVList = 25000

// searchINV runs the inverted-index fast path: if the query contains any
// indexed keyword, scan only the structures listed under the rarest such
// keyword. Returns false if no indexed keyword is present (caller falls
// back to trie search).
func (s *searcher) searchINV() bool {
	var bestList [][]tokenID
	found := false
	for _, id := range s.q {
		if id == unknownID {
			continue
		}
		str := s.ix.in.str(id)
		if !sqltoken.IsKeyword(str) || invExcluded[str] {
			continue
		}
		list, ok := s.ix.inv[id]
		if !ok {
			continue
		}
		if !found || len(list) < len(bestList) {
			bestList = list
			found = true
		}
	}
	if !found {
		return false
	}
	// A huge inverted list (AND/OR appear in most predicates) buys nothing
	// over the prefix-sharing trie; scanning it flat would be slower than
	// the search it is meant to shortcut. Fall back to trie search then —
	// INV only wins when the keyword is selective, which is the paper's
	// premise for it.
	if len(bestList) > maxINVList {
		return false
	}
	// Scan in order of increasing length difference from the query: the
	// Proposition 1 lower bound then lets the whole remaining scan stop as
	// soon as both frontiers are out of range — the flat-list analogue of
	// BDB. Lists are kept length-sorted at insertion time.
	m := len(s.q)
	split := sort.Search(len(bestList), func(i int) bool { return len(bestList[i]) >= m })
	lo, hi := split-1, split
	scan := func(structIDs []tokenID) bool {
		lower := float64(len(structIDs) - m)
		if lower < 0 {
			lower = -lower
		}
		if lower*sqltoken.WeightLiteral >= s.threshold() {
			return false // this side is exhausted
		}
		s.st.InvScanned++
		d := s.flatDistance(structIDs, s.threshold())
		if d < s.threshold() {
			s.offer(d, structIDs)
		}
		return true
	}
	loAlive, hiAlive := lo >= 0, hi < len(bestList)
	for loAlive || hiAlive {
		// Advance the frontier closer in length to the query first.
		useHi := hiAlive
		if loAlive && hiAlive {
			useHi = len(bestList[hi])-m <= m-len(bestList[lo])
		}
		if useHi {
			if !scan(bestList[hi]) {
				hiAlive = false
			} else if hi++; hi >= len(bestList) {
				hiAlive = false
			}
		} else {
			if !scan(bestList[lo]) {
				loAlive = false
			} else if lo--; lo < 0 {
				loAlive = false
			}
		}
	}
	return true
}

// flatDistance computes the weighted edit distance between the query and one
// flat structure (the INV path), abandoning early once every cell of a row
// exceeds limit (the distance is then provably ≥ limit).
func (s *searcher) flatDistance(b []tokenID, limit float64) float64 {
	prev := make([]float64, len(b)+1)
	cur := make([]float64, len(b)+1)
	for j := 1; j <= len(b); j++ {
		prev[j] = prev[j-1] + s.w[b[j-1]]
	}
	for i := 1; i <= len(s.q); i++ {
		cur[0] = prev[0] + s.qw[i-1]
		rowMin := cur[0]
		for j := 1; j <= len(b); j++ {
			if s.q[i-1] == b[j-1] {
				cur[j] = prev[j-1]
			} else {
				del := prev[j] + s.qw[i-1]
				ins := cur[j-1] + s.w[b[j-1]]
				if del < ins {
					cur[j] = del
				} else {
					cur[j] = ins
				}
			}
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin >= limit {
			return rowMin // can only grow from here
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// heapEntry and resultHeap implement a small worst-first binary heap for
// top-k maintenance. Entries are totally ordered by (distance, partition
// rank, offer sequence) — distance ties resolve to the earliest-enumerated
// candidate, which is what makes serial and parallel search agree exactly.
type heapEntry struct {
	dist float64
	rank int32
	seq  uint64
	toks []tokenID
}

// worse reports whether e loses to o: strictly greater distance, or an
// equal distance with a later enumeration position.
func (e heapEntry) worse(o heapEntry) bool {
	if e.dist != o.dist {
		return e.dist > o.dist
	}
	if e.rank != o.rank {
		return e.rank > o.rank
	}
	return e.seq > o.seq
}

type resultHeap []heapEntry

func (h *resultHeap) push(e heapEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !(*h)[i].worse((*h)[p]) {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *resultHeap) popWorst() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l].worse((*h)[big]) {
			big = l
		}
		if r < n && (*h)[r].worse((*h)[big]) {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}
