// Batched n-best search (DESIGN.md §12). ASR n-best lists are near-
// duplicates of one another, so correcting them as independent searches
// repeats almost all the work. SearchBatch exploits the two redundancies:
// alternatives whose masked transcripts are identical share one memoized
// result, and distinct alternatives seed each other's pruning bound through
// the triangle inequality — a good bound found for alternative 1 prunes
// alternative 3 before its search begins, the batch analogue of the
// cross-partition shared bound inside one search.

package trieindex

import (
	"context"
	"math"
	"strings"

	"speakql/internal/metrics"
)

// batchSeedSlack pads a triangle-inequality seed against floating-point
// non-associativity: the search kernel and WeightedTokenEditDistance sum the
// same 1.0/1.1/1.2 weights in different orders, which can differ by a few
// ULPs. A slightly looser bound only prunes less — never incorrectly — so
// the pad preserves exactness.
const batchSeedSlack = 1e-9

// SearchBatch runs SearchTopKContext for every query of one n-best list on
// the index's shared searcher pool, returning per-query results and stats in
// input order. Results are bit-identical to len(queries) independent
// SearchTopKContext calls (TestSearchBatchMatchesSequential) but cheaper:
//
//   - Queries with identical token sequences are searched once; every
//     duplicate position returns the same shared slices.
//   - In the exact modes (no DAP, no INV) each search is seeded with the
//     tightest bound the triangle inequality yields from already-completed
//     alternatives: the true k-th best for query j is at most
//     b_i + D(q_i, q_j) for any completed i whose k-th-best distance is b_i,
//     because every structure within b_i of q_i is within b_i + D(q_i, q_j)
//     of q_j. Seeding the pruning bound with any upper bound on the k-th
//     best keeps results exact and tie-breaks intact (see PrefixSearcher's
//     argument for the d <= bound prune); under the approximate DAP/INV
//     modes seeding is skipped, exactly like PrefixSearcher.
//
// Cancellation follows SearchTopKContext: queries searched after ctx
// expires return nil, and a partially-searched query returns its best so
// far. Bounds from cancelled searches are never used as seeds.
func (ix *Index) SearchBatch(ctx context.Context, queries [][]string, k int, opts Options) ([][]Result, []Stats) {
	outs := make([][]Result, len(queries))
	stats := make([]Stats, len(queries))
	if len(queries) == 0 {
		return outs, stats
	}

	// Memoize by masked transcript: share holds each query's slot in the
	// unique-query tables.
	uniq := make([]int, 0, len(queries))
	share := make([]int, len(queries))
	keys := make(map[string]int, len(queries))
	var kb strings.Builder
	for qi, q := range queries {
		kb.Reset()
		for _, t := range q {
			kb.WriteString(t)
			kb.WriteByte('\n')
		}
		if ui, ok := keys[kb.String()]; ok {
			share[qi] = ui
			continue
		}
		keys[kb.String()] = len(uniq)
		share[qi] = len(uniq)
		uniq = append(uniq, qi)
	}

	exact := !opts.DAP && !opts.INV
	// A completed search's worst kept distance bounds the global k-th best
	// only when the heap was actually full (min(k, total) results).
	want := k
	if ix.total < want {
		want = ix.total
	}
	type seedSource struct {
		qi    int
		bound float64
	}
	sources := make([]seedSource, 0, len(uniq))
	uniqRes := make([][]Result, len(uniq))
	uniqSt := make([]Stats, len(uniq))
	for ui, qi := range uniq {
		seed := math.Inf(1)
		if exact {
			for _, src := range sources {
				var dij float64
				if opts.UniformWeights {
					dij = float64(metrics.TokenEditDistance(queries[src.qi], queries[qi]))
				} else {
					dij = metrics.WeightedTokenEditDistance(queries[src.qi], queries[qi])
				}
				if b := src.bound + dij + batchSeedSlack; b < seed {
					seed = b
				}
			}
		}
		if k <= 0 || ix.total == 0 || ctx.Err() != nil {
			continue // match SearchTopKContext: nil results, zero stats
		}
		s := ix.getSearcher(queries[qi], k, opts, &uniqSt[ui])
		rs, st := ix.runSearcher(ctx, s, seed)
		uniqRes[ui], uniqSt[ui] = rs, st
		if exact && ctx.Err() == nil && len(rs) >= want && len(rs) > 0 {
			sources = append(sources, seedSource{qi: qi, bound: rs[len(rs)-1].Distance})
		}
	}

	for qi := range queries {
		outs[qi] = uniqRes[share[qi]]
		stats[qi] = uniqSt[share[qi]]
	}
	return outs, stats
}
