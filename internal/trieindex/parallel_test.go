package trieindex

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"speakql/internal/grammar"
)

// maskedQueries generates a mix of exact structures, perturbed structures,
// and noisy token streams, exercising ties, long/short queries, and unknown
// tokens.
func maskedQueries(ix *Index, n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	var corpus [][]string
	ix.forEachStructure(func(path []tokenID) {
		toks := make([]string, len(path))
		for i, id := range path {
			toks[i] = ix.in.str(id)
		}
		corpus = append(corpus, toks)
	})
	vocab := []string{"SELECT", "FROM", "WHERE", "x", "AND", "=", "(", ")", "COUNT", "zzz"}
	qs := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		base := append([]string(nil), corpus[rng.Intn(len(corpus))]...)
		switch i % 3 {
		case 0: // exact structure: many zero-distance ties possible
		case 1: // perturbed: delete one token, insert one
			if len(base) > 1 {
				j := rng.Intn(len(base))
				base = append(base[:j], base[j+1:]...)
			}
			j := rng.Intn(len(base) + 1)
			base = append(base[:j], append([]string{vocab[rng.Intn(len(vocab))]}, base[j:]...)...)
		default: // noisy stream
			ln := 3 + rng.Intn(12)
			base = base[:0]
			for j := 0; j < ln; j++ {
				base = append(base, vocab[rng.Intn(len(vocab))])
			}
		}
		qs = append(qs, base)
	}
	return qs
}

// TestParallelMatchesSerial is the differential determinism test: for every
// query and several k values, the parallel search must return byte-identical
// results — same structures, same distances, same order — as the serial
// search, for every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	queries := maskedQueries(ix, 60, 7)
	for _, workers := range []int{2, 3, 8} {
		for _, k := range []int{1, 3, 10} {
			for qi, q := range queries {
				serial, _ := ix.SearchTopK(q, k, Options{})
				par, _ := ix.SearchTopK(q, k, Options{Workers: workers})
				if len(serial) != len(par) {
					t.Fatalf("workers=%d k=%d q#%d %v: serial %d results, parallel %d",
						workers, k, qi, q, len(serial), len(par))
				}
				for i := range serial {
					if serial[i].Distance != par[i].Distance ||
						strings.Join(serial[i].Tokens, " ") != strings.Join(par[i].Tokens, " ") {
						t.Fatalf("workers=%d k=%d q#%d %v: result %d differs:\n serial  %v (%v)\n parallel %v (%v)",
							workers, k, qi, q, i,
							serial[i].Tokens, serial[i].Distance,
							par[i].Tokens, par[i].Distance)
					}
				}
			}
		}
	}
}

// Repeated parallel runs of the same query must agree with each other (no
// scheduling-dependent output), including under the DAP and uniform-weight
// option variants.
func TestParallelRepeatable(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x x x = x AND x > x")
	for _, opts := range []Options{
		{Workers: 4},
		{Workers: 4, DAP: true},
		{Workers: 4, UniformWeights: true},
	} {
		first, _ := ix.SearchTopK(q, 5, opts)
		for run := 0; run < 20; run++ {
			again, _ := ix.SearchTopK(q, 5, opts)
			if len(again) != len(first) {
				t.Fatalf("opts %+v run %d: %d results vs %d", opts, run, len(again), len(first))
			}
			for i := range first {
				if first[i].Distance != again[i].Distance ||
					strings.Join(first[i].Tokens, " ") != strings.Join(again[i].Tokens, " ") {
					t.Fatalf("opts %+v run %d: result %d drifted", opts, run, i)
				}
			}
		}
	}
}

// Parallel DAP must match serial DAP: the approximation is defined per
// partition, so partition-level parallelism cannot change which branches it
// keeps.
func TestParallelDAPMatchesSerial(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	for _, q := range maskedQueries(ix, 30, 11) {
		serial, _ := ix.SearchTopK(q, 3, Options{DAP: true})
		par, _ := ix.SearchTopK(q, 3, Options{DAP: true, Workers: 4})
		for i := range serial {
			if i >= len(par) || serial[i].Distance != par[i].Distance ||
				strings.Join(serial[i].Tokens, " ") != strings.Join(par[i].Tokens, " ") {
				t.Fatalf("DAP diverged on %v at %d: serial %v parallel %v", q, i, serial, par)
			}
		}
	}
}

func TestSearchContextAlreadyCancelled(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	for _, workers := range []int{0, 4} {
		rs, st := ix.SearchTopKContext(ctx, strings.Fields("SELECT x FROM x"), 3, Options{Workers: workers})
		if len(rs) != 0 {
			t.Errorf("workers=%d: cancelled search returned %d results", workers, len(rs))
		}
		if st.TriesSearched != 0 {
			t.Errorf("workers=%d: cancelled search searched %d tries", workers, st.TriesSearched)
		}
	}
	// No worker goroutine may outlive the call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines grew from %d to %d after cancelled searches", before, n)
	}
}

func TestSearchContextDeadline(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	// An already-expired deadline behaves like cancellation: prompt return,
	// partial (here: empty) results, valid stats.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	t0 := time.Now()
	rs, _ := ix.SearchTopKContext(ctx, strings.Fields("SELECT x FROM x WHERE x = x"), 2, Options{Workers: 4})
	if el := time.Since(t0); el > time.Second {
		t.Errorf("expired-deadline search took %v", el)
	}
	if len(rs) != 0 {
		t.Errorf("expired-deadline search returned results: %v", rs)
	}
}

func TestSharedBoundRelax(t *testing.T) {
	b := newSharedBound()
	if !math.IsInf(b.load(), 1) {
		t.Fatalf("initial bound = %v", b.load())
	}
	b.relax(3.5)
	b.relax(7.0) // looser: ignored
	if b.load() != 3.5 {
		t.Errorf("bound = %v, want 3.5", b.load())
	}
	b.relax(1.2)
	if b.load() != 1.2 {
		t.Errorf("bound = %v, want 1.2", b.load())
	}
}

// Regression: popWorst must restore the heap property all the way down,
// not just at the root. The broken sift-down left heap[0] smaller than a
// deeper entry, which over-tightened the pruning threshold (and, via the
// shared bound, poisoned every concurrent partition's pruning).
func TestResultHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		var h resultHeap
		k := 1 + rng.Intn(8)
		var kept []float64
		for i := 0; i < 50; i++ {
			d := float64(rng.Intn(20))
			if len(h) == k {
				if d >= h[0].dist {
					continue
				}
				h.popWorst()
			}
			h.push(heapEntry{dist: d, seq: uint64(i)})
			// Invariant: h[0] is the worst entry.
			for _, e := range h {
				if e.worse(h[0]) {
					t.Fatalf("trial %d: heap[0]=%v not worst (found %v)", trial, h[0].dist, e.dist)
				}
			}
		}
		for _, e := range h {
			kept = append(kept, e.dist)
		}
		_ = kept
	}
}

// Parallel search with more workers than partitions must clamp and still
// return correct results.
func TestParallelMoreWorkersThanPartitions(t *testing.T) {
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Insert(strings.Fields("SELECT * FROM x"))
	rs, _ := ix.SearchTopK(strings.Fields("SELECT x FROM x"), 2, Options{Workers: 16})
	if len(rs) != 2 || rs[0].Distance != 0 {
		t.Fatalf("results = %v", rs)
	}
	if got := strings.Join(rs[0].Tokens, " "); got != "SELECT x FROM x" {
		t.Errorf("best = %q", got)
	}
}
