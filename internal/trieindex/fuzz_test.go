package trieindex

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// smallIndexBytes serializes a tiny index in both persist formats for seeds
// and mutation bases.
func smallIndexBytes(t testing.TB) (v2, v1 []byte) {
	t.Helper()
	ix := NewIndex(8, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Insert(strings.Fields("SELECT x FROM x WHERE x = x"))
	ix.Insert(strings.Fields("SELECT MAX ( x ) FROM x"))
	var b2, b1 bytes.Buffer
	if err := ix.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if err := ix.saveV1(&b1); err != nil {
		t.Fatal(err)
	}
	return b2.Bytes(), b1.Bytes()
}

// uv renders a uvarint (hand-building hostile headers).
func uv(v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return buf[:binary.PutUvarint(buf[:], v)]
}

// TestReadIndexRejectsHostileInput hand-crafts the header lies a forged or
// corrupted index file can tell: counts that would size multi-gigabyte
// allocations from a few bytes of input, structure lengths past the trie
// table, token ids past the dictionary, child ranges that do not tile the
// arena. Every one must error after bounded work — never panic, never
// allocate in proportion to the lie.
func TestReadIndexRejectsHostileInput(t *testing.T) {
	v2, v1 := smallIndexBytes(t)

	head := func(parts ...[]byte) []byte {
		out := []byte(persistMagic)
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	// A minimal valid prefix: v2, maxLen 8, dict ["a"], total 1, 1 trie.
	dictA := append(uv(1), append(uv(1), 'a')...)

	cases := map[string][]byte{
		"empty":       {},
		"magic only":  []byte(persistMagic),
		"bad version": head(uv(99)),
		// maxLen 2^40: would size the trie table without this byte costing
		// anything near that.
		"huge maxLen": head(uv(2), uv(1<<40)),
		"zero maxLen": head(uv(2), uv(0)),
		// 2^40 dictionary entries with no strings behind them.
		"huge dict": head(uv(2), uv(8), uv(1<<40)),
		// More tokens than tokenID can number (silent uint16 wrap).
		"dict wraps tokenID": head(uv(2), uv(8), uv(1<<17)),
		// Arena claiming 2^30 nodes backed by nothing.
		"huge arena": head(uv(2), uv(8), dictA, uv(1), uv(1), uv(3), uv(1), uv(1<<30)),
		// Structure count exceeding the node count.
		"count > nodes": head(uv(2), uv(8), dictA, uv(1), uv(1), uv(3), uv(9), uv(2)),
		// Child count larger than the arena (would wrap int32 if unchecked).
		"child count wraps": head(uv(2), uv(8), dictA, uv(1), uv(1), uv(3), uv(1), uv(2), uv(1<<33)),
		// Trie length outside [1, maxLen].
		"trie length range": head(uv(2), uv(8), dictA, uv(1), uv(1), uv(99), uv(1), uv(2)),
		// Token id past the dictionary.
		"token id range": head(uv(2), uv(8), dictA, uv(1), uv(1), uv(2),
			uv(1), uv(2), uv(1), uv(0), uv(7)),
		// v1 structure longer than maxLen: would index past the trie table
		// on Insert if unchecked.
		"v1 structure too long": head(uv(1), uv(4), dictA, uv(1), uv(9)),
		"v1 zero-length":        head(uv(1), uv(4), dictA, uv(1), uv(0)),
	}
	for i := 1; i < len(v2); i += 11 {
		cases["v2 truncated@"+string(rune('a'+i%26))] = v2[:i]
	}
	for i := 1; i < len(v1); i += 11 {
		cases["v1 truncated@"+string(rune('a'+i%26))] = v1[:i]
	}
	for name, data := range cases {
		for _, keepINV := range []bool{false, true} {
			if _, err := ReadIndex(bytes.NewReader(data), keepINV); err == nil {
				t.Errorf("%s (keepINV=%v): hostile input accepted", name, keepINV)
			}
		}
	}
}

// FuzzReadIndex asserts ReadIndex never panics and never over-allocates on
// arbitrary input, for both format versions and both keepINV settings, and
// that anything accepted is a frozen index whose arenas tile correctly
// (re-saving it must succeed and round-trip).
func FuzzReadIndex(f *testing.F) {
	v2, v1 := smallIndexBytes(f)
	f.Add(v2)
	f.Add(v1)
	f.Add([]byte(persistMagic))
	f.Add(v2[:len(v2)/2])
	f.Add(v1[:len(v1)/2])
	// A couple of single-byte mutants to seed the header paths.
	for _, i := range []int{7, 9, len(v2) - 1} {
		m := append([]byte(nil), v2...)
		m[i] ^= 0xff
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, keepINV := range []bool{false, true} {
			ix, err := ReadIndex(bytes.NewReader(data), keepINV)
			if err != nil {
				continue
			}
			if !ix.Frozen() {
				t.Fatal("accepted index not frozen")
			}
			var buf bytes.Buffer
			if err := ix.Save(&buf); err != nil {
				t.Fatalf("accepted index cannot re-save: %v", err)
			}
			back, err := ReadIndex(bytes.NewReader(buf.Bytes()), keepINV)
			if err != nil {
				t.Fatalf("re-saved index rejected: %v", err)
			}
			if back.Total() != ix.Total() {
				t.Fatalf("re-save changed totals: %d vs %d", back.Total(), ix.Total())
			}
		}
	})
}
