// Arena-flattened tries. The pointer trie built by Insert is a build-time
// structure: 2.7M separately-allocated nodes at default scale, each child
// visit a pointer chase into a cold cache line, and the whole graph a
// standing GC workload. Freeze compacts each per-length trie into a
// struct-of-arrays arena — token, leaf flag, and a [firstChild, childCount)
// index range per node, all in four contiguous slices — which the DP search
// kernel then walks by index. Children are laid out breadth-first, so each
// node's children are contiguous and keep the pointer trie's sorted order;
// depth-first traversal order (and with it result enumeration order and
// every Stats counter) is bit-identical to the pointer walk.
package trieindex

// flatTrie is one per-length trie in arena form. Node 0 is the root (its
// tok and leaf entries are unused); node i's children are the index range
// [first[i], first[i]+num[i]) of the same arrays, sorted by token id.
type flatTrie struct {
	tok   []tokenID
	leaf  []bool
	first []int32
	num   []int32
}

// flatten compacts a pointer trie into its arena form with a breadth-first
// layout: children are appended to the arrays in the order their parents
// are processed, which makes every child range contiguous and first[] a
// running prefix sum of num[].
func flatten(root *node) *flatTrie {
	n := 1 + countNodes(root)
	ft := &flatTrie{
		tok:   make([]tokenID, n),
		leaf:  make([]bool, n),
		first: make([]int32, n),
		num:   make([]int32, n),
	}
	queue := make([]*node, 1, n)
	queue[0] = root
	next := int32(1)
	for i := 0; i < len(queue); i++ {
		nd := queue[i]
		ft.tok[i] = nd.tok
		ft.leaf[i] = nd.leaf
		ft.first[i] = next
		ft.num[i] = int32(len(nd.children))
		next += int32(len(nd.children))
		queue = append(queue, nd.children...)
	}
	return ft
}

// thaw rebuilds the pointer trie from an arena, so Insert keeps working on
// an index that has already been frozen (the arena is dropped and rebuilt
// by the next Freeze). All nodes come from one backing slice; child order
// is preserved, so re-freezing reproduces the identical arena.
func thaw(ft *flatTrie) *node {
	nodes := make([]node, len(ft.tok))
	for i := range nodes {
		nodes[i].tok = ft.tok[i]
		nodes[i].leaf = ft.leaf[i]
		if ft.num[i] > 0 {
			ch := make([]*node, ft.num[i])
			for j := range ch {
				ch[j] = &nodes[ft.first[i]+int32(j)]
			}
			nodes[i].children = ch
		}
	}
	return &nodes[0]
}

// walkLeaves calls fn with the root→leaf path of every structure in the
// arena, in the same depth-first order as the pointer walk. The path slice
// is reused between calls; fn must copy it to retain it.
func (ft *flatTrie) walkLeaves(path *[]tokenID, fn func(path []tokenID)) {
	ft.walkFrom(0, path, fn)
}

func (ft *flatTrie) walkFrom(ni int32, path *[]tokenID, fn func(path []tokenID)) {
	for ci := ft.first[ni]; ci < ft.first[ni]+ft.num[ni]; ci++ {
		*path = append(*path, ft.tok[ci])
		if ft.leaf[ci] {
			fn(*path)
		}
		ft.walkFrom(ci, path, fn)
		*path = (*path)[:len(*path)-1]
	}
}

func walkPointer(n *node, path *[]tokenID, fn func(path []tokenID)) {
	for _, c := range n.children {
		*path = append(*path, c.tok)
		if c.leaf {
			fn(*path)
		}
		walkPointer(c, path, fn)
		*path = (*path)[:len(*path)-1]
	}
}

// forEachStructure enumerates every indexed structure in trie-walk order
// (increasing length, then depth-first within each trie), whether or not
// the index is frozen. The callback's slice is scratch; copy to retain.
func (ix *Index) forEachStructure(fn func(path []tokenID)) {
	path := make([]tokenID, 0, ix.maxLen)
	for _, tr := range ix.tries {
		if tr == nil {
			continue
		}
		if tr.flat != nil {
			tr.flat.walkLeaves(&path, fn)
			continue
		}
		walkPointer(tr.root, &path, fn)
	}
}

// --- arena DP kernel ---
//
// The arena kernel is the frozen-index counterpart of descend/visit/step.
// It differs in two ways only: nodes are visited by index range instead of
// pointer chase, and every DP column comes from the searcher's per-depth
// column pool instead of a fresh heap allocation — zero steady-state
// allocations per query (pinned by TestSearchKernelSteadyStateAllocs).
// Traversal order, pruning decisions, offers, and Stats counters are
// bit-identical to the pointer kernel's.

// descendFlat explores node ni's children. col is the DP column at ni
// (always s.cols[depth]); each child's column is advanced into the pooled
// buffer for depth+1, which siblings overwrite in turn.
func (s *searcher) descendFlat(ft *flatTrie, ni int32, col []float64, depth int) {
	first, cnt := ft.first[ni], ft.num[ni]
	if !s.opts.DAP || cnt < 2 {
		for ci := first; ci < first+cnt; ci++ {
			child := s.column(depth + 1)
			s.stepInto(col, child, ft.tok[ci])
			s.visitFlat(ft, ci, child, depth+1)
		}
		return
	}
	// DAP runs two passes so prime-group columns never need to outlive the
	// child loop: pass 1 scores every prime child's column into one scratch
	// buffer (only its last cell matters for the winner choice) while
	// exploring non-prime children in place; pass 2 recomputes the winners'
	// columns into the depth buffer and explores them, in group order —
	// the pointer kernel's exact visit order.
	bestChild := [3]int32{-1, -1, -1}
	var bestLast [3]float64
	for ci := first; ci < first+cnt; ci++ {
		tok := ft.tok[ci]
		if g := s.ix.prime[tok]; g >= 0 {
			scratch := s.dapColumn()
			s.stepInto(col, scratch, tok)
			if l := scratch[len(scratch)-1]; bestChild[g] < 0 || l < bestLast[g] {
				bestChild[g], bestLast[g] = ci, l
			}
			continue
		}
		child := s.column(depth + 1)
		s.stepInto(col, child, tok)
		s.visitFlat(ft, ci, child, depth+1)
	}
	for g := range bestChild {
		if ci := bestChild[g]; ci >= 0 {
			child := s.column(depth + 1)
			s.stepInto(col, child, ft.tok[ci])
			s.visitFlat(ft, ci, child, depth+1)
		}
	}
}

func (s *searcher) visitFlat(ft *flatTrie, ci int32, col []float64, depth int) {
	s.st.NodesVisited++
	s.path = append(s.path, ft.tok[ci])
	if ft.leaf[ci] {
		if d := col[len(col)-1]; s.viable(d) {
			s.offer(d, s.path)
		}
	}
	// Min-column pruning: every descendant's distance is ≥ min(col).
	if s.viable(minOf(col)) {
		s.descendFlat(ft, ci, col, depth)
	}
	s.path = s.path[:len(s.path)-1]
}
