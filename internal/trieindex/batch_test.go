package trieindex

import (
	"context"
	"strings"
	"testing"

	"speakql/internal/grammar"
)

// batchQueries builds an n-best-like batch: random masked queries with
// verbatim duplicates injected at scattered positions, the shape ASR n-best
// lists take in practice.
func batchQueries(ix *Index, n int, seed int64) [][]string {
	qs := maskedQueries(ix, n, seed)
	for i := 2; i < len(qs); i += 3 {
		qs[i] = qs[i-2] // duplicate an earlier hypothesis verbatim
	}
	return qs
}

// TestSearchBatchMatchesSequential is the batched-search differential test:
// for every option variant — exact serial, parallel workers, BDB off,
// uniform weights, and the approximate DAP/INV modes — SearchBatch must
// return exactly what n independent SearchTopK calls return, per position:
// same structures, same distances, same order. This pins both the
// triangle-inequality seeding (it may prune harder, never differently) and
// the duplicate memoization.
func TestSearchBatchMatchesSequential(t *testing.T) {
	exact := buildIndex(t, grammar.TestScale(), false)
	withINV := buildIndex(t, grammar.TestScale(), true)
	cases := []struct {
		name string
		ix   *Index
		opts Options
	}{
		{"exact", exact, Options{}},
		{"workers4", exact, Options{Workers: 4}},
		{"nobdb", exact, Options{DisableBDB: true}},
		{"uniform", exact, Options{UniformWeights: true}},
		{"dap", exact, Options{DAP: true}},
		{"inv", withINV, Options{INV: true}},
	}
	for _, tc := range cases {
		queries := batchQueries(tc.ix, 24, 13)
		for _, k := range []int{1, 3, 10} {
			outs, stats := tc.ix.SearchBatch(context.Background(), queries, k, tc.opts)
			if len(outs) != len(queries) || len(stats) != len(queries) {
				t.Fatalf("%s k=%d: got %d results / %d stats for %d queries",
					tc.name, k, len(outs), len(stats), len(queries))
			}
			for qi, q := range queries {
				want, _ := tc.ix.SearchTopK(q, k, tc.opts)
				got := outs[qi]
				if len(got) != len(want) {
					t.Fatalf("%s k=%d q#%d %v: batch %d results, sequential %d",
						tc.name, k, qi, q, len(got), len(want))
				}
				for i := range want {
					if got[i].Distance != want[i].Distance ||
						strings.Join(got[i].Tokens, " ") != strings.Join(want[i].Tokens, " ") {
						t.Fatalf("%s k=%d q#%d %v: result %d differs:\n batch      %v (%v)\n sequential %v (%v)",
							tc.name, k, qi, q, i,
							got[i].Tokens, got[i].Distance,
							want[i].Tokens, want[i].Distance)
					}
				}
			}
		}
	}
}

// TestSearchBatchSharesDuplicates checks the memoization contract:
// positions holding identical queries return the very same result slice,
// not merely equal copies.
func TestSearchBatchSharesDuplicates(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	q := strings.Fields("SELECT x FROM x WHERE x = x")
	queries := [][]string{q, strings.Fields("SELECT x FROM x"), q, q}
	outs, _ := ix.SearchBatch(context.Background(), queries, 3, Options{})
	if len(outs[0]) == 0 {
		t.Fatal("no results for an exact structure")
	}
	for _, dup := range []int{2, 3} {
		if &outs[dup][0] != &outs[0][0] {
			t.Fatalf("duplicate position %d did not share position 0's result slice", dup)
		}
	}
}

// TestSearchBatchEdgeCases covers the empty batch and pre-cancelled
// context, which must mirror SearchTopKContext's contract (nil results).
func TestSearchBatchEdgeCases(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	outs, stats := ix.SearchBatch(context.Background(), nil, 3, Options{})
	if len(outs) != 0 || len(stats) != 0 {
		t.Fatalf("empty batch returned %d/%d", len(outs), len(stats))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := batchQueries(ix, 6, 5)
	outs, _ = ix.SearchBatch(ctx, queries, 3, Options{})
	for qi, rs := range outs {
		if rs != nil {
			t.Fatalf("cancelled batch returned results at position %d", qi)
		}
	}
}
