// Parallel trie search: the length partitions of Box 2 are independent
// except for the best-distance bound that BDB pruning feeds on, so they fan
// out over a bounded worker pool that shares the bound through one atomic.
// Determinism is preserved end to end — see searchParallel.
package trieindex

import (
	"context"
	"math"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// sharedBound is the cross-partition pruning bound: the minimum over all
// workers of their local k-th-best distance, which is always an upper bound
// on the global k-th-best. It only tightens, so publishing it can never
// prune a true top-k candidate.
type sharedBound struct{ bits atomic.Uint64 }

func newSharedBound() *sharedBound {
	b := &sharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *sharedBound) load() float64 { return math.Float64frombits(b.bits.Load()) }

// relax lowers the bound to d if d is smaller. Distances are non-negative,
// but float ordering is not bit ordering, so this is a compare-and-swap
// loop on the decoded value rather than an atomic min on the bits.
func (b *sharedBound) relax(d float64) {
	for {
		cur := b.bits.Load()
		if math.Float64frombits(cur) <= d {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(d)) {
			return
		}
	}
}

// searchParallel fans the partition order out over opts.Workers goroutines.
// Workers claim partitions from an atomic cursor, so the closest-length
// partitions (which tighten the bound fastest) start first, mirroring the
// serial schedule.
//
// Results are bit-identical to serial search. Each worker keeps a local
// top-k heap ordered by (distance, partition rank, offer sequence) — the
// global enumeration order — and prunes against the shared bound with <=
// rather than <, so an equal-distance candidate in a concurrently searched
// partition survives to the merge, where enumeration rank settles the tie
// exactly as a serial pass would have. The union of local top-k sets always
// contains the global top-k, and the final sort-and-truncate under the same
// total order selects it regardless of scheduling.
//
// ctx is checked before each partition claim; cancellation returns the best
// results found so far after all workers drain (no goroutine outlives the
// call).
//
// seed pre-tightens the shared bound before any worker starts (math.Inf(1)
// means unseeded). Any sound upper bound on the global k-th-best distance is
// admissible: the bound mechanism already prunes with <= against exactly such
// bounds, so seeding changes which subtrees are explored but never which
// results come back.
func (ix *Index) searchParallel(ctx context.Context, q []tokenID, qw []float64, k int, opts Options, order []int, seed float64) ([]Result, Stats) {
	workers := opts.Workers
	if workers > len(order) {
		workers = len(order)
	}
	shared := newSharedBound()
	if !math.IsInf(seed, 1) {
		shared.relax(seed)
	}
	searchers := make([]*searcher, workers)
	stats := make([]Stats, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		s := ix.newPooledSearcher(k, opts, &stats[w])
		s.adoptQuery(q, qw)
		s.shared = shared
		searchers[w] = s
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The pprof label attributes every worker sample to the search
			// stage, so mixed-stage profiles split cleanly per kernel.
			pprof.Do(ctx, pprof.Labels("speakql.stage", "structure_search_worker"), func(ctx context.Context) {
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(order) || ctx.Err() != nil {
						return
					}
					s.rank = int32(i)
					s.searchLen(order[i])
				}
			})
		}()
	}
	wg.Wait()

	var st Stats
	var all []heapEntry
	for w := 0; w < workers; w++ {
		st.add(stats[w])
		all = append(all, searchers[w].heap...)
	}
	sort.Slice(all, func(i, j int) bool { return all[j].worse(all[i]) })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Result, len(all))
	for i, e := range all {
		out[i] = Result{Tokens: ix.stringsOf(e.toks), Distance: e.dist}
	}
	// Results are materialized to strings above, so the workers' token
	// buffers are safe to recycle now — not before.
	for _, s := range searchers {
		ix.putSearcher(s)
	}
	return out, st
}
