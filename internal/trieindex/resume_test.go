package trieindex

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"speakql/internal/grammar"
)

// sameResults fails the test unless a and b are identical result lists —
// same structures, same distances, same order.
func sameResults(t *testing.T, label string, a, b []Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d\n a: %v\n b: %v", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i].Distance != b[i].Distance ||
			strings.Join(a[i].Tokens, " ") != strings.Join(b[i].Tokens, " ") {
			t.Fatalf("%s: result %d differs:\n a: %v (%v)\n b: %v (%v)",
				label, i, a[i].Tokens, a[i].Distance, b[i].Tokens, b[i].Distance)
		}
	}
}

// splitFragments cuts q into 1–4 random contiguous fragments.
func splitFragments(rng *rand.Rand, q []string) [][]string {
	if len(q) == 0 {
		return [][]string{q}
	}
	cuts := rng.Intn(4)
	points := map[int]bool{}
	for i := 0; i < cuts; i++ {
		points[1+rng.Intn(len(q))] = true
	}
	var frags [][]string
	start := 0
	for i := 1; i <= len(q); i++ {
		if points[i] || i == len(q) {
			frags = append(frags, q[start:i])
			start = i
		}
	}
	return frags
}

// TestPrefixSearcherMatchesScratch is the resumability differential test:
// feeding a query to a PrefixSearcher fragment by fragment must return, at
// every prefix, byte-identical results to a from-scratch SearchTopK on that
// prefix — across k values, worker counts, and the uniform-weights ablation.
func TestPrefixSearcherMatchesScratch(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	queries := maskedQueries(ix, 40, 19)
	rng := rand.New(rand.NewSource(23))
	for _, opts := range []Options{
		{},
		{Workers: 4},
		{UniformWeights: true},
		{DisableBDB: true},
	} {
		for _, k := range []int{1, 3, 10} {
			ps := ix.NewPrefixSearcher(k, opts)
			for qi, q := range queries {
				ps.Reset()
				var prefix []string
				for _, frag := range splitFragments(rng, q) {
					prefix = append(prefix, frag...)
					ps.Extend(frag)
					got, _ := ps.Search()
					want, _ := ix.SearchTopK(prefix, k, opts)
					sameResults(t, "opts "+optsLabel(opts)+" k="+itoa(k)+" q#"+itoa(qi), got, want)
				}
			}
		}
	}
}

// TestPrefixSearcherApproxModesFallBack checks the DAP/INV fallback: the
// approximate modes must run unseeded (seedBound +Inf) and still match the
// plain search exactly.
func TestPrefixSearcherApproxModesFallBack(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), true)
	for _, opts := range []Options{{DAP: true}, {INV: true}} {
		ps := ix.NewPrefixSearcher(3, opts)
		for _, q := range maskedQueries(ix, 15, 31) {
			ps.Reset()
			var prefix []string
			for _, tok := range q {
				prefix = append(prefix, tok)
				ps.Extend([]string{tok})
				if !math.IsInf(ps.seedBound(), 1) {
					t.Fatalf("opts %+v: approximate mode produced a finite seed bound", opts)
				}
				got, _ := ps.Search()
				want, _ := ix.SearchTopK(prefix, 3, opts)
				sameResults(t, "approx", got, want)
			}
		}
	}
}

// TestPrefixSearcherCancelKeepsCheckpoints: a cancelled search must not
// corrupt the checkpoints — the next successful search still matches a
// from-scratch run.
func TestPrefixSearcherCancelKeepsCheckpoints(t *testing.T) {
	ix := buildIndex(t, grammar.TestScale(), false)
	ps := ix.NewPrefixSearcher(3, Options{})
	ps.Extend(strings.Fields("SELECT x FROM x"))
	ps.Search()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps.Extend(strings.Fields("WHERE x = x"))
	if rs, _ := ps.SearchContext(ctx); len(rs) != 0 {
		t.Fatalf("cancelled search returned %d results", len(rs))
	}
	got, _ := ps.Search()
	want, _ := ix.SearchTopK(strings.Fields("SELECT x FROM x WHERE x = x"), 3, Options{})
	sameResults(t, "after cancel", got, want)
}

// TestPrefixSearcherTinyIndex exercises the pool-smaller-than-k edge: with
// fewer structures than k the pool can still seed (it holds every
// structure), and results must match scratch.
func TestPrefixSearcherTinyIndex(t *testing.T) {
	ix := NewIndex(10, false)
	ix.Insert(strings.Fields("SELECT x FROM x"))
	ix.Insert(strings.Fields("SELECT * FROM x"))
	ix.Freeze()
	ps := ix.NewPrefixSearcher(5, Options{})
	var prefix []string
	for _, tok := range strings.Fields("SELECT x FROM x") {
		prefix = append(prefix, tok)
		ps.Extend([]string{tok})
		got, _ := ps.Search()
		want, _ := ix.SearchTopK(prefix, 5, Options{})
		sameResults(t, "tiny", got, want)
	}
}

func optsLabel(o Options) string {
	var parts []string
	if o.Workers > 1 {
		parts = append(parts, "workers")
	}
	if o.UniformWeights {
		parts = append(parts, "uniform")
	}
	if o.DisableBDB {
		parts = append(parts, "nobdb")
	}
	if len(parts) == 0 {
		return "exact"
	}
	return strings.Join(parts, "+")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
