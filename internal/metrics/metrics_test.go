package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestTokenEditDistance(t *testing.T) {
	cases := []struct {
		ref, hyp string
		want     int
	}{
		{"SELECT x FROM y", "SELECT x FROM y", 0},
		{"SELECT x FROM y", "SELECT x FROM", 1},
		{"SELECT x FROM y", "SELECT x FROM y z", 1},
		{"SELECT x FROM y", "SELECT q FROM y", 2}, // substitution = delete+insert
		{"a b c", "", 3},
		{"", "a b c", 3},
		{"", "", 0},
		{"a b c d", "d c b a", 6}, // LCS length 1
	}
	for _, c := range cases {
		if got := TokenEditDistance(toks(c.ref), toks(c.hyp)); got != c.want {
			t.Errorf("TED(%q,%q) = %d, want %d", c.ref, c.hyp, got, c.want)
		}
	}
}

func TestTEDSymmetric(t *testing.T) {
	f := func(a, b []string) bool {
		return TokenEditDistance(a, b) == TokenEditDistance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTEDTriangleBounds(t *testing.T) {
	// TED(a,b) is between |len(a)-len(b)| and len(a)+len(b), and has the
	// same parity as len(a)+len(b).
	f := func(a, b []string) bool {
		d := TokenEditDistance(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		if d < lo || d > len(a)+len(b) {
			return false
		}
		return (d-lo)%2 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedTokenEditDistance(t *testing.T) {
	// Deleting a Keyword costs 1.2, a SplChar 1.1, a Literal 1.0.
	if got := WeightedTokenEditDistance(toks("SELECT x"), toks("x")); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("keyword delete = %v, want 1.2", got)
	}
	if got := WeightedTokenEditDistance(toks("= x"), toks("x")); math.Abs(got-1.1) > 1e-9 {
		t.Errorf("splchar delete = %v, want 1.1", got)
	}
	if got := WeightedTokenEditDistance(toks("y x"), toks("x")); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("literal delete = %v, want 1.0", got)
	}
	if got := WeightedTokenEditDistance(toks("a b"), toks("a b")); got != 0 {
		t.Errorf("identical = %v, want 0", got)
	}
}

// Reproduces the dynamic-programming memo of Figure 9: distance between
// "SELECT * FROM x" and "SELECT x x FROM x" is 3.1 (delete *, cost 1.1, and
// insert two literals... per the memo the bottom-right cell is 3.1).
func TestFigure9Memo(t *testing.T) {
	a := toks("SELECT x x FROM x") // MaskOut (rows of the memo)
	b := toks("SELECT * FROM x")   // GrndTrth (columns)
	got := WeightedTokenEditDistance(a, b)
	if math.Abs(got-3.1) > 1e-9 {
		t.Errorf("Figure 9 memo corner = %v, want 3.1", got)
	}
}

func TestProposition1Bounds(t *testing.T) {
	// |m−n|·WL ≤ d ≤ (m+n)·WK for all pairs of structure strings.
	vocab := []string{"SELECT", "FROM", "WHERE", "(", ")", "=", ",", "x", "AND", "OR"}
	f := func(ai, bi []uint8) bool {
		a := make([]string, len(ai))
		for i, v := range ai {
			a[i] = vocab[int(v)%len(vocab)]
		}
		b := make([]string, len(bi))
		for i, v := range bi {
			b[i] = vocab[int(v)%len(vocab)]
		}
		d := WeightedTokenEditDistance(a, b)
		lo := float64(len(a) - len(b))
		if lo < 0 {
			lo = -lo
		}
		lo *= 1.0 // WL
		hi := float64(len(a)+len(b)) * 1.2
		return d >= lo-1e-9 && d <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"EMPLYS", "EMPLYRS", 1},
		{"FRMTT", "TTT", 3},
		{"FRNTTT", "FRMTT", 2},
		{"TT", "TTT", 1},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := CharEditDistance(c.a, c.b); got != c.want {
			t.Errorf("CharEditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareExact(t *testing.T) {
	q := toks("SELECT Salary FROM Employees WHERE Name = Jon")
	r := Compare(q, q)
	for name, v := range map[string]float64{
		"KPR": r.KPR, "SPR": r.SPR, "LPR": r.LPR, "WPR": r.WPR,
		"KRR": r.KRR, "SRR": r.SRR, "LRR": r.LRR, "WRR": r.WRR,
	} {
		if v != 1 {
			t.Errorf("%s = %v, want 1 on identical queries", name, v)
		}
	}
}

func TestCompareRunningExample(t *testing.T) {
	ref := toks("SELECT Salary FROM Employees WHERE Name = Jon")
	hyp := toks("select sales from employers wear name equals Jon")
	r := Compare(ref, hyp)
	// Hypothesis kept SELECT and FROM (2 of 3 ref keywords recalled; WHERE
	// heard as "wear").
	if math.Abs(r.KRR-2.0/3.0) > 1e-9 {
		t.Errorf("KRR = %v, want 2/3", r.KRR)
	}
	// No splchar in hyp; "=" missed.
	if r.SRR != 0 {
		t.Errorf("SRR = %v, want 0", r.SRR)
	}
	// Ref literals: salary, employees, name, jon → hyp recalls name, jon.
	if math.Abs(r.LRR-0.5) > 1e-9 {
		t.Errorf("LRR = %v, want 0.5", r.LRR)
	}
}

func TestCompareMultisetCounts(t *testing.T) {
	// Duplicate tokens must be counted with multiplicity.
	ref := toks("a a a")
	hyp := toks("a")
	r := Compare(ref, hyp)
	if math.Abs(r.WRR-1.0/3.0) > 1e-9 {
		t.Errorf("WRR = %v, want 1/3", r.WRR)
	}
	if r.WPR != 1 {
		t.Errorf("WPR = %v, want 1", r.WPR)
	}
}

func TestComparePrecisionRecallBounds(t *testing.T) {
	vocab := []string{"SELECT", "FROM", "=", ",", "salary", "Jon", "45310"}
	f := func(ai, bi []uint8) bool {
		a := make([]string, len(ai))
		for i, v := range ai {
			a[i] = vocab[int(v)%len(vocab)]
		}
		b := make([]string, len(bi))
		for i, v := range bi {
			b[i] = vocab[int(v)%len(vocab)]
		}
		r := Compare(a, b)
		for _, v := range []float64{r.KPR, r.SPR, r.LPR, r.WPR, r.KRR, r.SRR, r.LRR, r.WRR} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanAndBest(t *testing.T) {
	rs := []Rates{
		{KPR: 1, WRR: 0.5},
		{KPR: 0, WRR: 1.0},
	}
	m := Mean(rs)
	if m.KPR != 0.5 || m.WRR != 0.75 {
		t.Errorf("Mean = %+v", m)
	}
	b := Best(rs)
	if b.KPR != 1 || b.WRR != 1 {
		t.Errorf("Best = %+v", b)
	}
	if got := Mean(nil); got != (Rates{}) {
		t.Errorf("Mean(nil) = %+v, want zero", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{0, 0, 1, 2, 2, 2, 5})
	if got := c.At(0); math.Abs(got-2.0/7.0) > 1e-9 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); math.Abs(got-6.0/7.0) > 1e-9 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.At(-1); got != 0 {
		t.Errorf("At(-1) = %v", got)
	}
	if got := c.At(1.5); math.Abs(got-3.0/7.0) > 1e-9 {
		t.Errorf("At(1.5) = %v", got)
	}
	if q := c.Quantile(0.9); q != 5 {
		t.Errorf("Quantile(0.9) = %v", q)
	}
	if q := c.Quantile(0.5); q != 2 {
		t.Errorf("Quantile(0.5) = %v", q)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(samples []float64) bool {
		for i := range samples {
			if math.IsNaN(samples[i]) {
				samples[i] = 0
			}
		}
		c := NewCDF(samples)
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i] < c.Points[i-1] || c.Values[i] <= c.Values[i-1] {
				return false
			}
		}
		return len(c.Points) == 0 || c.Points[len(c.Points)-1] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0, 1, 2, 3, 4}, 2)
	if s.N != 5 || s.Mean != 2 || s.Min != 0 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	if s.FractionZero != 0.2 {
		t.Errorf("FractionZero = %v", s.FractionZero)
	}
	if s.FractionUnder != 0.4 { // 0 and 1 are < 2
		t.Errorf("FractionUnder = %v", s.FractionUnder)
	}
	if s.Median != 2 {
		t.Errorf("Median = %v", s.Median)
	}
	if got := Summarize(nil, 1); got.N != 0 {
		t.Errorf("Summarize(nil) = %+v", got)
	}
}

func TestWordErrorRate(t *testing.T) {
	cases := []struct {
		ref, hyp string
		want     float64
	}{
		{"a b c d", "a b c d", 0},
		{"a b c d", "a b c", 0.25},
		{"a b", "a b c d", 1.0},
		{"", "", 0},
		{"", "a", 1},
	}
	for _, c := range cases {
		got := WordErrorRate(toks(c.ref), toks(c.hyp))
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("WER(%q,%q) = %v, want %v", c.ref, c.hyp, got, c.want)
		}
	}
}

func TestCharEditDistanceBounded(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"", "", 0, 0},
		{"abc", "", 3, 3},
		{"abc", "", 2, 3},  // length-difference prune: bound+1
		{"", "abcd", 2, 3}, // symmetric prune
		{"kitten", "sitting", 3, 3},
		{"kitten", "sitting", 2, 3}, // distance 3 > bound 2 → bound+1
		{"kitten", "sitting", 10, 3},
		{"EMPLYS", "EMPLYRS", 1, 1},
		{"EMPLYS", "EMPLYRS", 0, 1},
		{"same", "same", 0, 0},
		{"FRMTT", "TTT", 1, 2}, // overflow reported as bound+1, not exact
	}
	for _, c := range cases {
		if got := CharEditDistanceBounded(c.a, c.b, c.bound); got != c.want {
			t.Errorf("CharEditDistanceBounded(%q,%q,%d) = %d, want %d", c.a, c.b, c.bound, got, c.want)
		}
	}
}

// The bounded distance must agree with the full distance whenever the full
// distance fits the bound, and report exactly bound+1 otherwise — for every
// input and every bound. This is the contract the BK-tree literal index
// depends on for bit-identical rankings.
func TestCharEditDistanceBoundedMatchesFull(t *testing.T) {
	f := func(a, b string, bound uint8) bool {
		bd := int(bound % 12)
		full := CharEditDistance(a, b)
		got := CharEditDistanceBounded(a, b, bd)
		if full <= bd {
			return got == full
		}
		return got == bd+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// []byte arguments must behave exactly like their string counterparts (the
// pooled vote scratch passes candidate encodings as byte subslices).
func TestCharEditDistanceBoundedBytes(t *testing.T) {
	f := func(a, b string, bound uint8) bool {
		bd := int(bound % 12)
		return CharEditDistanceBounded([]byte(a), b, bd) == CharEditDistanceBounded(a, b, bd) &&
			CharEditDistanceBounded(a, []byte(b), bd) == CharEditDistanceBounded(a, b, bd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
