// Package metrics implements the accuracy and distance measures of
// Section 6.2: per-class token precision/recall rates (KPR, SPR, LPR, WPR,
// KRR, SRR, LRR, WRR), the Token Edit Distance (TED, insertions and
// deletions only), character- and phonetic-level edit distances, and the CDF
// and summary-statistic helpers the experiment drivers use to regenerate the
// paper's figures.
package metrics

import "speakql/internal/sqltoken"

// TokenEditDistance is the TED of Section 6.2: the minimum number of token
// insertions and deletions transforming hypothesis into reference. It is the
// unweighted longest-common-subsequence distance, and serves as a surrogate
// for the number of touches a user needs to repair a query.
func TokenEditDistance(ref, hyp []string) int {
	lcs := lcsLen(ref, hyp)
	return (len(ref) - lcs) + (len(hyp) - lcs)
}

func lcsLen(a, b []string) int {
	if len(b) == 0 || len(a) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(b)]
}

// WeightedTokenEditDistance is the SQL-specific weighted edit distance of
// Section 3.4: insert/delete only, with per-token weights W_K=1.2 (Keyword),
// W_S=1.1 (SplChar), W_L=1.0 (Literal). It is the metric the structure
// search engine minimizes.
func WeightedTokenEditDistance(a, b []string) float64 {
	n, m := len(a), len(b)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + sqltoken.Weight(b[j-1])
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + sqltoken.Weight(a[i-1])
		for j := 1; j <= m; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1]
			} else {
				del := prev[j] + sqltoken.Weight(a[i-1])
				ins := cur[j-1] + sqltoken.Weight(b[j-1])
				if del < ins {
					cur[j] = del
				} else {
					cur[j] = ins
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// WordErrorRate is the ASR community's WER adapted to query tokens: the
// token edit distance normalized by the reference length (Figure 11's
// "Word Error Rate" panel). Zero means a perfect transcription; values can
// exceed 1 when the hypothesis is much longer than the reference.
func WordErrorRate(ref, hyp []string) float64 {
	if len(ref) == 0 {
		if len(hyp) == 0 {
			return 0
		}
		return 1
	}
	return float64(TokenEditDistance(ref, hyp)) / float64(len(ref))
}

// CharEditDistanceBounded is CharEditDistance restricted to a band: it
// returns the exact Levenshtein distance when that distance is at most
// bound, and bound+1 as soon as the distance provably exceeds bound. The
// contract literal determination's BK-tree search relies on is exactly
// that: results ≤ bound are bit-identical to CharEditDistance; any larger
// return value only asserts "greater than bound", never a specific
// distance.
//
// The bound check auto-selects its kernel: operands where the shorter side
// fits one machine word (≤64 bytes — every phonetic code and catalog
// literal in practice) run the Myers bit-parallel kernel (myers.go); longer
// pairs fall back to the banded DP, kept below as BandedDistanceBounded,
// the frozen differential reference the bit-parallel kernel is pinned
// against. Both arguments may independently be string or []byte so callers
// holding pooled byte scratch avoid a conversion allocation; the function
// never allocates.
func CharEditDistanceBounded[A ~string | ~[]byte, B ~string | ~[]byte](a A, b B, bound int) int {
	return MyersDistanceBounded(a, b, bound)
}

// BandedDistanceBounded is the banded two-row DP form of the bounded
// Levenshtein distance — the pre-bit-parallel kernel, retained verbatim as
// the frozen differential reference for MyersDistanceBounded and as the
// fallback when both operands exceed 64 bytes. Same contract as
// CharEditDistanceBounded: exact results ≤ bound, bound+1 beyond.
//
// The computation visits only DP cells with |i-j| ≤ bound (every cheaper
// path leaves the band), prunes on the length difference before touching
// any cell, and exits early once a whole row exceeds the bound. For
// strings shorter than the internal stack buffer the function does not
// allocate at all.
func BandedDistanceBounded[A ~string | ~[]byte, B ~string | ~[]byte](a A, b B, bound int) int {
	m, n := len(a), len(b)
	if bound < 0 {
		bound = 0
	}
	diff := m - n
	if diff < 0 {
		diff = -diff
	}
	if diff > bound {
		return bound + 1
	}
	if m == 0 {
		return n // n ≤ bound here
	}
	if n == 0 {
		return m
	}
	overflow := bound + 1
	// Two DP rows over b. Small inputs — every phonetic code and catalog
	// literal in practice — fit the stack buffers; longer ones fall back to
	// the heap.
	const stackCap = 128
	var sp, sc [stackCap]int
	prev, cur := sp[:stackCap], sc[:stackCap]
	if n+1 > stackCap {
		prev = make([]int, n+1)
		cur = make([]int, n+1)
	}
	for j := 0; j <= n; j++ {
		if j <= bound {
			prev[j] = j
		} else {
			prev[j] = overflow
			break // cells beyond the band are never read past j = hi+1
		}
	}
	for i := 1; i <= m; i++ {
		lo := i - bound
		if lo < 1 {
			lo = 1
		}
		hi := i + bound
		if hi > n {
			hi = n
		}
		// Seed the cell left of the band so cur[lo-1] reads are in-band
		// deletions (j = 0) or +inf.
		if lo == 1 {
			if i <= bound {
				cur[0] = i
			} else {
				cur[0] = overflow
			}
		} else {
			cur[lo-1] = overflow
		}
		rowMin := overflow
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			// prev[j] is outside the previous row's band when j = i+bound;
			// it was seeded to overflow below.
			if v := prev[j] + 1; v < d {
				d = v
			}
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			if d > overflow {
				d = overflow // keep sentinel cells from drifting upward
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if rowMin > bound {
			return overflow // every continuation can only grow
		}
		if hi < n {
			cur[hi+1] = overflow // next row reads prev[hi'] one past this band
		}
		prev, cur = cur, prev
	}
	if d := prev[n]; d <= bound {
		return d
	}
	return overflow
}

// CharEditDistance is the Levenshtein distance (insert, delete, substitute)
// between two strings, used for string- and phonetic-level literal
// comparison (Section 4.3, Appendix F.7).
func CharEditDistance(a, b string) int {
	m, n := len(a), len(b)
	if m == 0 {
		return n
	}
	if n == 0 {
		return m
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			if v := prev[j-1] + cost; v < d {
				d = v
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[n]
}
