// Package metrics implements the accuracy and distance measures of
// Section 6.2: per-class token precision/recall rates (KPR, SPR, LPR, WPR,
// KRR, SRR, LRR, WRR), the Token Edit Distance (TED, insertions and
// deletions only), character- and phonetic-level edit distances, and the CDF
// and summary-statistic helpers the experiment drivers use to regenerate the
// paper's figures.
package metrics

import "speakql/internal/sqltoken"

// TokenEditDistance is the TED of Section 6.2: the minimum number of token
// insertions and deletions transforming hypothesis into reference. It is the
// unweighted longest-common-subsequence distance, and serves as a surrogate
// for the number of touches a user needs to repair a query.
func TokenEditDistance(ref, hyp []string) int {
	lcs := lcsLen(ref, hyp)
	return (len(ref) - lcs) + (len(hyp) - lcs)
}

func lcsLen(a, b []string) int {
	if len(b) == 0 || len(a) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(b)]
}

// WeightedTokenEditDistance is the SQL-specific weighted edit distance of
// Section 3.4: insert/delete only, with per-token weights W_K=1.2 (Keyword),
// W_S=1.1 (SplChar), W_L=1.0 (Literal). It is the metric the structure
// search engine minimizes.
func WeightedTokenEditDistance(a, b []string) float64 {
	n, m := len(a), len(b)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + sqltoken.Weight(b[j-1])
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + sqltoken.Weight(a[i-1])
		for j := 1; j <= m; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1]
			} else {
				del := prev[j] + sqltoken.Weight(a[i-1])
				ins := cur[j-1] + sqltoken.Weight(b[j-1])
				if del < ins {
					cur[j] = del
				} else {
					cur[j] = ins
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// WordErrorRate is the ASR community's WER adapted to query tokens: the
// token edit distance normalized by the reference length (Figure 11's
// "Word Error Rate" panel). Zero means a perfect transcription; values can
// exceed 1 when the hypothesis is much longer than the reference.
func WordErrorRate(ref, hyp []string) float64 {
	if len(ref) == 0 {
		if len(hyp) == 0 {
			return 0
		}
		return 1
	}
	return float64(TokenEditDistance(ref, hyp)) / float64(len(ref))
}

// CharEditDistance is the Levenshtein distance (insert, delete, substitute)
// between two strings, used for string- and phonetic-level literal
// comparison (Section 4.3, Appendix F.7).
func CharEditDistance(a, b string) int {
	m, n := len(a), len(b)
	if m == 0 {
		return n
	}
	if n == 0 {
		return m
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if v := cur[j-1] + 1; v < d {
				d = v
			}
			if v := prev[j-1] + cost; v < d {
				d = v
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[n]
}
