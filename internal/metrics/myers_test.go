package metrics

import (
	"math/rand"
	"strings"
	"testing"
)

// distAlphabet mixes the byte classes the voting hot loop actually compares
// (Metaphone consonant symbols, digits, lowered letters) so random pairs
// collide and diverge the way catalog codes do.
const distAlphabet = "0BFHJKLMNPRSXTWYabcdefghijklmnopqrstuvwxyz0123456789"

func randString(rng *rand.Rand, maxLen int) string {
	n := rng.Intn(maxLen + 1)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(distAlphabet[rng.Intn(len(distAlphabet))])
	}
	return sb.String()
}

// checkMyersMatchesBanded pins the bit-parallel kernel to the frozen banded
// reference for one (a, b, bound) triple: the return values must be equal —
// not merely order-equivalent — including every early-exit case, where both
// must say exactly bound+1.
func checkMyersMatchesBanded(t *testing.T, a, b string, bound int) {
	t.Helper()
	want := BandedDistanceBounded(a, b, bound)
	got := MyersDistanceBounded(a, b, bound)
	if got != want {
		t.Fatalf("MyersDistanceBounded(%q, %q, %d) = %d, banded reference = %d",
			a, b, bound, got, want)
	}
}

// TestMyersMatchesBanded is the 10k-random-pair differential test: for
// random pairs and bounds — tight bounds that force the early exit, exact
// bounds, and slack bounds that never trigger it — the Myers kernel must
// return exactly what the banded DP returns.
func TestMyersMatchesBanded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 10000; iter++ {
		a := randString(rng, 24)
		b := randString(rng, 24)
		// Bias some pairs toward near-misses so small distances are common.
		if rng.Intn(3) == 0 && len(a) > 0 {
			bs := []byte(a)
			bs[rng.Intn(len(bs))] ^= 1
			b = string(bs)
		}
		for _, bound := range []int{-1, 0, 1, 2, rng.Intn(8), len(a) + len(b)} {
			checkMyersMatchesBanded(t, a, b, bound)
		}
	}
}

// TestMyersMatchesBandedBoundary covers the operand-size boundary where the
// kernel switches strategy: 63/64/65-byte operands (the one-word limit),
// pairs straddling the limit, the small-vs-table Eq cutoff, and multi-byte
// UTF-8 text whose byte length crosses 64 long before its rune count does.
func TestMyersMatchesBandedBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	long := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(distAlphabet[rng.Intn(len(distAlphabet))])
		}
		return sb.String()
	}
	cases := [][2]string{
		{long(63), long(63)},
		{long(64), long(64)},
		{long(65), long(65)}, // both >64: banded fallback
		{long(64), long(65)}, // pattern exactly at the limit
		{long(10), long(200)},
		{long(65), long(66)},
		{strings.Repeat("é", 40), strings.Repeat("é", 40)},  // 80 bytes, 40 runes
		{strings.Repeat("é", 31), strings.Repeat("è", 33)},  // 62 vs 66 bytes
		{strings.Repeat("日", 30), strings.Repeat("日本", 15)}, // ≥64 bytes of UTF-8
		{"", long(5)},
		{long(5), ""},
		{"", ""},
	}
	for _, c := range cases {
		for _, bound := range []int{0, 1, 3, 10, 64, 500} {
			checkMyersMatchesBanded(t, c[0], c[1], bound)
		}
	}
}

// TestMyersMatchesUnbounded cross-checks against the third implementation:
// with a slack bound, both bounded kernels must equal the plain full-matrix
// CharEditDistance.
func TestMyersMatchesUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 2000; iter++ {
		a := randString(rng, 16)
		b := randString(rng, 16)
		want := CharEditDistance(a, b)
		if got := MyersDistanceBounded(a, b, len(a)+len(b)+1); got != want {
			t.Fatalf("MyersDistanceBounded(%q, %q, slack) = %d, CharEditDistance = %d",
				a, b, got, want)
		}
	}
}

// TestMyersByteSliceOperands exercises the generic instantiations the vote
// kernel uses: []byte vs string, []byte vs []byte.
func TestMyersByteSliceOperands(t *testing.T) {
	a, b := []byte("EMPLYS"), "EMPLY"
	if got, want := MyersDistanceBounded(a, b, 3), BandedDistanceBounded(a, b, 3); got != want {
		t.Fatalf("[]byte/string: got %d want %d", got, want)
	}
	if got, want := MyersDistanceBounded(a, []byte(b), 0), BandedDistanceBounded(a, []byte(b), 0); got != want {
		t.Fatalf("[]byte/[]byte: got %d want %d", got, want)
	}
}

// TestMyersZeroAllocs pins the bit-parallel kernel at zero heap allocations
// on both Eq strategies (small scan and 256-entry table) — it sits inside
// the zero-alloc voting and BK-search loops.
func TestMyersZeroAllocs(t *testing.T) {
	small := []string{"EMPLYS", "SLRS", "FRSTNM", "KTRN"}
	big := strings.Repeat("ABCDXYZ", 9) // 63 bytes: table path at n>16
	bigger := big + "Q"
	if n := testing.AllocsPerRun(100, func() {
		for _, a := range small {
			for _, b := range small {
				MyersDistanceBounded(a, b, 4)
			}
		}
		MyersDistanceBounded(big, bigger, 8)
	}); n != 0 {
		t.Fatalf("MyersDistanceBounded allocated %.1f times per run, want 0", n)
	}
}

// FuzzMyersMatchesBanded lets the fuzzer hunt for operand/bound shapes the
// seeded sweeps miss — including invalid UTF-8 and embedded NULs, which
// byte-level comparison must handle identically in both kernels.
func FuzzMyersMatchesBanded(f *testing.F) {
	f.Add("EMPLYS", "EMPLS", 2)
	f.Add("", "x", 0)
	f.Add("abcdefghijklmnopqrstuvwxyz", "abcdefghijklmnopqrstuvwxya", 1)
	f.Add(strings.Repeat("a", 70), strings.Repeat("b", 70), 5)
	f.Fuzz(func(t *testing.T, a, b string, bound int) {
		if len(a) > 512 || len(b) > 512 || bound > 1<<20 || bound < -1<<20 {
			t.Skip()
		}
		checkMyersMatchesBanded(t, a, b, bound)
	})
}
