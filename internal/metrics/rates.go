package metrics

import (
	"math"
	"sort"
	"strings"

	"speakql/internal/sqltoken"
)

// Rates holds the eight accuracy metrics of Section 6.2 for one
// reference/hypothesis query pair (or their means across a set). Precision
// is |A∩B|/|B| and recall |A∩B|/|A| over token multisets, where A is the
// reference query and B the hypothesis, computed overall (W*) and per token
// class (K*, S*, L*).
type Rates struct {
	KPR, SPR, LPR, WPR float64 // precision: keyword, splchar, literal, word
	KRR, SRR, LRR, WRR float64 // recall
}

// Compare tokenizes nothing: it takes already-tokenized reference and
// hypothesis queries and computes all eight rates. Keyword comparison is
// case-insensitive (keywords are canonicalized); literal comparison is
// case-insensitive too, since "the predicted query is correct" if the right
// identifier is produced regardless of display case.
func Compare(ref, hyp []string) Rates {
	refN := normTokens(ref)
	hypN := normTokens(hyp)
	var r Rates
	r.KPR, r.KRR = classPR(refN, hypN, sqltoken.Keyword)
	r.SPR, r.SRR = classPR(refN, hypN, sqltoken.SplChar)
	r.LPR, r.LRR = classPR(refN, hypN, sqltoken.Literal)
	r.WPR, r.WRR = allPR(refN, hypN)
	return r
}

func normTokens(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = strings.ToLower(t)
	}
	return out
}

func multiset(toks []string, class sqltoken.Class, filter bool) map[string]int {
	m := make(map[string]int)
	for _, t := range toks {
		if filter && sqltoken.Classify(t) != class {
			continue
		}
		m[t]++
	}
	return m
}

func intersectSize(a, b map[string]int) int {
	n := 0
	for k, ca := range a {
		if cb, ok := b[k]; ok {
			if cb < ca {
				n += cb
			} else {
				n += ca
			}
		}
	}
	return n
}

func size(m map[string]int) int {
	n := 0
	for _, c := range m {
		n += c
	}
	return n
}

// classPR returns (precision, recall) restricted to one token class.
// When a side has no tokens of the class, the corresponding rate is 1 if the
// other side also has none (nothing to get wrong), else 0 for recall when
// reference tokens were all missed, mirroring how per-class means are
// reported in Table 2.
func classPR(ref, hyp []string, class sqltoken.Class) (prec, rec float64) {
	a := multiset(ref, class, true)
	b := multiset(hyp, class, true)
	inter := intersectSize(a, b)
	na, nb := size(a), size(b)
	switch {
	case nb == 0 && na == 0:
		prec = 1
	case nb == 0:
		prec = 1 // hypothesis asserted nothing of this class: vacuously precise
	default:
		prec = float64(inter) / float64(nb)
	}
	switch {
	case na == 0:
		rec = 1
	default:
		rec = float64(inter) / float64(na)
	}
	return prec, rec
}

func allPR(ref, hyp []string) (prec, rec float64) {
	a := multiset(ref, 0, false)
	b := multiset(hyp, 0, false)
	inter := intersectSize(a, b)
	if size(b) == 0 {
		prec = 0
		if size(a) == 0 {
			prec = 1
		}
	} else {
		prec = float64(inter) / float64(size(b))
	}
	if size(a) == 0 {
		rec = 1
	} else {
		rec = float64(inter) / float64(size(a))
	}
	return prec, rec
}

// Mean averages a slice of Rates element-wise.
func Mean(rs []Rates) Rates {
	var m Rates
	if len(rs) == 0 {
		return m
	}
	for _, r := range rs {
		m.KPR += r.KPR
		m.SPR += r.SPR
		m.LPR += r.LPR
		m.WPR += r.WPR
		m.KRR += r.KRR
		m.SRR += r.SRR
		m.LRR += r.LRR
		m.WRR += r.WRR
	}
	n := float64(len(rs))
	m.KPR /= n
	m.SPR /= n
	m.LPR /= n
	m.WPR /= n
	m.KRR /= n
	m.SRR /= n
	m.LRR /= n
	m.WRR /= n
	return m
}

// Best returns, element-wise, the best (max) rates among candidates; it
// implements the "best of top k" evaluation of Table 2, where each metric is
// taken from the candidate that maximizes it.
func Best(rs []Rates) Rates {
	var m Rates
	for i, r := range rs {
		if i == 0 {
			m = r
			continue
		}
		m.KPR = maxf(m.KPR, r.KPR)
		m.SPR = maxf(m.SPR, r.SPR)
		m.LPR = maxf(m.LPR, r.LPR)
		m.WPR = maxf(m.WPR, r.WPR)
		m.KRR = maxf(m.KRR, r.KRR)
		m.SRR = maxf(m.SRR, r.SRR)
		m.LRR = maxf(m.LRR, r.LRR)
		m.WRR = maxf(m.WRR, r.WRR)
	}
	return m
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// CDF summarizes an empirical cumulative distribution: Points[i] gives the
// fraction of samples ≤ Values[i], over the sorted distinct values.
type CDF struct {
	Values []float64
	Points []float64
}

// NewCDF builds the empirical CDF of samples.
func NewCDF(samples []float64) CDF {
	if len(samples) == 0 {
		return CDF{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var c CDF
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		c.Values = append(c.Values, s[i])
		c.Points = append(c.Points, float64(i+1)/n)
	}
	return c
}

// At returns the CDF evaluated at x: the fraction of samples ≤ x.
func (c CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.Values, x)
	// SearchFloat64s returns the first index with Values[i] >= x.
	if i < len(c.Values) && c.Values[i] == x {
		return c.Points[i]
	}
	if i == 0 {
		return 0
	}
	return c.Points[i-1]
}

// Quantile returns the smallest value v with CDF(v) ≥ q.
func (c CDF) Quantile(q float64) float64 {
	for i, p := range c.Points {
		if p >= q {
			return c.Values[i]
		}
	}
	if len(c.Values) == 0 {
		return 0
	}
	return c.Values[len(c.Values)-1]
}

// Summary holds basic descriptive statistics.
type Summary struct {
	N                 int
	Mean, Median      float64
	Min, Max          float64
	P90, P95, P99     float64
	StdDev            float64
	FractionZero      float64 // fraction of exactly-zero samples (TED==0 ⇒ exact)
	FractionUnder     float64 // fraction under the threshold passed to Summarize
	UnderThresholdArg float64
}

// Summarize computes Summary for samples; under is the threshold for
// FractionUnder (pass e.g. 2.0 to reproduce "runtime under 2 seconds for 90%
// of queries" style statements).
func Summarize(samples []float64, under float64) Summary {
	var s Summary
	s.N = len(samples)
	s.UnderThresholdArg = under
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	var sum, sumsq float64
	nz, nu := 0, 0
	for _, v := range samples {
		sum += v
		sumsq += v * v
		if v == 0 {
			nz++
		}
		if v < under {
			nu++
		}
	}
	n := float64(s.N)
	s.Mean = sum / n
	variance := sumsq/n - s.Mean*s.Mean
	if variance > 0 {
		s.StdDev = math.Sqrt(variance)
	}
	s.Median = quantileSorted(sorted, 0.5)
	s.P90 = quantileSorted(sorted, 0.9)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	s.FractionZero = float64(nz) / n
	s.FractionUnder = float64(nu) / n
	return s
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
