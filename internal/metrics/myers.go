// Myers bit-parallel edit distance (Myers 1999, in Hyyrö's 2001 global-
// distance formulation). The banded DP in editdist.go visits O(m·bound)
// cells with data-dependent branches and zeroes two row buffers per call;
// this kernel packs one whole DP *column delta* into two machine words (a
// positive and a negative delta bitvector) and advances it with ~15
// branch-free word operations per text character. For the catalog codes and
// literal spellings the voting hot loop compares — a handful of bytes each —
// that is a 3–5x kernel speedup, and the on-the-fly Eq variant below also
// eliminates the 2KB table memset that would otherwise dominate short
// operands (it was ~25% of the banded kernel's cost as buffer zeroing).
//
// See DESIGN.md §12 for the bitvector layout and the equivalence argument.

package metrics

// myersSmallCutoff selects between the two Eq-mask strategies: below it the
// pattern mask for each text byte is recomputed by scanning the pattern
// (m·n byte compares, no table); above it a 256-entry table is built once
// (a 2KB stack zeroing, amortized over long operands). The cutoff is where
// the scan cost crosses the memset cost; both paths are bit-identical.
const myersSmallCutoff = 1024

// MyersDistanceBounded is CharEditDistanceBounded's bit-parallel fast path:
// it returns the exact Levenshtein distance between a and b when that
// distance is at most bound, and bound+1 as soon as the distance provably
// exceeds bound — for every input, the return value equals
// BandedDistanceBounded's exactly (pinned by TestMyersMatchesBanded).
//
// The bit-parallel kernel requires the shorter operand (the pattern) to fit
// one 64-bit word; operands are compared byte-wise, exactly like the banded
// DP, so the limit is 64 bytes, not runes. When both operands exceed 64
// bytes the call falls back to the banded DP — multi-byte UTF-8 text
// crosses that boundary sooner than its rune count suggests, which the
// Unicode boundary tests cover. The function never allocates.
func MyersDistanceBounded[A ~string | ~[]byte, B ~string | ~[]byte](a A, b B, bound int) int {
	if len(a) > len(b) {
		// Levenshtein is symmetric; the shorter operand is the pattern.
		return MyersDistanceBounded(b, a, bound)
	}
	if bound < 0 {
		bound = 0
	}
	m, n := len(a), len(b)
	if n-m > bound {
		return bound + 1
	}
	if m == 0 {
		return n // n ≤ bound here
	}
	if m > 64 {
		return BandedDistanceBounded(a, b, bound)
	}

	// State: pv/mv hold the vertical deltas of the current DP column
	// (bit i set in pv: D[i+1][j] = D[i][j]+1; in mv: −1), score is
	// D[m][j]. Initially the column is 0,1,…,m: all deltas +1.
	pv := ^uint64(0)
	mv := uint64(0)
	score := m
	last := uint64(1) << uint(m-1)

	if m*n <= myersSmallCutoff {
		// Small operands: build each text byte's pattern-match mask by
		// scanning the pattern. O(m) compares per text byte beat the 2KB
		// table zeroing by a wide margin at this size.
		for j := 0; j < n; j++ {
			c := b[j]
			var eq uint64
			for i := 0; i < m; i++ {
				if a[i] == c {
					eq |= 1 << uint(i)
				}
			}
			xv := eq | mv
			xh := (((eq & pv) + pv) ^ pv) | eq
			ph := mv | ^(xh | pv)
			mh := pv & xh
			if ph&last != 0 {
				score++
			} else if mh&last != 0 {
				score--
			}
			ph = ph<<1 | 1 // D[0][j] − D[0][j−1] = +1: the first row is 0,1,…,n
			mh <<= 1
			pv = mh | ^(xv | ph)
			mv = ph & xv
			// The last DP row changes by at most ±1 per text byte, so the
			// final distance is ≥ score − (remaining bytes): once that
			// lower bound clears the bound, no suffix can pull it back.
			if score-bound > n-1-j {
				return bound + 1
			}
		}
		if score > bound {
			return bound + 1
		}
		return score
	}

	var peq [256]uint64
	for i := 0; i < m; i++ {
		peq[a[i]] |= 1 << uint(i)
	}
	for j := 0; j < n; j++ {
		eq := peq[b[j]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&last != 0 {
			score++
		} else if mh&last != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if score-bound > n-1-j {
			return bound + 1
		}
	}
	if score > bound {
		return bound + 1
	}
	return score
}
