package literal

// update.go implements incremental catalog updates for the multi-tenant
// registry: a tenant's schema drifts (a table added, a column's domain
// extended) and the registry re-indexes only what changed instead of
// rebuilding the whole catalog. The unit of reuse is the Metaphone group —
// retained entries keep their cached Lower/Phonetic encodings, and a
// category set whose distinct-code population only grew keeps its BK-tree
// nodes verbatim, with just the new codes inserted.
//
// ApplyDelta is copy-on-write: it returns a NEW catalog sharing every
// untouched category set (and the BK-tree arenas of touched sets when
// possible) with the receiver, which therefore stays valid for concurrent
// readers — exactly the frozen-arena discipline the registry's eviction
// protocol depends on (an in-flight correction holding the old catalog is
// never invalidated by an update).

import (
	"sort"
	"strings"

	"speakql/internal/phonetic"
)

// CatalogDelta describes one incremental catalog update. Adds and removes
// are by exact name (the same identity NewCatalog deduplicates on);
// removing an absent name or re-adding a present one is a no-op. Column
// maps are keyed by attribute name, case-insensitive like WithColumnValues.
type CatalogDelta struct {
	AddTables     []string `json:"add_tables,omitempty"`
	RemoveTables  []string `json:"remove_tables,omitempty"`
	AddAttributes []string `json:"add_attributes,omitempty"`
	RemoveAttrs   []string `json:"remove_attributes,omitempty"`
	AddValues     []string `json:"add_values,omitempty"`
	RemoveValues  []string `json:"remove_values,omitempty"`

	AddColumnValues    map[string][]string `json:"add_column_values,omitempty"`
	RemoveColumnValues map[string][]string `json:"remove_column_values,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d CatalogDelta) Empty() bool {
	return len(d.AddTables) == 0 && len(d.RemoveTables) == 0 &&
		len(d.AddAttributes) == 0 && len(d.RemoveAttrs) == 0 &&
		len(d.AddValues) == 0 && len(d.RemoveValues) == 0 &&
		len(d.AddColumnValues) == 0 && len(d.RemoveColumnValues) == 0
}

// UpdateStats reports how much work ApplyDelta actually did — the registry
// surfaces it so operators can verify updates stay incremental.
type UpdateStats struct {
	// Added and Removed count entries that entered or left the catalog.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Encoded counts Metaphone encodings computed — added entries only;
	// retained entries reuse their cached encodings.
	Encoded int `json:"encoded"`
	// GroupsTouched and GroupsReused count phonetic groups whose membership
	// changed vs groups carried over untouched.
	GroupsTouched int `json:"groups_touched"`
	GroupsReused  int `json:"groups_reused"`
	// BKReused counts category sets whose BK-tree was shared verbatim (no
	// new distinct codes); BKInserted counts new codes inserted into copied
	// trees; BKRebuilt counts sets that lost a code and needed a full
	// rebuild.
	BKReused   int `json:"bk_reused"`
	BKInserted int `json:"bk_inserted"`
	BKRebuilt  int `json:"bk_rebuilt"`
}

// ApplyDelta applies d and returns a new catalog; the receiver is not
// modified and stays valid. Untouched category sets are shared between old
// and new catalog. Rankings produced by the result are bit-identical to a
// full NewCatalog rebuild over the same final name lists (voting depends
// only on the entry population, not on group order or BK-tree shape).
func (c *Catalog) ApplyDelta(d CatalogDelta) (*Catalog, UpdateStats) {
	out := &Catalog{
		tables:  c.tables,
		attrs:   c.attrs,
		values:  c.values,
		byAttr:  c.byAttr,
		noIndex: c.noIndex,
	}
	var st UpdateStats
	if len(d.AddTables)+len(d.RemoveTables) > 0 {
		out.tables = applySetDelta(&c.tables, d.AddTables, d.RemoveTables, &st)
	}
	if len(d.AddAttributes)+len(d.RemoveAttrs) > 0 {
		out.attrs = applySetDelta(&c.attrs, d.AddAttributes, d.RemoveAttrs, &st)
	}
	if len(d.AddValues)+len(d.RemoveValues) > 0 {
		out.values = applySetDelta(&c.values, d.AddValues, d.RemoveValues, &st)
	}
	if len(d.AddColumnValues)+len(d.RemoveColumnValues) > 0 {
		out.byAttr = applyColumnDeltas(c.byAttr, d, &st)
	}
	return out, st
}

// applyColumnDeltas rebuilds only the touched columns' sets, sharing the
// rest; the map itself is copied (the old catalog keeps its own view).
func applyColumnDeltas(old map[string]*catSet, d CatalogDelta, st *UpdateStats) map[string]*catSet {
	out := make(map[string]*catSet, len(old)+len(d.AddColumnValues))
	for k, v := range old {
		out[k] = v
	}
	touched := make(map[string]bool, len(d.AddColumnValues)+len(d.RemoveColumnValues))
	for attr := range d.AddColumnValues {
		touched[strings.ToLower(attr)] = true
	}
	for attr := range d.RemoveColumnValues {
		touched[strings.ToLower(attr)] = true
	}
	for key := range touched {
		prev := out[key]
		if prev == nil {
			prev = &catSet{}
		}
		ns := applySetDelta(prev, columnNames(d.AddColumnValues, key),
			columnNames(d.RemoveColumnValues, key), st)
		if len(ns.entries) == 0 {
			delete(out, key)
			continue
		}
		out[key] = &ns
	}
	return out
}

// columnNames collects m's values for the (lowercased) attribute key —
// delta maps are caller-supplied, so two differently-cased keys may name
// the same column.
func columnNames(m map[string][]string, key string) []string {
	var out []string
	for attr, vals := range m {
		if strings.ToLower(attr) == key {
			out = append(out, vals...)
		}
	}
	return out
}

// applySetDelta produces the updated category set. Retained entries reuse
// their cached encodings; only added names are Metaphone-encoded. The
// group list keeps the old set's group order for surviving codes (so BK
// node→group indices stay valid) and appends genuinely new codes sorted;
// when no code disappears the old BK-tree is shared (nothing new) or
// copied and grown (new codes only). A vanished code forces a full BK
// rebuild: dropping a group would shift group indices, and keeping an
// empty group is forbidden — an empty group winning a nearest-radius
// search would contribute zero votes and diverge from the naive reference.
func applySetDelta(old *catSet, add, remove []string, st *UpdateStats) catSet {
	rm := make(map[string]bool, len(remove))
	for _, n := range remove {
		if n != "" {
			rm[n] = true
		}
	}
	have := make(map[string]bool, len(old.entries)+len(add))
	removed := 0
	for _, e := range old.entries {
		if rm[e.Name] {
			removed++
			continue
		}
		have[e.Name] = true
	}
	added := make([]entry, 0, len(add))
	for _, n := range add {
		if n == "" || have[n] {
			continue
		}
		have[n] = true
		added = append(added, entry{
			Name:     n,
			Lower:    strings.ToLower(n),
			Phonetic: phonetic.Encode(n),
		})
		st.Encoded++
	}
	sort.Slice(added, func(i, j int) bool { return added[i].Name < added[j].Name })
	st.Added += len(added)
	st.Removed += removed

	// Which codes changed membership (for the stats only — correctness does
	// not depend on this bookkeeping).
	dirtyCode := make(map[string]bool, removed+len(added))
	for _, e := range old.entries {
		if rm[e.Name] {
			dirtyCode[e.Phonetic] = true
		}
	}
	for _, e := range added {
		dirtyCode[e.Phonetic] = true
	}

	// Sorted merge of retained + added entries: both inputs are in Name
	// order, so the result is too, with no re-sort and no re-encoding.
	entries := make([]entry, 0, len(old.entries)-removed+len(added))
	i, j := 0, 0
	for i < len(old.entries) || j < len(added) {
		switch {
		case i < len(old.entries) && rm[old.entries[i].Name]:
			i++
		case j == len(added) || (i < len(old.entries) && old.entries[i].Name < added[j].Name):
			entries = append(entries, old.entries[i])
			i++
		default:
			entries = append(entries, added[j])
			j++
		}
	}

	set := catSet{entries: entries, byLower: make(map[string]int32, len(entries))}
	byCode := make(map[string][]int32, len(old.groups)+len(added))
	for idx, e := range entries {
		if _, ok := set.byLower[e.Lower]; !ok {
			set.byLower[e.Lower] = int32(idx)
		}
		byCode[e.Phonetic] = append(byCode[e.Phonetic], int32(idx))
		if len(e.Phonetic) > set.maxCode {
			set.maxCode = len(e.Phonetic)
		}
	}

	// Group order: surviving codes keep their old positions, new codes are
	// appended sorted. Search never requires globally-sorted groups — only
	// buildSet's initial construction sorts, for a canonical shape.
	groups := make([]phoneGroup, 0, len(byCode))
	members := make([]int32, 0, len(entries))
	codeGone := false
	for _, g := range old.groups {
		ms, ok := byCode[g.code]
		if !ok {
			codeGone = true
			continue
		}
		delete(byCode, g.code)
		groups = append(groups, phoneGroup{code: g.code, first: int32(len(members)), num: int32(len(ms))})
		members = append(members, ms...)
		if dirtyCode[g.code] {
			st.GroupsTouched++
		} else {
			st.GroupsReused++
		}
	}
	newCodes := make([]string, 0, len(byCode))
	for code := range byCode {
		newCodes = append(newCodes, code)
	}
	sort.Strings(newCodes)
	for _, code := range newCodes {
		ms := byCode[code]
		groups = append(groups, phoneGroup{code: code, first: int32(len(members)), num: int32(len(ms))})
		members = append(members, ms...)
		st.GroupsTouched++
	}
	set.groups, set.members = groups, members
	set.byCode = buildCodeMap(groups)

	switch {
	case len(groups) == 0:
		set.bk = nil
	case codeGone:
		set.bk = buildBK(groups)
		st.BKRebuilt++
	case len(newCodes) == 0:
		// Same distinct codes, same order: the old tree's node→group indices
		// are still exact, and BK-trees are immutable once built — share it.
		set.bk = old.bk
		st.BKReused++
	default:
		bk := make([]bkNode, len(old.bk), len(old.bk)+len(newCodes))
		copy(bk, old.bk)
		for gi := len(groups) - len(newCodes); gi < len(groups); gi++ {
			bk = bkInsert(bk, groups, int32(gi))
		}
		set.bk = bk
		st.BKInserted += len(newCodes)
	}
	return set
}
