package literal

import "strings"

// VoteMemo caches literal-voting results across the fragment re-corrections
// of one clause-streaming session. vote is a pure function of (window, set,
// k, naive) up to translation of the consumed position by the window's base
// offset, so a hit replays the cached ranking exactly — the streaming path's
// bit-identity to one-shot correction does not depend on the memo's hit
// rate, only on this purity (TestVoteMemoIdentical).
//
// A VoteMemo is not safe for concurrent use; give each streaming session its
// own.
type VoteMemo struct {
	m map[voteKey]voteVal
}

type voteKey struct {
	set   *catSet // identity: category sets are fixed per catalog
	win   string  // window tokens, newline-joined
	k     int
	naive bool
}

type voteVal struct {
	top []string
	rel int // consumed position relative to the window base
}

// memoCap bounds retained entries; a full memo resets (sessions are finite,
// but a pathological dictation shouldn't grow memory without bound).
const memoCap = 8192

// NewVoteMemo creates an empty memo.
func NewVoteMemo() *VoteMemo {
	return &VoteMemo{m: make(map[voteKey]voteVal)}
}

// voteMemo is vote through the memo (memo == nil degenerates to vote).
func voteMemo(window []string, base int, set *catSet, k int, naive bool, memo *VoteMemo) ([]string, int) {
	if memo == nil || len(window) == 0 {
		return vote(window, base, set, k, naive)
	}
	key := voteKey{set: set, win: strings.Join(window, "\n"), k: k, naive: naive}
	if v, ok := memo.m[key]; ok {
		// Copy: bindings own their TopK, and the memo outlives them.
		var top []string
		if len(v.top) > 0 {
			top = append(top, v.top...)
		}
		return top, base + v.rel
	}
	top, pos := vote(window, base, set, k, naive)
	if len(memo.m) >= memoCap {
		memo.m = make(map[voteKey]voteVal)
	}
	stored := voteVal{rel: pos - base}
	if len(top) > 0 {
		stored.top = append(stored.top, top...)
	}
	memo.m[key] = stored
	return top, pos
}
