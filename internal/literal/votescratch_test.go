package literal

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// wordPool mixes schema-ish identifiers, phonetically-colliding spellings
// (Jon/John, Smith/Smyth collapse to one Metaphone code), digit-bearing
// codes, and noise words — enough collisions that BK winner sets routinely
// hold several groups and several entries per group.
var wordPool = []string{
	"Employees", "employes", "Salaries", "salary", "FirstName", "first",
	"name", "LastName", "last", "Titles", "title", "Departments",
	"department", "DeptEmp", "HireDate", "hire", "date", "BirthDate",
	"Jon", "John", "Jahn", "Smith", "Smyth", "Smithe", "Catherine",
	"Katherine", "Kathryn", "Engineer", "Enginere", "Senior", "Staff",
	"Manager", "Technique", "Leader", "d001", "d002", "d009", "emp",
	"no", "number", "gender", "from", "where", "select", "the", "of",
	"pizza", "Pizza Hut", "pisa hut", "cafe", "Cafe Noir", "bar",
}

func randWords(rng *rand.Rand, min, max int) []string {
	n := min + rng.Intn(max-min+1)
	out := make([]string, n)
	for i := range out {
		out[i] = wordPool[rng.Intn(len(wordPool))]
	}
	return out
}

// checkIndexMatchesNaive runs one window against one set on both paths and
// fails unless the ranked top-k AND the consumed transcript position agree
// exactly — the tie-break rules (raw distance, then name) and the
// position-consumption rule are part of the contract.
func checkIndexMatchesNaive(t *testing.T, set *catSet, window []string, base, k int) {
	t.Helper()
	wantTop, wantPos := voteNaive(window, base, set.entries, k)
	gotTop, gotPos := vote(window, base, set, k, false)
	if !reflect.DeepEqual(gotTop, wantTop) || gotPos != wantPos {
		t.Fatalf("indexed vote diverged from naive\nwindow=%q entries=%d k=%d\n naive: top=%q pos=%d\n index: top=%q pos=%d",
			window, len(set.entries), k, wantTop, wantPos, gotTop, gotPos)
	}
}

// TestVoteIndexMatchesNaive is the differential property test: over many
// random catalogs and windows, the BK-indexed kernel must return rankings
// and consumed positions bit-identical to the retained naive full scan.
func TestVoteIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		names := randWords(rng, 1, 60)
		set := buildSet(names)
		window := randWords(rng, 0, 8)
		// Occasionally corrupt a window token so candidates sit at a
		// nonzero distance from every code.
		if len(window) > 0 && rng.Intn(3) == 0 {
			window[rng.Intn(len(window))] += "x"
		}
		base := rng.Intn(5)
		k := 1 + rng.Intn(4)
		checkIndexMatchesNaive(t, &set, window, base, k)
	}
}

// TestVoteIndexMatchesNaiveSingletons covers the degenerate shapes the
// random sweep can miss: one-entry sets, all-identical codes (a single BK
// node), and an empty window.
func TestVoteIndexMatchesNaiveSingletons(t *testing.T) {
	cases := []struct {
		names  []string
		window []string
	}{
		{[]string{"Employees"}, []string{"employs"}},
		{[]string{"Jon", "John", "Jahn"}, []string{"jon"}}, // one phonetic group
		{[]string{"Jon", "John"}, nil},
		{[]string{"a", "b", "c", "d"}, []string{"zzz", "qqq"}},
	}
	for _, c := range cases {
		set := buildSet(c.names)
		checkIndexMatchesNaive(t, &set, c.window, 0, 3)
	}
}

// FuzzVoteIndexMatchesNaive drives the same differential check from fuzzed
// seeds, letting the fuzzer explore catalog/window shapes the fixed-seed
// sweep does not.
func FuzzVoteIndexMatchesNaive(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 1729, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		set := buildSet(randWords(rng, 1, 40))
		window := randWords(rng, 0, 6)
		checkIndexMatchesNaive(t, &set, window, rng.Intn(3), 1+rng.Intn(3))
	})
}

// TestVoteSteadyStateAllocs pins the indexed voting kernel at zero heap
// allocations once its pooled scratch has warmed up — the same discipline
// as the structure-search kernel (trieindex arena test). Drives s.run
// directly: the public vote() copies the scratch-backed result into a
// caller-owned slice, which allocates by design.
func TestVoteSteadyStateAllocs(t *testing.T) {
	names := make([]string, 0, 300)
	for i := 0; i < 100; i++ {
		names = append(names, fmt.Sprintf("Val%s%d", wordPool[i%len(wordPool)], i))
	}
	names = append(names, wordPool...)
	set := buildSet(names)
	window := []string{"first", "name", "jon", "smith", "employes"}

	s := getVoteScratch()
	defer putVoteScratch(s)
	for i := 0; i < 3; i++ { // warm the arenas to steady-state capacity
		s.run(window, 0, &set, 3)
	}
	if n := testing.AllocsPerRun(100, func() {
		s.run(window, 0, &set, 3)
	}); n != 0 {
		t.Fatalf("steady-state vote kernel allocated %.1f times per run, want 0", n)
	}
}

// TestVoteBatchMatchesPerToken pins the batched pass (encoding dedup,
// exact-code fast path, shared BK traversal) to the frozen per-token walker:
// ranked top-k and consumed position must agree exactly over random
// catalogs and windows — including windows with repeated tokens, which
// exercise the dedup path, and in-catalog tokens, which exercise the
// exact-hit path.
func TestVoteBatchMatchesPerToken(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	bs := getVoteScratch()
	ps := getVoteScratch()
	defer putVoteScratch(bs)
	defer putVoteScratch(ps)
	for iter := 0; iter < 600; iter++ {
		names := randWords(rng, 1, 60)
		set := buildSet(names)
		window := randWords(rng, 1, 8)
		switch rng.Intn(4) {
		case 0: // corrupt a token: nonzero distance to every code
			window[rng.Intn(len(window))] += "x"
		case 1: // force a verbatim repeat: the dedup path must collapse it
			window[rng.Intn(len(window))] = window[rng.Intn(len(window))]
		}
		base := rng.Intn(5)
		k := 1 + rng.Intn(4)
		wantTop, wantPos := ps.runPerToken(window, base, &set, k)
		wantCopy := append([]string(nil), wantTop...)
		gotTop, gotPos := bs.run(window, base, &set, k)
		if !reflect.DeepEqual(append([]string(nil), gotTop...), wantCopy) || gotPos != wantPos {
			t.Fatalf("batched vote diverged from per-token walker\nwindow=%q entries=%d k=%d\n per-token: top=%q pos=%d\n batched:   top=%q pos=%d",
				window, len(set.entries), k, wantCopy, wantPos, gotTop, gotPos)
		}
	}
}

// TestVoteScratchReuseAcrossSets reuses one scratch against sets of very
// different sizes back-to-back: a stale slot row surviving the end-of-run
// reset would corrupt the smaller set's counters.
func TestVoteScratchReuseAcrossSets(t *testing.T) {
	big := buildSet(randWords(rand.New(rand.NewSource(5)), 80, 120))
	small := buildSet([]string{"Jon", "Smith"})
	s := getVoteScratch()
	defer putVoteScratch(s)
	for i := 0; i < 3; i++ {
		s.run([]string{"jon", "smith", "name"}, 0, &big, 3)
		wantTop, wantPos := voteNaive([]string{"jon"}, 2, small.entries, 2)
		gotTop, gotPos := s.run([]string{"jon"}, 2, &small, 2)
		if !reflect.DeepEqual(append([]string(nil), gotTop...), wantTop) || gotPos != wantPos {
			t.Fatalf("iteration %d: scratch reuse diverged: got %q pos=%d, want %q pos=%d",
				i, gotTop, gotPos, wantTop, wantPos)
		}
	}
}
