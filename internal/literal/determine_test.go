package literal

import (
	"strings"
	"testing"

	"speakql/internal/grammar"
)

func employeesCatalog() *Catalog {
	return NewCatalog(
		[]string{"Employees", "Salaries", "Titles", "DepartmentEmployee", "DepartmentManager", "Departments"},
		[]string{"FirstName", "LastName", "Salary", "Gender", "BirthDate", "HireDate",
			"FromDate", "ToDate", "Title", "EmployeeNumber", "DepartmentNumber", "DepartmentName"},
		[]string{"John", "Jon", "Karsten", "Tomokazu", "Goh", "Narain", "Perla",
			"Shimshon", "Engineer", "Senior Engineer", "Staff", "M", "F", "d002", "d005"},
	)
}

func fields(s string) []string { return strings.Fields(s) }

func TestCatalogBasics(t *testing.T) {
	c := employeesCatalog()
	if len(c.Tables()) != 6 {
		t.Errorf("Tables = %v", c.Tables())
	}
	if !c.HasTable("employees") || c.HasTable("Nope") {
		t.Error("HasTable wrong")
	}
	if !c.HasAttribute("salary") {
		t.Error("HasAttribute wrong")
	}
	// Duplicates collapse.
	d := NewCatalog([]string{"A", "A", ""}, nil, nil)
	if len(d.Tables()) != 1 {
		t.Errorf("duplicate tables kept: %v", d.Tables())
	}
}

// The running example of Figure 4: TransOut "SELECT first name FROM
// employers", BestStruct "SELECT x1 FROM x2" → x1=FirstName, x2=Employees.
func TestFigure4(t *testing.T) {
	c := employeesCatalog()
	bs := Determine(
		fields("SELECT first name FROM employers"),
		fields("SELECT x1 FROM x2"),
		c, 3)
	if len(bs) != 2 {
		t.Fatalf("got %d bindings", len(bs))
	}
	if bs[0].Best() != "FirstName" {
		t.Errorf("x1 = %q (topk %v), want FirstName", bs[0].Best(), bs[0].TopK)
	}
	if bs[0].Category != grammar.CatAttr {
		t.Errorf("x1 category = %v", bs[0].Category)
	}
	if bs[1].Best() != "Employees" {
		t.Errorf("x2 = %q (topk %v), want Employees", bs[1].Best(), bs[1].TopK)
	}
	if bs[1].Category != grammar.CatTable {
		t.Errorf("x2 category = %v", bs[1].Category)
	}
}

// Appendix E.2 Example 1: enumerated strings {FRONT, DATE, FRONTDATE}
// against {FROMDATE, TODATE} must pick FROMDATE by voting, even though the
// single pair (DATE, TODATE) has the minimum distance.
func TestVotingExample1(t *testing.T) {
	cat := NewCatalog(nil, []string{"FromDate", "ToDate"}, nil)
	bs := Determine(
		fields("SELECT front date FROM x"),
		fields("SELECT x1 FROM x2"),
		cat, 2)
	if bs[0].Best() != "FromDate" {
		t.Errorf("Example 1: got %q (topk %v), want FromDate", bs[0].Best(), bs[0].TopK)
	}
}

// Appendix E.2 Example 2: {RUM, DATE, RUMDATE} must also resolve to
// FROMDATE — RUM breaks the tie.
func TestVotingExample2(t *testing.T) {
	cat := NewCatalog(nil, []string{"FromDate", "ToDate"}, nil)
	bs := Determine(
		fields("SELECT rum date FROM x"),
		fields("SELECT x1 FROM x2"),
		cat, 2)
	if bs[0].Best() != "FromDate" {
		t.Errorf("Example 2: got %q (topk %v), want FromDate", bs[0].Best(), bs[0].TopK)
	}
}

func TestRunningExampleEndToEnd(t *testing.T) {
	// Figure 2: "select sales from employers wear name equals Jon" with
	// structure SELECT x1 FROM x2 WHERE x3 = x4.
	c := employeesCatalog()
	bs := Determine(
		fields("SELECT sales FROM employers wear name = Jon"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"),
		c, 3)
	if len(bs) != 4 {
		t.Fatalf("got %d bindings: %+v", len(bs), bs)
	}
	if bs[0].Best() != "Salary" {
		t.Errorf("x1 = %q, want Salary (phonetically closest to sales)", bs[0].Best())
	}
	if bs[1].Best() != "Employees" {
		t.Errorf("x2 = %q, want Employees", bs[1].Best())
	}
	// x3's window contains "wear name": voting should find a name-ish
	// attribute. FirstName or LastName both acceptable.
	if x3 := bs[2].Best(); !strings.Contains(x3, "Name") {
		t.Errorf("x3 = %q, want a *Name attribute", x3)
	}
	if bs[3].Best() != "Jon" {
		t.Errorf("x4 = %q, want Jon", bs[3].Best())
	}
}

func TestNumberMerging(t *testing.T) {
	c := employeesCatalog()
	// ASR re-segmented 45310 into "45000 310" (Table 1).
	bs := Determine(
		fields("SELECT salary FROM salaries WHERE salary > 45000 310"),
		fields("SELECT x1 FROM x2 WHERE x3 > x4"),
		c, 1)
	if got := bs[3].Best(); got != "45310" {
		t.Errorf("merged number = %q, want 45310", got)
	}
	// Digit-split "1 7 2 9".
	bs = Determine(
		fields("SELECT salary FROM salaries WHERE id = 1 7 2 9"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"),
		c, 1)
	if got := bs[3].Best(); got != "1729" {
		t.Errorf("digit-merged number = %q, want 1729", got)
	}
	// Spoken words that survived ITN-less.
	bs = Determine(
		fields("SELECT salary FROM salaries WHERE salary > seventy thousand"),
		fields("SELECT x1 FROM x2 WHERE x3 > x4"),
		c, 1)
	if got := bs[3].Best(); got != "70000" {
		t.Errorf("spoken number = %q, want 70000", got)
	}
}

func TestDateReassembly(t *testing.T) {
	c := employeesCatalog()
	// Normalized ASR date.
	bs := Determine(
		fields("SELECT fromdate FROM salaries WHERE fromdate = january 20 1993"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"),
		c, 1)
	if got := bs[3].Best(); got != "1993-01-20" {
		t.Errorf("date = %q, want 1993-01-20", got)
	}
	// Mangled Table 1 date.
	bs = Determine(
		fields("SELECT fromdate FROM salaries WHERE fromdate = may 07 90 91"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"),
		c, 1)
	if got := bs[3].Best(); got != "1991-05-07" {
		t.Errorf("mangled date = %q, want 1991-05-07", got)
	}
	// Spoken-word date.
	bs = Determine(
		fields("SELECT fromdate FROM salaries WHERE fromdate = march twentieth nineteen ninety"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"),
		c, 1)
	if got := bs[3].Best(); got != "1990-03-20" {
		t.Errorf("spoken date = %q, want 1990-03-20", got)
	}
}

func TestLimitBinding(t *testing.T) {
	c := employeesCatalog()
	bs := Determine(
		fields("SELECT star FROM employees LIMIT 10"),
		fields("SELECT x1 FROM x2 LIMIT x3"),
		c, 1)
	last := bs[len(bs)-1]
	if last.Category != grammar.CatLimit || last.Best() != "10" {
		t.Errorf("limit binding = %+v", last)
	}
}

func TestInListValues(t *testing.T) {
	c := employeesCatalog()
	bs := Determine(
		fields("SELECT fromdate FROM employees WHERE firstname IN ( tomokazu , go , narain )"),
		fields("SELECT x1 FROM x2 WHERE x3 IN ( x4 , x5 , x6 )"),
		c, 1)
	if len(bs) != 6 {
		t.Fatalf("got %d bindings", len(bs))
	}
	if bs[3].Best() != "Tomokazu" {
		t.Errorf("x4 = %q", bs[3].Best())
	}
	if bs[4].Best() != "Goh" {
		t.Errorf("x5 = %q (heard as 'go')", bs[4].Best())
	}
	if bs[5].Best() != "Narain" {
		t.Errorf("x6 = %q", bs[5].Best())
	}
}

func TestFallbackOnEmptyWindow(t *testing.T) {
	c := employeesCatalog()
	// The transcript is missing everything after FROM; the trailing
	// placeholders must still get deterministic fallback bindings.
	bs := Determine(
		fields("SELECT salary FROM"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"),
		c, 2)
	if len(bs) != 4 {
		t.Fatalf("got %d bindings", len(bs))
	}
	for _, b := range bs[1:] {
		if b.Best() == "" {
			t.Errorf("empty binding for %s", b.Placeholder)
		}
	}
}

func TestTopKRanked(t *testing.T) {
	c := employeesCatalog()
	// "birth date" is a split identifier whose first chunk is not a SQL
	// keyword (unlike "from date", the genuinely-hard Table 1 case).
	bs := Determine(
		fields("SELECT birth date FROM salaries"),
		fields("SELECT x1 FROM x2"),
		c, 3)
	if len(bs[0].TopK) < 2 {
		t.Fatalf("want multiple candidates, got %v", bs[0].TopK)
	}
	if bs[0].TopK[0] != "BirthDate" {
		t.Errorf("top1 = %q, want BirthDate (topk %v)", bs[0].TopK[0], bs[0].TopK)
	}
}

func TestFillAndRenderSQL(t *testing.T) {
	c := employeesCatalog()
	structToks := fields("SELECT x1 FROM x2 WHERE x3 = x4")
	bs := Determine(fields("SELECT salary FROM employees WHERE firstname = Jon"), structToks, c, 1)
	filled := Fill(structToks, bs)
	want := "SELECT Salary FROM Employees WHERE FirstName = Jon"
	if got := strings.Join(filled, " "); got != want {
		t.Errorf("Fill = %q, want %q", got, want)
	}
	sql := RenderSQL(structToks, bs)
	if sql != "SELECT Salary FROM Employees WHERE FirstName = 'Jon'" {
		t.Errorf("RenderSQL = %q", sql)
	}
	// Numeric values are not quoted.
	bs2 := Determine(fields("SELECT salary FROM salaries WHERE salary > 70000"), structToksGT(), c, 1)
	sql2 := RenderSQL(structToksGT(), bs2)
	if sql2 != "SELECT Salary FROM Salaries WHERE Salary > 70000" {
		t.Errorf("RenderSQL numeric = %q", sql2)
	}
}

func structToksGT() []string { return fields("SELECT x1 FROM x2 WHERE x3 > x4") }

func TestMergeNumeral(t *testing.T) {
	cases := []struct {
		acc    int64
		digits string
		want   int64
	}{
		{0, "45000", 45000},
		{45000, "310", 45310},
		{45000, "412", 45412},
		{1, "7", 17},
		{17, "2", 172},
		{172, "9", 1729},
		{45000, "12", 45012},
	}
	acc := int64(0)
	_ = acc
	for _, c := range cases {
		var v int64
		for _, ch := range c.digits {
			v = v*10 + int64(ch-'0')
		}
		if got := mergeNumeral(c.acc, c.digits, v); got != c.want {
			t.Errorf("mergeNumeral(%d,%q) = %d, want %d", c.acc, c.digits, got, c.want)
		}
	}
}

func TestColumnAwareValueVoting(t *testing.T) {
	// Without column domains, "mary" competes against every value in the
	// catalog; with per-column domains, the bound attribute (FirstName)
	// restricts set B to first names.
	global := NewCatalog(
		[]string{"Employees"},
		[]string{"FirstName", "Title"},
		[]string{"Marie", "Mario", "Manager"},
	)
	column := NewCatalog(
		[]string{"Employees"},
		[]string{"FirstName", "Title"},
		[]string{"Marie", "Mario", "Manager"},
	).WithColumnValues(map[string][]string{
		"FirstName": {"Marie"},
		"Title":     {"Manager", "Mario"},
	})
	trans := fields("SELECT firstname FROM employees WHERE firstname = mario")
	structToks := fields("SELECT x1 FROM x2 WHERE x3 = x4")
	bg := Determine(trans, structToks, global, 1)
	bc := Determine(trans, structToks, column, 1)
	if bg[3].Best() != "Mario" {
		t.Errorf("global voting picked %q, want Mario", bg[3].Best())
	}
	// Column-aware: Mario is not in FirstName's domain; Marie is closest.
	if bc[3].Best() != "Marie" {
		t.Errorf("column-aware voting picked %q, want Marie", bc[3].Best())
	}
}

func TestWithColumnValuesFallback(t *testing.T) {
	cat := NewCatalog(nil, []string{"A"}, []string{"Global"}).
		WithColumnValues(map[string][]string{"B": {"Other"}})
	// Attribute A has no column domain → global set used.
	bs := Determine(fields("SELECT a FROM t WHERE a = global"),
		fields("SELECT x1 FROM x2 WHERE x3 = x4"), cat, 1)
	if bs[3].Best() != "Global" {
		t.Errorf("fallback to global set failed: %q", bs[3].Best())
	}
}

func TestMergeNumeralEdgeCases(t *testing.T) {
	cases := []struct {
		acc    int64
		digits string
		v      int64
		want   int64
	}{
		{0, "007", 7, 7},       // zero accumulator adopts the fragment's value
		{7, "007", 7, 7007},    // the fragment's printed width drives the shift,
		{7, "07", 7, 707},      // not its numeric value — "007" shifts by 1000
		{123, "45", 45, 12345}, // no trailing zeros → pure concatenation
		{450, "7", 7, 457},     // fits inside the single trailing zero → added
		{450, "50", 50, 45050}, // too wide for the zeros → concatenated
		{1000, "250", 250, 1250},
		{0, "0", 0, 0},
	}
	for _, c := range cases {
		if got := mergeNumeral(c.acc, c.digits, c.v); got != c.want {
			t.Errorf("mergeNumeral(%d, %q, %d) = %d, want %d", c.acc, c.digits, c.v, got, c.want)
		}
	}
}

func TestDetermineNumberEdgeCases(t *testing.T) {
	cases := []struct {
		window  []string
		base    int
		want    string // "" means: not recognized as a number
		wantPos int
	}{
		// Zero-prefixed numerals parse by value; the leading zeros only
		// matter as concatenation width for later fragments.
		{fields("007"), 0, "7", 0},
		{fields("007 5"), 0, "75", 1},
		// A bare scale word is a complete spoken number.
		{fields("thousand"), 0, "1000", 0},
		{fields("thousand engineer"), 2, "1000", 2},
		// "oh" is the spoken zero.
		{fields("oh"), 0, "0", 0},
		// The numeral run stops at the first non-number token.
		{fields("45000 310 engineer"), 1, "45310", 2},
		// Not numbers at all.
		{fields("engineer"), 0, "", 0},
		{nil, 3, "", 3},
	}
	for _, c := range cases {
		tops, pos := determineNumber(c.window, c.base)
		got := ""
		if len(tops) > 0 {
			got = tops[0]
		}
		if got != c.want || (c.want != "" && pos != c.wantPos) {
			t.Errorf("determineNumber(%q, %d) = (%q, %d), want (%q, %d)",
				c.window, c.base, got, pos, c.want, c.wantPos)
		}
	}
}
