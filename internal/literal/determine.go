package literal

import (
	"sort"
	"strconv"
	"strings"

	"speakql/internal/faultinject"
	"speakql/internal/grammar"
	"speakql/internal/metrics"
	"speakql/internal/phonetic"
	"speakql/internal/speech"
	"speakql/internal/sqltoken"
)

// WindowSize bounds the number of consecutive transcript tokens merged into
// one candidate literal (Box 3's WindowSize): ASR splits one SQL token into
// at most a handful of sub-tokens, and identifiers rarely exceed four words.
const WindowSize = 4

// Binding is the ranked literal assignment for one placeholder variable.
type Binding struct {
	Placeholder string           // e.g. "x1"
	Category    grammar.Category // T, A, V, or N
	TopK        []string         // ranked candidates, best first
	Begin, End  int              // transcript window [Begin, End) used
}

// Best returns the top candidate, or "" when none was found.
func (b Binding) Best() string {
	if len(b.TopK) == 0 {
		return ""
	}
	return b.TopK[0]
}

// Determine maps every placeholder in bestStruct to a ranked literal list
// (Box 3's LiteralFinder). transOut is the processed transcript; k is the
// number of candidates retained per placeholder.
//
// Window assignment follows the paper's EndIndex rule — a placeholder's
// window runs to the transcript position of the structure's next
// non-literal token — made robust to corrupted anchors (WHERE heard as
// "wear") by aligning the structure's keyword/splchar anchors with the
// transcript's via a longest common subsequence. Placeholders whose
// surrounding anchors were lost share one transcript gap; each then
// consumes tokens up to its winning vote's position, always reserving at
// least one token per remaining placeholder in the gap.
func Determine(transOut, bestStruct []string, cat *Catalog, k int) []Binding {
	bs, _ := DetermineErr(transOut, bestStruct, cat, k)
	return bs
}

// DetermineErr is Determine with an error channel. Today the only error
// source is the stage's fault-injection hook (rehearsing a failed literal
// backend); the engine degrades a failed fill to a structure-only response
// rather than dropping the request.
func DetermineErr(transOut, bestStruct []string, cat *Catalog, k int) ([]Binding, error) {
	return DetermineMemoErr(transOut, bestStruct, cat, k, nil)
}

// DetermineMemoErr is DetermineErr with a per-session VoteMemo: voting work
// for windows already scored in an earlier fragment of the same dictation is
// replayed from the memo instead of recomputed. memo may be nil (no
// memoization); results are bit-identical either way.
func DetermineMemoErr(transOut, bestStruct []string, cat *Catalog, k int, memo *VoteMemo) ([]Binding, error) {
	if err := faultinject.Fire(faultinject.StageLiteral); err != nil {
		return nil, err
	}
	if k < 1 {
		k = 1
	}
	cats := grammar.AssignCategories(bestStruct)
	gaps := alignGaps(transOut, bestStruct)
	var bindings []Binding
	ci := 0
	lastAttr := "" // most recent A-binding; scopes column-aware value voting
	for pi, tok := range bestStruct {
		if sqltoken.Classify(tok) != sqltoken.Literal {
			continue
		}
		category := cats[ci]
		ci++
		g := gaps[pi]
		begin, end := g.cursor(), g.end
		// Reserve one token per placeholder still waiting in this gap.
		usable := end - g.reserve()
		if usable < begin {
			usable = begin
		}
		// The window is the whole gap slice, including unmatched dictionary
		// tokens: a keyword inside a gap is most likely a homophone-
		// corrupted literal fragment (Table 1's "fromdate" → "from date"),
		// so it must stay available as voting material. This deliberately
		// extends Box 3's EnumerateStrings, which skips dictionary tokens.
		b := Binding{Placeholder: tok, Category: category, Begin: begin, End: usable}
		window := transOut[begin:usable]
		var consumedTo int
		switch category {
		case grammar.CatValue:
			b.TopK, consumedTo = determineValue(window, begin, cat, lastAttr, k, memo)
		case grammar.CatLimit:
			b.TopK, consumedTo = determineNumber(window, begin)
		case grammar.CatTable:
			b.TopK, consumedTo = voteMemo(window, begin, &cat.tables, k, cat.noIndex, memo)
		default:
			b.TopK, consumedTo = voteMemo(window, begin, &cat.attrs, k, cat.noIndex, memo)
			lastAttr = b.Best()
		}
		if len(b.TopK) == 0 {
			// Nothing usable in the window (e.g. the transcript dropped the
			// token). Fall back to the lexicographically-first catalog
			// literal of the right category so the query stays executable;
			// the interactive interface lets the user fix it.
			b.TopK = fallback(category, cat, k)
			consumedTo = begin - 1
		}
		bindings = append(bindings, b)
		g.advance(consumedTo + 1)
	}
	return bindings, nil
}

// gap is one transcript span shared by one or more placeholders.
type gap struct {
	begin, end int // transcript token range [begin, end)
	members    int // placeholders assigned to this gap
	done       int // placeholders already bound
	pos        int // consumption cursor
}

func (g *gap) cursor() int { return g.pos }

func (g *gap) reserve() int { return g.members - g.done - 1 }

func (g *gap) advance(to int) {
	g.done++
	if to > g.pos {
		g.pos = to
	}
	if g.pos < g.begin {
		g.pos = g.begin
	}
	if g.pos > g.end {
		g.pos = g.end
	}
}

// alignGaps matches the structure's non-literal anchor tokens against the
// transcript's by LCS and returns, for each placeholder position in the
// structure, its (shared) transcript gap.
func alignGaps(transOut, bestStruct []string) map[int]*gap {
	type anchor struct {
		tok string
		pos int
	}
	var sa, ta []anchor
	for i, t := range bestStruct {
		if sqltoken.Classify(t) != sqltoken.Literal {
			sa = append(sa, anchor{strings.ToUpper(t), i})
		}
	}
	for i, t := range transOut {
		if sqltoken.Classify(t) != sqltoken.Literal {
			ta = append(ta, anchor{strings.ToUpper(t), i})
		}
	}
	// LCS over anchor token strings.
	n, m := len(sa), len(ta)
	dp := make([][]int16, n+1)
	for i := range dp {
		dp[i] = make([]int16, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if sa[i].tok == ta[j].tok {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	// matchTrans[si] = transcript position of the matched anchor. When an
	// anchor could match several transcript tokens without shrinking the
	// LCS (two FROMs because an identifier's "from" fragment was heard as
	// the keyword), prefer the later one: that keeps the earlier token
	// inside the preceding placeholder's window, where it belongs.
	matchTrans := make(map[int]int) // struct pos → trans pos
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case sa[i].tok == ta[j].tok && dp[i][j] == dp[i+1][j+1]+1 && dp[i][j] > dp[i][j+1]:
			matchTrans[sa[i].pos] = ta[j].pos
			i++
			j++
		case dp[i+1][j] > dp[i][j+1]:
			i++
		default:
			j++
		}
	}

	// For each placeholder, find the nearest matched anchors on both sides.
	gaps := make(map[int]*gap)
	byRange := make(map[[2]int]*gap)
	for p, t := range bestStruct {
		if sqltoken.Classify(t) != sqltoken.Literal {
			continue
		}
		lo := 0
		for s := p - 1; s >= 0; s-- {
			if tp, ok := matchTrans[s]; ok {
				lo = tp + 1
				break
			}
		}
		hi := len(transOut)
		for s := p + 1; s < len(bestStruct); s++ {
			if tp, ok := matchTrans[s]; ok {
				hi = tp
				break
			}
		}
		key := [2]int{lo, hi}
		g, ok := byRange[key]
		if !ok {
			g = &gap{begin: lo, end: hi, pos: lo}
			byRange[key] = g
		}
		g.members++
		gaps[p] = g
	}
	return gaps
}

// vote implements the literal-voting algorithm of Section 4.3 / Box 3's
// LiteralAssignment over one transcript window: every enumerated substring
// (phonetically encoded) votes for its closest catalog entries; the entry
// with the most votes wins. Vote ties break first by raw character edit
// distance to the heard text (so "Jon" beats "John" when the transcript
// says "Jon"), then lexicographically. Returns the ranked top-k and the
// transcript position consumed.
//
// The work runs on the set's phonetic BK-tree through a pooled scratch
// (votescratch.go) unless naive is set, which restores the pre-index full
// scan; both paths return bit-identical results.
func vote(window []string, base int, set *catSet, k int, naive bool) ([]string, int) {
	if len(window) == 0 || len(set.entries) == 0 {
		return nil, base
	}
	if naive || len(set.bk) == 0 {
		return voteNaive(window, base, set.entries, k)
	}
	s := getVoteScratch()
	top, pos := s.run(window, base, set, k)
	var out []string
	if len(top) > 0 {
		out = make([]string, len(top))
		copy(out, top) // scratch-backed; copy before recycling
	}
	putVoteScratch(s)
	return out, pos
}

// voteNaive is the full-scan reference implementation the BK-indexed
// kernel is differentially tested against (TestVoteIndexMatchesNaive): it
// compares every candidate substring with every entry in the set. Keep its
// semantics frozen — tie-break rules included — when touching the kernel.
func voteNaive(window []string, base int, entries []entry, k int) ([]string, int) {
	if len(window) == 0 || len(entries) == 0 {
		return nil, base
	}
	type cand struct {
		enc string
		raw string
		pos int // last transcript index covered (absolute)
	}
	var cands []cand
	for i := 0; i < len(window); i++ {
		var raw strings.Builder
		for j := i; j < len(window) && j-i < WindowSize; j++ {
			raw.WriteString(strings.ToLower(window[j]))
			// Encode the joined fragment as one word so multi-token
			// fragments match identifiers exactly (see phonetic.EncodeTokens).
			cands = append(cands, cand{
				enc: phonetic.Encode(raw.String()),
				raw: raw.String(),
				pos: base + j,
			})
		}
	}

	count := make([]int, len(entries))
	loc := make([]int, len(entries))
	bestDist := make([]int, len(entries))
	minRaw := make([]int, len(entries))
	for i := range loc {
		loc[i] = base - 1
		bestDist[i] = 1 << 30
		minRaw[i] = 1 << 30
	}
	for _, a := range cands {
		best := 1 << 30
		var winners []int
		for bi, b := range entries {
			d := metrics.CharEditDistance(a.enc, b.Phonetic)
			if d < best {
				best = d
				winners = winners[:0]
				winners = append(winners, bi)
			} else if d == best {
				winners = append(winners, bi)
			}
		}
		for _, w := range winners {
			count[w]++
			// Consume the transcript only up to the span that best matches
			// the winning literal — not the farthest voting span, which
			// would swallow the next placeholder's tokens in shared gaps.
			if best < bestDist[w] || (best == bestDist[w] && a.pos > loc[w]) {
				bestDist[w] = best
				loc[w] = a.pos
			}
			if rd := metrics.CharEditDistance(a.raw, strings.ToLower(entries[w].Name)); rd < minRaw[w] {
				minRaw[w] = rd
			}
		}
	}

	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		cx, cy := order[x], order[y]
		if count[cx] != count[cy] {
			return count[cx] > count[cy]
		}
		if minRaw[cx] != minRaw[cy] {
			return minRaw[cx] < minRaw[cy]
		}
		return entries[cx].Name < entries[cy].Name
	})
	top := make([]string, 0, k)
	for _, i := range order {
		if count[i] == 0 || len(top) == k {
			break
		}
		top = append(top, entries[i].Name)
	}
	if len(top) == 0 {
		return nil, base
	}
	winnerIdx := order[0]
	return top, loc[winnerIdx]
}

// determineValue fills a V-type placeholder: dates and numbers are
// reassembled from the transcript (they are not in the phonetic catalog),
// everything else goes to string voting — against the bound attribute's own
// column domain when the catalog carries one (column-aware extension), else
// the global value set.
func determineValue(window []string, base int, cat *Catalog, lastAttr string, k int, memo *VoteMemo) ([]string, int) {
	if len(window) == 0 {
		return nil, base
	}
	values := &cat.values
	if col, ok := cat.columnValues(lastAttr); ok {
		values = col
	}
	// Date: month name or a full date literal anywhere in the window.
	if hasMonthOrDate(window) {
		if d, used, ok := parseDateWindow(window); ok {
			return []string{d.String()}, base + used - 1
		}
	}
	// Exact code assembly: identifier-style values like d002 are spoken as
	// letter + digit words; reassemble prefixes of the window and accept an
	// exact (case-insensitive) catalog hit before any fuzzy matching.
	if name, used, ok := assembleCode(window, values); ok {
		return []string{name}, base + used - 1
	}
	// Number: numeral tokens or spoken number words.
	if tops, end := determineNumber(window, base); len(tops) > 0 {
		return tops, end
	}
	return voteMemo(window, base, values, k, cat.noIndex, memo)
}

// determineNumber recognizes a numeric value at the head of the window,
// merging ASR-resegmented numerals ("45000 310" → 45310, "1 7 2 9" → 1729)
// and parsing spoken number words. Returns nil when the head is not
// numeric.
func determineNumber(window []string, base int) ([]string, int) {
	if len(window) == 0 {
		return nil, base
	}
	// Numeral run.
	if isNumeral(window[0]) {
		n := int64(0)
		i := 0
		for i < len(window) && isNumeral(window[i]) {
			v, _ := strconv.ParseInt(window[i], 10, 64)
			n = mergeNumeral(n, window[i], v)
			i++
		}
		return []string{strconv.FormatInt(n, 10)}, base + i - 1
	}
	// Spoken number words.
	run := 0
	for run < len(window) {
		if _, ok := speech.WordsToNumber(window[run : run+1]); !ok &&
			!isScaleWord(window[run]) {
			break
		}
		run++
	}
	if run == 0 {
		return nil, base
	}
	if v, ok := speech.WordsToNumber(window[:run]); ok {
		return []string{strconv.FormatInt(v, 10)}, base + run - 1
	}
	return nil, base
}

// mergeNumeral folds the next numeral fragment into the accumulator: if it
// fits inside the accumulator's trailing zeros it is added (45000 + 310),
// otherwise the decimal digits are concatenated (1 · 7 → 17).
func mergeNumeral(acc int64, digits string, v int64) int64 {
	if acc == 0 {
		return v
	}
	zeros := int64(1)
	s := strconv.FormatInt(acc, 10)
	for i := len(s) - 1; i >= 0 && s[i] == '0'; i-- {
		zeros *= 10
	}
	if v < zeros {
		return acc + v
	}
	shift := int64(1)
	for range digits {
		shift *= 10
	}
	return acc*shift + v
}

// assembleCode concatenates window prefixes with single-digit number words
// folded to digits ("d zero zero two" → "d", "d0", "d00", "d002") and
// returns the first exact case-insensitive catalog match, longest prefix
// first. Each prefix probes the set's lowered-name map instead of
// rescanning the value slice, so a miss costs O(window), not
// O(window × catalog).
func assembleCode(window []string, values *catSet) (string, int, bool) {
	limit := len(window)
	if limit > 2*WindowSize {
		limit = 2 * WindowSize
	}
	built := make([]string, 0, limit)
	var sb strings.Builder
	for i := 0; i < limit; i++ {
		w := strings.ToLower(window[i])
		if n, ok := speech.WordsToNumber([]string{w}); ok && n <= 9 {
			sb.WriteString(strconv.FormatInt(n, 10))
		} else {
			sb.WriteString(w)
		}
		built = append(built, sb.String())
	}
	for i := len(built) - 1; i >= 0; i-- {
		if ei, ok := values.byLower[built[i]]; ok {
			return values.entries[ei].Name, i + 1, true
		}
	}
	return "", 0, false
}

func isNumeral(tok string) bool {
	if tok == "" {
		return false
	}
	for i := 0; i < len(tok); i++ {
		if tok[i] < '0' || tok[i] > '9' {
			return false
		}
	}
	return true
}

func isScaleWord(w string) bool {
	switch strings.ToLower(w) {
	case "hundred", "thousand", "million", "billion", "oh":
		return true
	}
	return false
}

func hasMonthOrDate(window []string) bool {
	for _, w := range window {
		if speech.MonthNumber(w) != 0 {
			return true
		}
		if _, ok := speech.ParseDateLiteral(w); ok {
			return true
		}
	}
	return false
}

// parseDateWindow recovers a date from the window: a full date literal
// token, or a spoken/mangled month-day-year sequence.
func parseDateWindow(window []string) (speech.Date, int, bool) {
	for i, w := range window {
		if d, ok := speech.ParseDateLiteral(w); ok {
			return d, i + 1, true
		}
	}
	// Try progressively longer spans starting at the month token.
	start := 0
	for start < len(window) && speech.MonthNumber(window[start]) == 0 {
		start++
	}
	if start == len(window) {
		return speech.Date{}, 0, false
	}
	for end := len(window); end > start+1; end-- {
		if d, ok := speech.ParseSpokenDate(window[start:end]); ok {
			return d, end, true
		}
	}
	return speech.Date{}, 0, false
}

func fallback(category grammar.Category, cat *Catalog, k int) []string {
	var es []entry
	switch category {
	case grammar.CatTable:
		es = cat.tables.entries
	case grammar.CatAttr:
		es = cat.attrs.entries
	case grammar.CatValue:
		es = cat.values.entries
	default:
		return []string{"10"} // a LIMIT count must be numeric
	}
	top := make([]string, 0, k)
	for _, e := range es {
		if len(top) == k {
			break
		}
		top = append(top, e.Name)
	}
	return top
}

// Fill substitutes each binding's best literal into the structure and
// returns the completed token sequence (Figure 2's "Filled Literal
// Placeholders"). V-type string values keep their catalog form; rendering
// with quotes is RenderSQL's job.
func Fill(bestStruct []string, bindings []Binding) []string {
	byName := make(map[string]Binding, len(bindings))
	for _, b := range bindings {
		byName[b.Placeholder] = b
	}
	out := make([]string, len(bestStruct))
	for i, tok := range bestStruct {
		if b, ok := byName[tok]; ok && b.Best() != "" {
			out[i] = b.Best()
		} else {
			out[i] = tok
		}
	}
	return out
}

// RenderSQL renders the filled token sequence as a SQL string, quoting
// attribute values that are not plain numbers.
func RenderSQL(bestStruct []string, bindings []Binding) string {
	byName := make(map[string]Binding, len(bindings))
	for _, b := range bindings {
		byName[b.Placeholder] = b
	}
	parts := make([]string, 0, len(bestStruct))
	for _, tok := range bestStruct {
		b, ok := byName[tok]
		if !ok || b.Best() == "" {
			parts = append(parts, tok)
			continue
		}
		v := b.Best()
		if b.Category == grammar.CatValue && !isNumeral(v) {
			v = "'" + v + "'"
		}
		parts = append(parts, v)
	}
	return strings.Join(parts, " ")
}
