package literal

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func testCatalog() *Catalog {
	return NewCatalog(
		[]string{"Employees", "Departments", "Salaries"},
		[]string{"FirstName", "LastName", "Salary", "City"},
		[]string{"John", "Jon", "Smith", "Phoenix", "d001", "d002"},
	).WithColumnValues(map[string][]string{
		"City":      {"Phoenix", "Tempe", "Mesa"},
		"FirstName": {"John", "Jon", "Joan"},
	})
}

// TestCatalogRoundTrip pins that a reloaded catalog is observably identical
// to the original: same name lists, same column domains, and bit-identical
// vote rankings on both voting paths.
func TestCatalogRoundTrip(t *testing.T) {
	cat := testCatalog()
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, cat); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got.Tables(), cat.Tables()) ||
		!reflect.DeepEqual(got.Attributes(), cat.Attributes()) ||
		!reflect.DeepEqual(got.Values(), cat.Values()) {
		t.Fatalf("name lists differ after round trip")
	}
	for _, set := range []struct {
		name      string
		got, want *catSet
	}{
		{"tables", &got.tables, &cat.tables},
		{"attrs", &got.attrs, &cat.attrs},
		{"values", &got.values, &cat.values},
	} {
		requireSetInvariants(t, set.got)
		if !reflect.DeepEqual(set.got.groups, set.want.groups) {
			t.Fatalf("%s: group layout differs", set.name)
		}
		if !reflect.DeepEqual(set.got.bk, set.want.bk) {
			t.Fatalf("%s: BK-tree shape differs after reload", set.name)
		}
	}
	city, ok := got.columnValues("city")
	if !ok {
		t.Fatalf("column domain lost")
	}
	requireSetInvariants(t, city)
	rng := rand.New(rand.NewSource(11))
	sameRankings(t, &got.values, &cat.values, rng)
}

// TestCatalogRoundTripAfterDelta pins that persisting an incrementally
// updated catalog (whose group order is a sorted prefix plus appended new
// codes) reloads with the same group order and tree shape.
func TestCatalogRoundTripAfterDelta(t *testing.T) {
	cat, _ := testCatalog().ApplyDelta(CatalogDelta{
		AddValues:    []string{"Zyzzyx", "Quartz"},
		RemoveValues: []string{"Smith"},
	})
	var buf bytes.Buffer
	if err := WriteCatalog(&buf, cat); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got.values.groups, cat.values.groups) {
		t.Fatalf("group order not preserved across reload")
	}
	if !reflect.DeepEqual(got.values.bk, cat.values.bk) {
		t.Fatalf("BK shape not reproduced across reload")
	}
	requireSetInvariants(t, &got.values)
}

// TestReadCatalogRejectsHostileInput hand-crafts the corruption classes the
// registry must survive: truncation, bad magic, lying counts, empty and
// duplicate groups, out-of-range members, mismatched codes.
func TestReadCatalogRejectsHostileInput(t *testing.T) {
	var valid bytes.Buffer
	if err := WriteCatalog(&valid, testCatalog()); err != nil {
		t.Fatalf("write: %v", err)
	}
	vb := valid.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTACATALOG"),
		"bad version": append([]byte(catalogMagic), 0x63),
		"magic only":  []byte(catalogMagic),
		// A header claiming 2^40 entries with no data behind it must error
		// after bounded work, not allocate.
		"huge entry count": append([]byte(catalogMagic), 0x02, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02),
		// Entry whose name length claims 2^30 bytes.
		"huge string": append([]byte(catalogMagic), 0x02, 0x01, 0x80, 0x80, 0x80, 0x80, 0x04),
	}
	for i := 1; i < len(vb); i += 7 {
		cases["truncated@"+string(rune('0'+i%10))] = vb[:i]
	}
	for name, data := range cases {
		if _, err := ReadCatalog(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
	}

	// Structured corruptions: serialize tiny sets by hand.
	str := func(s string) []byte { return append([]byte{byte(len(s))}, s...) }
	hand := func(parts ...[]byte) []byte {
		out := append([]byte(catalogMagic), 0x02)
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	// One entry "A" code "A"; then malformed group sections.
	entryA := append([]byte{0x01}, append(str("A"), str("A")...)...)
	structured := map[string][]byte{
		// groups=1 {code "A", num 0} — empty group.
		"empty group": hand(entryA, []byte{0x01}, str("A"), []byte{0x00}),
		// groups=2, both code "A" num … — duplicate code (sizes lie too).
		"dup group": hand(entryA, []byte{0x02}, str("A"), []byte{0x01}, str("A"), []byte{0x01}),
		// group sizes exceed entries.
		"oversized group": hand(entryA, []byte{0x01}, str("A"), []byte{0x05}),
		// member index out of range.
		"member range": hand(entryA, []byte{0x01}, str("A"), []byte{0x01}, []byte{0x09}),
		// member filed under the wrong code.
		"wrong code": hand(entryA, []byte{0x01}, str("B"), []byte{0x01}, []byte{0x00}),
		// unsorted entries.
		"unsorted": hand(append([]byte{0x02},
			append(append(str("B"), str("B")...), append(str("A"), str("A")...)...)...)),
	}
	for name, data := range structured {
		if _, err := ReadCatalog(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile input accepted", name)
		}
	}
}

// FuzzReadCatalog asserts ReadCatalog never panics and that anything it
// accepts satisfies the voting invariants.
func FuzzReadCatalog(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteCatalog(&valid, testCatalog())
	f.Add(valid.Bytes())
	var tiny bytes.Buffer
	_ = WriteCatalog(&tiny, NewCatalog(nil, nil, nil))
	f.Add(tiny.Bytes())
	f.Add([]byte(catalogMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		cat, err := ReadCatalog(bytes.NewReader(data))
		if err != nil {
			return
		}
		requireSetInvariants(t, &cat.tables)
		requireSetInvariants(t, &cat.attrs)
		requireSetInvariants(t, &cat.values)
	})
}
