// BK-tree over a category set's distinct phonetic codes (Burkhard–Keller,
// 1973). Levenshtein distance is a metric, so for a query q, a node code c,
// and any code x in the subtree hanging off c's child at edge e —
// dist(c, x) == e by construction — the triangle inequality gives
// dist(q, x) ≥ |dist(q, c) − e|. Nearest-code search therefore only
// descends into children whose edge lies within the current best radius of
// dist(q, c), skipping entire subtrees the naive scan would visit.
//
// The tree is built once at catalog-construction time and laid out flat in
// a slice (first-child/next-sibling links), so searches traverse with an
// int32 stack and zero pointer chasing — the same arena discipline as the
// trie index's frozen kernel (DESIGN.md §7).

package literal

import "speakql/internal/metrics"

// bkNode is one BK-tree node covering one phonetic group.
type bkNode struct {
	group       int32 // index into catSet.groups
	firstChild  int32 // index of first child, -1 when leaf
	nextSibling int32 // next node sharing this node's parent, -1 at end
	edge        int32 // edit distance to the parent's code
	maxChild    int32 // max edge among direct children (0 for a leaf); lets
	// the search bound its distance computation: if
	// dist(q, code) > radius+maxChild, neither this node
	// nor any child subtree can hold a nearest code.
}

// buildBK indexes the groups' codes by inserting them in group order, which
// fixes the tree shape — searches are deterministic regardless of shape.
// buildSet sorts groups by code; incrementally-updated sets may carry a
// sorted prefix plus appended new codes (see update.go), which is equally
// valid. Node 0 is the root.
func buildBK(groups []phoneGroup) []bkNode {
	if len(groups) == 0 {
		return nil
	}
	nodes := make([]bkNode, 0, len(groups))
	for gi := range groups {
		nodes = bkInsert(nodes, groups, int32(gi))
	}
	return nodes
}

// bkInsert hangs group gi's code off the tree: descend from the root, at
// each node following the child whose edge equals the code's distance to the
// node, until no such child exists, and append the new node there. Growing
// an existing tree this way is exactly how buildBK built it in the first
// place, so the incremental catalog update (update.go) can copy a set's
// nodes and insert only the genuinely new codes — provided the indices of
// the groups already in the tree have not moved.
func bkInsert(nodes []bkNode, groups []phoneGroup, gi int32) []bkNode {
	if len(nodes) == 0 {
		return append(nodes, bkNode{group: gi, firstChild: -1, nextSibling: -1})
	}
	code := groups[gi].code
	cur := int32(0)
	for {
		d := int32(metrics.CharEditDistance(code, groups[nodes[cur].group].code))
		// Codes are distinct, so d ≥ 1 and the new node never collides
		// with its parent.
		next := int32(-1)
		for ci := nodes[cur].firstChild; ci != -1; ci = nodes[ci].nextSibling {
			if nodes[ci].edge == d {
				next = ci
				break
			}
		}
		if next == -1 {
			nodes = append(nodes, bkNode{
				group:       gi,
				firstChild:  -1,
				nextSibling: nodes[cur].firstChild,
				edge:        d,
			})
			ni := int32(len(nodes) - 1)
			nodes[cur].firstChild = ni
			if d > nodes[cur].maxChild {
				nodes[cur].maxChild = d
			}
			return nodes
		}
		cur = next
	}
}
