package literal

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomNames draws n names from a small alphabet-ish pool so deltas
// collide with existing entries, share phonetic codes, and empty groups
// would be created if the implementation allowed them.
func randomNames(rng *rand.Rand, n int) []string {
	pool := []string{
		"John", "Jon", "Joan", "Jane", "Smith", "Smyth", "Schmidt",
		"Salary", "Celery", "City", "Sity", "Phoenix", "Fenix", "fenix",
		"Employees", "Employers", "Department", "d001", "d002", "Review",
		"Stars", "Star", "Gender", "Genre", "Title", "Total",
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, pool[rng.Intn(len(pool))])
	}
	return out
}

// finalNames computes the name list a delta leaves behind, mirroring
// ApplyDelta's exact-name add/remove semantics.
func finalNames(base, add, remove []string) []string {
	rm := map[string]bool{}
	for _, n := range remove {
		rm[n] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, n := range base {
		if n == "" || rm[n] || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	// Removes apply to the existing catalog, adds after — so a name in both
	// lists ends up present, matching ApplyDelta.
	for _, n := range add {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// requireSetInvariants checks the structural invariants voting depends on.
func requireSetInvariants(t *testing.T, set *catSet) {
	t.Helper()
	for i := 1; i < len(set.entries); i++ {
		if set.entries[i-1].Name >= set.entries[i].Name {
			t.Fatalf("entries not strictly sorted at %d: %q >= %q",
				i, set.entries[i-1].Name, set.entries[i].Name)
		}
	}
	if len(set.members) != len(set.entries) {
		t.Fatalf("members arena has %d slots for %d entries", len(set.members), len(set.entries))
	}
	seen := make([]bool, len(set.entries))
	codes := map[string]bool{}
	total := int32(0)
	for _, g := range set.groups {
		if g.num == 0 {
			t.Fatalf("empty group %q", g.code)
		}
		if codes[g.code] {
			t.Fatalf("duplicate group code %q", g.code)
		}
		codes[g.code] = true
		if g.first != total {
			t.Fatalf("group %q first %d, want %d", g.code, g.first, total)
		}
		total += g.num
		for _, m := range set.members[g.first : g.first+g.num] {
			if seen[m] {
				t.Fatalf("entry %d in two groups", m)
			}
			seen[m] = true
			if set.entries[m].Phonetic != g.code {
				t.Fatalf("entry %q in group %q but encodes to %q",
					set.entries[m].Name, g.code, set.entries[m].Phonetic)
			}
		}
	}
	if int(total) != len(set.entries) {
		t.Fatalf("groups cover %d of %d entries", total, len(set.entries))
	}
	if len(set.groups) > 0 && len(set.bk) != len(set.groups) {
		t.Fatalf("bk has %d nodes for %d groups", len(set.bk), len(set.groups))
	}
}

// sameRankings asserts indexed voting over two sets returns identical
// top-k lists for a spread of windows — the differential acceptance check:
// rankings depend only on the entry population, so an incrementally
// updated set must match a from-scratch rebuild exactly.
func sameRankings(t *testing.T, got, want *catSet, rng *rand.Rand) {
	t.Helper()
	windows := [][]string{
		{"jon"}, {"smith"}, {"celery"}, {"fee", "nix"}, {"d", "zero", "zero", "two"},
		{"employ", "ease"}, {"star"}, {"gen", "der"}, {"total"}, {"sit", "tee"},
		randomNames(rng, 3), randomNames(rng, 2),
	}
	for _, w := range windows {
		for _, k := range []int{1, 3, 5} {
			gotTop, gotPos := vote(w, 0, got, k, false)
			wantTop, wantPos := vote(w, 0, want, k, false)
			if !reflect.DeepEqual(gotTop, wantTop) || gotPos != wantPos {
				t.Fatalf("window %v k=%d: incremental %v@%d, rebuild %v@%d",
					w, k, gotTop, gotPos, wantTop, wantPos)
			}
			naiveTop, naivePos := vote(w, 0, got, k, true)
			if !reflect.DeepEqual(gotTop, naiveTop) || gotPos != naivePos {
				t.Fatalf("window %v k=%d: indexed %v@%d, naive %v@%d",
					w, k, gotTop, gotPos, naiveTop, naivePos)
			}
		}
	}
}

// TestApplyDeltaMatchesRebuild drives random base catalogs through random
// deltas and pins the incremental result against a full rebuild: identical
// entry populations, intact invariants, and bit-identical vote rankings.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		base := randomNames(rng, rng.Intn(12))
		add := randomNames(rng, rng.Intn(6))
		remove := randomNames(rng, rng.Intn(6))
		cat := NewCatalog(nil, nil, base)
		updated, _ := cat.ApplyDelta(CatalogDelta{AddValues: add, RemoveValues: remove})
		rebuilt := NewCatalog(nil, nil, finalNames(base, add, remove))

		gotNames := updated.Values()
		wantNames := rebuilt.Values()
		if len(gotNames) != len(wantNames) || !reflect.DeepEqual(gotNames, wantNames) {
			t.Fatalf("round %d: entries %v, want %v (base=%v add=%v remove=%v)",
				round, gotNames, wantNames, base, add, remove)
		}
		requireSetInvariants(t, &updated.values)
		sameRankings(t, &updated.values, &rebuilt.values, rng)
	}
}

// TestApplyDeltaIsCopyOnWrite pins that the old catalog is untouched and
// that untouched category sets are shared, not copied.
func TestApplyDeltaIsCopyOnWrite(t *testing.T) {
	cat := NewCatalog([]string{"Employees"}, []string{"Salary"}, []string{"John", "Jon"})
	before := cat.Values()
	updated, st := cat.ApplyDelta(CatalogDelta{AddValues: []string{"Joan"}, RemoveValues: []string{"Jon"}})
	if !reflect.DeepEqual(cat.Values(), before) {
		t.Fatalf("receiver mutated: %v -> %v", before, cat.Values())
	}
	if want := []string{"Joan", "John"}; !reflect.DeepEqual(updated.Values(), want) {
		t.Fatalf("updated values %v, want %v", updated.Values(), want)
	}
	if st.Added != 1 || st.Removed != 1 || st.Encoded != 1 {
		t.Fatalf("stats %+v, want 1 added / 1 removed / 1 encoded", st)
	}
	// Untouched sets are shared with the receiver (same backing arrays).
	if len(updated.tables.entries) > 0 && &updated.tables.entries[0] != &cat.tables.entries[0] {
		t.Fatalf("untouched tables set was copied")
	}
	if len(updated.attrs.entries) > 0 && &updated.attrs.entries[0] != &cat.attrs.entries[0] {
		t.Fatalf("untouched attrs set was copied")
	}
}

// TestApplyDeltaBKReuse pins the three BK-tree regimes: membership-only
// change shares the tree, growth copies and inserts, shrinkage rebuilds.
func TestApplyDeltaBKReuse(t *testing.T) {
	// John and Jon share one Metaphone code; adding Jon touches only that
	// group's membership, so the distinct-code set (and the tree) is
	// unchanged.
	cat := NewCatalog(nil, nil, []string{"John", "Smith"})
	grown, st := cat.ApplyDelta(CatalogDelta{AddValues: []string{"Jon"}})
	if st.BKReused != 1 || st.BKInserted != 0 || st.BKRebuilt != 0 {
		t.Fatalf("same-codes delta: stats %+v, want bk_reused=1", st)
	}
	if &grown.values.bk[0] != &cat.values.bk[0] {
		t.Fatalf("same-codes delta: tree not shared")
	}
	if st.Encoded != 1 {
		t.Fatalf("same-codes delta: encoded %d names, want 1", st.Encoded)
	}

	// Phoenix brings a brand-new code: the tree is copied and grown.
	bigger, st := grown.ApplyDelta(CatalogDelta{AddValues: []string{"Phoenix"}})
	if st.BKInserted != 1 || st.BKRebuilt != 0 {
		t.Fatalf("new-code delta: stats %+v, want bk_inserted=1", st)
	}
	if len(bigger.values.bk) != len(grown.values.bk)+1 {
		t.Fatalf("new-code delta: %d nodes, want %d", len(bigger.values.bk), len(grown.values.bk)+1)
	}
	requireSetInvariants(t, &bigger.values)

	// Removing the last member of a code shrinks the distinct-code set:
	// full rebuild (an empty group must never survive).
	smaller, st := bigger.ApplyDelta(CatalogDelta{RemoveValues: []string{"Smith"}})
	if st.BKRebuilt != 1 {
		t.Fatalf("code-loss delta: stats %+v, want bk_rebuilt=1", st)
	}
	requireSetInvariants(t, &smaller.values)
	rng := rand.New(rand.NewSource(3))
	sameRankings(t, &smaller.values, &NewCatalog(nil, nil, []string{"John", "Jon", "Phoenix"}).values, rng)
}

// TestApplyDeltaColumns covers the per-column domains: touched columns are
// rebuilt, untouched ones shared, emptied ones dropped.
func TestApplyDeltaColumns(t *testing.T) {
	cat := NewCatalog(nil, []string{"City", "Gender"}, []string{"Phoenix", "M"}).
		WithColumnValues(map[string][]string{
			"City":   {"Phoenix", "Tempe"},
			"Gender": {"M", "F"},
		})
	up, _ := cat.ApplyDelta(CatalogDelta{
		AddColumnValues:    map[string][]string{"city": {"Mesa"}},
		RemoveColumnValues: map[string][]string{"Gender": {"M", "F"}},
	})
	city, ok := up.columnValues("CITY")
	if !ok {
		t.Fatalf("city column lost")
	}
	if got := names(city.entries); !reflect.DeepEqual(got, []string{"Mesa", "Phoenix", "Tempe"}) {
		t.Fatalf("city domain %v", got)
	}
	requireSetInvariants(t, city)
	if _, ok := up.columnValues("gender"); ok {
		t.Fatalf("emptied gender column should be dropped")
	}
	if got, _ := cat.columnValues("gender"); got == nil {
		t.Fatalf("receiver's gender column mutated")
	}
	// A delta for a column the catalog never had creates it.
	fresh, _ := up.ApplyDelta(CatalogDelta{AddColumnValues: map[string][]string{"Stars": {"4", "5"}}})
	if _, ok := fresh.columnValues("stars"); !ok {
		t.Fatalf("new column not created")
	}
}

// TestApplyDeltaEmpty pins the no-op path.
func TestApplyDeltaEmpty(t *testing.T) {
	cat := NewCatalog([]string{"T"}, nil, nil)
	var d CatalogDelta
	if !d.Empty() {
		t.Fatalf("zero delta not Empty")
	}
	up, st := cat.ApplyDelta(d)
	if st != (UpdateStats{}) {
		t.Fatalf("no-op delta did work: %+v", st)
	}
	if !reflect.DeepEqual(up.Tables(), cat.Tables()) {
		t.Fatalf("no-op delta changed tables")
	}
}

// BenchmarkApplyDeltaIncremental vs BenchmarkRebuildFull documents the
// point of the incremental path at a realistic catalog size.
func BenchmarkApplyDeltaIncremental(b *testing.B) {
	base := make([]string, 0, 5000)
	for i := 0; i < 5000; i++ {
		base = append(base, fmt.Sprintf("value%04d", i))
	}
	cat := NewCatalog(nil, nil, base)
	delta := CatalogDelta{AddValues: []string{"Phoenix", "Tempe", "Mesa"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cat.ApplyDelta(delta)
	}
}

func BenchmarkRebuildFull(b *testing.B) {
	base := make([]string, 0, 5003)
	for i := 0; i < 5000; i++ {
		base = append(base, fmt.Sprintf("value%04d", i))
	}
	base = append(base, "Phoenix", "Tempe", "Mesa")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCatalog(nil, nil, base)
	}
}
