package literal

// persist.go serializes catalogs for the tenant registry's eviction
// protocol: an evicted tenant's catalog is written to disk and lazily
// reloaded on next use. The format follows the repo's persist-v2 arena
// discipline (trieindex/persist.go): entries, groups, and the members
// arena are stored flat; derived state — the lowered-name map, first[]
// offsets, maxCode, and the BK-tree — is rebuilt on load from the stored
// group order, so a reload reproduces the exact tree shape the evicted
// catalog had (including the sorted-prefix-plus-appended order incremental
// updates leave behind) without ever trusting serialized tree links.
//
// ReadCatalog treats its input as hostile: every count is bounded by the
// bytes actually read (slices grow by append, never by a header-sized
// make), and the structural invariants voting depends on — sorted
// deduplicated entries, non-empty groups with distinct codes, members a
// permutation of the entries, codes matching their members' encodings —
// are all validated before the catalog is returned.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"
)

const (
	catalogMagic = "SPQLCT"
	// catalogVersion is 2 from birth: the format is an arena image, the
	// persist-v2 scheme of this repo, and version 1 (a plain name list) was
	// never shipped.
	catalogVersion = 2

	// maxCatalogString bounds one serialized name or code.
	maxCatalogString = 1 << 20
	// preallocHint caps speculative slice capacity before the claimed
	// element count has been paid for with actual input bytes.
	preallocHint = 1 << 12
)

// WriteCatalog serializes c (its entry sets, group layout, and per-column
// domains; the Indexed toggle is a serving-mode choice and is not stored).
func WriteCatalog(w io.Writer, c *Catalog) (err error) {
	bw := bufio.NewWriter(w)
	defer func() {
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
	}()
	if _, err = bw.WriteString(catalogMagic); err != nil {
		return err
	}
	if err = writeCatUvarint(bw, catalogVersion); err != nil {
		return err
	}
	for _, set := range []*catSet{&c.tables, &c.attrs, &c.values} {
		if err = writeCatSet(bw, set); err != nil {
			return err
		}
	}
	if err = writeCatUvarint(bw, uint64(len(c.byAttr))); err != nil {
		return err
	}
	for _, attr := range sortedKeys(c.byAttr) {
		if err = writeCatString(bw, attr); err != nil {
			return err
		}
		if err = writeCatSet(bw, c.byAttr[attr]); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(m map[string]*catSet) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; byAttr maps are small
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// writeCatSet emits one category set: entries (name + cached code), the
// group layout (code + size, in group order), and the members arena.
func writeCatSet(w *bufio.Writer, set *catSet) error {
	if err := writeCatUvarint(w, uint64(len(set.entries))); err != nil {
		return err
	}
	for _, e := range set.entries {
		if err := writeCatString(w, e.Name); err != nil {
			return err
		}
		if err := writeCatString(w, e.Phonetic); err != nil {
			return err
		}
	}
	if err := writeCatUvarint(w, uint64(len(set.groups))); err != nil {
		return err
	}
	for _, g := range set.groups {
		if err := writeCatString(w, g.code); err != nil {
			return err
		}
		if err := writeCatUvarint(w, uint64(g.num)); err != nil {
			return err
		}
	}
	for _, m := range set.members {
		if err := writeCatUvarint(w, uint64(m)); err != nil {
			return err
		}
	}
	return nil
}

// ReadCatalog loads a catalog written by WriteCatalog, validating every
// structural invariant. The returned catalog has voting indexed (callers
// apply their own SetIndexed policy).
func ReadCatalog(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(catalogMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("literal: read magic: %w", err)
	}
	if string(magic) != catalogMagic {
		return nil, fmt.Errorf("literal: not a catalog file")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != catalogVersion {
		return nil, fmt.Errorf("literal: unsupported catalog version %d", version)
	}
	c := &Catalog{}
	for _, dst := range []*catSet{&c.tables, &c.attrs, &c.values} {
		set, err := readCatSet(br)
		if err != nil {
			return nil, err
		}
		*dst = set
	}
	nCols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nCols > 0 {
		c.byAttr = make(map[string]*catSet, min(nCols, preallocHint))
		for i := uint64(0); i < nCols; i++ {
			attr, err := readCatString(br)
			if err != nil {
				return nil, err
			}
			// byAttr keys are lowercased at construction; normalize so a
			// foreign-cased file cannot create an unreachable column set.
			attr = strings.ToLower(attr)
			if _, dup := c.byAttr[attr]; dup {
				return nil, fmt.Errorf("literal: duplicate column %q", attr)
			}
			set, err := readCatSet(br)
			if err != nil {
				return nil, fmt.Errorf("literal: column %q: %w", attr, err)
			}
			sp := new(catSet)
			*sp = set
			c.byAttr[attr] = sp
		}
	}
	return c, nil
}

// readCatSet loads and validates one category set, rebuilding the derived
// state (byLower, first offsets, maxCode, BK-tree) from the stored arrays.
func readCatSet(br *bufio.Reader) (catSet, error) {
	var set catSet
	nEntries, err := binary.ReadUvarint(br)
	if err != nil {
		return set, err
	}
	// Grow by append: each entry costs at least two bytes of input, so a
	// lying header errors after bounded work instead of a giant make.
	entries := make([]entry, 0, min(nEntries, preallocHint))
	for i := uint64(0); i < nEntries; i++ {
		name, err := readCatString(br)
		if err != nil {
			return set, err
		}
		code, err := readCatString(br)
		if err != nil {
			return set, err
		}
		if name == "" {
			return set, fmt.Errorf("literal: empty entry name")
		}
		if len(entries) > 0 && entries[len(entries)-1].Name >= name {
			return set, fmt.Errorf("literal: entries not strictly sorted at %q", name)
		}
		entries = append(entries, entry{Name: name, Lower: strings.ToLower(name), Phonetic: code})
	}
	set.entries = entries
	set.byLower = make(map[string]int32, len(entries))
	for i, e := range entries {
		if _, ok := set.byLower[e.Lower]; !ok {
			set.byLower[e.Lower] = int32(i)
		}
		if len(e.Phonetic) > set.maxCode {
			set.maxCode = len(e.Phonetic)
		}
	}

	nGroups, err := binary.ReadUvarint(br)
	if err != nil {
		return set, err
	}
	if nGroups > nEntries {
		return set, fmt.Errorf("literal: %d groups for %d entries", nGroups, nEntries)
	}
	groups := make([]phoneGroup, 0, min(nGroups, preallocHint))
	codeSeen := make(map[string]bool, min(nGroups, preallocHint))
	total := uint64(0)
	for i := uint64(0); i < nGroups; i++ {
		code, err := readCatString(br)
		if err != nil {
			return set, err
		}
		num, err := binary.ReadUvarint(br)
		if err != nil {
			return set, err
		}
		if num == 0 {
			// An empty group winning a nearest-radius search would yield zero
			// votes and diverge from the naive reference; never admit one.
			return set, fmt.Errorf("literal: empty phonetic group %q", code)
		}
		if codeSeen[code] {
			return set, fmt.Errorf("literal: duplicate phonetic group %q", code)
		}
		codeSeen[code] = true
		total += num
		if total > nEntries {
			return set, fmt.Errorf("literal: group sizes exceed entry count")
		}
		groups = append(groups, phoneGroup{code: code, first: int32(total - num), num: int32(num)})
	}
	if total != nEntries {
		return set, fmt.Errorf("literal: group sizes cover %d of %d entries", total, nEntries)
	}
	members := make([]int32, 0, min(nEntries, preallocHint))
	claimed := make([]bool, nEntries)
	gi := 0
	for i := uint64(0); i < nEntries; i++ {
		m, err := binary.ReadUvarint(br)
		if err != nil {
			return set, err
		}
		if m >= nEntries {
			return set, fmt.Errorf("literal: member index %d out of range", m)
		}
		if claimed[m] {
			return set, fmt.Errorf("literal: entry %d in two groups", m)
		}
		claimed[m] = true
		for uint64(groups[gi].first)+uint64(groups[gi].num) <= i {
			gi++
		}
		if entries[m].Phonetic != groups[gi].code {
			return set, fmt.Errorf("literal: entry %q filed under code %q, encodes to %q",
				entries[m].Name, groups[gi].code, entries[m].Phonetic)
		}
		members = append(members, int32(m))
	}
	set.groups, set.members = groups, members
	set.bk = buildBK(groups)
	set.byCode = buildCodeMap(groups)
	return set, nil
}

func writeCatUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeCatString(w *bufio.Writer, s string) error {
	if err := writeCatUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readCatString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxCatalogString {
		return "", fmt.Errorf("literal: string too long (%d)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
