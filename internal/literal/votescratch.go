// The indexed voting kernel and its pooled scratch. One voteScratch owns
// every piece of per-call working memory — the candidate text/encoding
// arenas, the sparse per-entry counters, the BK traversal frames, and the
// ranking permutation — so a steady-state vote() performs zero heap
// allocations (pinned by TestVoteSteadyStateAllocs, the same discipline as
// the structure search kernel's pooled searcher, DESIGN.md §7).
//
// run is the batched pass of DESIGN.md §12: all candidate substrings of one
// determination are enumerated into shared arenas, deduplicated by phonetic
// encoding, resolved through the exact-code map or one shared BK-tree
// traversal, and only then voted in enumeration order. runPerToken keeps the
// original candidate-at-a-time walker as the frozen differential reference
// (TestVoteBatchMatchesPerToken); both are pinned to the naive full scan by
// TestVoteIndexMatchesNaive.

package literal

import (
	"bytes"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"speakql/internal/metrics"
	"speakql/internal/obs"
	"speakql/internal/phonetic"
)

const sentinelDist = 1 << 30 // "no distance recorded yet"; matches voteNaive

// voteCand is one enumerated window substring: its lowered text and
// phonetic encoding live as [off, end) ranges of the scratch arenas
// (offsets, not subslices, so arena growth cannot invalidate them), plus
// the absolute transcript index of its last token.
type voteCand struct {
	rawOff, rawEnd int32
	encOff, encEnd int32
	pos            int32
}

// voteFrame is one node of the shared BK traversal: the node index plus the
// span [off, off+num) of voteScratch.alive holding the representatives whose
// search radius still reaches this node.
type voteFrame struct {
	node     int32
	off, num int32
}

// voteScratch is the reusable state of one indexed vote.
type voteScratch struct {
	rawBuf []byte // lowered candidate text arena
	encBuf []byte // candidate phonetic-encoding arena
	cands  []voteCand

	// Sparse per-entry counters: slot[e] is 1+ the counter row of entry e,
	// 0 when e has not won any vote this call. Only rows for touched
	// entries exist, so counter work is O(winners), not O(catalog); touched
	// drives the end-of-call reset of slot.
	slot     []int32
	touched  []int32 // entry indices with counter rows, in first-win order
	count    []int32
	bestDist []int32
	minRaw   []int32
	loc      []int32

	stack   []int32 // BK traversal of runPerToken (node indices)
	winners []int32 // runPerToken's group indices at the current best radius
	order   []int32 // ranking permutation over counter rows
	topBuf  []string
	ranker  voteRanker

	// Batched-pass state. Candidates with identical encodings collapse into
	// one representative each; representatives without an exact-code hit
	// ("open") walk the BK-tree together, framed by spans of the alive arena.
	repOf   []int32   // candidate index → representative index
	repCand []int32   // representative index → owning candidate index
	repBest []int32   // representative index → best distance so far
	repDist []int32   // representative index → distance at the expanded node
	repWins [][]int32 // representative index → winning groups at repBest
	open    []int32   // representatives pending BK traversal
	frames  []voteFrame
	alive   []int32 // rep-index arena, spans owned by frames
}

var votePool = sync.Pool{New: func() any { return new(voteScratch) }}

func getVoteScratch() *voteScratch { return votePool.Get().(*voteScratch) }

func putVoteScratch(s *voteScratch) { votePool.Put(s) }

// run votes the window against one indexed category set in one batched
// pass. The returned top-k slice is scratch-backed — callers must copy it
// before the scratch is recycled. Rankings, tie-breaks, and the consumed
// transcript position are bit-identical to runPerToken and voteNaive
// (TestVoteBatchMatchesPerToken, TestVoteIndexMatchesNaive): nearest-code
// search depends only on a candidate's encoding, winner membership is the
// order-independent set of groups at the final best radius, and votes are
// applied in the original enumeration order.
func (s *voteScratch) run(window []string, base int, set *catSet, k int) ([]string, int) {
	s.enumerate(window, base)

	// Deduplicate candidates by phonetic encoding. Window spans repeat
	// ("business" at two transcript positions) and Metaphone collapses
	// near-spellings, so one representative searches for the whole class.
	s.repOf, s.repCand = s.repOf[:0], s.repCand[:0]
	for ci := range s.cands {
		c := &s.cands[ci]
		enc := s.encBuf[c.encOff:c.encEnd]
		rep := int32(-1)
		for ri, oc := range s.repCand {
			o := &s.cands[oc]
			if bytes.Equal(enc, s.encBuf[o.encOff:o.encEnd]) {
				rep = int32(ri)
				break
			}
		}
		if rep < 0 {
			rep = int32(len(s.repCand))
			s.repCand = append(s.repCand, int32(ci))
		}
		s.repOf = append(s.repOf, rep)
	}

	// Resolve representatives whose encoding IS a catalog code: codes are
	// distinct, so the matching group is the unique winner at distance 0 and
	// the radius search is skipped entirely. (The per-token walker reaches
	// the same answer the long way: best tightens to 0 at that node and
	// |d−e| ≤ 0 prunes everything else.) The rest go to the shared
	// traversal. The string(enc) map probe does not allocate.
	var exactHits int64
	s.repBest, s.open = s.repBest[:0], s.open[:0]
	for len(s.repWins) < len(s.repCand) {
		s.repWins = append(s.repWins, nil)
	}
	for len(s.repDist) < len(s.repCand) {
		s.repDist = append(s.repDist, 0)
	}
	for ri, ci := range s.repCand {
		c := &s.cands[ci]
		enc := s.encBuf[c.encOff:c.encEnd]
		s.repWins[ri] = s.repWins[ri][:0]
		if gi, ok := set.byCode[string(enc)]; ok {
			exactHits++
			s.repBest = append(s.repBest, 0)
			s.repWins[ri] = append(s.repWins[ri], gi)
			continue
		}
		// A-priori upper bound on the distance to any code: Levenshtein
		// never exceeds the longer string.
		best := int32(len(enc))
		if int32(set.maxCode) > best {
			best = int32(set.maxCode)
		}
		s.repBest = append(s.repBest, best)
		s.open = append(s.open, int32(ri))
	}

	// Shared BK traversal: every frame carries the representatives still in
	// radius at its node, so the node walk and group loads are paid once per
	// node, not once per candidate. Each rep's distances, bounds, and
	// pruning decisions are its own — the visited set per rep is exactly the
	// solo walker's up to visit order, and winner membership is
	// order-independent (DESIGN.md §12).
	var bkNodes, entriesSeen int64
	if len(s.open) > 0 {
		s.alive = append(s.alive[:0], s.open...)
		s.frames = append(s.frames[:0], voteFrame{node: 0, off: 0, num: int32(len(s.open))})
		for len(s.frames) > 0 {
			f := s.frames[len(s.frames)-1]
			s.frames = s.frames[:len(s.frames)-1]
			// LIFO reclaim: when a frame is popped, every span above its own
			// belongs to an already-finished subtree, so the arena stays
			// bounded by one root-to-leaf path of live spans.
			s.alive = s.alive[:f.off+f.num]
			node := &set.bk[f.node]
			g := &set.groups[node.group]
			bkNodes++
			entriesSeen += int64(g.num) * int64(f.num)
			for idx := f.off; idx < f.off+f.num; idx++ {
				ri := s.alive[idx]
				c := &s.cands[s.repCand[ri]]
				enc := s.encBuf[c.encOff:c.encEnd]
				best := s.repBest[ri]
				// Beyond best+maxChild the exact distance is irrelevant: the
				// node is no winner and every child edge e ≤ maxChild fails
				// |d − e| ≤ best, so the subtree is provably outside this
				// rep's radius and the kernel may exit early.
				d := int32(metrics.CharEditDistanceBounded(enc, g.code, int(best)+int(node.maxChild)))
				if d < best {
					s.repBest[ri] = d
					s.repWins[ri] = append(s.repWins[ri][:0], node.group)
				} else if d == best {
					s.repWins[ri] = append(s.repWins[ri], node.group)
				}
				s.repDist[ri] = d
			}
			for ci := node.firstChild; ci != -1; ci = set.bk[ci].nextSibling {
				e := int32(set.bk[ci].edge)
				off := int32(len(s.alive))
				for idx := f.off; idx < f.off+f.num; idx++ {
					ri := s.alive[idx]
					if d, best := s.repDist[ri], s.repBest[ri]; e >= d-best && e <= d+best {
						s.alive = append(s.alive, ri)
					}
				}
				if num := int32(len(s.alive)) - off; num > 0 {
					s.frames = append(s.frames, voteFrame{node: ci, off: off, num: num})
				}
			}
		}
	}

	obs.Add("literal.vote_calls", 1)
	obs.Add("literal.bk_nodes", bkNodes)
	obs.Add("literal.entries_skipped",
		int64(len(s.cands))*int64(len(set.entries))-entriesSeen)
	obs.Add("literal.enc_dedup_hits", int64(len(s.cands)-len(s.repCand)))
	obs.Add("literal.exact_code_hits", exactHits)

	// Apply votes candidate by candidate, in enumeration order, off the
	// representative's resolved result — the same per-entry updates as the
	// per-token walker and the naive scan.
	s.resetCounters(set)
	for ci := range s.cands {
		c := &s.cands[ci]
		ri := s.repOf[ci]
		s.applyVotes(set, c, int32(base), s.repBest[ri], s.repWins[ri])
	}

	return s.rank(set, base, k)
}

// runPerToken is the original candidate-at-a-time walker, kept verbatim as
// the frozen differential reference for the batched run. Each candidate
// re-walks the BK-tree with its own stack and bound.
func (s *voteScratch) runPerToken(window []string, base int, set *catSet, k int) ([]string, int) {
	s.enumerate(window, base)
	s.resetCounters(set)

	for ci := range s.cands {
		c := &s.cands[ci]
		enc := s.encBuf[c.encOff:c.encEnd]

		// Nearest-code radius search. best starts at an a-priori upper
		// bound on the distance to any code (Levenshtein never exceeds the
		// longer string), so the first node visited already tightens it.
		best := int32(len(enc))
		if int32(set.maxCode) > best {
			best = int32(set.maxCode)
		}
		s.winners = s.winners[:0]
		s.stack = append(s.stack[:0], 0)
		for len(s.stack) > 0 {
			ni := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			node := &set.bk[ni]
			g := &set.groups[node.group]
			d := int32(metrics.CharEditDistanceBounded(enc, g.code, int(best)+int(node.maxChild)))
			if d < best {
				best = d
				s.winners = s.winners[:0]
				s.winners = append(s.winners, node.group)
			} else if d == best {
				s.winners = append(s.winners, node.group)
			}
			lo, hi := d-best, d+best
			for ni := node.firstChild; ni != -1; ni = set.bk[ni].nextSibling {
				if e := int32(set.bk[ni].edge); e >= lo && e <= hi {
					s.stack = append(s.stack, ni)
				}
			}
		}

		s.applyVotes(set, c, int32(base), best, s.winners)
	}

	return s.rank(set, base, k)
}

// enumerate fills the candidate arenas with every window substring, exactly
// voteNaive's (i, j) order — candidate order feeds the position tie-break.
func (s *voteScratch) enumerate(window []string, base int) {
	s.rawBuf, s.encBuf, s.cands = s.rawBuf[:0], s.encBuf[:0], s.cands[:0]
	for i := 0; i < len(window); i++ {
		rawStart := int32(len(s.rawBuf))
		for j := i; j < len(window) && j-i < WindowSize; j++ {
			s.rawBuf = appendLower(s.rawBuf, window[j])
			encOff := int32(len(s.encBuf))
			s.encBuf = phonetic.AppendEncode(s.encBuf, s.rawBuf[rawStart:])
			s.cands = append(s.cands, voteCand{
				rawOff: rawStart, rawEnd: int32(len(s.rawBuf)),
				encOff: encOff, encEnd: int32(len(s.encBuf)),
				pos: int32(base + j),
			})
		}
	}
}

// resetCounters clears the sparse per-entry counter rows for a fresh vote.
func (s *voteScratch) resetCounters(set *catSet) {
	if len(s.slot) < len(set.entries) {
		s.slot = make([]int32, len(set.entries))
	}
	s.touched = s.touched[:0]
	s.count, s.bestDist, s.minRaw, s.loc = s.count[:0], s.bestDist[:0], s.minRaw[:0], s.loc[:0]
}

// applyVotes gives one vote from candidate c to every entry of every
// winning group, with the same per-entry updates as the naive scan.
func (s *voteScratch) applyVotes(set *catSet, c *voteCand, base, best int32, winners []int32) {
	raw := s.rawBuf[c.rawOff:c.rawEnd]
	for _, gi := range winners {
		g := set.groups[gi]
		for _, w := range set.members[g.first : g.first+g.num] {
			si := s.slot[w]
			if si == 0 {
				s.touched = append(s.touched, w)
				s.count = append(s.count, 0)
				s.bestDist = append(s.bestDist, sentinelDist)
				s.minRaw = append(s.minRaw, sentinelDist)
				s.loc = append(s.loc, base-1)
				si = int32(len(s.touched))
				s.slot[w] = si
			}
			si--
			s.count[si]++
			// Consume the transcript only up to the span that best
			// matches the winning literal (see voteNaive).
			if best < s.bestDist[si] || (best == s.bestDist[si] && c.pos > s.loc[si]) {
				s.bestDist[si] = best
				s.loc[si] = c.pos
			}
			// The raw-spelling tie-break: bounded by the current
			// minimum, since only a strictly smaller distance updates
			// it — identical to the naive scan's unbounded minimum.
			if rd := metrics.CharEditDistanceBounded(raw, set.entries[w].Lower, int(s.minRaw[si])); rd < int(s.minRaw[si]) {
				s.minRaw[si] = int32(rd)
			}
		}
	}
}

// rank orders the touched entries — votes desc, raw distance asc, name asc —
// and returns the scratch-backed top-k plus the consumed position. The
// comparator is total (names are unique), so the result matches voteNaive's
// stable sort over the full entry list, whose zero-vote tail never reaches
// the top-k anyway.
func (s *voteScratch) rank(set *catSet, base, k int) ([]string, int) {
	s.order = s.order[:0]
	for i := range s.touched {
		s.order = append(s.order, int32(i))
	}
	s.ranker.s, s.ranker.set = s, set
	sort.Sort(&s.ranker)

	s.topBuf = s.topBuf[:0]
	for _, oi := range s.order {
		if len(s.topBuf) == k {
			break
		}
		s.topBuf = append(s.topBuf, set.entries[s.touched[oi]].Name)
	}

	// Reset the sparse slots while touched is still valid; the next run
	// may vote against a different (smaller) category set.
	for _, w := range s.touched {
		s.slot[w] = 0
	}

	if len(s.topBuf) == 0 {
		return nil, base
	}
	return s.topBuf, int(s.loc[s.order[0]])
}

// voteRanker sorts the scratch's counter rows; it lives inside the scratch
// so sort.Sort receives an already-heap-allocated interface value.
type voteRanker struct {
	s   *voteScratch
	set *catSet
}

func (r *voteRanker) Len() int { return len(r.s.order) }

func (r *voteRanker) Swap(i, j int) {
	o := r.s.order
	o[i], o[j] = o[j], o[i]
}

func (r *voteRanker) Less(i, j int) bool {
	s := r.s
	a, b := s.order[i], s.order[j]
	if s.count[a] != s.count[b] {
		return s.count[a] > s.count[b]
	}
	if s.minRaw[a] != s.minRaw[b] {
		return s.minRaw[a] < s.minRaw[b]
	}
	return r.set.entries[s.touched[a]].Name < r.set.entries[s.touched[b]].Name
}

// appendLower appends s lowercased to dst. ASCII — every transcript token
// after spoken-form substitution — lowers byte-by-byte without allocating;
// anything else falls back to strings.ToLower so the bytes stay identical
// to the naive scan's.
func appendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return append(dst, strings.ToLower(s)...)
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}
