// The indexed voting kernel and its pooled scratch. One voteScratch owns
// every piece of per-call working memory — the candidate text/encoding
// arenas, the sparse per-entry counters, the BK traversal stack, and the
// ranking permutation — so a steady-state vote() performs zero heap
// allocations (pinned by TestVoteSteadyStateAllocs, the same discipline as
// the structure search kernel's pooled searcher, DESIGN.md §7).

package literal

import (
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"speakql/internal/metrics"
	"speakql/internal/obs"
	"speakql/internal/phonetic"
)

const sentinelDist = 1 << 30 // "no distance recorded yet"; matches voteNaive

// voteCand is one enumerated window substring: its lowered text and
// phonetic encoding live as [off, end) ranges of the scratch arenas
// (offsets, not subslices, so arena growth cannot invalidate them), plus
// the absolute transcript index of its last token.
type voteCand struct {
	rawOff, rawEnd int32
	encOff, encEnd int32
	pos            int32
}

// voteScratch is the reusable state of one indexed vote.
type voteScratch struct {
	rawBuf []byte // lowered candidate text arena
	encBuf []byte // candidate phonetic-encoding arena
	cands  []voteCand

	// Sparse per-entry counters: slot[e] is 1+ the counter row of entry e,
	// 0 when e has not won any vote this call. Only rows for touched
	// entries exist, so counter work is O(winners), not O(catalog); touched
	// drives the end-of-call reset of slot.
	slot     []int32
	touched  []int32 // entry indices with counter rows, in first-win order
	count    []int32
	bestDist []int32
	minRaw   []int32
	loc      []int32

	stack   []int32 // BK traversal (node indices)
	winners []int32 // group indices at the current best radius
	order   []int32 // ranking permutation over counter rows
	topBuf  []string
	ranker  voteRanker
}

var votePool = sync.Pool{New: func() any { return new(voteScratch) }}

func getVoteScratch() *voteScratch { return votePool.Get().(*voteScratch) }

func putVoteScratch(s *voteScratch) { votePool.Put(s) }

// run votes the window against one indexed category set. The returned
// top-k slice is scratch-backed — callers must copy it before the scratch
// is recycled. Rankings, tie-breaks, and the consumed transcript position
// are bit-identical to voteNaive (TestVoteIndexMatchesNaive).
func (s *voteScratch) run(window []string, base int, set *catSet, k int) ([]string, int) {
	// Enumerate candidates into the arenas, exactly voteNaive's (i, j)
	// order — candidate order feeds the position tie-break below.
	s.rawBuf, s.encBuf, s.cands = s.rawBuf[:0], s.encBuf[:0], s.cands[:0]
	for i := 0; i < len(window); i++ {
		rawStart := int32(len(s.rawBuf))
		for j := i; j < len(window) && j-i < WindowSize; j++ {
			s.rawBuf = appendLower(s.rawBuf, window[j])
			encOff := int32(len(s.encBuf))
			s.encBuf = phonetic.AppendEncode(s.encBuf, s.rawBuf[rawStart:])
			s.cands = append(s.cands, voteCand{
				rawOff: rawStart, rawEnd: int32(len(s.rawBuf)),
				encOff: encOff, encEnd: int32(len(s.encBuf)),
				pos: int32(base + j),
			})
		}
	}

	if len(s.slot) < len(set.entries) {
		s.slot = make([]int32, len(set.entries))
	}
	s.touched = s.touched[:0]
	s.count, s.bestDist, s.minRaw, s.loc = s.count[:0], s.bestDist[:0], s.minRaw[:0], s.loc[:0]

	var bkNodes, entriesSeen int64
	for _, c := range s.cands {
		enc := s.encBuf[c.encOff:c.encEnd]

		// Nearest-code radius search. best starts at an a-priori upper
		// bound on the distance to any code (Levenshtein never exceeds the
		// longer string), so the first node visited already tightens it.
		best := len(enc)
		if set.maxCode > best {
			best = set.maxCode
		}
		s.winners = s.winners[:0]
		s.stack = append(s.stack[:0], 0)
		for len(s.stack) > 0 {
			ni := s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
			node := &set.bk[ni]
			g := &set.groups[node.group]
			bkNodes++
			entriesSeen += int64(g.num)
			// Beyond best+maxChild the exact distance is irrelevant: the
			// node is no winner and every child edge e ≤ maxChild fails
			// |d − e| ≤ best, so the whole subtree is provably outside the
			// radius and the banded kernel may exit early.
			d := metrics.CharEditDistanceBounded(enc, g.code, best+int(node.maxChild))
			if d < best {
				best = d
				s.winners = s.winners[:0]
				s.winners = append(s.winners, node.group)
			} else if d == best {
				s.winners = append(s.winners, node.group)
			}
			lo, hi := d-best, d+best
			for ci := node.firstChild; ci != -1; ci = set.bk[ci].nextSibling {
				if e := int(set.bk[ci].edge); e >= lo && e <= hi {
					s.stack = append(s.stack, ci)
				}
			}
		}

		// Every entry in every winning group receives one vote, with the
		// same per-entry updates as the naive scan.
		raw := s.rawBuf[c.rawOff:c.rawEnd]
		for _, gi := range s.winners {
			g := set.groups[gi]
			for _, w := range set.members[g.first : g.first+g.num] {
				si := s.slot[w]
				if si == 0 {
					s.touched = append(s.touched, w)
					s.count = append(s.count, 0)
					s.bestDist = append(s.bestDist, sentinelDist)
					s.minRaw = append(s.minRaw, sentinelDist)
					s.loc = append(s.loc, int32(base-1))
					si = int32(len(s.touched))
					s.slot[w] = si
				}
				si--
				s.count[si]++
				// Consume the transcript only up to the span that best
				// matches the winning literal (see voteNaive).
				if d := int32(best); d < s.bestDist[si] || (d == s.bestDist[si] && c.pos > s.loc[si]) {
					s.bestDist[si] = d
					s.loc[si] = c.pos
				}
				// The raw-spelling tie-break: bounded by the current
				// minimum, since only a strictly smaller distance updates
				// it — identical to the naive scan's unbounded minimum.
				if rd := metrics.CharEditDistanceBounded(raw, set.entries[w].Lower, int(s.minRaw[si])); rd < int(s.minRaw[si]) {
					s.minRaw[si] = int32(rd)
				}
			}
		}
	}

	obs.Add("literal.vote_calls", 1)
	obs.Add("literal.bk_nodes", bkNodes)
	obs.Add("literal.entries_skipped",
		int64(len(s.cands))*int64(len(set.entries))-entriesSeen)

	// Rank the touched entries: votes desc, raw distance asc, name asc —
	// the comparator is total (names are unique), so the result matches
	// voteNaive's stable sort over the full entry list, whose zero-vote
	// tail never reaches the top-k anyway.
	s.order = s.order[:0]
	for i := range s.touched {
		s.order = append(s.order, int32(i))
	}
	s.ranker.s, s.ranker.set = s, set
	sort.Sort(&s.ranker)

	s.topBuf = s.topBuf[:0]
	for _, oi := range s.order {
		if len(s.topBuf) == k {
			break
		}
		s.topBuf = append(s.topBuf, set.entries[s.touched[oi]].Name)
	}

	// Reset the sparse slots while touched is still valid; the next run
	// may vote against a different (smaller) category set.
	for _, w := range s.touched {
		s.slot[w] = 0
	}

	if len(s.topBuf) == 0 {
		return nil, base
	}
	return s.topBuf, int(s.loc[s.order[0]])
}

// voteRanker sorts the scratch's counter rows; it lives inside the scratch
// so sort.Sort receives an already-heap-allocated interface value.
type voteRanker struct {
	s   *voteScratch
	set *catSet
}

func (r *voteRanker) Len() int { return len(r.s.order) }

func (r *voteRanker) Swap(i, j int) {
	o := r.s.order
	o[i], o[j] = o[j], o[i]
}

func (r *voteRanker) Less(i, j int) bool {
	s := r.s
	a, b := s.order[i], s.order[j]
	if s.count[a] != s.count[b] {
		return s.count[a] > s.count[b]
	}
	if s.minRaw[a] != s.minRaw[b] {
		return s.minRaw[a] < s.minRaw[b]
	}
	return r.set.entries[s.touched[a]].Name < r.set.entries[s.touched[b]].Name
}

// appendLower appends s lowercased to dst. ASCII — every transcript token
// after spoken-form substitution — lowers byte-by-byte without allocating;
// anything else falls back to strings.ToLower so the bytes stay identical
// to the naive scan's.
func appendLower(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return append(dst, strings.ToLower(s)...)
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}
