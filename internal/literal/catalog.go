// Package literal implements the Literal Determination component of
// Section 4 (Box 3): it fills the placeholder variables of a determined SQL
// structure with actual literals. Table and attribute names come from a
// phonetic (Metaphone) index of the queried database's catalog; attribute
// values use phonetic voting for strings and dedicated reassembly for
// numbers and dates, which ASR splits and mangles (Table 1). The voting
// algorithm follows Appendix E: every enumerated transcript substring votes
// for its phonetically-closest catalog literal, and the literal with the
// most votes wins, ties resolved lexicographically.
//
// Voting is served by a phonetic index built at catalog-construction time:
// entries collapse into groups by identical Metaphone code, and each
// category set carries a BK-tree over the distinct codes, so a candidate
// substring finds its nearest entries by triangle-inequality radius search
// instead of scanning the whole set (see DESIGN.md §8). The pre-index full
// scan is retained as the differential reference; rankings are bit-identical
// either way.
package literal

import (
	"sort"
	"strings"

	"speakql/internal/phonetic"
)

// entry is one catalog literal with its cached phonetic encoding and its
// lowercased spelling (raw-distance tie-breaks and exact-match probes both
// need the lowered form; caching it keeps the hot loop allocation-free).
type entry struct {
	Name     string
	Lower    string
	Phonetic string
}

// phoneGroup is one distinct Metaphone code and the slice [first, first+num)
// of catSet.members holding the indices of every entry that encodes to it.
// Many catalog values collapse to one code ("Jon"/"John" → JN), so the
// BK-tree searches groups, not entries.
type phoneGroup struct {
	code       string
	first, num int32
}

// catSet is one category's literal set — tables, attributes, the global
// value set, or one column's domain — with its exact-match map and phonetic
// BK-tree index.
type catSet struct {
	entries []entry          // sorted by Name, deduplicated
	byLower map[string]int32 // lowered name → index of first entry spelling it
	groups  []phoneGroup     // distinct phonetic codes, sorted by code
	members []int32          // entry indices, grouped per groups[i]
	bk      []bkNode         // BK-tree over groups; nil when the set is empty
	byCode  map[string]int32 // phonetic code → its group index (exact-hit fast
	// path: a candidate encoding equal to a code makes that group the unique
	// distance-0 winner, skipping the BK radius search entirely)
	maxCode int // longest code length (an upper bound seed for
	// nearest-code search: dist(a,b) ≤ max(len(a), len(b)))
}

// Catalog is the phonetic representation of a database's literals
// (Figure 2's "Database Metadata"): table names, attribute names, and
// string attribute values, each indexed by Metaphone encoding. Numbers and
// dates are deliberately excluded (Section 4's design: "only strings,
// excluding numbers or dates"); those are reassembled from the transcript.
type Catalog struct {
	tables catSet
	attrs  catSet
	values catSet
	// byAttr holds per-attribute value sets (lowercased attribute name →
	// its column's string values). Optional: when present, value voting for
	// a predicate whose attribute is already bound is restricted to that
	// column's domain — a documented extension beyond the paper's global
	// per-category sets (its future work singles literals out as the
	// accuracy bottleneck).
	byAttr map[string]*catSet
	// noIndex disables the BK-tree fast path, restoring the naive full scan
	// (the -literal-index=false toggle; rankings are identical either way).
	noIndex bool
}

// NewCatalog builds the phonetic catalog. Duplicate names are collapsed.
func NewCatalog(tables, attrs, values []string) *Catalog {
	return &Catalog{
		tables: buildSet(tables),
		attrs:  buildSet(attrs),
		values: buildSet(values),
	}
}

// WithColumnValues attaches per-attribute value domains, enabling
// column-aware value voting. Keys are attribute names; the global value set
// remains the fallback for unbound or unknown attributes. Returns the
// catalog for chaining.
func (c *Catalog) WithColumnValues(byAttr map[string][]string) *Catalog {
	c.byAttr = make(map[string]*catSet, len(byAttr))
	for attr, vals := range byAttr {
		set := buildSet(vals)
		c.byAttr[strings.ToLower(attr)] = &set
	}
	return c
}

// SetIndexed enables (the default) or disables the phonetic BK-tree fast
// path for voting. Disabled, every vote falls back to the naive full scan —
// the differential reference — with bit-identical rankings. Returns the
// catalog for chaining.
func (c *Catalog) SetIndexed(on bool) *Catalog {
	c.noIndex = !on
	return c
}

// Indexed reports whether voting uses the phonetic BK-tree index.
func (c *Catalog) Indexed() bool { return !c.noIndex }

// columnValues returns the value set for one attribute, ok=false when no
// per-column domain is attached.
func (c *Catalog) columnValues(attr string) (*catSet, bool) {
	if c.byAttr == nil {
		return nil, false
	}
	es, ok := c.byAttr[strings.ToLower(attr)]
	if !ok || len(es.entries) == 0 {
		return nil, false
	}
	return es, true
}

// buildSet deduplicates and sorts the names, caches lowered spellings and
// phonetic encodings, groups entries by identical code, and indexes the
// distinct codes in a BK-tree.
func buildSet(names []string) catSet {
	seen := make(map[string]bool, len(names))
	entries := make([]entry, 0, len(names))
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		entries = append(entries, entry{
			Name:     n,
			Lower:    strings.ToLower(n),
			Phonetic: phonetic.Encode(n),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })

	set := catSet{entries: entries, byLower: make(map[string]int32, len(entries))}
	byCode := make(map[string][]int32)
	for i, e := range entries {
		if _, ok := set.byLower[e.Lower]; !ok {
			// First entry (in Name order) wins, matching what a linear
			// EqualFold scan over the sorted slice would return.
			set.byLower[e.Lower] = int32(i)
		}
		byCode[e.Phonetic] = append(byCode[e.Phonetic], int32(i))
		if len(e.Phonetic) > set.maxCode {
			set.maxCode = len(e.Phonetic)
		}
	}
	codes := make([]string, 0, len(byCode))
	for code := range byCode {
		codes = append(codes, code)
	}
	sort.Strings(codes) // deterministic group order → deterministic BK shape
	set.groups = make([]phoneGroup, len(codes))
	set.members = make([]int32, 0, len(entries))
	for gi, code := range codes {
		ms := byCode[code]
		set.groups[gi] = phoneGroup{code: code, first: int32(len(set.members)), num: int32(len(ms))}
		set.members = append(set.members, ms...)
	}
	set.bk = buildBK(set.groups)
	set.byCode = buildCodeMap(set.groups)
	return set
}

// buildCodeMap indexes the distinct phonetic codes by group position — the
// batched vote kernel's exact-hit probe. Every catSet construction site
// (buildSet, incremental updates, snapshot load) rebuilds it alongside the
// BK-tree so the two views never diverge.
func buildCodeMap(groups []phoneGroup) map[string]int32 {
	m := make(map[string]int32, len(groups))
	for gi, g := range groups {
		m[g.code] = int32(gi)
	}
	return m
}

// Tables returns the table names in the catalog.
func (c *Catalog) Tables() []string { return names(c.tables.entries) }

// Attributes returns the attribute names in the catalog.
func (c *Catalog) Attributes() []string { return names(c.attrs.entries) }

// Values returns the indexed string attribute values.
func (c *Catalog) Values() []string { return names(c.values.entries) }

func names(es []entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}

// HasTable reports whether name matches a table exactly (case-insensitive).
// O(1): probes the lowered-name set built in NewCatalog.
func (c *Catalog) HasTable(name string) bool { return hasExact(&c.tables, name) }

// HasAttribute reports whether name matches an attribute exactly.
func (c *Catalog) HasAttribute(name string) bool { return hasExact(&c.attrs, name) }

func hasExact(set *catSet, name string) bool {
	_, ok := set.byLower[strings.ToLower(name)]
	return ok
}
