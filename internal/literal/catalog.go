// Package literal implements the Literal Determination component of
// Section 4 (Box 3): it fills the placeholder variables of a determined SQL
// structure with actual literals. Table and attribute names come from a
// phonetic (Metaphone) index of the queried database's catalog; attribute
// values use phonetic voting for strings and dedicated reassembly for
// numbers and dates, which ASR splits and mangles (Table 1). The voting
// algorithm follows Appendix E: every enumerated transcript substring votes
// for its phonetically-closest catalog literal, and the literal with the
// most votes wins, ties resolved lexicographically.
package literal

import (
	"sort"
	"strings"

	"speakql/internal/phonetic"
)

// entry is one catalog literal with its cached phonetic encoding.
type entry struct {
	Name     string
	Phonetic string
}

// Catalog is the phonetic representation of a database's literals
// (Figure 2's "Database Metadata"): table names, attribute names, and
// string attribute values, each indexed by Metaphone encoding. Numbers and
// dates are deliberately excluded (Section 4's design: "only strings,
// excluding numbers or dates"); those are reassembled from the transcript.
type Catalog struct {
	tables []entry
	attrs  []entry
	values []entry
	// byAttr holds per-attribute value entries (lowercased attribute name →
	// its column's string values). Optional: when present, value voting for
	// a predicate whose attribute is already bound is restricted to that
	// column's domain — a documented extension beyond the paper's global
	// per-category sets (its future work singles literals out as the
	// accuracy bottleneck).
	byAttr map[string][]entry
}

// NewCatalog builds the phonetic catalog. Duplicate names are collapsed.
func NewCatalog(tables, attrs, values []string) *Catalog {
	return &Catalog{
		tables: buildEntries(tables),
		attrs:  buildEntries(attrs),
		values: buildEntries(values),
	}
}

// WithColumnValues attaches per-attribute value domains, enabling
// column-aware value voting. Keys are attribute names; the global value set
// remains the fallback for unbound or unknown attributes. Returns the
// catalog for chaining.
func (c *Catalog) WithColumnValues(byAttr map[string][]string) *Catalog {
	c.byAttr = make(map[string][]entry, len(byAttr))
	for attr, vals := range byAttr {
		c.byAttr[strings.ToLower(attr)] = buildEntries(vals)
	}
	return c
}

// columnValues returns the value entries for one attribute, ok=false when
// no per-column domain is attached.
func (c *Catalog) columnValues(attr string) ([]entry, bool) {
	if c.byAttr == nil {
		return nil, false
	}
	es, ok := c.byAttr[strings.ToLower(attr)]
	return es, ok && len(es) > 0
}

func buildEntries(names []string) []entry {
	seen := make(map[string]bool, len(names))
	out := make([]entry, 0, len(names))
	for _, n := range names {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, entry{Name: n, Phonetic: phonetic.Encode(n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tables returns the table names in the catalog.
func (c *Catalog) Tables() []string { return names(c.tables) }

// Attributes returns the attribute names in the catalog.
func (c *Catalog) Attributes() []string { return names(c.attrs) }

// Values returns the indexed string attribute values.
func (c *Catalog) Values() []string { return names(c.values) }

func names(es []entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Name
	}
	return out
}

// HasTable reports whether name matches a table exactly (case-insensitive).
func (c *Catalog) HasTable(name string) bool { return hasExact(c.tables, name) }

// HasAttribute reports whether name matches an attribute exactly.
func (c *Catalog) HasAttribute(name string) bool { return hasExact(c.attrs, name) }

func hasExact(es []entry, name string) bool {
	for _, e := range es {
		if strings.EqualFold(e.Name, name) {
			return true
		}
	}
	return false
}
