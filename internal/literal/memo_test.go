package literal

import (
	"fmt"
	"strings"
	"testing"
)

// TestVoteMemoIdentical is the memo's purity test: running determination
// repeatedly through one shared VoteMemo — including on grown "fragment"
// transcripts whose early windows hit the memo — must produce bindings
// byte-identical to the memo-free path, TopK and consumed windows included.
func TestVoteMemoIdentical(t *testing.T) {
	cat := employeesCatalog()
	cases := []struct {
		trans, structToks string
	}{
		{"SELECT first name FROM employers", "SELECT x1 FROM x2"},
		{"SELECT first name FROM employers WHERE salary > 50000", "SELECT x1 FROM x2 WHERE x3 > x4"},
		{"SELECT title FROM titles WHERE first name = jon", "SELECT x1 FROM x2 WHERE x3 = x4"},
		{"SELECT gender FROM employees WHERE title = senior engineer", "SELECT x1 FROM x2 WHERE x3 = x4"},
		{"SELECT salary FROM salaries WHERE employee number = d002", "SELECT x1 FROM x2 WHERE x3 = x4"},
	}
	for _, naive := range []bool{false, true} {
		cat.SetIndexed(!naive)
		memo := NewVoteMemo()
		for round := 0; round < 3; round++ { // later rounds are all memo hits
			for ci, c := range cases {
				trans, st := fields(c.trans), fields(c.structToks)
				want, werr := DetermineErr(trans, st, cat, 5)
				got, gerr := DetermineMemoErr(trans, st, cat, 5, memo)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("case %d: err %v vs %v", ci, werr, gerr)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("naive=%v round=%d case %d:\n memo: %v\n want: %v",
						naive, round, ci, got, want)
				}
			}
		}
	}
	cat.SetIndexed(true)
}

// TestVoteMemoGrowingPrefix mimics the streaming pattern: the transcript
// grows a clause at a time, and each prefix's memoized determination must
// match the memo-free one for that same prefix.
func TestVoteMemoGrowingPrefix(t *testing.T) {
	cat := employeesCatalog()
	steps := []struct {
		trans, structToks string
	}{
		{"SELECT first name", "SELECT x1"},
		{"SELECT first name FROM employers", "SELECT x1 FROM x2"},
		{"SELECT first name FROM employers WHERE title = engineer", "SELECT x1 FROM x2 WHERE x3 = x4"},
		{"SELECT first name FROM employers WHERE title = engineer AND salary > 70000",
			"SELECT x1 FROM x2 WHERE x3 = x4 AND x5 > x6"},
	}
	memo := NewVoteMemo()
	for i, s := range steps {
		trans, st := fields(s.trans), fields(s.structToks)
		want := Determine(trans, st, cat, 5)
		got, err := DetermineMemoErr(trans, st, cat, 5, memo)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d (%s):\n memo: %v\n want: %v", i, s.trans, got, want)
		}
		for _, b := range got {
			if strings.Contains(b.Placeholder, " ") {
				t.Fatalf("bad placeholder %q", b.Placeholder)
			}
		}
	}
	if len(memo.m) == 0 {
		t.Fatal("memo never populated")
	}
}
