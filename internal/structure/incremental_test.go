package structure

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"speakql/internal/grammar"
	"speakql/internal/obs"
	"speakql/internal/trieindex"
)

// renderResults formats the determination output for comparison: structure,
// distance, and processed transcript. Stats are deliberately excluded — they
// count search work, and the warm-started incremental search legitimately
// visits fewer nodes than a cold one while returning identical results.
func renderResults(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%v | %v | %v\n", r.Structure, r.Distance, r.Transcript)
	}
	return b.String()
}

// streamTranscripts are dictations split at realistic clause boundaries,
// including cases engineered to defeat naive suffix extension: spoken forms
// merging across a fragment boundary ("is less" + "than") and a nested
// SELECT appearing mid-dictation, which rewrites the outer masked query.
var streamTranscripts = [][]string{
	{"select first name", "from employees", "where salary equals 70000"},
	{"select sales from employers", "wear name equals Jon"},
	{"select salary from salaries where salary is less", "than 70000"},
	{"select first name from employees where salary greater", "than or equal to 50000"},
	{"select name from employees where salary equals", "select max open parenthesis salary close parenthesis from salaries"},
	{"select count open parenthesis", "star close parenthesis from titles"},
	{"select first name from employees", "", "where gender equals F"},
}

// TestIncrementalMatchesOneShot: at every fragment boundary, the
// incremental determiner must return byte-identical results to a one-shot
// DetermineTopK over the accumulated transcript — including under parallel
// search.
func TestIncrementalMatchesOneShot(t *testing.T) {
	for _, workers := range []int{0, 4} {
		c := NewFromIndex(comp(t).Index(), trieindex.Options{Workers: workers}, comp(t).cfg)
		for ti, frags := range streamTranscripts {
			inc := c.NewIncremental(3)
			var full []string
			for fi, frag := range frags {
				if f := strings.TrimSpace(frag); f != "" {
					full = append(full, f)
				}
				got, err := inc.AppendFragment(context.Background(), frag)
				if err != nil {
					t.Fatal(err)
				}
				want := c.DetermineTopK(strings.Join(full, " "), 3)
				if renderResults(got) != renderResults(want) {
					t.Fatalf("workers=%d transcript %d fragment %d:\n incremental: %v\n one-shot:    %v",
						workers, ti, fi, got, want)
				}
			}
			if inc.Transcript() != strings.Join(full, " ") {
				t.Fatalf("transcript %q, want %q", inc.Transcript(), strings.Join(full, " "))
			}
		}
	}
}

// TestIncrementalRandomSplits fuzzes fragment boundaries: any split of a
// transcript's words into fragments must agree with the one-shot path at
// every prefix.
func TestIncrementalRandomSplits(t *testing.T) {
	c := comp(t)
	transcripts := []string{
		"select first name from employees where salary is less than 70000",
		"select average open parenthesis salary close parenthesis from salaries",
		"select title from titles where first name equals jon and salary greater than 50000",
	}
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		text := transcripts[trial%len(transcripts)]
		words := strings.Fields(text)
		inc := c.NewIncremental(2)
		var consumed []string
		for start := 0; start < len(words); {
			n := 1 + rng.Intn(4)
			if start+n > len(words) {
				n = len(words) - start
			}
			frag := strings.Join(words[start:start+n], " ")
			consumed = append(consumed, words[start:start+n]...)
			start += n
			got, err := inc.AppendFragment(context.Background(), frag)
			if err != nil {
				t.Fatal(err)
			}
			want := c.DetermineTopK(strings.Join(consumed, " "), 2)
			if renderResults(got) != renderResults(want) {
				t.Fatalf("trial %d after %q:\n incremental: %v\n one-shot:    %v",
					trial, strings.Join(consumed, " "), got, want)
			}
		}
	}
}

// TestIncrementalResetCounter: a boundary-merging spoken form must be
// detected as a non-extension and counted as a searcher reset.
func TestIncrementalResetCounter(t *testing.T) {
	c := comp(t)
	obs.Default().Reset()
	inc := c.NewIncremental(1)
	if _, err := inc.AppendFragment(context.Background(), "select salary from salaries where salary is less"); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.AppendFragment(context.Background(), "than 70000"); err != nil {
		t.Fatal(err)
	}
	if n := obs.Default().Snapshot().Counters["structure.stream_resets"]; n == 0 {
		t.Fatal("boundary-merging fragment did not count a searcher reset")
	}
}

// TestIncrementalRedetermine: re-running without appending returns the same
// results again (the finalize path).
func TestIncrementalRedetermine(t *testing.T) {
	c := comp(t)
	inc := c.NewIncremental(3)
	first, err := inc.AppendFragment(context.Background(), "select first name from employees")
	if err != nil {
		t.Fatal(err)
	}
	again, err := inc.Redetermine(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if renderResults(first) != renderResults(again) {
		t.Fatalf("redetermine drifted:\n first: %v\n again: %v", first, again)
	}
}

var _ = grammar.TestScale // keep the import if helpers change
