package structure

// Incremental (clause-streaming) structure determination: the dictated
// transcript grows a fragment at a time, and each re-determination reuses
// the previous one's trie-search work through a trieindex.PrefixSearcher
// instead of starting over. Preprocessing (spoken-form substitution, nested
// splitting, masking) is recomputed over the full accumulated transcript on
// every fragment — those passes are linear and, crucially, not always
// append-only: a spoken form can merge tokens across the fragment boundary
// ("less" + "than" → "<") and a newly detected nested SELECT rewrites the
// outer query. When the new masked query is not a pure extension of the
// previous one, the searcher resets and rebuilds (counted in
// structure.stream_resets); otherwise only the masked suffix is searched
// incrementally.

import (
	"context"
	"strings"

	"speakql/internal/faultinject"
	"speakql/internal/obs"
	"speakql/internal/sqltoken"
	"speakql/internal/trieindex"
)

// Incremental determines structures for a transcript dictated fragment by
// fragment. Results at every step are bit-identical to DetermineTopK on the
// same accumulated transcript (TestIncrementalMatchesOneShot). Not safe for
// concurrent use; the Component it came from is shared as usual.
type Incremental struct {
	c      *Component
	k      int
	ps     *trieindex.PrefixSearcher
	raw    strings.Builder // accumulated raw transcript
	masked []string        // previous fragment's masked outer query
}

// NewIncremental creates a fragment-driven determiner returning the k best
// structures per fragment (k < 1 is clamped to 1).
func (c *Component) NewIncremental(k int) *Incremental {
	if k < 1 {
		k = 1
	}
	return &Incremental{c: c, k: k, ps: c.ix.NewPrefixSearcher(k, c.opts)}
}

// Transcript returns the raw transcript accumulated so far.
func (inc *Incremental) Transcript() string { return inc.raw.String() }

// AppendFragment appends one dictated fragment to the transcript and
// re-determines the structures for the whole accumulated transcript,
// reusing the previous fragments' search work. The error channel carries
// only the stage's fault-injection hook, as in DetermineTopKErr.
func (inc *Incremental) AppendFragment(ctx context.Context, fragment string) ([]Result, error) {
	inc.AppendRaw(fragment)
	return inc.Redetermine(ctx)
}

// AppendRaw appends one fragment to the accumulated transcript without
// re-determining anything. It exists for snapshot restore (a replica
// rehydrating a handed-off dictation replays every recorded fragment, then
// runs one Redetermine): since incremental determination is bit-identical to
// one-shot determination of the accumulated transcript, appending n
// fragments and determining once yields exactly the state n AppendFragment
// calls would have left.
func (inc *Incremental) AppendRaw(fragment string) {
	if f := strings.TrimSpace(fragment); f != "" {
		if inc.raw.Len() > 0 {
			inc.raw.WriteByte(' ')
		}
		inc.raw.WriteString(f)
	}
}

// Redetermine re-runs determination over the accumulated transcript without
// appending anything — used by finalize to retry a fragment that a deadline
// degraded, at full fidelity.
func (inc *Incremental) Redetermine(ctx context.Context) ([]Result, error) {
	span := obs.StartSpan("structure.determine_incremental")
	defer span.End()
	if err := faultinject.Fire(faultinject.StageStructure); err != nil {
		obs.Add("structure.injected_errors", 1)
		return nil, err
	}
	toks := sqltoken.SubstituteSpokenForms(sqltoken.TokenizeTranscript(inc.raw.String()))
	outer, inner := splitNested(toks)
	masked := sqltoken.MaskGeneric(outer)
	if suffix, ok := maskedSuffix(masked, inc.masked); ok {
		inc.ps.Extend(suffix)
	} else {
		obs.Add("structure.stream_resets", 1)
		inc.ps.Reset()
		inc.ps.Extend(masked)
	}
	inc.masked = append(inc.masked[:0], masked...)
	cands, stats := inc.ps.SearchContext(ctx)
	recordSearchStats(stats)
	innerStruct := inc.c.searchInner(ctx, inner)
	return assembleResults(toks, cands, stats, innerStruct), nil
}

// maskedSuffix reports whether cur extends prev, and if so the new suffix.
func maskedSuffix(cur, prev []string) ([]string, bool) {
	if len(cur) < len(prev) {
		return nil, false
	}
	for i, t := range prev {
		if cur[i] != t {
			return nil, false
		}
	}
	return cur[len(prev):], true
}
