package structure

import (
	"context"
	"errors"
	"strings"
	"testing"

	"speakql/internal/faultinject"
	"speakql/internal/grammar"
	"speakql/internal/trieindex"
)

var testComp *Component

func comp(t testing.TB) *Component {
	t.Helper()
	if testComp == nil {
		c, err := New(Config{Grammar: grammar.TestScale()})
		if err != nil {
			t.Fatal(err)
		}
		testComp = c
	}
	return testComp
}

func TestDetermineRunningExample(t *testing.T) {
	// Figure 2's running example, end to end through structure
	// determination: the erroneous transcript still yields the right
	// skeleton.
	res := comp(t).Determine("select sales from employers wear name equals Jon")
	want := "SELECT x1 FROM x2 WHERE x3 = x4"
	if got := strings.Join(res.Structure, " "); got != want {
		t.Errorf("got %q, want %q (dist %v)", got, want, res.Distance)
	}
	wantTrans := "SELECT sales FROM employers wear name = Jon"
	if got := strings.Join(res.Transcript, " "); got != wantTrans {
		t.Errorf("transcript = %q, want %q", got, wantTrans)
	}
}

func TestDetermineExactQueries(t *testing.T) {
	cases := []struct {
		transcript string
		want       string
	}{
		{
			// "average" is not a grammar keyword, but the parens force the
			// search to snap to the nearest aggregate structure — exactly
			// the repair behaviour the paper wants.
			"select average open parenthesis salary close parenthesis from salaries",
			"SELECT AVG ( x1 ) FROM x2",
		},
		{
			"select avg open parenthesis salary close parenthesis from salaries",
			"SELECT AVG ( x1 ) FROM x2",
		},
		{
			"select star from employees",
			"SELECT * FROM x1",
		},
		{
			"select lastname from employees natural join salaries where salary greater than 70000",
			"SELECT x1 FROM x2 NATURAL JOIN x3 WHERE x4 > x5",
		},
		{
			"select fromdate from departmentemployee where departmentnumber equals d002",
			"SELECT x1 FROM x2 WHERE x3 = x4",
		},
		{
			"select name from employees where salary between 1000 and 2000",
			"SELECT x1 FROM x2 WHERE x3 BETWEEN x4 AND x5",
		},
		{
			"select name from employees order by salary",
			"SELECT x1 FROM x2 ORDER BY x3",
		},
		{
			"select name from employees limit 10",
			"SELECT x1 FROM x2 LIMIT x3",
		},
	}
	for _, c := range cases {
		res := comp(t).Determine(c.transcript)
		if got := strings.Join(res.Structure, " "); got != c.want {
			t.Errorf("Determine(%q) = %q, want %q", c.transcript, got, c.want)
		}
	}
}

func TestDetermineAvgLiteralNote(t *testing.T) {
	// "AVG" is in the keyword dictionary; when the user says "avg" the
	// structure is exact, distance 0.
	res := comp(t).Determine("select avg ( salary ) from salaries")
	if res.Distance != 0 {
		t.Errorf("exact aggregate query distance = %v, want 0", res.Distance)
	}
}

func TestDetermineTopK(t *testing.T) {
	rs := comp(t).DetermineTopK("select name from employees where id equals 5", 5)
	if len(rs) != 5 {
		t.Fatalf("got %d results", len(rs))
	}
	if got := strings.Join(rs[0].Structure, " "); got != "SELECT x1 FROM x2 WHERE x3 = x4" {
		t.Errorf("top1 = %q", got)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Distance < rs[i-1].Distance {
			t.Fatal("topk not sorted")
		}
	}
}

func TestDetermineEmptyTranscript(t *testing.T) {
	res := comp(t).Determine("")
	if len(res.Structure) == 0 {
		t.Fatal("empty transcript should still return the closest (shortest) structure")
	}
}

func TestPlaceholdersSequential(t *testing.T) {
	res := comp(t).Determine("select a comma b from t where c equals d and e less than f")
	n := 0
	for _, tok := range res.Structure {
		if strings.HasPrefix(tok, "x") {
			n++
			if tok != "x"+itoa(n) {
				t.Fatalf("placeholder %q out of order in %v", tok, res.Structure)
			}
		}
	}
	if n == 0 {
		t.Fatal("no placeholders")
	}
}

func itoa(n int) string {
	return strings.TrimLeft(strings.Map(func(r rune) rune { return r }, string(rune('0'+n))), "")
}

func TestNestedQuerySplit(t *testing.T) {
	outer, inner := splitNested(strings.Fields(
		"SELECT name FROM employees WHERE id IN ( SELECT id FROM managers )"))
	if inner == nil {
		t.Fatal("nested query not detected")
	}
	if got := strings.Join(inner, " "); got != "SELECT id FROM managers" {
		t.Errorf("inner = %q", got)
	}
	if got := strings.Join(outer, " "); got != "SELECT name FROM employees WHERE id IN ( x )" {
		t.Errorf("outer = %q", got)
	}
}

func TestNestedQueryNoSplit(t *testing.T) {
	outer, inner := splitNested(strings.Fields("SELECT name FROM employees"))
	if inner != nil {
		t.Fatal("false nested detection")
	}
	if len(outer) != 4 {
		t.Fatal("outer mangled")
	}
}

func TestDetermineNested(t *testing.T) {
	res := comp(t).Determine(
		"select name from employees where id in open parenthesis select id from managers close parenthesis")
	got := strings.Join(res.Structure, " ")
	want := "SELECT x1 FROM x2 WHERE x3 IN ( SELECT x4 FROM x5 )"
	if got != want {
		t.Errorf("nested: got %q, want %q", got, want)
	}
}

func TestNewFromIndex(t *testing.T) {
	base := comp(t)
	c2 := NewFromIndex(base.Index(), trieindex.Options{DAP: true}, grammar.TestScale())
	res := c2.Determine("select star from employees")
	if got := strings.Join(res.Structure, " "); got != "SELECT * FROM x1" {
		t.Errorf("shared-index DAP component: got %q", got)
	}
}

func TestNestedQuerySplitNoCloseParen(t *testing.T) {
	// Trailing nested query with the close paren never spoken: the inner
	// span runs to the end of the transcript.
	outer, inner := splitNested(strings.Fields(
		"SELECT name FROM employees WHERE id IN ( SELECT id FROM managers"))
	if got := strings.Join(inner, " "); got != "SELECT id FROM managers" {
		t.Errorf("inner = %q", got)
	}
	if got := strings.Join(outer, " "); got != "SELECT name FROM employees WHERE id IN ( x" {
		t.Errorf("outer = %q", got)
	}
}

func TestNestedQuerySplitInnerParens(t *testing.T) {
	// Parens inside the nested query (COUNT ( id )) must not end the span:
	// only the depth-0 close paren does.
	outer, inner := splitNested(strings.Fields(
		"SELECT name FROM employees WHERE id IN ( SELECT COUNT ( id ) FROM managers )"))
	if got := strings.Join(inner, " "); got != "SELECT COUNT ( id ) FROM managers" {
		t.Errorf("inner = %q", got)
	}
	if got := strings.Join(outer, " "); got != "SELECT name FROM employees WHERE id IN ( x )" {
		t.Errorf("outer = %q", got)
	}
}

func TestSpliceNestedReplacesValueSlot(t *testing.T) {
	outer := strings.Fields("SELECT x FROM x WHERE x IN ( x )")
	inner := strings.Fields("SELECT x FROM x")
	got := strings.Join(spliceNested(outer, inner), " ")
	if got != "SELECT x FROM x WHERE x IN ( SELECT x FROM x )" {
		t.Errorf("spliced = %q", got)
	}
}

func TestSpliceNestedNoValueSlot(t *testing.T) {
	// No ( literal ) slot in the outer structure: the inner structure is
	// appended parenthesized rather than dropped.
	outer := strings.Fields("SELECT x FROM x")
	inner := strings.Fields("SELECT x FROM x")
	got := strings.Join(spliceNested(outer, inner), " ")
	if got != "SELECT x FROM x ( SELECT x FROM x )" {
		t.Errorf("spliced = %q", got)
	}
}

func TestSpliceNestedPicksLastSlot(t *testing.T) {
	// Two candidate slots: the splice targets the rightmost one (nested
	// queries are dictated last in the transcripts we split).
	outer := strings.Fields("SELECT COUNT ( x ) FROM x WHERE x IN ( x )")
	inner := strings.Fields("SELECT x FROM x")
	got := strings.Join(spliceNested(outer, inner), " ")
	if got != "SELECT COUNT ( x ) FROM x WHERE x IN ( SELECT x FROM x )" {
		t.Errorf("spliced = %q", got)
	}
}

// batchTranscripts is an n-best-shaped input: near-duplicate hypotheses,
// one verbatim repeat, a nested-query transcript, and degenerate entries.
var batchTranscripts = []string{
	"select sales from employers wear name equals Jon",
	"select sales from employees where name equals Jon",
	"select sales from employers wear name equals Jon", // verbatim duplicate
	"select star from employees",
	"select count open parenthesis star close parenthesis from titles",
	"select name from employees where id in select id from titles",
	"",
	"blah blah blah",
}

// TestDetermineBatchMatchesSequential pins the batched structure stage to
// the sequential one: per position, DetermineTopKBatchErr must return
// exactly what a loop of DetermineTopKErr calls returns — structures,
// distances, transcripts — including with parallel workers underneath the
// shared batch search.
func TestDetermineBatchMatchesSequential(t *testing.T) {
	par, err := New(Config{Grammar: grammar.TestScale(), Search: trieindex.Options{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		c    *Component
	}{
		{"serial", comp(t)},
		{"workers4", par},
	}
	ctx := context.Background()
	for _, tc := range cases {
		for _, k := range []int{1, 3} {
			outs, errs := tc.c.DetermineTopKBatchErr(ctx, batchTranscripts, k)
			if len(outs) != len(batchTranscripts) || len(errs) != len(batchTranscripts) {
				t.Fatalf("%s k=%d: %d outs / %d errs", tc.name, k, len(outs), len(errs))
			}
			for ti, tr := range batchTranscripts {
				if errs[ti] != nil {
					t.Fatalf("%s k=%d t#%d: unexpected error %v", tc.name, k, ti, errs[ti])
				}
				want, werr := tc.c.DetermineTopKErr(ctx, tr, k)
				if werr != nil {
					t.Fatalf("%s k=%d t#%d: sequential error %v", tc.name, k, ti, werr)
				}
				if len(outs[ti]) != len(want) {
					t.Fatalf("%s k=%d t#%d %q: batch %d results, sequential %d",
						tc.name, k, ti, tr, len(outs[ti]), len(want))
				}
				for i := range want {
					g, w := outs[ti][i], want[i]
					if strings.Join(g.Structure, " ") != strings.Join(w.Structure, " ") ||
						g.Distance != w.Distance ||
						strings.Join(g.Transcript, " ") != strings.Join(w.Transcript, " ") {
						t.Fatalf("%s k=%d t#%d %q result %d differs:\n batch      %v (%v)\n sequential %v (%v)",
							tc.name, k, ti, tr, i, g.Structure, g.Distance, w.Structure, w.Distance)
					}
				}
			}
		}
	}
}

// TestDetermineBatchFaultInjection rehearses a dead search backend under
// the batch path: with the structure stage erroring deterministically on
// every call, each batch position must carry the injected error and no
// results — exactly what the sequential loop reports.
func TestDetermineBatchFaultInjection(t *testing.T) {
	inj, err := faultinject.Parse("structure:error@1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)
	outs, errs := comp(t).DetermineTopKBatchErr(context.Background(), batchTranscripts[:3], 1)
	for ti := range outs {
		if errs[ti] == nil {
			t.Fatalf("position %d: no injected error", ti)
		}
		var ie *faultinject.InjectedError
		if !errors.As(errs[ti], &ie) || ie.Stage != faultinject.StageStructure {
			t.Fatalf("position %d: error %v is not the injected structure error", ti, errs[ti])
		}
		if outs[ti] != nil {
			t.Fatalf("position %d: results despite stage error", ti)
		}
	}
}
