// Package structure implements the Structure Determination component of
// Section 3 (Figure 3): given a raw ASR transcript, it substitutes spoken
// forms of special characters, masks literals, searches the trie index of
// pre-generated grammar structures for the closest match under the
// SQL-specific weighted edit distance, and returns a syntactically correct
// SQL skeleton with numbered placeholder variables (x1, x2, …). One-level
// nested queries are handled with the splitting heuristic of Appendix F.8.
package structure

import (
	"context"
	"strconv"
	"strings"

	"speakql/internal/faultinject"
	"speakql/internal/grammar"
	"speakql/internal/obs"
	"speakql/internal/sqltoken"
	"speakql/internal/trieindex"
)

// Component is a ready-to-search structure determiner. Build it once (index
// construction is the offline part of Section 3.2) and reuse it; Determine
// is safe for concurrent use.
type Component struct {
	ix    *trieindex.Index
	opts  trieindex.Options
	cfg   grammar.GenConfig
	cache SearchCache
}

// SearchCache memoizes trie searches by masked transcript. The interface
// lives here (the consumer) so the LRU implementation in internal/core can
// depend on structure without a cycle. Implementations must be safe for
// concurrent use; cached values are shared, so callers must not mutate the
// returned Results' token slices (this package never does).
type SearchCache interface {
	Get(key string) ([]trieindex.Result, trieindex.Stats, bool)
	Put(key string, rs []trieindex.Result, st trieindex.Stats)
}

// SetSearchCache installs a search memo cache. The masked transcript is the
// searcher's only input, so the cache key is the masked token sequence plus
// k; one cache must not be shared between components with different search
// options or different indexes. Call before serving traffic.
func (c *Component) SetSearchCache(sc SearchCache) { c.cache = sc }

// Config bundles the generation scale and search options.
type Config struct {
	Grammar grammar.GenConfig
	Search  trieindex.Options
}

// New generates the structure corpus for cfg.Grammar and indexes it.
func New(cfg Config) (*Component, error) {
	keepINV := cfg.Search.INV
	ix := trieindex.NewIndex(cfg.Grammar.MaxTokens, keepINV)
	err := grammar.Generate(cfg.Grammar, func(toks []string) bool {
		ix.Insert(toks)
		return true
	})
	if err != nil {
		return nil, err
	}
	// Compact the pointer tries into their arena form: construction is
	// done, and searches run on the allocation-free arena kernel.
	ix.Freeze()
	return &Component{ix: ix, opts: cfg.Search, cfg: cfg.Grammar}, nil
}

// NewFromIndex wraps an existing index (used by ablation experiments that
// share one index across option settings).
func NewFromIndex(ix *trieindex.Index, opts trieindex.Options, cfg grammar.GenConfig) *Component {
	return &Component{ix: ix, opts: opts, cfg: cfg}
}

// Index exposes the underlying index (for stats and ablations).
func (c *Component) Index() *trieindex.Index { return c.ix }

// Result is one determined structure.
type Result struct {
	// Structure is the syntactically correct skeleton with numbered
	// placeholders, e.g. SELECT x1 FROM x2 WHERE x3 = x4.
	Structure []string
	// Distance is the weighted edit distance between the masked transcript
	// and the matched grammar structure.
	Distance float64
	// Transcript is the processed transcript (after spoken-form
	// substitution), which literal determination consumes as TransOut.
	Transcript []string
	// Stats reports search work (ablation experiments).
	Stats trieindex.Stats
}

// Determine returns the best structure for a raw ASR transcript.
func (c *Component) Determine(transcript string) Result {
	return c.DetermineContext(context.Background(), transcript)
}

// DetermineContext is Determine with cancellation (see
// DetermineTopKContext).
func (c *Component) DetermineContext(ctx context.Context, transcript string) Result {
	rs := c.DetermineTopKContext(ctx, transcript, 1)
	if len(rs) == 0 {
		return Result{}
	}
	return rs[0]
}

// DetermineTopK returns the k best structures, closest first.
func (c *Component) DetermineTopK(transcript string, k int) []Result {
	return c.DetermineTopKContext(context.Background(), transcript, k)
}

// DetermineTopKContext is DetermineTopK under a context: the trie search
// checks ctx at partition boundaries, so an expired deadline returns the
// best structures found so far (possibly none) rather than completing the
// sweep.
func (c *Component) DetermineTopKContext(ctx context.Context, transcript string, k int) []Result {
	rs, _ := c.DetermineTopKErr(ctx, transcript, k)
	return rs
}

// DetermineTopKErr is DetermineTopKContext with an error channel. Today
// the only error source is the stage's fault-injection hook (rehearsing a
// failed search backend); callers that cannot act on errors use
// DetermineTopKContext and treat failure as an empty result.
func (c *Component) DetermineTopKErr(ctx context.Context, transcript string, k int) ([]Result, error) {
	span := obs.StartSpan("structure.determine")
	defer span.End()
	if err := faultinject.Fire(faultinject.StageStructure); err != nil {
		obs.Add("structure.injected_errors", 1)
		return nil, err
	}
	toks := sqltoken.SubstituteSpokenForms(sqltoken.TokenizeTranscript(transcript))
	outer, inner := splitNested(toks)
	masked := sqltoken.MaskGeneric(outer)
	cands, stats := c.searchTopK(ctx, masked, k)
	recordSearchStats(stats)
	innerStruct := c.searchInner(ctx, inner)
	return assembleResults(toks, cands, stats, innerStruct), nil
}

// DetermineTopKBatchErr is DetermineTopKErr over a whole n-best list of
// transcripts: the front half (fault hook, tokenization, spoken-form
// substitution, nested-query split, masking) runs per transcript, and the
// outer-structure searches then go through one batched trie search
// (trieindex.SearchBatch) that shares the searcher pool, memoizes identical
// masked transcripts, and lets completed alternatives seed the others'
// pruning bounds. Per-position results and errors are bit-identical to a
// loop of DetermineTopKErr calls (TestDetermineBatchMatchesSequential);
// the fault hook fires once per transcript, in input order, before any
// search runs.
func (c *Component) DetermineTopKBatchErr(ctx context.Context, transcripts []string, k int) ([][]Result, []error) {
	span := obs.StartSpan("structure.determine_batch")
	defer span.End()
	outs := make([][]Result, len(transcripts))
	errs := make([]error, len(transcripts))
	type prep struct {
		toks   []string
		masked []string
		inner  []string
	}
	preps := make([]prep, len(transcripts))
	live := make([]int, 0, len(transcripts))
	queries := make([][]string, 0, len(transcripts))
	for ti, tr := range transcripts {
		if err := faultinject.Fire(faultinject.StageStructure); err != nil {
			obs.Add("structure.injected_errors", 1)
			errs[ti] = err
			continue
		}
		toks := sqltoken.SubstituteSpokenForms(sqltoken.TokenizeTranscript(tr))
		outer, inner := splitNested(toks)
		preps[ti] = prep{toks: toks, masked: sqltoken.MaskGeneric(outer), inner: inner}
		live = append(live, ti)
		queries = append(queries, preps[ti].masked)
	}
	cands, stats := c.searchTopKBatch(ctx, queries, k)
	for li, ti := range live {
		recordSearchStats(stats[li])
		innerStruct := c.searchInner(ctx, preps[ti].inner)
		outs[ti] = assembleResults(preps[ti].toks, cands[li], stats[li], innerStruct)
	}
	return outs, errs
}

// searchInner determines the structure of a split-off nested query (nil when
// the transcript has none); the inner search always takes the cached
// non-incremental path.
func (c *Component) searchInner(ctx context.Context, inner []string) []string {
	if inner == nil {
		return nil
	}
	innerCands, innerStats := c.searchTopK(ctx, sqltoken.MaskGeneric(inner), 1)
	recordSearchStats(innerStats)
	if len(innerCands) == 0 {
		return nil
	}
	return innerCands[0].Tokens
}

// assembleResults splices the nested structure (when present) into each
// outer candidate and numbers the placeholders — the shared tail of the
// one-shot and incremental determination paths.
func assembleResults(toks []string, cands []trieindex.Result, stats trieindex.Stats, innerStruct []string) []Result {
	results := make([]Result, 0, len(cands))
	for _, cand := range cands {
		st := cand.Tokens
		if innerStruct != nil {
			st = spliceNested(st, innerStruct)
		}
		results = append(results, Result{
			Structure:  numberPlaceholders(st),
			Distance:   cand.Distance,
			Transcript: toks,
			Stats:      stats,
		})
	}
	return results
}

// searchTopK runs the trie search through the memo cache, when one is
// installed. The masked transcript plus k is the search's entire input (the
// component's options and index are fixed), so equal keys always mean equal
// results — repeated masked shapes, which dominate dictation sessions and
// the Table 2 sweeps, skip the trie walk entirely. Cancelled searches are
// not cached: their results are legitimately partial.
func (c *Component) searchTopK(ctx context.Context, masked []string, k int) ([]trieindex.Result, trieindex.Stats) {
	if c.cache == nil {
		return c.ix.SearchTopKContext(ctx, masked, k, c.opts)
	}
	key := cacheKey(masked, k)
	if rs, st, ok := c.cache.Get(key); ok {
		return rs, st
	}
	rs, st := c.ix.SearchTopKContext(ctx, masked, k, c.opts)
	if ctx.Err() == nil {
		c.cache.Put(key, rs, st)
	}
	return rs, st
}

// searchTopKBatch is searchTopK for a batch: cache hits resolve up front,
// and only the misses go through one shared SearchBatch. Duplicate misses
// are memoized inside SearchBatch; cancelled searches are not cached, same
// as the single-query path.
func (c *Component) searchTopKBatch(ctx context.Context, queries [][]string, k int) ([][]trieindex.Result, []trieindex.Stats) {
	if c.cache == nil {
		return c.ix.SearchBatch(ctx, queries, k, c.opts)
	}
	outs := make([][]trieindex.Result, len(queries))
	stats := make([]trieindex.Stats, len(queries))
	missIdx := make([]int, 0, len(queries))
	missQ := make([][]string, 0, len(queries))
	for qi, q := range queries {
		if rs, st, ok := c.cache.Get(cacheKey(q, k)); ok {
			outs[qi], stats[qi] = rs, st
			continue
		}
		missIdx = append(missIdx, qi)
		missQ = append(missQ, q)
	}
	if len(missIdx) == 0 {
		return outs, stats
	}
	mouts, mstats := c.ix.SearchBatch(ctx, missQ, k, c.opts)
	for mi, qi := range missIdx {
		outs[qi], stats[qi] = mouts[mi], mstats[mi]
		if ctx.Err() == nil {
			c.cache.Put(cacheKey(queries[qi], k), mouts[mi], mstats[mi])
		}
	}
	return outs, stats
}

// cacheKey encodes a masked transcript and k. Masked tokens never contain
// newlines (the transcript tokenizer splits on whitespace), so a newline
// join is collision-free.
func cacheKey(masked []string, k int) string {
	var b strings.Builder
	b.Grow(len(masked)*4 + 8)
	for _, t := range masked {
		b.WriteString(t)
		b.WriteByte('\n')
	}
	b.WriteString(strconv.Itoa(k))
	return b.String()
}

// recordSearchStats feeds one search's work counters into the obs layer,
// where GET /api/stats aggregates them across requests.
func recordSearchStats(st trieindex.Stats) {
	obs.Add("search.nodes_visited", int64(st.NodesVisited))
	obs.Add("search.tries_searched", int64(st.TriesSearched))
	obs.Add("search.tries_skipped_bdb", int64(st.TriesSkipped))
	obs.Add("search.inv_scanned", int64(st.InvScanned))
	if st.UsedINV {
		obs.Add("search.inv_hits", 1)
	}
}

// splitNested implements the Appendix F.8 heuristic: if a second SELECT
// occurs in the transcript, the span from it to its matching close paren
// (or the end) is treated as a one-level nested query. The outer query gets
// a single literal placeholder in its place. Returns (outer, nil) when no
// nesting is detected.
func splitNested(toks []string) (outer, inner []string) {
	selIdx := -1
	for i, t := range toks {
		if strings.EqualFold(t, "SELECT") && i > 0 {
			selIdx = i
			break
		}
	}
	if selIdx < 0 {
		return toks, nil
	}
	end := len(toks)
	depth := 0
	for i := selIdx; i < len(toks); i++ {
		switch toks[i] {
		case "(":
			depth++
		case ")":
			if depth == 0 {
				end = i
			} else {
				depth--
			}
		}
		if end != len(toks) {
			break
		}
	}
	outer = append(outer, toks[:selIdx]...)
	outer = append(outer, grammar.Lit)
	outer = append(outer, toks[end:]...)
	inner = toks[selIdx:end]
	return outer, inner
}

// spliceNested re-inserts the inner structure in place of the last
// value-position placeholder inside parentheses of the outer structure —
// the IN ( x ) shape — or appends it parenthesized if no such slot exists.
func spliceNested(outer, inner []string) []string {
	for i := len(outer) - 1; i >= 2; i-- {
		if outer[i] == ")" && i >= 2 && outer[i-2] == "(" &&
			sqltoken.Classify(outer[i-1]) == sqltoken.Literal {
			out := make([]string, 0, len(outer)+len(inner))
			out = append(out, outer[:i-1]...)
			out = append(out, inner...)
			out = append(out, outer[i:]...)
			return out
		}
	}
	out := append([]string{}, outer...)
	out = append(out, "(")
	out = append(out, inner...)
	return append(out, ")")
}

// numberPlaceholders rewrites each generic literal symbol as x1, x2, … in
// order of appearance, producing the placeholder naming of Figure 2.
func numberPlaceholders(st []string) []string {
	out := make([]string, len(st))
	n := 0
	for i, t := range st {
		if sqltoken.Classify(t) == sqltoken.Literal {
			n++
			out[i] = sqltoken.Placeholder(n)
		} else {
			out[i] = t
		}
	}
	return out
}
