package structure

import (
	"math/rand"
	"strings"
	"testing"

	"speakql/internal/grammar"
	"speakql/internal/sqltoken"
)

// Property: whatever garbage comes in, Determine returns a structure that
// is (a) derivable from the grammar corpus, (b) has sequential numbered
// placeholders, and (c) category assignment covers every placeholder —
// i.e. downstream literal determination can always run.
func TestDetermineAlwaysGrammatical(t *testing.T) {
	c := comp(t)
	corpus := map[string]bool{}
	err := grammar.Generate(grammar.TestScale(), func(toks []string) bool {
		corpus[strings.Join(toks, " ")] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	words := []string{"select", "from", "where", "salary", "sales", "wear",
		"equals", "star", "comma", "and", "or", "between", "group", "by",
		"jon", "45310", "d002", "employees", "the", "banana", "open",
		"parenthesis", "close", "in", "limit", "dot", "not"}
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(20)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		transcript := strings.Join(parts, " ")
		res := c.Determine(transcript)
		if len(res.Structure) == 0 {
			t.Fatalf("no structure for %q", transcript)
		}
		// (a) generic form must be in the corpus — except when the
		// transcript contains a second SELECT, which triggers the nested-
		// query splice (outer and inner are each grammatical, but the
		// spliced whole is not a flat corpus member).
		nested := false
		for i, w := range parts {
			if i > 0 && w == "select" {
				nested = true
			}
		}
		generic := sqltoken.MaskGeneric(res.Structure)
		if !nested && !corpus[strings.Join(generic, " ")] {
			t.Fatalf("ungrammatical structure %v for %q", res.Structure, transcript)
		}
		// (b) placeholders numbered sequentially.
		k := 0
		for _, tok := range res.Structure {
			if sqltoken.Classify(tok) == sqltoken.Literal {
				k++
				if tok != sqltoken.Placeholder(k) {
					t.Fatalf("placeholder %q out of order in %v", tok, res.Structure)
				}
			}
		}
		// (c) categories cover all placeholders.
		cats := grammar.AssignCategories(res.Structure)
		if len(cats) != k {
			t.Fatalf("categories %d != placeholders %d for %v", len(cats), k, res.Structure)
		}
	}
}

// Property: an exact in-corpus structure always comes back with distance 0
// and unchanged shape.
func TestDetermineFixedPoint(t *testing.T) {
	c := comp(t)
	n := 0
	err := grammar.Generate(grammar.TestScale(), func(toks []string) bool {
		n++
		if n%500 != 0 { // sample the corpus
			return true
		}
		transcript := strings.Join(toks, " ")
		res := c.Determine(transcript)
		if res.Distance != 0 {
			t.Fatalf("in-corpus structure %q came back at distance %v as %v",
				transcript, res.Distance, res.Structure)
		}
		generic := sqltoken.MaskGeneric(res.Structure)
		if strings.Join(generic, " ") != transcript {
			t.Fatalf("fixed point violated: %q → %v", transcript, res.Structure)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no corpus")
	}
}

func TestSpliceNestedFallback(t *testing.T) {
	// When the outer structure has no parenthesized value slot, the inner
	// structure is appended parenthesized.
	out := spliceNested(
		strings.Fields("SELECT x FROM x"),
		strings.Fields("SELECT x FROM x"))
	want := "SELECT x FROM x ( SELECT x FROM x )"
	if strings.Join(out, " ") != want {
		t.Errorf("fallback splice = %v", out)
	}
}

func TestSplitNestedUnbalancedParens(t *testing.T) {
	// Close paren never arrives (ASR dropped it): inner runs to the end.
	outer, inner := splitNested(strings.Fields(
		"SELECT a FROM t WHERE k IN ( SELECT k FROM s WHERE c = 1"))
	if inner == nil {
		t.Fatal("nested not detected")
	}
	if got := strings.Join(inner, " "); got != "SELECT k FROM s WHERE c = 1" {
		t.Errorf("inner = %q", got)
	}
	if got := strings.Join(outer, " "); !strings.HasSuffix(got, "IN ( x") {
		t.Errorf("outer = %q", got)
	}
}
