package sqlengine

import (
	"fmt"
	"strconv"
	"strings"

	"speakql/internal/speech"
)

// Parse parses one SELECT statement in the supported subset and returns its
// AST. The grammar is the paper's Box 1 plus the extensions SpeakQL itself
// uses (NATURAL JOIN chains, tails without WHERE, one-level nesting in IN
// and comparisons, optional DESC).
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != lexEOF {
		return nil, fmt.Errorf("sqlengine: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []lexToken
	pos  int
}

func (p *parser) peek() lexToken { return p.toks[p.pos] }

func (p *parser) next() lexToken {
	t := p.toks[p.pos]
	if t.kind != lexEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(kind lexKind, text string) bool {
	t := p.peek()
	if t.kind == kind && (text == "" || t.text == text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind lexKind, text string) (lexToken, error) {
	t := p.next()
	if t.kind != kind || (text != "" && t.text != text) {
		return t, fmt.Errorf("sqlengine: expected %q, got %q", text, t.text)
	}
	return t, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	stmt := &SelectStmt{Limit: -1}
	if _, err := p.expect(lexKeyword, "SELECT"); err != nil {
		return nil, err
	}
	// Projection.
	if p.accept(lexSymbol, "*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(lexSymbol, ",") {
				break
			}
		}
	}
	// FROM.
	if _, err := p.expect(lexKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expect(lexIdent, "")
	if err != nil {
		return nil, fmt.Errorf("sqlengine: expected table name: %w", err)
	}
	stmt.From = append(stmt.From, t.text)
	for {
		switch {
		case p.accept(lexKeyword, "NATURAL"):
			if _, err := p.expect(lexKeyword, "JOIN"); err != nil {
				return nil, err
			}
			tt, err := p.expect(lexIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, tt.text)
			stmt.NaturalJoin = true
		case p.accept(lexSymbol, ","):
			tt, err := p.expect(lexIdent, "")
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, tt.text)
		default:
			goto clauses
		}
	}
clauses:
	// WHERE.
	if p.accept(lexKeyword, "WHERE") {
		w, err := p.parseBoolExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	// GROUP BY / ORDER BY / LIMIT tails, any subset in order.
	for {
		switch {
		case p.accept(lexKeyword, "GROUP"):
			if _, err := p.expect(lexKeyword, "BY"); err != nil {
				return nil, err
			}
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = &c
		case p.accept(lexKeyword, "ORDER"):
			if _, err := p.expect(lexKeyword, "BY"); err != nil {
				return nil, err
			}
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = &c
			if p.accept(lexKeyword, "DESC") {
				stmt.OrderDesc = true
			} else {
				p.accept(lexKeyword, "ASC")
			}
		case p.accept(lexKeyword, "LIMIT"):
			n, err := p.expect(lexNumber, "")
			if err != nil {
				return nil, err
			}
			lim, err := strconv.Atoi(n.text)
			if err != nil || lim < 0 {
				return nil, fmt.Errorf("sqlengine: bad LIMIT %q", n.text)
			}
			stmt.Limit = lim
		default:
			return stmt, nil
		}
	}
}

var aggFuncs = map[string]bool{"AVG": true, "SUM": true, "MAX": true, "MIN": true, "COUNT": true}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == lexKeyword && aggFuncs[t.text] {
		p.next()
		if _, err := p.expect(lexSymbol, "("); err != nil {
			return SelectItem{}, err
		}
		if t.text == "COUNT" && p.accept(lexSymbol, "*") {
			if _, err := p.expect(lexSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: "COUNT", Star: true}, nil
		}
		c, err := p.parseColRef()
		if err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(lexSymbol, ")"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: t.text, Col: c}, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: c}, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	t, err := p.expect(lexIdent, "")
	if err != nil {
		return ColRef{}, fmt.Errorf("sqlengine: expected column: %w", err)
	}
	if p.accept(lexSymbol, ".") {
		c, err := p.expect(lexIdent, "")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: t.text, Column: c.text}, nil
	}
	return ColRef{Column: t.text}, nil
}

// parseBoolExpr parses OR-chains of AND-chains of predicates (standard
// precedence; the subset has no parenthesized boolean groups).
func (p *parser) parseBoolExpr() (*BoolNode, error) {
	left, err := p.parseAndChain()
	if err != nil {
		return nil, err
	}
	for p.accept(lexKeyword, "OR") {
		right, err := p.parseAndChain()
		if err != nil {
			return nil, err
		}
		left = &BoolNode{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAndChain() (*BoolNode, error) {
	pred, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	left := &BoolNode{Pred: pred}
	for {
		// Lookahead: AND may belong to a BETWEEN, which parsePredicate
		// already consumed, so any AND here chains predicates.
		if !p.accept(lexKeyword, "AND") {
			return left, nil
		}
		right, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		left = &BoolNode{Op: "AND", Left: left, Right: &BoolNode{Pred: right}}
	}
}

func (p *parser) parsePredicate() (*Predicate, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == lexSymbol && (t.text == "=" || t.text == "<" || t.text == ">"):
		p.next()
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &Predicate{Kind: predCompare, Left: left, Op: t.text, Right: right}, nil
	case t.kind == lexKeyword && (t.text == "BETWEEN" || t.text == "NOT"):
		not := false
		if t.text == "NOT" {
			p.next()
			not = true
		}
		if _, err := p.expect(lexKeyword, "BETWEEN"); err != nil {
			return nil, err
		}
		lo, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		return &Predicate{Kind: predBetween, Left: left, Lo: lo, Hi: hi, Not: not}, nil
	case t.kind == lexKeyword && t.text == "IN":
		p.next()
		if _, err := p.expect(lexSymbol, "("); err != nil {
			return nil, err
		}
		if p.peek().kind == lexKeyword && p.peek().text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexSymbol, ")"); err != nil {
				return nil, err
			}
			return &Predicate{Kind: predIn, Left: left, Sub: sub}, nil
		}
		var vals []Value
		for {
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(lexSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(lexSymbol, ")"); err != nil {
			return nil, err
		}
		return &Predicate{Kind: predIn, Left: left, Vals: vals}, nil
	default:
		return nil, fmt.Errorf("sqlengine: expected comparison operator, got %q", t.text)
	}
}

// parseOperand parses a column reference, literal value, or parenthesized
// scalar subquery.
func (p *parser) parseOperand() (Operand, error) {
	t := p.peek()
	switch {
	case t.kind == lexSymbol && t.text == "(":
		p.next()
		sub, err := p.parseSelect()
		if err != nil {
			return Operand{}, err
		}
		if _, err := p.expect(lexSymbol, ")"); err != nil {
			return Operand{}, err
		}
		return Operand{Sub: sub}, nil
	case t.kind == lexIdent:
		c, err := p.parseColRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: &c}, nil
	default:
		v, err := p.parseValue()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Val: &v}, nil
	}
}

// parseValue parses a literal: number, date, or string. Unquoted
// identifiers in value position are accepted as strings, because SpeakQL's
// rendered queries and users' quick edits both produce them.
func (p *parser) parseValue() (Value, error) {
	t := p.next()
	switch t.kind {
	case lexNumber:
		if _, ok := speech.ParseDateLiteral(t.text); ok {
			return DateVal(t.text), nil
		}
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Value{}, fmt.Errorf("sqlengine: bad number %q", t.text)
			}
			return Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("sqlengine: bad number %q", t.text)
		}
		return Int(i), nil
	case lexString:
		if _, ok := speech.ParseDateLiteral(t.text); ok {
			return DateVal(t.text), nil
		}
		return Str(t.text), nil
	case lexIdent:
		return Str(t.text), nil
	default:
		return Value{}, fmt.Errorf("sqlengine: expected value, got %q", t.text)
	}
}
