package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// lexKind tags lexer tokens.
type lexKind int

const (
	lexIdent lexKind = iota
	lexKeyword
	lexNumber
	lexString // single-quoted; quotes stripped
	lexSymbol
	lexEOF
)

type lexToken struct {
	kind lexKind
	text string
	pos  int
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "ORDER": true, "GROUP": true,
	"BY": true, "NATURAL": true, "JOIN": true, "AND": true, "OR": true,
	"NOT": true, "LIMIT": true, "BETWEEN": true, "IN": true, "SUM": true,
	"COUNT": true, "MAX": true, "AVG": true, "MIN": true, "DESC": true,
	"ASC": true,
}

// lex tokenizes a SQL string, preserving the quoted/unquoted distinction
// that the shared sqltoken tokenizer (which serves the accuracy metrics)
// deliberately drops.
func lex(input string) ([]lexToken, error) {
	var toks []lexToken
	rs := []rune(input)
	i := 0
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'':
			j := i + 1
			for j < len(rs) && rs[j] != '\'' {
				j++
			}
			if j >= len(rs) {
				return nil, fmt.Errorf("sqlengine: unterminated string at %d", i)
			}
			toks = append(toks, lexToken{lexString, string(rs[i+1 : j]), i})
			i = j + 1
		case strings.ContainsRune("*=<>(),.", r):
			// Decimals starting with a digit are consumed by the number
			// branch; a dot reaching here is the qualification symbol.
			toks = append(toks, lexToken{lexSymbol, string(r), i})
			i++
		case unicode.IsDigit(r) || (r == '-' && i+1 < len(rs) && unicode.IsDigit(rs[i+1]) && startsNumber(toks)):
			j := i + 1
			dot := false
			dash := 0
			for j < len(rs) {
				switch {
				case unicode.IsDigit(rs[j]):
					j++
				case rs[j] == '.' && !dot && j+1 < len(rs) && unicode.IsDigit(rs[j+1]):
					dot = true
					j++
				case rs[j] == '-' && dash < 2 && j+1 < len(rs) && unicode.IsDigit(rs[j+1]):
					// Unquoted date literal 1993-01-20.
					dash++
					j++
				default:
					goto done
				}
			}
		done:
			toks = append(toks, lexToken{lexNumber, string(rs[i:j]), i})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i + 1
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			word := string(rs[i:j])
			if sqlKeywords[strings.ToUpper(word)] {
				toks = append(toks, lexToken{lexKeyword, strings.ToUpper(word), i})
			} else {
				toks = append(toks, lexToken{lexIdent, word, i})
			}
			i = j
		default:
			return nil, fmt.Errorf("sqlengine: unexpected character %q at %d", r, i)
		}
	}
	toks = append(toks, lexToken{lexEOF, "", len(rs)})
	return toks, nil
}

// startsNumber reports whether a '-' here can begin a negative number (it
// follows an operator or comparison, not an identifier or number).
func startsNumber(toks []lexToken) bool {
	if len(toks) == 0 {
		return false
	}
	last := toks[len(toks)-1]
	return last.kind == lexSymbol || last.kind == lexKeyword
}
