// Package sqlengine is an in-memory relational engine for the paper's SQL
// subset: Select-Project-Join-Aggregation with NATURAL JOIN and comma
// joins, AND/OR/NOT predicates, BETWEEN, IN (with one level of nesting),
// GROUP BY, ORDER BY, and LIMIT. SpeakQL needs it for three things: the
// literal catalogs (table/attribute names and string attribute values) that
// literal determination votes against, execution-accuracy scoring for the
// NLI comparison (Table 5), and runnable examples. It is a substrate, not a
// DBMS: single-threaded queries over immutable in-memory tables, no
// transactions, no persistence.
package sqlengine

import (
	"strconv"
	"strings"

	"speakql/internal/speech"
)

// Kind enumerates value types.
type Kind int

const (
	// KindNull is the absence of a value.
	KindNull Kind = iota
	// KindInt is a 64-bit integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a character string.
	KindString
	// KindDate is a calendar date (kept in ISO YYYY-MM-DD form, which
	// orders correctly as a string).
	KindDate
)

// Value is one typed SQL value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{Kind: KindNull} }

// Int wraps an integer.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float wraps a float.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str wraps a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// DateVal wraps an ISO date string; it does not validate.
func DateVal(iso string) Value { return Value{Kind: KindDate, S: iso} }

// String renders the value for display and result comparison.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', 10, 64)
	case KindString, KindDate:
		return v.S
	default:
		return "NULL"
	}
}

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// numeric returns the value as a float and whether it is numeric.
func (v Value) numeric() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	}
	return 0, false
}

// Compare orders two values: −1, 0, +1. NULL compares less than everything
// (and equal to NULL); mixed numeric kinds compare numerically; a string
// that parses as a date compares with dates; otherwise values compare as
// case-insensitive strings, which keeps the engine permissive about the
// loosely-typed literals SpeakQL produces.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if af, ok := a.numeric(); ok {
		if bf, ok := b.numeric(); ok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
		// Numeric vs string: try parsing the string.
		if bf, err := strconv.ParseFloat(b.S, 64); err == nil {
			return Compare(a, Float(bf))
		}
	}
	if bf, ok := b.numeric(); ok {
		if af, err := strconv.ParseFloat(a.S, 64); err == nil {
			return Compare(Float(af), Float(bf))
		}
		_ = bf
	}
	as, bs := strings.ToLower(a.S), strings.ToLower(b.S)
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	default:
		return 0
	}
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// CoerceTo converts a loosely-typed literal to a column's type where
// sensible: "70000" to an int column becomes Int(70000); a parseable date
// string to a date column becomes a date. Unconvertible values are returned
// unchanged — comparisons still work via Compare's leniency.
func CoerceTo(v Value, t ColType) Value {
	switch t {
	case IntCol:
		switch v.Kind {
		case KindInt:
			return v
		case KindFloat:
			return Int(int64(v.F))
		case KindString:
			if i, err := strconv.ParseInt(v.S, 10, 64); err == nil {
				return Int(i)
			}
		}
	case FloatCol:
		switch v.Kind {
		case KindFloat:
			return v
		case KindInt:
			return Float(float64(v.I))
		case KindString:
			if f, err := strconv.ParseFloat(v.S, 64); err == nil {
				return Float(f)
			}
		}
	case DateCol:
		if v.Kind == KindString {
			if _, ok := speech.ParseDateLiteral(v.S); ok {
				return DateVal(v.S)
			}
		}
	case StringCol:
		if v.Kind == KindInt || v.Kind == KindFloat {
			return Str(v.String())
		}
	}
	return v
}

// ColType enumerates column types.
type ColType int

const (
	// IntCol holds integers.
	IntCol ColType = iota
	// FloatCol holds floats.
	FloatCol
	// StringCol holds strings.
	StringCol
	// DateCol holds ISO dates.
	DateCol
)

// String names the column type.
func (t ColType) String() string {
	switch t {
	case IntCol:
		return "INT"
	case FloatCol:
		return "FLOAT"
	case DateCol:
		return "DATE"
	default:
		return "STRING"
	}
}
