package sqlengine

import (
	"math/rand"
	"strings"
	"testing"
)

// Property: parsing then rendering then parsing is stable, and execution of
// a parsed statement never panics, for a large randomized query population
// drawn from the same shapes the dataset generator emits.
func TestRandomQueriesNeverPanic(t *testing.T) {
	db := testDB()
	rng := rand.New(rand.NewSource(8))
	tables := []string{"Employees", "Salaries", "Titles"}
	attrs := []string{"EmployeeNumber", "FirstName", "LastName", "Gender",
		"HireDate", "Salary", "FromDate", "ToDate", "Title", "Nonexistent"}
	values := []string{"'John'", "'Engineer'", "60000", "'1993-01-20'", "0", "'zz'"}
	ops := []string{"=", "<", ">"}
	aggs := []string{"AVG", "SUM", "MAX", "MIN", "COUNT"}

	pick := func(xs []string) string { return xs[rng.Intn(len(xs))] }
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		switch rng.Intn(3) {
		case 0:
			b.WriteString("*")
		case 1:
			b.WriteString(pick(attrs))
		default:
			b.WriteString(pick(aggs) + " ( " + pick(attrs) + " )")
		}
		b.WriteString(" FROM " + pick(tables))
		if rng.Intn(2) == 0 {
			b.WriteString(" NATURAL JOIN " + pick(tables))
		}
		if rng.Intn(2) == 0 {
			b.WriteString(" WHERE " + pick(attrs) + " " + pick(ops) + " " + pick(values))
			for rng.Intn(3) == 0 {
				conn := " AND "
				if rng.Intn(2) == 0 {
					conn = " OR "
				}
				b.WriteString(conn + pick(attrs) + " " + pick(ops) + " " + pick(values))
			}
		}
		switch rng.Intn(4) {
		case 0:
			b.WriteString(" GROUP BY " + pick(attrs))
		case 1:
			b.WriteString(" ORDER BY " + pick(attrs))
		}
		if rng.Intn(4) == 0 {
			b.WriteString(" LIMIT 5")
		}
		sql := b.String()

		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", sql, err)
		}
		// Round-trip stability.
		again, err := Parse(stmt.String())
		if err != nil || again.String() != stmt.String() {
			t.Fatalf("render round trip unstable for %q → %q (%v)", sql, stmt.String(), err)
		}
		// Execution: errors are fine (unknown columns etc.), panics are not.
		_, _ = Execute(db, stmt)
	}
}

func TestJoinCapRefusesExplosion(t *testing.T) {
	db := NewDatabase("big")
	a := db.CreateTable("A", Column{Name: "X", Type: IntCol})
	b := db.CreateTable("B", Column{Name: "Y", Type: IntCol})
	for i := 0; i < 2000; i++ {
		if err := a.Insert(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Run(db, "SELECT X FROM A , B"); err == nil {
		t.Fatal("4M-row cross product was not refused")
	}
	// An equi-join over the same tables is fine.
	if _, err := Run(db, "SELECT X FROM A , B WHERE A . X = B . Y"); err != nil {
		t.Fatalf("equi join refused: %v", err)
	}
}

func TestNaturalJoinNoSharedColumnsIsCross(t *testing.T) {
	db := NewDatabase("d")
	a := db.CreateTable("A", Column{Name: "X", Type: IntCol})
	b := db.CreateTable("B", Column{Name: "Y", Type: IntCol})
	_ = a.Insert(Int(1))
	_ = a.Insert(Int(2))
	_ = b.Insert(Int(3))
	res, err := Run(db, "SELECT X FROM A NATURAL JOIN B")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("no-shared-column natural join: %v %v", res, err)
	}
}

func TestOrPrecedence(t *testing.T) {
	// a OR b AND c parses as a OR (b AND c).
	db := testDB()
	res := mustRun(t, db,
		"SELECT FirstName FROM Employees WHERE Gender = 'X' OR Gender = 'M' AND HireDate > '1900-01-01'")
	if len(res.Rows) != 2 {
		t.Fatalf("precedence rows = %v", rowStrings(res))
	}
}

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT a,b FROM t WHERE x='hi there' AND y=3.5 AND d='1993-01-20'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []lexKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "hi there") {
		t.Errorf("string literal lost: %v", texts)
	}
	if !strings.Contains(joined, "3.5") {
		t.Errorf("decimal lost: %v", texts)
	}
	if kinds[len(kinds)-1] != lexEOF {
		t.Error("no EOF token")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("SELECT a @ b"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestUnquotedDateLiteral(t *testing.T) {
	db := testDB()
	// SpeakQL renders dates unquoted sometimes; the lexer reads them as
	// date-shaped numbers.
	res := mustRun(t, db, "SELECT FirstName FROM Employees WHERE HireDate = 1993-01-20")
	if len(res.Rows) != 1 {
		t.Fatalf("unquoted date rows = %v", rowStrings(res))
	}
}

func TestNegativeNumber(t *testing.T) {
	db := testDB()
	res := mustRun(t, db, "SELECT Salary FROM Salaries WHERE Salary > -1")
	if len(res.Rows) != 4 {
		t.Fatalf("negative literal rows = %v", rowStrings(res))
	}
}
