package sqlengine

import (
	"testing"
	"time"
)

func TestDryRunVerdicts(t *testing.T) {
	db := testDB()
	cases := []struct {
		sql     string
		execute bool
		want    Verdict
	}{
		{"SELECT FirstName FROM Employees", false, VerdictOK},
		{"SELECT FirstName FROM Employees", true, VerdictOK},
		{"SELECT FROM WHERE", false, VerdictParseError},
		{"SELECT FirstName FROM Employers", false, VerdictBindError},
		{"SELECT Salary FROM Employees", false, VerdictBindError},
		{"SELECT FirstName FROM Employees WHERE Wage > 100", false, VerdictBindError},
		{"SELECT FirstName FROM Employees WHERE Gender = 'X'", true, VerdictEmptyResult},
		// Bind mode never executes: a provably empty query is still ok.
		{"SELECT FirstName FROM Employees WHERE Gender = 'X'", false, VerdictOK},
		// Aggregates over empty inputs still produce a row.
		{"SELECT COUNT ( * ) FROM Employees WHERE Gender = 'X'", true, VerdictOK},
		// Subquery operands bind against their own FROM list.
		{"SELECT FirstName FROM Employees WHERE EmployeeNumber IN " +
			"( SELECT EmployeeNumber FROM Salaries WHERE Salary > 70000 )", true, VerdictOK},
		{"SELECT FirstName FROM Employees WHERE EmployeeNumber IN " +
			"( SELECT EmployeeNumber FROM Wages )", false, VerdictBindError},
	}
	for _, c := range cases {
		if got := DryRun(db, c.sql, c.execute, nil); got != c.want {
			t.Errorf("DryRun(%q, execute=%v) = %s, want %s", c.sql, c.execute, got, c.want)
		}
	}
}

func TestDryRunBudgetExceededIsTyped(t *testing.T) {
	db := testDB()
	// Employees has 4 rows; a 2-row budget is exhausted on the base scan.
	// The verdict must be the typed budget class, never empty_result.
	bud := &RunBudget{MaxRows: 2}
	if got := DryRun(db, "SELECT FirstName FROM Employees WHERE Gender = 'X'", true, bud); got != VerdictBudgetExceeded {
		t.Fatalf("verdict = %s, want %s", got, VerdictBudgetExceeded)
	}
	_, err := ExecuteBudgeted(db, mustParse(t, "SELECT FirstName FROM Employees"), &RunBudget{MaxRows: 2})
	if !IsBudgetExceeded(err) {
		t.Fatalf("ExecuteBudgeted error = %v, want budget exceeded", err)
	}
}

func TestBudgetChargesJoinWork(t *testing.T) {
	db := testDB()
	// Employees ⨯ Salaries via comma join resolves an equi-join: 4 base
	// rows each side + 4 join outputs = 12 charged rows.
	sql := "SELECT FirstName FROM Employees , Salaries WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber"
	if got := DryRun(db, sql, true, &RunBudget{MaxRows: 9}); got != VerdictBudgetExceeded {
		t.Fatalf("tight join budget verdict = %s, want %s", got, VerdictBudgetExceeded)
	}
	if got := DryRun(db, sql, true, &RunBudget{MaxRows: 100}); got != VerdictOK {
		t.Fatalf("ample join budget verdict = %s, want %s", got, VerdictOK)
	}
}

func TestBudgetExhaustionDoesNotLeak(t *testing.T) {
	db := testDB()
	sql := "SELECT FirstName FROM Employees"
	want := rowStrings(mustRun(t, db, sql))

	// Exhaust budgets repeatedly; the database must keep answering the
	// same query identically through plain Execute and fresh budgets —
	// all exhaustion state lives in the RunBudget, none in db.
	for i := 0; i < 10; i++ {
		if got := DryRun(db, sql, true, &RunBudget{MaxRows: 1}); got != VerdictBudgetExceeded {
			t.Fatalf("iteration %d: verdict = %s, want %s", i, got, VerdictBudgetExceeded)
		}
		if got := rowStrings(mustRun(t, db, sql)); len(got) != len(want) {
			t.Fatalf("iteration %d: Execute after exhaustion returned %d rows, want %d",
				i, len(got), len(want))
		}
		if got := DryRun(db, sql, true, &RunBudget{MaxRows: 1000}); got != VerdictOK {
			t.Fatalf("iteration %d: fresh ample budget verdict = %s, want %s", i, got, VerdictOK)
		}
	}
}

func TestBudgetDeadline(t *testing.T) {
	db := testDB()
	// An already-expired deadline with enough rows to cross a time-check
	// boundary must exceed; the same query with a generous deadline is ok.
	big := db.CreateTable("Big", Column{"N", IntCol})
	for i := 0; i < budgetTimeCheck+10; i++ {
		if err := big.Insert(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	expired := &RunBudget{Deadline: time.Now().Add(-time.Second)}
	if got := DryRun(db, "SELECT N FROM Big", true, expired); got != VerdictBudgetExceeded {
		t.Fatalf("expired deadline verdict = %s, want %s", got, VerdictBudgetExceeded)
	}
	ample := &RunBudget{Deadline: time.Now().Add(time.Minute)}
	if got := DryRun(db, "SELECT N FROM Big", true, ample); got != VerdictOK {
		t.Fatalf("ample deadline verdict = %s, want %s", got, VerdictOK)
	}
}

func TestSchemaDatabaseBindsMembership(t *testing.T) {
	db := NewSchemaDatabase("tenant", []string{"Business", "Review"}, []string{"Name", "Stars"})
	cases := []struct {
		sql  string
		want Verdict
	}{
		{"SELECT Name FROM Business", VerdictOK},
		{"SELECT Stars FROM Review WHERE Name = 'x'", VerdictOK},
		{"SELECT Name FROM Salaries", VerdictBindError},
		{"SELECT Wage FROM Business", VerdictBindError},
	}
	for _, c := range cases {
		if got := DryRun(db, c.sql, false, nil); got != c.want {
			t.Errorf("DryRun(%q) = %s, want %s", c.sql, got, c.want)
		}
	}
	// Executing a rowless schema DB can only ever yield empty_result —
	// which is exactly why callers drop catalog-only tenants to bind mode.
	if got := DryRun(db, "SELECT Name FROM Business", true, nil); got != VerdictEmptyResult {
		t.Fatalf("execute over schema-only DB = %s, want %s", got, VerdictEmptyResult)
	}
}

func TestVerdictRankLattice(t *testing.T) {
	order := []Verdict{VerdictOK, VerdictBudgetExceeded, VerdictEmptyResult, VerdictBindError, VerdictParseError}
	for i := 1; i < len(order); i++ {
		if VerdictRank(order[i-1]) > VerdictRank(order[i]) {
			t.Fatalf("lattice order broken at %s > %s", order[i-1], order[i])
		}
	}
	if VerdictRank("") != VerdictRank(VerdictBudgetExceeded) {
		t.Fatal("unvalidated must rank with budget_exceeded (both unknown)")
	}
	if VerdictRank(VerdictOK) >= VerdictRank("") {
		t.Fatal("ok must outrank unknown")
	}
}

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}
