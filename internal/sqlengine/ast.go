package sqlengine

import "strings"

// ColRef names a column, optionally qualified (Table.Column).
type ColRef struct {
	Table  string // "" when unqualified
	Column string
}

// String renders the reference in the paper's spaced style.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + " . " + c.Column
	}
	return c.Column
}

// SelectItem is one projection: a column, an aggregate over a column, or
// COUNT(*).
type SelectItem struct {
	Agg  string // "", AVG, SUM, MAX, MIN, COUNT
	Col  ColRef // unused when Star
	Star bool   // COUNT(*) when Agg == "COUNT"
}

// String renders the item.
func (s SelectItem) String() string {
	switch {
	case s.Agg != "" && s.Star:
		return s.Agg + " ( * )"
	case s.Agg != "":
		return s.Agg + " ( " + s.Col.String() + " )"
	default:
		return s.Col.String()
	}
}

// Operand is one side of a comparison: a column reference, a literal
// value, or a scalar subquery.
type Operand struct {
	Col *ColRef
	Val *Value
	Sub *SelectStmt
}

// Predicate kinds.
type predKind int

const (
	predCompare predKind = iota
	predBetween
	predIn
)

// Predicate is one atomic WHERE condition.
type Predicate struct {
	Kind  predKind
	Left  Operand
	Op    string  // =, <, > (predCompare)
	Right Operand // predCompare
	Lo    Value   // predBetween
	Hi    Value
	Not   bool    // NOT BETWEEN
	Vals  []Value // predIn
	Sub   *SelectStmt
}

// BoolNode is a WHERE-clause tree: either a predicate leaf or a binary
// AND/OR node. AND binds tighter than OR, standard SQL precedence.
type BoolNode struct {
	Pred        *Predicate
	Op          string // AND / OR
	Left, Right *BoolNode
}

// SelectStmt is the AST of one query in the supported subset.
type SelectStmt struct {
	Star        bool
	Items       []SelectItem
	From        []string // table names
	NaturalJoin bool     // true: NATURAL JOIN chain; false: comma list
	Where       *BoolNode
	GroupBy     *ColRef
	OrderBy     *ColRef
	OrderDesc   bool
	Limit       int // -1 when absent
}

// HasAggregate reports whether any select item aggregates.
func (s *SelectStmt) HasAggregate() bool {
	for _, it := range s.Items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// String renders the statement back to SQL in the paper's spaced style,
// quoting string values.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Star {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(" , ")
			}
			b.WriteString(it.String())
		}
	}
	b.WriteString(" FROM ")
	sep := " , "
	if s.NaturalJoin {
		sep = " NATURAL JOIN "
	}
	b.WriteString(strings.Join(s.From, sep))
	if s.Where != nil {
		b.WriteString(" WHERE ")
		writeBool(&b, s.Where)
	}
	if s.GroupBy != nil {
		b.WriteString(" GROUP BY " + s.GroupBy.String())
	}
	if s.OrderBy != nil {
		b.WriteString(" ORDER BY " + s.OrderBy.String())
		if s.OrderDesc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(Int(int64(s.Limit)).String())
	}
	return b.String()
}

func writeBool(b *strings.Builder, n *BoolNode) {
	if n.Pred != nil {
		writePred(b, n.Pred)
		return
	}
	writeBool(b, n.Left)
	b.WriteString(" " + n.Op + " ")
	writeBool(b, n.Right)
}

func writePred(b *strings.Builder, p *Predicate) {
	writeOperand := func(o Operand) {
		switch {
		case o.Col != nil:
			b.WriteString(o.Col.String())
		case o.Sub != nil:
			b.WriteString("( " + o.Sub.String() + " )")
		case o.Val != nil:
			b.WriteString(renderValue(*o.Val))
		}
	}
	switch p.Kind {
	case predCompare:
		writeOperand(p.Left)
		b.WriteString(" " + p.Op + " ")
		writeOperand(p.Right)
	case predBetween:
		writeOperand(p.Left)
		if p.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN " + renderValue(p.Lo) + " AND " + renderValue(p.Hi))
	case predIn:
		writeOperand(p.Left)
		b.WriteString(" IN ( ")
		if p.Sub != nil {
			b.WriteString(p.Sub.String())
		} else {
			for i, v := range p.Vals {
				if i > 0 {
					b.WriteString(" , ")
				}
				b.WriteString(renderValue(v))
			}
		}
		b.WriteString(" )")
	}
}

func renderValue(v Value) string {
	switch v.Kind {
	case KindString, KindDate:
		return "'" + v.S + "'"
	default:
		return v.String()
	}
}
