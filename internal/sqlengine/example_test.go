package sqlengine_test

import (
	"fmt"

	"speakql/internal/sqlengine"
)

func ExampleRun() {
	db := sqlengine.NewDatabase("demo")
	t := db.CreateTable("Salaries",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Salary", Type: sqlengine.IntCol},
	)
	for i, s := range []int64{60000, 75000, 80000} {
		if err := t.Insert(sqlengine.Int(int64(i+1)), sqlengine.Int(s)); err != nil {
			panic(err)
		}
	}
	res, err := sqlengine.Run(db, "SELECT AVG ( Salary ) FROM Salaries WHERE Salary > 60000")
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows[0][0])
	// Output: 77500
}
