package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// Column is one table column.
type Column struct {
	Name string
	Type ColType
}

// Table is an in-memory relation.
type Table struct {
	Name string
	Cols []Column
	Rows [][]Value
}

// ColIndex returns the index of the named column (case-insensitive), or −1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Insert appends one row, coercing values to the column types.
func (t *Table) Insert(vals ...Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("sqlengine: table %s has %d columns, got %d values",
			t.Name, len(t.Cols), len(vals))
	}
	row := make([]Value, len(vals))
	for i, v := range vals {
		row[i] = CoerceTo(v, t.Cols[i].Type)
	}
	t.Rows = append(t.Rows, row)
	return nil
}

// Database is a named collection of tables.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// CreateTable adds a table; it panics on duplicates, which are programmer
// errors in schema definitions.
func (db *Database) CreateTable(name string, cols ...Column) *Table {
	key := strings.ToLower(name)
	if _, dup := db.tables[key]; dup {
		panic(fmt.Sprintf("sqlengine: duplicate table %s", name))
	}
	t := &Table{Name: name, Cols: cols}
	db.tables[key] = t
	db.order = append(db.order, key)
	return t
}

// Table looks up a table by name (case-insensitive).
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the tables in creation order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.tables[k])
	}
	return out
}

// TableNames returns the table names in creation order.
func (db *Database) TableNames() []string {
	out := make([]string, 0, len(db.order))
	for _, t := range db.Tables() {
		out = append(out, t.Name)
	}
	return out
}

// AttributeNames returns all distinct column names across tables, sorted.
func (db *Database) AttributeNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range db.Tables() {
		for _, c := range t.Cols {
			if !seen[c.Name] {
				seen[c.Name] = true
				out = append(out, c.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// StringValues returns the distinct values of every string-typed column
// (the literal catalog's value domain; numbers and dates are excluded per
// Section 4). maxPerColumn bounds extraction per column (0 = all).
func (db *Database) StringValues(maxPerColumn int) []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range db.Tables() {
		for ci, c := range t.Cols {
			if c.Type != StringCol {
				continue
			}
			n := 0
			for _, row := range t.Rows {
				v := row[ci]
				if v.Kind != KindString || v.S == "" || seen[v.S] {
					continue
				}
				seen[v.S] = true
				out = append(out, v.S)
				n++
				if maxPerColumn > 0 && n >= maxPerColumn {
					break
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// StringValuesByColumn returns, for every string-typed column, its distinct
// values keyed by attribute name — the per-column domains behind
// column-aware literal determination. maxPerColumn bounds extraction
// (0 = all).
func (db *Database) StringValuesByColumn(maxPerColumn int) map[string][]string {
	out := map[string][]string{}
	for _, t := range db.Tables() {
		for ci, c := range t.Cols {
			if c.Type != StringCol {
				continue
			}
			seen := map[string]bool{}
			vals := out[c.Name]
			for _, v := range vals {
				seen[v] = true
			}
			n := 0
			for _, row := range t.Rows {
				v := row[ci]
				if v.Kind != KindString || v.S == "" || seen[v.S] {
					continue
				}
				seen[v.S] = true
				vals = append(vals, v.S)
				n++
				if maxPerColumn > 0 && n >= maxPerColumn {
					break
				}
			}
			sort.Strings(vals)
			out[c.Name] = vals
		}
	}
	return out
}

// ColumnType resolves the type of an attribute name across tables (first
// table wins; schemas in this repo keep attribute types consistent).
func (db *Database) ColumnType(attr string) (ColType, bool) {
	for _, t := range db.Tables() {
		if i := t.ColIndex(attr); i >= 0 {
			return t.Cols[i].Type, true
		}
	}
	return StringCol, false
}
