package sqlengine

import (
	"strings"
	"testing"
	"testing/quick"
)

// testDB builds a small Employees-shaped database used across tests.
func testDB() *Database {
	db := NewDatabase("test")
	emp := db.CreateTable("Employees",
		Column{"EmployeeNumber", IntCol},
		Column{"FirstName", StringCol},
		Column{"LastName", StringCol},
		Column{"Gender", StringCol},
		Column{"HireDate", DateCol},
	)
	sal := db.CreateTable("Salaries",
		Column{"EmployeeNumber", IntCol},
		Column{"Salary", IntCol},
		Column{"FromDate", DateCol},
		Column{"ToDate", DateCol},
	)
	tit := db.CreateTable("Titles",
		Column{"EmployeeNumber", IntCol},
		Column{"Title", StringCol},
	)
	rows := []struct {
		num   int64
		first string
		last  string
		g     string
		hire  string
	}{
		{1, "John", "Smith", "M", "1990-01-15"},
		{2, "Mary", "Jones", "F", "1992-03-20"},
		{3, "Karsten", "Lee", "M", "1996-05-10"},
		{4, "Perla", "Diaz", "F", "1993-01-20"},
	}
	for _, r := range rows {
		if err := emp.Insert(Int(r.num), Str(r.first), Str(r.last), Str(r.g), DateVal(r.hire)); err != nil {
			panic(err)
		}
	}
	salRows := []struct {
		num, sal int64
		from, to string
	}{
		{1, 60000, "1993-01-20", "1994-01-20"},
		{2, 75000, "1993-01-20", "1994-01-20"},
		{3, 80000, "1996-05-10", "1997-05-10"},
		{4, 55000, "1993-06-01", "1994-06-01"},
	}
	for _, r := range salRows {
		if err := sal.Insert(Int(r.num), Int(r.sal), DateVal(r.from), DateVal(r.to)); err != nil {
			panic(err)
		}
	}
	for _, r := range []struct {
		num int64
		t   string
	}{{1, "Engineer"}, {2, "Senior Engineer"}, {3, "Engineer"}, {4, "Staff"}} {
		if err := tit.Insert(Int(r.num), Str(r.t)); err != nil {
			panic(err)
		}
	}
	return db
}

func mustRun(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := Run(db, sql)
	if err != nil {
		t.Fatalf("Run(%q): %v", sql, err)
	}
	return res
}

func rowStrings(res *Result) []string {
	var out []string
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestSimpleSelect(t *testing.T) {
	db := testDB()
	res := mustRun(t, db, "SELECT FirstName FROM Employees")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", rowStrings(res))
	}
	res = mustRun(t, db, "SELECT * FROM Titles")
	if len(res.Rows) != 4 || len(res.Cols) != 2 {
		t.Fatalf("star: %v", rowStrings(res))
	}
}

func TestWhereComparisons(t *testing.T) {
	db := testDB()
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT FirstName FROM Employees WHERE Gender = 'M'", 2},
		{"SELECT FirstName FROM Employees WHERE Gender = 'F'", 2},
		{"SELECT Salary FROM Salaries WHERE Salary > 70000", 2},
		{"SELECT Salary FROM Salaries WHERE Salary < 60000", 1},
		{"SELECT Salary FROM Salaries WHERE Salary = 60000", 1},
		{"SELECT FirstName FROM Employees WHERE HireDate = '1993-01-20'", 1},
		{"SELECT FirstName FROM Employees WHERE HireDate > '1992-01-01'", 3},
		{"SELECT FirstName FROM Employees WHERE Gender = 'M' AND HireDate > '1991-01-01'", 1},
		{"SELECT FirstName FROM Employees WHERE Gender = 'M' OR Gender = 'F'", 4},
		{"SELECT FirstName FROM Employees WHERE Gender = 'M' OR Gender = 'F' AND HireDate > '1993-01-01'", 3},
		{"SELECT Salary FROM Salaries WHERE Salary BETWEEN 60000 AND 80000", 3},
		{"SELECT Salary FROM Salaries WHERE Salary NOT BETWEEN 60000 AND 80000", 1},
		{"SELECT FirstName FROM Employees WHERE FirstName IN ( 'John' , 'Perla' )", 2},
		{"SELECT FirstName FROM Employees WHERE FirstName IN ( 'Nobody' )", 0},
	}
	for _, c := range cases {
		res := mustRun(t, db, c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%q → %d rows (%v), want %d", c.sql, len(res.Rows), rowStrings(res), c.want)
		}
	}
}

func TestCaseInsensitiveNamesAndValues(t *testing.T) {
	db := testDB()
	res := mustRun(t, db, "select firstname from employees where gender = 'm'")
	if len(res.Rows) != 2 {
		t.Fatalf("case-insensitive query failed: %v", rowStrings(res))
	}
}

func TestNaturalJoin(t *testing.T) {
	db := testDB()
	res := mustRun(t, db,
		"SELECT LastName FROM Employees NATURAL JOIN Salaries WHERE Salary > 70000")
	got := rowStrings(res)
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	set := map[string]bool{got[0]: true, got[1]: true}
	if !set["Jones"] || !set["Lee"] {
		t.Errorf("rows = %v, want Jones and Lee", got)
	}
	// Shared column projected once.
	res = mustRun(t, db, "SELECT * FROM Employees NATURAL JOIN Titles")
	if len(res.Cols) != 6 { // 5 + 2 - 1 shared
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestThreeWayNaturalJoin(t *testing.T) {
	db := testDB()
	res := mustRun(t, db,
		"SELECT FirstName , Salary , Title FROM Employees NATURAL JOIN Salaries NATURAL JOIN Titles WHERE Title = 'Engineer'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", rowStrings(res))
	}
}

func TestCommaJoinWithEquiPredicates(t *testing.T) {
	db := testDB()
	res := mustRun(t, db,
		"SELECT FirstName , Salary FROM Employees , Salaries WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Salary > 70000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", rowStrings(res))
	}
	// The paper's Q9 shape: 3-table comma join with two equalities.
	res = mustRun(t, db,
		"SELECT FirstName , AVG ( Salary ) FROM Employees , Salaries , Titles WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = Titles . EmployeeNumber GROUP BY Employees . FirstName")
	if len(res.Rows) != 4 {
		t.Fatalf("Q9 shape rows = %v", rowStrings(res))
	}
}

func TestCrossJoin(t *testing.T) {
	db := testDB()
	res := mustRun(t, db, "SELECT FirstName , Title FROM Employees , Titles")
	if len(res.Rows) != 16 {
		t.Fatalf("cross join rows = %d, want 16", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := testDB()
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT AVG ( Salary ) FROM Salaries", "67500"},
		{"SELECT SUM ( Salary ) FROM Salaries", "270000"},
		{"SELECT MAX ( Salary ) FROM Salaries", "80000"},
		{"SELECT MIN ( Salary ) FROM Salaries", "55000"},
		{"SELECT COUNT ( * ) FROM Employees", "4"},
		{"SELECT COUNT ( Salary ) FROM Salaries WHERE Salary > 70000", "2"},
	}
	for _, c := range cases {
		res := mustRun(t, db, c.sql)
		if len(res.Rows) != 1 || res.Rows[0][0].String() != c.want {
			t.Errorf("%q = %v, want %s", c.sql, rowStrings(res), c.want)
		}
	}
	// Aggregate over empty set is NULL / 0 for COUNT.
	res := mustRun(t, db, "SELECT MAX ( Salary ) FROM Salaries WHERE Salary > 999999")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("MAX over empty = %v", res.Rows[0][0])
	}
	res = mustRun(t, db, "SELECT COUNT ( * ) FROM Salaries WHERE Salary > 999999")
	if res.Rows[0][0].String() != "0" {
		t.Errorf("COUNT over empty = %v", res.Rows[0][0])
	}
}

func TestGroupBy(t *testing.T) {
	db := testDB()
	res := mustRun(t, db,
		"SELECT Gender , AVG ( Salary ) , MAX ( Salary ) FROM Employees NATURAL JOIN Salaries GROUP BY Gender")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", rowStrings(res))
	}
	byG := map[string][]Value{}
	for _, r := range res.Rows {
		byG[r[0].S] = r
	}
	if byG["M"][1].F != 70000 || byG["M"][2].I != 80000 {
		t.Errorf("M group = %v", byG["M"])
	}
	if byG["F"][1].F != 65000 || byG["F"][2].I != 75000 {
		t.Errorf("F group = %v", byG["F"])
	}
	// Table 6 Q6 shape: group key + count.
	res = mustRun(t, db, "SELECT ToDate , COUNT ( Salary ) FROM Salaries GROUP BY ToDate")
	if len(res.Rows) != 3 {
		t.Fatalf("Q6 shape rows = %v", rowStrings(res))
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := testDB()
	res := mustRun(t, db, "SELECT Salary FROM Salaries ORDER BY Salary")
	got := rowStrings(res)
	want := []string{"55000", "60000", "75000", "80000"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	if !res.Ordered {
		t.Error("Ordered flag not set")
	}
	res = mustRun(t, db, "SELECT Salary FROM Salaries ORDER BY Salary DESC LIMIT 2")
	got = rowStrings(res)
	if len(got) != 2 || got[0] != "80000" || got[1] != "75000" {
		t.Fatalf("desc limit = %v", got)
	}
	// ORDER BY a non-projected column (Table 6 Q4 shape).
	res = mustRun(t, db, "SELECT FirstName FROM Employees ORDER BY HireDate")
	got = rowStrings(res)
	if got[0] != "John" || got[3] != "Karsten" {
		t.Fatalf("order by hidden col = %v", got)
	}
	res = mustRun(t, db, "SELECT FirstName FROM Employees LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatal("LIMIT 0 returned rows")
	}
}

func TestNestedIn(t *testing.T) {
	db := testDB()
	res := mustRun(t, db,
		"SELECT FirstName FROM Employees WHERE EmployeeNumber IN ( SELECT EmployeeNumber FROM Salaries WHERE Salary > 70000 )")
	got := rowStrings(res)
	if len(got) != 2 {
		t.Fatalf("nested IN rows = %v", got)
	}
}

func TestScalarSubqueryComparison(t *testing.T) {
	db := testDB()
	res := mustRun(t, db,
		"SELECT FirstName FROM Employees NATURAL JOIN Salaries WHERE Salary = ( SELECT MAX ( Salary ) FROM Salaries )")
	got := rowStrings(res)
	if len(got) != 1 || got[0] != "Karsten" {
		t.Fatalf("scalar subquery rows = %v", got)
	}
}

func TestTable6Queries(t *testing.T) {
	// Every ground-truth query of the user study (Table 6) must parse and
	// execute on an Employees-shaped schema.
	db := testDB()
	dept := db.CreateTable("DepartmentEmployee",
		Column{"EmployeeNumber", IntCol},
		Column{"DepartmentNumber", StringCol},
		Column{"FromDate", DateCol},
	)
	_ = dept.Insert(Int(1), Str("d002"), DateVal("1990-01-15"))
	dm := db.CreateTable("DepartmentManager",
		Column{"EmployeeNumber", IntCol},
		Column{"FromDate", DateCol},
	)
	_ = dm.Insert(Int(3), DateVal("1996-05-10"))

	queries := []string{
		"SELECT AVG ( salary ) FROM Salaries",
		"SELECT Lastname FROM Employees natural join Salaries WHERE Salary > 70000",
		"SELECT FromDate FROM DepartmentEmployee WHERE DepartmentNumber = 'd002'",
		"SELECT FromDate FROM Employees natural join DepartmentManager WHERE FirstName = 'Karsten' ORDER BY HireDate",
		"SELECT SUM ( salary ) FROM Salaries WHERE FromDate = '1993-01-20'",
		"SELECT ToDate , COUNT ( salary ) FROM Salaries GROUP BY ToDate",
		"SELECT ToDate , MAX ( salary ) , COUNT ( salary ) , MIN ( salary ) FROM Salaries WHERE FromDate = '1990-03-20' GROUP BY ToDate",
		"SELECT FromDate , salary , ToDate FROM Employees natural join Salaries WHERE FirstName IN ( 'Tomokazu' , 'Goh' , 'Narain' , 'Perla' , 'Shimshon' )",
		"SELECT FirstName , AVG ( salary ) FROM Employees , Salaries , DepartmentManager WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = DepartmentManager . EmployeeNumber GROUP BY Employees . FirstName",
		"SELECT * FROM Employees natural join Titles WHERE ToDate = '2001-10-09' OR HireDate = '1996-05-10' OR title = 'Engineer' LIMIT 10",
		"SELECT Gender , AVG ( salary ) , MAX ( salary ) FROM Employees natural join Salaries GROUP BY Employees . Gender",
		"SELECT Gender , BirthDate , salary FROM Employees , Salaries , DepartmentManager WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = DepartmentManager . EmployeeNumber ORDER BY Employees . FirstName",
	}
	for i, q := range queries {
		if i == 9 { // Q10 references ToDate via natural join with Titles; our
			// test Titles table lacks date columns — extend it instead of
			// weakening the assertion.
			tt, _ := db.Table("Titles")
			if tt.ColIndex("ToDate") < 0 {
				tt.Cols = append(tt.Cols, Column{"ToDate", DateCol})
				for j := range tt.Rows {
					tt.Rows[j] = append(tt.Rows[j], DateVal("2001-10-09"))
				}
			}
		}
		if i == 11 { // Q12 references BirthDate.
			emp, _ := db.Table("Employees")
			if emp.ColIndex("BirthDate") < 0 {
				emp.Cols = append(emp.Cols, Column{"BirthDate", DateCol})
				for j := range emp.Rows {
					emp.Rows[j] = append(emp.Rows[j], DateVal("1960-01-01"))
				}
			}
		}
		if _, err := Run(db, q); err != nil {
			t.Errorf("Table 6 Q%d failed: %v\n  %s", i+1, err, q)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a = ",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage",
		"SELECT AVG ( FROM t",
		"INSERT INTO t VALUES ( 1 )",
		"SELECT a FROM t WHERE a = 'unterminated",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB()
	for _, bad := range []string{
		"SELECT Nope FROM Employees",
		"SELECT FirstName FROM NoTable",
		"SELECT FirstName FROM Employees WHERE Nope = 1",
		"SELECT FirstName FROM Employees ORDER BY Nope",
		"SELECT FirstName FROM Employees GROUP BY Nope",
	} {
		if _, err := Run(db, bad); err == nil {
			t.Errorf("Run(%q) succeeded, want error", bad)
		}
	}
}

func TestStmtStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT AVG ( Salary ) FROM Salaries",
		"SELECT * FROM Employees WHERE Gender = 'M' LIMIT 10",
		"SELECT FirstName , COUNT ( * ) FROM Employees GROUP BY Gender",
		"SELECT a FROM t WHERE a BETWEEN 1 AND 5",
		"SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5",
		"SELECT a FROM t WHERE b IN ( 'x' , 'y' )",
		"SELECT a FROM t NATURAL JOIN s WHERE t . a = s . b ORDER BY a",
		"SELECT a FROM t WHERE b IN ( SELECT b FROM s )",
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", q, stmt.String(), err)
		}
		if stmt.String() != again.String() {
			t.Errorf("round trip unstable: %q vs %q", stmt.String(), again.String())
		}
	}
}

func TestEqualResults(t *testing.T) {
	a := &Result{Cols: []string{"x"}, Rows: [][]Value{{Int(1)}, {Int(2)}}}
	b := &Result{Cols: []string{"y"}, Rows: [][]Value{{Int(2)}, {Int(1)}}}
	if !EqualResults(a, b) {
		t.Error("multiset comparison failed")
	}
	ao := &Result{Cols: []string{"x"}, Rows: a.Rows, Ordered: true}
	bo := &Result{Cols: []string{"y"}, Rows: b.Rows, Ordered: true}
	if EqualResults(ao, bo) {
		t.Error("ordered comparison ignored order")
	}
	if EqualResults(a, &Result{}) {
		t.Error("row-count mismatch accepted")
	}
	c := &Result{Rows: [][]Value{{Int(1), Int(2)}, {Int(2), Int(3)}}}
	if EqualResults(a, c) {
		t.Error("shape mismatch accepted")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Str("70000"), Int(70000), 0},
		{Int(70000), Str("70000"), 0},
		{Str("abc"), Str("ABC"), 0},
		{Str("a"), Str("b"), -1},
		{DateVal("1993-01-20"), DateVal("1994-01-20"), -1},
		{Null(), Int(0), -1},
		{Null(), Null(), 0},
		{Int(0), Null(), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	vals := []Value{Int(1), Int(5), Float(2.5), Str("a"), Str("z"),
		DateVal("1990-01-01"), Null(), Str("70000")}
	f := func(i, j uint8) bool {
		a := vals[int(i)%len(vals)]
		b := vals[int(j)%len(vals)]
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoerce(t *testing.T) {
	if v := CoerceTo(Str("70000"), IntCol); v.Kind != KindInt || v.I != 70000 {
		t.Errorf("coerce int: %v", v)
	}
	if v := CoerceTo(Str("1993-01-20"), DateCol); v.Kind != KindDate {
		t.Errorf("coerce date: %v", v)
	}
	if v := CoerceTo(Str("abc"), IntCol); v.Kind != KindString {
		t.Errorf("coerce bad int should stay string: %v", v)
	}
	if v := CoerceTo(Int(5), FloatCol); v.Kind != KindFloat || v.F != 5 {
		t.Errorf("coerce float: %v", v)
	}
}

func TestInsertArityError(t *testing.T) {
	db := testDB()
	tt, _ := db.Table("Titles")
	if err := tt.Insert(Int(9)); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestDatabaseCatalogHelpers(t *testing.T) {
	db := testDB()
	if len(db.TableNames()) != 3 {
		t.Errorf("TableNames = %v", db.TableNames())
	}
	attrs := db.AttributeNames()
	found := false
	for _, a := range attrs {
		if a == "Salary" {
			found = true
		}
	}
	if !found {
		t.Errorf("attrs = %v", attrs)
	}
	vals := db.StringValues(0)
	if len(vals) == 0 {
		t.Fatal("no string values extracted")
	}
	for _, v := range vals {
		if v == "60000" || v == "1993-01-20" {
			t.Errorf("non-string value %q extracted", v)
		}
	}
	if typ, ok := db.ColumnType("Salary"); !ok || typ != IntCol {
		t.Errorf("ColumnType(Salary) = %v,%v", typ, ok)
	}
}
