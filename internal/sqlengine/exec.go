package sqlengine

import (
	"fmt"
	"sort"
	"strings"
)

// Result is a query result set.
type Result struct {
	Cols []string
	Rows [][]Value
	// Ordered records whether row order is semantically meaningful
	// (ORDER BY was present), which result comparison honours.
	Ordered bool
}

// maxJoinRows caps intermediate join sizes; generated queries over synthetic
// data stay far below it, and hitting it indicates a runaway cross product.
const maxJoinRows = 2_000_000

// Execute runs a parsed statement against the database.
func Execute(db *Database, stmt *SelectStmt) (*Result, error) {
	return ExecuteBudgeted(db, stmt, nil)
}

// ExecuteBudgeted runs a parsed statement under an optional work budget
// (nil = unlimited, identical to Execute). The budget is charged for every
// row materialized — base-table scans, join outputs, and subquery work all
// draw from the same allowance — so a runaway candidate is cut off after a
// bounded amount of work with ErrBudgetExceeded. All budget state lives in
// bud itself; the Database is never mutated, so an exhausted run leaves no
// trace in shared engine state.
func ExecuteBudgeted(db *Database, stmt *SelectStmt, bud *RunBudget) (*Result, error) {
	rel, err := buildFrom(db, stmt, bud)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		filtered := rel.rows[:0:0]
		for _, row := range rel.rows {
			ok, err := evalBool(db, rel, row, stmt.Where, bud)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, row)
			}
		}
		rel.rows = filtered
	}

	var res *Result
	switch {
	case stmt.GroupBy != nil:
		res, err = execGrouped(rel, stmt)
	case stmt.HasAggregate():
		res, err = execAggregate(rel, stmt)
	default:
		res, err = execProject(rel, stmt)
	}
	if err != nil {
		return nil, err
	}
	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return res, nil
}

// Run parses and executes sql in one step.
func Run(db *Database, sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(db, stmt)
}

// relation is an intermediate working set with a bound schema.
type relation struct {
	cols []boundCol
	rows [][]Value
}

type boundCol struct {
	table string
	name  string
	typ   ColType
}

// resolve finds the index of a column reference; unqualified names match
// the first table that has them (the permissive choice SpeakQL's loosely
// disambiguated queries need).
func (r *relation) resolve(c ColRef) (int, error) {
	for i, bc := range r.cols {
		if !strings.EqualFold(bc.name, c.Column) {
			continue
		}
		if c.Table == "" || strings.EqualFold(bc.table, c.Table) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sqlengine: unknown column %s", c.String())
}

// buildFrom assembles the FROM relation: NATURAL JOIN chains hash-join on
// shared column names; comma lists use extracted equi-join predicates where
// possible and fall back to cross products.
func buildFrom(db *Database, stmt *SelectStmt, bud *RunBudget) (*relation, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("sqlengine: no tables")
	}
	base, err := tableRelation(db, stmt.From[0], bud)
	if err != nil {
		return nil, err
	}
	for _, name := range stmt.From[1:] {
		next, err := tableRelation(db, name, bud)
		if err != nil {
			return nil, err
		}
		if stmt.NaturalJoin {
			base, err = naturalJoin(base, next, bud)
		} else {
			base, err = equiOrCrossJoin(base, next, stmt.Where, bud)
		}
		if err != nil {
			return nil, err
		}
	}
	return base, nil
}

func tableRelation(db *Database, name string, bud *RunBudget) (*relation, error) {
	t, ok := db.Table(name)
	if !ok {
		return nil, fmt.Errorf("sqlengine: unknown table %s", name)
	}
	if err := bud.charge(len(t.Rows)); err != nil {
		return nil, err
	}
	rel := &relation{cols: make([]boundCol, len(t.Cols)), rows: t.Rows}
	for i, c := range t.Cols {
		rel.cols[i] = boundCol{table: t.Name, name: c.Name, typ: c.Type}
	}
	return rel, nil
}

// naturalJoin hash-joins two relations on all shared column names,
// projecting the shared columns once (left side), per SQL NATURAL JOIN.
func naturalJoin(a, b *relation, bud *RunBudget) (*relation, error) {
	var aIdx, bIdx []int
	for i, ac := range a.cols {
		for j, bc := range b.cols {
			if strings.EqualFold(ac.name, bc.name) {
				aIdx = append(aIdx, i)
				bIdx = append(bIdx, j)
			}
		}
	}
	if len(aIdx) == 0 {
		return crossJoin(a, b, bud)
	}
	keep := make([]int, 0, len(b.cols))
	shared := make(map[int]bool, len(bIdx))
	for _, j := range bIdx {
		shared[j] = true
	}
	for j := range b.cols {
		if !shared[j] {
			keep = append(keep, j)
		}
	}
	out := &relation{cols: append([]boundCol{}, a.cols...)}
	for _, j := range keep {
		out.cols = append(out.cols, b.cols[j])
	}
	// Hash the smaller side.
	index := make(map[string][][]Value)
	for _, brow := range b.rows {
		index[joinKey(brow, bIdx)] = append(index[joinKey(brow, bIdx)], brow)
	}
	for _, arow := range a.rows {
		for _, brow := range index[joinKey(arow, aIdx)] {
			if err := bud.charge(1); err != nil {
				return nil, err
			}
			row := append(append([]Value{}, arow...), pick(brow, keep)...)
			out.rows = append(out.rows, row)
			if len(out.rows) > maxJoinRows {
				return nil, fmt.Errorf("sqlengine: join result exceeds %d rows", maxJoinRows)
			}
		}
	}
	return out, nil
}

// equiOrCrossJoin joins a comma-listed table using any Table.Col = Table.Col
// equality found in the WHERE tree, else a cross product.
func equiOrCrossJoin(a, b *relation, where *BoolNode, bud *RunBudget) (*relation, error) {
	var aIdx, bIdx []int
	collectEquiPairs(where, func(l, r ColRef) {
		li, lerr := a.resolve(l)
		ri, rerr := b.resolve(r)
		if lerr == nil && rerr == nil {
			aIdx = append(aIdx, li)
			bIdx = append(bIdx, ri)
			return
		}
		li, lerr = a.resolve(r)
		ri, rerr = b.resolve(l)
		if lerr == nil && rerr == nil {
			aIdx = append(aIdx, li)
			bIdx = append(bIdx, ri)
		}
	})
	if len(aIdx) == 0 {
		return crossJoin(a, b, bud)
	}
	out := &relation{cols: append(append([]boundCol{}, a.cols...), b.cols...)}
	index := make(map[string][][]Value)
	for _, brow := range b.rows {
		index[joinKey(brow, bIdx)] = append(index[joinKey(brow, bIdx)], brow)
	}
	for _, arow := range a.rows {
		for _, brow := range index[joinKey(arow, aIdx)] {
			if err := bud.charge(1); err != nil {
				return nil, err
			}
			out.rows = append(out.rows, append(append([]Value{}, arow...), brow...))
			if len(out.rows) > maxJoinRows {
				return nil, fmt.Errorf("sqlengine: join result exceeds %d rows", maxJoinRows)
			}
		}
	}
	return out, nil
}

// collectEquiPairs walks the AND-reachable predicates of a WHERE tree and
// reports column=column equalities. OR branches are skipped: their
// equalities do not constrain the whole result.
func collectEquiPairs(n *BoolNode, f func(l, r ColRef)) {
	if n == nil {
		return
	}
	if n.Pred != nil {
		p := n.Pred
		if p.Kind == predCompare && p.Op == "=" && p.Left.Col != nil && p.Right.Col != nil {
			f(*p.Left.Col, *p.Right.Col)
		}
		return
	}
	if n.Op == "AND" {
		collectEquiPairs(n.Left, f)
		collectEquiPairs(n.Right, f)
	}
}

func crossJoin(a, b *relation, bud *RunBudget) (*relation, error) {
	if len(a.rows)*len(b.rows) > maxJoinRows {
		return nil, fmt.Errorf("sqlengine: cross product of %d×%d rows refused",
			len(a.rows), len(b.rows))
	}
	out := &relation{cols: append(append([]boundCol{}, a.cols...), b.cols...)}
	for _, ar := range a.rows {
		if err := bud.charge(len(b.rows)); err != nil {
			return nil, err
		}
		for _, br := range b.rows {
			out.rows = append(out.rows, append(append([]Value{}, ar...), br...))
		}
	}
	return out, nil
}

func joinKey(row []Value, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		b.WriteString(strings.ToLower(row[i].String()))
		b.WriteByte(0)
	}
	return b.String()
}

func pick(row []Value, idx []int) []Value {
	out := make([]Value, len(idx))
	for i, j := range idx {
		out[i] = row[j]
	}
	return out
}

// evalBool evaluates a WHERE tree on one row.
func evalBool(db *Database, rel *relation, row []Value, n *BoolNode, bud *RunBudget) (bool, error) {
	if n.Pred != nil {
		return evalPred(db, rel, row, n.Pred, bud)
	}
	l, err := evalBool(db, rel, row, n.Left, bud)
	if err != nil {
		return false, err
	}
	if n.Op == "AND" && !l {
		return false, nil
	}
	if n.Op == "OR" && l {
		return true, nil
	}
	return evalBool(db, rel, row, n.Right, bud)
}

func evalPred(db *Database, rel *relation, row []Value, p *Predicate, bud *RunBudget) (bool, error) {
	switch p.Kind {
	case predCompare:
		lv, err := operandValue(db, rel, row, p.Left, bud)
		if err != nil {
			return false, err
		}
		rv, err := operandValue(db, rel, row, p.Right, bud)
		if err != nil {
			return false, err
		}
		cmp := Compare(lv, rv)
		switch p.Op {
		case "=":
			return cmp == 0, nil
		case "<":
			return cmp < 0, nil
		default:
			return cmp > 0, nil
		}
	case predBetween:
		lv, err := operandValue(db, rel, row, p.Left, bud)
		if err != nil {
			return false, err
		}
		in := Compare(lv, p.Lo) >= 0 && Compare(lv, p.Hi) <= 0
		return in != p.Not, nil
	default: // predIn
		lv, err := operandValue(db, rel, row, p.Left, bud)
		if err != nil {
			return false, err
		}
		if p.Sub != nil {
			sub, err := ExecuteBudgeted(db, p.Sub, bud)
			if err != nil {
				return false, err
			}
			for _, r := range sub.Rows {
				if len(r) > 0 && Equal(lv, r[0]) {
					return true, nil
				}
			}
			return false, nil
		}
		for _, v := range p.Vals {
			if Equal(lv, v) {
				return true, nil
			}
		}
		return false, nil
	}
}

func operandValue(db *Database, rel *relation, row []Value, o Operand, bud *RunBudget) (Value, error) {
	switch {
	case o.Col != nil:
		i, err := rel.resolve(*o.Col)
		if err != nil {
			return Null(), err
		}
		return row[i], nil
	case o.Sub != nil:
		sub, err := ExecuteBudgeted(db, o.Sub, bud)
		if err != nil {
			return Null(), err
		}
		if len(sub.Rows) == 0 || len(sub.Rows[0]) == 0 {
			return Null(), nil
		}
		return sub.Rows[0][0], nil
	case o.Val != nil:
		return *o.Val, nil
	default:
		return Null(), fmt.Errorf("sqlengine: empty operand")
	}
}

// execProject handles non-aggregated queries: optional pre-projection sort,
// then projection.
func execProject(rel *relation, stmt *SelectStmt) (*Result, error) {
	if stmt.OrderBy != nil {
		i, err := rel.resolve(*stmt.OrderBy)
		if err != nil {
			return nil, err
		}
		rows := append([][]Value{}, rel.rows...)
		sort.SliceStable(rows, func(x, y int) bool {
			c := Compare(rows[x][i], rows[y][i])
			if stmt.OrderDesc {
				return c > 0
			}
			return c < 0
		})
		rel = &relation{cols: rel.cols, rows: rows}
	}
	res := &Result{Ordered: stmt.OrderBy != nil}
	if stmt.Star {
		for _, c := range rel.cols {
			res.Cols = append(res.Cols, c.name)
		}
		res.Rows = append(res.Rows, rel.rows...)
		return res, nil
	}
	idx := make([]int, len(stmt.Items))
	for k, it := range stmt.Items {
		i, err := rel.resolve(it.Col)
		if err != nil {
			return nil, err
		}
		idx[k] = i
		res.Cols = append(res.Cols, it.Col.Column)
	}
	for _, row := range rel.rows {
		res.Rows = append(res.Rows, pick(row, idx))
	}
	return res, nil
}

// execAggregate handles aggregate queries without GROUP BY: one output row.
func execAggregate(rel *relation, stmt *SelectStmt) (*Result, error) {
	res := &Result{}
	row := make([]Value, len(stmt.Items))
	for k, it := range stmt.Items {
		res.Cols = append(res.Cols, it.String())
		v, err := aggValue(rel, rel.rows, it)
		if err != nil {
			return nil, err
		}
		row[k] = v
	}
	res.Rows = [][]Value{row}
	return res, nil
}

// execGrouped handles GROUP BY queries.
func execGrouped(rel *relation, stmt *SelectStmt) (*Result, error) {
	gi, err := rel.resolve(*stmt.GroupBy)
	if err != nil {
		return nil, err
	}
	groups := make(map[string][][]Value)
	var order []string
	for _, row := range rel.rows {
		key := strings.ToLower(row[gi].String())
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], row)
	}
	sort.Strings(order)
	res := &Result{}
	for _, it := range stmt.Items {
		res.Cols = append(res.Cols, it.String())
	}
	if stmt.Star {
		return nil, fmt.Errorf("sqlengine: SELECT * with GROUP BY unsupported")
	}
	for _, key := range order {
		rows := groups[key]
		out := make([]Value, len(stmt.Items))
		for k, it := range stmt.Items {
			if it.Agg == "" {
				i, err := rel.resolve(it.Col)
				if err != nil {
					return nil, err
				}
				out[k] = rows[0][i]
				continue
			}
			v, err := aggValue(rel, rows, it)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func aggValue(rel *relation, rows [][]Value, it SelectItem) (Value, error) {
	if it.Agg == "" {
		i, err := rel.resolve(it.Col)
		if err != nil {
			return Null(), err
		}
		if len(rows) == 0 {
			return Null(), nil
		}
		return rows[0][i], nil
	}
	if it.Agg == "COUNT" {
		if it.Star {
			return Int(int64(len(rows))), nil
		}
		i, err := rel.resolve(it.Col)
		if err != nil {
			return Null(), err
		}
		n := 0
		for _, r := range rows {
			if !r[i].IsNull() {
				n++
			}
		}
		return Int(int64(n)), nil
	}
	i, err := rel.resolve(it.Col)
	if err != nil {
		return Null(), err
	}
	var sum float64
	var cnt int
	var best Value
	for _, r := range rows {
		v := r[i]
		if v.IsNull() {
			continue
		}
		if f, ok := v.numeric(); ok {
			sum += f
		}
		switch it.Agg {
		case "MAX":
			if cnt == 0 || Compare(v, best) > 0 {
				best = v
			}
		case "MIN":
			if cnt == 0 || Compare(v, best) < 0 {
				best = v
			}
		}
		cnt++
	}
	if cnt == 0 {
		return Null(), nil
	}
	switch it.Agg {
	case "AVG":
		return Float(sum / float64(cnt)), nil
	case "SUM":
		if sum == float64(int64(sum)) {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	default: // MAX / MIN
		return best, nil
	}
}

// EqualResults compares two result sets for execution-accuracy scoring:
// ordered comparison when either carries ORDER BY semantics, multiset
// comparison otherwise. Column names are ignored (SpeakQL may label an
// aggregate differently); shapes and values must match.
func EqualResults(a, b *Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	if len(a.Rows) == 0 {
		return len(a.Cols) == len(b.Cols)
	}
	if len(a.Rows[0]) != len(b.Rows[0]) {
		return false
	}
	keyOf := func(row []Value) string {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = strings.ToLower(v.String())
		}
		return strings.Join(parts, "\x00")
	}
	if a.Ordered && b.Ordered {
		for i := range a.Rows {
			if keyOf(a.Rows[i]) != keyOf(b.Rows[i]) {
				return false
			}
		}
		return true
	}
	counts := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		counts[keyOf(r)]++
	}
	for _, r := range b.Rows {
		counts[keyOf(r)]--
		if counts[keyOf(r)] < 0 {
			return false
		}
	}
	return true
}
