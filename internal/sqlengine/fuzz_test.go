package sqlengine

import (
	"strings"
	"testing"
)

// FuzzParse hardens the lexer+parser: arbitrary input must either parse or
// return an error — never panic — and anything that parses must render to a
// string that parses again to the same rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT * FROM t WHERE a = 'x' AND b < 3 OR c > 1993-01-20",
		"SELECT AVG ( a ) , COUNT ( * ) FROM t NATURAL JOIN s GROUP BY g",
		"SELECT a FROM t WHERE k IN ( SELECT k FROM s WHERE c > 1 ) ORDER BY a DESC LIMIT 5",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE b NOT BETWEEN 'x' AND 'y'",
		"'unterminated",
		"SELECT SELECT SELECT",
		"((((((((",
		"SELECT a FROM t WHERE x = -5",
		"SELECT a FROM t WHERE x = 3.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		rendered := stmt.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of parsed query does not reparse: %q → %q: %v",
				sql, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("render not a fixed point: %q vs %q", rendered, again.String())
		}
	})
}

// FuzzExecute: any parsed statement must execute or error cleanly against a
// populated database.
func FuzzExecute(f *testing.F) {
	db := testDB()
	seeds := []string{
		"SELECT FirstName FROM Employees WHERE Gender = 'M'",
		"SELECT AVG ( Salary ) FROM Salaries GROUP BY ToDate",
		"SELECT * FROM Employees NATURAL JOIN Titles ORDER BY FirstName LIMIT 2",
		"SELECT Nope FROM Employees",
		"SELECT FirstName FROM Employees WHERE EmployeeNumber IN ( SELECT EmployeeNumber FROM Salaries )",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		if strings.Count(sql, "(") > 8 {
			return // avoid pathological nesting depth in fuzz exploration
		}
		stmt, err := Parse(sql)
		if err != nil {
			return
		}
		_, _ = Execute(db, stmt)
	})
}
