package sqlengine

// dryrun.go is the execution-guided validation entry point (DESIGN.md §15):
// a candidate query is dry-run in up to three stages — parse, bind against
// the schema, and optionally a bounded execute — and classified into a
// Verdict. The correction engine uses verdicts to demote provably broken
// candidates below any that run (the self-healing re-rank), so the
// classification here is deliberately conservative: a candidate is only
// marked worse than "unknown" when the failure is provable within budget.

import (
	"errors"
	"fmt"
	"time"
)

// Verdict classifies one candidate's dry-run outcome.
type Verdict string

// The verdict lattice, best to worst. BudgetExceeded means the bounded
// execute ran out of allowance before proving anything — the candidate is
// neither vindicated nor condemned, so it ranks with the unvalidated.
const (
	VerdictOK             Verdict = "ok"
	VerdictBudgetExceeded Verdict = "budget_exceeded"
	VerdictEmptyResult    Verdict = "empty_result"
	VerdictBindError      Verdict = "bind_error"
	VerdictParseError     Verdict = "parse_error"
)

// VerdictRank orders verdicts for re-ranking: lower is better. The empty
// verdict (candidate never validated) ranks with budget_exceeded — both
// mean "unknown", and unknowns must not be demoted below provable
// failures' survivors nor promoted above proven-runnable candidates.
func VerdictRank(v Verdict) int {
	switch v {
	case VerdictOK:
		return 0
	case "", VerdictBudgetExceeded:
		return 1
	case VerdictEmptyResult:
		return 2
	case VerdictBindError:
		return 3
	case VerdictParseError:
		return 4
	default:
		return 1
	}
}

// ErrBudgetExceeded is returned (wrapped) by ExecuteBudgeted when a
// RunBudget runs out of rows or time.
var ErrBudgetExceeded = errors.New("sqlengine: execution budget exceeded")

// RunBudget bounds the work one budgeted execution may do. It is charged
// once per row materialized anywhere in the plan — base-table scans, join
// outputs, and subqueries all draw from the same allowance. A RunBudget is
// single-use and not safe for concurrent use; all exhaustion state lives
// here, never in the Database, so a blown budget cannot poison later runs.
type RunBudget struct {
	// MaxRows is the total row allowance (0 = unlimited).
	MaxRows int64
	// Deadline is the wall-clock cutoff (zero = none). It is checked
	// every budgetTimeCheck charges to keep the per-row cost at a counter
	// increment.
	Deadline time.Time

	rows int64
}

// budgetTimeCheck is how many charged rows pass between deadline checks.
const budgetTimeCheck = 1024

// Remaining returns the unused row allowance (MaxRows when unlimited).
func (b *RunBudget) Remaining() int64 {
	if b == nil || b.MaxRows <= 0 {
		return 0
	}
	if b.rows >= b.MaxRows {
		return 0
	}
	return b.MaxRows - b.rows
}

// charge consumes n rows of allowance; a nil budget is unlimited.
func (b *RunBudget) charge(n int) error {
	if b == nil {
		return nil
	}
	prev := b.rows
	b.rows += int64(n)
	if b.MaxRows > 0 && b.rows > b.MaxRows {
		return fmt.Errorf("%w: %d rows over MaxRows=%d", ErrBudgetExceeded, b.rows, b.MaxRows)
	}
	if !b.Deadline.IsZero() && prev/budgetTimeCheck != b.rows/budgetTimeCheck &&
		time.Now().After(b.Deadline) {
		return fmt.Errorf("%w: deadline passed after %d rows", ErrBudgetExceeded, b.rows)
	}
	return nil
}

// IsBudgetExceeded reports whether err is a budget exhaustion (as opposed
// to a genuine execution failure).
func IsBudgetExceeded(err error) bool { return errors.Is(err, ErrBudgetExceeded) }

// Bind resolves every name in stmt against db's schema without touching a
// single row: each FROM table must exist, and every column reference —
// select items, WHERE operands (recursing into subqueries), GROUP BY,
// ORDER BY — must resolve in the FROM tables' combined column set, under
// the same permissive unqualified-name rule Execute uses. A nil error
// means Execute cannot fail on name resolution.
func Bind(db *Database, stmt *SelectStmt) error {
	rel := &relation{}
	for _, name := range stmt.From {
		t, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("sqlengine: unknown table %s", name)
		}
		for _, c := range t.Cols {
			rel.cols = append(rel.cols, boundCol{table: t.Name, name: c.Name, typ: c.Type})
		}
	}
	if len(stmt.From) == 0 {
		return fmt.Errorf("sqlengine: no tables")
	}
	if !stmt.Star {
		for _, it := range stmt.Items {
			if it.Star {
				continue // COUNT(*)
			}
			if _, err := rel.resolve(it.Col); err != nil {
				return err
			}
		}
	}
	if err := bindBool(db, rel, stmt.Where); err != nil {
		return err
	}
	if stmt.GroupBy != nil {
		if _, err := rel.resolve(*stmt.GroupBy); err != nil {
			return err
		}
	}
	if stmt.OrderBy != nil {
		if _, err := rel.resolve(*stmt.OrderBy); err != nil {
			return err
		}
	}
	return nil
}

func bindBool(db *Database, rel *relation, n *BoolNode) error {
	if n == nil {
		return nil
	}
	if n.Pred != nil {
		return bindPred(db, rel, n.Pred)
	}
	if err := bindBool(db, rel, n.Left); err != nil {
		return err
	}
	return bindBool(db, rel, n.Right)
}

func bindPred(db *Database, rel *relation, p *Predicate) error {
	for _, o := range []Operand{p.Left, p.Right} {
		if o.Col != nil {
			if _, err := rel.resolve(*o.Col); err != nil {
				return err
			}
		}
		if o.Sub != nil {
			if err := Bind(db, o.Sub); err != nil {
				return err
			}
		}
	}
	if p.Sub != nil {
		return Bind(db, p.Sub)
	}
	return nil
}

// DryRun classifies one candidate SQL string against db. With execute
// false it stops after name binding (parse_error / bind_error / ok). With
// execute true it additionally runs the statement under bud and
// distinguishes a query that provably returns nothing (empty_result) from
// one whose budget ran out first (budget_exceeded). Any other runtime
// failure — including the engine's hard join caps — counts as bind_error:
// the candidate cannot run as written.
func DryRun(db *Database, sql string, execute bool, bud *RunBudget) Verdict {
	stmt, err := Parse(sql)
	if err != nil {
		return VerdictParseError
	}
	if err := Bind(db, stmt); err != nil {
		return VerdictBindError
	}
	if !execute {
		return VerdictOK
	}
	res, err := ExecuteBudgeted(db, stmt, bud)
	switch {
	case IsBudgetExceeded(err):
		return VerdictBudgetExceeded
	case err != nil:
		return VerdictBindError
	case len(res.Rows) == 0:
		return VerdictEmptyResult
	default:
		return VerdictOK
	}
}

// NewSchemaDatabase builds a rowless bind-only database from flat name
// lists — the strongest schema a registry tenant's catalog can support,
// since catalogs record table and attribute membership but not which
// attribute belongs to which table. Every table therefore carries every
// attribute: Bind against the result checks exactly that each referenced
// table is a known table and each referenced attribute a known attribute.
// With no rows, execute-mode validation over it degenerates to bind mode.
func NewSchemaDatabase(name string, tables, attrs []string) *Database {
	db := NewDatabase(name)
	cols := make([]Column, len(attrs))
	for i, a := range attrs {
		cols[i] = Column{Name: a, Type: StringCol}
	}
	for _, t := range tables {
		if _, dup := db.Table(t); dup {
			continue
		}
		db.CreateTable(t, cols...)
	}
	return db
}
