package core

// degradation_test.go covers the graceful-degradation ladder: every Output
// names its level, levels match what actually happened, and a degraded
// response is explicitly partial (skeletons with nil bindings) — never a
// half-filled candidate.

import (
	"context"
	"testing"
	"time"

	"speakql/internal/faultinject"
)

const degradeTranscript = "select sales from employers wear name equals Jon"

func TestDegradationFullOnHealthyPath(t *testing.T) {
	out := engine(t).CorrectTopK(degradeTranscript, 3)
	if out.Degradation != DegradationFull {
		t.Fatalf("degradation = %q, want full", out.Degradation)
	}
	if out.Degraded() {
		t.Error("Degraded() true at full fidelity")
	}
	for i, c := range out.Candidates {
		if len(c.Bindings) == 0 {
			t.Errorf("full-fidelity candidate %d has no bindings", i)
		}
	}
}

// A tight soft budget (the whole window) forces the literals_top1 rung: one
// structure, literals still determined — a filled candidate, not a skeleton.
func TestDegradationLiteralsTop1UnderSoftBudget(t *testing.T) {
	e, err := NewEngine(testEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	e.SetLiteralBudgetFraction(1.0) // any structure latency trips the rung
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out := e.CorrectTopKContext(ctx, degradeTranscript, 3)
	if out.Degradation != DegradationLiteralsTop1 {
		t.Fatalf("degradation = %q, want literals_top1", out.Degradation)
	}
	if !out.Degraded() {
		t.Error("Degraded() false on literals_top1")
	}
	if len(out.Candidates) != 1 {
		t.Fatalf("top-1 mode kept %d candidates, want 1", len(out.Candidates))
	}
	c := out.Candidates[0]
	if len(c.Bindings) == 0 {
		t.Fatal("literals_top1 candidate has no bindings — should still be filled")
	}
	for _, b := range c.Bindings {
		if len(b.TopK) > 1 {
			t.Errorf("placeholder %s carries %d literal alternatives in top-1 mode",
				b.Placeholder, len(b.TopK))
		}
	}
	// The soft rung must not fire without a deadline.
	out = e.CorrectTopK(degradeTranscript, 3)
	if out.Degradation != DegradationFull {
		t.Errorf("no-deadline correction degraded to %q", out.Degradation)
	}
}

// A failing literal stage degrades the whole response to skeletons: every
// candidate keeps its structure, with placeholders unbound — never a mix of
// filled and unfilled candidates in one ranking.
func TestDegradationStructureOnlyOnLiteralFailure(t *testing.T) {
	inj, err := faultinject.Parse("seed=9;literal:error@1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	out := engine(t).CorrectTopK(degradeTranscript, 3)
	if out.Degradation != DegradationStructureOnly {
		t.Fatalf("degradation = %q, want structure_only", out.Degradation)
	}
	if out.Err != nil {
		t.Fatalf("structure_only must be served, not failed: %v", out.Err)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("structure_only served no skeletons")
	}
	for i, c := range out.Candidates {
		if c.Bindings != nil {
			t.Errorf("candidate %d: bindings on a structure_only response", i)
		}
		if len(c.Tokens) != len(c.Structure) {
			t.Errorf("candidate %d: tokens %v diverge from structure %v — half-filled?",
				i, c.Tokens, c.Structure)
		}
		for j, tok := range c.Tokens {
			if tok != c.Structure[j] {
				t.Errorf("candidate %d token %d: %q filled despite structure_only", i, j, tok)
			}
		}
	}
}

// A failing structure stage sheds: explicit error, no candidates.
func TestDegradationShedOnStructureFailure(t *testing.T) {
	inj, err := faultinject.Parse("seed=9;structure:error@1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	out := engine(t).Correct(degradeTranscript)
	if out.Degradation != DegradationShed {
		t.Fatalf("degradation = %q, want shed", out.Degradation)
	}
	if out.Err == nil {
		t.Error("shed on stage failure must carry the error")
	}
	if len(out.Candidates) != 0 {
		t.Errorf("shed response carries %d candidates", len(out.Candidates))
	}
}

// An expired context sheds before any work — and still names its level, so
// deadline_hit and degradation can never disagree at the HTTP layer.
func TestDegradationShedOnExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := engine(t).CorrectTopKContext(ctx, degradeTranscript, 3)
	if out.Degradation != DegradationShed {
		t.Fatalf("degradation = %q, want shed", out.Degradation)
	}
	if len(out.Candidates) != 0 {
		t.Errorf("cancelled correction produced %d candidates", len(out.Candidates))
	}
	if out.Err != nil {
		t.Errorf("deadline shed is not a stage failure: %v", out.Err)
	}
}
