package core

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"speakql/internal/faultinject"
	"speakql/internal/sqlengine"
)

// validateTestDB builds a small database matching testEngineConfig's
// catalog, so corrected candidates can actually bind and run.
func validateTestDB() *sqlengine.Database {
	db := sqlengine.NewDatabase("employees")
	emp := db.CreateTable("Employees",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "FirstName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "LastName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Gender", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "HireDate", Type: sqlengine.DateCol},
	)
	sal := db.CreateTable("Salaries",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Salary", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "FromDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "ToDate", Type: sqlengine.DateCol},
	)
	for _, r := range []struct {
		num         int64
		first, last string
		g, hire     string
	}{
		{1, "John", "Smith", "M", "1990-01-15"},
		{2, "Jon", "Jones", "M", "1992-03-20"},
		{3, "Karsten", "Lee", "M", "1996-05-10"},
	} {
		if err := emp.Insert(sqlengine.Int(r.num), sqlengine.Str(r.first),
			sqlengine.Str(r.last), sqlengine.Str(r.g), sqlengine.DateVal(r.hire)); err != nil {
			panic(err)
		}
	}
	for _, r := range []struct{ num, s int64 }{{1, 60000}, {2, 75000}, {3, 80000}} {
		if err := sal.Insert(sqlengine.Int(r.num), sqlengine.Int(r.s),
			sqlengine.DateVal("1993-01-20"), sqlengine.DateVal("1994-01-20")); err != nil {
			panic(err)
		}
	}
	return db
}

// validatingEngine shares the package test engine's structure component so
// construction stays cheap, then installs a validation stage on the copy.
func validatingEngine(t *testing.T, mode ValidationMode) *Engine {
	t.Helper()
	base := engine(t)
	e := NewEngineWithComponent(base.StructureComponent(), base.Catalog(), base.kLiterals)
	e.SetValidation(ValidationConfig{Mode: mode}, validateTestDB())
	return e
}

// comparable strips the timing fields that legitimately differ between two
// runs of the same correction.
func comparable(out Output) Output {
	out.StructureLatency, out.LiteralLatency, out.ValidateLatency = 0, 0, 0
	return out
}

func TestValidationOffIsBitIdentical(t *testing.T) {
	base := engine(t)
	off := NewEngineWithComponent(base.StructureComponent(), base.Catalog(), base.kLiterals)
	off.SetValidation(ValidationConfig{Mode: ValidationOff}, validateTestDB())
	transcripts := []string{
		"select sales from employers wear name equals Jon",
		"select average salary from salaries",
		"total gibberish that matches nothing at all",
	}
	for _, tr := range transcripts {
		want := comparable(base.CorrectTopK(tr, 5))
		got := comparable(off.CorrectTopK(tr, 5))
		if !reflect.DeepEqual(want, got) {
			t.Errorf("validation-off output differs for %q:\n base: %+v\n  off: %+v", tr, want, got)
		}
	}
	if off.ValidationMode() != ValidationOff {
		t.Fatalf("ValidationMode = %s, want off", off.ValidationMode())
	}
}

func TestValidationModeRequiresDB(t *testing.T) {
	base := engine(t)
	e := NewEngineWithComponent(base.StructureComponent(), base.Catalog(), base.kLiterals)
	e.SetValidation(ValidationConfig{Mode: ValidationExecute}, nil)
	if e.ValidationMode() != ValidationOff {
		t.Fatalf("ValidationMode with nil db = %s, want off", e.ValidationMode())
	}
	out := e.Correct("select sales from employers")
	if out.Validation != "" || out.Best().Verdict != "" {
		t.Fatalf("nil-db engine validated anyway: %+v", out)
	}
}

func TestValidationAssignsVerdicts(t *testing.T) {
	e := validatingEngine(t, ValidationExecute)
	out := e.CorrectTopK("select first name from employees where gender equals M", 5)
	if out.Validation != string(ValidationExecute) {
		t.Fatalf("Validation = %q, want %q (degradation %s)", out.Validation, ValidationExecute, out.Degradation)
	}
	if out.ValidateLatency <= 0 {
		t.Error("ValidateLatency not recorded")
	}
	for i, c := range out.Candidates {
		if c.Verdict == "" {
			t.Errorf("candidate %d (%q) has no verdict", i, c.SQL)
		}
	}
	if best := out.Best(); best.Verdict != string(sqlengine.VerdictOK) {
		t.Errorf("best candidate verdict = %q for %q, want ok", best.Verdict, best.SQL)
	}
	// Verdict classes must be non-decreasing down the ranking.
	last := -1
	for _, c := range out.Candidates {
		r := sqlengine.VerdictRank(sqlengine.Verdict(c.Verdict))
		if r < last {
			t.Fatalf("ranking not sorted by verdict class: %+v", out.Candidates)
		}
		last = r
	}
}

func TestValidationBindMode(t *testing.T) {
	e := validatingEngine(t, ValidationBind)
	out := e.CorrectTopK("select first name from employees", 3)
	if out.Validation != string(ValidationBind) {
		t.Fatalf("Validation = %q, want bind", out.Validation)
	}
	for _, c := range out.Candidates {
		switch sqlengine.Verdict(c.Verdict) {
		case sqlengine.VerdictOK, sqlengine.VerdictBindError, sqlengine.VerdictParseError:
		default:
			t.Errorf("bind mode produced execute-class verdict %q for %q", c.Verdict, c.SQL)
		}
	}
}

func TestRerankByVerdict(t *testing.T) {
	cands := []Candidate{
		{SQL: "A", Verdict: string(sqlengine.VerdictParseError)},
		{SQL: "B", Verdict: string(sqlengine.VerdictOK)},
		{SQL: "C", Verdict: string(sqlengine.VerdictOK)},
		{SQL: "D", Verdict: string(sqlengine.VerdictEmptyResult)},
	}
	demoted := rerankByVerdict(cands)
	gotOrder := []string{cands[0].SQL, cands[1].SQL, cands[2].SQL, cands[3].SQL}
	if strings.Join(gotOrder, "") != "BCDA" {
		t.Fatalf("order = %v, want [B C D A]", gotOrder)
	}
	if demoted != 1 || !cands[3].Demoted {
		t.Fatalf("demotions = %d (A demoted = %v), want exactly A demoted", demoted, cands[3].Demoted)
	}
	for _, c := range cands[:3] {
		if c.Demoted {
			t.Errorf("candidate %s wrongly flagged demoted", c.SQL)
		}
	}

	// All candidates tying (any class) must be a no-op preserving order.
	tied := []Candidate{
		{SQL: "X", Verdict: string(sqlengine.VerdictBindError)},
		{SQL: "Y", Verdict: string(sqlengine.VerdictBindError)},
	}
	if d := rerankByVerdict(tied); d != 0 || tied[0].SQL != "X" || tied[1].SQL != "Y" {
		t.Fatalf("tied re-rank changed something: %+v (demoted %d)", tied, d)
	}

	// Unknown ranks between ok and provable failure.
	mixed := []Candidate{
		{SQL: "P", Verdict: string(sqlengine.VerdictBindError)},
		{SQL: "Q"}, // never validated
		{SQL: "R", Verdict: string(sqlengine.VerdictOK)},
	}
	rerankByVerdict(mixed)
	if mixed[0].SQL != "R" || mixed[1].SQL != "Q" || mixed[2].SQL != "P" {
		t.Fatalf("mixed order = %+v, want R Q P", mixed)
	}
}

func TestValidationShedsUnderDeadlinePressure(t *testing.T) {
	base := engine(t)
	e := NewEngineWithComponent(base.StructureComponent(), base.Catalog(), base.kLiterals)
	// Disable the literal soft budget so the output reaches the validation
	// stage at full fidelity, then make the validation soft budget
	// unsatisfiable: a fraction above 1 demands more of the window than
	// the whole window, so any deadline-carrying request sheds.
	e.SetLiteralBudgetFraction(-1)
	e.SetValidation(ValidationConfig{Mode: ValidationExecute, BudgetFraction: 2}, validateTestDB())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out := e.CorrectTopKContext(ctx, "select first name from employees", 3)
	if out.Degradation != DegradationFull {
		t.Skipf("pipeline degraded to %s before validation; shed path untestable here", out.Degradation)
	}
	if out.Validation != ValidationShed {
		t.Fatalf("Validation = %q, want shed", out.Validation)
	}
	for _, c := range out.Candidates {
		if c.Verdict != "" || c.Demoted {
			t.Fatalf("shed response carries verdicts: %+v", c)
		}
	}
}

func TestValidationShedsOnInjectedFault(t *testing.T) {
	inj, err := faultinject.Parse("validate:error@1;seed=3")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	e := validatingEngine(t, ValidationExecute)
	out := e.CorrectTopK("select first name from employees", 3)
	if out.Validation != ValidationShed {
		t.Fatalf("Validation = %q, want shed under injected fault", out.Validation)
	}
	if len(out.Candidates) == 0 || out.Degradation != DegradationFull {
		t.Fatalf("fault must shed validation only, not the response: %+v", out)
	}
	if got := inj.Counts()[faultinject.StageValidate]; got.Errors == 0 {
		t.Fatalf("injector never fired: %+v", got)
	}
}

func TestParseValidationMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want ValidationMode
		ok   bool
	}{
		{"off", ValidationOff, true},
		{"", ValidationOff, true},
		{"bind", ValidationBind, true},
		{"execute", ValidationExecute, true},
		{"extreme", ValidationOff, false},
	} {
		got, ok := ParseValidationMode(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseValidationMode(%q) = %v, %v; want %v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}
