package core

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"speakql/internal/asr"
	"speakql/internal/grammar"
	"speakql/internal/literal"
	"speakql/internal/metrics"
	"speakql/internal/speech"
)

var testEngine *Engine

func testEngineConfig() Config {
	cat := literal.NewCatalog(
		[]string{"Employees", "Salaries", "Titles", "DepartmentEmployee"},
		[]string{"FirstName", "LastName", "Salary", "Gender", "HireDate",
			"FromDate", "ToDate", "Title", "EmployeeNumber", "DepartmentNumber"},
		[]string{"John", "Jon", "Karsten", "Engineer", "M", "F", "d002"},
	)
	return Config{Grammar: grammar.TestScale(), Catalog: cat}
}

func engine(t testing.TB) *Engine {
	t.Helper()
	if testEngine == nil {
		e, err := NewEngine(testEngineConfig())
		if err != nil {
			t.Fatal(err)
		}
		testEngine = e
	}
	return testEngine
}

// The paper's Figure 2 running example, full pipeline.
func TestFigure2EndToEnd(t *testing.T) {
	out := engine(t).Correct("select sales from employers wear name equals Jon")
	best := out.Best()
	if got := strings.Join(best.Structure, " "); got != "SELECT x1 FROM x2 WHERE x3 = x4" {
		t.Fatalf("structure = %q", got)
	}
	toks := strings.Join(best.Tokens, " ")
	if !strings.HasPrefix(toks, "SELECT Salary FROM Employees WHERE") {
		t.Errorf("tokens = %q", toks)
	}
	if !strings.HasSuffix(best.SQL, "= 'Jon'") {
		t.Errorf("SQL = %q", best.SQL)
	}
	if out.StructureLatency <= 0 || out.LiteralLatency <= 0 {
		t.Error("latencies not recorded")
	}
}

func TestCleanDictationIsExact(t *testing.T) {
	// A perfectly transcribed dictation should come back as the original
	// query (modulo keyword casing).
	queries := []string{
		"SELECT AVG ( Salary ) FROM Salaries",
		"SELECT * FROM Employees WHERE Gender = 'M'",
		"SELECT FirstName FROM Employees NATURAL JOIN Salaries WHERE Salary > 70000",
		"SELECT LastName FROM Employees ORDER BY HireDate",
		"SELECT FromDate FROM DepartmentEmployee WHERE DepartmentNumber = 'd002'",
	}
	e := engine(t)
	for _, q := range queries {
		spoken := strings.Join(speech.VerbalizeQuery(q), " ")
		out := e.Correct(spoken)
		want := TokensOf(q)
		got := out.Best().Tokens
		if metrics.TokenEditDistance(want, got) != 0 {
			t.Errorf("clean dictation of %q → %q (TED %d)", q,
				strings.Join(got, " "), metrics.TokenEditDistance(want, got))
		}
	}
}

func TestCorrectTopK(t *testing.T) {
	out := engine(t).CorrectTopK("select salary from employees", 5)
	if len(out.Candidates) != 5 {
		t.Fatalf("got %d candidates", len(out.Candidates))
	}
	for i := 1; i < len(out.Candidates); i++ {
		if out.Candidates[i].StructureDistance < out.Candidates[i-1].StructureDistance {
			t.Fatal("candidates not sorted by structure distance")
		}
	}
}

func TestCorrectThroughNoisyASR(t *testing.T) {
	// End-to-end with the simulated ASR: SpeakQL must improve word recall
	// over the raw transcription on average.
	e := engine(t)
	eng := asr.NewEngine(asr.ACSProfile(), 99)
	queries := []string{
		"SELECT AVG ( Salary ) FROM Salaries",
		"SELECT FirstName FROM Employees WHERE Salary > 70000",
		"SELECT * FROM Employees WHERE Gender = 'M'",
		"SELECT LastName FROM Employees NATURAL JOIN Salaries WHERE FromDate = '1993-01-20'",
		"SELECT Title FROM Titles WHERE FirstName = 'Karsten' ORDER BY HireDate",
		"SELECT COUNT ( * ) FROM Employees GROUP BY Gender",
	}
	var asrWRR, sqlWRR float64
	n := 0
	for trial := 0; trial < 5; trial++ {
		for _, q := range queries {
			ref := TokensOf(q)
			spoken := speech.VerbalizeQuery(q)
			transcript := eng.TranscribeN(spoken, trial+1)[trial]
			rawToks := TokensOf(strings.Join(
				engineTranscriptTokens(e, transcript), " "))
			out := e.Correct(transcript)
			asrWRR += metrics.Compare(ref, rawToks).WRR
			sqlWRR += metrics.Compare(ref, out.Best().Tokens).WRR
			n++
		}
	}
	asrWRR /= float64(n)
	sqlWRR /= float64(n)
	t.Logf("ASR WRR=%.3f SpeakQL WRR=%.3f", asrWRR, sqlWRR)
	if sqlWRR <= asrWRR {
		t.Errorf("SpeakQL did not improve WRR: ASR %.3f vs SpeakQL %.3f", asrWRR, sqlWRR)
	}
	if sqlWRR < 0.7 {
		t.Errorf("SpeakQL WRR %.3f unreasonably low on simple queries", sqlWRR)
	}
}

// engineTranscriptTokens reproduces the ASR-only baseline tokens: the raw
// transcript after spoken-form substitution (what a user would see with no
// SpeakQL correction).
func engineTranscriptTokens(e *Engine, transcript string) []string {
	out := e.Correct(transcript)
	return out.Transcript
}

func TestCorrectAlternatives(t *testing.T) {
	e := engine(t)
	outs := e.CorrectAlternatives([]string{
		"select salary from employees",
		"select salary from salaries",
	})
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
	if strings.Join(outs[0].Best().Tokens, " ") == "" {
		t.Fatal("empty candidate")
	}
}

func TestEmptyAndDegenerateInput(t *testing.T) {
	e := engine(t)
	out := e.Correct("")
	if len(out.Candidates) == 0 {
		t.Fatal("no candidate for empty input")
	}
	out = e.Correct("blah blah blah")
	if len(out.Candidates) == 0 || len(out.Best().Tokens) == 0 {
		t.Fatal("no candidate for garbage input")
	}
}

func TestNewEngineDefaults(t *testing.T) {
	e := NewEngineWithComponent(engine(t).StructureComponent(), nil, 0)
	out := e.Correct("select star from employees")
	if got := strings.Join(out.Best().Structure, " "); got != "SELECT * FROM x1" {
		t.Errorf("structure = %q", got)
	}
}

func TestConcurrentCorrect(t *testing.T) {
	// The engine is shared across HTTP handlers and evaluation workers;
	// Correct must be safe under concurrency.
	e := engine(t)
	transcripts := []string{
		"select salary from employees where gender equals M",
		"select star from salaries",
		"select count open parenthesis star close parenthesis from titles",
		"select first name from employees order by hire date",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				tr := transcripts[(w+i)%len(transcripts)]
				out := e.Correct(tr)
				if len(out.Candidates) == 0 {
					errs <- "no candidates for " + tr
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

func TestCorrectDeterministic(t *testing.T) {
	e := engine(t)
	const tr = "select sales from employers wear name equals Jon"
	a := e.Correct(tr).Best()
	b := e.Correct(tr).Best()
	if a.SQL != b.SQL || strings.Join(a.Structure, " ") != strings.Join(b.Structure, " ") {
		t.Fatalf("non-deterministic correction: %q vs %q", a.SQL, b.SQL)
	}
}

func TestCorrectContextAlreadyCancelled(t *testing.T) {
	e := engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()
	t0 := time.Now()
	out := e.CorrectContext(ctx, "select sales from employers wear name equals Jon")
	if el := time.Since(t0); el > time.Second {
		t.Errorf("cancelled Correct took %v", el)
	}
	if len(out.Candidates) != 0 {
		t.Errorf("cancelled Correct produced %d candidates", len(out.Candidates))
	}
	// No goroutine may outlive the call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines grew from %d to %d", before, n)
	}
}

func TestCorrectContextUncancelledMatchesPlain(t *testing.T) {
	e := engine(t)
	tr := "select salary from employees where gender equals M"
	plain := e.CorrectTopK(tr, 3)
	ctxed := e.CorrectTopKContext(context.Background(), tr, 3)
	if len(plain.Candidates) != len(ctxed.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(plain.Candidates), len(ctxed.Candidates))
	}
	for i := range plain.Candidates {
		if plain.Candidates[i].SQL != ctxed.Candidates[i].SQL {
			t.Errorf("candidate %d: %q vs %q", i, plain.Candidates[i].SQL, ctxed.Candidates[i].SQL)
		}
	}
}

func TestCorrectAlternativesOrderPreserved(t *testing.T) {
	e := engine(t)
	alts := []string{
		"select sales from employers wear name equals Jon",
		"select first name from employees",
		"select salary from employees where gender equals M",
		"select count of everything from titles",
		"select last name from employees where salary greater than 70000",
	}
	// Reference: the strictly sequential pipeline.
	want := make([]Output, len(alts))
	for i, tr := range alts {
		want[i] = e.Correct(tr)
	}
	for run := 0; run < 3; run++ {
		got := e.CorrectAlternatives(alts)
		if len(got) != len(want) {
			t.Fatalf("run %d: %d outputs", run, len(got))
		}
		for i := range want {
			if got[i].Best().SQL != want[i].Best().SQL {
				t.Errorf("run %d: output %d = %q, want %q", run, i, got[i].Best().SQL, want[i].Best().SQL)
			}
		}
	}
}

func TestCorrectAlternativesEmpty(t *testing.T) {
	if outs := engine(t).CorrectAlternatives(nil); len(outs) != 0 {
		t.Errorf("nil alternatives returned %d outputs", len(outs))
	}
}

func TestDisableLiteralIndexConfig(t *testing.T) {
	cfg := testEngineConfig()
	cfg.DisableLiteralIndex = true
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.Catalog().Indexed() {
		t.Error("DisableLiteralIndex left the catalog indexed")
	}
	// Corrections on the naive path must match the indexed engine's.
	transcript := "select first name from employees where last name equals Jon"
	naive := e.Correct(transcript).Best()
	indexed := engine(t).Correct(transcript).Best()
	if naive.SQL != indexed.SQL {
		t.Errorf("naive path SQL %q != indexed path SQL %q", naive.SQL, indexed.SQL)
	}
}
