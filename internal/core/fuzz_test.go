package core

import (
	"testing"

	"speakql/internal/sqltoken"
)

// FuzzCorrect: any transcript whatsoever must yield a candidate with a
// grammatical skeleton and fully-numbered placeholders — never a panic.
// This is the robustness contract the interactive interface depends on.
func FuzzCorrect(f *testing.F) {
	seeds := []string{
		"select sales from employers wear name equals Jon",
		"select star from employees",
		"",
		"blah blah blah blah blah blah blah blah blah blah",
		"select select from from where where",
		"open parenthesis close parenthesis comma dot equals",
		"where salary between forty five thousand and may seventh nineteen ninety one",
		"select a from b where c in open parenthesis select d from e close parenthesis",
		"... !!! ??? \x00 \xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	e := fuzzEngine()
	f.Fuzz(func(t *testing.T, transcript string) {
		if len(transcript) > 400 {
			return // interactive dictations are short; bound fuzz cost
		}
		out := e.Correct(transcript)
		best := out.Best()
		if len(best.Structure) == 0 {
			t.Fatalf("no structure for %q", transcript)
		}
		n := 0
		for _, tok := range best.Structure {
			if sqltoken.Classify(tok) == sqltoken.Literal {
				n++
				if tok != sqltoken.Placeholder(n) {
					t.Fatalf("placeholder %q out of order for %q: %v",
						tok, transcript, best.Structure)
				}
			}
		}
		if len(best.Bindings) != n {
			t.Fatalf("bindings %d != placeholders %d for %q",
				len(best.Bindings), n, transcript)
		}
	})
}

var fuzzEng *Engine

func fuzzEngine() *Engine {
	if fuzzEng == nil {
		fuzzEng = mustTestEngine()
	}
	return fuzzEng
}

func mustTestEngine() *Engine {
	e, err := NewEngine(testEngineConfig())
	if err != nil {
		panic(err)
	}
	return e
}
