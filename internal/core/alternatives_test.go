package core

import (
	"context"
	"strings"
	"testing"

	"speakql/internal/faultinject"
	"speakql/internal/trieindex"
)

// nBestAlternatives is an ASR-shaped n-best list: near-duplicate
// hypotheses with one repeated verbatim, plus an outlier.
var nBestAlternatives = []string{
	"select sales from employers wear name equals Jon",
	"select salary from employees where name equals John",
	"select sales from employers wear name equals Jon", // verbatim duplicate
	"select first name from employees",
	"select sales from employers wear name equals Jon", // and again
	"select count of everything from titles",
}

// checkAlternativesMatchSequential compares one batched run against the
// strictly sequential pipeline, position by position: same candidate SQL,
// structures, bindings count, and degradation level.
func checkAlternativesMatchSequential(t *testing.T, e *Engine, alts []string) {
	t.Helper()
	ctx := context.Background()
	want := make([]Output, len(alts))
	for i, tr := range alts {
		want[i] = e.CorrectContext(ctx, tr)
	}
	got := e.CorrectAlternativesContext(ctx, alts)
	if len(got) != len(want) {
		t.Fatalf("%d outputs for %d alternatives", len(got), len(alts))
	}
	for i := range want {
		w, g := want[i], got[i]
		if (w.Err == nil) != (g.Err == nil) {
			t.Fatalf("alt %d: err %v vs sequential %v", i, g.Err, w.Err)
		}
		if g.Degradation != w.Degradation {
			t.Fatalf("alt %d: degradation %q vs sequential %q", i, g.Degradation, w.Degradation)
		}
		if len(g.Candidates) != len(w.Candidates) {
			t.Fatalf("alt %d: %d candidates vs sequential %d", i, len(g.Candidates), len(w.Candidates))
		}
		for c := range w.Candidates {
			if g.Candidates[c].SQL != w.Candidates[c].SQL ||
				strings.Join(g.Candidates[c].Structure, " ") != strings.Join(w.Candidates[c].Structure, " ") ||
				len(g.Candidates[c].Bindings) != len(w.Candidates[c].Bindings) {
				t.Fatalf("alt %d candidate %d: %q vs sequential %q",
					i, c, g.Candidates[c].SQL, w.Candidates[c].SQL)
			}
		}
	}
}

// TestCorrectAlternativesBatchMatchesSequential is the end-to-end batch
// differential test: the batched n-best pipeline (deduped transcripts,
// shared batch search, pooled literal workers) must return per-position
// outputs identical to independent Correct calls — on the serial-search
// engine and on one with parallel search workers underneath.
func TestCorrectAlternativesBatchMatchesSequential(t *testing.T) {
	checkAlternativesMatchSequential(t, engine(t), nBestAlternatives)

	cfg := testEngineConfig()
	cfg.Search = trieindex.Options{Workers: 4}
	par, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkAlternativesMatchSequential(t, par, nBestAlternatives)
}

// TestCorrectAlternativesSharesDuplicates checks the dedup contract:
// positions holding the same transcript get the shared Output — the same
// candidate slice, not a recomputed copy.
func TestCorrectAlternativesSharesDuplicates(t *testing.T) {
	e := engine(t)
	got := e.CorrectAlternatives(nBestAlternatives)
	if len(got[0].Candidates) == 0 {
		t.Fatal("no candidates for the first hypothesis")
	}
	for _, dup := range []int{2, 4} {
		if &got[dup].Candidates[0] != &got[0].Candidates[0] {
			t.Fatalf("duplicate position %d did not share position 0's candidates", dup)
		}
	}
}

// TestCorrectAlternativesUnderFaults runs the batch differential under
// deterministic always-on faults, one stage at a time. Probability-1 specs
// make the outcome independent of call ordering, which the batch reorders
// relative to the sequential loop (all structure hooks fire before any
// literal hook).
func TestCorrectAlternativesUnderFaults(t *testing.T) {
	for _, spec := range []string{"structure:error@1", "literal:error@1"} {
		inj, err := faultinject.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set(inj)
		checkAlternativesMatchSequential(t, engine(t), nBestAlternatives)
		faultinject.Set(nil)
	}
}
