package core

// Fragment (clause-streaming) correction: the interactive interface the
// paper describes lets users dictate one clause at a time and watch the
// corrected query grow. FragmentSession is the engine-level half of that
// pipeline — it accumulates fragments, re-runs only the suffix of the
// structure search per fragment (structure.Incremental over a resumable
// trieindex.PrefixSearcher) and replays unchanged literal windows from a
// per-session memo, while honoring the same degradation ladder and deadline
// budget as one-shot correction. internal/stream adds the session state
// machine and event fan-out on top.

import (
	"context"
	"time"

	"speakql/internal/literal"
	"speakql/internal/obs"
	"speakql/internal/sqltoken"
	"speakql/internal/structure"
)

// FragmentOutput is the engine's response to one dictated fragment: a full
// Output for the whole accumulated transcript, plus streaming position
// metadata for the interactive display.
type FragmentOutput struct {
	Output
	// Seq numbers the fragments of this session, starting at 1. Finalize
	// reports the last fragment's Seq.
	Seq int
	// RawTranscript is the accumulated raw dictation (before spoken-form
	// substitution; Output.Transcript carries the processed tokens).
	RawTranscript string
	// Pending lists the placeholders whose literal windows still touch the
	// transcript tail — their bindings may change as more speech arrives.
	// In structure-only degradations every placeholder is pending.
	Pending []string
	// StablePrefixLen is the number of leading tokens of Best().Tokens
	// before the first pending placeholder: the corrected prefix the display
	// can render as settled.
	StablePrefixLen int
}

// FragmentSession corrects a transcript dictated fragment by fragment.
// After the last fragment (or Finalize), the output is bit-identical to a
// one-shot Correct of the full accumulated transcript — candidates,
// bindings, and degradation ladder included (TestCorrectFragmentMatchesOneShot).
// A FragmentSession is not safe for concurrent use; the Engine it came from
// is shared as usual.
type FragmentSession struct {
	e         *Engine
	inc       *structure.Incremental
	memo      *literal.VoteMemo
	fragments []string
	seq       int
}

// NewFragmentSession starts an empty streaming correction session. Like
// Correct, it keeps a single structure hypothesis per fragment.
func (e *Engine) NewFragmentSession() *FragmentSession {
	return &FragmentSession{
		e:    e,
		inc:  e.structure.NewIncremental(1),
		memo: literal.NewVoteMemo(),
	}
}

// Fragments returns the raw fragments dictated so far.
func (fs *FragmentSession) Fragments() []string { return fs.fragments }

// Transcript returns the accumulated raw transcript.
func (fs *FragmentSession) Transcript() string { return fs.inc.Transcript() }

// CorrectFragment appends one dictated fragment and corrects the whole
// accumulated transcript, reusing the previous fragments' search and voting
// work. ctx carries the per-fragment deadline; the degradation ladder
// applies to each fragment exactly as it does to a one-shot correction.
func (fs *FragmentSession) CorrectFragment(ctx context.Context, fragment string) FragmentOutput {
	span := obs.StartSpan("core.correct_fragment")
	defer span.End()
	fs.fragments = append(fs.fragments, fragment)
	fs.seq++
	t0 := time.Now()
	structs, serr := fs.inc.AppendFragment(ctx, fragment)
	return fs.wrap(fs.e.finishPipeline(ctx, t0, structs, serr, fs.memo))
}

// RestoreFragments rehydrates an empty session from a snapshot's recorded
// fragment sequence: every fragment is appended, then the accumulated
// transcript is corrected once. Because incremental determination is pinned
// bit-identical to one-shot determination of the accumulated transcript
// (TestCorrectFragmentMatchesOneShot), the restored session's candidates,
// bindings, and searcher state match what len(fragments) sequential
// CorrectFragment calls would have produced — which is what lets a replica
// resume another replica's dictation mid-stream. Calling it on a session
// that has already seen fragments corrupts the sequence numbering; restore
// only ever targets a fresh NewFragmentSession.
func (fs *FragmentSession) RestoreFragments(ctx context.Context, fragments []string) FragmentOutput {
	span := obs.StartSpan("core.restore_fragments")
	defer span.End()
	fs.AppendRawFragments(fragments)
	t0 := time.Now()
	structs, serr := fs.inc.Redetermine(ctx)
	return fs.wrap(fs.e.finishPipeline(ctx, t0, structs, serr, fs.memo))
}

// AppendRawFragments records fragments without correcting anything — the
// cheap half of RestoreFragments, used when rehydrating a finalized
// dictation whose definitive output already shipped (no further correction
// will ever run, but Transcript and Fragments must still read back).
func (fs *FragmentSession) AppendRawFragments(fragments []string) {
	for _, f := range fragments {
		fs.fragments = append(fs.fragments, f)
		fs.inc.AppendRaw(f)
	}
	fs.seq = len(fs.fragments)
}

// Finalize re-corrects the accumulated transcript without appending
// anything. Use it to close a dictation: a fragment the deadline degraded
// mid-stream is retried here at full fidelity, and — absent new faults or an
// expired ctx — the result is bit-identical to one-shot Correct of the full
// transcript.
func (fs *FragmentSession) Finalize(ctx context.Context) FragmentOutput {
	span := obs.StartSpan("core.finalize_fragments")
	defer span.End()
	t0 := time.Now()
	structs, serr := fs.inc.Redetermine(ctx)
	return fs.wrap(fs.e.finishPipeline(ctx, t0, structs, serr, fs.memo))
}

// wrap adds the streaming position metadata to a pipeline output.
func (fs *FragmentSession) wrap(out Output) FragmentOutput {
	fo := FragmentOutput{
		Output:        out,
		Seq:           fs.seq,
		RawTranscript: fs.inc.Transcript(),
	}
	fo.Pending = pendingPlaceholders(out)
	fo.StablePrefixLen = stablePrefixLen(out.Best(), fo.Pending)
	return fo
}

// pendingPlaceholders lists the best candidate's placeholders whose literal
// windows reach the end of the transcript — the ones more speech could still
// change. Unbound candidates (structure-only degradations) leave every
// placeholder pending.
func pendingPlaceholders(out Output) []string {
	best := out.Best()
	if len(best.Structure) == 0 {
		return nil
	}
	if len(best.Bindings) == 0 {
		var p []string
		for _, tok := range best.Structure {
			if sqltoken.Classify(tok) == sqltoken.Literal {
				p = append(p, tok)
			}
		}
		return p
	}
	n := len(out.Transcript)
	var p []string
	for _, b := range best.Bindings {
		if b.End >= n {
			p = append(p, b.Placeholder)
		}
	}
	return p
}

// stablePrefixLen counts the leading tokens of the best candidate up to the
// first pending placeholder.
func stablePrefixLen(best Candidate, pending []string) int {
	if len(pending) == 0 {
		return len(best.Tokens)
	}
	pend := make(map[string]bool, len(pending))
	for _, p := range pending {
		pend[p] = true
	}
	for i, tok := range best.Structure {
		if pend[tok] {
			return i
		}
	}
	return len(best.Tokens)
}
