package core

import (
	"fmt"
	"sync"
	"testing"

	"speakql/internal/grammar"
	"speakql/internal/trieindex"
)

func resOf(s string) []trieindex.Result {
	return []trieindex.Result{{Tokens: []string{s}, Distance: 1}}
}

func TestSearchLRUEvictionOrder(t *testing.T) {
	c := NewSearchLRU(3)
	c.Put("a", resOf("a"), trieindex.Stats{})
	c.Put("b", resOf("b"), trieindex.Stats{})
	c.Put("c", resOf("c"), trieindex.Stats{})
	// Touch "a" so "b" becomes least recently used.
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", resOf("d"), trieindex.Stats{}) // evicts b
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if rs, _, ok := c.Get(k); !ok || rs[0].Tokens[0] != k {
			t.Fatalf("%s missing or wrong after eviction", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Capacity != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-putting refreshes recency: "a" is oldest-inserted but was touched,
	// re-put "c" so "a" is LRU? No: order after gets above is d,c,a (a,c,d
	// each Get-touched in that order) → LRU is a.
	c.Put("e", resOf("e"), trieindex.Stats{})
	if _, _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted second")
	}
}

func TestSearchLRUPutRefreshesValue(t *testing.T) {
	c := NewSearchLRU(2)
	c.Put("k", resOf("old"), trieindex.Stats{})
	c.Put("k", resOf("new"), trieindex.Stats{NodesVisited: 7})
	if c.Len() != 1 {
		t.Fatalf("duplicate key grew cache to %d", c.Len())
	}
	rs, st, ok := c.Get("k")
	if !ok || rs[0].Tokens[0] != "new" || st.NodesVisited != 7 {
		t.Fatalf("refresh lost: %v %+v %v", rs, st, ok)
	}
}

func TestSearchLRUPurgeAndHitRate(t *testing.T) {
	c := NewSearchLRU(4)
	c.Put("x", resOf("x"), trieindex.Stats{})
	c.Get("x")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("purge left %d entries", c.Len())
	}
	if _, _, ok := c.Get("x"); ok {
		t.Fatal("purged entry still present")
	}
	if got := c.Stats(); got.Hits != 1 { // counters survive purge
		t.Fatalf("purge reset counters: %+v", got)
	}
}

// Concurrent mixed gets/puts must be race-free (run under -race) and keep
// the size bound.
func TestSearchLRUConcurrent(t *testing.T) {
	c := NewSearchLRU(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%40)
				if _, _, ok := c.Get(k); !ok {
					c.Put(k, resOf(k), trieindex.Stats{})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Fatalf("lost lookups: hits %d + misses %d != %d", st.Hits, st.Misses, 8*500)
	}
}

// A cached engine must return outputs identical to an uncached one — on the
// miss that fills the cache and on every hit after it — while the hit
// counters actually move.
func TestEngineCachedMatchesUncached(t *testing.T) {
	cfg := Config{Grammar: grammar.TestScale()}
	plain, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StructureCacheSize = 64
	cached, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cached.SearchCache() == nil {
		t.Fatal("cache not installed")
	}
	transcripts := []string{
		"select name from employees where salary equals 100",
		"select star from departments",
		"select name from employees where salary equals 100", // repeat → hit
		"count employees",
	}
	for round := 0; round < 2; round++ {
		for _, tr := range transcripts {
			a := plain.CorrectTopK(tr, 3)
			b := cached.CorrectTopK(tr, 3)
			if len(a.Candidates) != len(b.Candidates) {
				t.Fatalf("round %d %q: %d vs %d candidates", round, tr, len(a.Candidates), len(b.Candidates))
			}
			for i := range a.Candidates {
				if a.Candidates[i].SQL != b.Candidates[i].SQL ||
					a.Candidates[i].StructureDistance != b.Candidates[i].StructureDistance {
					t.Fatalf("round %d %q candidate %d differs:\n  %q (%v)\n  %q (%v)",
						round, tr, i,
						a.Candidates[i].SQL, a.Candidates[i].StructureDistance,
						b.Candidates[i].SQL, b.Candidates[i].StructureDistance)
				}
			}
		}
	}
	st := cached.SearchCache().Stats()
	if st.Hits == 0 {
		t.Fatal("repeated transcripts produced no cache hits")
	}
	if st.Misses == 0 {
		t.Fatal("first-seen transcripts produced no cache misses")
	}
}
