package core

// validate.go is the execution-guided validation stage (DESIGN.md §15):
// after structure and literal ranking, each candidate is dry-run against
// the queried database — parse, bind, and optionally a bounded execute —
// and candidates with provably worse verdicts are demoted below any that
// run, preserving relative order inside each verdict class. The stage sits
// at the very end of finishPipeline, after the §9 ladder has settled, and
// is itself the ladder's cheapest sacrifice: any degradation, deadline
// pressure, cancellation, or injected validate fault sheds validation and
// serves the unvalidated ranking — validation can only ever reorder a
// response, never fail one.

import (
	"context"
	"sort"
	"time"

	"speakql/internal/faultinject"
	"speakql/internal/obs"
	"speakql/internal/sqlengine"
)

// ValidationMode selects how far the dry-run goes.
type ValidationMode string

// Validation modes: off (stage disabled, output bit-identical to an engine
// without the stage), bind (parse + name binding only), execute (bind plus
// a bounded execute that also demotes provably empty results).
const (
	ValidationOff     ValidationMode = "off"
	ValidationBind    ValidationMode = "bind"
	ValidationExecute ValidationMode = "execute"
)

// ParseValidationMode parses the -validate flag value.
func ParseValidationMode(s string) (ValidationMode, bool) {
	switch ValidationMode(s) {
	case ValidationOff, ValidationBind, ValidationExecute:
		return ValidationMode(s), true
	case "":
		return ValidationOff, true
	default:
		return ValidationOff, false
	}
}

// Validation defaults.
const (
	// DefaultValidateMaxRows bounds each candidate's execute-mode dry-run
	// to this many materialized rows.
	DefaultValidateMaxRows = 100_000
	// DefaultValidateTimeout bounds each candidate's execute-mode dry-run
	// wall-clock when the request itself carries no deadline.
	DefaultValidateTimeout = 50 * time.Millisecond
	// DefaultValidateBudgetFraction is the shed threshold: when a
	// deadline-carrying correction reaches the validation stage with less
	// than this fraction of its deadline window remaining, validation is
	// shed (§9: it is the first thing to go).
	DefaultValidateBudgetFraction = 0.10
)

// ValidationConfig configures the engine's validation stage.
type ValidationConfig struct {
	// Mode is off, bind, or execute.
	Mode ValidationMode
	// MaxRows is the per-candidate row budget for execute mode
	// (0 = DefaultValidateMaxRows).
	MaxRows int64
	// Timeout is the per-candidate wall-clock budget for execute mode when
	// the request has no deadline (0 = DefaultValidateTimeout).
	Timeout time.Duration
	// BudgetFraction is the deadline fraction below which validation is
	// shed (0 = DefaultValidateBudgetFraction; negative never sheds on the
	// soft budget, only on hard expiry).
	BudgetFraction float64
}

// SetValidation installs the validation stage on an engine: cfg selects
// mode and budgets, db is the database candidates are dry-run against (the
// real data for execute mode, or a rowless bind schema — see
// sqlengine.NewSchemaDatabase — for catalog-only tenants). A nil db or
// Mode == off disables the stage. Call before serving traffic; the engine
// treats both values as immutable afterwards.
func (e *Engine) SetValidation(cfg ValidationConfig, db *sqlengine.Database) {
	if cfg.Mode == "" {
		cfg.Mode = ValidationOff
	}
	if cfg.MaxRows == 0 {
		cfg.MaxRows = DefaultValidateMaxRows
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultValidateTimeout
	}
	if cfg.BudgetFraction == 0 {
		cfg.BudgetFraction = DefaultValidateBudgetFraction
	}
	e.validation = cfg
	e.validateDB = db
}

// ValidationMode returns the engine's active validation mode — off when no
// stage (or no database) is installed. The HTTP memo keys cached bodies on
// this, so a body rendered under one mode is never served under another.
func (e *Engine) ValidationMode() ValidationMode {
	if e.validateDB == nil || e.validation.Mode == "" || e.validation.Mode == ValidationOff {
		return ValidationOff
	}
	return e.validation.Mode
}

// maybeValidate runs the validation stage on a finished output, in place.
// level is the ladder level the response is about to be served at; only
// full-fidelity outputs are validated (a degraded output already broke its
// budget, and structure-only candidates are unfillable skeletons that
// would all parse_error — demoting among them is noise).
func (e *Engine) maybeValidate(ctx context.Context, t0 time.Time, deadline time.Time, hasDeadline bool, out *Output, level string) {
	if e.ValidationMode() == ValidationOff || len(out.Candidates) == 0 {
		return
	}
	span := obs.StartSpan("core.validate")
	defer span.End()
	if level != DegradationFull || ctx.Err() != nil {
		e.shedValidation(out, "degraded")
		return
	}
	now := time.Now()
	if hasDeadline {
		total := deadline.Sub(t0)
		frac := e.validation.BudgetFraction
		if remaining := deadline.Sub(now); total > 0 && frac > 0 &&
			remaining < time.Duration(float64(total)*frac) {
			e.shedValidation(out, "deadline")
			return
		}
	}
	if err := faultinject.Fire(faultinject.StageValidate); err != nil {
		obs.Add("validate.faults", 1)
		e.shedValidation(out, "fault")
		return
	}

	mode := e.ValidationMode()
	execute := mode == ValidationExecute
	for i := range out.Candidates {
		var bud *sqlengine.RunBudget
		if execute {
			bud = &sqlengine.RunBudget{MaxRows: e.validation.MaxRows}
			if hasDeadline {
				bud.Deadline = deadline
			} else {
				bud.Deadline = now.Add(e.validation.Timeout)
			}
		}
		v := sqlengine.DryRun(e.validateDB, out.Candidates[i].SQL, execute, bud)
		out.Candidates[i].Verdict = string(v)
		obs.Add("validate.verdict."+string(v), 1)
	}
	obs.Add("validate.checked", int64(len(out.Candidates)))
	if demoted := rerankByVerdict(out.Candidates); demoted > 0 {
		obs.Add("validate.demoted", int64(demoted))
	}
	out.Validation = string(mode)
	out.ValidateLatency = time.Since(now)
}

// shedValidation records that validation was configured but skipped; the
// candidates keep their unvalidated ranking and empty verdicts.
func (e *Engine) shedValidation(out *Output, why string) {
	obs.Add("validate.shed", 1)
	obs.Add("validate.shed."+why, 1)
	out.Validation = ValidationShed
}

// ValidationShed is the Output.Validation value reporting that validation
// was configured but sacrificed for this response (§9 ladder pressure or
// an injected validate fault).
const ValidationShed = "shed"

// rerankByVerdict stably sorts candidates by their verdict class — ok
// first, unknowns next, provable failures last, original order preserved
// within each class — and flags every candidate that lost ground as
// Demoted. When all candidates share a class the order is bit-identical to
// the input. Returns the number of demotions.
func rerankByVerdict(cands []Candidate) int {
	allEqual := true
	for i := 1; i < len(cands); i++ {
		if sqlengine.VerdictRank(sqlengine.Verdict(cands[i].Verdict)) !=
			sqlengine.VerdictRank(sqlengine.Verdict(cands[0].Verdict)) {
			allEqual = false
			break
		}
	}
	if allEqual {
		return 0
	}
	type pos struct {
		c   Candidate
		idx int
	}
	ordered := make([]pos, len(cands))
	for i, c := range cands {
		ordered[i] = pos{c: c, idx: i}
	}
	sort.SliceStable(ordered, func(a, b int) bool {
		return sqlengine.VerdictRank(sqlengine.Verdict(ordered[a].c.Verdict)) <
			sqlengine.VerdictRank(sqlengine.Verdict(ordered[b].c.Verdict))
	})
	demoted := 0
	for i := range ordered {
		ordered[i].c.Demoted = i > ordered[i].idx
		if ordered[i].c.Demoted {
			demoted++
		}
		cands[i] = ordered[i].c
	}
	return demoted
}
