package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"speakql/internal/faultinject"
	"speakql/internal/obs"
	"speakql/internal/trieindex"
)

// SearchLRU is a bounded least-recently-used memo cache for structure
// searches, implementing structure.SearchCache. The key is the masked
// transcript plus k — the searcher's entire input — so a hit returns the
// exact Results and Stats the trie walk would have produced. Both dictation
// sessions and the Table 2 train/test sweeps repeat masked shapes heavily,
// so even a small cache absorbs most of the search latency.
//
// Entries never go stale in practice: the index is frozen before serving
// and never mutated afterwards. If an index is ever re-opened for inserts,
// the owner must Purge the cache after re-freezing.
//
// Safe for concurrent use. Hit/miss/eviction counts are kept locally (for
// HitRate and the bench JSON) and mirrored into the obs default registry
// (cache.search_hits / _misses / _evictions), which GET /api/stats serves.
type SearchLRU struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type lruEntry struct {
	key string
	res []trieindex.Result
	st  trieindex.Stats
}

// NewSearchLRU returns a cache bounded to max entries (min 1).
func NewSearchLRU(max int) *SearchLRU {
	if max < 1 {
		max = 1
	}
	return &SearchLRU{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// Get returns the memoized results for key, marking the entry most recently
// used. The returned slice is shared — callers must not mutate it.
//
// An injected cache fault (faultinject.StageCache) degrades gracefully: an
// injected error reads as a miss, so the search simply runs — a flaky
// cache backend must never fail a correction.
func (c *SearchLRU) Get(key string) ([]trieindex.Result, trieindex.Stats, bool) {
	if err := faultinject.Fire(faultinject.StageCache); err != nil {
		c.misses.Add(1)
		obs.Add("cache.search_misses", 1)
		obs.Add("cache.injected_misses", 1)
		return nil, trieindex.Stats{}, false
	}
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		obs.Add("cache.search_misses", 1)
		return nil, trieindex.Stats{}, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*lruEntry)
	res, st := e.res, e.st
	c.mu.Unlock()
	c.hits.Add(1)
	obs.Add("cache.search_hits", 1)
	return res, st, true
}

// Put memoizes one search, evicting the least recently used entry when
// full. Re-putting an existing key refreshes its value and recency.
func (c *SearchLRU) Put(key string, rs []trieindex.Result, st trieindex.Stats) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry)
		e.res, e.st = rs, st
		c.mu.Unlock()
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, res: rs, st: st})
	var evicted bool
	if c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry).key)
		evicted = true
	}
	c.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		obs.Add("cache.search_evictions", 1)
	}
}

// Len returns the current entry count.
func (c *SearchLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every entry (counters are retained).
func (c *SearchLRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// CacheStats is a point-in-time view of the cache's effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// HitRate is hits / (hits + misses), 0 when unused.
func (s CacheStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Stats snapshots the counters.
func (c *SearchLRU) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.max,
	}
}
