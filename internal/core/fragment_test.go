package core

// fragment_test.go is the ISSUE's required differential proof for the
// clause-streaming pipeline: correcting a transcript fragment by fragment
// (CorrectFragment, then Finalize) must produce bit-identical output to a
// one-shot Correct of the same full transcript — under serial and parallel
// search, and with latency-only fault injection active. Comparisons cover
// candidates (SQL, tokens, structure, bindings, distances), transcript, and
// degradation level, never latencies or search-work stats: the warm-started
// incremental search legitimately does less work to reach the same answer.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"speakql/internal/faultinject"
	"speakql/internal/trieindex"
)

// renderOutput formats everything an Output promises about the corrected
// query — and nothing about how long it took to compute.
func renderOutput(out Output) string {
	var b strings.Builder
	fmt.Fprintf(&b, "transcript=%v degradation=%s err=%v\n",
		out.Transcript, out.Degradation, out.Err)
	for i, c := range out.Candidates {
		fmt.Fprintf(&b, "%d: sql=%q tokens=%v structure=%v dist=%v bindings=%+v\n",
			i, c.SQL, c.Tokens, c.Structure, c.StructureDistance, c.Bindings)
	}
	return b.String()
}

// fragmentCases are dictations split at clause boundaries, including the
// adversarial splits from the structure-layer tests: a spoken form merging
// across the boundary and a nested SELECT arriving mid-dictation.
var fragmentCases = [][]string{
	{"select sales from employers", "wear name equals Jon"},
	{"select first name", "from employees", "where salary equals 70000"},
	{"select salary from salaries where salary is less", "than 70000"},
	{"select name from employees where salary equals",
		"select max open parenthesis salary close parenthesis from salaries"},
	{"select first name from employees", "", "where gender equals F"},
}

func diffFragments(t *testing.T, e *Engine, frags []string) {
	t.Helper()
	ctx := context.Background()
	fs := e.NewFragmentSession()
	var full []string
	var last FragmentOutput
	for fi, frag := range frags {
		if f := strings.TrimSpace(frag); f != "" {
			full = append(full, f)
		}
		last = fs.CorrectFragment(ctx, frag)
		want := e.Correct(strings.Join(full, " "))
		if renderOutput(last.Output) != renderOutput(want) {
			t.Fatalf("fragment %d diverged from one-shot:\n incremental: %s\n one-shot:    %s",
				fi, renderOutput(last.Output), renderOutput(want))
		}
		if last.Seq != fi+1 {
			t.Errorf("fragment %d: Seq = %d", fi, last.Seq)
		}
	}
	fin := fs.Finalize(ctx)
	want := e.Correct(strings.Join(full, " "))
	if renderOutput(fin.Output) != renderOutput(want) {
		t.Fatalf("finalize diverged from one-shot:\n finalize: %s\n one-shot: %s",
			renderOutput(fin.Output), renderOutput(want))
	}
	if fin.RawTranscript != strings.Join(full, " ") {
		t.Errorf("RawTranscript = %q, want %q", fin.RawTranscript, strings.Join(full, " "))
	}
	if got := fs.Fragments(); len(got) != len(frags) {
		t.Errorf("Fragments() kept %d fragments, want %d", len(got), len(frags))
	}
	// Streaming position metadata sanity: the stable prefix is a valid token
	// bound, and every pending name is a placeholder of the best structure.
	best := fin.Best()
	if fin.StablePrefixLen < 0 || fin.StablePrefixLen > len(best.Tokens) {
		t.Errorf("StablePrefixLen = %d with %d tokens", fin.StablePrefixLen, len(best.Tokens))
	}
	for _, p := range fin.Pending {
		found := false
		for _, tok := range best.Structure {
			if tok == p {
				found = true
			}
		}
		if !found {
			t.Errorf("pending placeholder %q not in structure %v", p, best.Structure)
		}
	}
}

// TestCorrectFragmentMatchesOneShot is the differential acceptance test:
// every fragment boundary, serial search.
func TestCorrectFragmentMatchesOneShot(t *testing.T) {
	e := engine(t)
	for ci, frags := range fragmentCases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			diffFragments(t, e, frags)
		})
	}
}

// TestCorrectFragmentMatchesOneShotParallel repeats the differential test
// with Workers > 1 — the warm-started parallel search must still select the
// exact same candidates.
func TestCorrectFragmentMatchesOneShotParallel(t *testing.T) {
	cfg := testEngineConfig()
	cfg.Search = trieindex.Options{Workers: 4}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ci, frags := range fragmentCases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			diffFragments(t, e, frags)
		})
	}
}

// TestCorrectFragmentMatchesOneShotUnderFaults runs the differential test
// with latency-only fault injection active on both stages. Latency faults
// slow the pipeline without changing any result; error and panic faults are
// out of scope here because the fragment path legitimately issues a
// different number of stage calls (one per fragment), so the deterministic
// per-ordinal decision streams diverge between the two paths.
func TestCorrectFragmentMatchesOneShotUnderFaults(t *testing.T) {
	inj, err := faultinject.Parse("seed=7;structure:latency=200us;literal:latency=200us")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)
	e := engine(t)
	for ci, frags := range fragmentCases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			diffFragments(t, e, frags)
		})
	}
}

// TestFragmentSessionEmpty: finalizing an empty session must not panic and
// must report an empty transcript.
func TestFragmentSessionEmpty(t *testing.T) {
	fs := engine(t).NewFragmentSession()
	out := fs.Finalize(context.Background())
	if out.RawTranscript != "" {
		t.Errorf("RawTranscript = %q on empty session", out.RawTranscript)
	}
	if out.Err != nil {
		t.Errorf("empty finalize errored: %v", out.Err)
	}
}

// TestFragmentSessionPendingShrinks: after the WHERE value arrives, the
// stable prefix must cover at least the SELECT/FROM clause that can no
// longer change.
func TestFragmentSessionPendingShrinks(t *testing.T) {
	fs := engine(t).NewFragmentSession()
	ctx := context.Background()
	first := fs.CorrectFragment(ctx, "select sales from employers")
	if len(first.Best().Tokens) == 0 {
		t.Fatal("no candidate after first fragment")
	}
	second := fs.CorrectFragment(ctx, "wear name equals Jon")
	if second.StablePrefixLen == 0 && len(second.Best().Tokens) > 0 {
		t.Errorf("no stable prefix after full dictation: %+v", second)
	}
}
