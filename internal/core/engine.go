// Package core wires SpeakQL's components into the end-to-end pipeline of
// Figure 2: ASR transcript → structure determination (grammar-indexed trie
// search) → literal determination (phonetic voting against the database
// catalog) → ranked, syntactically-correct SQL candidates ready for the
// interactive display.
package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"speakql/internal/grammar"
	"speakql/internal/literal"
	"speakql/internal/obs"
	"speakql/internal/sqlengine"
	"speakql/internal/sqltoken"
	"speakql/internal/structure"
	"speakql/internal/trieindex"
)

// Config configures an Engine.
type Config struct {
	// Grammar bounds the structure corpus (Section 3.2). Zero value means
	// grammar.DefaultScale().
	Grammar grammar.GenConfig
	// Search selects trie-search optimizations (BDB is always on unless
	// disabled; DAP and INV are the Appendix D.3 approximations).
	Search trieindex.Options
	// Catalog is the phonetic representation of the queried database.
	Catalog *literal.Catalog
	// TopKLiterals is the per-placeholder candidate count for the
	// interactive display (default 5).
	TopKLiterals int
	// StructureCacheSize bounds the LRU memo cache for structure searches,
	// keyed by the masked transcript (see SearchLRU). 0 disables caching.
	StructureCacheSize int
	// DisableLiteralIndex turns off the catalog's phonetic BK-tree index,
	// restoring the naive full-scan voting path (rankings are identical;
	// the toggle exists for ablation and differential benchmarking).
	DisableLiteralIndex bool
	// LiteralBudgetFraction is the graceful-degradation soft budget: when a
	// deadline-carrying correction finishes structure determination with
	// less than this fraction of the deadline window remaining, the literal
	// stage runs in top-1 mode (one structure, one literal per placeholder)
	// instead of being skipped wholesale. 0 means DefaultLiteralBudget;
	// negative disables the ladder's soft rung.
	LiteralBudgetFraction float64
}

// DefaultLiteralBudget is the default LiteralBudgetFraction: degrade the
// literal stage when less than a quarter of the deadline window is left.
const DefaultLiteralBudget = 0.25

// Engine is the SpeakQL correction engine. Construction generates and
// indexes the structure corpus (the offline step); Correct is cheap and
// safe for concurrent use.
type Engine struct {
	structure *structure.Component
	catalog   *literal.Catalog
	kLiterals int
	cache     *SearchLRU // nil when caching is disabled
	litBudget float64    // soft-budget fraction; <= 0 disables the rung

	// Validation stage (DESIGN.md §15), installed via SetValidation; a nil
	// validateDB keeps the stage off regardless of mode.
	validation ValidationConfig
	validateDB *sqlengine.Database
}

// NewEngine builds the engine, generating the structure index for
// cfg.Grammar.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Grammar.MaxTokens == 0 {
		cfg.Grammar = grammar.DefaultScale()
	}
	if cfg.TopKLiterals <= 0 {
		cfg.TopKLiterals = 5
	}
	if cfg.Catalog == nil {
		cfg.Catalog = literal.NewCatalog(nil, nil, nil)
	}
	if cfg.DisableLiteralIndex {
		cfg.Catalog.SetIndexed(false)
	}
	if cfg.LiteralBudgetFraction == 0 {
		cfg.LiteralBudgetFraction = DefaultLiteralBudget
	}
	sc, err := structure.New(structure.Config{Grammar: cfg.Grammar, Search: cfg.Search})
	if err != nil {
		return nil, err
	}
	e := &Engine{structure: sc, catalog: cfg.Catalog, kLiterals: cfg.TopKLiterals,
		litBudget: cfg.LiteralBudgetFraction}
	if cfg.StructureCacheSize > 0 {
		e.cache = NewSearchLRU(cfg.StructureCacheSize)
		sc.SetSearchCache(e.cache)
	}
	return e, nil
}

// NewEngineWithComponent builds an engine around an existing structure
// component (sharing one index across engines, e.g. in ablations).
func NewEngineWithComponent(sc *structure.Component, cat *literal.Catalog, kLiterals int) *Engine {
	if kLiterals <= 0 {
		kLiterals = 5
	}
	if cat == nil {
		cat = literal.NewCatalog(nil, nil, nil)
	}
	return &Engine{structure: sc, catalog: cat, kLiterals: kLiterals,
		litBudget: DefaultLiteralBudget}
}

// SetLiteralBudgetFraction overrides the soft-budget fraction of the
// degradation ladder (see Config.LiteralBudgetFraction); <= 0 disables the
// literals_top1 rung. Call before serving traffic.
func (e *Engine) SetLiteralBudgetFraction(f float64) { e.litBudget = f }

// EnableSearchCache installs a structure-search memo cache of the given
// size on an already-built engine (used by the engine-sharing paths that
// bypass NewEngine). size <= 0 is a no-op. Returns the cache, or nil.
func (e *Engine) EnableSearchCache(size int) *SearchLRU {
	if size <= 0 {
		return nil
	}
	e.cache = NewSearchLRU(size)
	e.structure.SetSearchCache(e.cache)
	return e.cache
}

// AdoptSearchCache records an existing shared cache as this engine's cache
// without creating or reinstalling anything: the cache lives on the shared
// structure component, which already consults it for every engine built
// around that component. The tenant registry uses this so all per-tenant
// engines report the one process-wide SearchLRU (the cache key is the
// masked transcript plus k — schema-independent — so sharing across
// tenants is sound). Contrast EnableSearchCache, which creates a NEW cache
// and must not be called on engines sharing a component.
func (e *Engine) AdoptSearchCache(c *SearchLRU) { e.cache = c }

// SearchCache returns the engine's structure-search cache, nil when
// caching is disabled.
func (e *Engine) SearchCache() *SearchLRU { return e.cache }

// Catalog returns the engine's literal catalog.
func (e *Engine) Catalog() *literal.Catalog { return e.catalog }

// StructureComponent exposes the structure determiner (component-level
// evaluation).
func (e *Engine) StructureComponent() *structure.Component { return e.structure }

// Candidate is one corrected query hypothesis.
type Candidate struct {
	// SQL is the rendered query string, values quoted.
	SQL string
	// Tokens is the filled token sequence (unquoted), the form the
	// accuracy metrics compare.
	Tokens []string
	// Structure is the skeleton with numbered placeholders.
	Structure []string
	// Bindings carries the per-placeholder ranked literals for the
	// interactive display's alternatives menu.
	Bindings []literal.Binding
	// StructureDistance is the weighted edit distance of the matched
	// structure.
	StructureDistance float64
	// Verdict is the validation stage's classification of this candidate
	// (sqlengine.Verdict values); empty when the candidate was never
	// validated (validation off, shed, or degraded output).
	Verdict string
	// Demoted reports that validation moved this candidate down from its
	// pre-validation rank (a better-verdict candidate overtook it).
	Demoted bool
}

// Degradation levels of the graceful-degradation ladder, from intact to
// empty-handed. Every Output carries exactly one, and the engine counts
// each under core.degraded.<level> so /api/stats accounts for the ladder.
const (
	// DegradationFull: both stages ran at their configured fidelity.
	DegradationFull = "full"
	// DegradationLiteralsTop1: structure determination consumed most of the
	// deadline, so the literal stage ran in top-1 mode — one structure
	// hypothesis, one literal per placeholder — instead of being skipped.
	DegradationLiteralsTop1 = "literals_top1"
	// DegradationStructureOnly: the deadline expired (or the literal stage
	// failed) after structures were found; candidates carry the skeleton
	// with unfilled placeholders and no bindings.
	DegradationStructureOnly = "structure_only"
	// DegradationShed: nothing could be served — structure determination
	// failed or the deadline expired before any structure was found.
	DegradationShed = "shed"
)

// Output is the engine's response for one transcript.
type Output struct {
	// Candidates are ranked hypotheses, best first. Candidates[0] is what
	// the interactive display shows.
	Candidates []Candidate
	// Transcript is the processed transcript (after spoken-form
	// substitution).
	Transcript []string
	// StructureLatency and LiteralLatency time the two stages.
	StructureLatency time.Duration
	LiteralLatency   time.Duration
	// Degradation is the ladder level this response was served at: one of
	// DegradationFull, DegradationLiteralsTop1, DegradationStructureOnly,
	// DegradationShed.
	Degradation string
	// Validation records what the validation stage did: "" when the stage
	// is off, the mode that ran ("bind" / "execute"), or ValidationShed
	// when a configured stage was sacrificed under ladder pressure.
	Validation string
	// ValidateLatency times the validation stage (zero unless it ran).
	ValidateLatency time.Duration
	// Err is non-nil when a pipeline stage failed outright (today only via
	// fault injection); Candidates is empty and Degradation is shed.
	Err error
}

// Degraded reports whether the output was served below full fidelity.
func (o Output) Degraded() bool {
	return o.Degradation != "" && o.Degradation != DegradationFull
}

// Best returns the top candidate (zero value if none).
func (o Output) Best() Candidate {
	if len(o.Candidates) == 0 {
		return Candidate{}
	}
	return o.Candidates[0]
}

// Correct runs the full pipeline on a raw ASR transcript, returning the
// single best candidate in Output.Candidates[0].
func (e *Engine) Correct(transcript string) Output {
	return e.CorrectTopK(transcript, 1)
}

// CorrectContext is Correct under a context (see CorrectTopKContext).
func (e *Engine) CorrectContext(ctx context.Context, transcript string) Output {
	return e.CorrectTopKContext(ctx, transcript, 1)
}

// CorrectTopK runs the pipeline keeping k structure hypotheses, each filled
// with literals ("best of top k", Table 2's Top 5 columns).
func (e *Engine) CorrectTopK(transcript string, k int) Output {
	return e.CorrectTopKContext(context.Background(), transcript, k)
}

// CorrectTopKContext is CorrectTopK under a context: cancellation is
// honored between pipeline stages and at trie-partition boundaries inside
// structure determination. Rather than failing outright when the deadline
// tightens, the engine walks the graceful-degradation ladder — full →
// literals_top1 → structure_only → shed — and reports the level it served
// at in Output.Degradation. A cancelled call returns promptly with
// whatever partial Output the completed work supports and never leaks a
// goroutine.
func (e *Engine) CorrectTopKContext(ctx context.Context, transcript string, k int) Output {
	if k < 1 {
		k = 1
	}
	span := obs.StartSpan("core.correct")
	defer span.End()
	t0 := time.Now()
	structs, serr := e.structure.DetermineTopKErr(ctx, transcript, k)
	return e.finishPipeline(ctx, t0, structs, serr, nil)
}

// finishPipeline is the pipeline tail shared by one-shot and fragment
// correction: it applies the degradation ladder to the structure stage's
// outcome and runs literal determination (through memo when streaming).
// t0 is when the correction started; the structure stage has just ended.
func (e *Engine) finishPipeline(ctx context.Context, t0 time.Time, structs []structure.Result, serr error, memo *literal.VoteMemo) Output {
	t1 := time.Now()
	deadline, hasDeadline := ctx.Deadline()
	out := Output{StructureLatency: t1.Sub(t0)}
	if serr != nil {
		// Structure determination failed outright (fault injection):
		// nothing downstream can run.
		out.Err = serr
		return finish(out, DegradationShed)
	}
	if ctx.Err() != nil {
		obs.Add("core.cancelled", 1)
		if len(structs) == 0 {
			return finish(out, DegradationShed)
		}
		// The deadline passed mid-search: serve the skeletons found so far
		// instead of dropping them — the display can still render the query
		// shape while the user retries.
		return finish(structureOnly(out, structs), DegradationStructureOnly)
	}
	level := DegradationFull
	kLit := e.kLiterals
	if hasDeadline && e.litBudget > 0 {
		// Soft budget: structure ate most of the deadline window, so run
		// literals in top-1 mode rather than risking a mid-fill expiry.
		total := deadline.Sub(t0)
		if remaining := deadline.Sub(t1); total > 0 &&
			remaining < time.Duration(float64(total)*e.litBudget) {
			level = DegradationLiteralsTop1
			structs = structs[:1]
			kLit = 1
		}
	}
	lspan := obs.StartSpan("literal.determine")
	defer lspan.End()
	for _, sr := range structs {
		out.Transcript = sr.Transcript
		bindings, lerr := literal.DetermineMemoErr(sr.Transcript, sr.Structure, e.catalog, kLit, memo)
		if lerr != nil {
			// The literal stage failed: degrade the whole response to
			// structure-only rather than mixing filled and unfilled
			// candidates in one ranking.
			out.Candidates = nil
			return finish(structureOnly(out, structs), DegradationStructureOnly)
		}
		out.Candidates = append(out.Candidates, Candidate{
			SQL:               literal.RenderSQL(sr.Structure, bindings),
			Tokens:            literal.Fill(sr.Structure, bindings),
			Structure:         sr.Structure,
			Bindings:          bindings,
			StructureDistance: sr.Distance,
		})
	}
	out.LiteralLatency = time.Since(t1)
	e.maybeValidate(ctx, t0, deadline, hasDeadline, &out, level)
	return finish(out, level)
}

// finish stamps the output's ladder level and counts it.
func finish(out Output, level string) Output {
	out.Degradation = level
	obs.Add("core.degraded."+level, 1)
	return out
}

// structureOnly fills the output with skeleton-level candidates: the
// structure, its placeholders unbound, rendered as-is. Explicitly partial —
// Bindings is nil — but never half-filled.
func structureOnly(out Output, structs []structure.Result) Output {
	for _, sr := range structs {
		out.Transcript = sr.Transcript
		out.Candidates = append(out.Candidates, Candidate{
			SQL:               strings.Join(sr.Structure, " "),
			Tokens:            append([]string(nil), sr.Structure...),
			Structure:         sr.Structure,
			StructureDistance: sr.Distance,
		})
	}
	return out
}

// CorrectAlternatives runs the pipeline over several ASR transcription
// alternatives (the engine's n-best list) and returns one Output per
// alternative, in order. Used for the "best of top 5" evaluation.
func (e *Engine) CorrectAlternatives(transcripts []string) []Output {
	return e.CorrectAlternativesContext(context.Background(), transcripts)
}

// CorrectAlternativesContext corrects the n-best list as one batch.
// Identical transcripts are corrected once and their Output shared at every
// original position (ASR n-best lists often repeat a hypothesis verbatim);
// the structure stage runs through one batched trie search
// (structure.DetermineTopKBatchErr over trieindex.SearchBatch) that shares
// the searcher pool, memoizes identical masked transcripts, and lets every
// completed alternative's distance bound prune the others; the literal stage
// then fans the unique alternatives out over a GOMAXPROCS-bounded pool (the
// engine is read-only after construction). Outputs keep the input order —
// alternative i's result is always at index i — so ranking by ASR
// confidence is preserved; per-position candidates are bit-identical to
// independent Correct calls (TestCorrectAlternativesBatchMatchesSequential).
// Cancellation is honored inside both stages; late alternatives return
// partial (degraded) Outputs.
func (e *Engine) CorrectAlternativesContext(ctx context.Context, transcripts []string) []Output {
	outs := make([]Output, len(transcripts))
	if len(transcripts) == 0 {
		return outs
	}
	span := obs.StartSpan("core.correct_alternatives")
	defer span.End()
	t0 := time.Now()

	// Dedupe identical transcripts; share maps each original position to
	// its unique slot.
	uniq := make([]string, 0, len(transcripts))
	share := make([]int, len(transcripts))
	seen := make(map[string]int, len(transcripts))
	for i, tr := range transcripts {
		if ui, ok := seen[tr]; ok {
			share[i] = ui
			continue
		}
		seen[tr] = len(uniq)
		share[i] = len(uniq)
		uniq = append(uniq, tr)
	}

	structs, serrs := e.structure.DetermineTopKBatchErr(ctx, uniq, 1)

	uouts := make([]Output, len(uniq))
	finishOne := func(ui int) {
		uouts[ui] = e.finishPipeline(ctx, t0, structs[ui], serrs[ui], nil)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers <= 1 {
		for ui := range uniq {
			finishOne(ui)
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The pprof label attributes worker samples to the batch
				// literal stage, mirroring the search workers' label.
				pprof.Do(ctx, pprof.Labels("speakql.stage", "alternatives_batch_worker"), func(context.Context) {
					for {
						ui := int(cursor.Add(1)) - 1
						if ui >= len(uniq) {
							return
						}
						finishOne(ui)
					}
				})
			}()
		}
		wg.Wait()
	}

	for i := range transcripts {
		outs[i] = uouts[share[i]]
	}
	return outs
}

// TokensOf is a convenience that tokenizes a written SQL query the way the
// accuracy metrics expect.
func TokensOf(sql string) []string { return sqltoken.TokenizeSQL(sql) }
