// Package faultinject is SpeakQL's deterministic fault-injection layer:
// seeded, per-stage injectors that add latency, force errors, or force
// panics at the pipeline's hook points (structure determination, literal
// determination, the structure-search cache). It exists so overload and
// failure handling — the admission gate, the panic-recovery middleware,
// the graceful-degradation ladder — can be rehearsed on demand instead of
// discovered in production.
//
// Injection is off by default and free when off: Fire is a single atomic
// pointer load returning nil, so the always-on hook points cost nothing in
// normal operation (the differential tests and benchmarks run with the
// injector disabled and must show no regression).
//
// Determinism: every decision is a pure function of (seed, stage, call
// ordinal). Two runs that issue the same sequence of Fire calls per stage
// see the same faults, which is what makes chaos tests debuggable.
//
// Spec grammar (the -faults flag / SPEAKQL_FAULTS env var on both
// binaries):
//
//	spec    := clause (';' clause)*
//	clause  := 'seed=' uint | stage ':' fault (',' fault)*
//	stage   := 'structure' | 'literal' | 'validate' | 'cache' | 'stream' | 'registry' | 'network'
//	fault   := kind ['=' value] ['@' probability]
//	kind    := 'latency' | 'error' | 'panic'
//	value   := Go duration, latency only (default 1ms)
//	probability := float in (0, 1] (default 1)
//
// Example: "structure:latency=5ms@0.5,error@0.1;literal:panic@0.02;seed=7"
// sleeps 5ms on half the structure searches, fails 10% of them, and panics
// on 2% of literal determinations, all reproducibly under seed 7.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"speakql/internal/obs"
)

// Stage names the hook points the pipeline consults. Unknown stages in a
// spec are rejected at parse time so a typo cannot silently disable a
// rehearsal.
const (
	StageStructure = "structure"
	StageLiteral   = "literal"
	StageCache     = "cache"
	// StageStream fires once per streamed dictation fragment, before the
	// fragment enters the correction pipeline — the hook the SSE chaos tests
	// use to rehearse flaky clause streams.
	StageStream = "stream"
	// StageRegistry fires on the tenant registry's load and evict paths —
	// the hook the tenant-churn chaos tests use to rehearse failed lazy
	// loads and evict-time faults without a corrupt disk.
	StageRegistry = "registry"
	// StageNetwork fires in the router once per proxied attempt, before the
	// request leaves for a replica — the hook the multi-replica chaos tests
	// use to rehearse flaky router↔replica links (an injected error is
	// treated as a transport failure and enters the retry path).
	StageNetwork = "network"
	// StageValidate fires once per correction whose output is about to be
	// execution-validated (DESIGN.md §15). An injected error sheds
	// validation for that correction — the unvalidated ranking is served,
	// never a failure — which is exactly the ladder behavior the chaos
	// tests pin.
	StageValidate = "validate"
)

// stages is the closed set of valid hook points.
var stages = []string{StageStructure, StageLiteral, StageValidate, StageCache, StageStream, StageRegistry, StageNetwork}

// InjectedError is the error value forced by an error fault. Callers that
// need to distinguish rehearsed failures from organic ones can errors.As
// it; everything else treats it as an ordinary stage failure.
type InjectedError struct {
	Stage string
}

func (e *InjectedError) Error() string {
	return "faultinject: injected " + e.Stage + " error"
}

// InjectedPanic is the value thrown by a panic fault, so the recovery
// middleware (and tests) can tell a rehearsed panic from a real bug.
type InjectedPanic struct {
	Stage string
}

func (p InjectedPanic) String() string {
	return "faultinject: injected " + p.Stage + " panic"
}

// rule is one stage's fault configuration.
type rule struct {
	latencyP float64
	latency  time.Duration
	errorP   float64
	panicP   float64
}

// stageState pairs a stage's rule with its deterministic call ordinal and
// the running counts of what actually fired.
type stageState struct {
	rule rule

	calls     atomic.Int64
	latencies atomic.Int64
	errors    atomic.Int64
	panics    atomic.Int64
}

// Injector is a parsed, seeded fault plan. Safe for concurrent use; the
// decision stream per stage is serialized by an atomic ordinal.
type Injector struct {
	seed   uint64
	states map[string]*stageState
}

// active is the process-wide injector consulted by Fire; nil means
// injection is off everywhere.
var active atomic.Pointer[Injector]

// Set installs inj as the process-wide injector (nil disables injection).
func Set(inj *Injector) { active.Store(inj) }

// Enabled reports whether a process-wide injector is installed.
func Enabled() bool { return active.Load() != nil }

// Fire consults the active injector for one hook point: it sleeps any
// injected latency, panics with an InjectedPanic on an injected panic, and
// returns an *InjectedError on an injected error. With no injector
// installed it is a single atomic load.
func Fire(stage string) error {
	inj := active.Load()
	if inj == nil {
		return nil
	}
	return inj.Fire(stage)
}

// Fire is the instance form of the package-level Fire (tests drive
// injectors directly without installing them globally).
func (inj *Injector) Fire(stage string) error {
	st, ok := inj.states[stage]
	if !ok {
		return nil
	}
	n := uint64(st.calls.Add(1) - 1)
	// Three independent decision streams per call, so latency, error, and
	// panic probabilities do not interfere with each other.
	if st.rule.latencyP > 0 && decide(inj.seed, stage, n, 0) < st.rule.latencyP {
		st.latencies.Add(1)
		obs.Add("fault."+stage+".latency", 1)
		time.Sleep(st.rule.latency)
	}
	if st.rule.panicP > 0 && decide(inj.seed, stage, n, 1) < st.rule.panicP {
		st.panics.Add(1)
		obs.Add("fault."+stage+".panics", 1)
		panic(InjectedPanic{Stage: stage})
	}
	if st.rule.errorP > 0 && decide(inj.seed, stage, n, 2) < st.rule.errorP {
		st.errors.Add(1)
		obs.Add("fault."+stage+".errors", 1)
		return &InjectedError{Stage: stage}
	}
	return nil
}

// decide maps (seed, stage, ordinal, stream) to a uniform float in [0, 1)
// via splitmix64 — stateless, so the fault sequence is reproducible.
func decide(seed uint64, stage string, n, stream uint64) float64 {
	x := seed ^ hashString(stage) ^ (n * 0x9E3779B97F4A7C15) ^ (stream * 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// hashString is FNV-1a, inlined to keep decide allocation-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Counts is a snapshot of what one stage actually injected.
type Counts struct {
	Calls     int64
	Latencies int64
	Errors    int64
	Panics    int64
}

// Counts returns the per-stage injection tallies, keyed by stage name.
// Chaos tests reconcile these against the service's recovery counters.
func (inj *Injector) Counts() map[string]Counts {
	out := make(map[string]Counts, len(inj.states))
	for name, st := range inj.states {
		out[name] = Counts{
			Calls:     st.calls.Load(),
			Latencies: st.latencies.Load(),
			Errors:    st.errors.Load(),
			Panics:    st.panics.Load(),
		}
	}
	return out
}

// String renders the plan back in spec grammar (for startup logs).
func (inj *Injector) String() string {
	if inj == nil {
		return "off"
	}
	names := make([]string, 0, len(inj.states))
	for n := range inj.states {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := inj.states[n].rule
		var fs []string
		if r.latencyP > 0 {
			fs = append(fs, fmt.Sprintf("latency=%s@%g", r.latency, r.latencyP))
		}
		if r.errorP > 0 {
			fs = append(fs, fmt.Sprintf("error@%g", r.errorP))
		}
		if r.panicP > 0 {
			fs = append(fs, fmt.Sprintf("panic@%g", r.panicP))
		}
		if len(fs) == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		b.WriteString(n)
		b.WriteByte(':')
		b.WriteString(strings.Join(fs, ","))
	}
	if b.Len() == 0 {
		return "off"
	}
	fmt.Fprintf(&b, ";seed=%d", inj.seed)
	return b.String()
}

// Parse compiles a fault spec (see the package comment for the grammar).
// An empty spec returns (nil, nil): injection stays off.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{seed: 1, states: map[string]*stageState{}}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", rest)
			}
			inj.seed = seed
			continue
		}
		stage, faults, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q is neither seed= nor stage:faults", clause)
		}
		stage = strings.TrimSpace(stage)
		if !validStage(stage) {
			return nil, fmt.Errorf("faultinject: unknown stage %q (valid: %s)", stage, strings.Join(stages, ", "))
		}
		st := inj.states[stage]
		if st == nil {
			st = &stageState{}
			inj.states[stage] = st
		}
		for _, f := range strings.Split(faults, ",") {
			if err := parseFault(strings.TrimSpace(f), &st.rule); err != nil {
				return nil, err
			}
		}
	}
	if len(inj.states) == 0 {
		return nil, errors.New("faultinject: spec sets a seed but no stage faults")
	}
	return inj, nil
}

func validStage(s string) bool {
	for _, v := range stages {
		if s == v {
			return true
		}
	}
	return false
}

// parseFault compiles one kind['='value]['@'prob] term into r.
func parseFault(f string, r *rule) error {
	if f == "" {
		return errors.New("faultinject: empty fault term")
	}
	prob := 1.0
	if body, p, ok := strings.Cut(f, "@"); ok {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || math.IsNaN(v) || v <= 0 || v > 1 {
			return fmt.Errorf("faultinject: probability %q not in (0, 1]", p)
		}
		prob = v
		f = body
	}
	kind, val, hasVal := strings.Cut(f, "=")
	kind = strings.TrimSpace(kind)
	switch kind {
	case "latency":
		d := time.Millisecond
		if hasVal {
			var err error
			if d, err = time.ParseDuration(strings.TrimSpace(val)); err != nil || d <= 0 {
				return fmt.Errorf("faultinject: bad latency %q", val)
			}
		}
		r.latency, r.latencyP = d, prob
	case "error":
		if hasVal {
			return fmt.Errorf("faultinject: error takes no value (got %q)", val)
		}
		r.errorP = prob
	case "panic":
		if hasVal {
			return fmt.Errorf("faultinject: panic takes no value (got %q)", val)
		}
		r.panicP = prob
	default:
		return fmt.Errorf("faultinject: unknown fault kind %q (latency, error, panic)", kind)
	}
	return nil
}
