package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"bogus:error",              // unknown stage
		"structure",                // no faults
		"structure:explode",        // unknown kind
		"structure:error@2",        // probability out of range
		"structure:error@0",        // zero probability
		"structure:error@nope",     // non-numeric probability
		"structure:latency=-5ms",   // negative latency
		"structure:latency=banana", // unparsable duration
		"structure:error=5ms",      // error takes no value
		"structure:panic=1s",       // panic takes no value
		"seed=x;structure:error",   // bad seed
		"seed=5",                   // seed without any faults
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestParseEmptyMeansOff(t *testing.T) {
	inj, err := Parse("  ")
	if err != nil || inj != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", inj, err)
	}
}

func TestFireDeterministic(t *testing.T) {
	spec := "structure:error@0.3,latency=1ns@0.5;literal:panic@0.2;seed=42"
	run := func() (errs, panics int) {
		inj, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if inj.Fire(StageStructure) != nil {
				errs++
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(InjectedPanic); !ok {
							t.Errorf("panic value = %#v, want InjectedPanic", r)
						}
						panics++
					}
				}()
				if err := inj.Fire(StageLiteral); err != nil {
					t.Errorf("literal stage has no error fault, got %v", err)
				}
			}()
		}
		return
	}
	e1, p1 := run()
	e2, p2 := run()
	if e1 != e2 || p1 != p2 {
		t.Fatalf("two runs diverged: (%d, %d) vs (%d, %d)", e1, p1, e2, p2)
	}
	// Probabilities should land in the right ballpark over 500 draws.
	if e1 < 100 || e1 > 200 {
		t.Errorf("error@0.3 fired %d/500 times", e1)
	}
	if p1 < 50 || p1 > 150 {
		t.Errorf("panic@0.2 fired %d/500 times", p1)
	}
}

func TestSeedChangesStream(t *testing.T) {
	fires := func(seed string) string {
		inj, err := Parse("cache:error@0.5;seed=" + seed)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if inj.Fire(StageCache) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	if fires("1") == fires("2") {
		t.Error("different seeds produced identical fault streams")
	}
}

func TestInjectedErrorIsTyped(t *testing.T) {
	inj, err := Parse("structure:error")
	if err != nil {
		t.Fatal(err)
	}
	ferr := inj.Fire(StageStructure)
	var ie *InjectedError
	if !errors.As(ferr, &ie) || ie.Stage != StageStructure {
		t.Fatalf("Fire error = %v, want *InjectedError{structure}", ferr)
	}
}

func TestLatencySleeps(t *testing.T) {
	inj, err := Parse("literal:latency=20ms")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if err := inj.Fire(StageLiteral); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Errorf("latency fault slept %s, want ~20ms", d)
	}
	c := inj.Counts()[StageLiteral]
	if c.Calls != 1 || c.Latencies != 1 || c.Errors != 0 || c.Panics != 0 {
		t.Errorf("counts = %+v", c)
	}
}

func TestPackageLevelFireOffIsFree(t *testing.T) {
	Set(nil)
	if Enabled() {
		t.Fatal("Enabled with no injector")
	}
	if err := Fire(StageStructure); err != nil {
		t.Fatalf("Fire with no injector = %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() { _ = Fire(StageStructure) })
	if allocs != 0 {
		t.Errorf("disabled Fire allocates %v per call", allocs)
	}
}

func TestSetAndCounts(t *testing.T) {
	inj, err := Parse("cache:error;seed=9")
	if err != nil {
		t.Fatal(err)
	}
	Set(inj)
	defer Set(nil)
	if !Enabled() {
		t.Fatal("not enabled after Set")
	}
	if err := Fire(StageCache); err == nil {
		t.Fatal("error@1 did not fire")
	}
	if err := Fire(StageStructure); err != nil {
		t.Fatalf("unconfigured stage fired: %v", err)
	}
	c := inj.Counts()[StageCache]
	if c.Calls != 1 || c.Errors != 1 {
		t.Errorf("counts = %+v", c)
	}
}

func TestStringRoundTrips(t *testing.T) {
	inj, err := Parse("structure:latency=5ms@0.5,error@0.1;seed=7")
	if err != nil {
		t.Fatal(err)
	}
	s := inj.String()
	re, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if re.String() != s {
		t.Errorf("round trip: %q -> %q", s, re.String())
	}
	var nilInj *Injector
	if nilInj.String() != "off" {
		t.Errorf("nil String = %q", nilInj.String())
	}
}
