package session

import (
	"strings"
	"testing"

	"speakql/internal/core"
	"speakql/internal/grammar"
	"speakql/internal/literal"
)

var testEngine *core.Engine

func engine(t testing.TB) *core.Engine {
	t.Helper()
	if testEngine == nil {
		cat := literal.NewCatalog(
			[]string{"Employees", "Salaries", "Titles"},
			[]string{"FirstName", "LastName", "Salary", "Gender", "HireDate", "Title"},
			[]string{"John", "Karsten", "Engineer", "M", "F"},
		)
		e, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		testEngine = e
	}
	return testEngine
}

func TestDictateFull(t *testing.T) {
	s := New(engine(t))
	s.DictateFull("select salary from employees where gender equals M")
	sql := s.SQL()
	if !strings.HasPrefix(sql, "SELECT Salary FROM Employees WHERE") {
		t.Errorf("SQL = %q", sql)
	}
	// One dictation, charged the record-button touches only.
	if s.Dictations() != 1 || s.Touches() != CostRecordButton {
		t.Errorf("effort: dictations=%d touches=%d", s.Dictations(), s.Touches())
	}
}

func TestDictateClauseReplacesClause(t *testing.T) {
	s := New(engine(t))
	s.DictateFull("select salary from employees where gender equals M")
	before := s.Tokens()
	// Re-dictate only the SELECT clause.
	s.DictateClause("select first name")
	after := s.Tokens()
	if strings.Join(after, " ") == strings.Join(before, " ") {
		t.Fatalf("clause dictation changed nothing: %v", after)
	}
	if got := s.SQL(); !strings.Contains(got, "FirstName") {
		t.Errorf("SELECT clause not replaced: %q", got)
	}
	if !strings.Contains(s.SQL(), "WHERE") {
		t.Errorf("WHERE clause lost: %q", s.SQL())
	}
	if s.Dictations() != 2 {
		t.Errorf("dictations = %d", s.Dictations())
	}
}

func TestDictateClauseOnEmptySession(t *testing.T) {
	s := New(engine(t))
	s.DictateClause("select salary from salaries")
	if len(s.Tokens()) == 0 {
		t.Fatal("clause dictation on empty session produced nothing")
	}
}

func TestDictateClauseAppendsMissingClause(t *testing.T) {
	s := New(engine(t))
	s.DictateFull("select salary from employees")
	s.DictateClause("where gender equals M")
	if !strings.Contains(s.SQL(), "WHERE") {
		t.Errorf("WHERE not appended: %q", s.SQL())
	}
}

func TestKeyboardOps(t *testing.T) {
	s := New(engine(t))
	s.SetTokens([]string{"SELECT", "Salary", "FROM", "Employees"})
	s.ReplaceToken(1, "Gender")
	if s.Tokens()[1] != "Gender" {
		t.Fatal("replace failed")
	}
	s.InsertToken(2, ",")
	if s.Tokens()[2] != "," {
		t.Fatal("insert failed")
	}
	s.DeleteToken(2)
	if s.SQL() != "SELECT Gender FROM Employees" {
		t.Fatalf("delete failed: %q", s.SQL())
	}
	if s.Touches() == 0 {
		t.Fatal("keyboard ops cost no touches")
	}
	// Out-of-range ops are no-ops.
	n := s.Touches()
	s.DeleteToken(99)
	s.ReplaceToken(-1, "x")
	if s.Touches() != n {
		t.Fatal("out-of-range op charged touches")
	}
	// Insert clamps.
	s.InsertToken(99, "LIMIT")
	if s.Tokens()[len(s.Tokens())-1] != "LIMIT" {
		t.Fatal("insert did not clamp to end")
	}
}

func TestTouchCosts(t *testing.T) {
	if TouchCost("SELECT") != CostListToken {
		t.Error("keyword cost")
	}
	if TouchCost("=") != CostListToken {
		t.Error("splchar cost")
	}
	if TouchCost("1993-01-20") != CostDatePicker {
		t.Error("date cost")
	}
	if TouchCost("70000") != CostValueAutocomplete {
		t.Error("number cost")
	}
	if TouchCost("Salary") <= CostListToken-1 {
		t.Error("schema token cost")
	}
}

func TestEffortAccounting(t *testing.T) {
	s := New(engine(t))
	s.DictateFull("select salary from employees")
	s.ReplaceToken(1, "Gender")
	if s.Effort() != s.Touches()+s.Dictations() {
		t.Fatal("Effort must equal touches + dictations")
	}
	if len(s.Events()) != 2 {
		t.Fatalf("events = %v", s.Events())
	}
}

// A session driven by a cache-enabled engine must produce the same SQL as
// one driven by the cache-less engine — re-dictations repeat masked shapes,
// exactly the traffic the cache exists for — and the repeats must hit.
func TestSessionWithSearchCache(t *testing.T) {
	plain := New(engine(t))
	cachedEngine, err := core.NewEngine(core.Config{
		Grammar:            grammar.TestScale(),
		Catalog:            engine(t).Catalog(),
		StructureCacheSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	cached := New(cachedEngine)
	steps := []struct {
		clause bool
		text   string
	}{
		{false, "select salary from employees where gender equals M"},
		{true, "select first name"},
		{false, "select salary from employees where gender equals M"}, // repeat → hit
	}
	for _, st := range steps {
		if st.clause {
			plain.DictateClause(st.text)
			cached.DictateClause(st.text)
		} else {
			plain.DictateFull(st.text)
			cached.DictateFull(st.text)
		}
		if plain.SQL() != cached.SQL() {
			t.Fatalf("after %q: plain %q, cached %q", st.text, plain.SQL(), cached.SQL())
		}
	}
	if cs := cachedEngine.SearchCache().Stats(); cs.Hits == 0 {
		t.Errorf("repeated dictation produced no cache hits: %+v", cs)
	}
}
