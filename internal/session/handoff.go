package session

// handoff.go connects live sessions to the snapshot Store: Snapshot freezes
// a session into its portable form after each mutating request (the HTTP
// layer checkpoints it into the Store), and Restore rebuilds a live session
// from a snapshot on the replica that takes the session over after its
// original owner dies. Restoring a mid-stream dictation replays the
// recorded fragments through a fresh engine fragment session; the
// incremental pipeline's pinned bit-identity to one-shot correction is what
// makes the resumed stream indistinguishable from one that never moved.

import (
	"context"

	"speakql/internal/core"
	"speakql/internal/stream"
)

// Snapshot freezes the session's portable state under the caller's
// serialization (the HTTP layer holds the per-session lock): display
// tokens, the effort log, and the open dictation's phase and fragments.
// id and tenant label the snapshot for the Store and for tenant-scoped
// restore on the receiving replica.
func (s *Session) Snapshot(id, tenant string) *Snapshot {
	snap := &Snapshot{
		Version: SnapshotVersion,
		ID:      id,
		Tenant:  tenant,
		Tokens:  append([]string(nil), s.tokens...),
		Events:  append([]Event(nil), s.events...),
	}
	if s.dict != nil {
		phase, fragments, seq := s.dict.SnapshotState()
		snap.Stream = &StreamSnapshot{Phase: string(phase), Fragments: fragments, Seq: seq}
	}
	return snap
}

// Restore rebuilds a live session from a snapshot on this replica: display
// and effort log verbatim, and — for a snapshot taken mid-stream — the
// dictation replayed to exactly the state the original replica held, so the
// next fragment continues the stream as if nothing died. cfg carries the
// receiving replica's event broadcaster and fragment budget (subscribers
// re-attach on the new replica; events are not replayed).
//
// The returned FragmentOutput is the mid-stream restore correction (zero
// when the snapshot had no open stream); its Err reports a degraded or
// faulted restore pass — the session is still fully wired, and Finalize
// retries at full fidelity, so callers may surface the error without
// discarding the session.
func Restore(ctx context.Context, engine *core.Engine, cfg stream.Config, snap *Snapshot) (*Session, core.FragmentOutput) {
	s := New(engine)
	s.SetStreamConfig(cfg)
	s.tokens = append([]string(nil), snap.Tokens...)
	s.events = append([]Event(nil), snap.Events...)
	var out core.FragmentOutput
	if snap.Stream != nil {
		var d *stream.Dictation
		d, out = stream.RestoreDictation(ctx, engine, cfg, stream.State(snap.Stream.Phase), snap.Stream.Fragments)
		s.dict = d
	}
	return s, out
}
