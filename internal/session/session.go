// Package session models SpeakQL's multimodal interface (Section 5,
// Figure 5): a query display that the user fills by full-query dictation or
// clause-level dictation (re-running the correction engine), and repairs
// with the SQL Keyboard's touch operations (insert / delete / replace
// token, value autocomplete, date picker). Every interaction is logged with
// its effort cost, which is what the user-study simulator (internal/uisim)
// and Figure 7/12 consume.
package session

import (
	"context"
	"strings"

	"speakql/internal/core"
	"speakql/internal/sqltoken"
	"speakql/internal/stream"
)

// EventKind labels one logged interaction.
type EventKind string

// Interaction kinds.
const (
	EventDictateFull   EventKind = "dictate-full"
	EventDictateClause EventKind = "dictate-clause"
	EventKeyboardTouch EventKind = "keyboard"
)

// Event is one logged interaction. The JSON tags are the handoff codec's:
// the effort log travels inside session snapshots (store.go).
type Event struct {
	Kind    EventKind `json:"kind"`
	Detail  string    `json:"detail,omitempty"`
	Touches int       `json:"touches,omitempty"` // touch/click cost of this event (0 for dictations)
}

// Session is one interactive query-composition session.
type Session struct {
	engine    *core.Engine
	tokens    []string
	events    []Event
	dict      *stream.Dictation // open clause-streaming dictation, if any
	streamCfg stream.Config
}

// New starts an empty session over the given engine.
func New(engine *core.Engine) *Session {
	return &Session{engine: engine}
}

// Tokens returns the current query tokens shown in the display.
func (s *Session) Tokens() []string { return append([]string(nil), s.tokens...) }

// SQL renders the current display string.
func (s *Session) SQL() string { return strings.Join(s.tokens, " ") }

// Events returns the interaction log.
func (s *Session) Events() []Event { return append([]Event(nil), s.events...) }

// Touches totals the touch/click effort so far.
func (s *Session) Touches() int {
	n := 0
	for _, e := range s.events {
		n += e.Touches
	}
	return n
}

// Dictations counts dictation and re-dictation attempts.
func (s *Session) Dictations() int {
	n := 0
	for _, e := range s.events {
		if e.Kind == EventDictateFull || e.Kind == EventDictateClause ||
			e.Kind == EventDictateFragment {
			n++
		}
	}
	return n
}

// Effort is the paper's units-of-effort metric: touches/clicks (including
// keyboard strokes) plus dictation attempts.
func (s *Session) Effort() int { return s.Touches() + s.Dictations() }

// CostRecordButton is the touch cost of one dictation attempt: tapping the
// record button and confirming the result. The paper's units-of-effort
// metric counts these interface touches alongside keyboard strokes, which
// is why even a perfectly-corrected one-shot dictation costs a few units
// (Table 7C's simple queries bottom out around 5, not 1).
const CostRecordButton = 2

// DictateFull runs the whole-query pipeline ("Record" button) and replaces
// the display.
func (s *Session) DictateFull(transcript string) {
	s.DictateFullContext(context.Background(), transcript)
}

// DictateFullContext is DictateFull under a request context: an expired
// deadline leaves the display holding the engine's partial (possibly empty)
// output. The dictation attempt is logged either way — the user pressed the
// button. The engine's Output is returned so callers can surface its
// degradation level.
func (s *Session) DictateFullContext(ctx context.Context, transcript string) core.Output {
	out := s.engine.CorrectContext(ctx, transcript)
	s.tokens = out.Best().Tokens
	s.events = append(s.events, Event{Kind: EventDictateFull, Detail: transcript, Touches: CostRecordButton})
	return out
}

// clauseHeads mark where each clause starts in a token stream.
var clauseHeads = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "ORDER": true, "LIMIT": true,
}

// clauseOf returns the clause keyword a transcript dictates ("SELECT",
// "WHERE", …), or "" if unrecognizable.
func clauseOf(transcript string) string {
	toks := sqltoken.SubstituteSpokenForms(sqltoken.TokenizeTranscript(transcript))
	if len(toks) == 0 {
		return ""
	}
	head := strings.ToUpper(toks[0])
	if clauseHeads[head] {
		return head
	}
	return ""
}

// clauseSpan finds the token span [lo, hi) of the clause starting with head
// in the current display; ok=false when the clause is absent.
func (s *Session) clauseSpan(head string) (lo, hi int, ok bool) {
	lo = -1
	for i, t := range s.tokens {
		up := strings.ToUpper(t)
		if lo < 0 {
			if up == head {
				lo = i
			}
			continue
		}
		if clauseHeads[up] {
			return lo, i, true
		}
	}
	if lo < 0 {
		return 0, 0, false
	}
	return lo, len(s.tokens), true
}

// DictateClause re-dictates one clause (the per-clause record buttons of
// Figure 5A): the clause's token span is replaced by splicing the new
// dictation into the rest of the query and re-running the engine, which
// keeps the whole display syntactically valid. If the current display lacks
// the clause (or is empty), the dictation is appended in clause order.
func (s *Session) DictateClause(transcript string) {
	s.DictateClauseContext(context.Background(), transcript)
}

// DictateClauseContext is DictateClause under a request context (see
// DictateFullContext for deadline and return semantics).
func (s *Session) DictateClauseContext(ctx context.Context, transcript string) core.Output {
	head := clauseOf(transcript)
	s.events = append(s.events, Event{Kind: EventDictateClause, Detail: transcript, Touches: CostRecordButton})
	if head == "" || len(s.tokens) == 0 {
		out := s.engine.CorrectContext(ctx, transcript)
		s.tokens = out.Best().Tokens
		return out
	}
	lo, hi, ok := s.clauseSpan(head)
	var parts []string
	if ok {
		parts = append(parts, s.tokens[:lo]...)
		parts = append(parts, transcriptTokens(transcript)...)
		parts = append(parts, s.tokens[hi:]...)
	} else {
		parts = append(parts, s.tokens...)
		parts = append(parts, transcriptTokens(transcript)...)
	}
	out := s.engine.CorrectContext(ctx, strings.Join(parts, " "))
	s.tokens = out.Best().Tokens
	return out
}

func transcriptTokens(transcript string) []string {
	return sqltoken.SubstituteSpokenForms(sqltoken.TokenizeTranscript(transcript))
}

// Touch costs of the SQL Keyboard (Figure 5B). Keywords, table names, and
// attribute names are single list taps (plus one tap to place the cursor);
// attribute values use autocomplete; dates use the scrollable picker.
const (
	// CostListToken: cursor tap + list tap.
	CostListToken = 2
	// CostValueAutocomplete: cursor tap + a few characters + suggestion tap.
	CostValueAutocomplete = 4
	// CostDatePicker: cursor tap + three wheel flicks.
	CostDatePicker = 4
	// CostDelete: cursor tap + delete key.
	CostDelete = 2
)

// TouchCost estimates the SQL-Keyboard touches needed to produce tok.
func TouchCost(tok string) int {
	switch {
	case sqltoken.IsKeyword(tok) || sqltoken.IsSplChar(tok):
		return CostListToken
	case looksLikeDate(tok):
		return CostDatePicker
	case isNumber(tok):
		return CostValueAutocomplete
	default:
		return CostListToken + 1 // schema lists are longer; one scroll flick
	}
}

func looksLikeDate(tok string) bool {
	return len(tok) == 10 && tok[4] == '-' && tok[7] == '-'
}

func isNumber(tok string) bool {
	for i := 0; i < len(tok); i++ {
		if (tok[i] < '0' || tok[i] > '9') && tok[i] != '.' {
			return false
		}
	}
	return len(tok) > 0
}

// InsertToken inserts tok at position i via the SQL Keyboard.
func (s *Session) InsertToken(i int, tok string) {
	if i < 0 {
		i = 0
	}
	if i > len(s.tokens) {
		i = len(s.tokens)
	}
	s.tokens = append(s.tokens[:i], append([]string{tok}, s.tokens[i:]...)...)
	s.events = append(s.events, Event{Kind: EventKeyboardTouch, Detail: "insert " + tok, Touches: TouchCost(tok)})
}

// DeleteToken removes the token at position i.
func (s *Session) DeleteToken(i int) {
	if i < 0 || i >= len(s.tokens) {
		return
	}
	s.tokens = append(s.tokens[:i], s.tokens[i+1:]...)
	s.events = append(s.events, Event{Kind: EventKeyboardTouch, Detail: "delete", Touches: CostDelete})
}

// ReplaceToken replaces the token at position i (in-place edit of a stray
// token, the keyboard's main use).
func (s *Session) ReplaceToken(i int, tok string) {
	if i < 0 || i >= len(s.tokens) {
		return
	}
	s.tokens[i] = tok
	s.events = append(s.events, Event{Kind: EventKeyboardTouch, Detail: "replace " + tok, Touches: TouchCost(tok)})
}

// SetTokens replaces the display without logging effort (used to restore
// state in tests and the HTTP backend).
func (s *Session) SetTokens(toks []string) {
	s.tokens = append([]string(nil), toks...)
}
