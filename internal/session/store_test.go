package session

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"speakql/internal/stream"
)

// Snapshot → encode → decode → Restore must reproduce the session exactly:
// display, effort log, and — mid-stream — the dictation's state, with the
// resumed stream's subsequent fragments bit-identical to a session that
// never moved.
func TestSnapshotRestoreMidStreamBitIdentical(t *testing.T) {
	e := engine(t)
	ctx := context.Background()
	fragments := []string{
		"select salary from employees",
		"where gender equals M",
	}
	tail := "and salary greater than 50000"

	// Control: one session dictates all fragments and finalizes, never moving.
	control := New(e)
	for _, f := range fragments {
		if _, err := control.StreamFragment(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := control.StreamFragment(ctx, tail); err != nil {
		t.Fatal(err)
	}
	controlFin, err := control.FinalizeStream(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Handoff: dictate the prefix, snapshot, move through the codec, restore,
	// then dictate the tail on the restored session.
	orig := New(e)
	for _, f := range fragments {
		if _, err := orig.StreamFragment(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	snap := orig.Snapshot("s-handoff", "default")
	raw, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "s-handoff" || decoded.Tenant != "default" {
		t.Fatalf("snapshot identity lost: %+v", decoded)
	}
	if decoded.Stream == nil || decoded.Stream.Phase != string(stream.StateStreaming) {
		t.Fatalf("stream checkpoint lost: %+v", decoded.Stream)
	}
	restored, out := Restore(ctx, e, stream.Config{}, decoded)
	if out.Err != nil {
		t.Fatalf("restore correction failed: %v", out.Err)
	}
	if got, want := restored.SQL(), orig.SQL(); got != want {
		t.Fatalf("restored display %q != original %q", got, want)
	}
	if restored.Effort() != orig.Effort() || restored.Dictations() != orig.Dictations() {
		t.Fatalf("effort log diverged: restored %d/%d, original %d/%d",
			restored.Effort(), restored.Dictations(), orig.Effort(), orig.Dictations())
	}
	if !reflect.DeepEqual(restored.Events(), orig.Events()) {
		t.Fatalf("event log diverged:\n%v\n%v", restored.Events(), orig.Events())
	}
	// The resumed stream continues exactly where the control is.
	resumedOut, err := restored.StreamFragment(ctx, tail)
	if err != nil {
		t.Fatal(err)
	}
	if resumedOut.Seq != 3 {
		t.Fatalf("resumed Seq = %d, want 3 (numbering must survive handoff)", resumedOut.Seq)
	}
	resumedFin, err := restored.FinalizeStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock latency fields are the only legitimate difference.
	a, b := resumedFin.Output, controlFin.Output
	a.StructureLatency, b.StructureLatency = 0, 0
	a.LiteralLatency, b.LiteralLatency = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("resumed finalize diverged from uninterrupted control:\n%+v\n%+v", a, b)
	}
	if resumedFin.RawTranscript != controlFin.RawTranscript {
		t.Fatalf("transcript diverged: %q != %q", resumedFin.RawTranscript, controlFin.RawTranscript)
	}
}

// A finalized snapshot restores finalized: the display survives, further
// fragments are rejected with ErrFinalized (same as on the original
// replica), and no correction runs during restore.
func TestSnapshotRestoreFinalized(t *testing.T) {
	e := engine(t)
	ctx := context.Background()
	s := New(e)
	if _, err := s.StreamFragment(ctx, "select salary from employees"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FinalizeStream(ctx); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot("s-fin", "")
	restored, _ := Restore(ctx, e, stream.Config{}, snap)
	if got, want := restored.SQL(), s.SQL(); got != want {
		t.Fatalf("restored display %q != %q", got, want)
	}
	if st := restored.Stream().State(); st != stream.StateFinalized {
		t.Fatalf("restored stream state = %v, want finalized", st)
	}
	if _, err := restored.StreamFragment(ctx, "where gender equals M"); err != nil {
		// StreamFragment starts a fresh dictation after finalize by design —
		// exactly like the original replica would.
		t.Fatalf("post-finalize fragment should start a new dictation, got %v", err)
	}
	if _, err := restored.Stream().Finalize(ctx); err != nil {
		t.Fatalf("new dictation should finalize cleanly, got %v", err)
	}
}

// A snapshot without an open stream restores display-only.
func TestSnapshotRestoreDisplayOnly(t *testing.T) {
	e := engine(t)
	s := New(e)
	s.DictateFull("select salary from employees where gender equals M")
	s.InsertToken(0, "EXPLAIN")
	snap := s.Snapshot("s-disp", "")
	if snap.Stream != nil {
		t.Fatalf("no dictation open, but snapshot has stream: %+v", snap.Stream)
	}
	restored, out := Restore(context.Background(), e, stream.Config{}, snap)
	if out.Err != nil || out.Seq != 0 {
		t.Fatalf("display-only restore ran a stream correction: %+v", out)
	}
	if restored.SQL() != s.SQL() || restored.Effort() != s.Effort() {
		t.Fatalf("display-only restore diverged: %q/%d vs %q/%d",
			restored.SQL(), restored.Effort(), s.SQL(), s.Effort())
	}
}

// Decode rejects garbage, versions from the future, and anonymous
// snapshots.
func TestDecodeSnapshotRejects(t *testing.T) {
	cases := []string{
		`not json`,
		`{"v":99,"id":"s1"}`,
		`{"v":1}`,
	}
	for _, raw := range cases {
		if _, err := DecodeSnapshot([]byte(raw)); err == nil {
			t.Errorf("DecodeSnapshot(%q) accepted", raw)
		}
	}
}

// storeContract drives the Store interface invariants both implementations
// must share.
func storeContract(t *testing.T, st Store) {
	t.Helper()
	if _, ok, err := st.Load("absent"); ok || err != nil {
		t.Fatalf("Load(absent) = ok=%v err=%v", ok, err)
	}
	if err := st.Delete("absent"); err != nil {
		t.Fatalf("Delete(absent) = %v (must be a no-op)", err)
	}
	snap := &Snapshot{ID: "r1-s1", Tenant: "default", Tokens: []string{"SELECT", "Salary"},
		Events: []Event{{Kind: EventDictateFull, Detail: "x", Touches: 2}},
		Stream: &StreamSnapshot{Phase: "streaming", Fragments: []string{"select salary"}, Seq: 1}}
	if err := st.Save(snap); err != nil {
		t.Fatal(err)
	}
	// Overwrite wins.
	snap2 := &Snapshot{ID: "r1-s1", Tokens: []string{"SELECT", "Title"}}
	if err := st.Save(snap2); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Load("r1-s1")
	if err != nil || !ok {
		t.Fatalf("Load = ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got.Tokens, snap2.Tokens) {
		t.Fatalf("Load returned stale snapshot: %+v", got)
	}
	ids, err := st.List()
	if err != nil || len(ids) != 1 || ids[0] != "r1-s1" {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := st.Delete("r1-s1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Load("r1-s1"); ok {
		t.Fatal("snapshot survived Delete")
	}
	// Hostile ids must not escape or collide trivially.
	for i, id := range []string{"../../etc/passwd", "a/b\\c", "..", ""} {
		s := &Snapshot{ID: id, Tokens: []string{fmt.Sprint(i)}}
		if id == "" {
			continue // empty ids are rejected at decode; stores never see them
		}
		if err := st.Save(s); err != nil {
			t.Fatalf("Save(%q) = %v", id, err)
		}
		got, ok, err := st.Load(id)
		if err != nil || !ok || got.Tokens[0] != fmt.Sprint(i) {
			t.Fatalf("round-trip of hostile id %q failed: ok=%v err=%v", id, ok, err)
		}
		if err := st.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	// Concurrent saves/loads/deletes must be race-free (run with -race).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("c-%d", w)
			for i := 0; i < 50; i++ {
				_ = st.Save(&Snapshot{ID: id, Tokens: []string{fmt.Sprint(i)}})
				_, _, _ = st.Load(id)
			}
			_ = st.Delete(id)
		}(w)
	}
	wg.Wait()
}

func TestMemStoreContract(t *testing.T) { storeContract(t, NewMemStore()) }

func TestDirStoreContract(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, st)
}

// DirStore files must stay inside the store directory even for traversal-
// shaped ids.
func TestDirStoreEscaping(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := "../escape"
	if err := st.Save(&Snapshot{ID: id}); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = %v, %v (escaped id must round-trip)", ids, err)
	}
	p := st.path(id)
	if !strings.HasPrefix(p, dir) || strings.Contains(p[len(dir):], "..") {
		t.Fatalf("hostile id escaped the store dir: %q", p)
	}
}
