package session

import (
	"context"
	"errors"
	"strings"
	"testing"

	"speakql/internal/stream"
)

func TestStreamFragmentGrowsDisplay(t *testing.T) {
	s := New(engine(t))
	ctx := context.Background()
	out, err := s.StreamFragment(ctx, "select salary from employees")
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 1 || len(s.Tokens()) == 0 {
		t.Fatalf("first fragment: seq=%d tokens=%v", out.Seq, s.Tokens())
	}
	if _, err := s.StreamFragment(ctx, "where gender equals M"); err != nil {
		t.Fatal(err)
	}
	fin, err := s.FinalizeStream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(fin.Best().SQL, "SELECT Salary FROM Employees WHERE") {
		t.Errorf("final SQL = %q", fin.Best().SQL)
	}
	if got, want := s.SQL(), strings.Join(fin.Best().Tokens, " "); got != want {
		t.Errorf("display %q, want finalized %q", got, want)
	}
	// Two fragments = two record-button presses; finalize is free.
	if s.Dictations() != 2 || s.Touches() != 2*CostRecordButton {
		t.Errorf("effort: dictations=%d touches=%d", s.Dictations(), s.Touches())
	}
	// The finalized dictation stays inspectable until the next fragment.
	if st := s.Stream().State(); st != stream.StateFinalized {
		t.Errorf("stream state = %q", st)
	}
}

func TestStreamFragmentStartsFreshAfterFinalize(t *testing.T) {
	s := New(engine(t))
	ctx := context.Background()
	if _, err := s.StreamFragment(ctx, "select salary from employees"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FinalizeStream(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := s.StreamFragment(ctx, "select title from titles")
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 1 {
		t.Errorf("fragment after finalize reused the old dictation: seq=%d", out.Seq)
	}
	if out.RawTranscript != "select title from titles" {
		t.Errorf("new dictation transcript = %q", out.RawTranscript)
	}
}

func TestFinalizeStreamWithoutDictation(t *testing.T) {
	s := New(engine(t))
	if _, err := s.FinalizeStream(context.Background()); !errors.Is(err, stream.ErrFinalized) {
		t.Fatalf("finalize with no stream: err = %v", err)
	}
	s.CloseStream() // no-op on nil dictation
}

func TestCloseStreamRejectsFurtherFragments(t *testing.T) {
	s := New(engine(t))
	ctx := context.Background()
	if _, err := s.StreamFragment(ctx, "select salary from employees"); err != nil {
		t.Fatal(err)
	}
	s.CloseStream()
	// A closed dictation is replaced transparently by the next fragment.
	out, err := s.StreamFragment(ctx, "select title from titles")
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 1 {
		t.Errorf("fragment after close reused the closed dictation: seq=%d", out.Seq)
	}
}
