package session

// streaming.go wires the clause-streaming dictation pipeline
// (internal/stream) into the interactive session: each streamed fragment is
// one record-button press that grows the display in place, and the effort
// log counts it exactly like the other dictation modes. The HTTP layer maps
// POST /api/stream/dictate and /api/stream/finalize onto these methods.

import (
	"context"

	"speakql/internal/core"
	"speakql/internal/stream"
)

// EventDictateFragment logs one streamed clause fragment (the incremental
// record button of the clause-streaming mode).
const EventDictateFragment EventKind = "dictate-fragment"

// SetStreamConfig configures the session's streaming dictations (fragment
// budget, event broadcaster, session label). It applies to the next
// dictation started — call it before the first StreamFragment, or after a
// FinalizeStream/CloseStream boundary.
func (s *Session) SetStreamConfig(cfg stream.Config) { s.streamCfg = cfg }

// Stream returns the session's active dictation, or nil when none is open.
func (s *Session) Stream() *stream.Dictation { return s.dict }

// StreamFragment feeds one dictated fragment into the session's streaming
// dictation, starting a new dictation if none is open (or the previous one
// finished). The display follows the best candidate of the accumulated
// correction; the attempt is logged at the record-button cost either way.
func (s *Session) StreamFragment(ctx context.Context, fragment string) (core.FragmentOutput, error) {
	d := s.dict
	if d == nil || d.State() == stream.StateFinalized || d.State() == stream.StateClosed {
		d = stream.NewDictation(s.engine, s.streamCfg)
		s.dict = d
	}
	s.events = append(s.events, Event{Kind: EventDictateFragment, Detail: fragment, Touches: CostRecordButton})
	out, err := d.Dictate(ctx, fragment)
	if err != nil {
		return out, err
	}
	s.tokens = out.Best().Tokens
	return out, nil
}

// FinalizeStream closes the open dictation with a full-fidelity re-pass and
// leaves its output in the display. Finalizing is free — the stream simply
// ends — and fails with stream.ErrFinalized / stream.ErrClosed when there is
// nothing to finalize.
func (s *Session) FinalizeStream(ctx context.Context) (core.FragmentOutput, error) {
	if s.dict == nil {
		return core.FragmentOutput{}, stream.ErrFinalized
	}
	out, err := s.dict.Finalize(ctx)
	if err != nil {
		return out, err
	}
	s.tokens = out.Best().Tokens
	return out, nil
}

// CloseStream tears down the open dictation, if any (session eviction; the
// client going away). Idempotent.
func (s *Session) CloseStream() {
	if s.dict != nil {
		s.dict.Close()
	}
}
