package session

// store.go is the session-handoff layer: a Snapshot is the portable state of
// one interactive session (display tokens, effort log, and — when a
// clause-streaming dictation is open — its lifecycle phase and raw fragment
// sequence), a Store is where replicas of a horizontally scaled serving tier
// keep those snapshots so a session pinned to one process's memory survives
// that process dying, and Restore rebuilds a live Session from a Snapshot on
// whichever replica the router's hash ring now owns it.
//
// The snapshot deliberately carries raw inputs, not engine state: the
// correction pipeline is deterministic and its incremental mode is pinned
// bit-identical to one-shot correction, so replaying the recorded fragments
// through a fresh FragmentSession on the new replica reproduces the
// original searcher frontier, candidates, and bindings exactly. That keeps
// the codec tiny, versionable, and independent of every internal arena
// layout.
//
// Two stores ship: MemStore (one process, or a chaos test's stand-in for an
// external KV service) and DirStore (a shared directory, the simplest thing
// that lets separate replica processes on one host — or an NFS mount — hand
// sessions to each other). Both round-trip through the codec on every
// Save/Load so a codec regression cannot hide behind pointer sharing.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// SnapshotVersion is the codec version embedded in every encoded snapshot;
// Decode rejects versions it does not understand rather than half-restoring
// a session from a future format.
const SnapshotVersion = 1

// StreamSnapshot is the portable state of an open clause-streaming
// dictation: the lifecycle phase and the raw fragments, which together are
// sufficient to rebuild the dictation bit-identically on another replica
// (see stream.RestoreDictation).
type StreamSnapshot struct {
	// Phase is the dictation's lifecycle state (stream.State as a string).
	Phase string `json:"phase"`
	// Fragments is the raw dictated fragment sequence, in order.
	Fragments []string `json:"fragments,omitempty"`
	// Seq is the last fragment's sequence number (informational; restore
	// derives numbering from the fragment count).
	Seq int `json:"seq,omitempty"`
}

// Snapshot is the portable state of one session: everything a replica needs
// to take the session over, and nothing tied to the process that wrote it.
type Snapshot struct {
	// Version is the codec version (SnapshotVersion).
	Version int `json:"v"`
	// ID is the session's fleet-wide identifier.
	ID string `json:"id"`
	// Tenant is the owning tenant's registry ID ("" = seed tenant).
	Tenant string `json:"tenant,omitempty"`
	// Tokens is the display state (the corrected query shown to the user).
	Tokens []string `json:"tokens,omitempty"`
	// Events is the interaction log (effort accounting must survive handoff;
	// it is the paper's primary metric).
	Events []Event `json:"events,omitempty"`
	// Stream is the open dictation's checkpoint, nil when none is open.
	Stream *StreamSnapshot `json:"stream,omitempty"`
}

// Encode serializes a snapshot for a Store.
func (snap *Snapshot) Encode() ([]byte, error) {
	snap.Version = SnapshotVersion
	return json.Marshal(snap)
}

// DecodeSnapshot parses an encoded snapshot, rejecting unknown codec
// versions and snapshots without an ID (a snapshot that cannot say which
// session it is must never be restored as some other session).
func DecodeSnapshot(raw []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("session: malformed snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("session: snapshot version %d not supported (have %d)", snap.Version, SnapshotVersion)
	}
	if snap.ID == "" {
		return nil, errors.New("session: snapshot has no session id")
	}
	return &snap, nil
}

// Store is where session snapshots live between checkpoints — the
// extractable half of the serving tier's session state. Implementations
// must be safe for concurrent use by one process and last-writer-wins
// across processes; Load returns ok=false (not an error) when no snapshot
// exists, and Delete of a missing id is a no-op.
type Store interface {
	// Save persists snap under snap.ID, replacing any previous snapshot.
	Save(snap *Snapshot) error
	// Load retrieves the snapshot for id; ok=false when none exists.
	Load(id string) (snap *Snapshot, ok bool, err error)
	// Delete removes id's snapshot (idempotent). After Delete returns, the
	// session is gone fleet-wide: a later Load must miss until a new Save.
	Delete(id string) error
	// List returns the ids with stored snapshots, in no particular order.
	List() ([]string, error)
}

// MemStore is the in-memory Store: the single-process default, and the
// chaos suite's stand-in for an external KV service shared by in-process
// replicas. The zero value is not usable; construct with NewMemStore.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory snapshot store.
func NewMemStore() *MemStore { return &MemStore{m: map[string][]byte{}} }

// Save implements Store (encoded bytes, so Load exercises the codec).
func (ms *MemStore) Save(snap *Snapshot) error {
	raw, err := snap.Encode()
	if err != nil {
		return err
	}
	ms.mu.Lock()
	ms.m[snap.ID] = raw
	ms.mu.Unlock()
	return nil
}

// Load implements Store.
func (ms *MemStore) Load(id string) (*Snapshot, bool, error) {
	ms.mu.RLock()
	raw, ok := ms.m[id]
	ms.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	snap, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, false, err
	}
	return snap, true, nil
}

// Delete implements Store.
func (ms *MemStore) Delete(id string) error {
	ms.mu.Lock()
	delete(ms.m, id)
	ms.mu.Unlock()
	return nil
}

// List implements Store.
func (ms *MemStore) List() ([]string, error) {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	ids := make([]string, 0, len(ms.m))
	for id := range ms.m {
		ids = append(ids, id)
	}
	return ids, nil
}

// Len reports how many snapshots are stored (tests and stats).
func (ms *MemStore) Len() int {
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	return len(ms.m)
}

// snapExt is DirStore's snapshot file extension.
const snapExt = ".session"

// DirStore persists snapshots as one file per session in a shared
// directory — the simplest store separate replica processes can share
// (speakql-server's -session-store flag). Writes are temp-file + rename so
// a reader never sees a torn snapshot; ids are escaped into filenames so a
// hostile session id cannot traverse out of the directory.
type DirStore struct {
	dir string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, errors.New("session: DirStore needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// escapeID maps a session id to a safe filename component (hex-escapes
// everything outside [A-Za-z0-9._-], and "." / ".." cannot result).
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-' || c == '_':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02x", c)
		}
	}
	if b.Len() == 0 {
		return "%empty"
	}
	return b.String()
}

func (ds *DirStore) path(id string) string {
	return filepath.Join(ds.dir, escapeID(id)+snapExt)
}

// Save implements Store (temp + rename, never a torn read).
func (ds *DirStore) Save(snap *Snapshot) error {
	raw, err := snap.Encode()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(ds.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("session: store save: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("session: store save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("session: store save: %w", err)
	}
	if err := os.Rename(name, ds.path(snap.ID)); err != nil {
		os.Remove(name)
		return fmt.Errorf("session: store save: %w", err)
	}
	return nil
}

// Load implements Store.
func (ds *DirStore) Load(id string) (*Snapshot, bool, error) {
	raw, err := os.ReadFile(ds.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("session: store load: %w", err)
	}
	snap, err := DecodeSnapshot(raw)
	if err != nil {
		return nil, false, err
	}
	return snap, true, nil
}

// Delete implements Store.
func (ds *DirStore) Delete(id string) error {
	err := os.Remove(ds.path(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("session: store delete: %w", err)
	}
	return nil
}

// List implements Store (ids are unescaped back from filenames only as far
// as the store needs — the escaped form round-trips through path()).
func (ds *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(ds.dir)
	if err != nil {
		return nil, fmt.Errorf("session: store list: %w", err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapExt) {
			continue
		}
		ids = append(ids, unescapeID(strings.TrimSuffix(name, snapExt)))
	}
	return ids, nil
}

// unescapeID reverses escapeID.
func unescapeID(s string) string {
	if s == "%empty" {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			var c int
			if _, err := fmt.Sscanf(s[i+1:i+3], "%02x", &c); err == nil {
				b.WriteByte(byte(c))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
