package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Bucket mapping must be monotone and self-consistent: every value lands in
// a bucket whose range contains it.
func TestHistogramBucketRoundTrip(t *testing.T) {
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 1000, 999999, 1 << 20, 1<<40 + 12345, 1<<62 + 7}
	for _, v := range vals {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if up := bucketUpper(idx); v > up {
			t.Errorf("value %d above its bucket upper bound %d (idx %d)", v, up, idx)
		}
		if idx > 0 {
			if prevUp := bucketUpper(idx - 1); v <= prevUp {
				t.Errorf("value %d not above previous bucket's upper bound %d (idx %d)", v, prevUp, idx)
			}
		}
	}
	// Monotone across a sweep.
	last := -1
	for v := int64(0); v < 1<<16; v += 13 {
		idx := bucketIndex(v)
		if idx < last {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, last)
		}
		last = idx
	}
}

// Quantiles of a known distribution come back within one sub-bucket of the
// exact answer (the histogram's documented error bound).
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~1µs..100ms, the serving tier's real range.
		v := int64(1000 * (1 + rng.Float64()*100000))
		vals[i] = v
		h.Observe(time.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(q*float64(n))-1]
		got := int64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: reported %d below exact %d (quantiles must be conservative)", q, got, exact)
		}
		// One sub-bucket of slack: <= exact * (1 + 2/16) generously.
		if float64(got) > float64(exact)*1.15 {
			t.Errorf("q=%v: reported %d overshoots exact %d by more than a sub-bucket", q, got, exact)
		}
	}
	if h.Count() != int64(n) {
		t.Errorf("Count = %d, want %d", h.Count(), n)
	}
	if h.Max() != time.Duration(vals[n-1]) {
		t.Errorf("Max = %v, want %v", h.Max(), time.Duration(vals[n-1]))
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as all zeros")
	}
	h.Observe(-5 * time.Second) // clamps to 0
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Errorf("negative observation should clamp to zero: count=%d q1=%v", h.Count(), h.Quantile(1))
	}
}

// Concurrent observers never lose counts (the histogram is all atomics).
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("lost observations: %d != %d", h.Count(), workers*per)
	}
	s := h.Summary()
	if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not ordered: %+v", s)
	}
}

// Merge is exact with respect to the bucketing: folding N per-replica
// histograms into one must produce bucket-for-bucket the histogram a single
// observer of the union stream would hold, so the merged quantiles (the
// router's fleet-wide view) keep the documented ≤6.25% per-value error
// bound against the exact union quantiles.
func TestHistogramMergeQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const replicas = 3
	parts := make([]*Histogram, replicas)
	var union Histogram
	var all []int64
	for p := range parts {
		parts[p] = &Histogram{}
		// Each "replica" sees a different latency regime: fast, mid, tail-heavy.
		base := int64(1000) << (4 * uint(p))
		for i := 0; i < 5000; i++ {
			v := base + int64(rng.Float64()*float64(base)*50)
			parts[p].Observe(time.Duration(v))
			union.Observe(time.Duration(v))
			all = append(all, v)
		}
	}
	var merged Histogram
	for _, p := range parts {
		merged.Merge(p)
	}
	// Bucket-exactness: merged == union on every aggregate the quantile walk
	// reads.
	if merged.Count() != union.Count() {
		t.Fatalf("merged count %d != union count %d", merged.Count(), union.Count())
	}
	if merged.Max() != union.Max() {
		t.Fatalf("merged max %v != union max %v", merged.Max(), union.Max())
	}
	if merged.Mean() != union.Mean() {
		t.Fatalf("merged mean %v != union mean %v", merged.Mean(), union.Mean())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if mq, uq := merged.Quantile(q), union.Quantile(q); mq != uq {
			t.Errorf("q=%v: merged %v != union %v (merge must be bucket-exact)", q, mq, uq)
		}
		exact := all[int(q*float64(len(all)))-1]
		got := int64(merged.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: merged %d below exact %d (must stay conservative)", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/16)+1 {
			t.Errorf("q=%v: merged %d overshoots exact %d past the sub-bucket bound", q, got, exact)
		}
	}
	// Merging nil and merging an empty histogram are no-ops.
	before := merged.Count()
	merged.Merge(nil)
	merged.Merge(&Histogram{})
	if merged.Count() != before {
		t.Errorf("nil/empty merge changed count: %d -> %d", before, merged.Count())
	}
}

// Span recording feeds the per-stage histogram: the snapshot's quantiles are
// ordered and bounded by the max.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		sp := r.StartSpan("q.stage")
		time.Sleep(50 * time.Microsecond)
		sp.End()
	}
	st := r.Snapshot().Stages["q.stage"]
	if st.Count != 100 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.P50 <= 0 || st.P50 > st.P90 || st.P90 > st.P99 || st.P99 > st.Max {
		t.Errorf("snapshot quantiles malformed: %+v", st)
	}
}

func TestReadRuntime(t *testing.T) {
	rs := ReadRuntime()
	if rs.Goroutines == 0 {
		t.Error("Goroutines = 0; the test itself is one")
	}
	if rs.HeapInuseBytes == 0 {
		t.Error("HeapInuseBytes = 0")
	}
	if rs.GCPauseP50 > rs.GCPauseP99 || rs.GCPauseP99 > rs.GCPauseMax {
		t.Errorf("GC pause quantiles not ordered: %+v", rs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xfffff) * time.Nanosecond)
	}
}
