package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanAggregation(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("stage.a")
	time.Sleep(time.Millisecond)
	sp.End()
	r.StartSpan("stage.a").End()

	snap := r.Snapshot()
	st := snap.Stages["stage.a"]
	if st.Count != 2 {
		t.Fatalf("count = %d, want 2", st.Count)
	}
	if st.Total <= 0 || st.Max <= 0 || st.Max > st.Total {
		t.Errorf("total=%v max=%v inconsistent", st.Total, st.Max)
	}
	if st.Mean() > st.Max {
		t.Errorf("mean %v > max %v", st.Mean(), st.Max)
	}
}

func TestCounters(t *testing.T) {
	r := NewRegistry()
	r.Add("nodes", 3)
	r.Add("nodes", 4)
	r.Add("zero", 0) // no-op: must not materialize a counter
	snap := r.Snapshot()
	if snap.Counters["nodes"] != 7 {
		t.Errorf("nodes = %d, want 7", snap.Counters["nodes"])
	}
	if _, ok := snap.Counters["zero"]; ok {
		t.Error("zero-delta add created a counter")
	}
}

func TestZeroSpanEndIsNoop(t *testing.T) {
	var sp Span
	sp.End() // must not panic
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("s").End()
	r.Add("c", 1)
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Stages) != 0 || len(snap.Counters) != 0 {
		t.Errorf("after reset: %+v", snap)
	}
}

// captureSink records events for sink-delivery assertions.
type captureSink struct {
	mu     sync.Mutex
	spans  int
	counts int64
}

func (c *captureSink) Span(string, time.Duration) {
	c.mu.Lock()
	c.spans++
	c.mu.Unlock()
}

func (c *captureSink) Count(_ string, d int64) {
	c.mu.Lock()
	c.counts += d
	c.mu.Unlock()
}

func TestSinkReceivesEvents(t *testing.T) {
	r := NewRegistry()
	sink := &captureSink{}
	r.SetSink(sink)
	r.StartSpan("s").End()
	r.Add("c", 5)
	r.SetSink(nil)
	r.StartSpan("s").End() // must not reach the removed sink
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.spans != 1 || sink.counts != 5 {
		t.Errorf("sink saw spans=%d counts=%d", sink.spans, sink.counts)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.StartSpan("hot").End()
				r.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Stages["hot"].Count != 1600 || snap.Counters["n"] != 1600 {
		t.Errorf("lost updates: %+v", snap)
	}
}

func TestStageNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.StartSpan("b").End()
	r.StartSpan("a").End()
	names := r.Snapshot().StageNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestCountersWithPrefix(t *testing.T) {
	r := NewRegistry()
	r.Add("literal.vote_calls", 2)
	r.Add("literal.bk_nodes", 9)
	r.Add("search.nodes_visited", 5)
	got := r.Snapshot().CountersWithPrefix("literal.")
	if len(got) != 2 || got["literal.vote_calls"] != 2 || got["literal.bk_nodes"] != 9 {
		t.Errorf("CountersWithPrefix(literal.) = %v", got)
	}
	if len(r.Snapshot().CountersWithPrefix("nosuch.")) != 0 {
		t.Error("unmatched prefix returned counters")
	}
}
