package obs

// runtime.go surfaces the Go runtime's own health signals — heap residency,
// GC pause distribution, goroutine count — through the same observability
// layer the pipeline stages use, so GET /api/stats can serve one "runtime"
// block next to the latency histograms. Everything is read through
// runtime/metrics (no stop-the-world ReadMemStats on the serving path).

import (
	"runtime/metrics"
	"time"
)

// Names of the runtime/metrics samples ReadRuntime takes. Kept as a fixed
// set so the sample slice is built once per call with no discovery pass.
const (
	metricHeapObjects = "/memory/classes/heap/objects:bytes"
	metricHeapFree    = "/memory/classes/heap/free:bytes"
	metricGoroutines  = "/sched/goroutines:goroutines"
	metricGCCycles    = "/gc/cycles/total:gc-cycles"
	metricGCPauses    = "/sched/pauses/total/gc:seconds"
)

// RuntimeStats is a point-in-time view of the Go runtime: how much heap the
// process actually holds, how hard the collector is pausing it, and how many
// goroutines are live. GCPauseP50/P99/Max summarize the runtime's own
// cumulative pause histogram (since process start).
type RuntimeStats struct {
	HeapInuseBytes uint64
	HeapFreeBytes  uint64
	Goroutines     uint64
	GCCycles       uint64
	GCPauseP50     time.Duration
	GCPauseP99     time.Duration
	GCPauseMax     time.Duration
}

// ReadRuntime samples the runtime/metrics set backing the /api/stats
// "runtime" block. Unsupported metrics (an older runtime) read as zero
// rather than failing the stats endpoint.
func ReadRuntime() RuntimeStats {
	samples := []metrics.Sample{
		{Name: metricHeapObjects},
		{Name: metricHeapFree},
		{Name: metricGoroutines},
		{Name: metricGCCycles},
		{Name: metricGCPauses},
	}
	metrics.Read(samples)
	var rs RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case metricHeapObjects:
			rs.HeapInuseBytes = sampleUint64(s)
		case metricHeapFree:
			rs.HeapFreeBytes = sampleUint64(s)
		case metricGoroutines:
			rs.Goroutines = sampleUint64(s)
		case metricGCCycles:
			rs.GCCycles = sampleUint64(s)
		case metricGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.GCPauseP50 = float64HistQuantile(h, 0.50)
				rs.GCPauseP99 = float64HistQuantile(h, 0.99)
				rs.GCPauseMax = float64HistMax(h)
			}
		}
	}
	return rs
}

func sampleUint64(s metrics.Sample) uint64 {
	if s.Value.Kind() == metrics.KindUint64 {
		return s.Value.Uint64()
	}
	return 0
}

// float64HistQuantile walks a runtime/metrics histogram (bucket boundaries
// in seconds) and returns the q-th quantile as a duration, reporting each
// bucket by its upper boundary — conservative, matching Histogram.Quantile.
func float64HistQuantile(h *metrics.Float64Histogram, q float64) time.Duration {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			// Buckets has len(Counts)+1 boundaries; bucket i spans
			// [Buckets[i], Buckets[i+1]). The last boundary can be +Inf —
			// fall back to the bucket's lower bound there.
			up := h.Buckets[i+1]
			if up > 1e9 { // +Inf (or absurd): report the lower bound
				up = h.Buckets[i]
			}
			return time.Duration(up * float64(time.Second))
		}
	}
	return 0
}

// float64HistMax returns the upper boundary of the highest non-empty bucket.
func float64HistMax(h *metrics.Float64Histogram) time.Duration {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		up := h.Buckets[i+1]
		if up > 1e9 {
			up = h.Buckets[i]
		}
		return time.Duration(up * float64(time.Second))
	}
	return 0
}
