// Package obs is SpeakQL's lightweight observability layer: per-stage
// latency spans, monotonic counters, and an optional pluggable sink for
// exporting events. The correction pipeline (structure determination,
// literal determination, the HTTP handlers) records into the process-wide
// default registry; GET /api/stats serves its snapshot. With no sink set
// the layer only aggregates — a span costs two clock reads and a few
// atomic adds, cheap enough to stay always-on in the hot path.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sink receives every completed span and counter increment, for exporting
// to an external system (log, OTLP bridge, test capture). Implementations
// must be safe for concurrent use; calls happen on the hot path, so they
// should be fast or hand off asynchronously.
type Sink interface {
	Span(stage string, d time.Duration)
	Count(name string, delta int64)
}

// stageAgg accumulates one stage's spans. All fields are atomics: spans
// from concurrent requests land here without locking. Alongside the
// count/total/max aggregates every span lands in a log-linear histogram, so
// snapshots can answer tail-latency questions (p50/p90/p99) per stage.
type stageAgg struct {
	count atomic.Int64
	nanos atomic.Int64
	max   atomic.Int64
	hist  Histogram
}

func (a *stageAgg) record(d time.Duration) {
	a.count.Add(1)
	a.nanos.Add(int64(d))
	a.hist.Observe(d)
	for {
		cur := a.max.Load()
		if int64(d) <= cur || a.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Registry aggregates spans and counters and forwards them to the sink, if
// any. The zero value is not usable; call NewRegistry.
type Registry struct {
	stages sync.Map // string → *stageAgg
	counts sync.Map // string → *atomic.Int64
	sink   atomic.Value
}

// sinkBox wraps the sink so atomic.Value sees one concrete type.
type sinkBox struct{ s Sink }

// NewRegistry returns an empty registry with no sink.
func NewRegistry() *Registry { return &Registry{} }

// defaultRegistry is the process-wide registry the pipeline records into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// SetSink installs (or, with nil, removes) the registry's export sink.
func (r *Registry) SetSink(s Sink) { r.sink.Store(sinkBox{s}) }

func (r *Registry) loadSink() Sink {
	if b, ok := r.sink.Load().(sinkBox); ok {
		return b.s
	}
	return nil
}

// Span is an in-flight stage timing started by StartSpan.
type Span struct {
	r     *Registry
	stage string
	start time.Time
}

// StartSpan begins timing one stage; call End to record it.
func (r *Registry) StartSpan(stage string) Span {
	return Span{r: r, stage: stage, start: time.Now()}
}

// End records the span's duration. Safe on the zero Span (no-op).
func (sp Span) End() {
	if sp.r == nil {
		return
	}
	d := time.Since(sp.start)
	sp.r.stageFor(sp.stage).record(d)
	if s := sp.r.loadSink(); s != nil {
		s.Span(sp.stage, d)
	}
}

func (r *Registry) stageFor(stage string) *stageAgg {
	if a, ok := r.stages.Load(stage); ok {
		return a.(*stageAgg)
	}
	a, _ := r.stages.LoadOrStore(stage, &stageAgg{})
	return a.(*stageAgg)
}

// Add increments a monotonic counter.
func (r *Registry) Add(name string, delta int64) {
	if delta == 0 {
		return
	}
	c, ok := r.counts.Load(name)
	if !ok {
		c, _ = r.counts.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(delta)
	if s := r.loadSink(); s != nil {
		s.Count(name, delta)
	}
}

// StageStats is one stage's aggregate: how many spans completed, their
// cumulative latency, the worst single span, and the bucketed latency
// quantiles (conservative to one histogram sub-bucket, see Histogram).
type StageStats struct {
	Count int64
	Total time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Mean returns the average span latency (0 when no spans recorded).
func (s StageStats) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

// Snapshot is a point-in-time copy of a registry's aggregates.
type Snapshot struct {
	Stages   map[string]StageStats
	Counters map[string]int64
}

// Snapshot copies the current aggregates. Concurrent recording continues;
// the snapshot is internally consistent per stage, not across stages.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{Stages: map[string]StageStats{}, Counters: map[string]int64{}}
	r.stages.Range(func(k, v any) bool {
		a := v.(*stageAgg)
		snap.Stages[k.(string)] = StageStats{
			Count: a.count.Load(),
			Total: time.Duration(a.nanos.Load()),
			Max:   time.Duration(a.max.Load()),
			P50:   a.hist.Quantile(0.50),
			P90:   a.hist.Quantile(0.90),
			P99:   a.hist.Quantile(0.99),
		}
		return true
	})
	r.counts.Range(func(k, v any) bool {
		snap.Counters[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return snap
}

// CountersWithPrefix returns the snapshot's counters whose names start with
// prefix, as a fresh map (stats endpoints group related counters — e.g.
// every "literal." counter — into one response block).
func (s Snapshot) CountersWithPrefix(prefix string) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range s.Counters {
		if strings.HasPrefix(name, prefix) {
			out[name] = v
		}
	}
	return out
}

// StageNames returns the snapshot's stage names, sorted (stable rendering).
func (s Snapshot) StageNames() []string {
	names := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset drops all aggregates (tests and long-lived servers rolling over).
func (r *Registry) Reset() {
	r.stages.Range(func(k, _ any) bool { r.stages.Delete(k); return true })
	r.counts.Range(func(k, _ any) bool { r.counts.Delete(k); return true })
}

// Package-level shorthands recording into the default registry.

// StartSpan begins a stage timing in the default registry.
func StartSpan(stage string) Span { return defaultRegistry.StartSpan(stage) }

// Add increments a counter in the default registry.
func Add(name string, delta int64) { defaultRegistry.Add(name, delta) }
