package obs

// histogram.go is the latency-distribution half of the observability layer:
// a fixed-size, lock-free, HDR-style log-linear histogram. Mean and max (the
// stageAgg aggregates) cannot answer the question the serving tier is tuned
// against — "what does the p99 request see?" — so every span additionally
// lands in a per-stage Histogram, and GET /api/stats serves per-endpoint
// quantiles from it. cmd/speakql-loadgen reuses the same type client-side so
// server-reported and load-generator-measured distributions are bucketed
// identically.
//
// Bucketing: 2^histSubBits linear sub-buckets per power-of-two octave of
// nanoseconds (the classic HDR layout). Relative error of a reported
// quantile is bounded by one sub-bucket width — under 1/2^histSubBits
// (6.25%) of the value — across the full int64 nanosecond range, and the
// whole histogram is a flat array of atomics: Observe is one bit-scan and
// three atomic adds, no locks, no allocation.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// histSubBits is the log2 of the linear sub-buckets per octave: 16
	// sub-buckets, bounding quantile error to <6.25% of the value.
	histSubBits = 4
	histSubMask = 1<<histSubBits - 1
	// histBuckets covers the identity range [0, 16) plus 60 octaves of 16
	// sub-buckets — every non-negative int64 nanosecond value has a bucket.
	histBuckets = (64-histSubBits)<<histSubBits + 1<<histSubBits
)

// Histogram is a fixed-size log-linear latency histogram, safe for
// concurrent use. The zero value is ready to observe into; it never
// allocates after that.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket: identity
// below 2^histSubBits, then (octave, sub-bucket) above.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 1<<histSubBits {
		return int(u)
	}
	exp := uint(bits.Len64(u) - 1) // floor(log2), >= histSubBits
	sub := uint((u >> (exp - histSubBits)) & histSubMask)
	return int((exp-histSubBits+1)<<histSubBits | sub)
}

// bucketUpper is the inclusive upper bound of bucket idx — the value
// Quantile reports, so quantiles are conservative (never under-reported).
func bucketUpper(idx int) int64 {
	if idx < 1<<histSubBits {
		return int64(idx)
	}
	exp := uint(idx>>histSubBits) + histSubBits - 1
	sub := uint64(idx & histSubMask)
	lower := uint64(1)<<exp | sub<<(exp-histSubBits)
	return int64(lower + 1<<(exp-histSubBits) - 1)
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns the q-th quantile (q in [0, 1]) as the upper bound of
// the bucket holding that rank — conservative to within one sub-bucket
// width. Returns 0 on an empty histogram. Concurrent Observes are fine; the
// walk sees a monotone-consistent view.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// rank is 1-based: the ceil(q*total)-th smallest observation.
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			up := bucketUpper(i)
			// Never report past the true max (the last bucket's upper bound
			// can far exceed it).
			if m := h.max.Load(); up > m {
				up = m
			}
			return time.Duration(up)
		}
	}
	return h.Max()
}

// Merge folds other's observations into h bucket by bucket. Because both
// histograms share the same fixed bucketing, a merge is exact: h afterwards
// holds precisely the counts a single histogram would hold had it observed
// both streams, so fleet-wide quantiles computed after Merge carry the same
// ≤6.25% per-value error bound as any single histogram
// (TestHistogramMergeQuantileError). Safe under concurrent Observe on
// either side — the result is some monotone-consistent interleaving —
// though a point-in-time fleet view should merge quiescent snapshots.
// The router uses this to aggregate its per-replica latency histograms into
// the fleet-wide view its "router" stats block serves.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	v := other.max.Load()
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// QuantileSummary is the fixed quantile set /api/stats and the loadgen
// report both serve.
type QuantileSummary struct {
	Count int64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summary snapshots the standard quantile set in one walk-per-quantile
// pass (cheap: the histogram is a flat array).
func (h *Histogram) Summary() QuantileSummary {
	return QuantileSummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
		Mean:  h.Mean(),
	}
}
