package registry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"speakql/internal/literal"
)

// Tenant file format ("SPQLTN", version 2 — the version is shared with the
// embedded catalog blob's persist-v2 encoding):
//
//	magic "SPQLTN" | version byte | id length uvarint | id bytes | catalog blob
//
// The embedded ID lets a load cross-check that a file really belongs to
// the tenant it is named for (a mis-renamed or copied file fails loudly
// instead of serving another tenant's schema). Only the catalog persists;
// the engine, sessions, and streams are rebuilt or recreated on demand —
// they are exactly the state the LRU is licensed to throw away.

const (
	tenantMagic   = "SPQLTN"
	tenantVersion = 2
	tenantExt     = ".tenant"
	maxTenantID   = 64
)

// ErrBadTenantID wraps every ValidateID failure, so callers can map the
// whole class (HTTP 400) without matching messages.
var ErrBadTenantID = errors.New("registry: bad tenant id")

// ValidateID accepts 1–64 chars of [a-zA-Z0-9_-]; the ID doubles as a file
// name, so path separators and dots are rejected outright.
func ValidateID(id string) error {
	if len(id) == 0 || len(id) > maxTenantID {
		return fmt.Errorf("%w: must be 1-%d characters", ErrBadTenantID, maxTenantID)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			continue
		}
		return fmt.Errorf("%w: %q may only contain [a-zA-Z0-9_-]", ErrBadTenantID, id)
	}
	return nil
}

// writeTenantFile serializes one tenant (header + catalog blob).
func writeTenantFile(w io.Writer, id string, cat *literal.Catalog) error {
	if _, err := w.Write([]byte(tenantMagic)); err != nil {
		return err
	}
	if _, err := w.Write([]byte{tenantVersion, byte(len(id))}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, id); err != nil {
		return err
	}
	return literal.WriteCatalog(w, cat)
}

// readTenantFile parses a tenant file, returning the embedded ID and
// catalog. Hostile inputs error (the catalog blob is hardened by
// literal.ReadCatalog).
func readTenantFile(r io.Reader) (string, *literal.Catalog, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(tenantMagic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		return "", nil, fmt.Errorf("tenant header: %w", err)
	}
	if string(head[:len(tenantMagic)]) != tenantMagic {
		return "", nil, fmt.Errorf("bad tenant magic %q", head[:len(tenantMagic)])
	}
	if head[len(tenantMagic)] != tenantVersion {
		return "", nil, fmt.Errorf("unsupported tenant file version %d", head[len(tenantMagic)])
	}
	n := int(head[len(tenantMagic)+1])
	if n == 0 || n > maxTenantID {
		return "", nil, fmt.Errorf("tenant id length %d out of range", n)
	}
	idb := make([]byte, n)
	if _, err := io.ReadFull(br, idb); err != nil {
		return "", nil, fmt.Errorf("tenant id: %w", err)
	}
	id := string(idb)
	if err := ValidateID(id); err != nil {
		return "", nil, err
	}
	cat, err := literal.ReadCatalog(br)
	if err != nil {
		return "", nil, err
	}
	return id, cat, nil
}

// persist writes the tenant's catalog to disk atomically (temp file +
// rename), so readers never observe a torn file and a crash mid-write
// leaves the previous version intact. No-op without a tenant dir.
func (r *Registry) persist(t *Tenant) error {
	if r.dir == "" {
		return nil
	}
	f, err := os.CreateTemp(r.dir, "."+t.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("registry: persist %q: %w", t.ID, err)
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	if err := writeTenantFile(bw, t.ID, t.Catalog); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, r.path(t.ID))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("registry: persist %q: %w", t.ID, err)
	}
	return nil
}

// removeStaleTemps clears temp files left by a crash mid-persist; New runs
// it before scanning the tenant dir.
func removeStaleTemps(dir string) {
	matches, _ := filepath.Glob(filepath.Join(dir, ".*.tmp-*"))
	for _, m := range matches {
		os.Remove(m)
	}
}
