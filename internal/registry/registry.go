// Package registry turns the single-schema engine into a multi-tenant
// service: one process-wide shared half — the schema-agnostic skeleton trie
// arenas, searcher pools, and structure-search LRU, frozen once — serves
// every tenant, while each tenant owns only the schema-dependent half: its
// literal catalog with the Metaphone groups and BK-tree arenas.
//
// The split is sound because structure determination's input is the masked
// transcript plus k and nothing else (the grammar corpus is fixed per
// process), so trie search results — and the SearchLRU memoizing them —
// are valid for every tenant; only literal determination consults
// per-tenant state, and a tenant's catalog is frozen at build time
// (incremental updates install a new catalog copy-on-write, see
// literal.ApplyDelta), so a *Tenant handed to a request stays valid for
// that request's lifetime no matter what the registry does next.
//
// Residency is a bounded LRU: tenants beyond MaxLive are evicted — their
// arenas dropped — and lazily rebuilt from their persist-v2 catalog file on
// next use. Loads are deduplicated singleflight-style so a thundering herd
// of requests for a cold tenant builds its catalog exactly once. Every
// Put/Update writes through to disk before the tenant becomes visible, so
// eviction never needs to write and a crash never loses an acknowledged
// catalog. The seed tenant (the process's original database) is pinned: it
// never counts against MaxLive and is never evicted or persisted.
package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"speakql/internal/core"
	"speakql/internal/faultinject"
	"speakql/internal/literal"
	"speakql/internal/obs"
	"speakql/internal/sqlengine"
	"speakql/internal/structure"
)

// Shared is the process-wide, schema-agnostic half of the engine, built
// once and referenced by every tenant's engine.
type Shared struct {
	// Structure is the frozen skeleton-trie component (arenas + searcher
	// pools). Required.
	Structure *structure.Component
	// Cache is the optional structure-search memo shared by all tenants; it
	// must already be installed on Structure (core.Engine.EnableSearchCache
	// does both for the seed engine).
	Cache *core.SearchLRU
	// TopKLiterals is the per-placeholder candidate count for tenant
	// engines (default 5).
	TopKLiterals int
	// LiteralBudget overrides the degradation ladder's soft-budget fraction
	// for tenant engines; 0 keeps core.DefaultLiteralBudget.
	LiteralBudget float64
	// DisableLiteralIndex serves every tenant catalog on the naive voting
	// path (the -literal-index=false ablation toggle).
	DisableLiteralIndex bool
	// Validation configures the execution-guided validation stage for tenant
	// engines (DESIGN.md §15). Non-seed tenants are registered as bare
	// catalogs — table/attribute/value name lists with no rows — so their
	// bind schema is synthesized with sqlengine.NewSchemaDatabase and
	// ValidationExecute is downgraded to ValidationBind: executing against a
	// rowless schema would verdict every candidate empty_result, which
	// demotes correct SQL below nothing but ranks it below genuinely `ok`
	// candidates that cannot exist — strictly worse than binding only. The
	// seed tenant keeps whatever validation its engine was built with (the
	// server wires it against the real database, where execute is
	// meaningful).
	Validation core.ValidationConfig
}

// Tenant is one resident tenant: an engine wired to the shared structure
// component and the tenant's own frozen catalog. Immutable after build —
// in-flight requests holding a *Tenant are unaffected by eviction,
// deletion, or catalog updates (which install a new *Tenant).
type Tenant struct {
	// ID is the tenant identifier (see ValidateID).
	ID string
	// Engine corrects transcripts against this tenant's catalog.
	Engine *core.Engine
	// Catalog is the tenant's literal catalog (also reachable via Engine).
	Catalog *literal.Catalog
}

// Config configures New.
type Config struct {
	// Shared is the schema-agnostic half every tenant engine references.
	Shared Shared
	// MaxLive bounds resident non-seed tenants; past it the least recently
	// used tenant is evicted (requires Dir, so it can be reloaded).
	// <= 0 means unbounded residency.
	MaxLive int
	// Dir is where tenant catalogs persist (created if missing). Empty
	// disables persistence — tenants then live only in memory and eviction
	// is disabled regardless of MaxLive, because evicting without a disk
	// copy would silently destroy the tenant.
	Dir string
}

// ErrUnknownTenant is returned by Acquire and friends for an ID that was
// never Put (or was deleted). The HTTP layer maps it to 404.
var ErrUnknownTenant = errors.New("registry: unknown tenant")

// ErrSeedImmutable is returned for attempts to overwrite, update, or
// delete the pinned seed tenant through the tenant lifecycle.
var ErrSeedImmutable = errors.New("registry: seed tenant is immutable")

// loadCall is one in-flight lazy load; concurrent Acquires for the same
// tenant wait on done instead of re-reading the file (singleflight).
type loadCall struct {
	done chan struct{}
	t    *Tenant
	err  error
}

// liveEntry is one resident tenant in the LRU list.
type liveEntry struct {
	id string
	t  *Tenant
}

// Registry manages tenant lifecycle: bounded residency, write-through
// persistence, lazy loads with dedup, and eviction callbacks. Safe for
// concurrent use.
type Registry struct {
	shared Shared
	dir    string
	max    int

	mu      sync.Mutex
	seed    *Tenant
	order   []*liveEntry          // LRU order, most recent first
	live    map[string]*liveEntry // resident non-seed tenants
	known   map[string]bool       // every undeleted tenant ID (resident or on disk)
	loading map[string]*loadCall

	evictHook func(id string) // called (outside mu) after evict or delete
}

// New builds a registry, creating Dir if needed and indexing the tenant
// files already present so they lazy-load on first use.
func New(cfg Config) (*Registry, error) {
	if cfg.Shared.Structure == nil {
		return nil, errors.New("registry: Shared.Structure is required")
	}
	if cfg.Shared.TopKLiterals <= 0 {
		cfg.Shared.TopKLiterals = 5
	}
	r := &Registry{
		shared:  cfg.Shared,
		dir:     cfg.Dir,
		max:     cfg.MaxLive,
		live:    map[string]*liveEntry{},
		known:   map[string]bool{},
		loading: map[string]*loadCall{},
	}
	if r.dir != "" {
		if err := os.MkdirAll(r.dir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: create tenant dir: %w", err)
		}
		removeStaleTemps(r.dir)
		names, err := os.ReadDir(r.dir)
		if err != nil {
			return nil, fmt.Errorf("registry: scan tenant dir: %w", err)
		}
		for _, de := range names {
			id, ok := strings.CutSuffix(de.Name(), tenantExt)
			if ok && !de.IsDir() && ValidateID(id) == nil {
				r.known[id] = true
			}
		}
	}
	return r, nil
}

// SetSeed pins the process's original engine as the default tenant: never
// evicted, never persisted, immutable through the tenant lifecycle. Call
// before serving.
func (r *Registry) SetSeed(id string, eng *core.Engine, cat *literal.Catalog) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seed = &Tenant{ID: id, Engine: eng, Catalog: cat}
	r.known[id] = true
}

// SetEvictHook installs fn, called with the tenant ID after every eviction
// or deletion — outside the registry lock, so the hook may call back into
// the registry or take its own locks (the HTTP layer closes the tenant's
// session event feeds here). Call before serving.
func (r *Registry) SetEvictHook(fn func(id string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictHook = fn
}

// SeedID returns the pinned seed tenant's ID ("" when none is set).
func (r *Registry) SeedID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seed == nil {
		return ""
	}
	return r.seed.ID
}

// buildTenant assembles the cheap per-tenant half around the shared half.
func (r *Registry) buildTenant(id string, cat *literal.Catalog) *Tenant {
	cat.SetIndexed(!r.shared.DisableLiteralIndex)
	eng := core.NewEngineWithComponent(r.shared.Structure, cat, r.shared.TopKLiterals)
	if r.shared.LiteralBudget != 0 {
		eng.SetLiteralBudgetFraction(r.shared.LiteralBudget)
	}
	if r.shared.Cache != nil {
		eng.AdoptSearchCache(r.shared.Cache)
	}
	if cfg := r.shared.Validation; cfg.Mode != "" && cfg.Mode != core.ValidationOff {
		if cfg.Mode == core.ValidationExecute {
			// Rowless schema DB: execute would verdict everything
			// empty_result. Bind-level validation is the honest maximum.
			cfg.Mode = core.ValidationBind
		}
		eng.SetValidation(cfg, sqlengine.NewSchemaDatabase(id, cat.Tables(), cat.Attributes()))
	}
	return &Tenant{ID: id, Engine: eng, Catalog: cat}
}

// Put registers (or replaces) a tenant with the given catalog, persisting
// it before it becomes visible. Overflowing residents are evicted. The
// returned tenant is resident and most recently used.
func (r *Registry) Put(id string, cat *literal.Catalog) (*Tenant, error) {
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	if r.isSeed(id) {
		return nil, ErrSeedImmutable
	}
	t := r.buildTenant(id, cat)
	if err := r.persist(t); err != nil {
		obs.Add("registry.persist_failures", 1)
		return nil, err
	}
	r.mu.Lock()
	r.known[id] = true
	evicted := r.insertLocked(t)
	hook := r.evictHook
	r.mu.Unlock()
	obs.Add("registry.puts", 1)
	r.notifyEvicted(evicted, hook)
	return t, nil
}

// Acquire returns the tenant, lazily loading it from disk when evicted.
// Concurrent acquires of a cold tenant share one load. The returned tenant
// is immutable; callers may use it for the rest of the request even if it
// is evicted or deleted meanwhile.
//
// With a shared Dir, an id this process has never seen is checked against
// the directory before being rejected: Put persists a catalog before it
// becomes visible, so a file on disk is a tenant some replica registered
// after this one scanned the directory at startup. This is what makes a
// fleet of replicas sharing one -tenant-dir agree on the tenant set without
// any registration broadcast.
func (r *Registry) Acquire(id string) (*Tenant, error) {
	r.mu.Lock()
	if r.seed != nil && id == r.seed.ID {
		t := r.seed
		r.mu.Unlock()
		return t, nil
	}
	if le, ok := r.live[id]; ok {
		r.touchLocked(le)
		t := le.t
		r.mu.Unlock()
		obs.Add("registry.warm_hits", 1)
		return t, nil
	}
	if r.dir == "" {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	if !r.known[id] {
		if ValidateID(id) != nil || !fileExists(r.path(id)) {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
		}
		r.known[id] = true
		obs.Add("registry.dir_discoveries", 1)
	}
	if lc, ok := r.loading[id]; ok {
		r.mu.Unlock()
		obs.Add("registry.load_dedup", 1)
		<-lc.done
		return lc.t, lc.err
	}
	lc := &loadCall{done: make(chan struct{})}
	r.loading[id] = lc
	r.mu.Unlock()

	t, err := r.load(id)

	r.mu.Lock()
	delete(r.loading, id)
	var evicted []*liveEntry
	if !r.known[id] {
		// Deleted while loading: do not resurrect it, and report unknown
		// even if the load itself failed (the delete may have removed the
		// file out from under the open).
		err = fmt.Errorf("%w: %q", ErrUnknownTenant, id)
		t = nil
	} else if err == nil {
		evicted = r.insertLocked(t)
	}
	hook := r.evictHook
	lc.t, lc.err = t, err
	r.mu.Unlock()
	close(lc.done)
	r.notifyEvicted(evicted, hook)
	if err != nil {
		obs.Add("registry.load_failures", 1)
		return nil, err
	}
	obs.Add("registry.cold_loads", 1)
	return t, nil
}

// Update applies an incremental catalog delta: only the touched Metaphone
// groups are re-indexed (literal.ApplyDelta), the result is persisted, and
// a new immutable tenant replaces the old one. Requests holding the old
// tenant keep their pre-update catalog.
func (r *Registry) Update(id string, d literal.CatalogDelta) (*Tenant, literal.UpdateStats, error) {
	if r.isSeed(id) {
		return nil, literal.UpdateStats{}, ErrSeedImmutable
	}
	old, err := r.Acquire(id)
	if err != nil {
		return nil, literal.UpdateStats{}, err
	}
	cat, stats := old.Catalog.ApplyDelta(d)
	t := r.buildTenant(id, cat)
	if err := r.persist(t); err != nil {
		obs.Add("registry.persist_failures", 1)
		return nil, stats, err
	}
	r.mu.Lock()
	evicted := r.insertLocked(t)
	hook := r.evictHook
	r.mu.Unlock()
	obs.Add("registry.updates", 1)
	r.notifyEvicted(evicted, hook)
	return t, stats, nil
}

// Delete removes a tenant: resident state, disk file, and (via the evict
// hook) its sessions' event feeds. Idempotent per ErrUnknownTenant.
func (r *Registry) Delete(id string) error {
	if r.isSeed(id) {
		return ErrSeedImmutable
	}
	r.mu.Lock()
	if !r.known[id] {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	delete(r.known, id)
	if le, ok := r.live[id]; ok {
		delete(r.live, id)
		r.removeOrderLocked(le)
	}
	hook := r.evictHook
	r.mu.Unlock()
	if r.dir != "" {
		if err := os.Remove(r.path(id)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("registry: remove tenant file: %w", err)
		}
	}
	obs.Add("registry.deletes", 1)
	if hook != nil {
		hook(id)
	}
	return nil
}

// load rebuilds one tenant from its persist-v2 file; the registry fault
// stage fires here so chaos tests can rehearse failed lazy loads.
func (r *Registry) load(id string) (*Tenant, error) {
	if err := faultinject.Fire(faultinject.StageRegistry); err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", id, err)
	}
	f, err := os.Open(r.path(id))
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", id, err)
	}
	defer f.Close()
	fileID, cat, err := readTenantFile(f)
	if err != nil {
		return nil, fmt.Errorf("registry: load %q: %w", id, err)
	}
	if fileID != id {
		return nil, fmt.Errorf("registry: tenant file for %q claims id %q", id, fileID)
	}
	return r.buildTenant(id, cat), nil
}

// insertLocked makes t resident (most recently used), replacing any older
// resident build of the same tenant, and returns the entries evicted to
// respect MaxLive. Caller holds mu and must run notifyEvicted afterwards.
func (r *Registry) insertLocked(t *Tenant) []*liveEntry {
	if le, ok := r.live[t.ID]; ok {
		le.t = t
		r.touchLocked(le)
		return nil
	}
	le := &liveEntry{id: t.ID, t: t}
	r.live[t.ID] = le
	r.order = append([]*liveEntry{le}, r.order...)
	if r.max <= 0 || r.dir == "" {
		return nil
	}
	var evicted []*liveEntry
	for len(r.order) > r.max {
		tail := r.order[len(r.order)-1]
		r.order = r.order[:len(r.order)-1]
		delete(r.live, tail.id)
		evicted = append(evicted, tail)
	}
	return evicted
}

// notifyEvicted counts evictions and runs the hook outside the lock. The
// registry fault stage fires per eviction (error faults are counted, never
// block the eviction — there is nothing to roll back: the disk copy was
// written at Put/Update time).
func (r *Registry) notifyEvicted(evicted []*liveEntry, hook func(string)) {
	for _, le := range evicted {
		if err := faultinject.Fire(faultinject.StageRegistry); err != nil {
			obs.Add("registry.evict_faults", 1)
		}
		obs.Add("registry.evictions", 1)
		if hook != nil {
			hook(le.id)
		}
	}
}

func (r *Registry) touchLocked(le *liveEntry) {
	r.removeOrderLocked(le)
	r.order = append([]*liveEntry{le}, r.order...)
}

func (r *Registry) removeOrderLocked(le *liveEntry) {
	for i, e := range r.order {
		if e == le {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

func (r *Registry) isSeed(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seed != nil && id == r.seed.ID
}

func (r *Registry) path(id string) string {
	return filepath.Join(r.dir, id+tenantExt)
}

// fileExists reports whether path names an existing regular file.
func fileExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Mode().IsRegular()
}

// Info describes one tenant for the listing API.
type Info struct {
	// ID is the tenant identifier.
	ID string `json:"id"`
	// Resident reports whether the tenant's arenas are currently in memory.
	Resident bool `json:"resident"`
	// Seed marks the pinned default tenant.
	Seed bool `json:"seed,omitempty"`
}

// List returns every known tenant, seed first, the rest sorted by ID.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.known))
	if r.seed != nil {
		out = append(out, Info{ID: r.seed.ID, Resident: true, Seed: true})
	}
	ids := make([]string, 0, len(r.known))
	for id := range r.known {
		if r.seed != nil && id == r.seed.ID {
			continue
		}
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; listings are small
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		_, resident := r.live[id]
		out = append(out, Info{ID: id, Resident: resident})
	}
	return out
}

// Stats is the registry block of GET /api/stats.
type Stats struct {
	// Resident counts non-seed tenants currently in memory.
	Resident int `json:"resident"`
	// Capacity is the MaxLive bound (0 = unbounded).
	Capacity int `json:"capacity"`
	// Known counts every undeleted tenant, resident or on disk (the seed
	// included once set).
	Known int `json:"known"`
	// Loading counts lazy loads in flight right now.
	Loading int `json:"loading"`
	// Persistent reports whether a tenant dir is configured (without one,
	// eviction is disabled and tenants are memory-only).
	Persistent bool `json:"persistent"`
}

// Stats reports current residency; the monotonic counters live in the obs
// registry under the registry. prefix.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Resident:   len(r.live),
		Capacity:   r.max,
		Known:      len(r.known),
		Loading:    len(r.loading),
		Persistent: r.dir != "",
	}
}
