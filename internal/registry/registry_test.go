package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"speakql/internal/core"
	"speakql/internal/faultinject"
	"speakql/internal/grammar"
	"speakql/internal/literal"
	"speakql/internal/obs"
	"speakql/internal/structure"
)

// sharedComponent is built once per test process: the whole point of the
// shared half is that tenants reuse one frozen trie arena.
var (
	sharedOnce sync.Once
	sharedComp *structure.Component
)

func testComponent(t testing.TB) *structure.Component {
	t.Helper()
	sharedOnce.Do(func() {
		c, err := structure.New(structure.Config{Grammar: grammar.TestScale()})
		if err != nil {
			t.Fatalf("build shared component: %v", err)
		}
		sharedComp = c
	})
	return sharedComp
}

// testCat builds a small distinct catalog per index so tests can tell
// tenants apart by their schemas.
func testCat(i int) *literal.Catalog {
	return literal.NewCatalog(
		[]string{fmt.Sprintf("Table%d", i), "Employees"},
		[]string{"FirstName", fmt.Sprintf("Attr%d", i)},
		[]string{"John", "Jon", fmt.Sprintf("Val%d", i)},
	)
}

func newTestRegistry(t testing.TB, maxLive int) *Registry {
	t.Helper()
	reg, err := New(Config{
		Shared:  Shared{Structure: testComponent(t), TopKLiterals: 5},
		MaxLive: maxLive,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg
}

func counters() map[string]int64 {
	return obs.Default().Snapshot().CountersWithPrefix("registry.")
}

func counterDelta(before, after map[string]int64, name string) int64 {
	return after[name] - before[name]
}

func TestRegistryPutAcquireEvict(t *testing.T) {
	reg := newTestRegistry(t, 2)
	var mu sync.Mutex
	var evicted []string
	reg.SetEvictHook(func(id string) {
		mu.Lock()
		evicted = append(evicted, id)
		mu.Unlock()
	})

	before := counters()
	for i := 0; i < 3; i++ {
		if _, err := reg.Put(fmt.Sprintf("t%d", i), testCat(i)); err != nil {
			t.Fatalf("Put t%d: %v", i, err)
		}
	}
	st := reg.Stats()
	if st.Resident != 2 || st.Known != 3 || st.Capacity != 2 {
		t.Fatalf("stats after overflow = %+v", st)
	}
	mu.Lock()
	if !reflect.DeepEqual(evicted, []string{"t0"}) {
		t.Fatalf("evicted = %v, want [t0]", evicted)
	}
	mu.Unlock()

	// Evicted tenant lazily reloads from disk.
	got, err := reg.Acquire("t0")
	if err != nil {
		t.Fatalf("Acquire evicted tenant: %v", err)
	}
	if !reflect.DeepEqual(got.Catalog.Tables(), testCat(0).Tables()) {
		t.Fatalf("reloaded catalog tables = %v", got.Catalog.Tables())
	}
	if st := reg.Stats(); st.Resident != 2 {
		t.Fatalf("resident after reload = %d, want 2 (LRU bound)", st.Resident)
	}

	// Warm hit keeps it resident and does not touch disk.
	if _, err := reg.Acquire("t0"); err != nil {
		t.Fatalf("warm Acquire: %v", err)
	}
	after := counters()
	if d := counterDelta(before, after, "registry.cold_loads"); d != 1 {
		t.Errorf("cold_loads delta = %d, want 1", d)
	}
	if d := counterDelta(before, after, "registry.warm_hits"); d < 1 {
		t.Errorf("warm_hits delta = %d, want >= 1", d)
	}
	if d := counterDelta(before, after, "registry.evictions"); d != 2 {
		t.Errorf("evictions delta = %d, want 2 (t0 at put, then LRU tail at reload)", d)
	}

	if _, err := reg.Acquire("nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Acquire unknown = %v, want ErrUnknownTenant", err)
	}
}

func TestRegistryNoEvictionWithoutDir(t *testing.T) {
	reg, err := New(Config{
		Shared:  Shared{Structure: testComponent(t), TopKLiterals: 5},
		MaxLive: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := reg.Put(fmt.Sprintf("m%d", i), testCat(i)); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Without a persist dir eviction would destroy tenants, so residency is
	// allowed to exceed MaxLive.
	if st := reg.Stats(); st.Resident != 3 || st.Persistent {
		t.Fatalf("stats = %+v, want 3 resident, not persistent", st)
	}
}

func TestRegistrySeedPinned(t *testing.T) {
	reg := newTestRegistry(t, 1)
	cat := testCat(99)
	eng := core.NewEngineWithComponent(testComponent(t), cat, 5)
	reg.SetSeed("default", eng, cat)

	if _, err := reg.Put("default", testCat(0)); !errors.Is(err, ErrSeedImmutable) {
		t.Fatalf("Put seed = %v, want ErrSeedImmutable", err)
	}
	if err := reg.Delete("default"); !errors.Is(err, ErrSeedImmutable) {
		t.Fatalf("Delete seed = %v, want ErrSeedImmutable", err)
	}
	if _, _, err := reg.Update("default", literal.CatalogDelta{AddValues: []string{"x"}}); !errors.Is(err, ErrSeedImmutable) {
		t.Fatalf("Update seed = %v, want ErrSeedImmutable", err)
	}

	// Churn past capacity: the seed must stay resident throughout.
	for i := 0; i < 4; i++ {
		if _, err := reg.Put(fmt.Sprintf("s%d", i), testCat(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := reg.Acquire("default")
	if err != nil || got.Engine != eng {
		t.Fatalf("seed Acquire = (%v, %v), want pinned engine", got, err)
	}
	if st := reg.Stats(); st.Resident != 1 {
		t.Fatalf("resident = %d, want 1 (seed not counted)", st.Resident)
	}
	list := reg.List()
	if len(list) != 5 || !list[0].Seed || list[0].ID != "default" || !list[0].Resident {
		t.Fatalf("List = %+v", list)
	}
}

func TestRegistryDelete(t *testing.T) {
	reg := newTestRegistry(t, 4)
	if _, err := reg.Put("gone", testCat(1)); err != nil {
		t.Fatal(err)
	}
	path := reg.path("gone")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("tenant file missing after Put: %v", err)
	}
	if err := reg.Delete("gone"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("tenant file survives delete: %v", err)
	}
	if _, err := reg.Acquire("gone"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Acquire deleted = %v", err)
	}
	if err := reg.Delete("gone"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("second Delete = %v", err)
	}
}

func TestRegistryReloadAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	reg1, err := New(Config{Shared: Shared{Structure: testComponent(t), TopKLiterals: 5}, MaxLive: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := testCat(7).WithColumnValues(map[string][]string{"FirstName": {"John", "Joan"}})
	if _, err := reg1.Put("persisted", want); err != nil {
		t.Fatal(err)
	}

	// A fresh registry on the same dir knows the tenant and lazy-loads it.
	reg2, err := New(Config{Shared: Shared{Structure: testComponent(t), TopKLiterals: 5}, MaxLive: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st := reg2.Stats(); st.Known != 1 || st.Resident != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
	got, err := reg2.Acquire("persisted")
	if err != nil {
		t.Fatalf("Acquire after restart: %v", err)
	}
	if !reflect.DeepEqual(got.Catalog.Values(), want.Values()) {
		t.Fatalf("values after restart = %v", got.Catalog.Values())
	}
}

// Two registries sharing one dir model replicas behind the router: a tenant
// registered on one replica after the other started must still be
// acquirable there — Put persists before visibility, and Acquire checks the
// shared dir before rejecting an unknown id.
func TestRegistrySharedDirDiscovery(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Registry {
		reg, err := New(Config{Shared: Shared{Structure: testComponent(t), TopKLiterals: 5}, MaxLive: 4, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return reg
	}
	a, b := mk(), mk() // both scanned an empty dir
	want := testCat(9)
	if _, err := a.Put("late", want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Acquire("late")
	if err != nil {
		t.Fatalf("Acquire of a tenant registered on the other replica: %v", err)
	}
	if !reflect.DeepEqual(got.Catalog.Values(), want.Values()) {
		t.Fatalf("discovered catalog values = %v", got.Catalog.Values())
	}
	// Ids that exist nowhere still miss, and invalid ids never hit the disk.
	if _, err := b.Acquire("never-registered"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown id = %v", err)
	}
	if _, err := b.Acquire("../escape"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("invalid id = %v", err)
	}
}

func TestRegistrySingleflight(t *testing.T) {
	reg := newTestRegistry(t, 4)
	if _, err := reg.Put("hot", testCat(3)); err != nil {
		t.Fatal(err)
	}
	// Force it cold by building a fresh registry over the same dir.
	reg2, err := New(Config{Shared: reg.shared, MaxLive: 4, Dir: reg.dir})
	if err != nil {
		t.Fatal(err)
	}

	// Slow the load path down so the herd really overlaps.
	inj, err := faultinject.Parse("registry:latency=30ms;seed=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	before := counters()
	const herd = 8
	got := make([]*Tenant, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tn, err := reg2.Acquire("hot")
			if err != nil {
				t.Errorf("herd Acquire: %v", err)
				return
			}
			got[i] = tn
		}(i)
	}
	wg.Wait()
	for i := 1; i < herd; i++ {
		if got[i] != got[0] {
			t.Fatalf("herd member %d got a different tenant build", i)
		}
	}
	after := counters()
	if d := counterDelta(before, after, "registry.cold_loads"); d != 1 {
		t.Errorf("cold_loads delta = %d, want exactly 1 (singleflight)", d)
	}
	if d := counterDelta(before, after, "registry.load_dedup"); d < 1 {
		t.Errorf("load_dedup delta = %d, want >= 1", d)
	}
}

func TestRegistryDeleteDuringLoad(t *testing.T) {
	reg := newTestRegistry(t, 4)
	if _, err := reg.Put("victim", testCat(5)); err != nil {
		t.Fatal(err)
	}
	reg2, err := New(Config{Shared: reg.shared, MaxLive: 4, Dir: reg.dir})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.Parse("registry:latency=60ms;seed=1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	errc := make(chan error, 1)
	go func() {
		_, err := reg2.Acquire("victim")
		errc <- err
	}()
	time.Sleep(15 * time.Millisecond) // let the load enter its injected latency
	if err := reg2.Delete("victim"); err != nil {
		t.Fatalf("Delete during load: %v", err)
	}
	select {
	case err := <-errc:
		// A delete racing the load must not resurrect the tenant: the load
		// either lost (unknown) or won just before the delete; in both cases
		// the tenant must not be resident afterwards.
		if err != nil && !errors.Is(err, ErrUnknownTenant) {
			t.Fatalf("Acquire during delete = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("load never completed")
	}
	if st := reg2.Stats(); st.Known != 0 {
		t.Fatalf("tenant still known after delete: %+v", st)
	}
	if _, err := reg2.Acquire("victim"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Acquire after delete = %v", err)
	}
}

func TestRegistryLoadFaultInjection(t *testing.T) {
	reg := newTestRegistry(t, 4)
	if _, err := reg.Put("flaky", testCat(2)); err != nil {
		t.Fatal(err)
	}
	reg2, err := New(Config{Shared: reg.shared, MaxLive: 4, Dir: reg.dir})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faultinject.Parse("registry:error@1;seed=3")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	if _, err := reg2.Acquire("flaky"); err == nil {
		t.Fatal("injected load error not surfaced")
	}
	faultinject.Set(nil)
	// The failure is transient: the next acquire retries and succeeds.
	if _, err := reg2.Acquire("flaky"); err != nil {
		t.Fatalf("Acquire after fault cleared: %v", err)
	}
}

func TestRegistryUpdateIsIncrementalAndCopyOnWrite(t *testing.T) {
	reg := newTestRegistry(t, 4)
	old, err := reg.Put("inc", testCat(0))
	if err != nil {
		t.Fatal(err)
	}
	updated, stats, err := reg.Update("inc", literal.CatalogDelta{AddValues: []string{"Phoenix"}})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if stats.Added != 1 || stats.Encoded != 1 {
		t.Fatalf("stats = %+v, want 1 added, 1 encoded (incremental)", stats)
	}
	if got := updated.Catalog.Values(); len(got) != len(old.Catalog.Values())+1 {
		t.Fatalf("values after update = %v", got)
	}
	// Requests holding the pre-update tenant keep their frozen catalog.
	for _, v := range old.Catalog.Values() {
		if v == "Phoenix" {
			t.Fatal("update mutated the old tenant's catalog")
		}
	}
	// The update persisted: a cold reload sees the new value.
	reg2, err := New(Config{Shared: reg.shared, MaxLive: 4, Dir: reg.dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := reg2.Acquire("inc")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Catalog.Values(), updated.Catalog.Values()) {
		t.Fatalf("reloaded values = %v, want %v", got.Catalog.Values(), updated.Catalog.Values())
	}
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "tenant-1", "A_Z-09", "x"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v", ok, err)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "a/b", "..", "a.tenant", "white space", string(long), "Ünicode"} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted", bad)
		}
	}
}

func TestTenantFileHostileInput(t *testing.T) {
	var valid bytes.Buffer
	if err := writeTenantFile(&valid, "good", testCat(1)); err != nil {
		t.Fatal(err)
	}
	vb := valid.Bytes()

	id, _, err := readTenantFile(bytes.NewReader(vb))
	if err != nil || id != "good" {
		t.Fatalf("round trip = (%q, %v)", id, err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOTATENANT__"),
		"bad version": append([]byte(tenantMagic), 0x63, 0x01, 'a'),
		"zero id":     append([]byte(tenantMagic), tenantVersion, 0x00),
		"bad id char": append([]byte(tenantMagic), tenantVersion, 0x01, '/'),
	}
	for i := 1; i < len(vb); i += 9 {
		cases[fmt.Sprintf("truncated@%d", i)] = vb[:i]
	}
	for name, data := range cases {
		if _, _, err := readTenantFile(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: hostile tenant file accepted", name)
		}
	}
}

func TestRegistryLoadRejectsMismatchedID(t *testing.T) {
	reg := newTestRegistry(t, 4)
	if _, err := reg.Put("alpha", testCat(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate an operator copying alpha's file over beta's name.
	data, err := os.ReadFile(reg.path("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(reg.dir, "beta"+tenantExt), data, 0o644); err != nil {
		t.Fatal(err)
	}
	reg2, err := New(Config{Shared: reg.shared, MaxLive: 4, Dir: reg.dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg2.Acquire("beta"); err == nil {
		t.Fatal("mis-named tenant file served another tenant's schema")
	}
}

// TestSingleTenantDifferential is the acceptance gate for the refactor: a
// tenant served through the registry (shared component + per-tenant
// catalog, including a full evict/reload cycle through the persist file)
// must produce corrections bit-identical to the pre-refactor monolithic
// engine — same candidates, same rankings, same degradation ladder.
func TestSingleTenantDifferential(t *testing.T) {
	mkCat := func() *literal.Catalog {
		return literal.NewCatalog(
			[]string{"Employees", "Salaries", "Titles", "DepartmentEmployee"},
			[]string{"FirstName", "LastName", "Salary", "Gender", "HireDate",
				"FromDate", "ToDate", "Title", "EmployeeNumber", "DepartmentNumber"},
			[]string{"John", "Jon", "Karsten", "Engineer", "M", "F", "d002"},
		).WithColumnValues(map[string][]string{
			"FirstName": {"John", "Jon", "Karsten"},
			"Gender":    {"M", "F"},
		})
	}
	// The pre-refactor shape: one engine owning everything.
	mono, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: mkCat(), TopKLiterals: 5})
	if err != nil {
		t.Fatal(err)
	}
	// The refactored shape: shared component + registry tenant.
	reg := newTestRegistry(t, 1)
	tenant, err := reg.Put("diff", mkCat())
	if err != nil {
		t.Fatal(err)
	}

	transcripts := []string{
		"select sales from employers wear name equals Jon",
		"select salary from employees",
		"select first name from employees where gender equals M",
		"select title from titles where first name equals Karsten",
		"select star from employees",
		"show me the salaries table",
		"",
		"blah blah blah",
		"select gender from employees where department number equals d002",
		"select hire date from employees where last name equals john",
	}
	compare := func(t *testing.T, label string, eng *core.Engine) {
		t.Helper()
		for _, tr := range transcripts {
			want := mono.CorrectTopK(tr, 3)
			got := eng.CorrectTopK(tr, 3)
			if want.Degradation != got.Degradation {
				t.Fatalf("%s: %q degradation %q != %q", label, tr, got.Degradation, want.Degradation)
			}
			if len(want.Candidates) != len(got.Candidates) {
				t.Fatalf("%s: %q candidate count %d != %d", label, tr, len(got.Candidates), len(want.Candidates))
			}
			for i := range want.Candidates {
				w, g := want.Candidates[i], got.Candidates[i]
				if w.SQL != g.SQL || !reflect.DeepEqual(w.Tokens, g.Tokens) ||
					!reflect.DeepEqual(w.Structure, g.Structure) ||
					w.StructureDistance != g.StructureDistance {
					t.Fatalf("%s: %q candidate %d diverged:\n  mono: %q %v\n  reg:  %q %v",
						label, tr, i, w.SQL, w.Structure, g.SQL, g.Structure)
				}
			}
		}
		// The degradation ladder must agree too: a pre-expired deadline sheds
		// identically on both shapes.
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		want := mono.CorrectContext(ctx, transcripts[0])
		got := eng.CorrectContext(ctx, transcripts[0])
		if want.Degradation != got.Degradation || len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("%s: expired-deadline ladder diverged: %q/%d vs %q/%d",
				label, got.Degradation, len(got.Candidates), want.Degradation, len(want.Candidates))
		}
	}
	compare(t, "fresh", tenant.Engine)

	// Round-trip the tenant through eviction: put another tenant into the
	// size-1 LRU, then reload "diff" from its persist file.
	if _, err := reg.Put("other", testCat(1)); err != nil {
		t.Fatal(err)
	}
	reloaded, err := reg.Acquire("diff")
	if err != nil {
		t.Fatal(err)
	}
	if reloaded == tenant {
		t.Fatal("expected a reload, got the original resident tenant")
	}
	compare(t, "reloaded", reloaded.Engine)
}

func TestTenantValidationDowngradesExecuteToBind(t *testing.T) {
	reg, err := New(Config{
		Shared: Shared{
			Structure:  testComponent(t),
			Validation: core.ValidationConfig{Mode: core.ValidationExecute},
		},
		Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tenant, err := reg.Put("bindonly", testCat(0))
	if err != nil {
		t.Fatal(err)
	}
	// Non-seed tenants are bare catalogs: no rows to execute against, so
	// execute-mode validation must degrade to bind-mode rather than verdict
	// every candidate empty_result.
	if mode := tenant.Engine.ValidationMode(); mode != core.ValidationBind {
		t.Fatalf("tenant validation mode = %q, want bind", mode)
	}
	out := tenant.Engine.CorrectTopK("select first name from employees", 3)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Validation != string(core.ValidationBind) {
		t.Fatalf("Output.Validation = %q, want bind (degradation %q)", out.Validation, out.Degradation)
	}
	for i, c := range out.Candidates {
		if c.Verdict == "" {
			t.Fatalf("candidate %d unverdicted: %+v", i, c)
		}
		if c.Verdict == "empty_result" {
			t.Fatalf("bind-mode tenant produced an execution verdict: %+v", c)
		}
	}

	// The downgrade survives the evict/reload round trip.
	if _, err := reg.Put("other", testCat(1)); err != nil {
		t.Fatal(err)
	}
	reloaded, err := reg.Acquire("bindonly")
	if err != nil {
		t.Fatal(err)
	}
	if mode := reloaded.Engine.ValidationMode(); mode != core.ValidationBind {
		t.Fatalf("reloaded tenant validation mode = %q, want bind", mode)
	}
}

func TestTenantValidationOffByDefault(t *testing.T) {
	reg := newTestRegistry(t, 0)
	tenant, err := reg.Put("plain", testCat(0))
	if err != nil {
		t.Fatal(err)
	}
	if mode := tenant.Engine.ValidationMode(); mode != core.ValidationOff {
		t.Fatalf("tenant validation mode = %q, want off", mode)
	}
}
