// Package dataset builds the synthetic databases and query corpora of
// Section 6.1: an Employees-shaped database (mirroring the MySQL Employees
// sample schema), a Yelp-shaped database, the paper's 5-step random query
// generation procedure over any schema, the exact 12-query user-study set of
// Table 6, and WikiSQL-style / Spider-style corpora with natural-language
// annotations for the NLI comparison (Table 5). All generation is seeded
// and deterministic.
package dataset

import (
	"fmt"
	"math/rand"

	"speakql/internal/sqlengine"
)

var firstNames = []string{
	"John", "Jon", "Mary", "James", "Linda", "Robert", "Michael", "David",
	"Susan", "Karen", "Lisa", "Nancy", "Karsten", "Tomokazu", "Goh",
	"Narain", "Perla", "Shimshon", "Anna", "Peter", "Paul", "Mark",
	"George", "Kenneth", "Steven", "Edward", "Brian", "Ronald", "Anthony",
	"Kevin", "Jason", "Matthew", "Gary", "Timothy", "Jose", "Larry",
	"Jeffrey", "Frank", "Scott", "Eric", "Stephen", "Andrew", "Raymond",
	"Gregory", "Joshua", "Jerry", "Dennis", "Walter", "Patrick", "Helen",
	"Sandra", "Donna", "Carol", "Ruth", "Sharon", "Michelle", "Laura",
	"Sarah", "Kimberly", "Deborah", "Jessica", "Betty",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Jones", "Brown", "Davis", "Miller",
	"Wilson", "Moore", "Taylor", "Anderson", "Jackson", "White", "Harris",
	"Martin", "Thompson", "Garcia", "Martinez", "Robinson", "Clark",
	"Lewis", "Lee", "Walker", "Hall", "Allen", "Young", "King", "Wright",
	"Green", "Baker", "Adams", "Nelson", "Hill", "Campbell", "Mitchell",
	"Roberts", "Carter", "Phillips", "Evans", "Turner", "Parker",
	"Collins", "Edwards", "Stewart", "Sanchez", "Morris", "Rogers",
	"Reed", "Cook", "Morgan", "Bell", "Murphy", "Bailey", "Rivera",
	"Cooper", "Richardson", "Cox", "Howard", "Ward", "Torres", "Peterson",
	"Gray", "Ramirez", "Watson", "Brooks", "Kelly", "Sanders", "Price",
	"Bennett", "Wood", "Barnes", "Ross", "Henderson", "Coleman",
}

var titles = []string{
	"Engineer", "Senior Engineer", "Staff", "Senior Staff",
	"Assistant Engineer", "Technique Leader", "Manager",
}

var departmentNames = []string{
	"Marketing", "Finance", "Human Resources", "Production",
	"Development", "Quality Management", "Sales", "Research",
	"Customer Service",
}

// EmployeesConfig sizes the Employees database.
type EmployeesConfig struct {
	Employees   int
	Departments int
	Seed        int64
}

// DefaultEmployeesConfig keeps the database large enough for meaningful
// literal domains and execution results but small enough that the whole
// experiment harness runs in seconds.
func DefaultEmployeesConfig() EmployeesConfig {
	return EmployeesConfig{Employees: 1000, Departments: 9, Seed: 1}
}

// NewEmployeesDB generates the Employees-shaped database: the MySQL sample
// schema's six tables with synthetic rows.
func NewEmployeesDB(cfg EmployeesConfig) *sqlengine.Database {
	if cfg.Employees <= 0 {
		cfg = DefaultEmployeesConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := sqlengine.NewDatabase("employees")

	employees := db.CreateTable("Employees",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "BirthDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "FirstName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "LastName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Gender", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "HireDate", Type: sqlengine.DateCol},
	)
	departments := db.CreateTable("Departments",
		sqlengine.Column{Name: "DepartmentNumber", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "DepartmentName", Type: sqlengine.StringCol},
	)
	deptEmp := db.CreateTable("DepartmentEmployee",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "DepartmentNumber", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "FromDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "ToDate", Type: sqlengine.DateCol},
	)
	deptMgr := db.CreateTable("DepartmentManager",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "DepartmentNumber", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "FromDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "ToDate", Type: sqlengine.DateCol},
	)
	titlesT := db.CreateTable("Titles",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Title", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "FromDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "ToDate", Type: sqlengine.DateCol},
	)
	salaries := db.CreateTable("Salaries",
		sqlengine.Column{Name: "EmployeeNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Salary", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "FromDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "ToDate", Type: sqlengine.DateCol},
	)

	for d := 0; d < cfg.Departments && d < len(departmentNames); d++ {
		mustInsert(departments,
			sqlengine.Str(fmt.Sprintf("d%03d", d+1)),
			sqlengine.Str(departmentNames[d]))
	}

	genders := []string{"M", "F"}
	for i := 0; i < cfg.Employees; i++ {
		num := int64(10001 + i)
		birth := randDate(rng, 1952, 1975)
		hire := randDate(rng, 1985, 2000)
		mustInsert(employees,
			sqlengine.Int(num),
			sqlengine.DateVal(birth),
			sqlengine.Str(firstNames[rng.Intn(len(firstNames))]),
			sqlengine.Str(lastNames[rng.Intn(len(lastNames))]),
			sqlengine.Str(genders[rng.Intn(2)]),
			sqlengine.DateVal(hire))

		dept := fmt.Sprintf("d%03d", 1+rng.Intn(cfg.Departments))
		from := randDate(rng, 1986, 2000)
		mustInsert(deptEmp, sqlengine.Int(num), sqlengine.Str(dept),
			sqlengine.DateVal(from), sqlengine.DateVal(randDate(rng, 2001, 2005)))

		mustInsert(titlesT, sqlengine.Int(num),
			sqlengine.Str(titles[rng.Intn(len(titles))]),
			sqlengine.DateVal(from), sqlengine.DateVal(randDate(rng, 2001, 2005)))

		// One to three salary records per employee.
		nSal := 1 + rng.Intn(3)
		for s := 0; s < nSal; s++ {
			mustInsert(salaries, sqlengine.Int(num),
				sqlengine.Int(int64(40000+rng.Intn(90)*1000+rng.Intn(1000))),
				sqlengine.DateVal(randDate(rng, 1986, 2000)),
				sqlengine.DateVal(randDate(rng, 2001, 2005)))
		}

		if rng.Intn(50) == 0 { // sparse managers
			mustInsert(deptMgr, sqlengine.Int(num), sqlengine.Str(dept),
				sqlengine.DateVal(from), sqlengine.DateVal(randDate(rng, 2001, 2005)))
		}
	}
	return db
}

func mustInsert(t *sqlengine.Table, vals ...sqlengine.Value) {
	if err := t.Insert(vals...); err != nil {
		panic(err)
	}
}

func randDate(rng *rand.Rand, loYear, hiYear int) string {
	y := loYear + rng.Intn(hiYear-loYear+1)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
