package dataset

import (
	"bytes"
	"strings"
	"testing"

	"speakql/internal/grammar"
	"speakql/internal/sqlengine"
	"speakql/internal/sqltoken"
)

func TestEmployeesDB(t *testing.T) {
	db := NewEmployeesDB(EmployeesConfig{Employees: 100, Departments: 5, Seed: 1})
	names := db.TableNames()
	want := []string{"Employees", "Departments", "DepartmentEmployee",
		"DepartmentManager", "Titles", "Salaries"}
	if len(names) != len(want) {
		t.Fatalf("tables = %v", names)
	}
	emp, _ := db.Table("Employees")
	if len(emp.Rows) != 100 {
		t.Fatalf("employees rows = %d", len(emp.Rows))
	}
	sal, _ := db.Table("Salaries")
	if len(sal.Rows) < 100 {
		t.Fatalf("salaries rows = %d", len(sal.Rows))
	}
	// Deterministic regeneration.
	db2 := NewEmployeesDB(EmployeesConfig{Employees: 100, Departments: 5, Seed: 1})
	emp2, _ := db2.Table("Employees")
	for i := range emp.Rows {
		for j := range emp.Rows[i] {
			if emp.Rows[i][j].String() != emp2.Rows[i][j].String() {
				t.Fatal("employees generation not deterministic")
			}
		}
	}
	// Queries execute.
	res, err := sqlengine.Run(db, "SELECT AVG ( Salary ) FROM Salaries")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("avg salary: %v %v", res, err)
	}
	res, err = sqlengine.Run(db,
		"SELECT LastName FROM Employees NATURAL JOIN Salaries WHERE Salary > 70000 LIMIT 5")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("join query: %v %v", res, err)
	}
}

func TestYelpDB(t *testing.T) {
	db := NewYelpDB(YelpConfig{Businesses: 50, Users: 50, Reviews: 200, Seed: 2})
	if len(db.TableNames()) != 5 {
		t.Fatalf("tables = %v", db.TableNames())
	}
	res, err := sqlengine.Run(db,
		"SELECT BusinessName FROM Business WHERE Stars > 4 LIMIT 3")
	if err != nil {
		t.Fatalf("business query: %v", err)
	}
	_ = res
	res, err = sqlengine.Run(db,
		"SELECT City , COUNT ( * ) FROM Business GROUP BY City")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("group query: %v %v", res, err)
	}
}

func TestGenerateQueries(t *testing.T) {
	db := NewEmployeesDB(EmployeesConfig{Employees: 50, Departments: 4, Seed: 1})
	qs := GenerateQueries(db, GenConfig{Grammar: grammar.TestScale(), N: 100, Seed: 7})
	if len(qs) != 100 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		// Structure is the masked form of the query tokens.
		masked := sqltoken.MaskGeneric(q.Tokens)
		if strings.Join(masked, " ") != strings.Join(q.Structure, " ") {
			t.Fatalf("structure mismatch:\n  sql: %s\n  masked: %v\n  struct: %v",
				q.SQL, masked, q.Structure)
		}
		if len(q.Spoken) == 0 {
			t.Fatalf("no spoken form for %s", q.SQL)
		}
		// Every query must parse.
		if _, err := sqlengine.Parse(q.SQL); err != nil {
			t.Fatalf("generated query does not parse: %s: %v", q.SQL, err)
		}
	}
	// Determinism.
	qs2 := GenerateQueries(db, GenConfig{Grammar: grammar.TestScale(), N: 100, Seed: 7})
	for i := range qs {
		if qs[i].SQL != qs2[i].SQL {
			t.Fatal("query generation not deterministic")
		}
	}
	// Different seeds differ.
	qs3 := GenerateQueries(db, GenConfig{Grammar: grammar.TestScale(), N: 100, Seed: 8})
	same := 0
	for i := range qs {
		if qs[i].SQL == qs3[i].SQL {
			same++
		}
	}
	if same == len(qs) {
		t.Fatal("different seeds gave identical corpora")
	}
}

func TestGeneratedQueriesMostlyExecute(t *testing.T) {
	// Generated queries bind real schema literals, so the vast majority
	// must execute without error (cross products over unrelated tables are
	// legitimately refused, and a random table pair may share no column).
	db := NewEmployeesDB(EmployeesConfig{Employees: 50, Departments: 4, Seed: 1})
	qs := GenerateQueries(db, GenConfig{Grammar: grammar.TestScale(), N: 200, Seed: 3})
	fail := 0
	for _, q := range qs {
		if _, err := sqlengine.Run(db, q.SQL); err != nil {
			fail++
		}
	}
	if fail > len(qs)/4 {
		t.Errorf("%d/%d generated queries failed to execute", fail, len(qs))
	}
}

func TestUserStudyQueries(t *testing.T) {
	qs := UserStudyQueries()
	if len(qs) != 12 {
		t.Fatalf("got %d study queries", len(qs))
	}
	simple, complex := 0, 0
	for _, q := range qs {
		if q.Complex {
			complex++
		} else {
			simple++
		}
		if _, err := sqlengine.Parse(q.SQL); err != nil {
			t.Errorf("Q%d does not parse: %v", q.ID, err)
		}
		if q.NL == "" {
			t.Errorf("Q%d missing NL", q.ID)
		}
	}
	if simple != 6 || complex != 6 {
		t.Errorf("split = %d simple / %d complex", simple, complex)
	}
	// The paper defines simple as < 20 tokens.
	for _, q := range qs {
		n := len(sqltoken.TokenizeSQL(q.SQL))
		if !q.Complex && n >= 20 {
			t.Errorf("Q%d marked simple but has %d tokens", q.ID, n)
		}
		if q.Complex && n < 20 {
			t.Errorf("Q%d marked complex but has %d tokens", q.ID, n)
		}
	}
}

func TestUserStudyQueriesExecuteOnEmployees(t *testing.T) {
	db := NewEmployeesDB(EmployeesConfig{Employees: 200, Departments: 6, Seed: 1})
	for _, q := range UserStudyQueries() {
		if _, err := sqlengine.Run(db, q.SQL); err != nil {
			t.Errorf("Q%d failed on Employees DB: %v", q.ID, err)
		}
	}
}

func TestWikiSQLCorpus(t *testing.T) {
	c := NewWikiSQLCorpus(100, 5)
	if len(c.Items) != 100 {
		t.Fatalf("items = %d", len(c.Items))
	}
	for _, it := range c.Items {
		if _, err := sqlengine.Run(c.DB, it.SQL); err != nil {
			t.Fatalf("wiki query %q failed: %v", it.SQL, err)
		}
		if !strings.HasSuffix(it.NL, "?") {
			t.Errorf("NL not a question: %q", it.NL)
		}
		if it.Nested {
			t.Errorf("WikiSQL-style item marked nested: %q", it.SQL)
		}
	}
	// The corpus includes the hard punctuated team values somewhere.
	found := false
	for _, it := range c.Items {
		if strings.Contains(it.SQL, "#21/#07") {
			found = true
			break
		}
	}
	if !found {
		t.Log("no #21/#07 value in this draw (acceptable, value-dependent)")
	}
}

func TestSpiderCorpus(t *testing.T) {
	emp := NewEmployeesDB(EmployeesConfig{Employees: 50, Departments: 4, Seed: 1})
	yelp := NewYelpDB(YelpConfig{Businesses: 40, Users: 40, Reviews: 150, Seed: 2})
	c := NewSpiderCorpus(emp, yelp, 100, 9)
	if len(c.Items) != 100 {
		t.Fatalf("items = %d", len(c.Items))
	}
	nested := 0
	for _, it := range c.Items {
		db := c.DatabaseFor(it)
		if _, err := sqlengine.Run(db, it.SQL); err != nil {
			t.Fatalf("spider query %q failed: %v", it.SQL, err)
		}
		if it.Nested {
			nested++
		}
	}
	if nested == 0 {
		t.Error("no nested items generated")
	}
}

func TestQueryCorpusRoundTrip(t *testing.T) {
	db := NewEmployeesDB(EmployeesConfig{Employees: 30, Departments: 3, Seed: 1})
	qs := GenerateQueries(db, GenConfig{Grammar: grammar.TestScale(), N: 25, Seed: 4})
	var buf bytes.Buffer
	if err := WriteQueries(&buf, qs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadQueries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(qs) {
		t.Fatalf("round trip lost items: %d vs %d", len(back), len(qs))
	}
	for i := range qs {
		if back[i].SQL != qs[i].SQL ||
			strings.Join(back[i].Spoken, " ") != strings.Join(qs[i].Spoken, " ") {
			t.Fatalf("item %d mutated in round trip", i)
		}
	}
}

func TestReadQueriesErrors(t *testing.T) {
	if _, err := ReadQueries(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ReadQueries(strings.NewReader(`{"SQL":"","Spoken":[]}` + "\n")); err == nil {
		t.Error("empty item accepted")
	}
	qs, err := ReadQueries(strings.NewReader("\n\n"))
	if err != nil || len(qs) != 0 {
		t.Errorf("blank lines: %v %v", qs, err)
	}
}

func TestHospitalDB(t *testing.T) {
	db := NewHospitalDB(HospitalConfig{Patients: 60, Admissions: 120, Seed: 3})
	if len(db.TableNames()) != 5 {
		t.Fatalf("tables = %v", db.TableNames())
	}
	for _, q := range []string{
		"SELECT COUNT ( * ) FROM Admissions WHERE WardName = 'Cardiology'",
		"SELECT LastName FROM Patients NATURAL JOIN Admissions WHERE WardName = 'Emergency'",
		"SELECT DiagnosisName , COUNT ( * ) FROM Diagnoses GROUP BY DiagnosisName",
		"SELECT AVG ( HeartRate ) FROM Vitals",
	} {
		if _, err := sqlengine.Run(db, q); err != nil {
			t.Errorf("hospital query %q: %v", q, err)
		}
	}
	// Deterministic.
	db2 := NewHospitalDB(HospitalConfig{Patients: 60, Admissions: 120, Seed: 3})
	a, _ := db.Table("Patients")
	b, _ := db2.Table("Patients")
	for i := range a.Rows {
		if a.Rows[i][1].String() != b.Rows[i][1].String() {
			t.Fatal("hospital generation not deterministic")
		}
	}
	// The query-generation procedure applies to this schema too
	// (Section 6.1: "applies to any arbitrary schema").
	qs := GenerateQueries(db, GenConfig{Grammar: grammar.TestScale(), N: 30, Seed: 5})
	if len(qs) != 30 {
		t.Fatalf("generated %d hospital queries", len(qs))
	}
	for _, q := range qs {
		if _, err := sqlengine.Parse(q.SQL); err != nil {
			t.Fatalf("hospital query does not parse: %s", q.SQL)
		}
	}
}
