package dataset

import (
	"math/rand"
	"strings"

	"speakql/internal/sqlengine"
)

// NLQuery is one natural-language/SQL pair, the unit of the WikiSQL-style
// and Spider-style corpora used by the NLI comparison (Table 5).
type NLQuery struct {
	NL     string
	SQL    string
	Table  string // primary table
	Nested bool   // Spider-style one-level nesting (Appendix F.8 / Figure 18)
}

// WikiSQLCorpus is a WikiSQL-style benchmark: single-table queries with at
// most one aggregate and conjunctive equality/inequality conditions, over a
// handful of open-domain tables, with template NL annotations mirroring
// WikiSQL's crowd phrasing.
type WikiSQLCorpus struct {
	DB    *sqlengine.Database
	Items []NLQuery
}

// newWikiDB builds the open-domain single tables the corpus draws from,
// including the long punctuated values ("#21/#07 SS-Green Light Racing")
// that the paper identifies as WikiSQL's ASR pain point.
func newWikiDB(rng *rand.Rand) *sqlengine.Database {
	db := sqlengine.NewDatabase("wiki")

	racing := db.CreateTable("Racing",
		sqlengine.Column{Name: "Driver", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Team", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Points", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Position", Type: sqlengine.IntCol},
	)
	teams := []string{
		"#21/#07 SS-Green Light Racing", "Richard Childress Racing",
		"Hendrick Motorsports", "Joe Gibbs Racing", "Team Penske",
		"Roush Fenway Racing", "Stewart-Haas Racing",
	}
	for i := 0; i < 60; i++ {
		mustInsert(racing,
			sqlengine.Str(firstNames[rng.Intn(len(firstNames))]+" "+lastNames[rng.Intn(len(lastNames))]),
			sqlengine.Str(teams[rng.Intn(len(teams))]),
			sqlengine.Int(int64(rng.Intn(400))),
			sqlengine.Int(int64(1+rng.Intn(40))))
	}

	movies := db.CreateTable("Movies",
		sqlengine.Column{Name: "MovieTitle", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Director", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "ReleaseYear", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Gross", Type: sqlengine.IntCol},
	)
	adjs := []string{"Silent", "Golden", "Broken", "Hidden", "Crimson", "Lost", "Final"}
	nouns := []string{"Empire", "Garden", "Mirror", "River", "Promise", "Horizon", "Signal"}
	for i := 0; i < 60; i++ {
		mustInsert(movies,
			sqlengine.Str("The "+adjs[rng.Intn(len(adjs))]+" "+nouns[rng.Intn(len(nouns))]),
			sqlengine.Str(firstNames[rng.Intn(len(firstNames))]+" "+lastNames[rng.Intn(len(lastNames))]),
			sqlengine.Int(int64(1970+rng.Intn(50))),
			sqlengine.Int(int64(rng.Intn(500)*1000000)))
	}

	cities := db.CreateTable("Cities",
		sqlengine.Column{Name: "CityName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Country", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Population", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "AreaSize", Type: sqlengine.IntCol},
	)
	countries := []string{"France", "Japan", "Brazil", "Canada", "India", "Kenya", "Norway"}
	for i, c := range yelpCities {
		mustInsert(cities,
			sqlengine.Str(c),
			sqlengine.Str(countries[i%len(countries)]),
			sqlengine.Int(int64(100000+rng.Intn(5000000))),
			sqlengine.Int(int64(50+rng.Intn(1000))))
	}

	players := db.CreateTable("Players",
		sqlengine.Column{Name: "PlayerName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Club", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Goals", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Nationality", Type: sqlengine.StringCol},
	)
	clubs := []string{"United", "City", "Rovers", "Athletic", "Wanderers"}
	for i := 0; i < 60; i++ {
		mustInsert(players,
			sqlengine.Str(firstNames[rng.Intn(len(firstNames))]+" "+lastNames[rng.Intn(len(lastNames))]),
			sqlengine.Str(yelpCities[rng.Intn(len(yelpCities))]+" "+clubs[rng.Intn(len(clubs))]),
			sqlengine.Int(int64(rng.Intn(60))),
			sqlengine.Str(countries[rng.Intn(len(countries))]))
	}
	return db
}

var aggNL = map[string]string{
	"AVG": "average", "SUM": "total", "MAX": "maximum", "MIN": "minimum",
}

// NewWikiSQLCorpus generates n WikiSQL-style NL/SQL pairs with their
// backing database.
func NewWikiSQLCorpus(n int, seed int64) WikiSQLCorpus {
	rng := rand.New(rand.NewSource(seed))
	db := newWikiDB(rng)
	tables := db.Tables()
	var items []NLQuery
	for len(items) < n {
		t := tables[rng.Intn(len(tables))]
		item, ok := wikiItem(rng, t)
		if ok {
			items = append(items, item)
		}
	}
	return WikiSQLCorpus{DB: db, Items: items}
}

// wikiItem draws one WikiSQL-shaped query over table t: an optional single
// aggregate, one or two conjunctive conditions.
func wikiItem(rng *rand.Rand, t *sqlengine.Table) (NLQuery, bool) {
	if len(t.Rows) == 0 {
		return NLQuery{}, false
	}
	selCol := t.Cols[rng.Intn(len(t.Cols))]
	agg := ""
	if rng.Intn(3) == 0 {
		if selCol.Type == sqlengine.IntCol || selCol.Type == sqlengine.FloatCol {
			aggs := []string{"AVG", "SUM", "MAX", "MIN", "COUNT"}
			agg = aggs[rng.Intn(len(aggs))]
		} else if rng.Intn(2) == 0 {
			agg = "COUNT"
		}
	}
	nConds := 1
	if rng.Intn(3) == 0 {
		nConds = 2
	}
	type cond struct {
		col sqlengine.Column
		op  string
		val sqlengine.Value
	}
	var conds []cond
	for len(conds) < nConds {
		c := t.Cols[rng.Intn(len(t.Cols))]
		if strings.EqualFold(c.Name, selCol.Name) && nConds == 1 && len(t.Cols) > 1 {
			continue
		}
		row := t.Rows[rng.Intn(len(t.Rows))]
		v := row[t.ColIndex(c.Name)]
		op := "="
		if c.Type == sqlengine.IntCol && rng.Intn(2) == 0 {
			if rng.Intn(2) == 0 {
				op = ">"
			} else {
				op = "<"
			}
		}
		conds = append(conds, cond{c, op, v})
	}

	// SQL.
	var sqlB strings.Builder
	sqlB.WriteString("SELECT ")
	switch {
	case agg != "":
		sqlB.WriteString(agg + " ( " + selCol.Name + " )")
	default:
		sqlB.WriteString(selCol.Name)
	}
	sqlB.WriteString(" FROM " + t.Name + " WHERE ")
	for i, c := range conds {
		if i > 0 {
			sqlB.WriteString(" AND ")
		}
		sqlB.WriteString(c.col.Name + " " + c.op + " " + renderVal(c.val))
	}

	// NL annotation.
	var nlB strings.Builder
	switch {
	case agg == "COUNT":
		nlB.WriteString("How many " + splitWords(selCol.Name) + " entries are there")
	case agg != "":
		nlB.WriteString("What is the " + aggNL[agg] + " " + splitWords(selCol.Name))
	default:
		nlB.WriteString("What is the " + splitWords(selCol.Name))
	}
	for i, c := range conds {
		if i == 0 {
			nlB.WriteString(" when the ")
		} else {
			nlB.WriteString(" and the ")
		}
		nlB.WriteString(splitWords(c.col.Name) + " " + opNL(c.op) + " " + c.val.String())
	}
	nlB.WriteString("?")
	return NLQuery{NL: nlB.String(), SQL: sqlB.String(), Table: t.Name}, true
}

func renderVal(v sqlengine.Value) string {
	switch v.Kind {
	case sqlengine.KindInt, sqlengine.KindFloat:
		return v.String()
	default:
		return "'" + v.S + "'"
	}
}

func opNL(op string) string {
	switch op {
	case ">":
		return "is more than"
	case "<":
		return "is less than"
	default:
		return "is"
	}
}

// splitWords lower-cases a CamelCase identifier into words for NL use.
func splitWords(id string) string {
	var out []string
	var cur strings.Builder
	for i, r := range id {
		if i > 0 && r >= 'A' && r <= 'Z' {
			out = append(out, strings.ToLower(cur.String()))
			cur.Reset()
		}
		cur.WriteRune(r)
	}
	out = append(out, strings.ToLower(cur.String()))
	return strings.Join(out, " ")
}
