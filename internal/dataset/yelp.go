package dataset

import (
	"fmt"
	"math/rand"

	"speakql/internal/sqlengine"
)

var businessAdjectives = []string{
	"Golden", "Royal", "Happy", "Lucky", "Fresh", "Spicy", "Sweet",
	"Corner", "Garden", "Sunset", "Downtown", "Old", "Blue", "Red",
}

var businessNouns = []string{
	"Pizza", "Coffee", "Sushi", "Burger", "Taco", "Grill", "Cafe",
	"Bar", "Bakery", "Deli", "Kitchen", "House", "Diner", "Noodle",
}

var yelpCities = []string{
	"Phoenix", "Las Vegas", "Toronto", "Cleveland", "Pittsburgh",
	"Charlotte", "Madison", "Champaign", "Scottsdale", "Tempe",
}

var yelpStates = []string{"AZ", "NV", "ON", "OH", "PA", "NC", "WI", "IL"}

var yelpCategories = []string{
	"Restaurants", "Nightlife", "Shopping", "Food", "Bars",
	"Coffee and Tea", "Breakfast", "Mexican", "Italian", "Chinese",
}

// YelpConfig sizes the Yelp database.
type YelpConfig struct {
	Businesses int
	Users      int
	Reviews    int
	Seed       int64
}

// DefaultYelpConfig mirrors DefaultEmployeesConfig's scale.
func DefaultYelpConfig() YelpConfig {
	return YelpConfig{Businesses: 400, Users: 400, Reviews: 1500, Seed: 2}
}

// NewYelpDB generates the Yelp-shaped database: Business, User, Review,
// Checkin, and Tip tables with the Yelp dataset's attribute vocabulary.
func NewYelpDB(cfg YelpConfig) *sqlengine.Database {
	if cfg.Businesses <= 0 {
		cfg = DefaultYelpConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := sqlengine.NewDatabase("yelp")

	business := db.CreateTable("Business",
		sqlengine.Column{Name: "BusinessId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "BusinessName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "City", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "State", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "Stars", Type: sqlengine.FloatCol},
		sqlengine.Column{Name: "ReviewCount", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Category", Type: sqlengine.StringCol},
	)
	users := db.CreateTable("YelpUser",
		sqlengine.Column{Name: "UserId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "UserName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "FanCount", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "YelpingSince", Type: sqlengine.DateCol},
	)
	review := db.CreateTable("Review",
		sqlengine.Column{Name: "ReviewId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "BusinessId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "UserId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "ReviewStars", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "ReviewDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "UsefulVotes", Type: sqlengine.IntCol},
	)
	checkin := db.CreateTable("Checkin",
		sqlengine.Column{Name: "BusinessId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "CheckinDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "CheckinCount", Type: sqlengine.IntCol},
	)
	tip := db.CreateTable("Tip",
		sqlengine.Column{Name: "BusinessId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "UserId", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "TipDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "ComplimentCount", Type: sqlengine.IntCol},
	)

	for i := 0; i < cfg.Businesses; i++ {
		name := businessAdjectives[rng.Intn(len(businessAdjectives))] + " " +
			businessNouns[rng.Intn(len(businessNouns))]
		if rng.Intn(4) == 0 {
			name = fmt.Sprintf("%s %d", name, 1+rng.Intn(99))
		}
		mustInsert(business,
			sqlengine.Int(int64(100+i)),
			sqlengine.Str(name),
			sqlengine.Str(yelpCities[rng.Intn(len(yelpCities))]),
			sqlengine.Str(yelpStates[rng.Intn(len(yelpStates))]),
			sqlengine.Float(float64(rng.Intn(9)+2)/2.0),
			sqlengine.Int(int64(rng.Intn(2000))),
			sqlengine.Str(yelpCategories[rng.Intn(len(yelpCategories))]))
		mustInsert(checkin,
			sqlengine.Int(int64(100+i)),
			sqlengine.DateVal(randDate(rng, 2010, 2018)),
			sqlengine.Int(int64(rng.Intn(500))))
	}
	for i := 0; i < cfg.Users; i++ {
		mustInsert(users,
			sqlengine.Int(int64(5000+i)),
			sqlengine.Str(firstNames[rng.Intn(len(firstNames))]),
			sqlengine.Int(int64(rng.Intn(300))),
			sqlengine.DateVal(randDate(rng, 2006, 2017)))
	}
	for i := 0; i < cfg.Reviews; i++ {
		bid := int64(100 + rng.Intn(cfg.Businesses))
		uid := int64(5000 + rng.Intn(cfg.Users))
		mustInsert(review,
			sqlengine.Int(int64(90000+i)),
			sqlengine.Int(bid),
			sqlengine.Int(uid),
			sqlengine.Int(int64(1+rng.Intn(5))),
			sqlengine.DateVal(randDate(rng, 2010, 2018)),
			sqlengine.Int(int64(rng.Intn(100))))
		if rng.Intn(3) == 0 {
			mustInsert(tip,
				sqlengine.Int(bid),
				sqlengine.Int(uid),
				sqlengine.DateVal(randDate(rng, 2010, 2018)),
				sqlengine.Int(int64(rng.Intn(20))))
		}
	}
	return db
}
