package dataset

import (
	"math/rand"
	"strconv"
	"strings"

	"speakql/internal/grammar"
	"speakql/internal/speech"
	"speakql/internal/sqlengine"
	"speakql/internal/sqltoken"
)

// SpokenQuery is one generated dataset item: the ground-truth SQL, its
// token multiset (for the accuracy metrics), its ground-truth structure,
// and the spoken word sequence a Polly-style synthesizer produces for it.
type SpokenQuery struct {
	SQL       string
	Tokens    []string
	Structure []string // generic-masked ground truth structure
	Spoken    []string
	// Schema names the database the query was generated against; set by
	// multi-schema corpora (speakql-datagen -schemas) so a multi-tenant
	// harness can route each query to its tenant. Empty in single-schema
	// corpora, keeping their files byte-identical to earlier releases.
	Schema string `json:",omitempty"`
}

// GenConfig configures query generation (Section 6.1, steps 2–5).
type GenConfig struct {
	Grammar grammar.GenConfig
	N       int
	Seed    int64
}

// GenerateQueries runs the paper's dataset-generation procedure over db:
// draw a random structure from the grammar, type its placeholders, then bind
// tables first, attributes second (from the bound tables' columns), and
// attribute values last (from the bound attribute's actual column), exactly
// the binding order of Section 6.1 step 4.
func GenerateQueries(db *sqlengine.Database, cfg GenConfig) []SpokenQuery {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]SpokenQuery, 0, cfg.N)
	for len(out) < cfg.N {
		structure := grammar.RandomStructure(rng, cfg.Grammar)
		sqlToks, ok := bindStructure(db, rng, structure)
		if !ok {
			continue
		}
		sql := renderSQL(sqlToks)
		// Cycle through the eight synthetic voices, as the paper's corpus
		// cycles Polly's eight US-English speakers.
		voice := speech.VoiceFor(len(out))
		out = append(out, SpokenQuery{
			SQL:       sql,
			Tokens:    sqltoken.TokenizeSQL(sql),
			Structure: structure,
			Spoken:    voice.VerbalizeQuery(sql),
		})
	}
	return out
}

// boundTok is a structure token bound to a literal, remembering whether the
// literal must be quoted when rendered.
type boundTok struct {
	text   string
	quoted bool
}

// bindStructure replaces every placeholder in structure with a literal from
// db. It returns ok=false when the database cannot supply a needed literal
// (e.g. no tables), which the caller treats as "redraw".
func bindStructure(db *sqlengine.Database, rng *rand.Rand, structure []string) ([]boundTok, bool) {
	tables := db.Tables()
	if len(tables) == 0 {
		return nil, false
	}
	out := make([]boundTok, len(structure))
	for i, t := range structure {
		out[i] = boundTok{text: t}
	}

	// Pass 1: bind FROM-clause tables (distinct random tables).
	fromIdx := fromPlaceholders(structure)
	perm := rng.Perm(len(tables))
	var bound []*sqlengine.Table
	for k, idx := range fromIdx {
		tbl := tables[perm[k%len(perm)]]
		out[idx] = boundTok{text: tbl.Name}
		bound = append(bound, tbl)
	}
	if len(bound) == 0 {
		return nil, false
	}
	colPool := unionCols(bound)
	if len(colPool) == 0 {
		return nil, false
	}

	// Pass 2: walk the structure binding attributes and values in context.
	section := ""
	var lastAttr attrBinding
	i := 0
	n := len(structure)
	fromSet := map[int]bool{}
	for _, idx := range fromIdx {
		fromSet[idx] = true
	}

	bindAttr := func(idx int) attrBinding {
		c := colPool[rng.Intn(len(colPool))]
		out[idx] = boundTok{text: c.col.Name}
		return c
	}
	bindQualified := func(ti, ai int) attrBinding {
		tbl := bound[rng.Intn(len(bound))]
		if len(tbl.Cols) == 0 {
			return attrBinding{}
		}
		col := tbl.Cols[rng.Intn(len(tbl.Cols))]
		out[ti] = boundTok{text: tbl.Name}
		out[ai] = boundTok{text: col.Name}
		return attrBinding{table: tbl, col: col}
	}
	bindValue := func(idx int) {
		text, quoted := drawValue(rng, lastAttr)
		out[idx] = boundTok{text: text, quoted: quoted}
	}

	isLit := func(t string) bool { return sqltoken.Classify(t) == sqltoken.Literal }
	for i < n {
		tok := strings.ToUpper(structure[i])
		switch tok {
		case "SELECT", "FROM", "WHERE":
			section = tok
			i++
		case "GROUP", "ORDER":
			i += 2 // skip BY
			if i < n && isLit(structure[i]) {
				if i+2 < n && structure[i+1] == "." && isLit(structure[i+2]) {
					bindQualified(i, i+2)
					i += 3
				} else {
					bindAttr(i)
					i++
				}
			}
		case "LIMIT":
			i++
			if i < n && isLit(structure[i]) {
				out[i] = boundTok{text: strconv.Itoa(1 + rng.Intn(100))}
				i++
			}
		case "BETWEEN":
			i++
			if i < n && isLit(structure[i]) {
				bindValue(i)
				i++
			}
			if i < n && strings.ToUpper(structure[i]) == "AND" {
				i++
			}
			if i < n && isLit(structure[i]) {
				bindValue(i)
				i++
			}
		case "IN":
			i++
			for i < n && structure[i] != ")" {
				if isLit(structure[i]) {
					bindValue(i)
				}
				i++
			}
		default:
			if !isLit(structure[i]) {
				i++
				continue
			}
			if fromSet[i] {
				i++
				continue
			}
			switch section {
			case "WHERE":
				// Left side (attr or qualified), operator, right side.
				if i+2 < n && structure[i+1] == "." && isLit(structure[i+2]) {
					lastAttr = bindQualified(i, i+2)
					i += 3
				} else {
					lastAttr = bindAttr(i)
					i++
				}
				if i < n {
					switch structure[i] {
					case "=", "<", ">":
						i++
						if i < n && isLit(structure[i]) {
							if i+2 < n && structure[i+1] == "." && isLit(structure[i+2]) {
								bindQualified(i, i+2)
								i += 3
							} else {
								bindValue(i)
								i++
							}
						}
					}
				}
			default: // SELECT list and anything else
				if i+2 < n && structure[i+1] == "." && isLit(structure[i+2]) {
					bindQualified(i, i+2)
					i += 3
				} else {
					bindAttr(i)
					i++
				}
			}
		}
	}
	return out, true
}

type attrBinding struct {
	table *sqlengine.Table
	col   sqlengine.Column
}

// fromPlaceholders returns the structure indices of FROM-clause table
// placeholders.
func fromPlaceholders(structure []string) []int {
	var idx []int
	in := false
	for i, t := range structure {
		up := strings.ToUpper(t)
		switch up {
		case "FROM":
			in = true
			continue
		case "WHERE", "GROUP", "ORDER", "LIMIT":
			in = false
		}
		if in && sqltoken.Classify(t) == sqltoken.Literal {
			idx = append(idx, i)
		}
	}
	return idx
}

func unionCols(tables []*sqlengine.Table) []attrBinding {
	var out []attrBinding
	seen := map[string]bool{}
	for _, t := range tables {
		for _, c := range t.Cols {
			if seen[strings.ToLower(c.Name)] {
				continue
			}
			seen[strings.ToLower(c.Name)] = true
			out = append(out, attrBinding{table: t, col: c})
		}
	}
	return out
}

// drawValue samples an attribute value from the bound attribute's column
// (a real database instance value, per the procedure), falling back to a
// literal constant when the column is empty.
func drawValue(rng *rand.Rand, a attrBinding) (text string, quoted bool) {
	if a.table == nil || len(a.table.Rows) == 0 {
		return strconv.Itoa(1 + rng.Intn(1000)), false
	}
	ci := a.table.ColIndex(a.col.Name)
	if ci < 0 {
		return strconv.Itoa(1 + rng.Intn(1000)), false
	}
	v := a.table.Rows[rng.Intn(len(a.table.Rows))][ci]
	switch v.Kind {
	case sqlengine.KindInt, sqlengine.KindFloat:
		return v.String(), false
	default:
		return v.String(), true
	}
}

// renderSQL renders bound tokens as the ground-truth SQL string in the
// paper's spaced style.
func renderSQL(toks []boundTok) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		if t.quoted {
			parts[i] = "'" + t.text + "'"
		} else {
			parts[i] = t.text
		}
	}
	return strings.Join(parts, " ")
}

// Corpus bundles the paper's dataset splits: 750 Employees training
// queries, 500 Employees test queries, 500 Yelp test queries.
type Corpus struct {
	EmployeesTrain []SpokenQuery
	EmployeesTest  []SpokenQuery
	YelpTest       []SpokenQuery
}

// CorpusConfig scales corpus generation.
type CorpusConfig struct {
	Grammar       grammar.GenConfig
	TrainN, TestN int
	YelpN         int
	Seed          int64
}

// DefaultCorpusConfig reproduces the paper's split sizes (750/500/500) at
// the harness's default grammar scale.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Grammar: grammar.DefaultScale(),
		TrainN:  750,
		TestN:   500,
		YelpN:   500,
		Seed:    42,
	}
}

// NewCorpus generates the full spoken-SQL corpus over the given databases.
func NewCorpus(empDB, yelpDB *sqlengine.Database, cfg CorpusConfig) Corpus {
	return Corpus{
		EmployeesTrain: GenerateQueries(empDB, GenConfig{Grammar: cfg.Grammar, N: cfg.TrainN, Seed: cfg.Seed}),
		EmployeesTest:  GenerateQueries(empDB, GenConfig{Grammar: cfg.Grammar, N: cfg.TestN, Seed: cfg.Seed + 1}),
		YelpTest:       GenerateQueries(yelpDB, GenConfig{Grammar: cfg.Grammar, N: cfg.YelpN, Seed: cfg.Seed + 2}),
	}
}
