package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteQueries streams a query corpus as JSON lines (the public-dataset
// format cmd/speakql-datagen emits, mirroring the paper's released spoken-
// SQL dataset).
func WriteQueries(w io.Writer, qs []SpokenQuery) error {
	enc := json.NewEncoder(w)
	for i, q := range qs {
		if err := enc.Encode(q); err != nil {
			return fmt.Errorf("dataset: write item %d: %w", i, err)
		}
	}
	return nil
}

// ReadQueries loads a JSON-lines corpus written by WriteQueries. Items are
// validated minimally: SQL and a non-empty spoken form must be present.
func ReadQueries(r io.Reader) ([]SpokenQuery, error) {
	var out []SpokenQuery
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var q SpokenQuery
		if err := json.Unmarshal(raw, &q); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if q.SQL == "" || len(q.Spoken) == 0 {
			return nil, fmt.Errorf("dataset: line %d: missing SQL or spoken form", line)
		}
		out = append(out, q)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return out, nil
}
