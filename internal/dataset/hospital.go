package dataset

import (
	"fmt"
	"math/rand"

	"speakql/internal/sqlengine"
)

// The paper's interview study motivates SpeakQL with read-mostly data
// consumers such as nurse informaticists querying on the move. The hospital
// schema gives that user story a concrete database: patients, admissions,
// diagnoses, medications, and vitals, with identifier-style codes (room
// "W3-12", ICD-like "J45.1") that exercise the unbounded-vocabulary path.

var diagnosisNames = []string{
	"Asthma", "Pneumonia", "Hypertension", "Diabetes", "Fracture",
	"Migraine", "Appendicitis", "Bronchitis", "Anemia", "Influenza",
}

var diagnosisCodes = []string{
	"J45.1", "J18.9", "I10", "E11.9", "S52.5",
	"G43.0", "K35.8", "J40", "D64.9", "J11.1",
}

var medicationNames = []string{
	"Amoxicillin", "Ibuprofen", "Metformin", "Lisinopril", "Albuterol",
	"Paracetamol", "Omeprazole", "Atorvastatin", "Salbutamol", "Insulin",
}

var wardNames = []string{
	"Cardiology", "Pediatrics", "Oncology", "Emergency", "Surgery",
	"Maternity", "Neurology",
}

// HospitalConfig sizes the hospital database.
type HospitalConfig struct {
	Patients   int
	Admissions int
	Seed       int64
}

// DefaultHospitalConfig mirrors the other schemas' scale.
func DefaultHospitalConfig() HospitalConfig {
	return HospitalConfig{Patients: 400, Admissions: 900, Seed: 3}
}

// NewHospitalDB generates the hospital-shaped database.
func NewHospitalDB(cfg HospitalConfig) *sqlengine.Database {
	if cfg.Patients <= 0 {
		cfg = DefaultHospitalConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := sqlengine.NewDatabase("hospital")

	patients := db.CreateTable("Patients",
		sqlengine.Column{Name: "PatientNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "FirstName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "LastName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "BirthDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "BloodType", Type: sqlengine.StringCol},
	)
	admissions := db.CreateTable("Admissions",
		sqlengine.Column{Name: "AdmissionNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "PatientNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "WardName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "RoomCode", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "AdmitDate", Type: sqlengine.DateCol},
		sqlengine.Column{Name: "DischargeDate", Type: sqlengine.DateCol},
	)
	diagnoses := db.CreateTable("Diagnoses",
		sqlengine.Column{Name: "AdmissionNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "DiagnosisCode", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "DiagnosisName", Type: sqlengine.StringCol},
	)
	medications := db.CreateTable("Medications",
		sqlengine.Column{Name: "AdmissionNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "MedicationName", Type: sqlengine.StringCol},
		sqlengine.Column{Name: "DoseMilligrams", Type: sqlengine.IntCol},
	)
	vitals := db.CreateTable("Vitals",
		sqlengine.Column{Name: "AdmissionNumber", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "HeartRate", Type: sqlengine.IntCol},
		sqlengine.Column{Name: "Temperature", Type: sqlengine.FloatCol},
		sqlengine.Column{Name: "MeasuredDate", Type: sqlengine.DateCol},
	)

	bloodTypes := []string{"A+", "A-", "B+", "B-", "AB+", "AB-", "O+", "O-"}
	for i := 0; i < cfg.Patients; i++ {
		mustInsert(patients,
			sqlengine.Int(int64(70001+i)),
			sqlengine.Str(firstNames[rng.Intn(len(firstNames))]),
			sqlengine.Str(lastNames[rng.Intn(len(lastNames))]),
			sqlengine.DateVal(randDate(rng, 1935, 2015)),
			sqlengine.Str(bloodTypes[rng.Intn(len(bloodTypes))]))
	}
	for i := 0; i < cfg.Admissions; i++ {
		adm := int64(500001 + i)
		pat := int64(70001 + rng.Intn(cfg.Patients))
		admit := randDate(rng, 2015, 2019)
		mustInsert(admissions,
			sqlengine.Int(adm),
			sqlengine.Int(pat),
			sqlengine.Str(wardNames[rng.Intn(len(wardNames))]),
			sqlengine.Str(fmt.Sprintf("W%d-%02d", 1+rng.Intn(6), 1+rng.Intn(40))),
			sqlengine.DateVal(admit),
			sqlengine.DateVal(randDate(rng, 2019, 2020)))
		d := rng.Intn(len(diagnosisNames))
		mustInsert(diagnoses,
			sqlengine.Int(adm),
			sqlengine.Str(diagnosisCodes[d]),
			sqlengine.Str(diagnosisNames[d]))
		if rng.Intn(3) > 0 {
			mustInsert(medications,
				sqlengine.Int(adm),
				sqlengine.Str(medicationNames[rng.Intn(len(medicationNames))]),
				sqlengine.Int(int64(50*(1+rng.Intn(20)))))
		}
		mustInsert(vitals,
			sqlengine.Int(adm),
			sqlengine.Int(int64(55+rng.Intn(70))),
			sqlengine.Float(35.5+rng.Float64()*4),
			sqlengine.DateVal(admit))
	}
	return db
}
