package dataset

// multischema.go generates families of distinct database schemas for
// multi-tenant experiments: N databases cycling over the three base shapes
// (Employees, Yelp, Hospital) with per-index scale and seed variation, each
// uniquely named, so a tenant-per-schema registry can be exercised with a
// corpus whose queries carry their schema's name.

import (
	"fmt"

	"speakql/internal/sqlengine"
)

// Schemas generates n deterministic databases for multi-tenant runs: index
// i cycles over the Employees/Yelp/Hospital shapes with sizes and seeds
// varied per index, and each database is renamed "<shape>_<i>" (zero
// padded) so schema names double as tenant IDs. The same (n, seed) always
// yields the same databases.
func Schemas(n int, seed int64) []*sqlengine.Database {
	if n <= 0 {
		return nil
	}
	out := make([]*sqlengine.Database, 0, n)
	for i := 0; i < n; i++ {
		// A large odd stride keeps per-index seeds distinct even when the
		// caller's seeds are consecutive.
		s := seed + int64(i)*1_000_003
		var db *sqlengine.Database
		switch i % 3 {
		case 0:
			db = NewEmployeesDB(EmployeesConfig{
				Employees:   120 + 40*(i%5),
				Departments: 4 + i%4,
				Seed:        s,
			})
		case 1:
			db = NewYelpDB(YelpConfig{
				Businesses: 80 + 30*(i%5),
				Users:      80 + 20*(i%4),
				Reviews:    200 + 60*(i%5),
				Seed:       s,
			})
		default:
			db = NewHospitalDB(HospitalConfig{
				Patients:   90 + 30*(i%5),
				Admissions: 180 + 50*(i%4),
				Seed:       s,
			})
		}
		db.Name = fmt.Sprintf("%s_%03d", db.Name, i)
		out = append(out, db)
	}
	return out
}
