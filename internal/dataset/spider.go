package dataset

import (
	"math/rand"
	"strconv"
	"strings"

	"speakql/internal/sqlengine"
)

// SpiderCorpus is a Spider-style benchmark: cross-domain queries with
// joins, GROUP BY, ORDER BY/LIMIT, and one-level nesting, over the
// Employees and Yelp schemas, annotated with template NL. The Spider task
// does not require generating condition values, which the exact-match
// scorer (internal/nli) honours.
type SpiderCorpus struct {
	Employees *sqlengine.Database
	Yelp      *sqlengine.Database
	Items     []NLQuery
}

// NewSpiderCorpus generates n Spider-style NL/SQL pairs over the two
// databases; roughly a fifth of the items use one-level nesting.
func NewSpiderCorpus(empDB, yelpDB *sqlengine.Database, n int, seed int64) SpiderCorpus {
	rng := rand.New(rand.NewSource(seed))
	c := SpiderCorpus{Employees: empDB, Yelp: yelpDB}
	for len(c.Items) < n {
		db := empDB
		if rng.Intn(2) == 0 {
			db = yelpDB
		}
		var item NLQuery
		var ok bool
		switch rng.Intn(5) {
		case 0:
			item, ok = spiderJoin(rng, db)
		case 1:
			item, ok = spiderGroup(rng, db)
		case 2:
			item, ok = spiderOrder(rng, db)
		case 3:
			item, ok = spiderNested(rng, db)
		default:
			item, ok = spiderSimple(rng, db)
		}
		if ok {
			c.Items = append(c.Items, item)
		}
	}
	return c
}

// DatabaseFor returns the database an item's primary table belongs to.
func (c SpiderCorpus) DatabaseFor(item NLQuery) *sqlengine.Database {
	if _, ok := c.Employees.Table(item.Table); ok {
		return c.Employees
	}
	return c.Yelp
}

func pickTable(rng *rand.Rand, db *sqlengine.Database) *sqlengine.Table {
	ts := db.Tables()
	return ts[rng.Intn(len(ts))]
}

func pickCol(rng *rand.Rand, t *sqlengine.Table, want func(sqlengine.Column) bool) (sqlengine.Column, bool) {
	perm := rng.Perm(len(t.Cols))
	for _, i := range perm {
		if want == nil || want(t.Cols[i]) {
			return t.Cols[i], true
		}
	}
	return sqlengine.Column{}, false
}

func numericCol(c sqlengine.Column) bool {
	return c.Type == sqlengine.IntCol || c.Type == sqlengine.FloatCol
}

func stringCol(c sqlengine.Column) bool { return c.Type == sqlengine.StringCol }

func colValue(rng *rand.Rand, t *sqlengine.Table, c sqlengine.Column) (sqlengine.Value, bool) {
	if len(t.Rows) == 0 {
		return sqlengine.Null(), false
	}
	i := t.ColIndex(c.Name)
	return t.Rows[rng.Intn(len(t.Rows))][i], true
}

// sharedColumn finds a column name two tables share (the natural-join key).
func sharedColumn(a, b *sqlengine.Table) (string, bool) {
	for _, ca := range a.Cols {
		for _, cb := range b.Cols {
			if strings.EqualFold(ca.Name, cb.Name) {
				return ca.Name, true
			}
		}
	}
	return "", false
}

func spiderSimple(rng *rand.Rand, db *sqlengine.Database) (NLQuery, bool) {
	t := pickTable(rng, db)
	sel, _ := pickCol(rng, t, nil)
	cond, ok := pickCol(rng, t, stringCol)
	if !ok {
		return NLQuery{}, false
	}
	v, ok := colValue(rng, t, cond)
	if !ok {
		return NLQuery{}, false
	}
	sql := "SELECT " + sel.Name + " FROM " + t.Name + " WHERE " + cond.Name + " = " + renderVal(v)
	nl := "Show the " + splitWords(sel.Name) + " of " + splitWords(t.Name) +
		" whose " + splitWords(cond.Name) + " is " + v.String() + "."
	return NLQuery{NL: nl, SQL: sql, Table: t.Name}, true
}

func spiderJoin(rng *rand.Rand, db *sqlengine.Database) (NLQuery, bool) {
	ts := db.Tables()
	a := ts[rng.Intn(len(ts))]
	b := ts[rng.Intn(len(ts))]
	if a == b {
		return NLQuery{}, false
	}
	if _, ok := sharedColumn(a, b); !ok {
		return NLQuery{}, false
	}
	sel, _ := pickCol(rng, a, nil)
	cond, ok := pickCol(rng, b, numericCol)
	if !ok {
		return NLQuery{}, false
	}
	v, ok := colValue(rng, b, cond)
	if !ok {
		return NLQuery{}, false
	}
	sql := "SELECT " + sel.Name + " FROM " + a.Name + " NATURAL JOIN " + b.Name +
		" WHERE " + cond.Name + " > " + renderVal(v)
	nl := "Find the " + splitWords(sel.Name) + " of " + splitWords(a.Name) +
		" together with their " + splitWords(b.Name) + " where the " +
		splitWords(cond.Name) + " is more than " + v.String() + "."
	return NLQuery{NL: nl, SQL: sql, Table: a.Name}, true
}

func spiderGroup(rng *rand.Rand, db *sqlengine.Database) (NLQuery, bool) {
	t := pickTable(rng, db)
	g, ok := pickCol(rng, t, stringCol)
	if !ok {
		return NLQuery{}, false
	}
	m, ok := pickCol(rng, t, numericCol)
	if !ok {
		return NLQuery{}, false
	}
	aggs := []string{"AVG", "MAX", "MIN", "COUNT", "SUM"}
	agg := aggs[rng.Intn(len(aggs))]
	sql := "SELECT " + g.Name + " , " + agg + " ( " + m.Name + " ) FROM " + t.Name +
		" GROUP BY " + g.Name
	var aggWord string
	if agg == "COUNT" {
		aggWord = "number of"
	} else {
		aggWord = aggNL[agg]
	}
	nl := "For each " + splitWords(g.Name) + ", what is the " + aggWord + " " +
		splitWords(m.Name) + " in " + splitWords(t.Name) + "?"
	return NLQuery{NL: nl, SQL: sql, Table: t.Name}, true
}

func spiderOrder(rng *rand.Rand, db *sqlengine.Database) (NLQuery, bool) {
	t := pickTable(rng, db)
	sel, _ := pickCol(rng, t, nil)
	ord, ok := pickCol(rng, t, numericCol)
	if !ok {
		return NLQuery{}, false
	}
	k := 1 + rng.Intn(10)
	sql := "SELECT " + sel.Name + " FROM " + t.Name + " ORDER BY " + ord.Name +
		" LIMIT " + strconv.Itoa(k)
	nl := "List the " + splitWords(sel.Name) + " of " + splitWords(t.Name) +
		" sorted by " + splitWords(ord.Name) + ", showing only " +
		strconv.Itoa(k) + " rows."
	return NLQuery{NL: nl, SQL: sql, Table: t.Name}, true
}

func spiderNested(rng *rand.Rand, db *sqlengine.Database) (NLQuery, bool) {
	ts := db.Tables()
	a := ts[rng.Intn(len(ts))]
	b := ts[rng.Intn(len(ts))]
	if a == b {
		return NLQuery{}, false
	}
	key, ok := sharedColumn(a, b)
	if !ok {
		return NLQuery{}, false
	}
	sel, _ := pickCol(rng, a, nil)
	cond, ok := pickCol(rng, b, numericCol)
	if !ok {
		return NLQuery{}, false
	}
	v, ok := colValue(rng, b, cond)
	if !ok {
		return NLQuery{}, false
	}
	sql := "SELECT " + sel.Name + " FROM " + a.Name + " WHERE " + key +
		" IN ( SELECT " + key + " FROM " + b.Name + " WHERE " + cond.Name +
		" > " + renderVal(v) + " )"
	nl := "Find the " + splitWords(sel.Name) + " of " + splitWords(a.Name) +
		" whose " + splitWords(key) + " appears among the " + splitWords(b.Name) +
		" with " + splitWords(cond.Name) + " above " + v.String() + "."
	return NLQuery{NL: nl, SQL: sql, Table: a.Name, Nested: true}, true
}
