package dataset

import (
	"bytes"
	"testing"

	"speakql/internal/grammar"
)

func TestSchemasDeterministicAndDistinct(t *testing.T) {
	a := Schemas(7, 11)
	b := Schemas(7, 11)
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("lengths %d, %d, want 7", len(a), len(b))
	}
	names := map[string]bool{}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("schema %d name differs across runs: %q vs %q", i, a[i].Name, b[i].Name)
		}
		if names[a[i].Name] {
			t.Fatalf("duplicate schema name %q", a[i].Name)
		}
		names[a[i].Name] = true
		if len(a[i].Tables()) == 0 {
			t.Fatalf("schema %q has no tables", a[i].Name)
		}
	}
	// Same (n, seed) must yield identical corpora end to end, not just names.
	qa := GenerateQueries(a[3], GenConfig{Grammar: grammar.TestScale(), N: 20, Seed: 11})
	qb := GenerateQueries(b[3], GenConfig{Grammar: grammar.TestScale(), N: 20, Seed: 11})
	var bufA, bufB bytes.Buffer
	if err := WriteQueries(&bufA, qa); err != nil {
		t.Fatal(err)
	}
	if err := WriteQueries(&bufB, qb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("corpora for identical schemas differ")
	}
}

func TestSchemasEdgeCases(t *testing.T) {
	if got := Schemas(0, 1); got != nil {
		t.Fatalf("Schemas(0) = %v, want nil", got)
	}
	if got := Schemas(-3, 1); got != nil {
		t.Fatalf("Schemas(-3) = %v, want nil", got)
	}
	// Different seeds keep the same names (deterministic naming) but may
	// differ in content; at minimum they must still be valid databases.
	x := Schemas(3, 1)
	y := Schemas(3, 999)
	for i := range x {
		if x[i].Name != y[i].Name {
			t.Fatalf("naming depends on seed: %q vs %q", x[i].Name, y[i].Name)
		}
	}
}

func TestSchemaFieldRoundTrips(t *testing.T) {
	dbs := Schemas(2, 5)
	qs := GenerateQueries(dbs[1], GenConfig{Grammar: grammar.TestScale(), N: 5, Seed: 5})
	for i := range qs {
		qs[i].Schema = dbs[1].Name
	}
	var buf bytes.Buffer
	if err := WriteQueries(&buf, qs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQueries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("read %d queries, want %d", len(got), len(qs))
	}
	for i, q := range got {
		if q.Schema != dbs[1].Name {
			t.Fatalf("query %d schema %q, want %q", i, q.Schema, dbs[1].Name)
		}
	}
	// Single-schema corpora must stay byte-identical to earlier releases:
	// an unset Schema field is omitted from the JSON entirely.
	plain := GenerateQueries(dbs[0], GenConfig{Grammar: grammar.TestScale(), N: 1, Seed: 5})
	var pb bytes.Buffer
	if err := WriteQueries(&pb, plain); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(pb.Bytes(), []byte(`"Schema"`)) {
		t.Fatal("unset Schema field leaked into single-schema corpus JSON")
	}
}
