package dataset

// StudyQuery is one user-study task: the natural-language description shown
// to the participant and the ground-truth SQL (Table 6, verbatim).
type StudyQuery struct {
	ID      int
	NL      string
	SQL     string
	Complex bool // queries 7–12; "simple" means fewer than 20 tokens
}

// UserStudyQueries returns the exact 12-query set of Table 6 used in the
// paper's user study (queries 1–6 simple, 7–12 complex).
func UserStudyQueries() []StudyQuery {
	return []StudyQuery{
		{1, "What is the average salary of all employees?",
			"SELECT AVG ( salary ) FROM Salaries", false},
		{2, "Get the lastname of employees with salary more than 70000",
			"SELECT Lastname FROM Employees NATURAL JOIN Salaries WHERE Salary > 70000", false},
		{3, "Get the starting dates of the employees who are working in department number d002",
			"SELECT FromDate FROM DepartmentEmployee WHERE DepartmentNumber = 'd002'", false},
		{4, "Get the starting dates of the department managers with the first name Karsten, sorted by hiring date",
			"SELECT FromDate FROM Employees NATURAL JOIN DepartmentManager WHERE FirstName = 'Karsten' ORDER BY HireDate", false},
		{5, "What is the total salary of all the employees who joined on January 20th 1993?",
			"SELECT SUM ( salary ) FROM Salaries WHERE FromDate = '1993-01-20'", false},
		{6, "What is the ending date and number of salaries for each ending date of the employees?",
			"SELECT ToDate , COUNT ( salary ) FROM Salaries GROUP BY ToDate", false},
		{7, "Fetch the ending date, highest salary, least salary and number of salaries for each ending date of the employees whose joining date is March 20th 1990",
			"SELECT ToDate , MAX ( salary ) , COUNT ( salary ) , MIN ( salary ) FROM Salaries WHERE FromDate = '1990-03-20' GROUP BY ToDate", true},
		{8, "Fetch the joining date, ending date and salary of the employees with first name either Tomokazu or Goh or Narain or Perla or Shimshon",
			"SELECT FromDate , salary , ToDate FROM Employees NATURAL JOIN Salaries WHERE FirstName IN ( 'Tomokazu' , 'Goh' , 'Narain' , 'Perla' , 'Shimshon' )", true},
		{9, "What is the first name and average salary for each first name of the department managers?",
			"SELECT FirstName , AVG ( salary ) FROM Employees , Salaries , DepartmentManager WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = DepartmentManager . EmployeeNumber GROUP BY Employees . FirstName", true},
		{10, "Fetch all fields of the employees whose ending date is October 9th 2001 or whose hiring date is May 10th 1996 or whose title is Engineer. Get only the first 10 records",
			"SELECT * FROM Employees NATURAL JOIN Titles WHERE ToDate = '2001-10-09' OR HireDate = '1996-05-10' OR title = 'Engineer' LIMIT 10", true},
		{11, "What is the gender, average salary, highest salary for each gender type of the employees?",
			"SELECT Gender , AVG ( salary ) , MAX ( salary ) FROM Employees NATURAL JOIN Salaries GROUP BY Employees . Gender", true},
		{12, "Fetch the gender, birth date and salary of the department managers, sorted by the first name",
			"SELECT Gender , BirthDate , salary FROM Employees , Salaries , DepartmentManager WHERE Employees . EmployeeNumber = Salaries . EmployeeNumber AND Employees . EmployeeNumber = DepartmentManager . EmployeeNumber ORDER BY Employees . FirstName", true},
	}
}
