// Package stream is the clause-streaming dictation layer: it wraps the
// engine's FragmentSession in an explicit state machine (idle → streaming →
// finalized / closed) with per-fragment deadline budgets, fault-injection
// hooks, and a bounded, non-blocking event broadcaster that fans each
// fragment's corrected snapshot out to SSE subscribers. The HTTP layer
// (internal/httpapi) exposes it as POST /api/stream/dictate,
// POST /api/stream/finalize and the SSE feed GET /api/stream/events;
// internal/session owns one Dictation per voice session.
//
// The state machine:
//
//	           Dictate                    Finalize
//	 [idle] ──────────────► [streaming] ───────────► [finalized]
//	   │        ▲   │ Dictate                │
//	   │ Close  └───┘                        │ Close
//	   ▼                                     ▼
//	[closed] ◄───────────────────────────────┘
//
// Dictate and Finalize reject closed and finalized dictations with
// ErrClosed / ErrFinalized rather than silently re-opening them; Close is
// idempotent and never blocks on an in-flight correction.
package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"speakql/internal/core"
	"speakql/internal/faultinject"
	"speakql/internal/obs"
)

// State labels a Dictation's position in the streaming lifecycle.
type State string

// Dictation lifecycle states.
const (
	// StateIdle: created, no fragment dictated yet.
	StateIdle State = "idle"
	// StateStreaming: at least one fragment corrected, more may follow.
	StateStreaming State = "streaming"
	// StateFinalized: Finalize ran; the transcript is closed to new
	// fragments but snapshots remain readable.
	StateFinalized State = "finalized"
	// StateClosed: Close ran (session evicted or client gone); every
	// subsequent call fails with ErrClosed.
	StateClosed State = "closed"
)

// Errors returned by Dictation state checks.
var (
	// ErrFinalized rejects fragments dictated after Finalize.
	ErrFinalized = errors.New("stream: dictation already finalized")
	// ErrClosed rejects any use of a closed dictation.
	ErrClosed = errors.New("stream: dictation closed")
)

// Config configures a Dictation.
type Config struct {
	// FragmentBudget is the per-fragment correction deadline. Each Dictate
	// call runs under its own deadline of this length, so one slow fragment
	// degrades (per the engine's ladder) instead of stalling the stream.
	// 0 means no per-fragment deadline. Finalize always runs without a
	// deadline: it is the full-fidelity retry of whatever the budget
	// degraded mid-stream.
	FragmentBudget time.Duration
	// Events, when non-nil, receives one event per fragment, finalize, and
	// close. Publishing never blocks: slow subscribers drop events
	// (stream.events_dropped) rather than wedging the dictation.
	Events *Broadcaster
	// Session labels this dictation's events so one broadcaster can serve
	// multiplexed feeds.
	Session string
}

// Dictation corrects one voice query dictated clause by clause. It is safe
// for concurrent use: Dictate/Finalize serialize on an internal mutex
// (fragments are inherently ordered), while Close and State never wait for
// an in-flight correction.
type Dictation struct {
	cfg    Config
	closed atomic.Bool

	mu        sync.Mutex
	fs        *core.FragmentSession
	finalized bool
	started   bool
	last      core.FragmentOutput
}

// NewDictation starts an idle dictation backed by a fresh engine fragment
// session.
func NewDictation(e *core.Engine, cfg Config) *Dictation {
	return &Dictation{cfg: cfg, fs: e.NewFragmentSession()}
}

// State reports the dictation's current lifecycle state.
func (d *Dictation) State() State {
	if d.closed.Load() {
		return StateClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case d.finalized:
		return StateFinalized
	case d.started:
		return StateStreaming
	default:
		return StateIdle
	}
}

// Snapshot returns the most recent corrected output (the zero value while
// idle). The snapshot stays readable after Finalize and Close.
func (d *Dictation) Snapshot() core.FragmentOutput {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Transcript returns the raw transcript accumulated so far.
func (d *Dictation) Transcript() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fs.Transcript()
}

// Dictate corrects one more fragment of the dictation, running the engine
// under the per-fragment budget. The returned output is the correction of
// the whole accumulated transcript (see core.FragmentSession). Fails with
// ErrFinalized / ErrClosed on a completed dictation and with the injected
// error when the stream fault stage fires.
func (d *Dictation) Dictate(ctx context.Context, fragment string) (core.FragmentOutput, error) {
	if d.closed.Load() {
		return core.FragmentOutput{}, ErrClosed
	}
	if err := faultinject.Fire(faultinject.StageStream); err != nil {
		obs.Add("stream.injected_errors", 1)
		return core.FragmentOutput{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finalized {
		return core.FragmentOutput{}, ErrFinalized
	}
	if d.cfg.FragmentBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.FragmentBudget)
		defer cancel()
	}
	out := d.fs.CorrectFragment(ctx, fragment)
	d.started = true
	d.last = out
	obs.Add("stream.fragments", 1)
	d.publish("fragment", out)
	return out, nil
}

// Finalize closes the transcript and re-corrects it at full fidelity (no
// per-fragment deadline), returning the definitive output — bit-identical
// to a one-shot Correct of the accumulated transcript. Idempotent failure
// semantics: a second Finalize fails with ErrFinalized.
func (d *Dictation) Finalize(ctx context.Context) (core.FragmentOutput, error) {
	if d.closed.Load() {
		return core.FragmentOutput{}, ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finalized {
		return core.FragmentOutput{}, ErrFinalized
	}
	out := d.fs.Finalize(ctx)
	d.finalized = true
	d.last = out
	obs.Add("stream.finalized", 1)
	d.publish("finalized", out)
	return out, nil
}

// Fragments returns a copy of the raw fragments dictated so far — the
// replayable half of a dictation snapshot.
func (d *Dictation) Fragments() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.fs.Fragments()...)
}

// SnapshotState captures the dictation's portable state in one consistent
// read: lifecycle phase, the fragment sequence, and the sequence counter.
// Together with the engine (shared, immutable) this is everything another
// replica needs to resume the stream (see RestoreDictation).
func (d *Dictation) SnapshotState() (phase State, fragments []string, seq int) {
	if d.closed.Load() {
		// Read fragments under the lock anyway; a closed dictation's state is
		// frozen but still snapshot-consistent.
		d.mu.Lock()
		defer d.mu.Unlock()
		return StateClosed, append([]string(nil), d.fs.Fragments()...), d.last.Seq
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	frags := append([]string(nil), d.fs.Fragments()...)
	switch {
	case d.finalized:
		return StateFinalized, frags, d.last.Seq
	case d.started:
		return StateStreaming, frags, d.last.Seq
	default:
		return StateIdle, frags, 0
	}
}

// RestoreDictation rehydrates a dictation from a snapshot taken on another
// replica: the fragments are replayed through a fresh engine fragment
// session and — for a mid-stream snapshot — corrected once, which (by the
// incremental ≡ one-shot bit-identity the fragment pipeline pins) leaves
// exactly the state the original sequence of Dictate calls built. No events
// are published during restore: the handed-off replica's subscribers start
// from the next live fragment. A finalized snapshot restores with the
// finalized flag set and no re-correction (its definitive output already
// left with the snapshot's display tokens); a later Dictate/Finalize fails
// with ErrFinalized exactly as it would have on the original replica.
// The returned FragmentOutput is the zero value unless a mid-stream
// correction ran; its Err reports a failed restore correction (injected
// faults, expired ctx) — the dictation is still usable, and Finalize retries
// at full fidelity.
func RestoreDictation(ctx context.Context, e *core.Engine, cfg Config, phase State, fragments []string) (*Dictation, core.FragmentOutput) {
	d := NewDictation(e, cfg)
	var out core.FragmentOutput
	switch phase {
	case StateStreaming:
		d.mu.Lock()
		out = d.fs.RestoreFragments(ctx, fragments)
		d.started = true
		d.last = out
		d.mu.Unlock()
		obs.Add("stream.restored", 1)
	case StateFinalized:
		d.mu.Lock()
		d.fs.AppendRawFragments(fragments)
		d.started = len(fragments) > 0
		d.finalized = true
		d.mu.Unlock()
		obs.Add("stream.restored", 1)
	case StateClosed:
		d.closed.Store(true)
	}
	return d, out
}

// Close marks the dictation dead. It is idempotent, publishes a terminal
// "closed" event, and deliberately does not take the dictation mutex: a
// sweeper evicting an idle session must never wait behind an in-flight
// correction.
func (d *Dictation) Close() {
	if d.closed.Swap(true) {
		return
	}
	obs.Add("stream.closed", 1)
	if d.cfg.Events != nil {
		d.cfg.Events.Publish(Event{Session: d.cfg.Session, Kind: "closed"})
	}
}

// publish fans one correction out to the broadcaster. Called with d.mu
// held; the broadcaster has its own lock and never blocks.
func (d *Dictation) publish(kind string, out core.FragmentOutput) {
	if d.cfg.Events == nil {
		return
	}
	best := out.Best()
	d.cfg.Events.Publish(Event{
		Session:         d.cfg.Session,
		Kind:            kind,
		Seq:             out.Seq,
		Transcript:      out.RawTranscript,
		SQL:             best.SQL,
		Degradation:     out.Degradation,
		Pending:         out.Pending,
		StablePrefixLen: out.StablePrefixLen,
	})
}
