package stream

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"speakql/internal/core"
	"speakql/internal/faultinject"
	"speakql/internal/grammar"
	"speakql/internal/literal"
)

var (
	testEngine     *core.Engine
	testEngineOnce sync.Once
)

func engine(t testing.TB) *core.Engine {
	t.Helper()
	testEngineOnce.Do(func() {
		cat := literal.NewCatalog(
			[]string{"Employees", "Salaries", "Titles"},
			[]string{"FirstName", "LastName", "Salary", "Gender"},
			[]string{"John", "Jon", "Engineer", "M", "F"},
		)
		e, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		testEngine = e
	})
	return testEngine
}

func TestStateMachine(t *testing.T) {
	ctx := context.Background()
	d := NewDictation(engine(t), Config{})
	if d.State() != StateIdle {
		t.Fatalf("new dictation state = %q", d.State())
	}
	if _, err := d.Dictate(ctx, "select sales from employers"); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateStreaming {
		t.Fatalf("state after dictate = %q", d.State())
	}
	fin, err := d.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != StateFinalized {
		t.Fatalf("state after finalize = %q", d.State())
	}
	if fin.Best().SQL == "" {
		t.Error("finalized dictation has no SQL")
	}
	if _, err := d.Dictate(ctx, "wear name equals Jon"); !errors.Is(err, ErrFinalized) {
		t.Errorf("dictate after finalize: err = %v, want ErrFinalized", err)
	}
	if _, err := d.Finalize(ctx); !errors.Is(err, ErrFinalized) {
		t.Errorf("double finalize: err = %v, want ErrFinalized", err)
	}
	d.Close()
	d.Close() // idempotent
	if d.State() != StateClosed {
		t.Fatalf("state after close = %q", d.State())
	}
	if _, err := d.Dictate(ctx, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("dictate after close: err = %v, want ErrClosed", err)
	}
	if _, err := d.Finalize(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("finalize after close: err = %v, want ErrClosed", err)
	}
	// The last snapshot outlives the dictation.
	if d.Snapshot().Best().SQL != fin.Best().SQL {
		t.Error("snapshot lost after close")
	}
}

// TestDictationMatchesOneShot: the stream layer adds state handling, not
// semantics — its final output must match the engine's one-shot path.
func TestDictationMatchesOneShot(t *testing.T) {
	e := engine(t)
	ctx := context.Background()
	frags := []string{"select sales from employers", "wear name equals Jon"}
	d := NewDictation(e, Config{})
	for _, f := range frags {
		if _, err := d.Dictate(ctx, f); err != nil {
			t.Fatal(err)
		}
	}
	fin, err := d.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := e.Correct(strings.Join(frags, " "))
	if fin.Best().SQL != want.Best().SQL {
		t.Fatalf("stream SQL %q, one-shot %q", fin.Best().SQL, want.Best().SQL)
	}
	if d.Transcript() != strings.Join(frags, " ") {
		t.Errorf("transcript = %q", d.Transcript())
	}
}

func TestDictationPublishesEvents(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	sub := b.Subscribe()
	d := NewDictation(engine(t), Config{Events: b, Session: "s1"})
	ctx := context.Background()
	if _, err := d.Dictate(ctx, "select sales from employers"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Dictate(ctx, "wear name equals Jon"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Finalize(ctx); err != nil {
		t.Fatal(err)
	}
	d.Close()
	wantKinds := []string{"fragment", "fragment", "finalized", "closed"}
	for i, want := range wantKinds {
		select {
		case ev := <-sub.Events():
			if ev.Kind != want {
				t.Fatalf("event %d kind = %q, want %q", i, ev.Kind, want)
			}
			if ev.Session != "s1" {
				t.Fatalf("event %d session = %q", i, ev.Session)
			}
			if want == "fragment" && ev.Seq != i+1 {
				t.Errorf("fragment event seq = %d, want %d", ev.Seq, i+1)
			}
			if want == "finalized" && ev.SQL == "" {
				t.Error("finalized event carries no SQL")
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no event %d (%s)", i, want)
		}
	}
}

func TestDictationFragmentBudget(t *testing.T) {
	// An already-expired parent deadline can only tighten the per-fragment
	// budget; the dictation must still answer (degraded), not hang.
	d := NewDictation(engine(t), Config{FragmentBudget: time.Nanosecond})
	out, err := d.Dictate(context.Background(), "select sales from employers")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded() {
		t.Skip("fragment finished inside a nanosecond budget") // wildly unlikely
	}
}

func TestDictationInjectedError(t *testing.T) {
	inj, err := faultinject.Parse("seed=3;stream:error")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)
	d := NewDictation(engine(t), Config{})
	_, derr := d.Dictate(context.Background(), "select sales from employers")
	var ierr *faultinject.InjectedError
	if !errors.As(derr, &ierr) || ierr.Stage != faultinject.StageStream {
		t.Fatalf("dictate under stream:error returned %v", derr)
	}
	if d.State() != StateIdle {
		t.Errorf("rejected fragment moved state to %q", d.State())
	}
}

func TestBroadcasterDropsWhenFull(t *testing.T) {
	b := NewBroadcaster()
	defer b.Close()
	sub := b.Subscribe()
	for i := 0; i < subscriberBuffer+10; i++ {
		b.Publish(Event{Kind: "fragment", Seq: i})
	}
	sub.Cancel()
	n := 0
	for range sub.Events() {
		n++
	}
	if n != subscriberBuffer {
		t.Fatalf("received %d events, want the buffer's %d (rest dropped)", n, subscriberBuffer)
	}
}

func TestBroadcasterCloseAndCancel(t *testing.T) {
	b := NewBroadcaster()
	s1, s2 := b.Subscribe(), b.Subscribe()
	if b.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", b.Subscribers())
	}
	s1.Cancel()
	s1.Cancel() // idempotent
	if _, ok := <-s1.Events(); ok {
		t.Error("cancelled subscriber channel still open")
	}
	b.Close()
	b.Close() // idempotent
	if _, ok := <-s2.Events(); ok {
		t.Error("subscriber channel open after broadcaster close")
	}
	b.Publish(Event{Kind: "fragment"}) // no-op, must not panic
	s3 := b.Subscribe()
	if _, ok := <-s3.Events(); ok {
		t.Error("subscribe after close returned an open channel")
	}
	s3.Cancel() // safe on an already-closed subscription
}

// TestBroadcasterConcurrency races publishers, subscribers, cancels, and a
// close; run under -race this is the fan-out's safety net.
func TestBroadcasterConcurrency(t *testing.T) {
	b := NewBroadcaster()
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish(Event{Kind: "fragment", Seq: i})
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe()
			for i := 0; i < 50; i++ {
				select {
				case <-sub.Events():
				case <-time.After(10 * time.Millisecond):
				}
			}
			sub.Cancel()
		}()
	}
	wg.Wait()
	b.Close()
}

// TestCloseNeverBlocks: Close must return even while a correction holds the
// dictation mutex — the TTL sweeper depends on it.
func TestCloseNeverBlocks(t *testing.T) {
	d := NewDictation(engine(t), Config{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			d.Dictate(context.Background(), "select first name from employees")
		}
	}()
	done := make(chan struct{})
	go func() {
		d.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind in-flight corrections")
	}
	wg.Wait()
}
