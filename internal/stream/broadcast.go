package stream

import (
	"sync"

	"speakql/internal/obs"
)

// Event is one streaming snapshot, shaped for direct JSON encoding onto an
// SSE feed: what the display needs to grow the corrected query in place.
type Event struct {
	// Session identifies the dictation on multiplexed feeds.
	Session string `json:"session,omitempty"`
	// Kind is "fragment", "finalized", or "closed".
	Kind string `json:"kind"`
	// Seq is the fragment sequence number the snapshot corresponds to.
	Seq int `json:"seq,omitempty"`
	// Transcript is the raw accumulated dictation.
	Transcript string `json:"transcript,omitempty"`
	// SQL is the best candidate's rendered query.
	SQL string `json:"sql,omitempty"`
	// Degradation is the ladder level the snapshot was served at.
	Degradation string `json:"degradation,omitempty"`
	// Pending lists placeholders whose literals may still change.
	Pending []string `json:"pending,omitempty"`
	// StablePrefixLen counts leading best-candidate tokens that are settled.
	StablePrefixLen int `json:"stable_prefix_len,omitempty"`
}

// subscriberBuffer is each subscriber's channel capacity. A subscriber more
// than this many events behind starts losing them — by design: the feed
// carries snapshots, not a log, and the next event supersedes the lost one.
const subscriberBuffer = 16

// Broadcaster fans events out to any number of subscribers without ever
// blocking the publisher: a subscriber whose buffer is full simply misses
// events (counted under stream.events_dropped). Safe for concurrent use.
type Broadcaster struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool
}

// NewBroadcaster creates an empty broadcaster.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[*Subscriber]struct{})}
}

// Subscriber is one listener on a broadcaster's feed. Receive from Events
// until it closes (broadcaster closed) or Cancel.
type Subscriber struct {
	b  *Broadcaster
	ch chan Event
}

// Events is the subscriber's feed. The channel closes when the broadcaster
// closes or the subscription is cancelled.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Cancel detaches the subscriber and closes its channel. Idempotent; safe
// to race with Publish and Close.
func (s *Subscriber) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if _, ok := s.b.subs[s]; !ok {
		return
	}
	delete(s.b.subs, s)
	close(s.ch)
}

// Subscribe attaches a new subscriber. Subscribing to a closed broadcaster
// returns a subscriber whose channel is already closed, so SSE handlers
// racing a server shutdown terminate cleanly instead of erroring.
func (b *Broadcaster) Subscribe() *Subscriber {
	s := &Subscriber{b: b, ch: make(chan Event, subscriberBuffer)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Publish delivers ev to every subscriber that has buffer room and drops it
// for the rest. Never blocks; a no-op after Close.
func (b *Broadcaster) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			obs.Add("stream.events_dropped", 1)
		}
	}
}

// Close terminates the feed: every subscriber's channel closes, and future
// Publish calls are no-ops. Idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Subscribers reports the current subscriber count (stats and tests).
func (b *Broadcaster) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
