// Package loadgen is the reproducible load harness for the SpeakQL serving
// tier: a seeded, deterministic workload generator that replays the mixed
// traffic a fleet of displays produces — stateless corrections, n-best
// requests, session dictations, streaming fragments, tenant-scoped
// corrections, and deliberately malformed requests — against a live
// speakql-server, measuring per-class latency in the same HDR-style
// histograms the server uses (internal/obs.Histogram), so server-reported
// and client-observed distributions are bucketed identically.
//
// The workload is a Plan: a pre-generated op sequence derived entirely from
// (seed, mix, size). Two runs with the same parameters replay byte-identical
// request sequences — the plan's FNV-64a checksum in the report proves it —
// so before/after comparisons across server builds measure the server, not
// workload drift. Execution happens in Runner (run.go); results render as a
// machine-readable Report (report.go) that joins the BENCH_*.json perf
// trajectory.
package loadgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Class is one traffic class in the mixed workload.
type Class string

// The workload's traffic classes.
const (
	// ClassCorrect is a stateless POST /api/correct with topk 1–3.
	ClassCorrect Class = "correct"
	// ClassNBest is POST /api/correct with topk 5 — the n-best shape an ASR
	// front end sends when it wants alternatives ranked.
	ClassNBest Class = "nbest"
	// ClassDictate is POST /api/dictate against a pool of live sessions.
	ClassDictate Class = "dictate"
	// ClassStream is POST /api/stream/dictate: one clause fragment into a
	// pool of streaming dictation sessions.
	ClassStream Class = "stream"
	// ClassTenant is a tenant-scoped POST /api/correct?tenant= against
	// tenants the runner registers during setup.
	ClassTenant Class = "tenant"
	// ClassFault is a malformed request (bad JSON, wrong types, unknown
	// fields) whose expected answer is a clean 400.
	ClassFault Class = "fault"
)

// classes lists every class in a fixed order (map iteration is random; plan
// generation must not be).
var classes = []Class{ClassCorrect, ClassNBest, ClassDictate, ClassStream, ClassTenant, ClassFault}

// Mix maps classes to integer weights. Weights are relative; a class absent
// or at 0 generates no traffic.
type Mix map[Class]int

// DefaultMix approximates interactive display traffic: correction-heavy,
// with steady dictation and streaming, a trickle of tenant-scoped load, and
// a little garbage (clients misbehave in production too).
func DefaultMix() Mix {
	return Mix{
		ClassCorrect: 40,
		ClassNBest:   10,
		ClassDictate: 20,
		ClassStream:  15,
		ClassTenant:  10,
		ClassFault:   5,
	}
}

// ParseMix parses "correct=40,nbest=10,…" into a Mix, rejecting unknown
// classes and non-positive totals.
func ParseMix(spec string) (Mix, error) {
	m := Mix{}
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: bad mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("loadgen: bad mix weight %q", val)
		}
		c := Class(strings.TrimSpace(name))
		known := false
		for _, k := range classes {
			if c == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("loadgen: unknown class %q (have %v)", name, classes)
		}
		m[c] = w
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: mix %q has zero total weight", spec)
	}
	return m, nil
}

// Op is one planned request. Every field is filled at plan time from the
// seeded generator; execution only reads.
type Op struct {
	Class      Class
	Transcript string // transcript, fragment, or raw body (fault class)
	TopK       int    // correct/nbest/tenant
	Session    int    // dictate: index into the runner's session pool
	Stream     int    // stream: index into the runner's stream-session pool
	Tenant     int    // tenant: index into the runner's tenant pool
}

// Plan is the deterministic workload: a fixed op sequence plus the pool
// sizes its ops index into.
type Plan struct {
	Seed     int64
	Ops      []Op
	Sessions int // dictate sessions the runner must create
	Streams  int // streaming sessions the runner must create
	Tenants  int // tenants the runner must register
}

// Pool sizes: enough concurrency spread that per-session server locks don't
// serialize the whole class, small enough that setup stays sub-second.
const (
	planSessions = 8
	planStreams  = 8
	planTenants  = 4
)

// transcripts is the dictation pool, phrased against the seed Employees
// schema every speakql-server default build serves. Varied length and error
// shapes (phonetic confusions, homophones) so the correction pipeline does
// real work at every difficulty.
var transcripts = []string{
	"select salary from employees where gender equals M",
	"select first name from employees",
	"select first named from employee where celery greater than 50000",
	"select birth date from employees where gender equals M",
	"select count of everything from titles",
	"select last name from employees where higher date greater than 1990",
	"select salary from salaries where salary less than 60000",
	"select title from titles",
}

// fragments is the clause-streaming pool: each op sends one clause, so
// consecutive ops against the same stream session mimic a user dictating a
// query clause by clause.
var fragments = []string{
	"select first name from employees",
	"where salary greater than 50000",
	"and gender equals M",
	"select title from titles",
	"where higher date greater than 1985",
}

// faultBodies are the malformed payloads; each must be answered 400.
var faultBodies = []string{
	`{"transcript": 42}`,                    // wrong type
	`{"transcript": "x", "bogus_field": 1}`, // unknown field
	`{"transcript": "select`,                // truncated JSON
	`not json at all`,                       // not JSON
	`{"transcript": "x", "topk": "three"}`,  // wrong topk type
	`["transcript", "x"]`,                   // wrong JSON kind
}

// TenantTranscript returns the transcript tenant i's ops dictate — phrased
// against the schema RegisterTenants installs for it.
func TenantTranscript(i int) string {
	return fmt.Sprintf("select cargo total from shipments%d where port name equals rotterdam", i)
}

// NewPlan generates the op sequence for the given seed and mix. size is the
// number of ops; the runner cycles through them modulo size, so a run longer
// than the plan replays it (the workload stays deterministic either way).
func NewPlan(seed int64, mix Mix, size int) (*Plan, error) {
	if size < 1 {
		return nil, fmt.Errorf("loadgen: plan size %d < 1", size)
	}
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	// Build the weighted class lottery in fixed class order.
	var lottery []Class
	for _, c := range classes {
		for i := 0; i < mix[c]; i++ {
			lottery = append(lottery, c)
		}
	}
	if len(lottery) == 0 {
		return nil, fmt.Errorf("loadgen: mix has zero total weight")
	}
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{Seed: seed, Ops: make([]Op, size), Sessions: planSessions, Streams: planStreams, Tenants: planTenants}
	for i := range p.Ops {
		op := Op{Class: lottery[rng.Intn(len(lottery))]}
		switch op.Class {
		case ClassCorrect:
			op.Transcript = transcripts[rng.Intn(len(transcripts))]
			op.TopK = 1 + rng.Intn(3)
		case ClassNBest:
			op.Transcript = transcripts[rng.Intn(len(transcripts))]
			op.TopK = 5
		case ClassDictate:
			op.Transcript = transcripts[rng.Intn(len(transcripts))]
			op.Session = rng.Intn(planSessions)
		case ClassStream:
			op.Transcript = fragments[rng.Intn(len(fragments))]
			op.Stream = rng.Intn(planStreams)
		case ClassTenant:
			op.Tenant = rng.Intn(planTenants)
			op.Transcript = TenantTranscript(op.Tenant)
			op.TopK = 1 + rng.Intn(2)
		case ClassFault:
			op.Transcript = faultBodies[rng.Intn(len(faultBodies))]
		}
		p.Ops[i] = op
	}
	return p, nil
}

// Checksum is the FNV-64a digest of the op sequence — the report's proof
// that two runs replayed the same workload.
func (p *Plan) Checksum() string {
	h := fnv.New64a()
	for i := range p.Ops {
		op := &p.Ops[i]
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%d\x00%d\n",
			op.Class, op.Transcript, op.TopK, op.Session, op.Stream, op.Tenant)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ClassCounts tallies ops per class (for the report's workload block).
func (p *Plan) ClassCounts() map[Class]int {
	m := map[Class]int{}
	for i := range p.Ops {
		m[p.Ops[i].Class]++
	}
	return m
}

// String renders a mix canonically (fixed class order) for logs.
func (m Mix) String() string {
	var parts []string
	for _, c := range classes {
		if w := m[c]; w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, w))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
