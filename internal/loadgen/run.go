package loadgen

// run.go executes a Plan against a live server. Two pacing modes:
//
//   - open loop (TargetRPS > 0): ops are released on a fixed schedule —
//     op i at start + i/TargetRPS — regardless of how fast responses come
//     back, the arrival process a public service actually faces. A worker
//     pool bounded by Concurrency absorbs the releases; if the server falls
//     behind, releases queue and the achieved RPS in the report drops below
//     target, which is itself the signal that saturation was reached.
//   - closed loop (TargetRPS == 0): Concurrency workers issue the next op
//     the moment the previous response lands — the classic
//     maximum-throughput probe.
//
// Every response is classified: expected status → ok, 503 → shed (the
// admission gate working as designed), anything else → error. Latency is
// recorded per class in obs.Histogram — the same bucketing the server's own
// /api/stats latency block uses.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"speakql/internal/obs"
)

// Config parameterizes one run.
type Config struct {
	BaseURL     string        // server root, e.g. http://localhost:8080
	Seed        int64         // plan seed
	Mix         Mix           // class weights (nil → DefaultMix)
	Duration    time.Duration // how long to drive load
	TargetRPS   float64       // open-loop arrival rate; 0 → closed loop
	Concurrency int           // worker pool size (min 1)
	PlanSize    int           // ops in the generated plan (0 → derived)
	Timeout     time.Duration // per-request client timeout (0 → 30s)
}

// classTally accumulates one class's outcomes during the run.
type classTally struct {
	hist   obs.Histogram
	sent   atomic.Int64
	ok     atomic.Int64
	shed   atomic.Int64
	errors atomic.Int64
}

// Runner drives one load-generation run.
type Runner struct {
	cfg    Config
	plan   *Plan
	client *http.Client

	sessions []string // dictate session ids, index-aligned with Op.Session
	streams  []string // streaming session ids, index-aligned with Op.Stream

	tallies   map[Class]*classTally
	firstErrs chan string
}

// NewRunner builds the plan and the HTTP client. No traffic is sent until
// Run.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: BaseURL required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	size := cfg.PlanSize
	if size == 0 {
		// Big enough that a full run rarely wraps, bounded so plan
		// generation stays instant.
		size = 4096
		if cfg.TargetRPS > 0 {
			if est := int(cfg.TargetRPS*cfg.Duration.Seconds()) + 1; est > size {
				size = est
			}
		}
		if size > 1<<20 {
			size = 1 << 20
		}
	}
	plan, err := NewPlan(cfg.Seed, cfg.Mix, size)
	if err != nil {
		return nil, err
	}
	tallies := make(map[Class]*classTally, len(classes))
	for _, c := range classes {
		tallies[c] = &classTally{}
	}
	return &Runner{
		cfg:  cfg,
		plan: plan,
		client: &http.Client{
			Timeout: cfg.Timeout,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Concurrency * 2,
				MaxIdleConnsPerHost: cfg.Concurrency * 2,
			},
		},
		tallies:   tallies,
		firstErrs: make(chan string, 8),
	}, nil
}

// Plan exposes the generated workload (tests assert on it; the report
// embeds its checksum).
func (r *Runner) Plan() *Plan { return r.plan }

// setup creates the session pools and registers the tenants the plan's ops
// index into. Setup traffic is not measured.
func (r *Runner) setup(ctx context.Context) error {
	counts := r.plan.ClassCounts()
	if counts[ClassDictate] > 0 {
		for i := 0; i < r.plan.Sessions; i++ {
			id, err := r.newSession(ctx, "/api/session", "{}", "id")
			if err != nil {
				return fmt.Errorf("loadgen setup: session %d: %w", i, err)
			}
			r.sessions = append(r.sessions, id)
		}
	}
	if counts[ClassStream] > 0 {
		for i := 0; i < r.plan.Streams; i++ {
			// An empty id auto-creates a streaming session on first fragment.
			body := fmt.Sprintf(`{"fragment":%q}`, fragments[i%len(fragments)])
			id, err := r.newSession(ctx, "/api/stream/dictate", body, "id")
			if err != nil {
				return fmt.Errorf("loadgen setup: stream session %d: %w", i, err)
			}
			r.streams = append(r.streams, id)
		}
	}
	if counts[ClassTenant] > 0 {
		for i := 0; i < r.plan.Tenants; i++ {
			if err := r.registerTenant(ctx, i); err != nil {
				return fmt.Errorf("loadgen setup: tenant %d: %w", i, err)
			}
		}
	}
	return nil
}

// newSession posts body to path and extracts the string field named key.
func (r *Runner) newSession(ctx context.Context, path, body, key string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+path, strings.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d (%v)", path, resp.StatusCode, out)
	}
	id, _ := out[key].(string)
	if id == "" {
		return "", fmt.Errorf("%s: no %q in response %v", path, key, out)
	}
	return id, nil
}

// registerTenant PUTs tenant i's schema — the one TenantTranscript(i)
// dictates against.
func (r *Runner) registerTenant(ctx context.Context, i int) error {
	payload := map[string]any{
		"tables":     []string{fmt.Sprintf("Shipments%d", i), "Ports"},
		"attributes": []string{"CargoTotal", "PortName"},
		"values":     []string{"Rotterdam", "Singapore", "Oakland"},
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		fmt.Sprintf("%s/api/tenants/lt%d", r.cfg.BaseURL, i), bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("PUT tenant lt%d: status %d", i, resp.StatusCode)
	}
	return nil
}

// body renders op's request body. Fault ops carry their raw (malformed)
// body verbatim.
func (r *Runner) body(op *Op) (path, payload string) {
	switch op.Class {
	case ClassCorrect, ClassNBest:
		return "/api/correct", fmt.Sprintf(`{"transcript":%q,"topk":%d}`, op.Transcript, op.TopK)
	case ClassDictate:
		return "/api/dictate", fmt.Sprintf(`{"id":%q,"transcript":%q}`, r.sessions[op.Session], op.Transcript)
	case ClassStream:
		return "/api/stream/dictate", fmt.Sprintf(`{"id":%q,"fragment":%q}`, r.streams[op.Stream], op.Transcript)
	case ClassTenant:
		return fmt.Sprintf("/api/correct?tenant=lt%d", op.Tenant),
			fmt.Sprintf(`{"transcript":%q,"topk":%d}`, op.Transcript, op.TopK)
	default: // ClassFault
		return "/api/correct", op.Transcript
	}
}

// execute sends one op, classifies the outcome, and records latency. The
// histogram records every completed request — shed responses included (the
// time to be told "go away" is part of what a shedding server's clients
// experience); transport errors record nothing (there is no response to
// time).
func (r *Runner) execute(ctx context.Context, op *Op) {
	tally := r.tallies[op.Class]
	path, payload := r.body(op)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.BaseURL+path, strings.NewReader(payload))
	if err != nil {
		tally.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	tally.sent.Add(1)
	t0 := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The run's clock expired mid-request: not a server failure.
			tally.sent.Add(-1)
			return
		}
		tally.errors.Add(1)
		r.noteErr(fmt.Sprintf("%s %s: %v", op.Class, path, err))
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	tally.hist.Observe(time.Since(t0))
	want := http.StatusOK
	if op.Class == ClassFault {
		want = http.StatusBadRequest
	}
	switch {
	case resp.StatusCode == want:
		tally.ok.Add(1)
	case resp.StatusCode == http.StatusServiceUnavailable:
		tally.shed.Add(1)
	default:
		tally.errors.Add(1)
		r.noteErr(fmt.Sprintf("%s %s: status %d", op.Class, path, resp.StatusCode))
	}
}

// noteErr keeps the first few error descriptions for the report.
func (r *Runner) noteErr(s string) {
	select {
	case r.firstErrs <- s:
	default:
	}
}

// Run performs setup, drives the load for cfg.Duration, and returns the
// report. ctx cancellation stops the run early (the report covers what ran).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	setupCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	err := r.setup(setupCtx)
	cancel()
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithTimeout(ctx, r.cfg.Duration)
	defer cancel()
	start := time.Now()
	var next atomic.Int64 // shared plan cursor

	var wg sync.WaitGroup
	if r.cfg.TargetRPS > 0 {
		// Open loop: a dispatcher releases op indices on the arrival
		// schedule; workers drain the release channel.
		releases := make(chan int, r.cfg.Concurrency)
		for w := 0; w < r.cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range releases {
					r.execute(runCtx, &r.plan.Ops[i%len(r.plan.Ops)])
				}
			}()
		}
		interval := time.Duration(float64(time.Second) / r.cfg.TargetRPS)
	dispatch:
		for i := 0; ; i++ {
			due := start.Add(time.Duration(i) * interval)
			if d := time.Until(due); d > 0 {
				select {
				case <-runCtx.Done():
					break dispatch
				case <-time.After(d):
				}
			}
			select {
			case releases <- i:
			case <-runCtx.Done():
				break dispatch
			}
		}
		close(releases)
	} else {
		// Closed loop: each worker issues the next op as soon as the
		// previous one completes.
		for w := 0; w < r.cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for runCtx.Err() == nil {
					i := int(next.Add(1) - 1)
					r.execute(runCtx, &r.plan.Ops[i%len(r.plan.Ops)])
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	return r.report(elapsed), nil
}
