package loadgen

// report.go renders a run into the machine-readable report that joins the
// BENCH_*.json perf trajectory: per-class latency quantiles, throughput,
// shed and error rates, and the plan checksum that proves two runs replayed
// the same workload. MergeBench appends the headline numbers as micro-style
// entries into an existing speakql-bench -json artifact so the CI perf-diff
// script covers them with no schema change.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// ClassReport is one traffic class's measured outcome.
type ClassReport struct {
	Sent      int64   `json:"sent"`
	OK        int64   `json:"ok"`
	Shed      int64   `json:"shed"`
	Errors    int64   `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
	MeanMs    float64 `json:"mean_ms"`
	ShedRate  float64 `json:"shed_rate"`
	ErrorRate float64 `json:"error_rate"`
}

// Report is the full run artifact.
type Report struct {
	Seed            int64                  `json:"seed"`
	Mode            string                 `json:"mode"` // "open" or "closed"
	TargetRPS       float64                `json:"target_rps,omitempty"`
	Concurrency     int                    `json:"concurrency"`
	Mix             string                 `json:"mix"`
	PlanSize        int                    `json:"plan_size"`
	Checksum        string                 `json:"workload_checksum"`
	DurationSeconds float64                `json:"duration_seconds"`
	TotalRequests   int64                  `json:"total_requests"`
	AchievedRPS     float64                `json:"achieved_rps"`
	ShedRate        float64                `json:"shed_rate"`
	ErrorRate       float64                `json:"error_rate"`
	Classes         map[string]ClassReport `json:"classes"`
	FirstErrors     []string               `json:"first_errors,omitempty"`
}

// ms converts a duration to float milliseconds for the JSON report.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// rate is n/total guarding the empty run.
func rate(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total)
}

// report snapshots the tallies after a run of the given wall-clock length.
func (r *Runner) report(elapsed time.Duration) *Report {
	rep := &Report{
		Seed:            r.plan.Seed,
		Mode:            "closed",
		Concurrency:     r.cfg.Concurrency,
		Mix:             mixOrDefault(r.cfg.Mix).String(),
		PlanSize:        len(r.plan.Ops),
		Checksum:        r.plan.Checksum(),
		DurationSeconds: elapsed.Seconds(),
		Classes:         map[string]ClassReport{},
	}
	if r.cfg.TargetRPS > 0 {
		rep.Mode = "open"
		rep.TargetRPS = r.cfg.TargetRPS
	}
	var totalSent, totalShed, totalErr int64
	for _, c := range classes {
		t := r.tallies[c]
		sent := t.sent.Load()
		if sent == 0 {
			continue
		}
		sum := t.hist.Summary()
		shed, errs := t.shed.Load(), t.errors.Load()
		rep.Classes[string(c)] = ClassReport{
			Sent:      sent,
			OK:        t.ok.Load(),
			Shed:      shed,
			Errors:    errs,
			P50Ms:     ms(sum.P50),
			P90Ms:     ms(sum.P90),
			P99Ms:     ms(sum.P99),
			MaxMs:     ms(sum.Max),
			MeanMs:    ms(sum.Mean),
			ShedRate:  rate(shed, sent),
			ErrorRate: rate(errs, sent),
		}
		totalSent += sent
		totalShed += shed
		totalErr += errs
	}
	rep.TotalRequests = totalSent
	if secs := elapsed.Seconds(); secs > 0 {
		rep.AchievedRPS = float64(totalSent) / secs
	}
	rep.ShedRate = rate(totalShed, totalSent)
	rep.ErrorRate = rate(totalErr, totalSent)
	for {
		select {
		case s := <-r.firstErrs:
			rep.FirstErrors = append(rep.FirstErrors, s)
			continue
		default:
		}
		break
	}
	sort.Strings(rep.FirstErrors)
	return rep
}

// mixOrDefault mirrors NewPlan's nil handling for the report line.
func mixOrDefault(m Mix) Mix {
	if len(m) == 0 {
		return DefaultMix()
	}
	return m
}

// Render prints the human-readable summary.
func (rep *Report) Render() string {
	out := fmt.Sprintf("loadgen: mode=%s seed=%d mix=%s checksum=%s\n",
		rep.Mode, rep.Seed, rep.Mix, rep.Checksum)
	out += fmt.Sprintf("  %d requests in %.1fs → %.1f req/s (shed %.1f%%, errors %.1f%%)\n",
		rep.TotalRequests, rep.DurationSeconds, rep.AchievedRPS, 100*rep.ShedRate, 100*rep.ErrorRate)
	var names []string
	for name := range rep.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := rep.Classes[name]
		out += fmt.Sprintf("  %-8s sent=%-6d ok=%-6d shed=%-5d err=%-4d p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
			name, c.Sent, c.OK, c.Shed, c.Errors, c.P50Ms, c.P90Ms, c.P99Ms, c.MaxMs)
	}
	return out
}

// benchMicroEntry mirrors speakql-bench's microResult JSON shape so merged
// entries are indistinguishable from native ones to the CI diff script.
type benchMicroEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	N           int     `json:"iterations"`
}

// MergeBench appends the report's headline numbers into the speakql-bench
// -json artifact at path as micro entries, so the existing warn-only CI
// perf diff covers load-test latency with no schema change:
//
//	load_correct_p50 / load_correct_p99 — /api/correct latency (ns in
//	  ns_per_op, the diff script's comparison field)
//	load_stream_p99 — streaming-fragment p99 (ns)
//	load_shed_rate — overall shed percentage ×1e6 in ns_per_op (a rate has
//	  no ns; scaling keeps the diff's relative-change math meaningful)
//
// The file must already exist (speakql-bench writes it first in CI).
func (rep *Report) MergeBench(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("loadgen merge: %w", err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("loadgen merge: parse %s: %w", path, err)
	}
	var micro []benchMicroEntry
	if m, ok := doc["micro"]; ok {
		if err := json.Unmarshal(m, &micro); err != nil {
			return fmt.Errorf("loadgen merge: micro block: %w", err)
		}
	}
	correct := rep.Classes[string(ClassCorrect)]
	stream := rep.Classes[string(ClassStream)]
	n := int(rep.TotalRequests)
	entries := []benchMicroEntry{
		{Name: "load_correct_p50", NsPerOp: correct.P50Ms * 1e6, N: int(correct.Sent)},
		{Name: "load_correct_p99", NsPerOp: correct.P99Ms * 1e6, N: int(correct.Sent)},
		{Name: "load_stream_p99", NsPerOp: stream.P99Ms * 1e6, N: int(stream.Sent)},
		{Name: "load_shed_rate", NsPerOp: rep.ShedRate * 1e6, N: n},
	}
	// Replace any stale entries from an earlier merge, then append.
	kept := micro[:0]
	for _, e := range micro {
		stale := false
		for _, ne := range entries {
			if e.Name == ne.Name {
				stale = true
				break
			}
		}
		if !stale {
			kept = append(kept, e)
		}
	}
	micro = append(kept, entries...)
	enc, err := json.Marshal(micro)
	if err != nil {
		return err
	}
	doc["micro"] = enc
	outRaw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	outRaw = append(outRaw, '\n')
	return os.WriteFile(path, outRaw, 0o644)
}

// WriteJSON writes the full report to path.
func (rep *Report) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	return os.WriteFile(path, raw, 0o644)
}
