package loadgen

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/grammar"
	"speakql/internal/httpapi"
	"speakql/internal/literal"
	"speakql/internal/registry"
)

// TestPlanDeterminism pins the harness's reproducibility claim: the same
// (seed, mix, size) always generates the same op sequence — same checksum —
// and a different seed diverges.
func TestPlanDeterminism(t *testing.T) {
	a, err := NewPlan(42, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(42, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() != b.Checksum() {
		t.Fatalf("same seed, different checksums: %s vs %s", a.Checksum(), b.Checksum())
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
	c, err := NewPlan(43, nil, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum() == c.Checksum() {
		t.Fatal("different seeds produced identical plans")
	}

	// The realized class mix tracks the configured weights (±50% slack —
	// this is a smoke check on the lottery, not a statistics test).
	counts := a.ClassCounts()
	mix := DefaultMix()
	total := 0
	for _, w := range mix {
		total += w
	}
	for cl, w := range mix {
		want := float64(len(a.Ops)) * float64(w) / float64(total)
		got := float64(counts[cl])
		if got < want/2 || got > want*2 {
			t.Errorf("class %s: %v ops, expected about %v", cl, got, want)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("correct=3, stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if m[ClassCorrect] != 3 || m[ClassStream] != 1 || len(m) != 2 {
		t.Fatalf("parsed mix = %v", m)
	}
	for _, bad := range []string{"bogus=1", "correct", "correct=x", "correct=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
	// A plan from a single-class mix contains only that class.
	p, err := NewPlan(1, Mix{ClassFault: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Ops {
		if p.Ops[i].Class != ClassFault {
			t.Fatalf("op %d class = %s", i, p.Ops[i].Class)
		}
	}
}

// liveServer builds a full registry-backed API server for end-to-end runs.
func liveServer(t *testing.T) *httptest.Server {
	t.Helper()
	db := dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 60, Departments: 4, Seed: 1})
	cat := literal.NewCatalog(db.TableNames(), db.AttributeNames(), db.StringValues(0))
	eng, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(registry.Config{
		Shared: registry.Shared{
			Structure:    eng.StructureComponent(),
			Cache:        eng.SearchCache(),
			TopKLiterals: 5,
		},
		MaxLive: 8,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSeed("default", eng, eng.Catalog())
	api := httpapi.New(eng, db)
	api.SetRegistry(reg)
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		api.Close()
	})
	return ts
}

// TestClosedLoopRun drives the full mixed workload against a live server
// briefly and checks the report's arithmetic: tallies reconcile, no
// unexpected errors, every class in the mix saw traffic, and the checksum
// matches an independently generated plan.
func TestClosedLoopRun(t *testing.T) {
	ts := liveServer(t)
	cfg := Config{
		BaseURL:     ts.URL,
		Seed:        7,
		Duration:    1500 * time.Millisecond,
		Concurrency: 4,
		PlanSize:    512,
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	want, err := NewPlan(7, nil, 512)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checksum != want.Checksum() {
		t.Errorf("report checksum %s != independent plan checksum %s", rep.Checksum, want.Checksum())
	}
	if rep.Mode != "closed" {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.TotalRequests == 0 {
		t.Fatal("no requests sent")
	}
	if rep.ErrorRate != 0 {
		t.Errorf("error rate %.3f with errors %v — healthy server must produce none", rep.ErrorRate, rep.FirstErrors)
	}
	var sum int64
	for name, c := range rep.Classes {
		if c.Sent != c.OK+c.Shed+c.Errors {
			t.Errorf("class %s: sent %d != ok %d + shed %d + errors %d", name, c.Sent, c.OK, c.Shed, c.Errors)
		}
		if c.OK > 0 && (c.P50Ms <= 0 || c.P99Ms < c.P50Ms || c.MaxMs < c.P99Ms) {
			t.Errorf("class %s: quantiles not ordered: p50=%v p99=%v max=%v", name, c.P50Ms, c.P99Ms, c.MaxMs)
		}
		sum += c.Sent
	}
	if sum != rep.TotalRequests {
		t.Errorf("class sends sum to %d, total is %d", sum, rep.TotalRequests)
	}
	for _, cl := range classes {
		if _, ok := rep.Classes[string(cl)]; !ok {
			t.Errorf("class %s saw no traffic in a %d-request mixed run", cl, rep.TotalRequests)
		}
	}
}

// TestOpenLoopRun checks the paced mode: the achieved rate tracks the
// target (the server is local and fast; the schedule, not the server, is
// the constraint).
func TestOpenLoopRun(t *testing.T) {
	ts := liveServer(t)
	r, err := NewRunner(Config{
		BaseURL:     ts.URL,
		Seed:        11,
		Mix:         Mix{ClassCorrect: 1},
		Duration:    time.Second,
		TargetRPS:   60,
		Concurrency: 8,
		PlanSize:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.TargetRPS != 60 {
		t.Errorf("mode=%q target=%v", rep.Mode, rep.TargetRPS)
	}
	if rep.AchievedRPS < 30 || rep.AchievedRPS > 90 {
		t.Errorf("achieved %.1f rps against a 60 rps schedule", rep.AchievedRPS)
	}
	if rep.ErrorRate != 0 {
		t.Errorf("error rate %.3f: %v", rep.ErrorRate, rep.FirstErrors)
	}
}

// TestMergeBench round-trips the BENCH artifact merge: existing micro
// entries survive, the four load keys appear, and a re-merge replaces
// rather than duplicates them.
func TestMergeBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	seedDoc := `{
  "scale": "test",
  "micro": [
    {"name": "search_serial", "ns_per_op": 123.0, "bytes_per_op": 4, "allocs_per_op": 1, "iterations": 10}
  ]
}`
	if err := os.WriteFile(path, []byte(seedDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := &Report{
		TotalRequests: 100,
		ShedRate:      0.25,
		Classes: map[string]ClassReport{
			string(ClassCorrect): {Sent: 50, P50Ms: 2, P99Ms: 8},
			string(ClassStream):  {Sent: 20, P99Ms: 5},
		},
	}
	if err := rep.MergeBench(path); err != nil {
		t.Fatal(err)
	}
	if err := rep.MergeBench(path); err != nil { // idempotent re-merge
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scale string            `json:"scale"`
		Micro []benchMicroEntry `json:"micro"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scale != "test" {
		t.Errorf("sibling field lost: scale = %q", doc.Scale)
	}
	wantNs := map[string]float64{
		"search_serial":    123.0,
		"load_correct_p50": 2e6,
		"load_correct_p99": 8e6,
		"load_stream_p99":  5e6,
		"load_shed_rate":   0.25e6,
	}
	if len(doc.Micro) != len(wantNs) {
		t.Fatalf("micro has %d entries, want %d: %+v", len(doc.Micro), len(wantNs), doc.Micro)
	}
	for _, e := range doc.Micro {
		want, ok := wantNs[e.Name]
		if !ok {
			t.Errorf("unexpected micro entry %q", e.Name)
			continue
		}
		if e.NsPerOp != want {
			t.Errorf("%s ns_per_op = %v, want %v", e.Name, e.NsPerOp, want)
		}
	}
}
