package asr

import (
	"strings"
	"testing"

	"speakql/internal/speech"
)

func TestDeterminism(t *testing.T) {
	e1 := NewEngine(ACSProfile(), 42)
	e2 := NewEngine(ACSProfile(), 42)
	spoken := speech.VerbalizeQuery("SELECT Salary FROM Employees WHERE Name = 'John'")
	if e1.Transcribe(spoken) != e2.Transcribe(spoken) {
		t.Fatal("same seed, same input, different transcripts")
	}
	e3 := NewEngine(ACSProfile(), 43)
	same := 0
	for i := 0; i < 20; i++ {
		q := speech.VerbalizeQuery("SELECT Salary FROM Employees WHERE EmployeeNumber = '" +
			strings.Repeat("x", i+1) + "'")
		if e1.Transcribe(q) == e3.Transcribe(q) {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical transcripts on all inputs")
	}
}

func TestNBestAlternativesDiffer(t *testing.T) {
	e := NewEngine(ACSProfile(), 7)
	spoken := speech.VerbalizeQuery(
		"SELECT FromDate , Salary FROM Employees NATURAL JOIN Salaries WHERE FirstName = 'Tomokazu'")
	alts := e.TranscribeN(spoken, 5)
	if len(alts) != 5 {
		t.Fatalf("got %d alternatives", len(alts))
	}
	distinct := map[string]bool{}
	for _, a := range alts {
		distinct[a] = true
	}
	if len(distinct) < 2 {
		t.Error("n-best alternatives are all identical")
	}
	// Determinism of the whole list.
	again := e.TranscribeN(spoken, 5)
	for i := range alts {
		if alts[i] != again[i] {
			t.Fatal("n-best list not deterministic")
		}
	}
}

func TestKeywordsMostlySurvive(t *testing.T) {
	e := NewEngine(ACSProfile(), 1)
	good, total := 0, 0
	queries := []string{
		"SELECT Salary FROM Salaries",
		"SELECT * FROM Employees WHERE Gender = 'M'",
		"SELECT COUNT ( * ) FROM Titles GROUP BY Title",
		"SELECT LastName FROM Employees ORDER BY HireDate LIMIT 10",
	}
	for trial := 0; trial < 50; trial++ {
		for _, q := range queries {
			spoken := speech.VerbalizeQuery(q)
			// vary the rng by changing alt index
			out := strings.Fields(e.transcribeOne(spoken, trial))
			outSet := map[string]bool{}
			for _, w := range out {
				outSet[strings.ToLower(w)] = true
			}
			for _, w := range spoken {
				if keywordWords[w] {
					total++
					if outSet[w] {
						good++
					}
				}
			}
		}
	}
	rate := float64(good) / float64(total)
	if rate < 0.85 || rate > 0.99 {
		t.Errorf("keyword survival rate = %.3f, want high but imperfect (0.85–0.99)", rate)
	}
}

func TestOOVNeverVerbatim(t *testing.T) {
	e := NewEngine(ACSProfile(), 3)
	for _, oov := range []string{"custid", "zzyzx", "qqfoo", "tomokazu"} {
		if e.InVocabulary(oov) {
			t.Fatalf("%q unexpectedly in vocabulary", oov)
		}
		for alt := 0; alt < 10; alt++ {
			out := strings.Fields(e.transcribeOne([]string{oov}, alt))
			for _, w := range out {
				if w == oov {
					t.Errorf("OOV word %q transcribed verbatim", oov)
				}
			}
		}
	}
}

func TestOOVPhoneticNeighbor(t *testing.T) {
	e := NewEngine(ACSProfile(), 3)
	// "custid" should frequently come back as "custody" (same leading
	// sounds), reproducing Table 1's CUSTID → custody.
	hits := 0
	for alt := 0; alt < 30; alt++ {
		out := e.transcribeOne([]string{"custid"}, alt)
		if strings.Contains(out, "custody") {
			hits++
		}
	}
	if hits == 0 {
		t.Error("custid never became custody; phonetic neighbour search is off")
	}
}

func TestTrainingBringsWordInVocabulary(t *testing.T) {
	e := NewEngine(ACSProfile(), 5)
	if e.InVocabulary("tomokazu") {
		t.Fatal("precondition: tomokazu should be OOV")
	}
	e.TrainWords([]string{"Tomokazu"})
	if !e.InVocabulary("tomokazu") {
		t.Fatal("training did not extend vocabulary")
	}
	// After training the word mostly survives.
	survived := 0
	for alt := 0; alt < 50; alt++ {
		if strings.Contains(e.transcribeOne([]string{"tomokazu"}, alt), "tomokazu") {
			survived++
		}
	}
	if survived < 35 {
		t.Errorf("trained word survived only %d/50 times", survived)
	}
}

func TestTrainQueries(t *testing.T) {
	e := NewEngine(ACSProfile(), 5)
	e.TrainQueries([]string{"SELECT Wage FROM Payroll WHERE Kubrick = 'Zelenka'"})
	for _, w := range []string{"wage", "payroll", "kubrick", "zelenka"} {
		if !e.InVocabulary(w) {
			t.Errorf("TrainQueries missed %q", w)
		}
	}
}

func TestNumberITN(t *testing.T) {
	e := NewEngine(ACSProfile(), 9)
	spoken := speech.NumberToWords(45310)
	sawJoined, sawSplit := false, false
	for alt := 0; alt < 60; alt++ {
		out := e.transcribeOne(spoken, alt)
		switch out {
		case "45310":
			sawJoined = true
		case "45000 310":
			sawSplit = true
		}
	}
	if !sawJoined {
		t.Error("number never transcribed as a single numeral")
	}
	if !sawSplit {
		t.Error("number never re-segmented (Table 1's 45412 → 45000 412 class)")
	}
}

func TestDigitRun(t *testing.T) {
	e := NewEngine(ACSProfile(), 9)
	spoken := []string{"one", "seven", "two", "nine"}
	sawJoined, sawSeparate := false, false
	for alt := 0; alt < 60; alt++ {
		out := e.transcribeOne(spoken, alt)
		if out == "1729" {
			sawJoined = true
		}
		if out == "1 7 2 9" {
			sawSeparate = true
		}
	}
	if !sawJoined || !sawSeparate {
		t.Errorf("digit run forms missing: joined=%v separate=%v", sawJoined, sawSeparate)
	}
}

func TestDateTranscription(t *testing.T) {
	e := NewEngine(ACSProfile(), 13)
	spoken := speech.VerbalizeDate(speech.Date{Year: 1991, Month: 5, Day: 7})
	sawNormal, sawMangled, sawDropped := false, false, false
	for alt := 0; alt < 120; alt++ {
		out := e.transcribeOne(spoken, alt)
		f := strings.Fields(out)
		switch {
		case out == "may 7 1991":
			sawNormal = true
		case len(f) == 4 && f[0] == "may" && f[1] == "07":
			sawMangled = true // "may 07 90 91" class
		case len(f) == 2:
			sawDropped = true
		}
	}
	if !sawNormal {
		t.Error("date never transcribed normally")
	}
	if !sawMangled {
		t.Error("date never mangled (Table 1 class)")
	}
	if !sawDropped {
		t.Error("date component never dropped")
	}
}

func TestHomophoneErrors(t *testing.T) {
	e := NewEngine(ACSProfile(), 21)
	sawWear := false
	spoken := speech.VerbalizeQuery("SELECT Salary FROM Employees WHERE Name = 'John'")
	for alt := 0; alt < 200; alt++ {
		out := e.transcribeOne(spoken, alt)
		if strings.Contains(" "+out+" ", " wear ") {
			sawWear = true
			break
		}
	}
	if !sawWear {
		t.Error(`"where" never became "wear" in 200 trials`)
	}
}

func TestGCSSymbolHints(t *testing.T) {
	e := NewEngine(GCSProfile(), 2)
	spoken := speech.VerbalizeQuery("SELECT AVG ( Salary ) FROM Salaries WHERE Salary > 100")
	sawSymbol := false
	for alt := 0; alt < 20; alt++ {
		out := e.transcribeOne(spoken, alt)
		if strings.Contains(out, "(") || strings.Contains(out, ">") {
			sawSymbol = true
			break
		}
	}
	if !sawSymbol {
		t.Error("GCS hint mode never emitted a symbol")
	}
	// ACS never emits raw symbols.
	a := NewEngine(ACSProfile(), 2)
	for alt := 0; alt < 20; alt++ {
		out := a.transcribeOne(spoken, alt)
		if strings.ContainsAny(out, "()<>=*") {
			t.Errorf("ACS emitted a symbol: %q", out)
		}
	}
}

func TestDetectSpokenDate(t *testing.T) {
	d, used, ok := detectSpokenDate(strings.Fields("january twentieth nineteen ninety three from"))
	if !ok || d != (speech.Date{Year: 1993, Month: 1, Day: 20}) || used != 5 {
		t.Fatalf("got %v used=%d ok=%v", d, used, ok)
	}
	if _, _, ok := detectSpokenDate(strings.Fields("select star from")); ok {
		t.Fatal("false date detection")
	}
	// "may" alone (e.g. a name) must not be a date.
	if _, _, ok := detectSpokenDate(strings.Fields("may be fine")); ok {
		t.Fatal("month word without day/year misdetected")
	}
}

func TestRunLengthHelpers(t *testing.T) {
	if n := digitRunLen(strings.Fields("one seven two nine a")); n != 4 {
		t.Errorf("digitRunLen = %d, want 4", n)
	}
	if n := digitRunLen(strings.Fields("seven hundred")); n != 0 {
		t.Errorf("digitRunLen(seven hundred) = %d, want 0", n)
	}
	if n := numberRunLen(strings.Fields("forty five thousand three hundred ten from")); n != 6 {
		t.Errorf("numberRunLen = %d, want 6", n)
	}
	if p := scaleSplitPoint(strings.Fields("forty five thousand three hundred ten")); p != 3 {
		t.Errorf("scaleSplitPoint = %d, want 3", p)
	}
	if p := scaleSplitPoint(strings.Fields("forty five")); p != 0 {
		t.Errorf("scaleSplitPoint = %d, want 0", p)
	}
}

func TestTrainedIdentifierJoining(t *testing.T) {
	// The custom language model recognizes trained multi-word identifiers
	// as single tokens: "from date" → "fromdate" (the mechanism behind the
	// Employees/Yelp generalization gap of Table 2).
	trained := NewEngine(ACSProfile(), 31)
	trained.TrainQueries([]string{"SELECT FromDate FROM Salaries"})
	if !trained.InVocabulary("fromdate") {
		t.Fatal("raw literal token not trained")
	}
	joined := 0
	spoken := []string{"select", "from", "date", "from", "salaries"}
	for alt := 0; alt < 40; alt++ {
		if strings.Contains(trained.transcribeOne(spoken, alt), "fromdate") {
			joined++
		}
	}
	if joined < 10 {
		t.Errorf("trained identifier joined only %d/40 times", joined)
	}
	// An untrained engine never joins.
	raw := NewEngine(ACSProfile(), 31)
	for alt := 0; alt < 40; alt++ {
		if strings.Contains(raw.transcribeOne(spoken, alt), "fromdate") {
			t.Fatal("untrained engine joined an identifier")
		}
	}
}

func TestNumberGarble(t *testing.T) {
	e := NewEngine(ACSProfile(), 17)
	spoken := speech.NumberToWords(45310)
	garbled := 0
	for alt := 0; alt < 100; alt++ {
		out := e.transcribeOne(spoken, alt)
		if out != "45310" && !strings.Contains(out, " ") &&
			len(out) == 5 && out[0] != 'f' {
			garbled++
		}
	}
	if garbled == 0 {
		t.Error("numbers never garbled (NumberGarbleProb ineffective)")
	}
}
