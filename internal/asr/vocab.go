package asr

import "strings"

// baseVocabulary is the engine's built-in language-model lexicon: common
// English words (including every word that appears in the Employees and
// Yelp schema identifiers once split, month names, number words, letters,
// and the spoken forms of SQL keywords and special characters). Words
// outside this set are out-of-vocabulary to an untrained engine and can
// never be transcribed verbatim — the unbounded-vocabulary problem of
// Section 1. Training (Azure Custom Speech style) extends the lexicon.
var baseVocabulary = []string{
	// Spoken SQL keywords.
	"select", "from", "where", "order", "group", "by", "natural", "join",
	"and", "or", "not", "limit", "between", "in", "sum", "count", "max",
	"avg", "min",
	// Spoken special characters.
	"star", "equals", "less", "greater", "than", "open", "close",
	"parenthesis", "comma", "dot", "point", "asterisk", "period",
	// Number words.
	"zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
	"nine", "ten", "eleven", "twelve", "thirteen", "fourteen", "fifteen",
	"sixteen", "seventeen", "eighteen", "nineteen", "twenty", "thirty",
	"forty", "fifty", "sixty", "seventy", "eighty", "ninety", "hundred",
	"thousand", "million", "billion", "minus", "negative", "oh",
	// Ordinals.
	"first", "second", "third", "fourth", "fifth", "sixth", "seventh",
	"eighth", "ninth", "tenth", "eleventh", "twelfth", "thirteenth",
	"fourteenth", "fifteenth", "sixteenth", "seventeenth", "eighteenth",
	"nineteenth", "twentieth", "thirtieth",
	// Months.
	"january", "february", "march", "april", "may", "june", "july",
	"august", "september", "october", "november", "december",
	// Letters (spelled-out identifier fragments).
	"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m",
	"n", "o", "p", "q", "r", "s", "t", "u", "v", "w", "x", "y", "z",
	// Common English words, including all words occurring in the
	// Employees/Yelp schema identifiers and typical attribute values.
	"the", "of", "to", "for", "with", "on", "at", "is", "are", "was",
	"be", "this", "that", "have", "has", "had", "do", "does", "did",
	"will", "would", "can", "could", "should", "all", "each", "every",
	"some", "any", "no", "yes", "more", "most", "other", "into", "over",
	"under", "after", "before", "up", "down", "out", "off", "as", "so",
	"if", "then", "than", "when", "while", "because", "about", "against",
	"employee", "employees", "employer", "employers", "salary", "salaries",
	"sales", "sale", "department", "departments", "manager", "managers",
	"title", "titles", "name", "names", "number", "numbers", "date",
	"dates", "gender", "birth", "hire", "hired", "wage", "wages",
	"business", "businesses", "review", "reviews", "user", "users",
	"rating", "ratings", "city", "state", "address", "category",
	"categories", "checkin", "tip", "tips", "stars", "vote", "votes",
	"cool", "funny", "useful", "text", "friend", "friends", "fan", "fans",
	"average", "total", "price", "prices", "customer", "customers",
	"custody", "distance", "record", "records", "table", "tables", "column",
	"columns", "row", "rows", "value", "values", "data", "database",
	"last", "middle", "full", "short", "long", "high", "low", "new", "old",
	"big", "small", "good", "bad", "best", "worst", "top", "bottom",
	"left", "right", "male", "female", "engineer", "engineers", "staff", "senior", "junior",
	"assistant", "technique", "leader", "leaders", "marketing", "finance",
	"production", "development", "research", "quality", "service",
	"services", "support", "human", "resources", "customer", "relations",
	"john", "jon", "james", "mary", "robert", "michael", "linda", "david",
	"william", "richard", "susan", "joseph", "thomas", "charles", "karen",
	"lisa", "nancy", "betty", "helen", "sandra", "donna", "carol", "ruth",
	"sharon", "michelle", "laura", "sarah", "kimberly", "deborah", "jessica",
	"anna", "karsten", "goh", "narain", "perla", "peter", "paul", "mark",
	"george", "kenneth", "steven", "edward", "brian", "ronald", "anthony",
	"kevin", "jason", "matthew", "gary", "timothy", "jose", "larry",
	"jeffrey", "frank", "scott", "eric", "stephen", "andrew", "raymond",
	"gregory", "joshua", "jerry", "dennis", "walter", "patrick",
	"smith", "johnson", "williams", "jones", "brown", "davis", "miller",
	"wilson", "moore", "taylor", "anderson", "jackson", "white", "harris",
	"martin", "thompson", "garcia", "martinez", "robinson", "clark",
	"lewis", "lee", "walker", "hall", "allen", "young", "king", "wright",
	"scott", "green", "baker", "adams", "nelson", "hill", "campbell",
	"mitchell", "roberts", "carter", "phillips", "evans", "turner",
	"parker", "collins", "edwards", "stewart", "sanchez", "morris",
	"rogers", "reed", "cook", "morgan", "bell", "murphy", "bailey",
	"rivera", "cooper", "richardson", "cox", "howard", "ward", "torres",
	"peterson", "gray", "ramirez", "watson", "brooks", "kelly", "sanders",
	"price", "bennett", "wood", "barnes", "ross", "henderson", "coleman",
	"jenkins", "perry", "powell", "long", "patterson", "hughes", "flores",
	"washington", "butler", "simmons", "foster", "gonzales", "bryant",
	"alexander", "russell", "griffin", "diaz", "hayes",
	"pizza", "coffee", "sushi", "burger", "taco", "grill", "cafe", "bar",
	"restaurant", "bakery", "deli", "kitchen", "house", "garden", "corner",
	"golden", "royal", "happy", "lucky", "fresh", "spicy", "sweet",
	"phoenix", "vegas", "toronto", "cleveland", "pittsburgh", "charlotte",
	"madison", "champaign", "arizona", "nevada", "ontario", "ohio",
	"pennsylvania", "carolina", "wisconsin", "illinois", "las",
	"scottsdale", "tempe",
	// Open-domain words of the WikiSQL-style tables and their NL questions.
	"driver", "drivers", "team", "teams", "points", "position", "positions",
	"movie", "movies", "director", "directors", "release", "released",
	"year", "years", "gross", "population", "area", "size", "player",
	"players", "club", "clubs", "goal", "goals", "nationality", "entries",
	"entry", "how", "what", "which", "show", "list", "find", "get", "fetch",
	"together", "sorted", "only", "appears", "among", "whose", "their",
	"france", "japan", "brazil", "canada", "india", "kenya", "norway",
	"united", "rovers", "athletic", "wanderers", "silent", "broken",
	"hidden", "crimson", "lost", "final", "empire", "mirror", "river",
	"promise", "horizon", "signal", "richard", "childress", "racing",
	"hendrick", "motorsports", "joe", "gibbs", "penske", "roush", "fenway",
	"stewart", "haas", "since", "yelping", "compliment", "useful",
	"sunset", "downtown", "noodle", "diner",
}

// homophones maps a spoken word to plausible mis-transcriptions. The table
// drives the homophony error classes of Table 1 in both directions
// (keyword → literal like sum → some, literal → keyword like wear → where).
var homophones = map[string][]string{
	"sum":       {"some"},
	"some":      {"sum"},
	"where":     {"wear", "ware"},
	"wear":      {"where"},
	"for":       {"four", "4"},
	"four":      {"for"},
	"to":        {"two", "too"},
	"two":       {"to", "too"},
	"by":        {"buy", "bye"},
	"buy":       {"by"},
	"in":        {"inn"},
	"inn":       {"in"},
	"one":       {"won"},
	"won":       {"one"},
	"eight":     {"ate"},
	"ate":       {"eight"},
	"a":         {"eight", "hey"},
	"max":       {"macs", "marks"},
	"min":       {"men", "mean"},
	"avg":       {"average"},
	"john":      {"jon"},
	"jon":       {"john"},
	"sales":     {"sails"},
	"sails":     {"sales"},
	"right":     {"write"},
	"write":     {"right"},
	"night":     {"knight"},
	"knight":    {"night"},
	"son":       {"sun"},
	"sun":       {"son"},
	"their":     {"there"},
	"there":     {"their"},
	"higher":    {"hire"},
	"hire":      {"higher"},
	"role":      {"roll"},
	"roll":      {"role"},
	"week":      {"weak"},
	"weak":      {"week"},
	"male":      {"mail"},
	"mail":      {"male"},
	"great":     {"grate"},
	"seen":      {"scene"},
	"be":        {"bee", "b"},
	"see":       {"sea", "c"},
	"you":       {"u"},
	"are":       {"r"},
	"dot":       {"dought"},
	"star":      {"stars"},
	"count":     {"counts", "kount"},
	"salaries":  {"celeries"},
	"employees": {"employers"},
	"employers": {"employees"},
	"titles":    {"title's", "tittles"},
}

func newVocabSet() map[string]bool {
	m := make(map[string]bool, len(baseVocabulary))
	for _, w := range baseVocabulary {
		m[strings.ToLower(w)] = true
	}
	return m
}
