// Package asr simulates an automatic speech recognition engine as a seeded
// noisy text→text channel over the verbalized word stream, standing in for
// Azure Custom Speech / Google Cloud Speech (which the paper calls over the
// network). The simulator reproduces the paper's Table 1 error taxonomy
// class by class:
//
//   - homophone substitutions in both directions (sum → some, wear → where);
//   - out-of-vocabulary corruption: OOV words are replaced by their nearest
//     in-vocabulary phonetic neighbour (custid → custody) or split;
//   - inverse text normalization of numbers with re-segmentation errors
//     ("forty five thousand three hundred ten" → "45000 310");
//   - date mangling ("may seventh nineteen ninety one" → "may 07 90 91");
//   - ordinary word drops and insertions.
//
// Engines are deterministic: the same input words, engine seed, and
// alternative index always produce the same transcript. Training an engine
// on a query corpus (Azure Custom Speech style) extends its vocabulary and
// lowers its error rate on trained words, which is how the paper's
// Employees-train / Employees-test / Yelp generalization gradient arises.
package asr

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"speakql/internal/metrics"
	"speakql/internal/phonetic"
	"speakql/internal/speech"
	"speakql/internal/sqltoken"
)

// Profile holds the per-class error rates of one simulated engine.
type Profile struct {
	Name string

	KeywordErr        float64 // P(error) for a spoken SQL keyword word
	SplCharErr        float64 // P(error) for a special-character phrase word
	LiteralErr        float64 // P(error) for an in-vocabulary literal word
	TrainedLiteralErr float64 // P(error) for a literal word seen in training

	DropProb   float64 // P(word silently dropped), on error
	InsertProb float64 // P(stray filler word inserted after a word)

	NumberResegmentProb float64 // P(number run split at a scale boundary)
	NumberKeepWordsProb float64 // P(number left as words instead of ITN)
	NumberGarbleProb    float64 // P(one digit misheard in a numeral)
	DigitsJoinProb      float64 // P(digit-spelled run joined into one numeral)
	DateMangleProb      float64 // P(date emitted in the mangled Table 1 form)
	DateDropPartProb    float64 // P(a date component omitted entirely)

	SymbolHints bool // GCS-style: splchar phrases emitted as symbols

	HomophoneBias float64 // on error, P(use a homophone when one exists)
}

// ACSProfile models Azure Custom Speech with the search-and-dictation
// acoustic model: strong on keywords, special characters left as words,
// trainable language model. Rates are calibrated so raw-engine accuracy
// lands near Table 4's ACS row.
func ACSProfile() Profile {
	return Profile{
		Name:                "ACS",
		KeywordErr:          0.05,
		SplCharErr:          0.02,
		LiteralErr:          0.20,
		TrainedLiteralErr:   0.10,
		DropProb:            0.30,
		InsertProb:          0.008,
		NumberResegmentProb: 0.33,
		NumberKeepWordsProb: 0.05,
		NumberGarbleProb:    0.45,
		DigitsJoinProb:      0.45,
		DateMangleProb:      0.30,
		DateDropPartProb:    0.12,
		SymbolHints:         false,
		HomophoneBias:       0.75,
	}
}

// GCSProfile models Google Cloud Speech with keyword/splchar hints: special
// characters often arrive as symbols and keyword precision differs, but
// literals suffer more (Table 4's GCS row).
func GCSProfile() Profile {
	return Profile{
		Name:                "GCS",
		KeywordErr:          0.10,
		SplCharErr:          0.02,
		LiteralErr:          0.20,
		TrainedLiteralErr:   0.20, // no custom training
		DropProb:            0.30,
		InsertProb:          0.01,
		NumberResegmentProb: 0.40,
		NumberKeepWordsProb: 0.05,
		NumberGarbleProb:    0.50,
		DigitsJoinProb:      0.35,
		DateMangleProb:      0.38,
		DateDropPartProb:    0.15,
		SymbolHints:         true,
		HomophoneBias:       0.70,
	}
}

// Engine is one simulated ASR engine instance.
type Engine struct {
	profile Profile
	seed    int64
	vocab   map[string]bool
	trained map[string]bool
	phIndex map[string][]string // metaphone key → sorted in-vocab words
}

// NewEngine creates an engine with the given profile and determinism seed.
func NewEngine(p Profile, seed int64) *Engine {
	e := &Engine{
		profile: p,
		seed:    seed,
		vocab:   newVocabSet(),
		trained: make(map[string]bool),
	}
	e.rebuildPhoneticIndex()
	return e
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.profile }

// InVocabulary reports whether the engine can transcribe word verbatim.
func (e *Engine) InVocabulary(word string) bool {
	return e.vocab[strings.ToLower(word)]
}

// TrainWords adds words to the engine's custom language model: they become
// in-vocabulary and get the (lower) trained error rate. This mirrors
// training Azure's Custom Speech Service on the spoken-SQL corpus
// (Section 6.1, step 5).
func (e *Engine) TrainWords(words []string) {
	for _, w := range words {
		lw := strings.ToLower(w)
		if lw == "" {
			continue
		}
		e.vocab[lw] = true
		e.trained[lw] = true
	}
	e.rebuildPhoneticIndex()
}

// TrainQueries verbalizes SQL queries and trains on the resulting words,
// and additionally on the raw literal tokens themselves ("FromDate",
// "d002"): a custom language model learns whole schema identifiers, which
// is what lets the trained engine emit them as single tokens even though a
// speaker utters them as several words.
func (e *Engine) TrainQueries(queries []string) {
	var words []string
	for _, q := range queries {
		words = append(words, speech.VerbalizeQuery(q)...)
		for _, tok := range sqltoken.TokenizeSQL(q) {
			if sqltoken.Classify(tok) == sqltoken.Literal {
				words = append(words, strings.ToLower(tok))
			}
		}
	}
	e.TrainWords(words)
}

// joinTrained reports the exclusive end index j > i such that the
// concatenation of spoken[i:j] is a trained vocabulary word (longest match,
// up to 3 words), or i when none is.
func (e *Engine) joinTrained(spoken []string, i int) int {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(spoken[i]))
	best := i
	for j := i + 1; j < len(spoken) && j-i < 3; j++ {
		sb.WriteString(strings.ToLower(spoken[j]))
		if e.trained[sb.String()] {
			best = j + 1
		}
	}
	return best
}

func (e *Engine) rebuildPhoneticIndex() {
	idx := make(map[string][]string)
	for w := range e.vocab {
		key := phonetic.Encode(w)
		idx[key] = append(idx[key], w)
	}
	for _, ws := range idx {
		sort.Strings(ws)
	}
	e.phIndex = idx
}

// Transcribe returns the engine's top transcription of the spoken words.
func (e *Engine) Transcribe(spoken []string) string {
	return e.transcribeOne(spoken, 0)
}

// TranscribeN returns the n-best transcription alternatives, most likely
// first. Alternatives differ in their noise realization, the way real
// engines' n-best lists differ in uncertain regions.
func (e *Engine) TranscribeN(spoken []string, n int) []string {
	outs := make([]string, n)
	for i := 0; i < n; i++ {
		outs[i] = e.transcribeOne(spoken, i)
	}
	return outs
}

func (e *Engine) rngFor(spoken []string, alt int) *rand.Rand {
	h := fnv.New64a()
	for _, w := range spoken {
		h.Write([]byte(w))
		h.Write([]byte{0})
	}
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64()) ^ int64(alt)*0x9E3779B9))
}

func (e *Engine) transcribeOne(spoken []string, alt int) string {
	rng := e.rngFor(spoken, alt)
	var out []string
	i := 0
	for i < len(spoken) {
		// Spoken date?
		if d, used, ok := detectSpokenDate(spoken[i:]); ok {
			out = append(out, e.emitDate(rng, d)...)
			i += used
			continue
		}
		// Digit-spelled run ("one seven two nine")?
		if run := digitRunLen(spoken[i:]); run >= 2 {
			out = append(out, e.emitDigits(rng, spoken[i:i+run])...)
			i += run
			continue
		}
		// Scale-number run ("forty five thousand three hundred ten")?
		if run := numberRunLen(spoken[i:]); run >= 1 {
			out = append(out, e.emitNumber(rng, spoken[i:i+run])...)
			i += run
			continue
		}
		// Custom language model: a trained multi-word identifier is
		// recognized as the single token it was trained as ("from date" →
		// "fromdate"), the mechanism behind Azure Custom Speech detecting
		// its schema literals far better than unseen schemas' (Section 6.3).
		if j := e.joinTrained(spoken, i); j > i+1 && rng.Float64() < 0.65 {
			var sb strings.Builder
			for _, w := range spoken[i:j] {
				sb.WriteString(strings.ToLower(w))
			}
			out = append(out, sb.String())
			i = j
			continue
		}
		// Symbol hints consume whole splchar phrases.
		if e.profile.SymbolHints {
			if sym, used := symbolPhrase(spoken[i:]); used > 0 && rng.Float64() > e.profile.SplCharErr {
				out = append(out, sym)
				i += used
				continue
			}
		}
		out = append(out, e.emitWord(rng, spoken[i])...)
		i++
		if rng.Float64() < e.profile.InsertProb {
			out = append(out, fillers[rng.Intn(len(fillers))])
		}
	}
	return strings.Join(out, " ")
}

var fillers = []string{"the", "a", "uh", "and"}

// wordClass distinguishes per-class error rates.
var keywordWords = map[string]bool{
	"select": true, "from": true, "where": true, "order": true, "group": true,
	"by": true, "natural": true, "join": true, "and": true, "or": true,
	"not": true, "limit": true, "between": true, "in": true, "sum": true,
	"count": true, "max": true, "avg": true, "min": true,
}

var splCharPhraseWords = map[string]bool{
	"star": true, "equals": true, "less": true, "greater": true, "than": true,
	"open": true, "close": true, "parenthesis": true, "comma": true, "dot": true,
}

func (e *Engine) errRate(word string) float64 {
	switch {
	case keywordWords[word]:
		return e.profile.KeywordErr
	case splCharPhraseWords[word]:
		return e.profile.SplCharErr
	case e.trained[word]:
		return e.profile.TrainedLiteralErr
	default:
		return e.profile.LiteralErr
	}
}

// emitWord transcribes one ordinary word with the per-class noise model.
func (e *Engine) emitWord(rng *rand.Rand, word string) []string {
	lw := strings.ToLower(word)
	if !e.vocab[lw] {
		return e.corruptOOV(rng, lw)
	}
	if rng.Float64() >= e.errRate(lw) {
		return []string{lw}
	}
	// Error: homophone, drop, or phonetic neighbour.
	if hs := homophones[lw]; len(hs) > 0 && rng.Float64() < e.profile.HomophoneBias {
		return []string{hs[rng.Intn(len(hs))]}
	}
	if rng.Float64() < e.profile.DropProb {
		return nil
	}
	return []string{e.phoneticNeighbor(rng, lw)}
}

// corruptOOV handles the unbounded-vocabulary problem from the engine's
// side: an out-of-vocabulary word can never be transcribed verbatim. It is
// replaced by its nearest in-vocabulary phonetic neighbour, split into two
// corrupted halves, or dropped.
func (e *Engine) corruptOOV(rng *rand.Rand, lw string) []string {
	switch {
	case len(lw) > 7 && rng.Float64() < 0.35:
		// Split into halves, each resolved independently (Table 1's token
		// splitting: one SQL token becomes a series of ASR tokens).
		mid := len(lw) / 2
		out := e.corruptInVocabOrNeighbor(rng, lw[:mid])
		return append(out, e.corruptInVocabOrNeighbor(rng, lw[mid:])...)
	case rng.Float64() < 0.12:
		return nil // dropped entirely
	default:
		return []string{e.phoneticNeighbor(rng, lw)}
	}
}

func (e *Engine) corruptInVocabOrNeighbor(rng *rand.Rand, frag string) []string {
	if e.vocab[frag] {
		return []string{frag}
	}
	return []string{e.phoneticNeighbor(rng, frag)}
}

// phoneticNeighbor returns an in-vocabulary word that sounds like lw:
// first an exact metaphone-key match, then the closest key by character
// edit distance on the encodings. Deterministic given the rng state.
func (e *Engine) phoneticNeighbor(rng *rand.Rand, lw string) string {
	key := phonetic.Encode(lw)
	if ws := e.phIndex[key]; len(ws) > 0 {
		// Prefer a different word when one exists (the engine "heard"
		// something, just not this token).
		cands := make([]string, 0, len(ws))
		for _, w := range ws {
			if w != lw {
				cands = append(cands, w)
			}
		}
		if len(cands) == 0 {
			cands = ws
		}
		return cands[rng.Intn(len(cands))]
	}
	// Nearest key scan. The vocabulary is small (~10^3), so a linear scan
	// is fine and keeps the choice exact.
	bestDist := 1 << 30
	var best []string
	for k, ws := range e.phIndex {
		d := metrics.CharEditDistance(key, k)
		if d < bestDist {
			bestDist = d
			best = append(best[:0], ws...)
		} else if d == bestDist {
			best = append(best, ws...)
		}
	}
	if len(best) == 0 {
		return lw
	}
	sort.Strings(best)
	return best[rng.Intn(len(best))]
}

// emitNumber applies inverse text normalization to a spoken number run,
// with the paper's re-segmentation error: a pause-like split at a scale
// boundary yields two numerals ("45000 310").
func (e *Engine) emitNumber(rng *rand.Rand, run []string) []string {
	if rng.Float64() < e.profile.NumberKeepWordsProb {
		out := make([]string, len(run))
		copy(out, run)
		return out
	}
	if split := scaleSplitPoint(run); split > 0 && rng.Float64() < e.profile.NumberResegmentProb {
		a, okA := speech.WordsToNumber(run[:split])
		b, okB := speech.WordsToNumber(run[split:])
		if okA && okB {
			if rng.Float64() < 0.2 { // the pause swallows the second fragment
				return []string{e.garbleNumeral(rng, strconv.FormatInt(a, 10))}
			}
			return []string{e.garbleNumeral(rng, strconv.FormatInt(a, 10)),
				e.garbleNumeral(rng, strconv.FormatInt(b, 10))}
		}
	}
	if n, ok := speech.WordsToNumber(run); ok {
		return []string{e.garbleNumeral(rng, strconv.FormatInt(n, 10))}
	}
	out := make([]string, len(run))
	copy(out, run)
	return out
}

// garbleNumeral mishears one digit with NumberGarbleProb — real engines
// confuse fifteen/fifty, seven/eleven, and similar pairs, so the recovered
// numeral is close but wrong.
func (e *Engine) garbleNumeral(rng *rand.Rand, numeral string) string {
	if len(numeral) == 0 || rng.Float64() >= e.profile.NumberGarbleProb {
		return numeral
	}
	b := []byte(numeral)
	i := rng.Intn(len(b))
	if b[i] < '0' || b[i] > '9' {
		return numeral
	}
	d := byte('0' + rng.Intn(10))
	for d == b[i] {
		d = byte('0' + rng.Intn(10))
	}
	b[i] = d
	return string(b)
}

// emitDigits transcribes a digit-spelled run: joined into one numeral
// ("1729") or as separate digit numerals ("1 7 2 9"), per Table 1's
// CUSTID_1729A example.
func (e *Engine) emitDigits(rng *rand.Rand, run []string) []string {
	var digits strings.Builder
	for _, w := range run {
		n, _ := speech.WordsToNumber([]string{w})
		digits.WriteByte(byte('0' + n))
	}
	if rng.Float64() < e.profile.DigitsJoinProb {
		return []string{digits.String()}
	}
	out := make([]string, 0, digits.Len())
	for i := 0; i < digits.Len(); i++ {
		out = append(out, digits.String()[i:i+1])
	}
	return out
}

// emitDate transcribes a recognized spoken date: usually the normalized
// "month d yyyy" form, sometimes the mangled two-fragment year of Table 1,
// sometimes with a component dropped.
func (e *Engine) emitDate(rng *rand.Rand, d speech.Date) []string {
	month := speech.MonthName(d.Month)
	day := strconv.Itoa(d.Day)
	year := strconv.Itoa(d.Year)
	switch {
	case rng.Float64() < e.profile.DateDropPartProb:
		// A component is lost.
		switch rng.Intn(3) {
		case 0:
			return []string{day, year}
		case 1:
			return []string{month, year}
		default:
			return []string{month, day}
		}
	case rng.Float64() < e.profile.DateMangleProb:
		// Table 1's "may 07 90 91": the spoken year pair becomes two
		// two-digit fragments.
		lo := d.Year % 100
		return []string{month, fmt.Sprintf("%02d", d.Day),
			strconv.Itoa(lo - 1 + 2*rng.Intn(2)), strconv.Itoa(lo)}
	default:
		return []string{month, day, year}
	}
}

// --- stream segmentation helpers ---

var numberWordSet = func() map[string]bool {
	m := map[string]bool{"hundred": true, "thousand": true, "million": true, "billion": true}
	for _, w := range []string{"zero", "one", "two", "three", "four", "five",
		"six", "seven", "eight", "nine", "ten", "eleven", "twelve", "thirteen",
		"fourteen", "fifteen", "sixteen", "seventeen", "eighteen", "nineteen",
		"twenty", "thirty", "forty", "fifty", "sixty", "seventy", "eighty",
		"ninety"} {
		m[w] = true
	}
	return m
}()

var digitWordSet = map[string]bool{"zero": true, "oh": true, "one": true,
	"two": true, "three": true, "four": true, "five": true, "six": true,
	"seven": true, "eight": true, "nine": true}

// digitRunLen returns the length of the digit-spelled run at the head of
// toks, but only when it cannot be a scale number ("one seven two nine" is a
// digit run; "forty five" is not; a lone "seven" is ambiguous and treated as
// a scale number).
func digitRunLen(toks []string) int {
	n := 0
	for _, t := range toks {
		if !digitWordSet[strings.ToLower(t)] {
			break
		}
		n++
	}
	if n >= 2 {
		return n
	}
	return 0
}

// numberRunLen returns the maximal spoken-number run at the head of toks.
func numberRunLen(toks []string) int {
	n := 0
	for _, t := range toks {
		if !numberWordSet[strings.ToLower(t)] {
			break
		}
		n++
	}
	// Trim a trailing "and"-less dangling scale pattern is unnecessary:
	// WordsToNumber validates the run later.
	return n
}

// scaleSplitPoint finds a "thousand"/"million" boundary inside a number run
// suitable for the re-segmentation error; returns 0 when none.
func scaleSplitPoint(run []string) int {
	for i, w := range run {
		if (w == "thousand" || w == "million") && i+1 < len(run) {
			return i + 1
		}
	}
	return 0
}

// detectSpokenDate recognizes a spoken date prefix: month name, day, year.
// Returns the parsed date and the number of tokens consumed.
func detectSpokenDate(toks []string) (speech.Date, int, bool) {
	if len(toks) < 3 || speech.MonthNumber(toks[0]) == 0 {
		return speech.Date{}, 0, false
	}
	// Try the longest plausible window first (month + 2-word day + 4-word
	// year = 7), shrinking until a parse succeeds.
	max := 7
	if len(toks) < max {
		max = len(toks)
	}
	for w := max; w >= 3; w-- {
		if d, ok := speech.ParseSpokenDate(toks[:w]); ok {
			return d, w, true
		}
	}
	return speech.Date{}, 0, false
}

// symbolPhrase matches a splchar phrase at the head of toks and returns the
// symbol and consumed length (GCS hint mode).
func symbolPhrase(toks []string) (string, int) {
	phrases := []struct {
		words []string
		sym   string
	}{
		{[]string{"less", "than"}, "<"},
		{[]string{"greater", "than"}, ">"},
		{[]string{"open", "parenthesis"}, "("},
		{[]string{"close", "parenthesis"}, ")"},
		{[]string{"equals"}, "="},
		{[]string{"comma"}, ","},
		{[]string{"star"}, "*"},
		{[]string{"dot"}, "."},
	}
	for _, p := range phrases {
		if len(toks) < len(p.words) {
			continue
		}
		ok := true
		for i, w := range p.words {
			if !strings.EqualFold(toks[i], w) {
				ok = false
				break
			}
		}
		if ok {
			return p.sym, len(p.words)
		}
	}
	return "", 0
}
