// Package phonetic implements the Metaphone phonetic algorithm (Philips,
// 1990) used by SpeakQL's literal determination (Section 4). Metaphone
// encodes an English word into a string over 16 consonant symbols
// (0BFHJKLMNPRSXTWY, with "0" for the th sound and X for sh/ch) so that
// words that sound alike encode alike: Employees → EMPLYS, Salaries → SLRS,
// FirstName → FRSTNM. Unlike the classic 4-character variant, SpeakQL needs
// the full-length encoding, so no truncation is applied.
package phonetic

import "strings"

// Encode returns the Metaphone encoding of word. Non-ASCII-letter runes are
// ignored except digits, which are passed through unchanged so that tokens
// like "d002" or "1993" remain distinguishable — SpeakQL indexes schema
// literals that freely mix letters and digits.
func Encode(word string) string {
	w := normalize(word)
	if len(w) == 0 {
		return ""
	}
	w = applyInitialExceptions(w)
	var out strings.Builder
	n := len(w)
	for i := 0; i < n; i++ {
		c := w[i]
		// Skip duplicate adjacent letters, except C (as in "accident")
		// and digits, which carry distinguishing information verbatim.
		if i > 0 && c == w[i-1] && c != 'C' && !(c >= '0' && c <= '9') {
			continue
		}
		switch {
		case c >= '0' && c <= '9':
			out.WriteByte(c)
		case isVowel(c):
			if i == 0 {
				out.WriteByte(c)
			}
		case c == 'B':
			// Silent in terminal -MB ("dumb", "thumb").
			if !(i == n-1 && i > 0 && w[i-1] == 'M') {
				out.WriteByte('B')
			}
		case c == 'C':
			switch {
			case hasAt(w, i, "CIA"):
				out.WriteByte('X')
			case hasAt(w, i, "CH"):
				if i > 0 && hasAt(w, i-1, "SCH") {
					out.WriteByte('K')
				} else {
					out.WriteByte('X')
				}
			case i+1 < n && (w[i+1] == 'I' || w[i+1] == 'E' || w[i+1] == 'Y'):
				if !(i > 0 && w[i-1] == 'S') { // -SCI-, -SCE-, -SCY-: C silent
					out.WriteByte('S')
				}
			default:
				out.WriteByte('K')
			}
		case c == 'D':
			if i+2 < n && w[i+1] == 'G' && (w[i+2] == 'E' || w[i+2] == 'Y' || w[i+2] == 'I') {
				out.WriteByte('J') // "edge", "dodgy"
			} else {
				out.WriteByte('T')
			}
		case c == 'F':
			out.WriteByte('F')
		case c == 'G':
			switch {
			case hasAt(w, i, "GH"):
				// Silent unless at end or before a vowel ("ghost" vs "night").
				if i+2 >= n || isVowel(w[i+2]) {
					out.WriteByte('K')
				}
			case hasAt(w, i, "GN"):
				// Silent in -GN, -GNED ("gnome" handled by initial rule,
				// "sign", "signed").
			case i+1 < n && (w[i+1] == 'I' || w[i+1] == 'E' || w[i+1] == 'Y'):
				if i > 0 && w[i-1] == 'D' {
					// already emitted J for the DGE/DGI/DGY cluster
				} else {
					out.WriteByte('J')
				}
			default:
				if !(i > 0 && w[i-1] == 'D' && i+1 < n && (w[i+1] == 'E' || w[i+1] == 'Y' || w[i+1] == 'I')) {
					out.WriteByte('K')
				}
			}
		case c == 'H':
			// Silent after a vowel when no vowel follows, and silent inside
			// the digraphs already consumed (CH, SH, PH, TH, GH, WH).
			if i > 0 && strings.IndexByte("CSPTGW", w[i-1]) >= 0 {
				break
			}
			if i > 0 && isVowel(w[i-1]) && (i+1 >= n || !isVowel(w[i+1])) {
				break
			}
			out.WriteByte('H')
		case c == 'J':
			out.WriteByte('J')
		case c == 'K':
			if !(i > 0 && w[i-1] == 'C') { // silent after C ("tackle")
				out.WriteByte('K')
			}
		case c == 'L':
			out.WriteByte('L')
		case c == 'M':
			out.WriteByte('M')
		case c == 'N':
			out.WriteByte('N')
		case c == 'P':
			if i+1 < n && w[i+1] == 'H' {
				out.WriteByte('F') // "phone"
			} else {
				out.WriteByte('P')
			}
		case c == 'Q':
			out.WriteByte('K')
		case c == 'R':
			out.WriteByte('R')
		case c == 'S':
			switch {
			case i+1 < n && w[i+1] == 'H':
				out.WriteByte('X') // "ship"
			case hasAt(w, i, "SIO") || hasAt(w, i, "SIA"):
				out.WriteByte('X') // "vision" (approx.), "Asia"
			default:
				out.WriteByte('S')
			}
		case c == 'T':
			switch {
			case hasAt(w, i, "TIA") || hasAt(w, i, "TIO"):
				out.WriteByte('X') // "nation"
			case i+1 < n && w[i+1] == 'H':
				out.WriteByte('0') // "thing" → theta
			default:
				out.WriteByte('T')
			}
		case c == 'V':
			out.WriteByte('F')
		case c == 'W':
			if i+1 < n && isVowel(w[i+1]) {
				out.WriteByte('W') // silent otherwise ("law")
			}
		case c == 'X':
			out.WriteString("KS")
		case c == 'Y':
			if i+1 < n && isVowel(w[i+1]) {
				out.WriteByte('Y') // silent otherwise ("salary")
			}
		case c == 'Z':
			out.WriteByte('S')
		}
	}
	return out.String()
}

// EncodeTokens encodes the concatenation of the tokens as one word. SpeakQL
// compares multi-word ASR fragments against single schema identifiers
// ("first name" vs FirstName); encoding the joined string — rather than
// joining per-token encodings — keeps Metaphone's word-level rules (initial
// vowels, duplicate letters) consistent with how the identifier itself is
// encoded, so "department employee" and DepartmentEmployee agree exactly.
func EncodeTokens(tokens []string) string {
	return Encode(strings.Join(tokens, ""))
}

// normalize upper-cases and strips everything but ASCII letters and digits.
// Identifier separators (_, -) act as word boundaries for the duplicate rule
// but contribute no sound, so they are simply removed.
func normalize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z':
			b.WriteByte(c - 'a' + 'A')
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		}
	}
	return b.String()
}

// applyInitialExceptions handles the word-initial silent-letter clusters.
func applyInitialExceptions(w string) string {
	switch {
	case strings.HasPrefix(w, "AE"),
		strings.HasPrefix(w, "GN"),
		strings.HasPrefix(w, "KN"),
		strings.HasPrefix(w, "PN"),
		strings.HasPrefix(w, "WR"):
		return w[1:]
	case strings.HasPrefix(w, "WH"):
		return "W" + w[2:]
	case strings.HasPrefix(w, "X"):
		return "S" + w[1:]
	default:
		return w
	}
}

func isVowel(c byte) bool {
	switch c {
	case 'A', 'E', 'I', 'O', 'U':
		return true
	}
	return false
}

func hasAt(w string, i int, pat string) bool {
	return i+len(pat) <= len(w) && w[i:i+len(pat)] == pat
}
