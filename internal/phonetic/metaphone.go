// Package phonetic implements the Metaphone phonetic algorithm (Philips,
// 1990) used by SpeakQL's literal determination (Section 4). Metaphone
// encodes an English word into a string over 16 consonant symbols
// (0BFHJKLMNPRSXTWY, with "0" for the th sound and X for sh/ch) so that
// words that sound alike encode alike: Employees → EMPLYS, Salaries → SLRS,
// FirstName → FRSTNM. Unlike the classic 4-character variant, SpeakQL needs
// the full-length encoding, so no truncation is applied.
package phonetic

import "strings"

// Encode returns the Metaphone encoding of word. Non-ASCII-letter runes are
// ignored except digits, which are passed through unchanged so that tokens
// like "d002" or "1993" remain distinguishable — SpeakQL indexes schema
// literals that freely mix letters and digits.
func Encode(word string) string {
	return string(AppendEncode(nil, word))
}

// AppendEncode appends word's Metaphone encoding to dst and returns the
// extended slice, exactly append-style. The output bytes are identical to
// Encode's; the point of this variant is the literal-voting hot loop, which
// encodes every enumerated transcript substring and must not allocate at
// steady state — it hands in a pooled buffer here instead of materializing
// a string per substring. word may be a string or a byte slice (the voting
// scratch holds candidate text as subslices of one arena).
func AppendEncode[T ~string | ~[]byte](dst []byte, word T) []byte {
	// Normalize into a stack buffer: upper-case ASCII letters, keep digits,
	// drop everything else (identifier separators contribute no sound).
	var nb [64]byte
	w := nb[:0]
	for i := 0; i < len(word); i++ {
		c := word[i]
		switch {
		case c >= 'a' && c <= 'z':
			w = append(w, c-'a'+'A')
		case c >= 'A' && c <= 'Z':
			w = append(w, c)
		case c >= '0' && c <= '9':
			w = append(w, c)
		}
	}
	if len(w) == 0 {
		return dst
	}
	w = applyInitialExceptions(w)
	n := len(w)
	for i := 0; i < n; i++ {
		c := w[i]
		// Skip duplicate adjacent letters, except C (as in "accident")
		// and digits, which carry distinguishing information verbatim.
		if i > 0 && c == w[i-1] && c != 'C' && !(c >= '0' && c <= '9') {
			continue
		}
		switch {
		case c >= '0' && c <= '9':
			dst = append(dst, c)
		case isVowel(c):
			if i == 0 {
				dst = append(dst, c)
			}
		case c == 'B':
			// Silent in terminal -MB ("dumb", "thumb").
			if !(i == n-1 && i > 0 && w[i-1] == 'M') {
				dst = append(dst, 'B')
			}
		case c == 'C':
			switch {
			case hasAt(w, i, "CIA"):
				dst = append(dst, 'X')
			case hasAt(w, i, "CH"):
				if i > 0 && hasAt(w, i-1, "SCH") {
					dst = append(dst, 'K')
				} else {
					dst = append(dst, 'X')
				}
			case i+1 < n && (w[i+1] == 'I' || w[i+1] == 'E' || w[i+1] == 'Y'):
				if !(i > 0 && w[i-1] == 'S') { // -SCI-, -SCE-, -SCY-: C silent
					dst = append(dst, 'S')
				}
			default:
				dst = append(dst, 'K')
			}
		case c == 'D':
			if i+2 < n && w[i+1] == 'G' && (w[i+2] == 'E' || w[i+2] == 'Y' || w[i+2] == 'I') {
				dst = append(dst, 'J') // "edge", "dodgy"
			} else {
				dst = append(dst, 'T')
			}
		case c == 'F':
			dst = append(dst, 'F')
		case c == 'G':
			switch {
			case hasAt(w, i, "GH"):
				// Silent unless at end or before a vowel ("ghost" vs "night").
				if i+2 >= n || isVowel(w[i+2]) {
					dst = append(dst, 'K')
				}
			case hasAt(w, i, "GN"):
				// Silent in -GN, -GNED ("gnome" handled by initial rule,
				// "sign", "signed").
			case i+1 < n && (w[i+1] == 'I' || w[i+1] == 'E' || w[i+1] == 'Y'):
				if i > 0 && w[i-1] == 'D' {
					// already emitted J for the DGE/DGI/DGY cluster
				} else {
					dst = append(dst, 'J')
				}
			default:
				if !(i > 0 && w[i-1] == 'D' && i+1 < n && (w[i+1] == 'E' || w[i+1] == 'Y' || w[i+1] == 'I')) {
					dst = append(dst, 'K')
				}
			}
		case c == 'H':
			// Silent after a vowel when no vowel follows, and silent inside
			// the digraphs already consumed (CH, SH, PH, TH, GH, WH).
			if i > 0 && strings.IndexByte("CSPTGW", w[i-1]) >= 0 {
				break
			}
			if i > 0 && isVowel(w[i-1]) && (i+1 >= n || !isVowel(w[i+1])) {
				break
			}
			dst = append(dst, 'H')
		case c == 'J':
			dst = append(dst, 'J')
		case c == 'K':
			if !(i > 0 && w[i-1] == 'C') { // silent after C ("tackle")
				dst = append(dst, 'K')
			}
		case c == 'L':
			dst = append(dst, 'L')
		case c == 'M':
			dst = append(dst, 'M')
		case c == 'N':
			dst = append(dst, 'N')
		case c == 'P':
			if i+1 < n && w[i+1] == 'H' {
				dst = append(dst, 'F') // "phone"
			} else {
				dst = append(dst, 'P')
			}
		case c == 'Q':
			dst = append(dst, 'K')
		case c == 'R':
			dst = append(dst, 'R')
		case c == 'S':
			switch {
			case i+1 < n && w[i+1] == 'H':
				dst = append(dst, 'X') // "ship"
			case hasAt(w, i, "SIO") || hasAt(w, i, "SIA"):
				dst = append(dst, 'X') // "vision" (approx.), "Asia"
			default:
				dst = append(dst, 'S')
			}
		case c == 'T':
			switch {
			case hasAt(w, i, "TIA") || hasAt(w, i, "TIO"):
				dst = append(dst, 'X') // "nation"
			case i+1 < n && w[i+1] == 'H':
				dst = append(dst, '0') // "thing" → theta
			default:
				dst = append(dst, 'T')
			}
		case c == 'V':
			dst = append(dst, 'F')
		case c == 'W':
			if i+1 < n && isVowel(w[i+1]) {
				dst = append(dst, 'W') // silent otherwise ("law")
			}
		case c == 'X':
			dst = append(dst, 'K', 'S')
		case c == 'Y':
			if i+1 < n && isVowel(w[i+1]) {
				dst = append(dst, 'Y') // silent otherwise ("salary")
			}
		case c == 'Z':
			dst = append(dst, 'S')
		}
	}
	return dst
}

// EncodeTokens encodes the concatenation of the tokens as one word. SpeakQL
// compares multi-word ASR fragments against single schema identifiers
// ("first name" vs FirstName); encoding the joined string — rather than
// joining per-token encodings — keeps Metaphone's word-level rules (initial
// vowels, duplicate letters) consistent with how the identifier itself is
// encoded, so "department employee" and DepartmentEmployee agree exactly.
func EncodeTokens(tokens []string) string {
	return Encode(strings.Join(tokens, ""))
}

// applyInitialExceptions handles the word-initial silent-letter clusters.
// It rewrites the normalized scratch in place (dropping or substituting the
// first letter) so the append-based encoder stays allocation-free.
func applyInitialExceptions(w []byte) []byte {
	if w[0] == 'X' {
		w[0] = 'S'
		return w
	}
	switch {
	case hasAt(w, 0, "AE"), hasAt(w, 0, "GN"), hasAt(w, 0, "KN"),
		hasAt(w, 0, "PN"), hasAt(w, 0, "WR"):
		return w[1:]
	case hasAt(w, 0, "WH"):
		w[1] = 'W'
		return w[1:]
	default:
		return w
	}
}

func isVowel(c byte) bool {
	switch c {
	case 'A', 'E', 'I', 'O', 'U':
		return true
	}
	return false
}

func hasAt(w []byte, i int, pat string) bool {
	return i+len(pat) <= len(w) && string(w[i:i+len(pat)]) == pat
}
