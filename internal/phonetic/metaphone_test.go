package phonetic

import (
	"strings"
	"testing"
	"testing/quick"
)

// The paper gives explicit encodings in Sections 4 and Appendix E.2; these
// must match exactly, since the worked examples of the literal-voting
// algorithm depend on them.
func TestPaperExamples(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Employees", "EMPLYS"},
		{"Salaries", "SLRS"},
		{"FirstName", "FRSTNM"},
		{"LastName", "LSTNM"},
		{"FROMDATE", "FRMTT"},
		{"TODATE", "TTT"},
		{"FRONT", "FRNT"},
		{"DATE", "TT"},
		{"FRONTDATE", "FRNTTT"},
		{"RUM", "RM"},
		{"RUMDATE", "RMTT"},
	}
	for _, c := range cases {
		if got := Encode(c.in); got != c.want {
			t.Errorf("Encode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Homophone pairs from the paper's error taxonomy (Table 1 and the running
// example) must encode identically — that is the property literal
// determination relies on.
func TestHomophonesEncodeEqually(t *testing.T) {
	pairs := [][2]string{
		{"sum", "some"},
		{"where", "wear"},
		{"sail", "sale"},
		{"by", "buy"},
		{"knight", "night"},
		{"write", "right"},
	}
	for _, p := range pairs {
		a, b := Encode(p[0]), Encode(p[1])
		if a != b {
			t.Errorf("Encode(%q)=%q != Encode(%q)=%q", p[0], a, p[1], b)
		}
	}
}

// Near-homophones that drive the running example: "employers" must be the
// closest encoding to "Employees" among the table names.
func TestRunningExample(t *testing.T) {
	heard := Encode("employers") // EMPLYRS
	emp := Encode("Employees")   // EMPLYS
	sal := Encode("Salaries")    // SLRS
	if d1, d2 := charEditDist(heard, emp), charEditDist(heard, sal); d1 >= d2 {
		t.Errorf("employers→Employees dist %d not < employers→Salaries dist %d", d1, d2)
	}
	heardSales := Encode("sales")
	salary := Encode("salary")
	if d1, d2 := charEditDist(heardSales, salary), charEditDist(heardSales, Encode("Gender")); d1 >= d2 {
		t.Errorf("sales should be closer to salary (%d) than to Gender (%d)", d1, d2)
	}
}

func TestGeneralWords(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"a", "A"},
		{"ship", "XP"},
		{"nation", "NXN"},
		{"thing", "0NK"},
		{"phone", "FN"},
		{"quick", "KK"},
		{"xylophone", "SLFN"},
		{"knee", "N"},
		{"gnome", "NM"},
		{"wrist", "RST"},
		{"vision", "FXN"},
		{"judge", "JJ"},
		{"school", "SKL"},
		{"church", "XRX"},
		{"dumb", "TM"},
		{"sign", "SN"},
		{"salary", "SLR"},
		{"gender", "JNTR"},
		{"accident", "AKSTNT"},
	}
	for _, c := range cases {
		if got := Encode(c.in); got != c.want {
			t.Errorf("Encode(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDigitsPassThrough(t *testing.T) {
	if got := Encode("1993"); got != "1993" {
		t.Errorf("Encode(1993) = %q", got)
	}
	got := Encode("d002")
	if !strings.Contains(got, "002") {
		t.Errorf("Encode(d002) = %q, digits lost", got)
	}
}

func TestIdentifierSeparatorsIgnored(t *testing.T) {
	if Encode("first_name") != Encode("FirstName") {
		t.Errorf("underscore changed encoding: %q vs %q",
			Encode("first_name"), Encode("FirstName"))
	}
	if Encode("from-date") != Encode("FromDate") {
		t.Errorf("hyphen changed encoding")
	}
}

func TestEncodeTokens(t *testing.T) {
	if got, want := EncodeTokens([]string{"first", "name"}), Encode("firstname"); got != want {
		t.Errorf("EncodeTokens(first,name) = %q, want %q", got, want)
	}
	if got, want := EncodeTokens([]string{"from", "date"}), "FRMTT"; got != want {
		t.Errorf("EncodeTokens(from,date) = %q, want %q", got, want)
	}
}

// Property tests.

func TestEncodeAlphabet(t *testing.T) {
	// Output alphabet is the 16 Metaphone symbols plus digits.
	const alpha = "0BFHJKLMNPRSTWXY" + "AEIOU" + "0123456789"
	f := func(s string) bool {
		for _, r := range Encode(s) {
			if !strings.ContainsRune(alpha, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeIdempotentOnCase(t *testing.T) {
	f := func(s string) bool {
		return Encode(strings.ToLower(s)) == Encode(strings.ToUpper(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := func(s string) bool { return Encode(s) == Encode(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeNoLongerThanDoubleInput(t *testing.T) {
	// Only X expands (to KS); the encoding can never exceed 2× input length.
	f := func(s string) bool { return len(Encode(s)) <= 2*len(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// charEditDist is a plain Levenshtein distance used only by tests here; the
// production version lives in internal/metrics.
func charEditDist(a, b string) int {
	m, n := len(a), len(b)
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = j
	}
	for i := 1; i <= m; i++ {
		cur[0] = i
		for j := 1; j <= n; j++ {
			c := 1
			if a[i-1] == b[j-1] {
				c = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+c)
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// AppendEncode must produce byte-identical output to Encode for any input,
// both from a string and from a byte-slice argument, and must honor
// append semantics on a non-empty dst.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	f := func(word string) bool {
		want := Encode(word)
		if got := string(AppendEncode(nil, word)); got != want {
			return false
		}
		if got := string(AppendEncode(nil, []byte(word))); got != want {
			return false
		}
		pre := AppendEncode([]byte("PFX"), word)
		return string(pre) == "PFX"+want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// With a pre-grown destination buffer, AppendEncode must not allocate — the
// literal-voting kernel calls it once per enumerated substring.
func TestAppendEncodeSteadyStateAllocs(t *testing.T) {
	dst := make([]byte, 0, 64)
	words := []string{"DepartmentEmployee", "first name", "salaries", "d002"}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, w := range words {
			dst = AppendEncode(dst[:0], w)
		}
	}); allocs != 0 {
		t.Errorf("AppendEncode allocs/op = %v, want 0", allocs)
	}
}
