package phonetic_test

import (
	"fmt"

	"speakql/internal/phonetic"
)

// The paper's Section 4 encodings.
func ExampleEncode() {
	fmt.Println(phonetic.Encode("Employees"))
	fmt.Println(phonetic.Encode("Salaries"))
	fmt.Println(phonetic.Encode("FirstName"))
	// Output:
	// EMPLYS
	// SLRS
	// FRSTNM
}

// Multi-word ASR fragments encode like the identifier they garble.
func ExampleEncodeTokens() {
	fmt.Println(phonetic.EncodeTokens([]string{"from", "date"}))
	fmt.Println(phonetic.Encode("FromDate"))
	// Output:
	// FRMTT
	// FRMTT
}
