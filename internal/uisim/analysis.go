package uisim

import (
	"math"
	"sort"
)

// QuerySummary aggregates trials for one query across participants — the
// rows behind Figure 7's three panels and Figure 12.
type QuerySummary struct {
	QueryID int
	Complex bool

	MedianSpeakQLSec float64 // Figure 7C "median time to completion"
	MedianTypingSec  float64
	Speedup          float64 // Figure 7A: typing / SpeakQL

	MedianSpeakQLEffort float64 // Figure 7C "median units of effort"
	MedianTypingEffort  float64
	EffortReduction     float64 // Figure 7B: typing / SpeakQL

	PctSpeaking float64 // Figure 12A: share of end-to-end time dictating
	PctKeyboard float64 // Figure 12B: share on the SQL keyboard
}

// Summarize reduces raw trials to per-query summaries, in query order.
func Summarize(trials []Trial) []QuerySummary {
	byQuery := map[int][]Trial{}
	for _, t := range trials {
		byQuery[t.QueryID] = append(byQuery[t.QueryID], t)
	}
	var ids []int
	for id := range byQuery {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []QuerySummary
	for _, id := range ids {
		var sqlSec, typSec, sqlEff, typEff []float64
		var speakShare, kbShare []float64
		complexQ := false
		for _, t := range byQuery[id] {
			complexQ = t.Complex
			if t.SpeakQL {
				sqlSec = append(sqlSec, t.Seconds)
				sqlEff = append(sqlEff, float64(t.Effort))
				if t.Seconds > 0 {
					speakShare = append(speakShare, t.SpeakSec/t.Seconds)
					kbShare = append(kbShare, t.KeyboardSec/t.Seconds)
				}
			} else {
				typSec = append(typSec, t.Seconds)
				typEff = append(typEff, float64(t.Effort))
			}
		}
		qs := QuerySummary{
			QueryID:             id,
			Complex:             complexQ,
			MedianSpeakQLSec:    median(sqlSec),
			MedianTypingSec:     median(typSec),
			MedianSpeakQLEffort: median(sqlEff),
			MedianTypingEffort:  median(typEff),
			PctSpeaking:         mean(speakShare),
			PctKeyboard:         mean(kbShare),
		}
		if qs.MedianSpeakQLSec > 0 {
			qs.Speedup = qs.MedianTypingSec / qs.MedianSpeakQLSec
		}
		if qs.MedianSpeakQLEffort > 0 {
			qs.EffortReduction = qs.MedianTypingEffort / qs.MedianSpeakQLEffort
		}
		out = append(out, qs)
	}
	return out
}

// MeanSpeedup averages per-query speedups over the selected queries
// (complexOnly filters; pass nil to include all).
func MeanSpeedup(sums []QuerySummary, include func(QuerySummary) bool) float64 {
	var vals []float64
	for _, s := range sums {
		if include == nil || include(s) {
			vals = append(vals, s.Speedup)
		}
	}
	return mean(vals)
}

// MeanEffortReduction averages per-query effort-reduction factors.
func MeanEffortReduction(sums []QuerySummary, include func(QuerySummary) bool) float64 {
	var vals []float64
	for _, s := range sums {
		if include == nil || include(s) {
			vals = append(vals, s.EffortReduction)
		}
	}
	return mean(vals)
}

// PairedDeltas extracts (typing − SpeakQL) differences per (participant,
// query) for the hypothesis tests of Section 6.4.
func PairedDeltas(trials []Trial, metric func(Trial) float64) []float64 {
	type key struct{ p, q int }
	speak := map[key]float64{}
	typed := map[key]float64{}
	for _, t := range trials {
		k := key{t.Participant, t.QueryID}
		if t.SpeakQL {
			speak[k] = metric(t)
		} else {
			typed[k] = metric(t)
		}
	}
	var deltas []float64
	for k, tv := range typed {
		if sv, ok := speak[k]; ok {
			deltas = append(deltas, tv-sv)
		}
	}
	sort.Float64s(deltas)
	return deltas
}

// SignTest returns the two-sided p-value of the exact binomial sign test on
// the paired deltas (zeros dropped).
func SignTest(deltas []float64) float64 {
	n, pos := 0, 0
	for _, d := range deltas {
		if d == 0 {
			continue
		}
		n++
		if d > 0 {
			pos++
		}
	}
	if n == 0 {
		return 1
	}
	k := pos
	if n-pos < k {
		k = n - pos
	}
	// P = 2 · Σ_{i≤k} C(n,i) / 2^n, capped at 1.
	p := 0.0
	for i := 0; i <= k; i++ {
		p += binomPMF(n, i)
	}
	p *= 2
	if p > 1 {
		p = 1
	}
	return p
}

func binomPMF(n, k int) float64 {
	// log-space for stability at n = 180.
	lg := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	return math.Exp(lg - float64(n)*math.Ln2)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// WilcoxonSignedRank returns the z statistic and approximate two-sided
// p-value of the Wilcoxon signed-rank test on the paired deltas (normal
// approximation, fine at the study's n = 180).
func WilcoxonSignedRank(deltas []float64) (z, p float64) {
	type item struct {
		abs float64
		pos bool
	}
	var items []item
	for _, d := range deltas {
		if d == 0 {
			continue
		}
		items = append(items, item{math.Abs(d), d > 0})
	}
	n := len(items)
	if n == 0 {
		return 0, 1
	}
	sort.Slice(items, func(i, j int) bool { return items[i].abs < items[j].abs })
	// Ranks with ties averaged.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && items[j].abs == items[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // 1-based average rank
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var wPlus float64
	for i, it := range items {
		if it.pos {
			wPlus += ranks[i]
		}
	}
	mu := float64(n*(n+1)) / 4
	sigma := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	if sigma == 0 {
		return 0, 1
	}
	z = (wPlus - mu) / sigma
	p = 2 * (1 - normCDF(math.Abs(z)))
	return z, p
}

func normCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
