// Package uisim simulates the paper's tablet user study (Section 6.4) with
// the live SpeakQL pipeline in the loop: simulated participants compose
// Table 6's 12 queries under two within-subjects conditions — raw typing on
// the tablet's soft keyboard versus SpeakQL dictation plus interactive
// correction — with the condition order alternated across queries and
// participants exactly as the study design prescribes. Interface costs
// (dictation rate, touch latency, keyboard repair) run through
// internal/session's cost model, so better or worse correction quality
// moves the reproduced Figure 7 directly.
package uisim

import (
	"math/rand"
	"strings"

	"speakql/internal/asr"
	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/metrics"
	"speakql/internal/session"
	"speakql/internal/speech"
	"speakql/internal/sqltoken"
)

// Participant is one simulated user's motor/speech parameters, drawn once
// per participant around tablet-typical means.
type Participant struct {
	ID          int
	TypingCPS   float64 // characters per second on a tablet soft keyboard
	SpeakingWPS float64 // words per second when dictating
	TouchSec    float64 // seconds per touch/click
	ThinkSec    float64 // upfront comprehension time per query
}

// NewParticipants draws n participants deterministically.
func NewParticipants(n int, seed int64) []Participant {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Participant, n)
	for i := range ps {
		ps[i] = Participant{
			ID:          i + 1,
			TypingCPS:   clamp(1.3+rng.NormFloat64()*0.3, 0.7, 2.2),
			SpeakingWPS: clamp(2.1+rng.NormFloat64()*0.4, 1.2, 3.2),
			TouchSec:    clamp(1.3+rng.NormFloat64()*0.3, 0.7, 2.2),
			ThinkSec:    clamp(6+rng.NormFloat64()*2, 2, 12),
		}
	}
	return ps
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Trial is one (participant, query, condition) measurement.
type Trial struct {
	Participant int
	QueryID     int
	Complex     bool
	SpeakQL     bool    // condition
	Seconds     float64 // time to completion
	Effort      int     // units of effort (touches + dictation attempts)
	SpeakSec    float64 // time spent dictating (SpeakQL condition)
	KeyboardSec float64 // time spent on the SQL keyboard
	EditSec     float64 // total correction time (keyboard + re-dictation)
	Dictations  int
	FinalTED    int // residual token edit distance (0 = completed exactly)
}

// Study holds everything a simulation run needs.
type Study struct {
	Engine  *core.Engine
	ASR     *asr.Engine
	Queries []dataset.StudyQuery
	Seed    int64
}

// Run simulates every participant composing every query under both
// conditions, alternating which condition comes first per query and per
// participant (the paper's within-subjects interleaving), and returns all
// trials (2 × participants × queries).
func (s Study) Run(participants []Participant) []Trial {
	var trials []Trial
	for pi, p := range participants {
		for qi, q := range s.Queries {
			speakFirst := (pi+qi)%2 == 0
			rng := rand.New(rand.NewSource(s.Seed ^ int64(pi*1000+qi)))
			a := s.simulateSpeakQL(rng, p, q)
			b := s.simulateTyping(rng, p, q, speakFirst)
			trials = append(trials, a, b)
		}
	}
	return trials
}

// simulateTyping models the control condition: typing the query from
// scratch on the tablet. Typing the second time (after having dictated the
// same query) gets a small familiarity discount, which the alternating
// design is there to balance out.
func (s Study) simulateTyping(rng *rand.Rand, p Participant, q dataset.StudyQuery, second bool) Trial {
	chars := len(q.SQL)
	// Soft-keyboard SQL typing needs symbol-layer switches; ~8% of
	// keystrokes are corrections.
	strokes := int(float64(chars) * (1.08 + rng.Float64()*0.06))
	secs := p.ThinkSec + float64(strokes)/p.TypingCPS
	if second {
		secs *= 0.92
	}
	return Trial{
		Participant: p.ID,
		QueryID:     q.ID,
		Complex:     q.Complex,
		SpeakQL:     false,
		Seconds:     secs,
		Effort:      strokes,
	}
}

// simulateSpeakQL models the SpeakQL condition: dictate the whole query (or
// clause-by-clause for complex queries, which the pilot study showed users
// prefer), then repair the display with clause re-dictation or the SQL
// keyboard until it matches the ground truth.
func (s Study) simulateSpeakQL(rng *rand.Rand, p Participant, q dataset.StudyQuery) Trial {
	sess := session.New(s.Engine)
	want := core.TokensOf(q.SQL)
	spoken := speech.VerbalizeQuery(q.SQL)

	tr := Trial{Participant: p.ID, QueryID: q.ID, Complex: q.Complex, SpeakQL: true}
	dictate := func(words []string, clause bool) {
		transcript := s.ASR.TranscribeN(words, 1+rng.Intn(4))[0]
		if clause {
			sess.DictateClause(transcript)
		} else {
			sess.DictateFull(transcript)
		}
		d := float64(len(words)) / p.SpeakingWPS
		tr.SpeakSec += d
		tr.Seconds += d + 0.8 // engine + render latency
	}

	tr.Seconds += p.ThinkSec
	if q.Complex {
		// Clause-level dictation (Section 5): complex queries are spoken
		// clause by clause to cut cognitive load.
		for _, cl := range clauseSpokenForms(q.SQL) {
			dictate(cl, true)
		}
	} else {
		dictate(spoken, false)
	}

	// Interactive correction loop: up to one clause re-dictation round,
	// then SQL-keyboard repair of whatever remains.
	if ted(want, sess.Tokens()) > 0 {
		if bad, words, ok := worstClause(q.SQL, want, sess.Tokens()); ok && ted(want, sess.Tokens()) >= 4 {
			_ = bad
			redictSec := float64(len(words)) / p.SpeakingWPS
			dictate(words, true)
			tr.EditSec += redictSec
		}
	}
	// Keyboard repair: align current display to ground truth token-wise.
	touchesBefore := sess.Touches()
	keyboardRepair(sess, want)
	repairTouches := sess.Touches() - touchesBefore
	kbSec := float64(repairTouches) * p.TouchSec
	tr.KeyboardSec = kbSec
	tr.EditSec += kbSec
	tr.Seconds += kbSec

	tr.Effort = sess.Effort()
	tr.Dictations = sess.Dictations()
	tr.FinalTED = ted(want, sess.Tokens())
	return tr
}

func ted(a, b []string) int {
	return metrics.TokenEditDistance(lower(a), lower(b))
}

func lower(ts []string) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = strings.ToLower(t)
	}
	return out
}

// clauseSpokenForms splits a query's verbalization at clause heads so that
// each piece can be dictated separately.
func clauseSpokenForms(sql string) [][]string {
	toks := sqltoken.TokenizeSQL(sql)
	var clauses [][]string
	var cur []string
	flush := func() {
		if len(cur) > 0 {
			clauses = append(clauses, cur)
			cur = nil
		}
	}
	for i, t := range toks {
		up := strings.ToUpper(t)
		if (up == "SELECT" || up == "FROM" || up == "WHERE" || up == "GROUP" ||
			up == "ORDER" || up == "LIMIT") && i > 0 {
			flush()
		}
		cur = append(cur, speech.VerbalizeToken(t)...)
	}
	flush()
	return clauses
}

// worstClause finds the ground-truth clause overlapping the most residual
// errors, returning its spoken words for re-dictation.
func worstClause(sql string, want, got []string) (string, []string, bool) {
	type span struct {
		head  string
		words []string
		errs  int
	}
	clauses := clauseSpokenForms(sql)
	if len(clauses) == 0 {
		return "", nil, false
	}
	gotSet := map[string]int{}
	for _, t := range lower(got) {
		gotSet[t]++
	}
	var best span
	toks := sqltoken.TokenizeSQL(sql)
	_ = toks
	for _, cl := range clauses {
		errs := 0
		for _, w := range cl {
			if gotSet[w] == 0 {
				errs++
			} else {
				gotSet[w]--
			}
		}
		if errs > best.errs {
			best = span{head: strings.ToUpper(cl[0]), words: cl, errs: errs}
		}
	}
	if best.errs == 0 {
		return "", nil, false
	}
	return best.head, best.words, true
}

// keyboardRepair applies minimal token edits (delete extra, replace wrong,
// insert missing) until the display equals the ground truth — the SQL
// Keyboard's in-place editing (Figure 5B).
func keyboardRepair(sess *session.Session, want []string) {
	got := sess.Tokens()
	// Simple forward alignment: walk both sequences via LCS and issue
	// operations for mismatches.
	ops := diffOps(lower(got), lower(want))
	// Apply in reverse order so indices stay valid.
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		switch op.kind {
		case opDelete:
			sess.DeleteToken(op.pos)
		case opInsert:
			sess.InsertToken(op.pos, want[op.wantIdx])
		case opReplace:
			sess.ReplaceToken(op.pos, want[op.wantIdx])
		}
	}
}

type opKind int

const (
	opDelete opKind = iota
	opInsert
	opReplace
)

type editOp struct {
	kind    opKind
	pos     int // position in the current (got) sequence
	wantIdx int
}

// diffOps computes a minimal Levenshtein script from got to want.
func diffOps(got, want []string) []editOp {
	n, m := len(got), len(want)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
		dp[i][0] = i
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if got[i-1] == want[j-1] {
				dp[i][j] = dp[i-1][j-1]
				continue
			}
			best := dp[i-1][j] + 1 // delete
			if v := dp[i][j-1] + 1; v < best {
				best = v
			}
			if v := dp[i-1][j-1] + 1; v < best {
				best = v
			}
			dp[i][j] = best
		}
	}
	var ops []editOp
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && got[i-1] == want[j-1] && dp[i][j] == dp[i-1][j-1]:
			i--
			j--
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1:
			ops = append(ops, editOp{kind: opReplace, pos: i - 1, wantIdx: j - 1})
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			ops = append(ops, editOp{kind: opDelete, pos: i - 1})
			i--
		default:
			ops = append(ops, editOp{kind: opInsert, pos: i, wantIdx: j - 1})
			j--
		}
	}
	// ops were collected back-to-front; reverse to forward order. Callers
	// apply them in reverse again, so net application order is safe.
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	return ops
}
