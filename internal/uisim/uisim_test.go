package uisim

import (
	"math"
	"testing"

	"speakql/internal/asr"
	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/grammar"
	"speakql/internal/literal"
)

func studyFixture(t testing.TB) Study {
	t.Helper()
	db := dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 200, Departments: 6, Seed: 1})
	cat := literal.NewCatalog(db.TableNames(), db.AttributeNames(), db.StringValues(0))
	engine, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	ae := asr.NewEngine(asr.ACSProfile(), 5)
	return Study{Engine: engine, ASR: ae, Queries: dataset.UserStudyQueries(), Seed: 77}
}

func TestStudyRunShape(t *testing.T) {
	study := studyFixture(t)
	ps := NewParticipants(4, 9)
	trials := study.Run(ps)
	if len(trials) != 4*12*2 {
		t.Fatalf("trials = %d, want %d", len(trials), 4*12*2)
	}
	for _, tr := range trials {
		if tr.Seconds <= 0 {
			t.Fatalf("non-positive time: %+v", tr)
		}
		if tr.Effort <= 0 {
			t.Fatalf("non-positive effort: %+v", tr)
		}
		if tr.SpeakQL && tr.FinalTED != 0 {
			t.Errorf("SpeakQL trial left residual TED %d (q%d): repair must complete",
				tr.FinalTED, tr.QueryID)
		}
	}
}

func TestStudyDeterministic(t *testing.T) {
	study := studyFixture(t)
	ps := NewParticipants(2, 9)
	a := study.Run(ps)
	b := study.Run(ps)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs between runs", i)
		}
	}
}

func TestSpeakQLFasterAndCheaper(t *testing.T) {
	study := studyFixture(t)
	ps := NewParticipants(6, 9)
	sums := Summarize(study.Run(ps))
	if len(sums) != 12 {
		t.Fatalf("summaries = %d", len(sums))
	}
	speedup := MeanSpeedup(sums, nil)
	effort := MeanEffortReduction(sums, nil)
	t.Logf("mean speedup=%.2fx effort reduction=%.2fx", speedup, effort)
	// The paper's headline: average 2.7× speedup, ~10× effort reduction.
	// The reproduction must show SpeakQL clearly winning on both.
	if speedup < 1.5 {
		t.Errorf("mean speedup %.2f too low", speedup)
	}
	if effort < 3 {
		t.Errorf("mean effort reduction %.2f too low", effort)
	}
	// Complex queries take longer than simple ones under SpeakQL (Fig 7C).
	var simpleMed, complexMed []float64
	for _, s := range sums {
		if s.Complex {
			complexMed = append(complexMed, s.MedianSpeakQLSec)
		} else {
			simpleMed = append(simpleMed, s.MedianSpeakQLSec)
		}
	}
	if mean(complexMed) <= mean(simpleMed) {
		t.Errorf("complex queries (%.1fs) not slower than simple (%.1fs)",
			mean(complexMed), mean(simpleMed))
	}
}

func TestFigure12Shares(t *testing.T) {
	study := studyFixture(t)
	sums := Summarize(study.Run(NewParticipants(6, 9)))
	var simpleSpeak, complexSpeak, simpleKb, complexKb []float64
	for _, s := range sums {
		if s.Complex {
			complexSpeak = append(complexSpeak, s.PctSpeaking)
			complexKb = append(complexKb, s.PctKeyboard)
		} else {
			simpleSpeak = append(simpleSpeak, s.PctSpeaking)
			simpleKb = append(simpleKb, s.PctKeyboard)
		}
	}
	// Figure 12: simple queries are dominated by dictation; complex
	// queries shift effort to the SQL keyboard.
	if mean(simpleSpeak) <= mean(complexSpeak) {
		t.Errorf("speaking share: simple %.2f ≤ complex %.2f",
			mean(simpleSpeak), mean(complexSpeak))
	}
	if mean(complexKb) <= mean(simpleKb) {
		t.Errorf("keyboard share: complex %.2f ≤ simple %.2f",
			mean(complexKb), mean(simpleKb))
	}
}

func TestHypothesisTests(t *testing.T) {
	study := studyFixture(t)
	trials := study.Run(NewParticipants(8, 9))
	timeDeltas := PairedDeltas(trials, func(t Trial) float64 { return t.Seconds })
	effortDeltas := PairedDeltas(trials, func(t Trial) float64 { return float64(t.Effort) })
	if p := SignTest(timeDeltas); p > 0.01 {
		t.Errorf("sign test on time p=%.4f, want significant", p)
	}
	if _, p := WilcoxonSignedRank(timeDeltas); p > 0.01 {
		t.Errorf("wilcoxon on time p=%.4f, want significant", p)
	}
	if p := SignTest(effortDeltas); p > 0.01 {
		t.Errorf("sign test on effort p=%.4f, want significant", p)
	}
}

func TestStatHelpers(t *testing.T) {
	if p := SignTest(nil); p != 1 {
		t.Errorf("SignTest(nil) = %v", p)
	}
	if p := SignTest([]float64{1, 1, 1, 1, 1, 1, 1, 1}); p > 0.01 {
		t.Errorf("all-positive sign test p = %v", p)
	}
	if p := SignTest([]float64{1, -1, 1, -1}); p < 0.5 {
		t.Errorf("balanced sign test p = %v", p)
	}
	z, p := WilcoxonSignedRank([]float64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	if z <= 0 || p > 0.01 {
		t.Errorf("wilcoxon all-positive: z=%v p=%v", z, p)
	}
	if _, p := WilcoxonSignedRank(nil); p != 1 {
		t.Error("wilcoxon nil")
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
}

func TestDiffOps(t *testing.T) {
	got := []string{"select", "a", "from", "t"}
	want := []string{"select", "b", "from", "t", "limit", "5"}
	ops := diffOps(got, want)
	if len(ops) != 3 { // replace a→b, insert limit, insert 5
		t.Fatalf("ops = %+v", ops)
	}
}

func TestNewParticipantsBounds(t *testing.T) {
	for _, p := range NewParticipants(50, 3) {
		if p.TypingCPS < 0.7 || p.TypingCPS > 2.2 {
			t.Fatalf("typing speed out of range: %+v", p)
		}
		if p.SpeakingWPS < 1.2 || p.SpeakingWPS > 3.2 {
			t.Fatalf("speaking rate out of range: %+v", p)
		}
	}
	a := NewParticipants(5, 3)
	b := NewParticipants(5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("participants not deterministic")
		}
	}
}

func TestClauseSpokenForms(t *testing.T) {
	cls := clauseSpokenForms("SELECT AVG ( salary ) FROM Salaries WHERE Salary > 100 GROUP BY Gender")
	if len(cls) != 4 {
		t.Fatalf("clauses = %v", cls)
	}
	if cls[0][0] != "select" || cls[1][0] != "from" || cls[2][0] != "where" || cls[3][0] != "group" {
		t.Fatalf("clause heads wrong: %v", cls)
	}
}

func TestTrialTimesSane(t *testing.T) {
	study := studyFixture(t)
	trials := study.Run(NewParticipants(5, 9))
	for _, tr := range trials {
		if tr.Seconds > 600 {
			t.Errorf("implausible trial time %.0fs: %+v", tr.Seconds, tr)
		}
		if tr.SpeakQL && tr.SpeakSec+tr.KeyboardSec > tr.Seconds+1e-9 {
			if math.Abs(tr.SpeakSec+tr.KeyboardSec-tr.Seconds) > 1 {
				t.Errorf("component times exceed total: %+v", tr)
			}
		}
	}
}

func TestPilotStudyCollapse(t *testing.T) {
	// Appendix F.2: the unvetted pilot with drag-and-drop correction saw
	// only ~1.2× speedup; the vetted study with the Section 5 interface
	// saw ~2.7×. The simulator must reproduce that ordering from the
	// interface model alone.
	study := studyFixture(t)
	ps := NewParticipants(6, 9)
	actual := Summarize(study.Run(ps))
	pilot := Summarize(PilotStudy{
		Engine:  study.Engine,
		ASR:     study.ASR,
		Queries: study.Queries,
		Seed:    study.Seed,
	}.Run(ps))
	actualSpeedup := MeanSpeedup(actual, nil)
	pilotSpeedup := MeanSpeedup(pilot, nil)
	t.Logf("pilot speedup=%.2fx actual=%.2fx", pilotSpeedup, actualSpeedup)
	if pilotSpeedup >= actualSpeedup {
		t.Errorf("pilot (%.2fx) not below actual study (%.2fx)", pilotSpeedup, actualSpeedup)
	}
	if pilotSpeedup < 0.5 || pilotSpeedup > 2.5 {
		t.Errorf("pilot speedup %.2fx outside the paper's ~1.2x regime", pilotSpeedup)
	}
}
