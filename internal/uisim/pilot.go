package uisim

import (
	"math/rand"

	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/metrics"
	"speakql/internal/speech"
)

// PilotStudy reproduces the paper's preliminary user study (Appendix F.2):
// participants were recruited without vetting their SQL knowledge, the
// interface lacked clause-level dictation and the SQL keyboard (corrections
// used drag-and-drop), and the observed speedup over typing collapsed to
// ≈1.2×. The pilot's failure is what motivated the Section 5 interface —
// reproducing it validates that the simulator's gains really come from
// those interface features, not from free parameters.
type PilotStudy struct {
	Engine *core.Engine
	ASR    interface {
		TranscribeN(spoken []string, n int) []string
	}
	Queries []dataset.StudyQuery
	Seed    int64
}

// pilotParticipant adds the unvetted-user behaviours the paper observed:
// long hesitation, full-query re-dictation "twice or thrice", and costly
// drag-and-drop edits.
type pilotParticipant struct {
	Participant
	RedictationBias float64 // extra full re-dictations per query
	DragDropSec     float64 // seconds per drag-and-drop token fix
}

// Run simulates the pilot and returns the SpeakQL-vs-typing trials.
func (p PilotStudy) Run(participants []Participant) []Trial {
	var trials []Trial
	for pi, base := range participants {
		pp := pilotParticipant{
			Participant:     base,
			RedictationBias: 1.6,
			DragDropSec:     base.TouchSec * 4, // find token, drag, hold, drop, re-check
		}
		// Unvetted users hesitate while composing SQL in their head: they
		// think longer and dictate haltingly (the paper: "many participants
		// had little experience composing SQL queries").
		pp.ThinkSec *= 2
		pp.SpeakingWPS *= 0.7
		for qi, q := range p.Queries {
			rng := rand.New(rand.NewSource(p.Seed ^ int64(pi*1000+qi)))
			trials = append(trials,
				p.simulatePilotSpeakQL(rng, pp, q),
				Study{}.simulateTyping(rng, pp.Participant, q, (pi+qi)%2 == 0))
		}
	}
	return trials
}

// simulatePilotSpeakQL: whole-query dictation only (no clause dictation),
// repeated re-dictation attempts, then drag-and-drop repair charged per
// residual token error.
func (p PilotStudy) simulatePilotSpeakQL(rng *rand.Rand, pp pilotParticipant, q dataset.StudyQuery) Trial {
	want := core.TokensOf(q.SQL)
	spoken := speech.VerbalizeQuery(q.SQL)
	tr := Trial{Participant: pp.ID, QueryID: q.ID, Complex: q.Complex, SpeakQL: true}
	tr.Seconds += pp.ThinkSec

	attempts := 1
	for rng.Float64() < pp.RedictationBias/2 && attempts < 4 {
		attempts++
	}
	var bestTokens []string
	bestTED := 1 << 30
	for a := 0; a < attempts; a++ {
		transcript := p.ASR.TranscribeN(spoken, a+1)[a]
		out := p.Engine.Correct(transcript)
		toks := out.Best().Tokens
		d := float64(len(spoken)) / pp.SpeakingWPS
		tr.SpeakSec += d
		tr.Seconds += d + 0.8
		tr.Dictations++
		if ted := metrics.TokenEditDistance(lower(want), lower(toks)); ted < bestTED {
			bestTED = ted
			bestTokens = toks
		}
	}
	_ = bestTokens
	// Drag-and-drop repair: every residual token error costs one slow
	// drag-and-drop interaction plus occasional misdrops.
	fixes := bestTED
	misdrops := 0
	for i := 0; i < fixes; i++ {
		if rng.Float64() < 0.2 {
			misdrops++
		}
	}
	total := fixes + misdrops
	tr.EditSec = float64(total) * pp.DragDropSec
	tr.Seconds += tr.EditSec
	tr.Effort = tr.Dictations + total
	tr.FinalTED = 0 // users eventually finished (some queries in the paper did not)
	return tr
}
