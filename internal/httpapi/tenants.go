package httpapi

// tenants.go is the tenant lifecycle API over the schema registry:
//
//	PUT    /api/tenants/{id} — register (or replace) a tenant's schema
//	GET    /api/tenants/{id} — describe one tenant (loads it if evicted)
//	PATCH  /api/tenants/{id} — apply an incremental catalog delta
//	DELETE /api/tenants/{id} — remove the tenant and its persisted catalog
//	GET    /api/tenants      — list known tenants and their residency
//
// Every other endpoint then accepts ?tenant= or the X-SpeakQL-Tenant
// header to correct against that tenant's schema; requests naming no
// tenant go to the seed tenant, preserving the single-tenant API shape.

import (
	"errors"
	"net/http"

	"speakql/internal/literal"
	"speakql/internal/registry"
)

// tenantPutReq is the PUT body: the schema's name lists, mirroring
// literal.NewCatalog plus the optional per-column value domains.
type tenantPutReq struct {
	Tables       []string            `json:"tables"`
	Attributes   []string            `json:"attributes"`
	Values       []string            `json:"values"`
	ColumnValues map[string][]string `json:"column_values"`
}

// writeTenantErr maps registry errors onto API statuses: unknown → 404,
// seed-immutable → 403, bad id → 400, anything else → 500.
func writeTenantErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrUnknownTenant):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, registry.ErrSeedImmutable):
		writeErr(w, http.StatusForbidden, err)
	case errors.Is(err, registry.ErrBadTenantID):
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// requireRegistry answers 503 when no registry is configured (the server
// is running in single-tenant mode).
func (s *Server) requireRegistry(w http.ResponseWriter) bool {
	if s.tenants == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("no tenant registry configured (single-tenant mode)"))
		return false
	}
	return true
}

func (s *Server) handleTenantPut(w http.ResponseWriter, r *http.Request) {
	span := s.reg.StartSpan("http.tenant_put")
	defer span.End()
	if !s.requireRegistry(w) {
		return
	}
	id := r.PathValue("id")
	var req tenantPutReq
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cat := literal.NewCatalog(req.Tables, req.Attributes, req.Values)
	if len(req.ColumnValues) > 0 {
		cat = cat.WithColumnValues(req.ColumnValues)
	}
	t, err := s.tenants.Put(id, cat)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	s.invalidateMemo(id)
	writeJSON(w, http.StatusOK, tenantSummary(t, true))
}

// invalidateMemo drops the correction memo's entries for a tenant whose
// catalog just changed, counting the drops (server.memo_invalidated).
func (s *Server) invalidateMemo(tenant string) {
	if s.memo == nil {
		return
	}
	if n := s.memo.invalidateTenant(tenant); n > 0 {
		s.reg.Add("server.memo_invalidated", int64(n))
	}
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) {
		return
	}
	t, err := s.tenants.Acquire(r.PathValue("id"))
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, tenantSummary(t, true))
}

func (s *Server) handleTenantPatch(w http.ResponseWriter, r *http.Request) {
	span := s.reg.StartSpan("http.tenant_patch")
	defer span.End()
	if !s.requireRegistry(w) {
		return
	}
	id := r.PathValue("id")
	var delta literal.CatalogDelta
	if err := decode(w, r, &delta); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if delta.Empty() {
		writeErr(w, http.StatusBadRequest, errors.New("empty catalog delta"))
		return
	}
	t, stats, err := s.tenants.Update(id, delta)
	if err != nil {
		writeTenantErr(w, err)
		return
	}
	s.invalidateMemo(id)
	resp := tenantSummary(t, true)
	resp["update"] = stats
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) {
		return
	}
	id := r.PathValue("id")
	if err := s.tenants.Delete(id); err != nil {
		writeTenantErr(w, err)
		return
	}
	s.invalidateMemo(id)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handleTenantList(w http.ResponseWriter, r *http.Request) {
	if !s.requireRegistry(w) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seed":    s.seedID,
		"tenants": s.tenants.List(),
	})
}

// tenantSummary shapes one tenant for the lifecycle responses: schema
// sizes, not full contents — GET /api/keyboard?tenant= serves the lists.
func tenantSummary(t *registry.Tenant, resident bool) map[string]any {
	return map[string]any{
		"id":         t.ID,
		"resident":   resident,
		"tables":     len(t.Catalog.Tables()),
		"attributes": len(t.Catalog.Attributes()),
		"values":     len(t.Catalog.Values()),
		"indexed":    t.Catalog.Indexed(),
	}
}
