package httpapi

// shards_test.go pins the sharded session registry's isolation contract:
// work on one shard — a stalled scan, an eviction pass, a blocking
// correction — never delays lookups or dictations on any other shard, and
// the TTL sweeper's candidate collection holds only one shard lock at a
// time.

import (
	"net/http"
	"testing"
	"time"
)

// twoSessionsDifferentShards creates HTTP sessions until two land on
// different shards, returning their ids. With 32 shards and FNV-spread ids
// this takes a handful of sessions at most.
func twoSessionsDifferentShards(t *testing.T, base string) (string, string) {
	t.Helper()
	var first string
	for i := 0; i < 200; i++ {
		_, out := post(t, base+"/api/session", map[string]any{})
		id := out["id"].(string)
		if first == "" {
			first = id
			continue
		}
		if shardIndex(id) != shardIndex(first) {
			return first, id
		}
	}
	t.Fatal("could not find two sessions on different shards (hash degenerate?)")
	return "", ""
}

// A held shard lock on session A's shard (a stalled eviction scan, in the
// old design the global map lock) must not delay a dictation on session B's
// shard.
func TestShardIndependence(t *testing.T) {
	api := newAPIServer(t, 0)
	ts := serve(t, api)
	idA, idB := twoSessionsDifferentShards(t, ts.URL)

	const hold = 600 * time.Millisecond
	shA := api.sessions.shardFor(idA)
	shA.mu.Lock()
	release := make(chan struct{})
	go func() {
		defer shA.mu.Unlock()
		select {
		case <-release:
		case <-time.After(hold):
		}
	}()

	start := time.Now()
	code, out := post(t, ts.URL+"/api/dictate", map[string]any{
		"id": idB, "transcript": "select salary from employees",
	})
	elapsed := time.Since(start)
	close(release)
	if code != http.StatusOK {
		t.Fatalf("dictate on shard-B session: %d %v", code, out)
	}
	if elapsed >= hold/2 {
		t.Errorf("dictation on shard B took %v while shard A was held — shards are not independent", elapsed)
	}
}

// The sweeper must evict idle sessions promptly even while a blocking
// correction is in flight on another session: candidate collection takes
// shard locks only (one at a time), and broadcaster closes happen outside
// every lock — never behind a session's correction lock.
func TestEvictionShardIsolation(t *testing.T) {
	api := newAPIServer(t, 0)
	ts := serve(t, api) // TTL set after Handler(), so no background sweeper races the manual evict below
	api.SetSessionTTL(10 * time.Millisecond)
	idA, idB := twoSessionsDifferentShards(t, ts.URL)

	// Simulate a blocking correction in flight on session A: dictations hold
	// the session's own lock for their whole correction, so hold it here.
	entryA, ok := api.sessions.get(idA)
	if !ok {
		t.Fatal("session A vanished")
	}
	entryA.mu.Lock()
	defer entryA.mu.Unlock()

	// Let both sessions go idle past the TTL, then evict with the correction
	// still blocked. The sweep must return promptly and still evict B.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	n := api.evictIdleSessions(time.Now())
	elapsed := time.Since(start)
	if elapsed > 100*time.Millisecond {
		t.Errorf("eviction took %v behind a blocked correction — it must never wait on a session lock", elapsed)
	}
	if n < 2 {
		t.Errorf("evicted %d sessions, want both idle sessions gone", n)
	}
	if _, ok := api.sessions.get(idB); ok {
		t.Error("session B still registered after eviction")
	}
}

// Sharding must not change observable session semantics: ids stay unique
// and dense, lookups route to the right entry, and the map length tallies
// across shards.
func TestShardedSessionMapBasics(t *testing.T) {
	sm := newSessionMap()
	ids := []string{"s1", "s2", "s3", "s99", "stream-7", "x"}
	for _, id := range ids {
		sm.put(id, &sessionEntry{tenant: id})
	}
	if sm.len() != len(ids) {
		t.Fatalf("len = %d, want %d", sm.len(), len(ids))
	}
	for _, id := range ids {
		e, ok := sm.get(id)
		if !ok || e.tenant != id {
			t.Fatalf("get(%q) = %v, %v", id, e, ok)
		}
	}
	if _, ok := sm.get("nope"); ok {
		t.Fatal("phantom session")
	}
	removed := sm.removeIf(func(id string, _ *sessionEntry) bool { return id[0] == 's' })
	if len(removed) != 5 || sm.len() != 1 {
		t.Fatalf("removeIf removed %d, left %d", len(removed), sm.len())
	}
	if len(sm.all()) != 1 {
		t.Fatalf("all() = %d entries", len(sm.all()))
	}
}
