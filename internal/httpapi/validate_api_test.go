package httpapi

// validate_api_test.go pins the HTTP half of the validation stage
// (DESIGN.md §15): the -validate=off wire format is byte-identical to the
// pre-validation format, verdict fields appear on validated responses
// (including n-best and stream finalize), the correction memo keys on the
// validation mode, and validate-stage faults shed validation without ever
// wedging a session.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"speakql/internal/core"
	"speakql/internal/faultinject"
)

// setValidation installs an execute-mode (or other) validation stage on an
// isolated test server's engine, dry-running against its own demo DB.
func setValidation(api *Server, cfg core.ValidationConfig) {
	api.engine.SetValidation(cfg, api.db)
}

// rawCorrect posts one /api/correct request and returns the exact response
// bytes.
func rawCorrect(t *testing.T, url, transcript string, topk int) []byte {
	t.Helper()
	body := fmt.Sprintf(`{"transcript":%q,"topk":%d}`, transcript, topk)
	resp := postRaw(t, url+"/api/correct", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestValidationOffWireUnchanged(t *testing.T) {
	plain := serve(t, newAPIServer(t, 0))
	off := newAPIServer(t, 0)
	setValidation(off, core.ValidationConfig{Mode: core.ValidationOff})
	offTS := serve(t, off)

	for _, req := range []struct {
		transcript string
		topk       int
	}{
		{"select salary from employees where gender equals M", 1},
		{"select first name from employees", 5},
	} {
		want := rawCorrect(t, plain.URL, req.transcript, req.topk)
		got := rawCorrect(t, offTS.URL, req.transcript, req.topk)
		if string(want) != string(got) {
			t.Errorf("validation-off body differs for %q:\n plain: %s\n   off: %s",
				req.transcript, want, got)
		}
		// And the legacy key set exactly — no validation keys may leak.
		var decoded map[string]any
		if err := json.Unmarshal(got, &decoded); err != nil {
			t.Fatal(err)
		}
		for _, forbidden := range []string{"validation"} {
			if _, ok := decoded[forbidden]; ok {
				t.Errorf("off-mode response carries %q: %s", forbidden, got)
			}
		}
		if strings.Contains(string(got), `"verdict"`) || strings.Contains(string(got), `"demoted"`) {
			t.Errorf("off-mode candidates carry verdict fields: %s", got)
		}
	}
}

func TestValidationFieldsOnNBestResponse(t *testing.T) {
	api := newAPIServer(t, 0)
	setValidation(api, core.ValidationConfig{Mode: core.ValidationExecute})
	ts := serve(t, api)

	status, out := post(t, ts.URL+"/api/correct", map[string]any{
		"transcript": "select first name from employees where gender equals M", "topk": 5})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if out["validation"] != "execute" {
		t.Fatalf("validation = %v, want execute (degradation %v)", out["validation"], out["degradation"])
	}
	cands, _ := out["candidates"].([]any)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i, c := range cands {
		if _, ok := c.(map[string]any)["verdict"].(string); !ok {
			t.Errorf("candidate %d has no verdict: %v", i, c)
		}
	}

	// The stats block reports the stage.
	stats := statsSnapshot(t, ts.URL)
	vb, ok := stats["validate"].(map[string]any)
	if !ok {
		t.Fatalf("no validate stats block: %v", stats)
	}
	if vb["mode"] != "execute" {
		t.Fatalf("validate stats mode = %v", vb["mode"])
	}
}

func TestStreamFinalizeCarriesVerdict(t *testing.T) {
	api := newAPIServer(t, 0)
	setValidation(api, core.ValidationConfig{Mode: core.ValidationExecute})
	ts := serve(t, api)

	_, sess := post(t, ts.URL+"/api/session", map[string]any{})
	id := sess["id"].(string)
	status, frag := post(t, ts.URL+"/api/stream/dictate", map[string]any{
		"id": id, "seq": 1, "fragment": "select first name from employees"})
	if status != http.StatusOK {
		t.Fatalf("dictate status = %d: %v", status, frag)
	}
	status, fin := post(t, ts.URL+"/api/stream/finalize", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("finalize status = %d: %v", status, fin)
	}
	if _, ok := fin["verdict"].(string); !ok {
		t.Fatalf("finalize response has no verdict: %v", fin)
	}
	if fin["validation"] != "execute" {
		t.Fatalf("finalize validation = %v", fin["validation"])
	}
}

func TestMemoKeyedOnValidationMode(t *testing.T) {
	api := newAPIServer(t, 0)
	api.SetCorrectionMemo(16)
	ts := serve(t, api)

	const transcript = "select salary from employees where gender equals M"
	// Prime the memo with an unvalidated body.
	first := rawCorrect(t, ts.URL, transcript, 3)
	if strings.Contains(string(first), `"validation"`) {
		t.Fatalf("unvalidated body unexpectedly validated: %s", first)
	}
	if same := rawCorrect(t, ts.URL, transcript, 3); string(same) != string(first) {
		t.Fatal("memo did not replay the identical unvalidated body")
	}

	// Flip validation on (operationally: a restart with -validate=execute;
	// the memo outlives the flip). The cached unvalidated body must NOT be
	// served as a validated response.
	setValidation(api, core.ValidationConfig{Mode: core.ValidationExecute})
	validated := rawCorrect(t, ts.URL, transcript, 3)
	if string(validated) == string(first) {
		t.Fatal("memo served a cached unvalidated body under -validate=execute")
	}
	if !strings.Contains(string(validated), `"validation":"execute"`) {
		t.Fatalf("validated body missing validation field: %s", validated)
	}
	// And back: the off-mode key still holds the original body.
	setValidation(api, core.ValidationConfig{Mode: core.ValidationOff})
	if again := rawCorrect(t, ts.URL, transcript, 3); string(again) != string(first) {
		t.Fatal("off-mode body no longer byte-identical after mode flip")
	}
}

// chaosValidateSpec injects faults only into the validate stage (plus
// harmless structure latency): a structure error legitimately 500s, but a
// validate fault must never — it sheds validation and serves the
// unvalidated ranking. Keeping the error mass on validate makes "every
// response is 200" a precise assertion.
const chaosValidateSpec = "seed=77;validate:error@0.4,latency=1ms@0.3;structure:latency=1ms@0.2"

func TestChaosValidateFaultsNeverWedgeSessions(t *testing.T) {
	api := newAPIServer(t, 0)
	setValidation(api, core.ValidationConfig{Mode: core.ValidationExecute})
	api.SetRequestTimeout(10 * time.Second)
	ts := serve(t, api)

	_, sess := post(t, ts.URL+"/api/session", map[string]any{})
	id := sess["id"].(string)

	inj, err := faultinject.Parse(chaosValidateSpec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := fmt.Sprintf(`{"transcript":"select first name from employees","topk":%d}`, 1+i%5)
				resp := postRaw(t, ts.URL+"/api/correct", body)
				var out map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("worker %d: malformed response: %v", w, err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: status %d (%v)", w, resp.StatusCode, out)
					continue
				}
				// A validate fault sheds validation, never the response:
				// candidates are always present, and validation is either a
				// mode or "shed", never an error surface.
				if out["candidates"] == nil {
					t.Errorf("worker %d: validated correction lost its candidates: %v", w, out)
				}
				if v, ok := out["validation"].(string); ok && v != "execute" && v != core.ValidationShed {
					t.Errorf("worker %d: unexpected validation value %q", w, v)
				}
			}
		}(w)
	}
	wg.Wait()
	faultinject.Set(nil)

	counts := inj.Counts()[faultinject.StageValidate]
	if counts.Errors == 0 {
		t.Fatalf("injector fired no validate errors: %+v", counts)
	}

	// The session must still dictate and finalize normally after the storm.
	status, out := post(t, ts.URL+"/api/stream/dictate", map[string]any{
		"id": id, "seq": 1, "fragment": "select last name from employees"})
	if status != http.StatusOK {
		t.Fatalf("post-chaos dictate wedged: %d %v", status, out)
	}
	if status, out = post(t, ts.URL+"/api/stream/finalize", map[string]any{"id": id}); status != http.StatusOK {
		t.Fatalf("post-chaos finalize wedged: %d %v", status, out)
	}
}

func TestChaosValidationShedsUnderDeadlinePressure(t *testing.T) {
	api := newAPIServer(t, 0)
	// BudgetFraction > 1 makes the soft budget unsatisfiable for any
	// deadline-carrying request: every correction reaches the stage and
	// sheds it, deterministically.
	setValidation(api, core.ValidationConfig{Mode: core.ValidationExecute, BudgetFraction: 2})
	api.SetRequestTimeout(5 * time.Second)
	ts := serve(t, api)

	status, out := post(t, ts.URL+"/api/correct", map[string]any{
		"transcript": "select first name from employees", "topk": 3})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if out["degradation"] == core.DegradationFull && out["validation"] != core.ValidationShed {
		t.Fatalf("validation = %v under deadline pressure, want shed", out["validation"])
	}
	if strings.Contains(fmt.Sprint(out["candidates"]), "verdict") {
		t.Fatalf("shed response carries verdicts: %v", out["candidates"])
	}
}
