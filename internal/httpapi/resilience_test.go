package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/faultinject"
	"speakql/internal/grammar"
	"speakql/internal/literal"
)

// newAPIServer builds an isolated Server (own engine, small corpus) for
// tests that mutate server-level state — admission, TTLs, fault injection —
// and must not disturb the shared fixture.
func newAPIServer(t *testing.T, cacheSize int) *Server {
	t.Helper()
	db := dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 60, Departments: 4, Seed: 7})
	cat := literal.NewCatalog(db.TableNames(), db.AttributeNames(), db.StringValues(0))
	eng, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat,
		StructureCacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, db)
}

func serve(t *testing.T, api *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(func() {
		ts.Close()
		api.Close()
	})
	return ts
}

// postRaw posts a pre-encoded body and returns the raw response for header
// and status inspection. The caller must close the body.
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// Decode hardening: oversized, unknown-field, and malformed bodies must all
// be answered with a 400 that says what was wrong, never with a hang or an
// opaque 500.
func TestDecodeHardening(t *testing.T) {
	s := srv(t)
	oversized := `{"transcript":"` + strings.Repeat("a", maxBodyBytes) + `"}`
	cases := []struct {
		name     string
		body     string
		wantFrag string
	}{
		{"oversized body", oversized, "exceeds"},
		{"unknown field", `{"transcript":"select salary","bogus":1}`, "unknown request field"},
		{"malformed json", `{not json`, "malformed request body"},
		{"wrong field type", `{"transcript":42}`, "malformed request body"},
		{"empty body", ``, "malformed request body"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postRaw(t, s.URL+"/api/correct", tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatalf("400 body is not JSON: %v", err)
			}
			msg, _ := out["error"].(string)
			if !strings.Contains(msg, tc.wantFrag) {
				t.Errorf("error %q does not mention %q", msg, tc.wantFrag)
			}
		})
	}
	// The same limits guard the session endpoints.
	resp := postRaw(t, s.URL+"/api/dictate", `{"id":"s1","nope":true}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("dictate unknown field: status = %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	api := newAPIServer(t, 0)
	ts := serve(t, api)

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s body not JSON: %v", path, err)
		}
		return resp.StatusCode, out
	}

	if code, out := get("/healthz"); code != http.StatusOK || out["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, out)
	}
	if code, out := get("/readyz"); code != http.StatusOK || out["status"] != "ready" {
		t.Errorf("readyz = %d %v", code, out)
	}
	// Draining: readiness flips, liveness stays up.
	api.SetReady(false)
	if code, out := get("/readyz"); code != http.StatusServiceUnavailable || out["status"] != "draining" {
		t.Errorf("draining readyz = %d %v", code, out)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", code)
	}
	api.SetReady(true)
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz after recover = %d, want 200", code)
	}
}

// Session GC: an idle session past the TTL is evicted (deterministically,
// via the sweeper's internals) and later requests see a clean 404.
func TestSessionEvictedAfterTTL(t *testing.T) {
	api := newAPIServer(t, 0)
	api.SetSessionTTL(time.Hour)
	ts := serve(t, api)

	_, out := post(t, ts.URL+"/api/session", map[string]any{})
	id := out["id"].(string)

	// Fresh session: not evicted at the current time.
	if n := api.evictIdleSessions(time.Now()); n != 0 {
		t.Fatalf("fresh session evicted: %d", n)
	}
	code, _ := post(t, ts.URL+"/api/dictate", map[string]any{
		"id": id, "transcript": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatalf("dictate before eviction: %d", code)
	}

	// Two hours later the session has been idle past the TTL.
	if n := api.evictIdleSessions(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("evicted = %d, want 1", n)
	}
	code, body := post(t, ts.URL+"/api/dictate", map[string]any{
		"id": id, "transcript": "select salary from employees"})
	if code != http.StatusNotFound {
		t.Fatalf("dictate after eviction: %d %v, want 404", code, body)
	}
	stats := statsSnapshot(t, ts.URL)
	res := stats["resilience"].(map[string]any)
	if evicted := res["sessions_evicted"].(float64); evicted < 1 {
		t.Errorf("sessions_evicted = %v, want >= 1", evicted)
	}
}

// The background sweeper itself evicts without any manual call.
func TestSessionSweeperRuns(t *testing.T) {
	api := newAPIServer(t, 0)
	api.SetSessionTTL(40 * time.Millisecond)
	ts := serve(t, api)

	post(t, ts.URL+"/api/session", map[string]any{})
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := api.sessions.len()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never evicted the idle session (%d left)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// deadline_hit and degradation must agree: a request whose deadline expired
// can never claim full fidelity.
func TestDeadlineDegradationAgreement(t *testing.T) {
	api := newAPIServer(t, 0)
	api.SetRequestTimeout(time.Nanosecond) // expired before any work
	ts := serve(t, api)

	code, out := post(t, ts.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	if !out["deadline_hit"].(bool) {
		t.Fatal("deadline_hit = false with a 1ns budget")
	}
	level, _ := out["degradation"].(string)
	if level == core.DegradationFull || level == "" {
		t.Errorf("degradation = %q after deadline hit, want a degraded level", level)
	}
	// An expired-before-search request sheds: no candidates, and never a
	// half-filled one.
	if cands, _ := out["candidates"].([]any); len(cands) != 0 {
		t.Errorf("shed response carries candidates: %v", cands)
	}

	// The healthy path reports the complementary pair.
	s := srv(t)
	code, out = post(t, s.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatal("healthy correct failed")
	}
	if out["deadline_hit"].(bool) {
		t.Error("deadline_hit on a healthy request")
	}
	if out["degradation"] != core.DegradationFull {
		t.Errorf("degradation = %v on a healthy request, want full", out["degradation"])
	}
}

// Dictate responses carry the degradation level too.
func TestDictateReportsDegradation(t *testing.T) {
	s := srv(t)
	_, out := post(t, s.URL+"/api/session", map[string]any{})
	id := out["id"].(string)
	code, out := post(t, s.URL+"/api/dictate", map[string]any{
		"id": id, "transcript": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatalf("dictate: %d %v", code, out)
	}
	if out["degradation"] != core.DegradationFull {
		t.Errorf("degradation = %v, want full", out["degradation"])
	}
	if out["deadline_hit"].(bool) {
		t.Error("deadline_hit on a healthy dictation")
	}
}

// An injected panic inside the pipeline must come back as a 500 JSON error
// (counter panic.recovered), and the session that was dictating must not be
// left locked.
func TestPanicRecoveryMiddleware(t *testing.T) {
	api := newAPIServer(t, 0)
	ts := serve(t, api)

	_, out := post(t, ts.URL+"/api/session", map[string]any{})
	id := out["id"].(string)

	before := statsSnapshot(t, ts.URL)
	panicsBefore, _ := before["resilience"].(map[string]any)["panics_recovered"].(float64)

	inj, err := faultinject.Parse("seed=3;structure:panic@1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	clear := func() { faultinject.Set(nil) }
	defer clear()

	for _, path := range []string{"/api/correct", "/api/dictate"} {
		body := map[string]any{"transcript": "select salary from employees"}
		if path == "/api/dictate" {
			body["id"] = id
		}
		code, out := post(t, ts.URL+path, body)
		if code != http.StatusInternalServerError {
			t.Fatalf("%s with injected panic: status = %d %v, want 500", path, code, out)
		}
		msg, _ := out["error"].(string)
		if !strings.Contains(msg, "injected structure panic") {
			t.Errorf("%s error = %q, want the injected panic", path, msg)
		}
	}

	clear()
	// The session lock was released on the panic path: the session still
	// serves requests.
	code, out := post(t, ts.URL+"/api/dictate", map[string]any{
		"id": id, "transcript": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatalf("session wedged after panic: %d %v", code, out)
	}

	after := statsSnapshot(t, ts.URL)
	panicsAfter, _ := after["resilience"].(map[string]any)["panics_recovered"].(float64)
	if panicsAfter-panicsBefore != 2 {
		t.Errorf("panic.recovered grew by %v, want 2", panicsAfter-panicsBefore)
	}
}

// Admission at the HTTP level: with one permit and no queue, a second
// concurrent correction is shed with 503 + Retry-After while the first is
// in flight.
func TestAdmissionShedsOverHTTP(t *testing.T) {
	api := newAPIServer(t, 0)
	api.SetAdmission(1, 0)
	api.SetRequestTimeout(5 * time.Second)
	ts := serve(t, api)

	inj, err := faultinject.Parse("seed=5;structure:latency=400ms@1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	slow := make(chan error, 1)
	go func() {
		code, _, err := postNoFail(ts.URL+"/api/correct", map[string]any{
			"transcript": "select salary from employees"})
		if err == nil && code != http.StatusOK {
			err = fmt.Errorf("unexpected status %d", code)
		}
		slow <- err
	}()
	// Wait until the slow request holds the permit.
	deadline := time.Now().Add(2 * time.Second)
	for api.gate.stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the permit")
		}
		time.Sleep(5 * time.Millisecond)
	}

	raw, err := json.Marshal(map[string]any{"transcript": "select salary from employees"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/correct", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("concurrent request status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("503 body not JSON: %v", err)
	}
	if out["degradation"] != core.DegradationShed {
		t.Errorf("shed degradation = %v, want shed", out["degradation"])
	}
	if err := <-slow; err != nil {
		t.Fatalf("slow request failed: %v", err)
	}

	stats := statsSnapshot(t, ts.URL)
	if shed := stats["resilience"].(map[string]any)["admission_shed"].(float64); shed < 1 {
		t.Errorf("admission_shed = %v, want >= 1", shed)
	}
	adm, ok := stats["admission"].(map[string]any)
	if !ok {
		t.Fatalf("no admission block in stats: %v", stats)
	}
	if adm["max_inflight"].(float64) != 1 {
		t.Errorf("admission.max_inflight = %v", adm["max_inflight"])
	}
}
