package httpapi

// tenant_chaos_test.go is the multi-tenant churn chaos suite: many workers
// interleaving tenant creates, corrections, streaming dictations, SSE
// subscriptions, deletes, and forced evict/reload cycles against a small
// LRU, with the registry fault stage injecting latency into loads. The
// assertions are the tenancy resilience contract: live arenas stay bounded
// by the LRU capacity throughout, evicting or deleting a tenant closes its
// sessions' event feeds, no session wedges, every response is well-formed,
// and the goroutine count returns to baseline when the churn ends.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speakql/internal/faultinject"
	"speakql/internal/registry"
	"speakql/internal/stream"
)

const churnTenants = 50
const churnMaxLive = 8

// jsonBody encodes a request body for hand-built requests (the ones that
// need tenant headers).
func jsonBody(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// churnTenantBody builds tenant i's registration payload: distinct tables
// and values so cross-tenant leakage would be visible in corrections.
func churnTenantBody(i int) map[string]any {
	return map[string]any{
		"tables":     []string{fmt.Sprintf("Orders%d", i), "Customers"},
		"attributes": []string{"OrderTotal", "CustomerName"},
		"values":     []string{fmt.Sprintf("Widget%d", i), "John", "Jon"},
	}
}

func TestTenantChurn(t *testing.T) {
	api := newAPIServer(t, 64)
	eng := api.engine
	reg, err := registry.New(registry.Config{
		Shared: registry.Shared{
			Structure:    eng.StructureComponent(),
			Cache:        eng.SearchCache(),
			TopKLiterals: 5,
		},
		MaxLive: churnMaxLive,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSeed("default", eng, eng.Catalog())
	api.SetRegistry(reg)
	api.SetSessionTTL(time.Hour) // sweeper on; tenant eviction is what closes feeds
	ts := serve(t, api)

	// Modest injected latency on the registry's load/evict paths widens the
	// race windows the suite is hunting (load-vs-delete, evict-vs-correct).
	inj, err := faultinject.Parse("registry:latency=1ms@0.5;seed=42")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	baseline := runtime.NumGoroutine()

	// Register all tenants up front (also churns the LRU: 50 puts through a
	// capacity-8 registry evict 42 times before the workers even start).
	client := ts.Client()
	putTenant := func(i int) (int, map[string]any) {
		return doJSON(t, http.MethodPut, fmt.Sprintf("%s/api/tenants/c%d", ts.URL, i), churnTenantBody(i))
	}
	for i := 0; i < churnTenants; i++ {
		if code, out := putTenant(i); code != http.StatusOK {
			t.Fatalf("PUT c%d = %d: %v", i, code, out)
		}
	}
	if st := reg.Stats(); st.Resident > churnMaxLive {
		t.Fatalf("resident %d exceeds LRU capacity %d after registration", st.Resident, churnMaxLive)
	}

	// SSE subscribers on a handful of tenant sessions; their feeds must end
	// (not hang) when churn evicts or deletes their tenants.
	sseCtx, sseCancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer sseCancel()
	var sseWG sync.WaitGroup
	var sseDone atomic.Int64
	startSSE := func(sessionID string) {
		sseWG.Add(1)
		go func() {
			defer sseWG.Done()
			events := make(chan stream.Event, 32)
			go func() {
				for range events {
				}
			}()
			_ = sseClient(sseCtx, t, ts.URL+"/api/stream/events?session="+sessionID, events)
			close(events) // ends the drainer; sseClient has returned
			sseDone.Add(1)
		}()
	}

	var wg sync.WaitGroup
	var badStatus atomic.Int64
	const workers = 8
	const opsPerWorker = 60
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWorker; op++ {
				i := (w*opsPerWorker + op*13) % churnTenants
				tid := fmt.Sprintf("c%d", i)
				switch op % 6 {
				case 0: // re-register (replaces catalog, churns LRU)
					code, _ := putTenant(i)
					if code != http.StatusOK {
						badStatus.Add(1)
					}
				case 1, 2: // tenant-scoped correction (warm hit or cold load)
					code, out := post(t, ts.URL+"/api/correct?tenant="+tid, map[string]any{
						"transcript": fmt.Sprintf("select order total from orders%d where customer name equals jon", i),
					})
					// 200 (served) and 404 (a racing delete won) are both
					// legitimate under churn; anything else is a bug.
					if code != http.StatusOK && code != http.StatusNotFound {
						badStatus.Add(1)
						t.Errorf("correct %s = %d: %v", tid, code, out)
					}
				case 3: // streaming dictation with an in-flight SSE subscriber
					req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/stream/dictate",
						jsonBody(t, map[string]any{"fragment": "select customer name from customers"}))
					if err != nil {
						t.Error(err)
						continue
					}
					req.Header.Set("X-SpeakQL-Tenant", tid)
					resp, err := client.Do(req)
					if err != nil {
						t.Error(err)
						continue
					}
					var out map[string]any
					_ = json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						if sid, _ := out["id"].(string); sid != "" && op%12 == 3 {
							startSSE(sid)
						}
					} else if resp.StatusCode != http.StatusNotFound {
						badStatus.Add(1)
						t.Errorf("stream dictate %s = %d: %v", tid, resp.StatusCode, out)
					}
				case 4: // describe (forces a load when evicted)
					code, _ := doJSON(t, http.MethodGet, ts.URL+"/api/tenants/"+tid, nil)
					if code != http.StatusOK && code != http.StatusNotFound {
						badStatus.Add(1)
					}
				case 5: // delete every so often, then re-create next round
					if op%18 == 5 {
						code, _ := doJSON(t, http.MethodDelete, ts.URL+"/api/tenants/"+tid, nil)
						if code != http.StatusOK && code != http.StatusNotFound {
							badStatus.Add(1)
						}
					}
				}
				if st := reg.Stats(); st.Resident > churnMaxLive {
					t.Errorf("resident %d exceeds LRU capacity %d mid-churn", st.Resident, churnMaxLive)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := badStatus.Load(); n > 0 {
		t.Fatalf("%d requests returned unexpected statuses", n)
	}
	if st := reg.Stats(); st.Resident > churnMaxLive {
		t.Fatalf("resident %d exceeds LRU capacity %d after churn", st.Resident, churnMaxLive)
	}
	// The seed tenant must have survived the churn untouched.
	if code, _ := post(t, ts.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees"}); code != http.StatusOK {
		t.Fatalf("seed tenant broken after churn: %d", code)
	}

	// Delete every tenant: all remaining tenant sessions' feeds must close,
	// so every SSE client ends without waiting for its generous context.
	for i := 0; i < churnTenants; i++ {
		code, _ := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/api/tenants/c%d", ts.URL, i), nil)
		if code != http.StatusOK && code != http.StatusNotFound {
			t.Fatalf("final DELETE c%d = %d", i, code)
		}
	}
	sseWG.Wait()
	sseCancel()
	if sseCtx.Err() == context.DeadlineExceeded {
		t.Fatal("SSE feeds outlived their tenants (subscribers ended only by timeout)")
	}

	// Everything the churn spawned must wind down to baseline once the
	// clients' idle keep-alive connections are released.
	http.DefaultClient.CloseIdleConnections()
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestTenantEvictionClosesFeed pins the targeted contract under no churn:
// when the LRU evicts a tenant, that tenant's sessions' SSE feeds end.
func TestTenantEvictionClosesFeed(t *testing.T) {
	api := newAPIServer(t, 0)
	eng := api.engine
	reg, err := registry.New(registry.Config{
		Shared:  registry.Shared{Structure: eng.StructureComponent(), TopKLiterals: 5},
		MaxLive: 1,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSeed("default", eng, eng.Catalog())
	api.SetRegistry(reg)
	ts := serve(t, api)

	if code, out := doJSON(t, http.MethodPut, ts.URL+"/api/tenants/watched", churnTenantBody(0)); code != http.StatusOK {
		t.Fatalf("PUT = %d: %v", code, out)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/api/session", jsonBody(t, map[string]any{}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-SpeakQL-Tenant", "watched")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sid := out["id"].(string)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	events := make(chan stream.Event, 8)
	done := make(chan error, 1)
	go func() { done <- sseClient(ctx, t, ts.URL+"/api/stream/events?session="+sid, events) }()
	go func() {
		for range events {
		}
	}()
	time.Sleep(50 * time.Millisecond)

	// A second tenant through the size-1 LRU evicts "watched".
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/api/tenants/usurper", churnTenantBody(1)); code != http.StatusOK {
		t.Fatal("PUT usurper failed")
	}
	select {
	case err := <-done:
		close(events) // ends the drainer; sseClient has returned
		if err != nil {
			t.Fatalf("SSE client: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("SSE feed survived its tenant's eviction")
	}
	// The session itself is gone too: later requests see 404.
	code, _ := post(t, ts.URL+"/api/dictate", map[string]any{"id": sid, "transcript": "x"})
	if code != http.StatusNotFound {
		t.Fatalf("dictate on evicted tenant's session = %d, want 404", code)
	}
}
