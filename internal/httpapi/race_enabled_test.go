//go:build race

package httpapi

// raceEnabled reports whether this test binary was built with -race, whose
// instrumentation inflates allocation counts past any pinned ceiling.
const raceEnabled = true
