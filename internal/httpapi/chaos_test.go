package httpapi

// chaos_test.go is the fault-injection chaos suite: concurrent mixed
// traffic (corrections, dictations, keyboard edits, stats polls) against a
// server whose pipeline stages are deterministically failing — injected
// latency, errors, and panics on structure determination, errors on literal
// determination, errors on the search cache. The suite asserts the
// service's resilience contract rather than any particular output: every
// response is well-formed JSON with a sane status, no goroutine leaks, the
// sessions stay unwedged, and the recovery counters in /api/stats reconcile
// exactly with what the injector reports having fired.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"speakql/internal/core"
	"speakql/internal/faultinject"
)

// chaosSpec exercises every stage and every fault kind at once. The
// probabilities keep most requests healthy so the suite also proves the
// degraded paths coexist with normal service.
const chaosSpec = "seed=1234;structure:latency=2ms@0.3,error@0.1,panic@0.05;literal:error@0.08;cache:error@0.25"

func TestChaosConcurrentMixedTraffic(t *testing.T) {
	api := newAPIServer(t, 64) // cache on, so the cache hook fires
	api.SetAdmission(4, 32)
	api.SetRequestTimeout(10 * time.Second) // generous: no organic deadline sheds
	api.SetSessionTTL(time.Hour)            // sweeper on, but nothing evictable
	ts := serve(t, api)

	const nSessions = 4
	ids := make([]string, nSessions)
	for i := range ids {
		_, out := post(t, ts.URL+"/api/session", map[string]any{})
		ids[i] = out["id"].(string)
	}

	transcripts := []string{
		"select salary from employees where gender equals M",
		"select first name from employees",
		"select count of everything from titles",
	}

	inj, err := faultinject.Parse(chaosSpec)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)

	before := statsSnapshot(t, ts.URL)
	baseline := runtime.NumGoroutine()

	const workers = 8
	const reqsPerWorker = 24
	type sample struct {
		status int
		body   map[string]any
		err    error
		kind   string
	}
	results := make(chan sample, workers*reqsPerWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < reqsPerWorker; rep++ {
				tr := transcripts[(w+rep)%len(transcripts)]
				var s sample
				switch rep % 4 {
				case 0:
					s.kind = "correct"
					s.status, s.body, s.err = postNoFail(ts.URL+"/api/correct",
						map[string]any{"transcript": tr, "topk": 2})
				case 1:
					s.kind = "dictate"
					s.status, s.body, s.err = postNoFail(ts.URL+"/api/dictate",
						map[string]any{"id": ids[(w+rep)%nSessions], "transcript": tr})
				case 2:
					s.kind = "edit"
					s.status, s.body, s.err = postNoFail(ts.URL+"/api/edit",
						map[string]any{"id": ids[(w+rep)%nSessions], "op": "insert", "pos": 0, "token": "SELECT"})
				case 3:
					s.kind = "stats"
					s.status, s.body, s.err = getJSON(ts.URL + "/api/stats")
				}
				results <- s
			}
		}(w)
	}
	wg.Wait()
	close(results)

	okStatuses := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusNotFound:            true,
		http.StatusInternalServerError: true,
		http.StatusServiceUnavailable:  true,
	}
	levels := map[string]bool{
		core.DegradationFull:          true,
		core.DegradationLiteralsTop1:  true,
		core.DegradationStructureOnly: true,
		core.DegradationShed:          true,
	}
	n500 := 0
	for s := range results {
		// Every response — including the failing ones — is decodable JSON.
		if s.err != nil {
			t.Fatalf("%s: transport/decode failure under chaos: %v", s.kind, s.err)
		}
		if !okStatuses[s.status] {
			t.Fatalf("%s: unexpected status %d (%v)", s.kind, s.status, s.body)
		}
		if s.status == http.StatusInternalServerError {
			n500++
		}
		// Correction responses always name their ladder level.
		if (s.kind == "correct" || s.kind == "dictate") &&
			(s.status == http.StatusOK || s.status == http.StatusInternalServerError) {
			if lvl, _ := s.body["degradation"].(string); !levels[lvl] {
				t.Fatalf("%s: degradation = %q, want a ladder level (%v)", s.kind, lvl, s.body)
			}
		}
	}

	faultinject.Set(nil)
	after := statsSnapshot(t, ts.URL)
	counts := inj.Counts()

	// The injector actually exercised every configured fault kind; a silent
	// no-op run would vacuously pass everything above.
	if counts["structure"].Panics == 0 || counts["structure"].Errors == 0 ||
		counts["structure"].Latencies == 0 || counts["literal"].Errors == 0 ||
		counts["cache"].Errors == 0 {
		t.Fatalf("chaos run fired too little: %+v", counts)
	}

	// Reconciliation: the service's recovery counters must match what the
	// injector fired, one to one.
	delta := func(block, key string) float64 {
		get := func(snap map[string]any) float64 {
			b, _ := snap[block].(map[string]any)
			if b == nil {
				return 0
			}
			switch v := b[key].(type) {
			case float64:
				return v
			case map[string]any:
				return 0
			}
			return 0
		}
		return get(after) - get(before)
	}
	degradedDelta := func(level string) float64 {
		get := func(snap map[string]any) float64 {
			res, _ := snap["resilience"].(map[string]any)
			if res == nil {
				return 0
			}
			deg, _ := res["degraded"].(map[string]any)
			if deg == nil {
				return 0
			}
			v, _ := deg["core.degraded."+level].(float64)
			return v
		}
		return get(after) - get(before)
	}

	if got, want := delta("resilience", "panics_recovered"), float64(counts["structure"].Panics); got != want {
		t.Errorf("panic.recovered grew by %v, injector fired %v panics", got, want)
	}
	if got, want := degradedDelta(core.DegradationShed), float64(counts["structure"].Errors); got != want {
		t.Errorf("core.degraded.shed grew by %v, injector fired %v structure errors", got, want)
	}
	if got, want := degradedDelta(core.DegradationStructureOnly), float64(counts["literal"].Errors); got != want {
		t.Errorf("core.degraded.structure_only grew by %v, injector fired %v literal errors", got, want)
	}
	if got, want := countersDelta(before, after, "cache.injected_misses"), float64(counts["cache"].Errors); got != want {
		t.Errorf("cache.injected_misses grew by %v, injector fired %v cache errors", got, want)
	}
	// Every 500 is accounted for: a recovered panic or an injected
	// structure error — nothing failed for an unexplained reason.
	if want := int(counts["structure"].Panics + counts["structure"].Errors); n500 != want {
		t.Errorf("saw %d 500s, expected exactly %d (panics + structure errors)", n500, want)
	}

	// The sessions survived the chaos unwedged: every one still dictates.
	for _, id := range ids {
		code, out, err := postNoFail(ts.URL+"/api/dictate",
			map[string]any{"id": id, "transcript": transcripts[0]})
		if err != nil || code != http.StatusOK {
			t.Errorf("session %s wedged after chaos: %d %v %v", id, code, out, err)
		}
	}

	// No goroutine leaks: once idle connections close, the count returns to
	// the pre-traffic baseline (small slack for runtime helpers).
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked under chaos: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Determinism: the same spec over the same request sequence fires the same
// faults. Run serially (one stream of identical requests) twice and compare
// the injector tallies.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() map[string]faultinject.Counts {
		api := newAPIServer(t, 16)
		ts := serve(t, api)
		inj, err := faultinject.Parse("seed=77;structure:error@0.2;literal:error@0.2;cache:error@0.2")
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Set(inj)
		defer faultinject.Set(nil)
		for i := 0; i < 40; i++ {
			code, body, err := postNoFail(ts.URL+"/api/correct",
				map[string]any{"transcript": "select salary from employees"})
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if code != http.StatusOK && code != http.StatusInternalServerError {
				t.Fatalf("request %d: status %d (%v)", i, code, body)
			}
		}
		return inj.Counts()
	}
	a := run()
	b := run()
	for _, stage := range []string{"structure", "literal", "cache"} {
		if a[stage] != b[stage] {
			t.Errorf("stage %s not deterministic: %+v vs %+v", stage, a[stage], b[stage])
		}
	}
}

// getJSON fetches a GET endpoint, decoding the body (goroutine-safe).
func getJSON(url string) (int, map[string]any, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("decode: %w", err)
	}
	return resp.StatusCode, out, nil
}

// countersDelta reads a top-level counter's growth between two stats
// snapshots.
func countersDelta(before, after map[string]any, name string) float64 {
	get := func(snap map[string]any) float64 {
		c, _ := snap["counters"].(map[string]any)
		if c == nil {
			return 0
		}
		v, _ := c[name].(float64)
		return v
	}
	return get(after) - get(before)
}
