package httpapi

// handoff.go makes Server a replica of a horizontally scaled serving tier:
// session state is checkpointed into a session.Store after every mutating
// request, and a request for a session this process has never seen restores
// it from its last snapshot — which is how a session survives its original
// replica dying and the router's hash ring remapping it here.
//
// Semantics, in the order they matter:
//
//   - Checkpoints happen under the per-session lock, so snapshots are always
//     a request boundary — never a torn mid-mutation state — and the store's
//     last-writer-wins matches the session's own serialization.
//   - A restore replays the snapshot's raw fragments through a fresh engine
//     fragment session (see internal/session); the pipeline's pinned
//     incremental ≡ one-shot identity makes the resumed stream bit-identical
//     to one that never moved. Resumed responses carry "resumed": true and
//     an X-SpeakQL-Resume-Ns header so the router can observe failover cost.
//   - TTL eviction is fleet-wide death: the sweeper deletes the snapshot
//     along with the local entry. A restore that races it double-checks the
//     store *after* registering the restored entry; if the snapshot is gone
//     the restore unwinds and the request gets the typed lost verdict. The
//     session is therefore never half-restored: the caller sees a fully
//     live session or a typed 404, nothing in between.
//   - When no snapshot exists (or the store is disabled) a session miss on a
//     store-configured replica answers 404 with "code": "stream.lost" — the
//     router's signal that the dictation state is unrecoverable and the
//     client must restart it. Counters: session.checkpoints,
//     session.restores, stream.resumed, stream.lost.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"speakql/internal/core"
	"speakql/internal/session"
	"speakql/internal/stream"
)

// SetNodeID namespaces this replica's session ids (ids become
// "<node>-s<N>"), so replicas behind one router never mint colliding ids
// and a restarted replica (fresh counter) cannot collide with ids its
// predecessor handed out. Call before Handler.
func (s *Server) SetNodeID(node string) { s.nodeID = node }

// SetSessionStore connects this replica to the fleet's snapshot store:
// sessions checkpoint into it after every mutating request and unknown
// session ids are restored from it before being 404ed. Call before Handler.
func (s *Server) SetSessionStore(st session.Store) {
	s.store = st
	s.checkpoint = st != nil
}

// SetCheckpointing toggles snapshot writes while leaving restore active —
// chaos tests use checkpoint-disabled replicas to force the stream.lost
// path deterministically. No-op without a store.
func (s *Server) SetCheckpointing(enabled bool) { s.checkpoint = enabled && s.store != nil }

// checkpointLocked persists the session's current snapshot under the
// caller's entry.mu, so every stored snapshot is a clean request boundary.
// Checkpoint failures are counted, not surfaced: the request itself
// succeeded, and the worst case is resuming from the previous snapshot.
func (s *Server) checkpointLocked(id string, entry *sessionEntry) {
	if s.store == nil || !s.checkpoint {
		return
	}
	if err := s.store.Save(entry.sess.Snapshot(id, entry.tenant)); err != nil {
		s.reg.Add("session.checkpoint_errors", 1)
		return
	}
	s.reg.Add("session.checkpoints", 1)
}

// lookupSession finds the session locally or, on a store-configured
// replica, restores it from its last snapshot. resumedNs > 0 reports a
// restore this request performed (the failover cost the router observes);
// ok=false means the session is gone fleet-wide — answer with
// writeSessionMiss.
func (s *Server) lookupSession(ctx context.Context, id string) (entry *sessionEntry, resumedNs int64, ok bool) {
	if e, found := s.session(id); found {
		return e, 0, true
	}
	if s.store == nil || id == "" {
		return nil, 0, false
	}
	t0 := time.Now()
	snap, found, err := s.store.Load(id)
	if err != nil || !found {
		return nil, 0, false
	}
	eng, ok := s.engineFor(snap.Tenant)
	if !ok {
		// The owning tenant was evicted or deleted while the session was
		// in flight between replicas; the session dies with it.
		return nil, 0, false
	}
	e := &sessionEntry{events: stream.NewBroadcaster(), tenant: snap.Tenant}
	cfg := stream.Config{Events: e.events, Session: id}
	sess, out := session.Restore(ctx, eng, cfg, snap)
	if out.Err != nil {
		// Degraded restore pass (deadline, injected fault): the session is
		// fully wired and finalize retries at full fidelity — count it and
		// continue rather than dropping a recoverable session.
		s.reg.Add("session.restore_degraded", 1)
	}
	e.sess = sess
	e.touch()
	winner, inserted := s.sessions.putIfAbsent(id, e)
	if !inserted {
		// A concurrent request restored (or re-created) the session first;
		// converge on that entry and discard this restore.
		e.events.Close()
		winner.touch()
		return winner, 0, true
	}
	// Double-check against a racing TTL eviction: eviction removes the local
	// entry and then deletes the snapshot fleet-wide. Re-loading *after*
	// registering means a Delete that wins this race is always observed here
	// — the restore unwinds and the caller gets the typed lost verdict
	// instead of resurrecting a session the fleet already declared dead.
	if _, still, _ := s.store.Load(id); !still {
		s.sessions.removeExact(id, e)
		e.events.Close()
		return nil, 0, false
	}
	s.reg.Add("session.restores", 1)
	if snap.Stream != nil {
		s.reg.Add("stream.resumed", 1)
	}
	if snap.Tenant != "" {
		s.reg.Add("tenant."+snap.Tenant+".requests", 1)
	}
	return e, time.Since(t0).Nanoseconds(), true
}

// engineFor resolves the engine sessions of the given tenant correct
// against (the shared engine for the empty tenant). ok=false means the
// tenant no longer exists — any session labeled with it is dead.
func (s *Server) engineFor(tenant string) (*core.Engine, bool) {
	if s.tenants != nil && tenant != "" {
		t, err := s.tenants.Acquire(tenant)
		if err != nil {
			return nil, false
		}
		return t.Engine, true
	}
	return s.engine, true
}

// resyncLocked refreshes a locally live session from the fleet's snapshot
// when the store holds a strictly newer stream. This closes the stale-copy
// hole: a replica that once owned a session keeps its in-memory entry even
// after the ring routes the session elsewhere, and if routing later falls
// back here (the newer owner died), serving the stale copy would silently
// drop the fragments applied in between. Callers hold entry.mu. Returns the
// rebuild nanoseconds when a resync happened, 0 otherwise.
func (s *Server) resyncLocked(ctx context.Context, id string, entry *sessionEntry) int64 {
	if s.store == nil {
		return 0
	}
	snap, found, err := s.store.Load(id)
	if err != nil || !found || snap.Stream == nil {
		return 0
	}
	cur := 0
	if d := entry.sess.Stream(); d != nil {
		_, _, cur = d.SnapshotState()
	}
	if snap.Stream.Seq <= cur {
		return 0
	}
	t0 := time.Now()
	eng, ok := s.engineFor(snap.Tenant)
	if !ok {
		return 0
	}
	sess, out := session.Restore(ctx, eng, stream.Config{Events: entry.events, Session: id}, snap)
	if out.Err != nil {
		s.reg.Add("session.restore_degraded", 1)
	}
	entry.sess = sess
	s.reg.Add("session.resyncs", 1)
	s.reg.Add("stream.resumed", 1)
	return time.Since(t0).Nanoseconds()
}

// resumeHeader is the response header carrying the nanoseconds a restored
// request spent rebuilding the session (the router folds it into its
// failover-latency histogram).
const resumeHeader = "X-SpeakQL-Resume-Ns"

// markResumed stamps a response produced by a request that restored its
// session: the resumed field tells the client its session moved replicas,
// and the header carries the rebuild cost for the router.
func markResumed(w http.ResponseWriter, resp map[string]any, resumedNs int64) {
	if resumedNs <= 0 {
		return
	}
	w.Header().Set(resumeHeader, strconv.FormatInt(resumedNs, 10))
	if resp != nil {
		resp["resumed"] = true
	}
}

// writeSessionMiss answers a fleet-wide session miss. On a store-configured
// replica the 404 is typed "stream.lost" — the router's terminal verdict
// that the dictation state is unrecoverable (replica died between
// checkpoints, or the TTL evicted it) and the client must restart.
func (s *Server) writeSessionMiss(w http.ResponseWriter, id string) {
	if s.store != nil {
		s.reg.Add("stream.lost", 1)
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": fmt.Sprintf("session %q lost: no live entry and no snapshot survives", id),
			"code":  "stream.lost",
		})
		return
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("unknown session %q", id))
}
