package httpapi

// memo_chaos_test.go re-runs the chaos and tenant-churn patterns against a
// memo-enabled server. The contract under test: the memo is completely
// transparent — while fault injection is armed it is bypassed in both
// directions (so the chaos reconciliation invariants hold unchanged and its
// counters stay frozen), session-stateful endpoints never consult it, and a
// tenant catalog change invalidates that tenant's cached corrections so
// churn never serves a correction rendered against a dead schema.

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"speakql/internal/faultinject"
	"speakql/internal/registry"
)

// Mixed chaos traffic with the memo enabled: every invariant of the
// memo-less chaos suite must survive, and the memo must sit frozen (no
// lookups served, nothing cached) for as long as the injector is armed.
func TestChaosMixedTrafficWithMemo(t *testing.T) {
	api := newAPIServer(t, 64)
	api.SetAdmission(4, 32)
	api.SetRequestTimeout(10 * time.Second)
	api.SetCorrectionMemo(64)
	ts := serve(t, api)

	_, out := post(t, ts.URL+"/api/session", map[string]any{})
	sid := out["id"].(string)

	// Pre-chaos: populate one memo entry so the armed phase can prove cached
	// bodies are not served while faults fly.
	warm := `{"transcript":"select salary from employees where gender equals M","topk":2}`
	code, healthyBody := postBytes(t, ts.URL+"/api/correct", warm)
	if code != http.StatusOK {
		t.Fatalf("warmup: %d", code)
	}
	if st := api.memo.stats(); st.Entries != 1 {
		t.Fatalf("warmup not cached: %+v", st)
	}

	inj, err := faultinject.Parse("seed=99;structure:error@1")
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(inj)
	defer faultinject.Set(nil)
	before := api.reg.Snapshot().Counters

	// Every armed request — including the exact transcript sitting in the
	// memo — must reach the failing pipeline and 500.
	const workers = 6
	const reqsPerWorker = 10
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < reqsPerWorker; rep++ {
				if rep%2 == 0 {
					code, body, err := postNoFail(ts.URL+"/api/correct",
						map[string]any{"transcript": "select salary from employees where gender equals M", "topk": 2})
					if err != nil || code != http.StatusInternalServerError {
						t.Errorf("armed correct = %d (%v, err %v), want 500", code, body, err)
						bad.Add(1)
					}
				} else {
					// Dictations are session-stateful and never consult the
					// memo regardless of injection; they 500 here too.
					code, _, err := postNoFail(ts.URL+"/api/dictate",
						map[string]any{"id": sid, "transcript": "select first name from employees"})
					if err != nil || code != http.StatusInternalServerError {
						bad.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if bad.Load() > 0 {
		t.Fatalf("%d armed requests escaped the injector", bad.Load())
	}

	after := api.reg.Snapshot().Counters
	for _, k := range []string{"server.memo_hit", "server.memo_miss", "server.memo_inflight_join"} {
		if d := after[k] - before[k]; d != 0 {
			t.Errorf("%s moved by %d during the armed phase — memo not bypassed", k, d)
		}
	}
	if st := api.memo.stats(); st.Entries != 1 || st.Inflight != 0 {
		t.Errorf("armed phase altered the memo: %+v", st)
	}

	// Disarm: the pre-chaos entry serves again, byte-identical, and the
	// session is unwedged.
	faultinject.Set(nil)
	code, body := postBytes(t, ts.URL+"/api/correct", warm)
	if code != http.StatusOK || !bytes.Equal(body, healthyBody) {
		t.Errorf("post-chaos hit: %d, byte-identical=%v", code, bytes.Equal(body, healthyBody))
	}
	if code, _, err := postNoFail(ts.URL+"/api/dictate",
		map[string]any{"id": sid, "transcript": "select first name from employees"}); err != nil || code != http.StatusOK {
		t.Errorf("session wedged after chaos: %d %v", code, err)
	}
}

// Tenant churn with the memo enabled: re-registering a tenant with a fresh
// catalog invalidates its cached corrections, so concurrent PUT/correct
// cycles never serve a correction naming a table the tenant no longer has.
func TestTenantChurnWithMemo(t *testing.T) {
	api := newAPIServer(t, 64)
	eng := api.engine
	reg, err := registry.New(registry.Config{
		Shared: registry.Shared{
			Structure:    eng.StructureComponent(),
			Cache:        eng.SearchCache(),
			TopKLiterals: 5,
		},
		MaxLive: 4,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.SetSeed("default", eng, eng.Catalog())
	api.SetRegistry(reg)
	api.SetCorrectionMemo(64)
	ts := serve(t, api)

	// gen flips the catalog between two schemas; the correction for the
	// fixed transcript must always name the *current* generation's table.
	putGen := func(tid string, gen int) {
		code, out := doJSON(t, http.MethodPut, ts.URL+"/api/tenants/"+tid, map[string]any{
			"tables":     []string{fmt.Sprintf("LedgerGen%d", gen)},
			"attributes": []string{"EntryTotal"},
			"values":     []string{"Widget"},
		})
		if code != http.StatusOK {
			t.Errorf("PUT %s gen%d = %d: %v", tid, gen, code, out)
		}
	}
	correct := func(tid string) (int, map[string]any) {
		return post(t, ts.URL+"/api/correct?tenant="+tid, map[string]any{
			"transcript": "select entry total from ledger gen",
		})
	}

	const tenants = 3
	for i := 0; i < tenants; i++ {
		putGen(fmt.Sprintf("m%d", i), 0)
	}

	// Serial generation check first: cached gen-0 body must die with gen 0.
	putGen("m0", 0)
	if code, out := correct("m0"); code != http.StatusOK {
		t.Fatalf("gen0 correct: %d %v", code, out)
	}
	putGen("m0", 1)
	code, out := correct("m0")
	if code != http.StatusOK {
		t.Fatalf("gen1 correct: %d %v", code, out)
	}
	sql := out["candidates"].([]any)[0].(map[string]any)["sql"].(string)
	if !strings.Contains(sql, "LedgerGen1") {
		t.Fatalf("correction after catalog swap still names the old schema: %q", sql)
	}

	// Concurrent churn: workers interleave swaps and corrections. Any 200
	// must name one of the two live generations (never a foreign tenant's
	// table); 404s from racing deletes are legitimate.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < 30; op++ {
				tid := fmt.Sprintf("m%d", (w+op)%tenants)
				switch op % 3 {
				case 0:
					putGen(tid, op%2)
				default:
					code, out, err := postNoFail(ts.URL+"/api/correct?tenant="+tid,
						map[string]any{"transcript": "select entry total from ledger gen"})
					if err != nil {
						t.Errorf("correct %s: %v", tid, err)
						continue
					}
					if code != http.StatusOK && code != http.StatusNotFound {
						t.Errorf("correct %s = %d: %v", tid, code, out)
						continue
					}
					if code != http.StatusOK {
						continue
					}
					cands, _ := out["candidates"].([]any)
					if len(cands) == 0 {
						continue
					}
					sql, _ := cands[0].(map[string]any)["sql"].(string)
					if !strings.Contains(sql, "LedgerGen0") && !strings.Contains(sql, "LedgerGen1") {
						t.Errorf("correction for %s names no live generation: %q", tid, sql)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if snap := api.reg.Snapshot().Counters; snap["server.memo_invalidated"] == 0 {
		t.Error("churn never invalidated a memo entry — invalidation hook not firing")
	}
	// The seed tenant's cache is untouched by other tenants' invalidations.
	if code, _ := post(t, ts.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees"}); code != http.StatusOK {
		t.Fatalf("seed tenant broken after memo churn: %d", code)
	}
}
