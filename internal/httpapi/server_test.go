package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/grammar"
	"speakql/internal/literal"
	"speakql/internal/sqlengine"
)

var (
	testSrv *httptest.Server
	testDB  *sqlengine.Database
	testEng *core.Engine
)

func srv(t *testing.T) *httptest.Server {
	t.Helper()
	if testSrv == nil {
		testDB = dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 100, Departments: 5, Seed: 1})
		cat := literal.NewCatalog(testDB.TableNames(), testDB.AttributeNames(), testDB.StringValues(0))
		eng, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		testEng = eng
		testSrv = httptest.NewServer(New(eng, testDB).Handler())
	}
	return testSrv
}

func post(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestCorrectEndpoint(t *testing.T) {
	s := srv(t)
	code, out := post(t, s.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees where gender equals M",
		"topk":       3,
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	cands := out["candidates"].([]any)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	first := cands[0].(map[string]any)
	if !strings.HasPrefix(first["sql"].(string), "SELECT Salary FROM Employees WHERE") {
		t.Errorf("sql = %v", first["sql"])
	}
}

func TestCorrectBadJSON(t *testing.T) {
	s := srv(t)
	resp, err := http.Post(s.URL+"/api/correct", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSessionFlow(t *testing.T) {
	s := srv(t)
	_, out := post(t, s.URL+"/api/session", map[string]any{})
	id := out["id"].(string)
	if id == "" {
		t.Fatal("no session id")
	}

	code, out := post(t, s.URL+"/api/dictate", map[string]any{
		"id":         id,
		"transcript": "select salary from employees where gender equals M",
	})
	if code != http.StatusOK {
		t.Fatalf("dictate status = %d: %v", code, out)
	}
	if out["dictations"].(float64) != 1 {
		t.Errorf("dictations = %v", out["dictations"])
	}
	sqlText := out["sql"].(string)
	if !strings.Contains(sqlText, "FROM Employees") {
		t.Errorf("sql = %q", sqlText)
	}

	// Clause-level re-dictation.
	code, out = post(t, s.URL+"/api/dictate", map[string]any{
		"id":         id,
		"transcript": "select first name",
		"clause":     true,
	})
	if code != http.StatusOK || !strings.Contains(out["sql"].(string), "FirstName") {
		t.Fatalf("clause dictate: %v", out)
	}

	// Keyboard edit.
	toks := out["tokens"].([]any)
	code, out = post(t, s.URL+"/api/edit", map[string]any{
		"id": id, "op": "insert", "pos": len(toks), "token": "LIMIT",
	})
	if code != http.StatusOK {
		t.Fatalf("edit: %v", out)
	}
	if out["touches"].(float64) == 0 {
		t.Error("edit cost no touches")
	}
	if out["effort"].(float64) != out["touches"].(float64)+out["dictations"].(float64) {
		t.Error("effort mismatch")
	}
}

func TestEditErrors(t *testing.T) {
	s := srv(t)
	code, _ := post(t, s.URL+"/api/edit", map[string]any{
		"id": "nope", "op": "insert", "pos": 0, "token": "x"})
	if code != http.StatusNotFound {
		t.Errorf("unknown session status = %d", code)
	}
	_, out := post(t, s.URL+"/api/session", map[string]any{})
	id := out["id"].(string)
	code, _ = post(t, s.URL+"/api/edit", map[string]any{
		"id": id, "op": "explode", "pos": 0, "token": "x"})
	if code != http.StatusBadRequest {
		t.Errorf("bad op status = %d", code)
	}
}

func TestExecuteEndpoint(t *testing.T) {
	s := srv(t)
	code, out := post(t, s.URL+"/api/execute", map[string]any{
		"sql": "SELECT COUNT ( * ) FROM Employees"})
	if code != http.StatusOK {
		t.Fatalf("execute: %v", out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].([]any)[0].(string) != "100" {
		t.Errorf("count = %v", rows[0])
	}
	code, out = post(t, s.URL+"/api/execute", map[string]any{"sql": "garbage"})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad sql status = %d (%v)", code, out)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/api/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	tables := out["tables"].(map[string]any)
	if len(tables) != 6 {
		t.Errorf("tables = %d", len(tables))
	}
	cols := tables["Salaries"].([]any)
	found := false
	for _, c := range cols {
		if strings.HasPrefix(c.(string), "Salary ") {
			found = true
		}
	}
	if !found {
		t.Errorf("Salaries cols = %v", cols)
	}
}

func TestMethodRouting(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/api/correct")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET on POST route = %d", resp.StatusCode)
	}
}

func TestKeyboardEndpoint(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/api/keyboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["keywords"]) == 0 || len(out["tables"]) != 6 {
		t.Errorf("keyboard lists: %d keywords, %d tables",
			len(out["keywords"]), len(out["tables"]))
	}
	found := false
	for _, a := range out["attributes"] {
		if a == "Salary" {
			found = true
		}
	}
	if !found {
		t.Error("attributes list missing Salary")
	}
}

func TestIndexPage(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	page := string(body[:n])
	if resp.StatusCode != http.StatusOK || !strings.Contains(page, "SpeakQL") {
		t.Errorf("index page status=%d", resp.StatusCode)
	}
	for _, needle := range []string{"/api/dictate", "/api/keyboard", "/api/execute"} {
		if !strings.Contains(page, needle) {
			t.Errorf("index page missing %s wiring", needle)
		}
	}
}

func TestCorrectReportsBothStageLatencies(t *testing.T) {
	s := srv(t)
	code, out := post(t, s.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees where gender equals M",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	for _, key := range []string{"structure_ms", "literal_ms"} {
		if _, ok := out[key].(float64); !ok {
			t.Errorf("response missing %s: %v", key, out)
		}
	}
	if out["deadline_hit"].(bool) {
		t.Error("deadline_hit on an ordinary request")
	}
}

func statsSnapshot(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func stageField(t *testing.T, snap map[string]any, stage, field string) float64 {
	t.Helper()
	stages, ok := snap["stages"].(map[string]any)
	if !ok {
		t.Fatalf("no stages in %v", snap)
	}
	st, ok := stages[stage].(map[string]any)
	if !ok {
		return 0 // stage not recorded yet
	}
	return st[field].(float64)
}

func TestStatsEndpointTracksCorrections(t *testing.T) {
	s := srv(t)
	before := statsSnapshot(t, s.URL)
	code, _ := post(t, s.URL+"/api/correct", map[string]any{
		"transcript": "select first name from employees where salary greater than 70000",
	})
	if code != http.StatusOK {
		t.Fatal("correct failed")
	}
	after := statsSnapshot(t, s.URL)
	for _, stage := range []string{"http.correct", "core.correct", "structure.determine", "literal.determine"} {
		if d := stageField(t, after, stage, "count") - stageField(t, before, stage, "count"); d < 1 {
			t.Errorf("stage %s count grew by %v, want >= 1", stage, d)
		}
		if d := stageField(t, after, stage, "total_ns") - stageField(t, before, stage, "total_ns"); d <= 0 {
			t.Errorf("stage %s total_ns grew by %v, want > 0", stage, d)
		}
	}
	cb, _ := before["counters"].(map[string]any)["search.nodes_visited"].(float64)
	ca, _ := after["counters"].(map[string]any)["search.nodes_visited"].(float64)
	if ca <= cb {
		t.Errorf("search.nodes_visited did not grow: %v -> %v", cb, ca)
	}
}

// A cache-enabled server must expose the cache block in /api/stats, with
// hits appearing once a masked shape repeats; the default server (no cache)
// must omit the block. pprof mounts only when enabled.
func TestStatsCacheBlockAndPprof(t *testing.T) {
	db := dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 50, Departments: 3, Seed: 9})
	cat := literal.NewCatalog(db.TableNames(), db.AttributeNames(), db.StringValues(0))
	eng, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat, StructureCacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	api := New(eng, db)
	api.EnablePprof()
	cs := httptest.NewServer(api.Handler())
	defer cs.Close()

	for i := 0; i < 2; i++ { // same transcript twice → second is a hit
		if code, _ := post(t, cs.URL+"/api/correct", map[string]any{
			"transcript": "select name from employees",
		}); code != http.StatusOK {
			t.Fatal("correct failed")
		}
	}
	stats := statsSnapshot(t, cs.URL)
	cache, ok := stats["cache"].(map[string]any)
	if !ok {
		t.Fatalf("no cache block in stats: %v", stats)
	}
	if hits := cache["hits"].(float64); hits < 1 {
		t.Errorf("cache hits = %v, want >= 1", hits)
	}
	if cache["capacity"].(float64) != 32 {
		t.Errorf("cache capacity = %v", cache["capacity"])
	}
	// The obs counters mirror the same numbers.
	counters := stats["counters"].(map[string]any)
	if counters["cache.search_hits"].(float64) < 1 {
		t.Errorf("cache.search_hits counter missing: %v", counters)
	}
	resp, err := http.Get(cs.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status = %d", resp.StatusCode)
	}

	// Cache-less server: no cache block, no pprof.
	plain := srv(t)
	if _, ok := statsSnapshot(t, plain.URL)["cache"]; ok {
		t.Error("cache block present without a cache")
	}
	resp, err = http.Get(plain.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof mounted without -pprof")
	}
}

// postNoFail is a goroutine-safe variant of post: it reports failures as
// error values instead of calling t.Fatal (which must not run off the test
// goroutine).
func postNoFail(url string, body any) (int, map[string]any, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, out, nil
}

// Race-focused load test: session dictations and keyboard edits across many
// sessions at once, interleaved with stateless /api/correct traffic and
// direct engine use. Under -race this exercises the per-session locking; the
// assertions verify sessions never bleed into each other.
func TestConcurrentSessionTraffic(t *testing.T) {
	s := srv(t)
	eng := testEng
	const nSessions = 8
	ids := make([]string, nSessions)
	for i := range ids {
		_, out := post(t, s.URL+"/api/session", map[string]any{})
		ids[i] = out["id"].(string)
	}
	transcripts := []string{
		"select salary from employees where gender equals M",
		"select first name from employees",
		"select count of everything from titles",
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := ids[i]
			for rep := 0; rep < 3; rep++ {
				code, out, err := postNoFail(s.URL+"/api/dictate", map[string]any{
					"id": id, "transcript": transcripts[(i+rep)%len(transcripts)],
				})
				if err != nil || code != http.StatusOK {
					errs <- fmt.Sprintf("dictate %s: %d %v %v", id, code, out, err)
					return
				}
				code, out, err = postNoFail(s.URL+"/api/edit", map[string]any{
					"id": id, "op": "insert", "pos": 0, "token": "SELECT",
				})
				if err != nil || code != http.StatusOK {
					errs <- fmt.Sprintf("edit %s: %d %v %v", id, code, out, err)
					return
				}
			}
			// Each session saw exactly its own 3 dictations plus this one.
			_, out, err := postNoFail(s.URL+"/api/dictate", map[string]any{
				"id": id, "transcript": transcripts[0],
			})
			if err != nil {
				errs <- fmt.Sprintf("final dictate %s: %v", id, err)
				return
			}
			if got := out["dictations"].(float64); got != 4 {
				errs <- fmt.Sprintf("session %s dictations = %v, want 4", id, got)
			}
		}(i)
	}
	// Stateless correction traffic and direct engine use alongside.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				eng.Correct(transcripts[(w+rep)%len(transcripts)])
				code, _, err := postNoFail(s.URL+"/api/correct", map[string]any{
					"transcript": transcripts[rep%len(transcripts)],
				})
				if err != nil || code != http.StatusOK {
					errs <- fmt.Sprintf("correct: %d %v", code, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// The stats literal block reports whether the phonetic BK-tree index is
// active and groups the voting counters; a correction must grow them.
func TestStatsLiteralBlock(t *testing.T) {
	s := srv(t)
	code, _ := post(t, s.URL+"/api/correct", map[string]any{
		"transcript": "select first name from employees",
	})
	if code != http.StatusOK {
		t.Fatal("correct failed")
	}
	stats := statsSnapshot(t, s.URL)
	lit, ok := stats["literal"].(map[string]any)
	if !ok {
		t.Fatalf("stats response has no literal block: %v", stats)
	}
	if indexed, _ := lit["indexed"].(bool); !indexed {
		t.Errorf("literal.indexed = %v, want true", lit["indexed"])
	}
	counters, ok := lit["counters"].(map[string]any)
	if !ok {
		t.Fatalf("literal block has no counters: %v", lit)
	}
	if calls, _ := counters["literal.vote_calls"].(float64); calls < 1 {
		t.Errorf("literal.vote_calls = %v, want >= 1", counters["literal.vote_calls"])
	}
	if nodes, _ := counters["literal.bk_nodes"].(float64); nodes < 1 {
		t.Errorf("literal.bk_nodes = %v, want >= 1", counters["literal.bk_nodes"])
	}
	if _, ok := counters["literal.entries_skipped"]; !ok {
		t.Error("literal.entries_skipped counter missing")
	}
}
