package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"speakql/internal/core"
	"speakql/internal/dataset"
	"speakql/internal/grammar"
	"speakql/internal/literal"
	"speakql/internal/sqlengine"
)

var (
	testSrv *httptest.Server
	testDB  *sqlengine.Database
)

func srv(t *testing.T) *httptest.Server {
	t.Helper()
	if testSrv == nil {
		testDB = dataset.NewEmployeesDB(dataset.EmployeesConfig{Employees: 100, Departments: 5, Seed: 1})
		cat := literal.NewCatalog(testDB.TableNames(), testDB.AttributeNames(), testDB.StringValues(0))
		eng, err := core.NewEngine(core.Config{Grammar: grammar.TestScale(), Catalog: cat})
		if err != nil {
			t.Fatal(err)
		}
		testSrv = httptest.NewServer(New(eng, testDB).Handler())
	}
	return testSrv
}

func post(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp.StatusCode, out
}

func TestCorrectEndpoint(t *testing.T) {
	s := srv(t)
	code, out := post(t, s.URL+"/api/correct", map[string]any{
		"transcript": "select salary from employees where gender equals M",
		"topk":       3,
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	cands := out["candidates"].([]any)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	first := cands[0].(map[string]any)
	if !strings.HasPrefix(first["sql"].(string), "SELECT Salary FROM Employees WHERE") {
		t.Errorf("sql = %v", first["sql"])
	}
}

func TestCorrectBadJSON(t *testing.T) {
	s := srv(t)
	resp, err := http.Post(s.URL+"/api/correct", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSessionFlow(t *testing.T) {
	s := srv(t)
	_, out := post(t, s.URL+"/api/session", map[string]any{})
	id := out["id"].(string)
	if id == "" {
		t.Fatal("no session id")
	}

	code, out := post(t, s.URL+"/api/dictate", map[string]any{
		"id":         id,
		"transcript": "select salary from employees where gender equals M",
	})
	if code != http.StatusOK {
		t.Fatalf("dictate status = %d: %v", code, out)
	}
	if out["dictations"].(float64) != 1 {
		t.Errorf("dictations = %v", out["dictations"])
	}
	sqlText := out["sql"].(string)
	if !strings.Contains(sqlText, "FROM Employees") {
		t.Errorf("sql = %q", sqlText)
	}

	// Clause-level re-dictation.
	code, out = post(t, s.URL+"/api/dictate", map[string]any{
		"id":         id,
		"transcript": "select first name",
		"clause":     true,
	})
	if code != http.StatusOK || !strings.Contains(out["sql"].(string), "FirstName") {
		t.Fatalf("clause dictate: %v", out)
	}

	// Keyboard edit.
	toks := out["tokens"].([]any)
	code, out = post(t, s.URL+"/api/edit", map[string]any{
		"id": id, "op": "insert", "pos": len(toks), "token": "LIMIT",
	})
	if code != http.StatusOK {
		t.Fatalf("edit: %v", out)
	}
	if out["touches"].(float64) == 0 {
		t.Error("edit cost no touches")
	}
	if out["effort"].(float64) != out["touches"].(float64)+out["dictations"].(float64) {
		t.Error("effort mismatch")
	}
}

func TestEditErrors(t *testing.T) {
	s := srv(t)
	code, _ := post(t, s.URL+"/api/edit", map[string]any{
		"id": "nope", "op": "insert", "pos": 0, "token": "x"})
	if code != http.StatusNotFound {
		t.Errorf("unknown session status = %d", code)
	}
	_, out := post(t, s.URL+"/api/session", map[string]any{})
	id := out["id"].(string)
	code, _ = post(t, s.URL+"/api/edit", map[string]any{
		"id": id, "op": "explode", "pos": 0, "token": "x"})
	if code != http.StatusBadRequest {
		t.Errorf("bad op status = %d", code)
	}
}

func TestExecuteEndpoint(t *testing.T) {
	s := srv(t)
	code, out := post(t, s.URL+"/api/execute", map[string]any{
		"sql": "SELECT COUNT ( * ) FROM Employees"})
	if code != http.StatusOK {
		t.Fatalf("execute: %v", out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].([]any)[0].(string) != "100" {
		t.Errorf("count = %v", rows[0])
	}
	code, out = post(t, s.URL+"/api/execute", map[string]any{"sql": "garbage"})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad sql status = %d (%v)", code, out)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/api/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	tables := out["tables"].(map[string]any)
	if len(tables) != 6 {
		t.Errorf("tables = %d", len(tables))
	}
	cols := tables["Salaries"].([]any)
	found := false
	for _, c := range cols {
		if strings.HasPrefix(c.(string), "Salary ") {
			found = true
		}
	}
	if !found {
		t.Errorf("Salaries cols = %v", cols)
	}
}

func TestMethodRouting(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/api/correct")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed && resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET on POST route = %d", resp.StatusCode)
	}
}

func TestKeyboardEndpoint(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/api/keyboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["keywords"]) == 0 || len(out["tables"]) != 6 {
		t.Errorf("keyboard lists: %d keywords, %d tables",
			len(out["keywords"]), len(out["tables"]))
	}
	found := false
	for _, a := range out["attributes"] {
		if a == "Salary" {
			found = true
		}
	}
	if !found {
		t.Error("attributes list missing Salary")
	}
}

func TestIndexPage(t *testing.T) {
	s := srv(t)
	resp, err := http.Get(s.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	page := string(body[:n])
	if resp.StatusCode != http.StatusOK || !strings.Contains(page, "SpeakQL") {
		t.Errorf("index page status=%d", resp.StatusCode)
	}
	for _, needle := range []string{"/api/dictate", "/api/keyboard", "/api/execute"} {
		if !strings.Contains(page, needle) {
			t.Errorf("index page missing %s wiring", needle)
		}
	}
}
