package httpapi

// stream.go exposes the clause-streaming dictation pipeline over HTTP:
//
//	POST /api/stream/dictate  — correct one more fragment (auto-creates a
//	                            session when id is empty); admission-gated
//	                            and deadline-bounded like the other
//	                            correction endpoints.
//	POST /api/stream/finalize — close the dictation with a full-fidelity
//	                            re-pass; 409 when there is nothing to close.
//	GET  /api/stream/events   — Server-Sent Events feed of per-fragment
//	                            snapshots. Deliberately NOT admission-gated:
//	                            subscribers are cheap long-lived readers,
//	                            and shedding them under load would kill the
//	                            display updates exactly when degraded
//	                            responses make them most useful.
//
// Every session owns one event broadcaster, created with the session so the
// TTL sweeper and Server.Close can terminate its subscribers without
// touching the session lock (an in-flight correction must never wedge
// eviction or shutdown).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"speakql/internal/core"
	"speakql/internal/stream"
)

type streamDictateReq struct {
	ID       string `json:"id"`
	Fragment string `json:"fragment"`
	// Seq, when positive, is the sequence number the client expects this
	// fragment to receive — its idempotency key. If the session's dictation
	// already reached Seq, the fragment was applied by an earlier attempt
	// whose response was lost (a replica died mid-reply, a proxy gave up):
	// the server acknowledges with the current display instead of applying
	// the fragment twice. This is what makes client-side retries through the
	// router exactly-once.
	Seq int `json:"seq,omitempty"`
}

type streamFinalizeReq struct {
	ID string `json:"id"`
}

// streamConflict reports whether err is a dictation-lifecycle rejection,
// answered with 409 Conflict rather than 500.
func streamConflict(err error) bool {
	return errors.Is(err, stream.ErrFinalized) || errors.Is(err, stream.ErrClosed)
}

// streamState shapes one fragment correction for the JSON response. The
// validation keys appear only when the stage actually touched this
// correction, so a -validate=off server's stream responses are unchanged.
func streamState(id string, out core.FragmentOutput, deadlineHit bool) map[string]any {
	best := out.Best()
	resp := map[string]any{
		"id":                id,
		"seq":               out.Seq,
		"transcript":        out.RawTranscript,
		"sql":               best.SQL,
		"tokens":            best.Tokens,
		"pending":           out.Pending,
		"stable_prefix_len": out.StablePrefixLen,
		"degradation":       out.Degradation,
		"deadline_hit":      deadlineHit,
	}
	if out.Validation != "" {
		resp["validation"] = out.Validation
	}
	if best.Verdict != "" {
		resp["verdict"] = best.Verdict
		resp["demoted"] = best.Demoted
	}
	return resp
}

func (s *Server) handleStreamDictate(w http.ResponseWriter, r *http.Request) {
	span := s.reg.StartSpan("http.stream_dictate")
	defer span.End()
	var req streamDictateReq
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" {
		t, terr := s.tenantFor(r)
		if terr != nil {
			writeTenantErr(w, terr)
			return
		}
		req.ID = s.newSession(t)
	}
	ctx := r.Context()
	entry, resumedNs, ok := s.lookupSession(ctx, req.ID)
	if !ok {
		s.writeSessionMiss(w, req.ID)
		return
	}
	// Scope the session lock so a panicking correction releases it on the
	// way to the recovery middleware (see handleDictate).
	var duplicate map[string]any
	out, err := func() (core.FragmentOutput, error) {
		entry.mu.Lock()
		defer entry.mu.Unlock()
		if req.Seq > 0 {
			cur := 0
			if d := entry.sess.Stream(); d != nil {
				_, _, cur = d.SnapshotState()
			}
			if req.Seq > cur+1 {
				// The client has acknowledged fragments this copy never saw:
				// the session advanced on another replica while this one held
				// a stale entry (it owned the session before a ring remap).
				// Resync from the fleet's snapshot before applying.
				if ns := s.resyncLocked(ctx, req.ID, entry); ns > 0 {
					resumedNs = ns
				}
				if d := entry.sess.Stream(); d != nil {
					_, _, cur = d.SnapshotState()
				}
			}
			if entry.sess.Stream() != nil && cur >= req.Seq {
				// The fragment already landed via an attempt whose response
				// was lost — acknowledge, don't re-apply.
				s.reg.Add("stream.duplicate_acks", 1)
				duplicate = map[string]any{
					"id": req.ID, "seq": cur, "duplicate": true,
					"sql": entry.sess.SQL(), "tokens": entry.sess.Tokens(),
				}
				return core.FragmentOutput{}, nil
			}
		}
		out, err := entry.sess.StreamFragment(ctx, req.Fragment)
		if err == nil {
			s.checkpointLocked(req.ID, entry)
		}
		return out, err
	}()
	if duplicate != nil {
		markResumed(w, duplicate, resumedNs)
		writeJSON(w, http.StatusOK, duplicate)
		return
	}
	switch {
	case streamConflict(err):
		writeErr(w, http.StatusConflict, err)
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":       err.Error(),
			"degradation": core.DegradationShed,
		})
		return
	case out.Err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":       out.Err.Error(),
			"degradation": out.Degradation,
		})
		return
	}
	resp := streamState(req.ID, out, ctx.Err() != nil)
	markResumed(w, resp, resumedNs)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStreamFinalize(w http.ResponseWriter, r *http.Request) {
	span := s.reg.StartSpan("http.stream_finalize")
	defer span.End()
	var req streamFinalizeReq
	if err := decode(w, r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := r.Context()
	entry, resumedNs, ok := s.lookupSession(ctx, req.ID)
	if !ok {
		s.writeSessionMiss(w, req.ID)
		return
	}
	out, err := func() (core.FragmentOutput, error) {
		entry.mu.Lock()
		defer entry.mu.Unlock()
		// Finalize carries no idempotency seq, so staleness can't be inferred
		// from the request itself: validate against the store once (finalize
		// is the per-session slow path already) so a stale copy can never
		// finalize a shorter stream than the one the client dictated.
		if ns := s.resyncLocked(ctx, req.ID, entry); ns > 0 {
			resumedNs = ns
		}
		out, err := entry.sess.FinalizeStream(ctx)
		if err == nil {
			s.checkpointLocked(req.ID, entry)
		}
		return out, err
	}()
	switch {
	case streamConflict(err):
		writeErr(w, http.StatusConflict, err)
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":       err.Error(),
			"degradation": core.DegradationShed,
		})
		return
	case out.Err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]any{
			"error":       out.Err.Error(),
			"degradation": out.Degradation,
		})
		return
	}
	resp := streamState(req.ID, out, ctx.Err() != nil)
	markResumed(w, resp, resumedNs)
	writeJSON(w, http.StatusOK, resp)
}

// handleStreamEvents serves the SSE feed for one session's dictations. The
// handler holds no locks while blocked: it waits only on the subscriber
// channel (closed by eviction, Server.Close, or broadcaster teardown) and
// the client's context, so a slow or gone client can never wedge a session.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	// Subscribers restore too: after a failover the display reconnects its
	// feed to whichever replica now owns the session.
	entry, _, ok := s.lookupSession(r.Context(), id)
	if !ok {
		s.writeSessionMiss(w, id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	sub := entry.events.Subscribe()
	defer sub.Cancel()
	s.reg.Add("stream.sse_connections", 1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": connected\n\n")
	flusher.Flush()
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				// Broadcaster closed: session evicted or server shutting
				// down. End the feed cleanly.
				return
			}
			payload, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "data: %s\n\n", payload)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
