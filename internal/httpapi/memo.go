package httpapi

// memo.go is the server-level correction memo: a bounded LRU of fully
// rendered /api/correct response bodies keyed by (tenant, transcript, topk),
// sitting in front of the engine. Interactive traffic repeats transcripts
// heavily — the same dictation retried, the same demo query from thousands
// of displays — and the engine's own SearchLRU only memoizes the structure
// stage; the memo short-circuits the entire pipeline plus encoding, serving
// a hit as one LRU probe and one socket write.
//
// Concurrent identical requests collapse through a singleflight layer: the
// first request (the leader) computes and caches; followers block on the
// leader's completion and write the leader's exact bytes, so a follower's
// response is bit-identical to the leader's (TestMemoSingleflight). A
// follower whose own deadline expires while waiting, or whose leader
// finished without a cacheable result, falls through and computes
// independently.
//
// What is never cached or served from cache:
//   - anything while fault injection is armed (faultinject.Enabled()):
//     chaos rehearsals must exercise the real pipeline, and an injected
//     error must never be replayed to healthy traffic;
//   - failed corrections (Output.Err != nil) and degraded responses
//     (Degradation != full, or a deadline hit): they depend on transient
//     load, not on the request;
//   - session-stateful endpoints (/api/dictate, /api/stream/*): their
//     responses depend on session history, not just the transcript — they
//     never consult the memo.
//
// Counters: server.memo_hit / server.memo_miss / server.memo_inflight_join
// / server.memo_evictions; /api/stats serves them in the "memo" block.

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
)

// correctionMemo is the bounded LRU plus the singleflight table. Safe for
// concurrent use; the lock is held only for map/list surgery, never across
// a correction.
type correctionMemo struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*memoCall

	evictions int64 // guarded by mu; mirrored to obs by the caller
}

// memoEntry is one cached body.
type memoEntry struct {
	key  string
	body []byte
}

// memoCall is one in-flight leader computation. done closes when the leader
// finishes; ok reports whether body carries a cacheable (and therefore
// shareable) response. stale (guarded by the memo's mu) is set when the
// tenant's catalog changed mid-flight: the result may still be shared with
// the followers that joined before the change, but must not enter the LRU.
type memoCall struct {
	done  chan struct{}
	body  []byte
	ok    bool
	stale bool
}

// newCorrectionMemo returns a memo bounded to max cached bodies (min 1).
func newCorrectionMemo(max int) *correctionMemo {
	if max < 1 {
		max = 1
	}
	return &correctionMemo{
		max:      max,
		ll:       list.New(),
		items:    make(map[string]*list.Element, max),
		inflight: make(map[string]*memoCall),
	}
}

// memoKey builds the cache key. The components are joined with NUL —
// transcripts are dictated text and never contain it — so distinct tuples
// never collide. validation is the engine's active validation mode: a body
// rendered without verdicts must never be replayed to a validated tenant
// (or vice versa), so the mode is part of the identity of the bytes
// (TestMemoKeyedOnValidationMode).
func memoKey(tenant, transcript string, topk int, validation string) string {
	return tenant + "\x00" + transcript + "\x00" + strconv.Itoa(topk) + "\x00" + validation
}

// lookup returns the cached body for key, refreshing its recency. The
// returned slice is shared and must not be mutated.
func (m *correctionMemo) lookup(key string) ([]byte, bool) {
	m.mu.Lock()
	el, ok := m.items[key]
	if !ok {
		m.mu.Unlock()
		return nil, false
	}
	m.ll.MoveToFront(el)
	body := el.Value.(*memoEntry).body
	m.mu.Unlock()
	return body, true
}

// begin joins or starts the singleflight for key: the first caller becomes
// the leader (leader=true) and must call finish exactly once; later callers
// get the leader's call to wait on.
func (m *correctionMemo) begin(key string) (call *memoCall, leader bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.inflight[key]; ok {
		return c, false
	}
	c := &memoCall{done: make(chan struct{})}
	m.inflight[key] = c
	return c, true
}

// finish completes a leader's singleflight: publishes the body to waiting
// followers, caches it when cacheable, and wakes everyone. body must be an
// immutable snapshot (the caller copies out of its pooled buffer). Returns
// how many entries were evicted (0 or 1) so the caller can count them.
func (m *correctionMemo) finish(key string, call *memoCall, body []byte, cacheable bool) int {
	evicted := 0
	m.mu.Lock()
	// An invalidation may have replaced this flight with a fresh one; only
	// remove our own registration.
	if c, ok := m.inflight[key]; ok && c == call {
		delete(m.inflight, key)
	}
	if call.stale {
		cacheable = false
	}
	call.body, call.ok = body, cacheable
	if cacheable {
		if el, ok := m.items[key]; ok {
			m.ll.MoveToFront(el)
			el.Value.(*memoEntry).body = body
		} else {
			m.items[key] = m.ll.PushFront(&memoEntry{key: key, body: body})
			if m.ll.Len() > m.max {
				back := m.ll.Back()
				m.ll.Remove(back)
				delete(m.items, back.Value.(*memoEntry).key)
				m.evictions++
				evicted = 1
			}
		}
	}
	m.mu.Unlock()
	close(call.done)
	return evicted
}

// invalidateTenant drops every cached body keyed under tenant, returning how
// many were removed. Called when a tenant's catalog is replaced, patched, or
// deleted: a correction rendered against the old catalog must never be
// served once the schema has changed. In-flight leaders that started before
// the swap are marked stale and deregistered: they still publish their body
// to the followers already waiting on them (those requests were concurrent
// with the schema change), but the body never enters the LRU, and requests
// arriving after the swap start a fresh leader against the new catalog.
func (m *correctionMemo) invalidateTenant(tenant string) int {
	prefix := tenant + "\x00"
	removed := 0
	m.mu.Lock()
	for el := m.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*memoEntry); strings.HasPrefix(e.key, prefix) {
			m.ll.Remove(el)
			delete(m.items, e.key)
			removed++
		}
		el = next
	}
	for k, c := range m.inflight {
		if strings.HasPrefix(k, prefix) {
			c.stale = true
			delete(m.inflight, k)
		}
	}
	m.mu.Unlock()
	return removed
}

// memoStats is the /api/stats "memo" block's structural half (the hit/miss
// counters live in the obs registry).
type memoStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Inflight  int   `json:"inflight"`
	Evictions int64 `json:"evictions"`
}

func (m *correctionMemo) stats() memoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return memoStats{
		Entries:   m.ll.Len(),
		Capacity:  m.max,
		Inflight:  len(m.inflight),
		Evictions: m.evictions,
	}
}
