package httpapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"speakql/internal/session"
)

// replica builds one store-connected Server over the shared test engine.
func replica(t *testing.T, node string, st session.Store) (*Server, *httptest.Server) {
	t.Helper()
	srv(t) // initialize testEng/testDB
	s := New(testEng, testDB)
	s.SetNodeID(node)
	s.SetSessionStore(st)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

// A session dictated on replica A must continue on replica B from its last
// checkpoint: same display, resumed marker set, fragment numbering intact,
// and the finalized SQL identical to a session that never moved.
func TestSessionHandoffBetweenReplicas(t *testing.T) {
	st := session.NewMemStore()
	_, a := replica(t, "ra", st)
	_, b := replica(t, "rb", st)

	// Control: the full dictation on one replica.
	code, ctl := post(t, a.URL+"/api/stream/dictate", map[string]any{"fragment": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatalf("control dictate: %d %v", code, ctl)
	}
	ctlID := ctl["id"].(string)
	post(t, a.URL+"/api/stream/dictate", map[string]any{"id": ctlID, "fragment": "where gender equals M"})
	post(t, a.URL+"/api/stream/dictate", map[string]any{"id": ctlID, "fragment": "and salary greater than 50000"})
	_, ctlFin := post(t, a.URL+"/api/stream/finalize", map[string]any{"id": ctlID})

	// Handoff: two fragments on A, then the tail and finalize on B.
	code, out := post(t, a.URL+"/api/stream/dictate", map[string]any{"fragment": "select salary from employees"})
	if code != http.StatusOK {
		t.Fatalf("dictate: %d %v", code, out)
	}
	id := out["id"].(string)
	post(t, a.URL+"/api/stream/dictate", map[string]any{"id": id, "fragment": "where gender equals M"})

	code, moved := post(t, b.URL+"/api/stream/dictate", map[string]any{"id": id, "fragment": "and salary greater than 50000"})
	if code != http.StatusOK {
		t.Fatalf("dictate on new replica: %d %v", code, moved)
	}
	if moved["resumed"] != true {
		t.Fatalf("handoff response lacks resumed marker: %v", moved)
	}
	if seq := moved["seq"].(float64); seq != 3 {
		t.Fatalf("fragment numbering broke across handoff: seq = %v", seq)
	}
	code, fin := post(t, b.URL+"/api/stream/finalize", map[string]any{"id": id})
	if code != http.StatusOK {
		t.Fatalf("finalize on new replica: %d %v", code, fin)
	}
	if fin["sql"] != ctlFin["sql"] {
		t.Fatalf("handoff diverged from uninterrupted control:\n%v\n%v", fin["sql"], ctlFin["sql"])
	}
}

// The Resume-Ns header rides only on responses that actually restored.
func TestResumeHeaderOnHandoffOnly(t *testing.T) {
	st := session.NewMemStore()
	_, a := replica(t, "ha", st)
	_, b := replica(t, "hb", st)
	_, out := post(t, a.URL+"/api/stream/dictate", map[string]any{"fragment": "select salary from employees"})
	id := out["id"].(string)

	resp, err := http.Post(b.URL+"/api/stream/dictate", "application/json",
		jsonBody(t, map[string]any{"id": id, "fragment": "where gender equals M"}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(resumeHeader) == "" {
		t.Fatal("restored response missing resume header")
	}
	resp, err = http.Post(b.URL+"/api/stream/dictate", "application/json",
		jsonBody(t, map[string]any{"id": id, "fragment": "and salary greater than 50000"}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(resumeHeader) != "" {
		t.Fatal("already-local session set the resume header")
	}
}

// A replica that does not checkpoint leaves nothing to restore: the session
// is typed lost on the next replica, not silently recreated.
func TestSessionLostIsTyped(t *testing.T) {
	st := session.NewMemStore()
	sa, a := replica(t, "la", st)
	sa.SetCheckpointing(false)
	_, b := replica(t, "lb", st)
	_, out := post(t, a.URL+"/api/stream/dictate", map[string]any{"fragment": "select salary from employees"})
	id := out["id"].(string)
	code, lost := post(t, b.URL+"/api/stream/dictate", map[string]any{"id": id, "fragment": "where gender equals M"})
	if code != http.StatusNotFound {
		t.Fatalf("lost session answered %d: %v", code, lost)
	}
	if lost["code"] != "stream.lost" {
		t.Fatalf("lost session not typed: %v", lost)
	}
}

// Satellite (c), sequential half: once the TTL sweeper evicts a session, the
// snapshot dies fleet-wide — a later handoff must get the typed 404, not a
// resurrected session.
func TestEvictionKillsSnapshotFleetWide(t *testing.T) {
	st := session.NewMemStore()
	sa, a := replica(t, "ea", st)
	sa.SetSessionTTL(time.Hour)
	_, b := replica(t, "eb", st)
	_, out := post(t, a.URL+"/api/stream/dictate", map[string]any{"fragment": "select salary from employees"})
	id := out["id"].(string)
	if st.Len() == 0 {
		t.Fatal("no checkpoint written")
	}
	if n := sa.evictIdleSessions(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if st.Len() != 0 {
		t.Fatalf("eviction left %d snapshots behind", st.Len())
	}
	code, lost := post(t, b.URL+"/api/stream/dictate", map[string]any{"id": id, "fragment": "where gender equals M"})
	if code != http.StatusNotFound || lost["code"] != "stream.lost" {
		t.Fatalf("evicted session not typed lost: %d %v", code, lost)
	}
}

// Satellite (c), racing half: TTL eviction on the owning replica racing a
// handoff restore on another must resolve to exactly one of two clean
// outcomes — a fully live resumed session (200 with complete state) or the
// typed lost 404 — never a half-restored session or a malformed verdict.
// Run with -race: the restore's register-then-recheck and the sweeper's
// remove-then-delete overlap here on every iteration.
func TestEvictionRacingHandoffNeverHalfRestores(t *testing.T) {
	st := session.NewMemStore()
	sa, a := replica(t, "ga", st)
	sa.SetSessionTTL(time.Hour)
	_, b := replica(t, "gb", st)
	for i := 0; i < 30; i++ {
		_, out := post(t, a.URL+"/api/stream/dictate", map[string]any{"fragment": "select salary from employees"})
		id, okID := out["id"].(string)
		if !okID {
			t.Fatalf("iteration %d: malformed create: %v", i, out)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			sa.evictIdleSessions(time.Now().Add(2 * time.Hour))
		}()
		code, moved := post(t, b.URL+"/api/stream/dictate",
			map[string]any{"id": id, "fragment": fmt.Sprintf("where salary greater than %d", 1000+i)})
		wg.Wait()
		switch code {
		case http.StatusOK:
			// Fully live: the complete stream state must be present.
			if _, ok := moved["sql"].(string); !ok {
				t.Fatalf("iteration %d: resumed session with partial state: %v", i, moved)
			}
			if seq, ok := moved["seq"].(float64); !ok || seq != 2 {
				t.Fatalf("iteration %d: resumed session lost its fragments: %v", i, moved)
			}
		case http.StatusNotFound:
			if moved["code"] != "stream.lost" {
				t.Fatalf("iteration %d: lost verdict not typed: %v", i, moved)
			}
		default:
			t.Fatalf("iteration %d: race produced %d: %v", i, code, moved)
		}
		// Clean up whichever replica holds the session.
		sa.evictIdleSessions(time.Now().Add(2 * time.Hour))
	}
}
